# Empty dependencies file for driftsim.
# This may be replaced when dependencies are built.
