file(REMOVE_RECURSE
  "CMakeFiles/driftsim.dir/driftsim.cpp.o"
  "CMakeFiles/driftsim.dir/driftsim.cpp.o.d"
  "driftsim"
  "driftsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/driftsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
