
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_accel.cpp" "tests/CMakeFiles/drift_tests.dir/test_accel.cpp.o" "gcc" "tests/CMakeFiles/drift_tests.dir/test_accel.cpp.o.d"
  "/root/repo/tests/test_args.cpp" "tests/CMakeFiles/drift_tests.dir/test_args.cpp.o" "gcc" "tests/CMakeFiles/drift_tests.dir/test_args.cpp.o.d"
  "/root/repo/tests/test_compare.cpp" "tests/CMakeFiles/drift_tests.dir/test_compare.cpp.o" "gcc" "tests/CMakeFiles/drift_tests.dir/test_compare.cpp.o.d"
  "/root/repo/tests/test_dram.cpp" "tests/CMakeFiles/drift_tests.dir/test_dram.cpp.o" "gcc" "tests/CMakeFiles/drift_tests.dir/test_dram.cpp.o.d"
  "/root/repo/tests/test_drq.cpp" "tests/CMakeFiles/drift_tests.dir/test_drq.cpp.o" "gcc" "tests/CMakeFiles/drift_tests.dir/test_drq.cpp.o.d"
  "/root/repo/tests/test_edge_cases.cpp" "tests/CMakeFiles/drift_tests.dir/test_edge_cases.cpp.o" "gcc" "tests/CMakeFiles/drift_tests.dir/test_edge_cases.cpp.o.d"
  "/root/repo/tests/test_energy.cpp" "tests/CMakeFiles/drift_tests.dir/test_energy.cpp.o" "gcc" "tests/CMakeFiles/drift_tests.dir/test_energy.cpp.o.d"
  "/root/repo/tests/test_engine_auto.cpp" "tests/CMakeFiles/drift_tests.dir/test_engine_auto.cpp.o" "gcc" "tests/CMakeFiles/drift_tests.dir/test_engine_auto.cpp.o.d"
  "/root/repo/tests/test_fabric.cpp" "tests/CMakeFiles/drift_tests.dir/test_fabric.cpp.o" "gcc" "tests/CMakeFiles/drift_tests.dir/test_fabric.cpp.o.d"
  "/root/repo/tests/test_hessian.cpp" "tests/CMakeFiles/drift_tests.dir/test_hessian.cpp.o" "gcc" "tests/CMakeFiles/drift_tests.dir/test_hessian.cpp.o.d"
  "/root/repo/tests/test_int_gemm.cpp" "tests/CMakeFiles/drift_tests.dir/test_int_gemm.cpp.o" "gcc" "tests/CMakeFiles/drift_tests.dir/test_int_gemm.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/drift_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/drift_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_nn_layers.cpp" "tests/CMakeFiles/drift_tests.dir/test_nn_layers.cpp.o" "gcc" "tests/CMakeFiles/drift_tests.dir/test_nn_layers.cpp.o.d"
  "/root/repo/tests/test_noise_budget.cpp" "tests/CMakeFiles/drift_tests.dir/test_noise_budget.cpp.o" "gcc" "tests/CMakeFiles/drift_tests.dir/test_noise_budget.cpp.o.d"
  "/root/repo/tests/test_proxy.cpp" "tests/CMakeFiles/drift_tests.dir/test_proxy.cpp.o" "gcc" "tests/CMakeFiles/drift_tests.dir/test_proxy.cpp.o.d"
  "/root/repo/tests/test_quant_engine.cpp" "tests/CMakeFiles/drift_tests.dir/test_quant_engine.cpp.o" "gcc" "tests/CMakeFiles/drift_tests.dir/test_quant_engine.cpp.o.d"
  "/root/repo/tests/test_quantizer.cpp" "tests/CMakeFiles/drift_tests.dir/test_quantizer.cpp.o" "gcc" "tests/CMakeFiles/drift_tests.dir/test_quantizer.cpp.o.d"
  "/root/repo/tests/test_scheduler.cpp" "tests/CMakeFiles/drift_tests.dir/test_scheduler.cpp.o" "gcc" "tests/CMakeFiles/drift_tests.dir/test_scheduler.cpp.o.d"
  "/root/repo/tests/test_selector.cpp" "tests/CMakeFiles/drift_tests.dir/test_selector.cpp.o" "gcc" "tests/CMakeFiles/drift_tests.dir/test_selector.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/drift_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/drift_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_systolic.cpp" "tests/CMakeFiles/drift_tests.dir/test_systolic.cpp.o" "gcc" "tests/CMakeFiles/drift_tests.dir/test_systolic.cpp.o.d"
  "/root/repo/tests/test_tensor.cpp" "tests/CMakeFiles/drift_tests.dir/test_tensor.cpp.o" "gcc" "tests/CMakeFiles/drift_tests.dir/test_tensor.cpp.o.d"
  "/root/repo/tests/test_timeline.cpp" "tests/CMakeFiles/drift_tests.dir/test_timeline.cpp.o" "gcc" "tests/CMakeFiles/drift_tests.dir/test_timeline.cpp.o.d"
  "/root/repo/tests/test_util.cpp" "tests/CMakeFiles/drift_tests.dir/test_util.cpp.o" "gcc" "tests/CMakeFiles/drift_tests.dir/test_util.cpp.o.d"
  "/root/repo/tests/test_workload.cpp" "tests/CMakeFiles/drift_tests.dir/test_workload.cpp.o" "gcc" "tests/CMakeFiles/drift_tests.dir/test_workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/accel/CMakeFiles/drift_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/drift_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/systolic/CMakeFiles/drift_systolic.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/drift_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/drift_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/drift_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/drift_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/drift_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
