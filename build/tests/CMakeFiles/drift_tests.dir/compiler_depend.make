# Empty compiler generated dependencies file for drift_tests.
# This may be replaced when dependencies are built.
