file(REMOVE_RECURSE
  "../bench/ablation_array_scaling"
  "../bench/ablation_array_scaling.pdb"
  "CMakeFiles/ablation_array_scaling.dir/ablation_array_scaling.cpp.o"
  "CMakeFiles/ablation_array_scaling.dir/ablation_array_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_array_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
