# Empty dependencies file for ablation_array_scaling.
# This may be replaced when dependencies are built.
