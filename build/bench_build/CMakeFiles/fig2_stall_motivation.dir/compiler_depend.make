# Empty compiler generated dependencies file for fig2_stall_motivation.
# This may be replaced when dependencies are built.
