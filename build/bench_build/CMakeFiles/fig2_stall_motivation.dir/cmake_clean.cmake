file(REMOVE_RECURSE
  "../bench/fig2_stall_motivation"
  "../bench/fig2_stall_motivation.pdb"
  "CMakeFiles/fig2_stall_motivation.dir/fig2_stall_motivation.cpp.o"
  "CMakeFiles/fig2_stall_motivation.dir/fig2_stall_motivation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_stall_motivation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
