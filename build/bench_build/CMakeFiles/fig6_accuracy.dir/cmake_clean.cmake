file(REMOVE_RECURSE
  "../bench/fig6_accuracy"
  "../bench/fig6_accuracy.pdb"
  "CMakeFiles/fig6_accuracy.dir/fig6_accuracy.cpp.o"
  "CMakeFiles/fig6_accuracy.dir/fig6_accuracy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
