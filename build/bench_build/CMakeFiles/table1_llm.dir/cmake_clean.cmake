file(REMOVE_RECURSE
  "../bench/table1_llm"
  "../bench/table1_llm.pdb"
  "CMakeFiles/table1_llm.dir/table1_llm.cpp.o"
  "CMakeFiles/table1_llm.dir/table1_llm.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_llm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
