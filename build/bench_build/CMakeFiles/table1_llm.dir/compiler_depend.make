# Empty compiler generated dependencies file for table1_llm.
# This may be replaced when dependencies are built.
