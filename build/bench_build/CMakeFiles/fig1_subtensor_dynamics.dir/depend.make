# Empty dependencies file for fig1_subtensor_dynamics.
# This may be replaced when dependencies are built.
