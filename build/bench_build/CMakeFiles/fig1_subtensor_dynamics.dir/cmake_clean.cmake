file(REMOVE_RECURSE
  "../bench/fig1_subtensor_dynamics"
  "../bench/fig1_subtensor_dynamics.pdb"
  "CMakeFiles/fig1_subtensor_dynamics.dir/fig1_subtensor_dynamics.cpp.o"
  "CMakeFiles/fig1_subtensor_dynamics.dir/fig1_subtensor_dynamics.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_subtensor_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
