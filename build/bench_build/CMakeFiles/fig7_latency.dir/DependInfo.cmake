
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig7_latency.cpp" "bench_build/CMakeFiles/fig7_latency.dir/fig7_latency.cpp.o" "gcc" "bench_build/CMakeFiles/fig7_latency.dir/fig7_latency.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/accel/CMakeFiles/drift_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/drift_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/systolic/CMakeFiles/drift_systolic.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/drift_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/drift_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/drift_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/drift_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/drift_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
