file(REMOVE_RECURSE
  "CMakeFiles/vit_pipeline.dir/vit_pipeline.cpp.o"
  "CMakeFiles/vit_pipeline.dir/vit_pipeline.cpp.o.d"
  "vit_pipeline"
  "vit_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vit_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
