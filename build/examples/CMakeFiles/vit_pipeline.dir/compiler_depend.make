# Empty compiler generated dependencies file for vit_pipeline.
# This may be replaced when dependencies are built.
