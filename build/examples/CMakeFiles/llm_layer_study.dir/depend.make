# Empty dependencies file for llm_layer_study.
# This may be replaced when dependencies are built.
