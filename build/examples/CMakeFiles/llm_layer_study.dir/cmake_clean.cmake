file(REMOVE_RECURSE
  "CMakeFiles/llm_layer_study.dir/llm_layer_study.cpp.o"
  "CMakeFiles/llm_layer_study.dir/llm_layer_study.cpp.o.d"
  "llm_layer_study"
  "llm_layer_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llm_layer_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
