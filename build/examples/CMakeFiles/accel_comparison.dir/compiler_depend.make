# Empty compiler generated dependencies file for accel_comparison.
# This may be replaced when dependencies are built.
