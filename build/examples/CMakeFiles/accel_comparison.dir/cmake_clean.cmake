file(REMOVE_RECURSE
  "CMakeFiles/accel_comparison.dir/accel_comparison.cpp.o"
  "CMakeFiles/accel_comparison.dir/accel_comparison.cpp.o.d"
  "accel_comparison"
  "accel_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accel_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
