file(REMOVE_RECURSE
  "CMakeFiles/drift_tensor.dir/shape.cpp.o"
  "CMakeFiles/drift_tensor.dir/shape.cpp.o.d"
  "CMakeFiles/drift_tensor.dir/subtensor.cpp.o"
  "CMakeFiles/drift_tensor.dir/subtensor.cpp.o.d"
  "libdrift_tensor.a"
  "libdrift_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drift_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
