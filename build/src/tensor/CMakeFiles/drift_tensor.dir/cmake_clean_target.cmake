file(REMOVE_RECURSE
  "libdrift_tensor.a"
)
