# Empty dependencies file for drift_tensor.
# This may be replaced when dependencies are built.
