# Empty compiler generated dependencies file for drift_stats.
# This may be replaced when dependencies are built.
