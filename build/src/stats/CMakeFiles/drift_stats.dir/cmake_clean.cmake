file(REMOVE_RECURSE
  "CMakeFiles/drift_stats.dir/distribution.cpp.o"
  "CMakeFiles/drift_stats.dir/distribution.cpp.o.d"
  "CMakeFiles/drift_stats.dir/fit.cpp.o"
  "CMakeFiles/drift_stats.dir/fit.cpp.o.d"
  "CMakeFiles/drift_stats.dir/histogram.cpp.o"
  "CMakeFiles/drift_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/drift_stats.dir/summary.cpp.o"
  "CMakeFiles/drift_stats.dir/summary.cpp.o.d"
  "libdrift_stats.a"
  "libdrift_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drift_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
