file(REMOVE_RECURSE
  "libdrift_stats.a"
)
