file(REMOVE_RECURSE
  "libdrift_core.a"
)
