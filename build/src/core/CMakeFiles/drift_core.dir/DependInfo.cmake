
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analytical_model.cpp" "src/core/CMakeFiles/drift_core.dir/analytical_model.cpp.o" "gcc" "src/core/CMakeFiles/drift_core.dir/analytical_model.cpp.o.d"
  "/root/repo/src/core/capability.cpp" "src/core/CMakeFiles/drift_core.dir/capability.cpp.o" "gcc" "src/core/CMakeFiles/drift_core.dir/capability.cpp.o.d"
  "/root/repo/src/core/drq_quantizer.cpp" "src/core/CMakeFiles/drift_core.dir/drq_quantizer.cpp.o" "gcc" "src/core/CMakeFiles/drift_core.dir/drq_quantizer.cpp.o.d"
  "/root/repo/src/core/hessian.cpp" "src/core/CMakeFiles/drift_core.dir/hessian.cpp.o" "gcc" "src/core/CMakeFiles/drift_core.dir/hessian.cpp.o.d"
  "/root/repo/src/core/layer_work.cpp" "src/core/CMakeFiles/drift_core.dir/layer_work.cpp.o" "gcc" "src/core/CMakeFiles/drift_core.dir/layer_work.cpp.o.d"
  "/root/repo/src/core/noise_budget.cpp" "src/core/CMakeFiles/drift_core.dir/noise_budget.cpp.o" "gcc" "src/core/CMakeFiles/drift_core.dir/noise_budget.cpp.o.d"
  "/root/repo/src/core/precision.cpp" "src/core/CMakeFiles/drift_core.dir/precision.cpp.o" "gcc" "src/core/CMakeFiles/drift_core.dir/precision.cpp.o.d"
  "/root/repo/src/core/quantizer.cpp" "src/core/CMakeFiles/drift_core.dir/quantizer.cpp.o" "gcc" "src/core/CMakeFiles/drift_core.dir/quantizer.cpp.o.d"
  "/root/repo/src/core/scheduler.cpp" "src/core/CMakeFiles/drift_core.dir/scheduler.cpp.o" "gcc" "src/core/CMakeFiles/drift_core.dir/scheduler.cpp.o.d"
  "/root/repo/src/core/selector.cpp" "src/core/CMakeFiles/drift_core.dir/selector.cpp.o" "gcc" "src/core/CMakeFiles/drift_core.dir/selector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/drift_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/drift_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/drift_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
