file(REMOVE_RECURSE
  "CMakeFiles/drift_core.dir/analytical_model.cpp.o"
  "CMakeFiles/drift_core.dir/analytical_model.cpp.o.d"
  "CMakeFiles/drift_core.dir/capability.cpp.o"
  "CMakeFiles/drift_core.dir/capability.cpp.o.d"
  "CMakeFiles/drift_core.dir/drq_quantizer.cpp.o"
  "CMakeFiles/drift_core.dir/drq_quantizer.cpp.o.d"
  "CMakeFiles/drift_core.dir/hessian.cpp.o"
  "CMakeFiles/drift_core.dir/hessian.cpp.o.d"
  "CMakeFiles/drift_core.dir/layer_work.cpp.o"
  "CMakeFiles/drift_core.dir/layer_work.cpp.o.d"
  "CMakeFiles/drift_core.dir/noise_budget.cpp.o"
  "CMakeFiles/drift_core.dir/noise_budget.cpp.o.d"
  "CMakeFiles/drift_core.dir/precision.cpp.o"
  "CMakeFiles/drift_core.dir/precision.cpp.o.d"
  "CMakeFiles/drift_core.dir/quantizer.cpp.o"
  "CMakeFiles/drift_core.dir/quantizer.cpp.o.d"
  "CMakeFiles/drift_core.dir/scheduler.cpp.o"
  "CMakeFiles/drift_core.dir/scheduler.cpp.o.d"
  "CMakeFiles/drift_core.dir/selector.cpp.o"
  "CMakeFiles/drift_core.dir/selector.cpp.o.d"
  "libdrift_core.a"
  "libdrift_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drift_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
