# Empty dependencies file for drift_core.
# This may be replaced when dependencies are built.
