# Empty dependencies file for drift_util.
# This may be replaced when dependencies are built.
