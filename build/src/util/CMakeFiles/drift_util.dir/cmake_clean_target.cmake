file(REMOVE_RECURSE
  "libdrift_util.a"
)
