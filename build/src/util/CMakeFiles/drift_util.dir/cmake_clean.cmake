file(REMOVE_RECURSE
  "CMakeFiles/drift_util.dir/args.cpp.o"
  "CMakeFiles/drift_util.dir/args.cpp.o.d"
  "CMakeFiles/drift_util.dir/csv.cpp.o"
  "CMakeFiles/drift_util.dir/csv.cpp.o.d"
  "CMakeFiles/drift_util.dir/logging.cpp.o"
  "CMakeFiles/drift_util.dir/logging.cpp.o.d"
  "CMakeFiles/drift_util.dir/table.cpp.o"
  "CMakeFiles/drift_util.dir/table.cpp.o.d"
  "libdrift_util.a"
  "libdrift_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drift_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
