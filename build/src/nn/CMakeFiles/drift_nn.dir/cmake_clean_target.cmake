file(REMOVE_RECURSE
  "libdrift_nn.a"
)
