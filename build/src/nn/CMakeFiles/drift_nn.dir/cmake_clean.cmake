file(REMOVE_RECURSE
  "CMakeFiles/drift_nn.dir/activations.cpp.o"
  "CMakeFiles/drift_nn.dir/activations.cpp.o.d"
  "CMakeFiles/drift_nn.dir/attention.cpp.o"
  "CMakeFiles/drift_nn.dir/attention.cpp.o.d"
  "CMakeFiles/drift_nn.dir/conv2d.cpp.o"
  "CMakeFiles/drift_nn.dir/conv2d.cpp.o.d"
  "CMakeFiles/drift_nn.dir/gemm.cpp.o"
  "CMakeFiles/drift_nn.dir/gemm.cpp.o.d"
  "CMakeFiles/drift_nn.dir/int_gemm.cpp.o"
  "CMakeFiles/drift_nn.dir/int_gemm.cpp.o.d"
  "CMakeFiles/drift_nn.dir/linear.cpp.o"
  "CMakeFiles/drift_nn.dir/linear.cpp.o.d"
  "CMakeFiles/drift_nn.dir/model.cpp.o"
  "CMakeFiles/drift_nn.dir/model.cpp.o.d"
  "CMakeFiles/drift_nn.dir/norm.cpp.o"
  "CMakeFiles/drift_nn.dir/norm.cpp.o.d"
  "CMakeFiles/drift_nn.dir/pooling.cpp.o"
  "CMakeFiles/drift_nn.dir/pooling.cpp.o.d"
  "CMakeFiles/drift_nn.dir/precision_mix.cpp.o"
  "CMakeFiles/drift_nn.dir/precision_mix.cpp.o.d"
  "CMakeFiles/drift_nn.dir/proxy.cpp.o"
  "CMakeFiles/drift_nn.dir/proxy.cpp.o.d"
  "CMakeFiles/drift_nn.dir/quant_engine.cpp.o"
  "CMakeFiles/drift_nn.dir/quant_engine.cpp.o.d"
  "CMakeFiles/drift_nn.dir/synthetic.cpp.o"
  "CMakeFiles/drift_nn.dir/synthetic.cpp.o.d"
  "CMakeFiles/drift_nn.dir/workload.cpp.o"
  "CMakeFiles/drift_nn.dir/workload.cpp.o.d"
  "libdrift_nn.a"
  "libdrift_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drift_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
