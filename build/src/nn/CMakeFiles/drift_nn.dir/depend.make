# Empty dependencies file for drift_nn.
# This may be replaced when dependencies are built.
