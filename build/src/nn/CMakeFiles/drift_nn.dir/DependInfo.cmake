
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activations.cpp" "src/nn/CMakeFiles/drift_nn.dir/activations.cpp.o" "gcc" "src/nn/CMakeFiles/drift_nn.dir/activations.cpp.o.d"
  "/root/repo/src/nn/attention.cpp" "src/nn/CMakeFiles/drift_nn.dir/attention.cpp.o" "gcc" "src/nn/CMakeFiles/drift_nn.dir/attention.cpp.o.d"
  "/root/repo/src/nn/conv2d.cpp" "src/nn/CMakeFiles/drift_nn.dir/conv2d.cpp.o" "gcc" "src/nn/CMakeFiles/drift_nn.dir/conv2d.cpp.o.d"
  "/root/repo/src/nn/gemm.cpp" "src/nn/CMakeFiles/drift_nn.dir/gemm.cpp.o" "gcc" "src/nn/CMakeFiles/drift_nn.dir/gemm.cpp.o.d"
  "/root/repo/src/nn/int_gemm.cpp" "src/nn/CMakeFiles/drift_nn.dir/int_gemm.cpp.o" "gcc" "src/nn/CMakeFiles/drift_nn.dir/int_gemm.cpp.o.d"
  "/root/repo/src/nn/linear.cpp" "src/nn/CMakeFiles/drift_nn.dir/linear.cpp.o" "gcc" "src/nn/CMakeFiles/drift_nn.dir/linear.cpp.o.d"
  "/root/repo/src/nn/model.cpp" "src/nn/CMakeFiles/drift_nn.dir/model.cpp.o" "gcc" "src/nn/CMakeFiles/drift_nn.dir/model.cpp.o.d"
  "/root/repo/src/nn/norm.cpp" "src/nn/CMakeFiles/drift_nn.dir/norm.cpp.o" "gcc" "src/nn/CMakeFiles/drift_nn.dir/norm.cpp.o.d"
  "/root/repo/src/nn/pooling.cpp" "src/nn/CMakeFiles/drift_nn.dir/pooling.cpp.o" "gcc" "src/nn/CMakeFiles/drift_nn.dir/pooling.cpp.o.d"
  "/root/repo/src/nn/precision_mix.cpp" "src/nn/CMakeFiles/drift_nn.dir/precision_mix.cpp.o" "gcc" "src/nn/CMakeFiles/drift_nn.dir/precision_mix.cpp.o.d"
  "/root/repo/src/nn/proxy.cpp" "src/nn/CMakeFiles/drift_nn.dir/proxy.cpp.o" "gcc" "src/nn/CMakeFiles/drift_nn.dir/proxy.cpp.o.d"
  "/root/repo/src/nn/quant_engine.cpp" "src/nn/CMakeFiles/drift_nn.dir/quant_engine.cpp.o" "gcc" "src/nn/CMakeFiles/drift_nn.dir/quant_engine.cpp.o.d"
  "/root/repo/src/nn/synthetic.cpp" "src/nn/CMakeFiles/drift_nn.dir/synthetic.cpp.o" "gcc" "src/nn/CMakeFiles/drift_nn.dir/synthetic.cpp.o.d"
  "/root/repo/src/nn/workload.cpp" "src/nn/CMakeFiles/drift_nn.dir/workload.cpp.o" "gcc" "src/nn/CMakeFiles/drift_nn.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/drift_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/drift_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/drift_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/drift_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
