file(REMOVE_RECURSE
  "libdrift_dram.a"
)
