file(REMOVE_RECURSE
  "CMakeFiles/drift_dram.dir/dram.cpp.o"
  "CMakeFiles/drift_dram.dir/dram.cpp.o.d"
  "libdrift_dram.a"
  "libdrift_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drift_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
