# Empty dependencies file for drift_dram.
# This may be replaced when dependencies are built.
