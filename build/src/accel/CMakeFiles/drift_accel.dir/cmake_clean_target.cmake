file(REMOVE_RECURSE
  "libdrift_accel.a"
)
