file(REMOVE_RECURSE
  "CMakeFiles/drift_accel.dir/bitfusion.cpp.o"
  "CMakeFiles/drift_accel.dir/bitfusion.cpp.o.d"
  "CMakeFiles/drift_accel.dir/compare.cpp.o"
  "CMakeFiles/drift_accel.dir/compare.cpp.o.d"
  "CMakeFiles/drift_accel.dir/controller.cpp.o"
  "CMakeFiles/drift_accel.dir/controller.cpp.o.d"
  "CMakeFiles/drift_accel.dir/drift_accel.cpp.o"
  "CMakeFiles/drift_accel.dir/drift_accel.cpp.o.d"
  "CMakeFiles/drift_accel.dir/drq_accel.cpp.o"
  "CMakeFiles/drift_accel.dir/drq_accel.cpp.o.d"
  "CMakeFiles/drift_accel.dir/eyeriss.cpp.o"
  "CMakeFiles/drift_accel.dir/eyeriss.cpp.o.d"
  "CMakeFiles/drift_accel.dir/fabric.cpp.o"
  "CMakeFiles/drift_accel.dir/fabric.cpp.o.d"
  "CMakeFiles/drift_accel.dir/timeline.cpp.o"
  "CMakeFiles/drift_accel.dir/timeline.cpp.o.d"
  "CMakeFiles/drift_accel.dir/traffic.cpp.o"
  "CMakeFiles/drift_accel.dir/traffic.cpp.o.d"
  "libdrift_accel.a"
  "libdrift_accel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drift_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
