# Empty dependencies file for drift_accel.
# This may be replaced when dependencies are built.
