
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/accel/bitfusion.cpp" "src/accel/CMakeFiles/drift_accel.dir/bitfusion.cpp.o" "gcc" "src/accel/CMakeFiles/drift_accel.dir/bitfusion.cpp.o.d"
  "/root/repo/src/accel/compare.cpp" "src/accel/CMakeFiles/drift_accel.dir/compare.cpp.o" "gcc" "src/accel/CMakeFiles/drift_accel.dir/compare.cpp.o.d"
  "/root/repo/src/accel/controller.cpp" "src/accel/CMakeFiles/drift_accel.dir/controller.cpp.o" "gcc" "src/accel/CMakeFiles/drift_accel.dir/controller.cpp.o.d"
  "/root/repo/src/accel/drift_accel.cpp" "src/accel/CMakeFiles/drift_accel.dir/drift_accel.cpp.o" "gcc" "src/accel/CMakeFiles/drift_accel.dir/drift_accel.cpp.o.d"
  "/root/repo/src/accel/drq_accel.cpp" "src/accel/CMakeFiles/drift_accel.dir/drq_accel.cpp.o" "gcc" "src/accel/CMakeFiles/drift_accel.dir/drq_accel.cpp.o.d"
  "/root/repo/src/accel/eyeriss.cpp" "src/accel/CMakeFiles/drift_accel.dir/eyeriss.cpp.o" "gcc" "src/accel/CMakeFiles/drift_accel.dir/eyeriss.cpp.o.d"
  "/root/repo/src/accel/fabric.cpp" "src/accel/CMakeFiles/drift_accel.dir/fabric.cpp.o" "gcc" "src/accel/CMakeFiles/drift_accel.dir/fabric.cpp.o.d"
  "/root/repo/src/accel/timeline.cpp" "src/accel/CMakeFiles/drift_accel.dir/timeline.cpp.o" "gcc" "src/accel/CMakeFiles/drift_accel.dir/timeline.cpp.o.d"
  "/root/repo/src/accel/traffic.cpp" "src/accel/CMakeFiles/drift_accel.dir/traffic.cpp.o" "gcc" "src/accel/CMakeFiles/drift_accel.dir/traffic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/drift_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/systolic/CMakeFiles/drift_systolic.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/drift_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/drift_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/drift_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/drift_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/drift_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
