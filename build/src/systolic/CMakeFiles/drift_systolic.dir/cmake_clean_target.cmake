file(REMOVE_RECURSE
  "libdrift_systolic.a"
)
