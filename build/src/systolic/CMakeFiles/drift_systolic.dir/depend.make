# Empty dependencies file for drift_systolic.
# This may be replaced when dependencies are built.
