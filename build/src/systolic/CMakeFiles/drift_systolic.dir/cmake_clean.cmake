file(REMOVE_RECURSE
  "CMakeFiles/drift_systolic.dir/cycle_sim.cpp.o"
  "CMakeFiles/drift_systolic.dir/cycle_sim.cpp.o.d"
  "CMakeFiles/drift_systolic.dir/stall_model.cpp.o"
  "CMakeFiles/drift_systolic.dir/stall_model.cpp.o.d"
  "libdrift_systolic.a"
  "libdrift_systolic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drift_systolic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
