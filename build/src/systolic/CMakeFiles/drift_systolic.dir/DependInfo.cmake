
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/systolic/cycle_sim.cpp" "src/systolic/CMakeFiles/drift_systolic.dir/cycle_sim.cpp.o" "gcc" "src/systolic/CMakeFiles/drift_systolic.dir/cycle_sim.cpp.o.d"
  "/root/repo/src/systolic/stall_model.cpp" "src/systolic/CMakeFiles/drift_systolic.dir/stall_model.cpp.o" "gcc" "src/systolic/CMakeFiles/drift_systolic.dir/stall_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/drift_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/drift_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/drift_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/drift_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
