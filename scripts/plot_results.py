#!/usr/bin/env python3
"""Plot the CSVs the bench binaries emit.

Each bench writes a CSV into the working directory it ran from; point
this script at that directory and it renders one PNG per available
artifact (matplotlib required, everything optional):

    python3 scripts/plot_results.py --dir . --out plots/

The plots mirror the paper's figures: grouped speedup bars (Fig. 7),
stacked energy breakdown (Fig. 8), accuracy bars (Fig. 6), and the
threshold trade-off curve (ablation B).
"""

import argparse
import csv
import os
import sys


def read_csv(path):
    with open(path, newline="") as f:
        rows = list(csv.DictReader(f))
    return rows


def maybe(path):
    return path if os.path.exists(path) else None


def plot_fig7(rows, out):
    import matplotlib.pyplot as plt

    models = [r["model"] for r in rows]
    x = range(len(models))
    width = 0.27
    fig, ax = plt.subplots(figsize=(9, 4))
    ax.bar([i - width for i in x], [float(r["bitfusion"]) for r in rows],
           width, label="BitFusion")
    ax.bar(list(x), [float(r["drq"]) for r in rows], width, label="DRQ")
    ax.bar([i + width for i in x], [float(r["drift"]) for r in rows],
           width, label="Drift")
    ax.set_xticks(list(x))
    ax.set_xticklabels(models, rotation=20)
    ax.set_ylabel("speedup over Eyeriss")
    ax.set_title("Figure 7: latency speedup")
    ax.legend()
    fig.tight_layout()
    fig.savefig(out)
    print("wrote", out)


def plot_fig8(rows, out):
    import matplotlib.pyplot as plt

    designs = ["Eyeriss", "BitFusion", "DRQ", "Drift"]
    models = sorted({r["model"] for r in rows})
    fig, axes = plt.subplots(1, len(models), figsize=(3 * len(models), 4),
                             sharey=True)
    if len(models) == 1:
        axes = [axes]
    parts = ["static", "dram", "buffer", "core"]
    for ax, model in zip(axes, models):
        sel = {r["design"]: r for r in rows if r["model"] == model}
        bottoms = [0.0] * len(designs)
        for part in parts:
            vals = [float(sel[d]["normalized"]) * float(sel[d][part])
                    for d in designs]
            ax.bar(designs, vals, bottom=bottoms, label=part)
            bottoms = [b + v for b, v in zip(bottoms, vals)]
        ax.set_title(model)
        ax.tick_params(axis="x", rotation=45)
    axes[0].set_ylabel("energy normalized to Eyeriss")
    axes[-1].legend()
    fig.suptitle("Figure 8: energy breakdown")
    fig.tight_layout()
    fig.savefig(out)
    print("wrote", out)


def plot_fig6(rows, out):
    import matplotlib.pyplot as plt

    models = [r["model"] for r in rows]
    x = range(len(models))
    width = 0.2
    fig, ax = plt.subplots(figsize=(9, 4))
    for off, key in zip((-1.5, -0.5, 0.5, 1.5),
                        ("fp32", "int8", "drq", "drift")):
        ax.bar([i + off * width for i in x],
               [100 * float(r[key]) for r in rows], width,
               label=key.upper())
    ax.set_xticks(list(x))
    ax.set_xticklabels(models, rotation=20)
    ax.set_ylabel("accuracy (%)")
    ax.set_title("Figure 6: accuracy per quantization scheme")
    ax.legend()
    fig.tight_layout()
    fig.savefig(out)
    print("wrote", out)


def plot_threshold(rows, out):
    import matplotlib.pyplot as plt

    budgets = [float(r["budget"]) for r in rows]
    fig, ax1 = plt.subplots(figsize=(6, 4))
    ax1.semilogx(budgets, [100 * float(r["accuracy"]) for r in rows],
                 "o-", label="accuracy")
    ax1.set_xlabel("noise budget")
    ax1.set_ylabel("accuracy (%)")
    ax2 = ax1.twinx()
    ax2.semilogx(budgets, [100 * float(r["low_fraction"]) for r in rows],
                 "s--", color="tab:orange", label="4-bit share")
    ax2.set_ylabel("4-bit share (%)")
    ax1.set_title("Ablation B: threshold trade-off")
    fig.tight_layout()
    fig.savefig(out)
    print("wrote", out)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dir", default=".", help="where the CSVs live")
    parser.add_argument("--out", default="plots", help="output directory")
    args = parser.parse_args()

    try:
        import matplotlib  # noqa: F401
    except ImportError:
        print("matplotlib not installed; nothing to do", file=sys.stderr)
        return 1

    os.makedirs(args.out, exist_ok=True)
    d = args.dir
    jobs = [
        (maybe(os.path.join(d, "fig7_latency.csv")), plot_fig7, "fig7.png"),
        (maybe(os.path.join(d, "fig8_energy.csv")), plot_fig8, "fig8.png"),
        (maybe(os.path.join(d, "fig6_accuracy.csv")), plot_fig6, "fig6.png"),
        (maybe(os.path.join(d, "ablation_threshold.csv")), plot_threshold,
         "ablation_threshold.png"),
    ]
    plotted = 0
    for path, fn, name in jobs:
        if path is None:
            continue
        fn(read_csv(path), os.path.join(args.out, name))
        plotted += 1
    if plotted == 0:
        print("no CSVs found in", d, "- run the bench binaries first",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
