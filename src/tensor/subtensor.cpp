#include "tensor/subtensor.hpp"

#include "util/assert.hpp"

namespace drift {

SubTensorView::SubTensorView(std::vector<Run> runs) : runs_(std::move(runs)) {
  for (const Run& r : runs_) {
    DRIFT_CHECK(r.offset >= 0 && r.length > 0, "invalid run");
    size_ += r.length;
  }
}

std::vector<SubTensorView> partition_rows(const Shape& shape) {
  DRIFT_CHECK(shape.rank() == 2, "partition_rows requires a rank-2 shape");
  const std::int64_t rows = shape.dim(0);
  const std::int64_t cols = shape.dim(1);
  DRIFT_CHECK(cols > 0, "empty rows");
  std::vector<SubTensorView> views;
  views.reserve(static_cast<std::size_t>(rows));
  for (std::int64_t r = 0; r < rows; ++r) {
    views.emplace_back(std::vector<Run>{{r * cols, cols}});
  }
  return views;
}

std::vector<SubTensorView> partition_regions(const Shape& shape,
                                             std::int64_t region) {
  DRIFT_CHECK(shape.rank() == 3, "partition_regions requires [C,H,W]");
  DRIFT_CHECK(region > 0, "region size must be positive");
  const std::int64_t C = shape.dim(0), H = shape.dim(1), W = shape.dim(2);
  std::vector<SubTensorView> views;
  for (std::int64_t h0 = 0; h0 < H; h0 += region) {
    const std::int64_t h1 = std::min(h0 + region, H);
    for (std::int64_t w0 = 0; w0 < W; w0 += region) {
      const std::int64_t w1 = std::min(w0 + region, W);
      std::vector<Run> runs;
      runs.reserve(static_cast<std::size_t>(C * (h1 - h0)));
      for (std::int64_t c = 0; c < C; ++c) {
        for (std::int64_t h = h0; h < h1; ++h) {
          runs.push_back({(c * H + h) * W + w0, w1 - w0});
        }
      }
      views.emplace_back(std::move(runs));
    }
  }
  return views;
}

std::vector<SubTensorView> partition_blocks(std::int64_t numel,
                                            std::int64_t block) {
  DRIFT_CHECK(numel > 0 && block > 0, "invalid block partition");
  std::vector<SubTensorView> views;
  for (std::int64_t off = 0; off < numel; off += block) {
    views.emplace_back(
        std::vector<Run>{{off, std::min(block, numel - off)}});
  }
  return views;
}

}  // namespace drift
