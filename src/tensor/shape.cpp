#include "tensor/shape.hpp"

#include <sstream>

#include "util/assert.hpp"

namespace drift {

Shape::Shape(std::initializer_list<std::int64_t> dims) : dims_(dims) {
  for (auto d : dims_) DRIFT_CHECK(d >= 0, "negative dimension");
}

Shape::Shape(std::vector<std::int64_t> dims) : dims_(std::move(dims)) {
  for (auto d : dims_) DRIFT_CHECK(d >= 0, "negative dimension");
}

std::int64_t Shape::dim(std::int64_t axis) const {
  DRIFT_CHECK_INDEX(axis, rank());
  return dims_[static_cast<std::size_t>(axis)];
}

std::int64_t Shape::numel() const {
  std::int64_t n = 1;
  for (auto d : dims_) n *= d;
  return n;
}

std::vector<std::int64_t> Shape::strides() const {
  std::vector<std::int64_t> s(dims_.size());
  std::int64_t acc = 1;
  for (std::int64_t i = rank() - 1; i >= 0; --i) {
    s[static_cast<std::size_t>(i)] = acc;
    acc *= dims_[static_cast<std::size_t>(i)];
  }
  return s;
}

std::int64_t Shape::offset(const std::vector<std::int64_t>& index) const {
  DRIFT_CHECK(static_cast<std::int64_t>(index.size()) == rank(),
              "index rank mismatch");
  const auto s = strides();
  std::int64_t off = 0;
  for (std::size_t i = 0; i < index.size(); ++i) {
    DRIFT_CHECK(index[i] >= 0 && index[i] < dims_[i], "index out of bounds");
    off += index[i] * s[i];
  }
  return off;
}

std::string Shape::to_string() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i) os << ", ";
    os << dims_[i];
  }
  os << ']';
  return os.str();
}

}  // namespace drift
