// Tensor shapes (row-major, up to rank 4 used in practice).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace drift {

/// Row-major tensor shape.  Dimensions are signed (int64) per the core
/// guidelines' advice to avoid unsigned arithmetic in index math.
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<std::int64_t> dims);
  explicit Shape(std::vector<std::int64_t> dims);

  std::int64_t rank() const { return static_cast<std::int64_t>(dims_.size()); }
  std::int64_t dim(std::int64_t axis) const;
  std::int64_t operator[](std::int64_t axis) const { return dim(axis); }

  /// Total element count (1 for rank-0).
  std::int64_t numel() const;

  /// Row-major strides, in elements.
  std::vector<std::int64_t> strides() const;

  /// Flat offset of a multi-index (must have length == rank).
  std::int64_t offset(const std::vector<std::int64_t>& index) const;

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return !(*this == other); }

  const std::vector<std::int64_t>& dims() const { return dims_; }

  std::string to_string() const;

 private:
  std::vector<std::int64_t> dims_;
};

}  // namespace drift
