// Owning dense tensor.
//
// Deliberately minimal: contiguous row-major storage, element access,
// spans.  All heavy math lives in src/nn; all quantization logic in
// src/core operates on spans or SubTensorView gathers.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "tensor/shape.hpp"
#include "util/assert.hpp"

namespace drift {

/// Dense row-major tensor of element type T (float, int32_t, ...).
template <typename T>
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape)
      : shape_(std::move(shape)),
        data_(static_cast<std::size_t>(shape_.numel())) {}
  Tensor(Shape shape, T fill_value)
      : shape_(std::move(shape)),
        data_(static_cast<std::size_t>(shape_.numel()), fill_value) {}
  Tensor(Shape shape, std::vector<T> data)
      : shape_(std::move(shape)), data_(std::move(data)) {
    DRIFT_CHECK(static_cast<std::int64_t>(data_.size()) == shape_.numel(),
                "data size does not match shape");
  }

  const Shape& shape() const { return shape_; }
  std::int64_t numel() const { return shape_.numel(); }

  std::span<T> data() { return data_; }
  std::span<const T> data() const { return data_; }

  T& at(std::int64_t flat) {
    DRIFT_CHECK_INDEX(flat, numel());
    return data_[static_cast<std::size_t>(flat)];
  }
  const T& at(std::int64_t flat) const {
    DRIFT_CHECK_INDEX(flat, numel());
    return data_[static_cast<std::size_t>(flat)];
  }

  /// 2-D accessor (checked).
  T& operator()(std::int64_t i, std::int64_t j) {
    return data_[static_cast<std::size_t>(shape_.offset({i, j}))];
  }
  const T& operator()(std::int64_t i, std::int64_t j) const {
    return data_[static_cast<std::size_t>(shape_.offset({i, j}))];
  }

  /// 3-D accessor (checked).
  T& operator()(std::int64_t i, std::int64_t j, std::int64_t k) {
    return data_[static_cast<std::size_t>(shape_.offset({i, j, k}))];
  }
  const T& operator()(std::int64_t i, std::int64_t j, std::int64_t k) const {
    return data_[static_cast<std::size_t>(shape_.offset({i, j, k}))];
  }

  /// 4-D accessor (checked).
  T& operator()(std::int64_t a, std::int64_t b, std::int64_t c,
                std::int64_t d) {
    return data_[static_cast<std::size_t>(shape_.offset({a, b, c, d}))];
  }
  const T& operator()(std::int64_t a, std::int64_t b, std::int64_t c,
                      std::int64_t d) const {
    return data_[static_cast<std::size_t>(shape_.offset({a, b, c, d}))];
  }

  void fill(T value) { std::fill(data_.begin(), data_.end(), value); }

  /// Contiguous row view for rank-2 tensors.
  std::span<T> row(std::int64_t r) {
    DRIFT_CHECK(shape_.rank() == 2, "row() requires a rank-2 tensor");
    DRIFT_CHECK_INDEX(r, shape_.dim(0));
    const auto width = static_cast<std::size_t>(shape_.dim(1));
    return std::span<T>(data_).subspan(static_cast<std::size_t>(r) * width,
                                       width);
  }
  std::span<const T> row(std::int64_t r) const {
    DRIFT_CHECK(shape_.rank() == 2, "row() requires a rank-2 tensor");
    DRIFT_CHECK_INDEX(r, shape_.dim(0));
    const auto width = static_cast<std::size_t>(shape_.dim(1));
    return std::span<const T>(data_).subspan(
        static_cast<std::size_t>(r) * width, width);
  }

 private:
  Shape shape_;
  std::vector<T> data_;
};

using TensorF = Tensor<float>;
using TensorI32 = Tensor<std::int32_t>;
using TensorI8 = Tensor<std::int8_t>;

}  // namespace drift
