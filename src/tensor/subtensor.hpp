// Sub-tensor views and partitioning.
//
// The unit of dynamic precision selection in the paper is the
// *sub-tensor*: a token row (BERT/GPT), a patch row (ViT/DeiT), an
// output-channel row of a weight matrix, or a spatial region of a CNN
// feature map (the DRQ granularity).  A SubTensorView describes one
// sub-tensor as a list of contiguous runs over a flat buffer, so a
// single representation covers all granularities.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/shape.hpp"
#include "tensor/tensor.hpp"

namespace drift {

/// One contiguous run of elements inside a flat tensor buffer.
struct Run {
  std::int64_t offset = 0;
  std::int64_t length = 0;
};

/// A sub-tensor: an ordered list of runs.  Views do not own data; they
/// are applied to any buffer with the same layout.
class SubTensorView {
 public:
  SubTensorView() = default;
  explicit SubTensorView(std::vector<Run> runs);

  const std::vector<Run>& runs() const { return runs_; }
  std::int64_t size() const { return size_; }

  /// Copies the sub-tensor's elements (in run order) into `out`, which
  /// must have exactly size() elements.
  template <typename T>
  void gather(std::span<const T> buffer, std::span<T> out) const {
    DRIFT_CHECK(static_cast<std::int64_t>(out.size()) == size_,
                "gather output size mismatch");
    std::size_t pos = 0;
    for (const Run& r : runs_) {
      for (std::int64_t i = 0; i < r.length; ++i) {
        out[pos++] = buffer[static_cast<std::size_t>(r.offset + i)];
      }
    }
  }

  /// Writes `values` (in run order) back into `buffer`.
  template <typename T>
  void scatter(std::span<const T> values, std::span<T> buffer) const {
    DRIFT_CHECK(static_cast<std::int64_t>(values.size()) == size_,
                "scatter input size mismatch");
    std::size_t pos = 0;
    for (const Run& r : runs_) {
      for (std::int64_t i = 0; i < r.length; ++i) {
        buffer[static_cast<std::size_t>(r.offset + i)] = values[pos++];
      }
    }
  }

  /// Applies `fn(element)` to every element of the view in `buffer`.
  template <typename T, typename Fn>
  void for_each(std::span<const T> buffer, Fn&& fn) const {
    for (const Run& r : runs_) {
      for (std::int64_t i = 0; i < r.length; ++i) {
        fn(buffer[static_cast<std::size_t>(r.offset + i)]);
      }
    }
  }

  /// Applies `fn(element&)` mutably.
  template <typename T, typename Fn>
  void transform(std::span<T> buffer, Fn&& fn) const {
    for (const Run& r : runs_) {
      for (std::int64_t i = 0; i < r.length; ++i) {
        fn(buffer[static_cast<std::size_t>(r.offset + i)]);
      }
    }
  }

 private:
  std::vector<Run> runs_;
  std::int64_t size_ = 0;
};

/// Granularity choices for partitioning (Section 2.1 / 5.1).
enum class Granularity {
  kRow,     ///< one sub-tensor per row of a [M, K] matrix (token / patch)
  kRegion,  ///< DRQ-style g×g spatial region across all channels of [C,H,W]
  kBlock,   ///< flat fixed-size chunks (fallback / ablation)
};

/// Partitions a rank-2 [rows, cols] tensor into per-row sub-tensors.
std::vector<SubTensorView> partition_rows(const Shape& shape);

/// Partitions a rank-3 [C, H, W] tensor into spatial regions of size
/// region×region covering all channels (DRQ granularity).  Edge regions
/// are smaller when H or W is not a multiple of `region`.
std::vector<SubTensorView> partition_regions(const Shape& shape,
                                             std::int64_t region);

/// Partitions a flat buffer of `numel` elements into chunks of
/// `block` elements (last chunk may be short).
std::vector<SubTensorView> partition_blocks(std::int64_t numel,
                                            std::int64_t block);

}  // namespace drift
