// Eyeriss baseline (Chen et al., ISSCC/ISCA 2016): a 14 x 16
// row-stationary PE array executing the uncompressed FP32 model
// (Section 5.1 normalizes all results to this design).
//
// The row-stationary mapping assigns filter rows to PE rows and output
// rows to PE columns; when the kernel is shorter than 14 rows, filter
// sets are replicated vertically.  Utilization therefore depends on
// how (kernel, output height) fit the 14 x 16 grid — full-size convs
// map well, pointwise/FC layers less so.
#pragma once

#include "accel/accelerator.hpp"

namespace drift::accel {

class EyerissModel : public Accelerator {
 public:
  explicit EyerissModel(AccelConfig config) : Accelerator(std::move(config)) {}

  std::string name() const override { return "Eyeriss"; }

  static constexpr std::int64_t kPeRows = 14;
  static constexpr std::int64_t kPeCols = 16;
  static constexpr std::int64_t kPeCount = kPeRows * kPeCols;  // 224

  /// Active PEs for a layer under the row-stationary mapping.
  static std::int64_t mapped_pes(const nn::LayerGemm& layer);

  RunResult run(const nn::WorkloadSpec& spec,
                const std::vector<nn::LayerMix>& mixes) override;
};

}  // namespace drift::accel
