// DRQ accelerator baseline (Song et al., ISCA 2020): one variable-
// speed systolic array executing dynamic 4/8-bit activations against
// static 8-bit weights.
//
// The whole array runs in one precision mode at a time; switching
// modes requires draining the pipeline, so finely interleaved
// precision patterns force either massive switch bubbles or a
// fallback to uniform 8-bit execution (the controller picks the
// cheaper, per layer).  This is the data-flow-stall limitation Drift's
// split arrays remove (Sections 2.3 and 5.3).
#pragma once

#include "accel/accelerator.hpp"

namespace drift::accel {

class DrqAccelModel : public Accelerator {
 public:
  explicit DrqAccelModel(AccelConfig config)
      : Accelerator(std::move(config)) {}

  std::string name() const override { return "DRQ"; }

  RunResult run(const nn::WorkloadSpec& spec,
                const std::vector<nn::LayerMix>& mixes) override;
};

}  // namespace drift::accel
