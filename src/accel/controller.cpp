#include "accel/controller.hpp"

#include <algorithm>

#include "core/scheduler.hpp"
#include "util/assert.hpp"

namespace drift::accel {

ControllerReport evaluate_controller(const std::vector<nn::LayerMix>& mixes,
                                     const core::ArrayDims& array,
                                     const ControllerConfig& config) {
  DRIFT_CHECK(config.selector_throughput > 0, "invalid selector rate");
  ControllerReport report;
  std::int64_t overlapped = 0;
  for (const nn::LayerMix& mix : mixes) {
    ControllerLayerReport lr;
    lr.layer = mix.layer.name;
    lr.subtensors = mix.layer.dims.M + mix.layer.dims.N;
    // 1 bit low/high + 3 bits encoding one of the five (hc, lc)
    // choices, padded to a nibble for alignment.
    lr.index_bits = lr.subtensors * 4;
    lr.selection_cycles =
        (lr.subtensors + config.selector_throughput - 1) /
        config.selector_throughput;
    lr.scheduler_cycles =
        (array.rows + array.cols + 2) * config.cycles_per_split_eval;
    lr.layer_compute_cycles =
        core::schedule_greedy(mix.work, array).makespan;
    lr.overlapped = lr.selection_cycles + lr.scheduler_cycles <=
                    lr.layer_compute_cycles;
    if (lr.overlapped) ++overlapped;
    report.peak_index_bytes =
        std::max(report.peak_index_bytes, (lr.index_bits + 7) / 8);
    report.layers.push_back(std::move(lr));
  }
  report.fits_index_buffer =
      report.peak_index_bytes <= config.index_buffer_bytes;
  report.overlapped_fraction =
      mixes.empty() ? 0.0
                    : static_cast<double>(overlapped) /
                          static_cast<double>(mixes.size());
  return report;
}

}  // namespace drift::accel
