// Controller model (Section 4.1): precision selector + index buffer +
// scheduler overhead accounting.
//
// The paper claims the algorithm "utilizes existing hardware resources
// and does not introduce additional computational or area overheads":
// the pooling unit already computes the per-sub-tensor statistics, the
// precision selector is a comparator pair plus a lookup table, and the
// decisions live in a small index buffer consulted by the dispatcher.
// This module quantifies that claim for a concrete workload:
//
//   - index-buffer bytes: one (use_low, hc) record per sub-tensor of
//     the layer with the most sub-tensors (1 + 3 bits, padded to 4);
//   - selection cycles: the selector consumes one sub-tensor statistic
//     pair per cycle as the pooling unit emits it, so selection for
//     layer L+1 overlaps layer L's execution and is "free" as long as
//     it finishes first;
//   - scheduler cycles: the greedy sweep evaluates O(R + C) candidate
//     splits, one Eq. 7 evaluation each (a handful of multiplies on
//     the control processor).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/precision_mix.hpp"

namespace drift::accel {

/// Static controller provisioning.
struct ControllerConfig {
  std::int64_t index_buffer_bytes = 16 * 1024;  ///< provisioned SRAM
  std::int64_t selector_throughput = 1;  ///< sub-tensors per cycle
  /// Control-processor cycles per Eq. 7 candidate evaluation in the
  /// greedy scheduler sweep.
  std::int64_t cycles_per_split_eval = 8;
};

/// Per-layer controller cost.
struct ControllerLayerReport {
  std::string layer;
  std::int64_t subtensors = 0;       ///< activation rows + weight cols
  std::int64_t index_bits = 0;
  std::int64_t selection_cycles = 0;
  std::int64_t scheduler_cycles = 0;
  std::int64_t layer_compute_cycles = 0;  ///< what selection hides under
  bool overlapped = false;  ///< selection + scheduling fit under compute
};

/// Whole-model controller report.
struct ControllerReport {
  std::vector<ControllerLayerReport> layers;
  std::int64_t peak_index_bytes = 0;
  bool fits_index_buffer = false;
  double overlapped_fraction = 0.0;  ///< layers whose control work hides
};

/// Evaluates the controller cost of running `mixes` on the given array
/// (compute cycles from the Drift scheduler itself).
ControllerReport evaluate_controller(const std::vector<nn::LayerMix>& mixes,
                                     const core::ArrayDims& array,
                                     const ControllerConfig& config = {});

}  // namespace drift::accel
