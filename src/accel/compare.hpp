// End-to-end comparison harness: runs one workload on all four
// accelerator models with the matching quantization algorithm per
// design, and reports results normalized to Eyeriss (the convention of
// Figures 7 and 8).
#pragma once

#include <vector>

#include "accel/accelerator.hpp"
#include "accel/drift_accel.hpp"

namespace drift::accel {

/// One workload's results across the four designs.
struct Comparison {
  std::string model;
  RunResult eyeriss;
  RunResult bitfusion;
  RunResult drq;
  RunResult drift;

  /// Latency speedups over Eyeriss (Figure 7's y-axis).
  double speedup_bitfusion() const;
  double speedup_drq() const;
  double speedup_drift() const;

  /// Normalized energy (Eyeriss = 1; Figure 8's y-axis).
  double energy_bitfusion() const;
  double energy_drq() const;
  double energy_drift() const;
};

/// Mix-generation + comparison settings.
struct CompareConfig {
  AccelConfig hw{};
  core::SelectorConfig drift_selector{};  ///< hp/lp (δ when fixed mode)
  core::DrqConfig drq_config{};
  bool drift_dynamic_weights = true;
  bool auto_threshold = true;   ///< per-operand minimum-δ selection
  double noise_budget = 0.05;   ///< excess-noise budget for auto mode
  SchedulerPolicy drift_policy = SchedulerPolicy::kGreedy;
  std::uint64_t seed = 17;
};

/// Runs the four designs on `spec`.
Comparison compare_workload(const nn::WorkloadSpec& spec,
                            const CompareConfig& config);

}  // namespace drift::accel
