#include "accel/drift_accel.hpp"

#include <algorithm>
#include <cmath>

#include "accel/fabric.hpp"
#include "accel/traffic.hpp"
#include "core/analytical_model.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"

namespace drift::accel {

std::string to_string(SchedulerPolicy policy) {
  switch (policy) {
    case SchedulerPolicy::kGreedy: return "greedy";
    case SchedulerPolicy::kExhaustive: return "exhaustive";
    case SchedulerPolicy::kFixed: return "fixed";
  }
  return "?";
}

std::string DriftAccelModel::name() const {
  return policy_ == SchedulerPolicy::kGreedy
             ? "Drift"
             : "Drift(" + to_string(policy_) + ")";
}

core::SplitDecision DriftAccelModel::schedule(
    const core::LayerWork& work) const {
  switch (policy_) {
    case SchedulerPolicy::kGreedy:
      return core::schedule_greedy(work, config_.array);
    case SchedulerPolicy::kExhaustive:
      return core::schedule_exhaustive(work, config_.array);
    case SchedulerPolicy::kFixed:
      return core::schedule_fixed_quarters(work, config_.array);
  }
  DRIFT_CHECK(false, "unreachable policy");
  return {};
}

RunResult DriftAccelModel::run(const nn::WorkloadSpec& spec,
                               const std::vector<nn::LayerMix>& mixes) {
  DRIFT_CHECK(mixes.size() == spec.layers.size(), "mix/layer mismatch");
  RunResult result;
  result.accelerator = name();
  result.model = spec.model;
  dram::DramModel dram(config_.dram);
  const auto& ec = config_.energy;
  const auto& array = config_.array;
  BitGroupFabric fabric(array);

  for (const nn::LayerMix& mix : mixes) {
    DRIFT_OBS_LAYER_SCOPE(mix.layer.name);
    DRIFT_OBS_SPAN("drift_accel.layer");
    const core::GemmDims& dims = mix.layer.dims;
    LayerResult lr;
    lr.layer = mix.layer.name;

    const core::LayerWork& work = mix.work;
    const core::SplitDecision split = schedule(work);
    // Reprogram the BG link directions for this layer's split: the
    // in-flight wavefronts drain and the changed link rows rewrite
    // (accel/fabric.hpp models the exact cost).
    const std::int64_t reconfigure =
        fabric.reconfigure_cycles(split.r, split.c);
    DRIFT_CHECK(fabric.validate().empty(),
                "fabric configuration must form four systolic arrays");
    lr.compute_cycles = split.makespan + reconfigure;

    // Stalls for Drift are load imbalance: makespan minus the
    // work-proportional lower bound on this many units.
    const double total_bb_ops = total_bitbrick_ops(work);
    const double ideal_cycles =
        total_bb_ops / (static_cast<double>(array.units()) * 16.0);
    lr.stall_cycles = std::max<std::int64_t>(
        lr.compute_cycles - static_cast<std::int64_t>(std::ceil(ideal_cycles)),
        0);

    // Tiling for psum/act re-stream traffic: mix-weighted widths on the
    // full grid (each quadrant tiles its own share; the aggregate is
    // the same to first order).
    const OperandBits bits = operand_bits_from_work(work);
    const std::int64_t k_tiles =
        core::ws_k_tiles(dims.K, bits.act_bits, array.rows);
    const std::int64_t n_tiles =
        core::ws_n_tiles(dims.N, bits.weight_bits, array.cols);
    const LayerTraffic traffic =
        compute_traffic(dims, bits, n_tiles, k_tiles, config_);
    const DramOutcome mem = dram_outcome(traffic, dram);

    lr.dram_cycles = mem.core_cycles;
    lr.dram_bytes = traffic.dram_bytes();
    lr.cycles = std::max(lr.compute_cycles, lr.dram_cycles) *
                mix.layer.repeat;

    // Utilization in BitBrick-op terms (16 BB ops per unit-cycle).
    lr.utilization =
        total_bb_ops / (static_cast<double>(lr.compute_cycles) *
                        static_cast<double>(array.units()) * 16.0);

    lr.energy.core_pj = core_energy_pj(work, ec) * mix.layer.repeat;
    lr.energy.buffer_pj = buffer_energy_pj(traffic, ec) * mix.layer.repeat;
    lr.energy.dram_pj = mem.energy_pj * mix.layer.repeat;

    DRIFT_OBS_COUNT("accel.layers", 1);
    DRIFT_OBS_COUNT("accel.compute_cycles", lr.compute_cycles);
    DRIFT_OBS_COUNT("accel.stall_cycles", lr.stall_cycles);
    DRIFT_OBS_LAYER(rec, rec->compute_cycles += lr.compute_cycles;
                    rec->stall_cycles += lr.stall_cycles);

    result.cycles += lr.cycles;
    result.stall_cycles += lr.stall_cycles * mix.layer.repeat;
    result.dram_bytes += lr.dram_bytes * mix.layer.repeat;
    result.energy += lr.energy;
    result.layers.push_back(std::move(lr));
  }

  result.energy.static_pj = ec.static_pj_per_unit_cycle *
                            static_cast<double>(config_.array.units()) *
                            static_cast<double>(result.cycles);
  return result;
}

}  // namespace drift::accel
