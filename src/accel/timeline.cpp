#include "accel/timeline.hpp"

#include <algorithm>
#include <sstream>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"

namespace drift::accel {

TimelineResult build_timeline(const std::vector<TimelineLayer>& layers) {
  TimelineResult result;
  result.entries.reserve(layers.size());

  std::int64_t prev_dram_end = 0;
  std::int64_t prev_compute_start = 0;
  std::int64_t prev_compute_end = 0;
  double dram_total = 0.0, dram_exposed = 0.0;

  for (const TimelineLayer& layer : layers) {
    DRIFT_CHECK(layer.compute_cycles >= 0 && layer.dram_cycles >= 0,
                "negative cycles");
    TimelineEntry e;
    e.name = layer.name;
    e.dram_start = std::max(prev_dram_end, prev_compute_start);
    e.dram_end = e.dram_start + layer.dram_cycles;
    e.compute_start = std::max(e.dram_end, prev_compute_end);
    e.compute_end = e.compute_start + layer.compute_cycles;

    dram_total += static_cast<double>(layer.dram_cycles);
    // The exposed portion is whatever the compute engine had to wait
    // beyond the previous layer's compute end.
    dram_exposed +=
        static_cast<double>(std::max<std::int64_t>(
            e.compute_start - prev_compute_end, 0));

    prev_dram_end = e.dram_end;
    prev_compute_start = e.compute_start;
    prev_compute_end = e.compute_end;
    result.entries.push_back(std::move(e));
  }
  result.total_cycles = prev_compute_end;
  result.overlap_fraction =
      dram_total > 0.0 ? 1.0 - dram_exposed / dram_total : 1.0;

  DRIFT_OBS_COUNT("timeline.builds", 1);
  DRIFT_OBS_COUNT("timeline.total_cycles", result.total_cycles);
#ifndef DRIFT_OBS_OFF
  // Render the double-buffered schedule on the simulated-cycle tracks
  // (pid 1, 1 cycle == 1 "µs") so chrome://tracing shows DMA prefetch
  // overlapping compute exactly as the model scheduled it.
  obs::Tracer& tracer = obs::Tracer::global();
  if (tracer.enabled()) {
    const std::uint32_t dram_tid = tracer.sim_track("timeline.dram");
    const std::uint32_t compute_tid = tracer.sim_track("timeline.compute");
    for (const TimelineEntry& e : result.entries) {
      tracer.complete(e.name + " [dram]", dram_tid, e.dram_start,
                      e.dram_end - e.dram_start);
      tracer.complete(e.name + " [compute]", compute_tid, e.compute_start,
                      e.compute_end - e.compute_start);
    }
  }
#endif
  return result;
}

std::string TimelineResult::gantt(std::size_t width) const {
  if (entries.empty() || total_cycles == 0) return "";
  std::ostringstream os;
  const double scale = static_cast<double>(width) /
                       static_cast<double>(total_cycles);
  for (const TimelineEntry& e : entries) {
    std::string row(width + 1, ' ');
    const auto mark = [&](std::int64_t from, std::int64_t to, char ch) {
      auto a = static_cast<std::size_t>(from * scale);
      auto b = std::max(static_cast<std::size_t>(to * scale), a + 1);
      for (std::size_t i = a; i < std::min(b, row.size()); ++i) {
        row[i] = ch;
      }
    };
    mark(e.dram_start, e.dram_end, '-');      // DMA occupancy
    mark(e.compute_start, e.compute_end, '#');  // array occupancy
    os.width(18);
    os << std::left << e.name.substr(0, 17) << '|' << row << "|\n";
  }
  return os.str();
}

}  // namespace drift::accel
