// The Drift accelerator (Section 4): a BitGroup grid with
// bidirectional inter-BG links that is split, per layer, into four
// independent weight-stationary systolic arrays — one per precision
// class (hh / hl / lh / ll) — sized by the balanced online scheduler
// (Equation 8).  Steering each class to its own array removes the
// data-flow stalls that throttle single-array designs.
#pragma once

#include "accel/accelerator.hpp"
#include "core/scheduler.hpp"

namespace drift::accel {

/// Which split policy the controller uses (ablation A).
enum class SchedulerPolicy {
  kGreedy,      ///< the paper's O(R + C) alternating sweep
  kExhaustive,  ///< oracle over all (r, c)
  kFixed,       ///< static quarter split (no load balancing)
};

std::string to_string(SchedulerPolicy policy);

class DriftAccelModel : public Accelerator {
 public:
  DriftAccelModel(AccelConfig config,
                  SchedulerPolicy policy = SchedulerPolicy::kGreedy)
      : Accelerator(std::move(config)), policy_(policy) {}

  std::string name() const override;

  RunResult run(const nn::WorkloadSpec& spec,
                const std::vector<nn::LayerMix>& mixes) override;

  SchedulerPolicy policy() const { return policy_; }

 private:
  core::SplitDecision schedule(const core::LayerWork& work) const;

  SchedulerPolicy policy_;
};

}  // namespace drift::accel
