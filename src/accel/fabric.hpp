// BitGroup fabric model (Section 4.2, Figure 5).
//
// Drift's computing engine is a grid of BitGroups whose inter-BG links
// are *bidirectional*: by programming each BG's activation-flow and
// psum-flow direction, the controller carves the one physical grid
// into four independent weight-stationary systolic arrays:
//
//   - the split point (r, c) assigns rows [0, r) and columns [0, c) to
//     the high-precision activation / weight classes;
//   - the top two sub-arrays drain partial sums *upward* (outputs exit
//     the top edge), the bottom two drain *downward* — the exact
//     reallocation move the paper describes ("reconfigure the data
//     flow direction of the psum in the third row of BGs from
//     downward to upward");
//   - the left two sub-arrays stream activations *rightward* from the
//     west edge, the right two stream *leftward* from the east edge.
//
// This module materializes that link state, validates that a
// configuration forms four well-formed systolic arrays (every psum
// chain terminates at a chip edge without crossing a split boundary,
// every activation stream originates at a chip edge), and prices
// reconfiguration between layers in link rewrites and drain cycles.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/analytical_model.hpp"
#include "core/scheduler.hpp"

namespace drift::accel {

/// Per-BG dataflow directions.
enum class ActFlow : std::uint8_t { kEast, kWest };   ///< activation link
enum class PsumFlow : std::uint8_t { kSouth, kNorth };  ///< psum link

/// One BitGroup's link configuration.
struct BgLinks {
  ActFlow act = ActFlow::kEast;
  PsumFlow psum = PsumFlow::kSouth;

  bool operator==(const BgLinks&) const = default;
};

/// The four sub-arrays a split produces, with their grid extents.
struct SubArray {
  core::Quadrant quadrant;
  std::int64_t row0 = 0, rows = 0;
  std::int64_t col0 = 0, cols = 0;

  core::ArrayDims dims() const { return {rows, cols}; }
  bool empty() const { return rows == 0 || cols == 0; }
};

/// The reconfigurable BG grid.
class BitGroupFabric {
 public:
  explicit BitGroupFabric(core::ArrayDims dims);

  const core::ArrayDims& dims() const { return dims_; }

  /// Programs the four-way split at row cut `r` and column cut `c`
  /// (both may be 0 or the full extent for degenerate class mixes).
  /// Returns the number of BG link registers whose direction changed.
  std::int64_t configure_split(std::int64_t r, std::int64_t c);

  /// Cycles one reconfiguration costs: the in-flight wavefronts drain
  /// (R + C - 2) and changed link registers are rewritten through the
  /// column-broadcast config bus (one cycle per affected row).
  std::int64_t reconfigure_cycles(std::int64_t r, std::int64_t c);

  /// Current split descriptors, in Quadrant order (hh, hl, lh, ll).
  std::vector<SubArray> sub_arrays() const;

  /// Link state of one BG (row-major query).
  const BgLinks& links(std::int64_t row, std::int64_t col) const;

  /// Structural validation of the current configuration:
  ///   - psum chains are uniform within each sub-array column and
  ///     terminate at the top or bottom chip edge,
  ///   - activation streams are uniform within each sub-array row and
  ///     originate at the west or east chip edge,
  ///   - no chain crosses the split boundary.
  /// Returns an empty string when valid, else a diagnostic.
  std::string validate() const;

  std::int64_t current_r() const { return r_; }
  std::int64_t current_c() const { return c_; }

 private:
  BgLinks& mutable_links(std::int64_t row, std::int64_t col);

  core::ArrayDims dims_;
  std::int64_t r_ = 0, c_ = 0;
  std::vector<BgLinks> grid_;
};

}  // namespace drift::accel
