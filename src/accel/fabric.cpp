#include "accel/fabric.hpp"

#include <algorithm>
#include <sstream>

#include "util/assert.hpp"

namespace drift::accel {

BitGroupFabric::BitGroupFabric(core::ArrayDims dims)
    : dims_(dims),
      grid_(static_cast<std::size_t>(dims.rows * dims.cols)) {
  DRIFT_CHECK(dims.rows > 0 && dims.cols > 0, "empty fabric");
  // Power-on default: one whole-grid array (everything high-precision):
  // acts stream east from the west edge, psums drain north (the whole
  // grid is the "top half" of a degenerate split at r = rows).
  configure_split(dims.rows, dims.cols);
}

const BgLinks& BitGroupFabric::links(std::int64_t row,
                                     std::int64_t col) const {
  DRIFT_CHECK_INDEX(row, dims_.rows);
  DRIFT_CHECK_INDEX(col, dims_.cols);
  return grid_[static_cast<std::size_t>(row * dims_.cols + col)];
}

BgLinks& BitGroupFabric::mutable_links(std::int64_t row, std::int64_t col) {
  DRIFT_CHECK_INDEX(row, dims_.rows);
  DRIFT_CHECK_INDEX(col, dims_.cols);
  return grid_[static_cast<std::size_t>(row * dims_.cols + col)];
}

std::int64_t BitGroupFabric::configure_split(std::int64_t r,
                                             std::int64_t c) {
  DRIFT_CHECK(r >= 0 && r <= dims_.rows, "row cut out of range");
  DRIFT_CHECK(c >= 0 && c <= dims_.cols, "column cut out of range");
  std::int64_t rewrites = 0;
  for (std::int64_t row = 0; row < dims_.rows; ++row) {
    for (std::int64_t col = 0; col < dims_.cols; ++col) {
      BgLinks next;
      // Top half (high-precision activation rows) drains north so its
      // outputs leave at the top edge; bottom half drains south.
      next.psum = row < r ? PsumFlow::kNorth : PsumFlow::kSouth;
      // Left half (high-precision weight columns) streams east from
      // the west edge; right half streams west from the east edge.
      next.act = col < c ? ActFlow::kEast : ActFlow::kWest;
      BgLinks& cur = mutable_links(row, col);
      if (!(cur == next)) {
        ++rewrites;
        cur = next;
      }
    }
  }
  r_ = r;
  c_ = c;
  return rewrites;
}

std::int64_t BitGroupFabric::reconfigure_cycles(std::int64_t r,
                                                std::int64_t c) {
  const std::int64_t drain = dims_.rows + dims_.cols - 2;
  const std::int64_t before_r = r_, before_c = c_;
  const std::int64_t rewrites = configure_split(r, c);
  if (rewrites == 0 && before_r == r && before_c == c) return 0;
  // Config bus broadcasts one row of link registers per cycle; only
  // rows whose links changed need a broadcast.
  const std::int64_t changed_rows =
      (std::max(before_r, r) - std::min(before_r, r)) +
      (before_c != c ? dims_.rows : 0);
  return drain + std::min<std::int64_t>(changed_rows, dims_.rows);
}

std::vector<SubArray> BitGroupFabric::sub_arrays() const {
  return {
      {core::Quadrant::kHH, 0, r_, 0, c_},
      {core::Quadrant::kHL, 0, r_, c_, dims_.cols - c_},
      {core::Quadrant::kLH, r_, dims_.rows - r_, 0, c_},
      {core::Quadrant::kLL, r_, dims_.rows - r_, c_, dims_.cols - c_},
  };
}

std::string BitGroupFabric::validate() const {
  std::ostringstream problems;
  // Psum chains: every column must flow uniformly north within the top
  // block and uniformly south within the bottom block, so each chain
  // reaches a chip edge without crossing the cut at row r_.
  for (std::int64_t col = 0; col < dims_.cols; ++col) {
    for (std::int64_t row = 0; row < dims_.rows; ++row) {
      const PsumFlow expect =
          row < r_ ? PsumFlow::kNorth : PsumFlow::kSouth;
      if (links(row, col).psum != expect) {
        problems << "psum link at (" << row << "," << col
                 << ") crosses the row cut; ";
      }
    }
  }
  // Activation streams: uniform east in the left block, west in the
  // right block, so each stream originates at a chip edge.
  for (std::int64_t row = 0; row < dims_.rows; ++row) {
    for (std::int64_t col = 0; col < dims_.cols; ++col) {
      const ActFlow expect = col < c_ ? ActFlow::kEast : ActFlow::kWest;
      if (links(row, col).act != expect) {
        problems << "act link at (" << row << "," << col
                 << ") crosses the column cut; ";
      }
    }
  }
  // Sub-array extents must tile the grid exactly.
  std::int64_t covered = 0;
  for (const SubArray& sa : sub_arrays()) covered += sa.rows * sa.cols;
  if (covered != dims_.rows * dims_.cols) {
    problems << "sub-arrays do not tile the grid; ";
  }
  return problems.str();
}

}  // namespace drift::accel
