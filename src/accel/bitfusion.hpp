// BitFusion baseline (Sharma et al., ISCA 2018): a systolic array of
// fusion units whose BitBricks are *spatially* fused before runtime.
// Because fusion is pre-configured, the array cannot react to per-
// sub-tensor precision; it executes statically quantized INT8 models
// (Section 5.1 pairs BitFusion with INT8).
#pragma once

#include "accel/accelerator.hpp"

namespace drift::accel {

class BitFusionModel : public Accelerator {
 public:
  explicit BitFusionModel(AccelConfig config)
      : Accelerator(std::move(config)) {}

  std::string name() const override { return "BitFusion"; }

  RunResult run(const nn::WorkloadSpec& spec,
                const std::vector<nn::LayerMix>& mixes) override;
};

}  // namespace drift::accel
