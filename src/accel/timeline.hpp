// Layer-pipelined execution timeline with double-buffered operands.
//
// The accelerator models charge each layer max(compute, dram) cycles,
// which implicitly assumes the DMA engine prefetches layer L+1's
// operands while layer L computes.  This module makes that assumption
// explicit and checkable: it builds the actual timeline under a
// double-buffering discipline —
//
//   dram_start[l]    = max(dram_end[l-1], compute_start[l-1])
//   compute_start[l] = max(dram_end[l], compute_end[l-1])
//
// (the DMA can fetch at most one layer ahead: fetching layer l+1 may
// begin once layer l's fetch finished and layer l-1 has started
// computing and thus released its staging buffer).  The timeline total
// equals the sum-of-max model when no layer is both memory-bound and
// adjacent to another memory-bound layer, and is reported alongside it
// so the benches can quantify the overlap assumption.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace drift::accel {

/// Inputs per layer.
struct TimelineLayer {
  std::string name;
  std::int64_t compute_cycles = 0;
  std::int64_t dram_cycles = 0;
};

/// One scheduled layer in the timeline.
struct TimelineEntry {
  std::string name;
  std::int64_t dram_start = 0;
  std::int64_t dram_end = 0;
  std::int64_t compute_start = 0;
  std::int64_t compute_end = 0;
};

/// The built timeline.
struct TimelineResult {
  std::vector<TimelineEntry> entries;
  std::int64_t total_cycles = 0;
  /// Fraction of DRAM occupancy hidden under compute.
  double overlap_fraction = 0.0;

  /// Renders a coarse ASCII Gantt chart (one row per layer).
  std::string gantt(std::size_t width = 64) const;
};

/// Builds the double-buffered timeline.
TimelineResult build_timeline(const std::vector<TimelineLayer>& layers);

}  // namespace drift::accel
