#include "accel/traffic.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "util/assert.hpp"

namespace drift::accel {

OperandBits operand_bits_from_work(const core::LayerWork& work) {
  OperandBits bits;
  const std::int64_t m = work.m_high + work.m_low;
  const std::int64_t n = work.n_high + work.n_low;
  if (m > 0) {
    bits.act_bits = (static_cast<double>(work.m_high) * work.pa_high +
                     static_cast<double>(work.m_low) * work.pa_low) /
                    static_cast<double>(m);
  }
  if (n > 0) {
    bits.weight_bits = (static_cast<double>(work.n_high) * work.pw_high +
                        static_cast<double>(work.n_low) * work.pw_low) /
                       static_cast<double>(n);
  }
  return bits;
}

LayerTraffic compute_traffic(const core::GemmDims& dims,
                             const OperandBits& bits, std::int64_t n_tiles,
                             std::int64_t k_tiles,
                             const AccelConfig& config) {
  DRIFT_CHECK(n_tiles >= 1 && k_tiles >= 1, "tile counts must be >= 1");
  LayerTraffic t;
  const auto act_bytes = static_cast<std::int64_t>(
      std::ceil(static_cast<double>(dims.M * dims.K) * bits.act_bits / 8.0));
  const auto weight_bytes = static_cast<std::int64_t>(std::ceil(
      static_cast<double>(dims.K * dims.N) * bits.weight_bits / 8.0));
  const std::int64_t out_bytes = dims.M * dims.N * bits.out_bits / 8;

  // Activations are fetched from DRAM once; re-streams across weight
  // tiles hit the global buffer when the matrix fits, otherwise DRAM.
  const bool act_resident = act_bytes <= config.global_buffer_bytes;
  t.act_dram_bytes = act_resident ? act_bytes : act_bytes * n_tiles;
  t.weight_dram_bytes = weight_bytes;  // weight-stationary: one pass
  t.out_dram_bytes = out_bytes;

  // Buffer traffic: fills from DRAM (writes), streams into the array
  // (reads), psum spills beyond the first reduction tile, output
  // staging.
  const std::int64_t psum_bytes = dims.M * dims.N * 4 * (k_tiles - 1);
  t.buffer_write_bytes = act_bytes + weight_bytes + out_bytes + psum_bytes;
  t.buffer_read_bytes = act_bytes * n_tiles + weight_bytes + psum_bytes;

  DRIFT_OBS_COUNT("traffic.gemms", 1);
  DRIFT_OBS_COUNT("traffic.dram_bytes", t.dram_bytes());
  DRIFT_OBS_COUNT("traffic.buffer_read_bytes", t.buffer_read_bytes);
  DRIFT_OBS_COUNT("traffic.buffer_write_bytes", t.buffer_write_bytes);
  DRIFT_OBS_LAYER(rec, rec->dram_bytes += t.dram_bytes());
  return t;
}

double buffer_energy_pj(const LayerTraffic& traffic,
                        const energy::EnergyConstants& constants) {
  return static_cast<double>(traffic.buffer_read_bytes) *
             constants.e_buffer_read_pj_per_byte +
         static_cast<double>(traffic.buffer_write_bytes) *
             constants.e_buffer_write_pj_per_byte;
}

DramOutcome dram_outcome(const LayerTraffic& traffic,
                         dram::DramModel& model) {
  DramOutcome out;
  const auto read_act = model.stream(traffic.act_dram_bytes, false);
  const auto read_w = model.stream(traffic.weight_dram_bytes, false);
  const auto write_out = model.stream(traffic.out_dram_bytes, true);
  out.core_cycles =
      read_act.core_cycles + read_w.core_cycles + write_out.core_cycles;
  out.energy_pj =
      read_act.energy_pj + read_w.energy_pj + write_out.energy_pj;
  return out;
}

double total_bitbrick_ops(const core::LayerWork& work) {
  const std::int64_t k = work.k;
  double bb_ops = 0.0;
  bb_ops += static_cast<double>(work.m_high * k * work.n_high) *
            energy::bitbrick_ops_per_mac(work.pa_high, work.pw_high);
  bb_ops += static_cast<double>(work.m_high * k * work.n_low) *
            energy::bitbrick_ops_per_mac(work.pa_high, work.pw_low);
  bb_ops += static_cast<double>(work.m_low * k * work.n_high) *
            energy::bitbrick_ops_per_mac(work.pa_low, work.pw_high);
  bb_ops += static_cast<double>(work.m_low * k * work.n_low) *
            energy::bitbrick_ops_per_mac(work.pa_low, work.pw_low);
  return bb_ops;
}

double core_energy_pj(const core::LayerWork& work,
                      const energy::EnergyConstants& constants) {
  const double macs = static_cast<double>(work.total_macs());
  return total_bitbrick_ops(work) * constants.e_bitbrick_op_pj +
         macs * constants.e_psum_add_pj;
}

}  // namespace drift::accel
