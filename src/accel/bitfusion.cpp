#include "accel/bitfusion.hpp"

#include <algorithm>

#include "accel/traffic.hpp"
#include "util/assert.hpp"

namespace drift::accel {

RunResult BitFusionModel::run(const nn::WorkloadSpec& spec,
                              const std::vector<nn::LayerMix>& mixes) {
  DRIFT_CHECK(mixes.size() == spec.layers.size(), "mix/layer mismatch");
  RunResult result;
  result.accelerator = name();
  result.model = spec.model;
  dram::DramModel dram(config_.dram);
  const auto& ec = config_.energy;
  const auto& array = config_.array;

  for (const nn::LayerMix& mix : mixes) {
    const core::GemmDims& dims = mix.layer.dims;
    LayerResult lr;
    lr.layer = mix.layer.name;

    // Static INT8 everywhere, regardless of what the mix says.
    core::LayerWork work;
    work.m_high = dims.M;
    work.n_high = dims.N;
    work.k = dims.K;

    lr.compute_cycles = core::ws_latency_cycles(dims, 8, 8, array);
    const std::int64_t k_tiles =
        core::ws_tile_repetitions({dims.M, dims.K, 1}, 8, 8, array);
    const std::int64_t n_tiles =
        core::ws_tile_repetitions({dims.M, 1, dims.N}, 8, 8, array);

    const OperandBits bits{8.0, 8.0, 8};
    const LayerTraffic traffic =
        compute_traffic(dims, bits, n_tiles, k_tiles, config_);
    const DramOutcome mem = dram_outcome(traffic, dram);

    lr.dram_cycles = mem.core_cycles;
    lr.dram_bytes = traffic.dram_bytes();
    lr.cycles = std::max(lr.compute_cycles, lr.dram_cycles) *
                mix.layer.repeat;
    lr.stall_cycles = 0;

    const double peak_macs_per_cycle = static_cast<double>(array.units());
    lr.utilization =
        static_cast<double>(dims.macs()) /
        (static_cast<double>(lr.compute_cycles) * peak_macs_per_cycle);

    lr.energy.core_pj = core_energy_pj(work, ec) * mix.layer.repeat;
    lr.energy.buffer_pj = buffer_energy_pj(traffic, ec) * mix.layer.repeat;
    lr.energy.dram_pj = mem.energy_pj * mix.layer.repeat;

    result.cycles += lr.cycles;
    result.stall_cycles += lr.stall_cycles;
    result.dram_bytes += lr.dram_bytes * mix.layer.repeat;
    result.energy += lr.energy;
    result.layers.push_back(std::move(lr));
  }

  // Static energy over the whole execution.
  const double static_pj = ec.static_pj_per_unit_cycle *
                           static_cast<double>(config_.array.units()) *
                           static_cast<double>(result.cycles);
  result.energy.static_pj = static_pj;
  return result;
}

}  // namespace drift::accel
