#include "accel/eyeriss.hpp"

#include <algorithm>
#include <cmath>

#include "accel/traffic.hpp"
#include "util/assert.hpp"

namespace drift::accel {

std::int64_t EyerissModel::mapped_pes(const nn::LayerGemm& layer) {
  // Filter rows map to PE rows; replicate filter sets when the kernel
  // is short.  Output rows strip across PE columns.
  const std::int64_t kh = std::clamp<std::int64_t>(layer.kernel, 1, kPeRows);
  const std::int64_t groups = kPeRows / kh;
  const std::int64_t rows_used = groups * kh;
  // Output height: sqrt of M for square conv maps, M itself for
  // token/row streams.
  const std::int64_t oh =
      layer.kind == nn::LayerKind::kConv
          ? static_cast<std::int64_t>(std::llround(
                std::sqrt(static_cast<double>(layer.dims.M))))
          : layer.dims.M;
  const std::int64_t cols_used = std::clamp<std::int64_t>(oh, 1, kPeCols);
  return rows_used * cols_used;
}

RunResult EyerissModel::run(const nn::WorkloadSpec& spec,
                            const std::vector<nn::LayerMix>& mixes) {
  DRIFT_CHECK(mixes.size() == spec.layers.size(), "mix/layer mismatch");
  RunResult result;
  result.accelerator = name();
  result.model = spec.model;
  dram::DramModel dram(config_.dram);
  const auto& ec = config_.energy;

  for (const nn::LayerMix& mix : mixes) {
    const core::GemmDims& dims = mix.layer.dims;
    LayerResult lr;
    lr.layer = mix.layer.name;

    const std::int64_t pes = mapped_pes(mix.layer);
    lr.compute_cycles = (dims.macs() + pes - 1) / pes;
    lr.utilization = static_cast<double>(dims.macs()) /
                     (static_cast<double>(lr.compute_cycles) *
                      static_cast<double>(kPeCount));

    // FP32 operands: 32-bit everything; the ifmap is re-read once per
    // 16-output-channel pass when it does not fit on chip.
    const std::int64_t n_tiles = std::max<std::int64_t>(
        (dims.N + kPeCols - 1) / kPeCols, 1);
    const std::int64_t k_tiles = 1;  // psums stay in PE register files
    const OperandBits bits{32.0, 32.0, 32};
    const LayerTraffic traffic =
        compute_traffic(dims, bits, n_tiles, k_tiles, config_);
    const DramOutcome mem = dram_outcome(traffic, dram);

    lr.dram_cycles = mem.core_cycles;
    lr.dram_bytes = traffic.dram_bytes();
    lr.cycles = std::max(lr.compute_cycles, lr.dram_cycles) *
                mix.layer.repeat;
    lr.stall_cycles =
        std::max<std::int64_t>(lr.dram_cycles - lr.compute_cycles, 0) *
        mix.layer.repeat;

    lr.energy.core_pj = static_cast<double>(dims.macs()) *
                        ec.e_fp32_mac_pj * mix.layer.repeat;
    lr.energy.buffer_pj = buffer_energy_pj(traffic, ec) * mix.layer.repeat;
    lr.energy.dram_pj = mem.energy_pj * mix.layer.repeat;

    result.cycles += lr.cycles;
    result.stall_cycles += lr.stall_cycles;
    result.dram_bytes += lr.dram_bytes * mix.layer.repeat;
    result.energy += lr.energy;
    result.layers.push_back(std::move(lr));
  }

  result.energy.static_pj = ec.static_pj_per_unit_cycle *
                            config_.fp32_unit_static_multiplier *
                            static_cast<double>(kPeCount) *
                            static_cast<double>(result.cycles);
  return result;
}

}  // namespace drift::accel
