#include "accel/compare.hpp"

#include "accel/bitfusion.hpp"
#include "accel/drq_accel.hpp"
#include "accel/eyeriss.hpp"
#include "util/assert.hpp"

namespace drift::accel {

double Comparison::speedup_bitfusion() const {
  return static_cast<double>(eyeriss.cycles) /
         static_cast<double>(bitfusion.cycles);
}
double Comparison::speedup_drq() const {
  return static_cast<double>(eyeriss.cycles) /
         static_cast<double>(drq.cycles);
}
double Comparison::speedup_drift() const {
  return static_cast<double>(eyeriss.cycles) /
         static_cast<double>(drift.cycles);
}

double Comparison::energy_bitfusion() const {
  return bitfusion.energy.total_pj() / eyeriss.energy.total_pj();
}
double Comparison::energy_drq() const {
  return drq.energy.total_pj() / eyeriss.energy.total_pj();
}
double Comparison::energy_drift() const {
  return drift.energy.total_pj() / eyeriss.energy.total_pj();
}

Comparison compare_workload(const nn::WorkloadSpec& spec,
                            const CompareConfig& config) {
  Comparison cmp;
  cmp.model = spec.model;

  // Per-design precision mixes, from the matching algorithm.
  nn::MixConfig int8_mix;
  int8_mix.algo = nn::MixAlgorithm::kStaticInt8;
  int8_mix.seed = config.seed;

  nn::MixConfig drq_mix;
  drq_mix.algo = nn::MixAlgorithm::kDrq;
  drq_mix.drq = config.drq_config;
  drq_mix.seed = config.seed;

  nn::MixConfig drift_mix;
  drift_mix.algo = nn::MixAlgorithm::kDrift;
  drift_mix.drift = config.drift_selector;
  drift_mix.dynamic_weights = config.drift_dynamic_weights;
  drift_mix.auto_threshold = config.auto_threshold;
  drift_mix.noise_budget = config.noise_budget;
  drift_mix.seed = config.seed;

  const auto int8_mixes = nn::build_mixes(spec, int8_mix);
  const auto drq_mixes = nn::build_mixes(spec, drq_mix);
  const auto drift_mixes = nn::build_mixes(spec, drift_mix);

  EyerissModel eyeriss(config.hw);
  BitFusionModel bitfusion(config.hw);
  DrqAccelModel drq(config.hw);
  DriftAccelModel drift(config.hw, config.drift_policy);

  cmp.eyeriss = eyeriss.run(spec, int8_mixes);  // mix ignored (FP32)
  cmp.bitfusion = bitfusion.run(spec, int8_mixes);
  cmp.drq = drq.run(spec, drq_mixes);
  cmp.drift = drift.run(spec, drift_mixes);
  return cmp;
}

}  // namespace drift::accel
