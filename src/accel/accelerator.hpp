// Accelerator system models.
//
// Each model turns a workload (full-size layer shapes + per-layer
// precision mixes) into cycles and an energy breakdown:
//
//   Eyeriss   — FP32 row-stationary baseline, 224 PEs (14 x 16)
//   BitFusion — static INT8 on a 792-unit fused-BitBrick systolic array
//   DRQ       — dynamic 4/8-bit activations on one variable-speed
//               array (run-switching stall model with high fallback)
//   Drift     — four split systolic arrays + balanced online scheduler
//
// All four share the DRAM model, buffer traffic accounting and energy
// constants so differences come only from their dataflow.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/analytical_model.hpp"
#include "dram/dram.hpp"
#include "energy/constants.hpp"
#include "nn/precision_mix.hpp"
#include "nn/workload.hpp"

namespace drift::accel {

/// Shared hardware configuration (Section 5.1: 792 units for the
/// precision-flexible designs, 224 PEs for Eyeriss).
struct AccelConfig {
  core::ArrayDims array{24, 33};          ///< BG / fusion-unit grid (792)
  std::int64_t global_buffer_bytes = 512 * 1024;
  std::int64_t weight_buffer_bytes = 512 * 1024;
  dram::DramConfig dram{};
  energy::EnergyConstants energy = energy::default_constants();
  /// Static power of one FP32 PE relative to one BitGroup (Eyeriss's
  /// PEs carry FP32 datapaths and large register files).
  double fp32_unit_static_multiplier = 4.0;
};

/// Per-layer outcome.
struct LayerResult {
  std::string layer;
  std::int64_t compute_cycles = 0;  ///< array occupancy (incl. stalls)
  std::int64_t dram_cycles = 0;     ///< memory occupancy
  std::int64_t cycles = 0;          ///< max of the two, times repeat
  std::int64_t stall_cycles = 0;
  std::int64_t dram_bytes = 0;
  double utilization = 0.0;         ///< MAC throughput / peak
  energy::EnergyBreakdown energy;
};

/// Whole-model outcome.
struct RunResult {
  std::string accelerator;
  std::string model;
  std::int64_t cycles = 0;
  std::int64_t stall_cycles = 0;
  std::int64_t dram_bytes = 0;
  energy::EnergyBreakdown energy;
  std::vector<LayerResult> layers;

  double seconds(double clock_hz) const {
    return static_cast<double>(cycles) / clock_hz;
  }
};

/// Abstract accelerator.
class Accelerator {
 public:
  explicit Accelerator(AccelConfig config) : config_(std::move(config)) {}
  virtual ~Accelerator() = default;

  virtual std::string name() const = 0;

  /// Runs a workload.  `mixes` must contain one entry per layer of
  /// `spec`, produced by the algorithm this accelerator executes
  /// (BitFusion: kStaticInt8; DRQ: kDrq; Drift: kDrift; Eyeriss
  /// ignores the mix and runs FP32).
  virtual RunResult run(const nn::WorkloadSpec& spec,
                        const std::vector<nn::LayerMix>& mixes) = 0;

  const AccelConfig& config() const { return config_; }

 protected:
  AccelConfig config_;
};

}  // namespace drift::accel
