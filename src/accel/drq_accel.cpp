#include "accel/drq_accel.hpp"

#include <algorithm>

#include "accel/traffic.hpp"
#include "core/analytical_model.hpp"
#include "systolic/stall_model.hpp"
#include "util/assert.hpp"

namespace drift::accel {

RunResult DrqAccelModel::run(const nn::WorkloadSpec& spec,
                             const std::vector<nn::LayerMix>& mixes) {
  DRIFT_CHECK(mixes.size() == spec.layers.size(), "mix/layer mismatch");
  RunResult result;
  result.accelerator = name();
  result.model = spec.model;
  dram::DramModel dram(config_.dram);
  const auto& ec = config_.energy;
  const auto& array = config_.array;
  const std::int64_t R = array.rows, C = array.cols;

  for (const nn::LayerMix& mix : mixes) {
    const core::GemmDims& dims = mix.layer.dims;
    LayerResult lr;
    lr.layer = mix.layer.name;

    // Variable-speed execution: the array keeps a 4-bit rhythm; 8-bit
    // rows take two passes (cost 2).  A precision-mode switch re-times
    // the activation pipeline over a few stages (weights stay
    // resident, so no full drain) — cheap for the block-contiguous
    // patterns of CNN regions, ruinous for finely interleaved token
    // streams, where the controller falls back to uniform 8-bit.
    // K tiles at the 4-bit rhythm, weight (N) tiles at 8 bits.
    constexpr std::int64_t kSpeedSwitchPenalty = 4;
    const auto run = systolic::run_switching_exe_cycles(
        mix.row_is_low, /*low_cost=*/1, /*high_cost=*/2,
        kSpeedSwitchPenalty);
    // K tiles at the 4-bit rhythm (ceil(K/R) == ceil(4K/4R)), weight
    // (N) tiles at the stored 8-bit width; shared Eq. 7 ceilings.
    const std::int64_t k_tiles = core::ws_k_tiles(dims.K, 4.0, R);
    const std::int64_t n_tiles = core::ws_n_tiles(dims.N, 8.0, C);
    const std::int64_t per_tile = R + run.exe_cycles + (R + C - 2);
    lr.compute_cycles = per_tile * k_tiles * n_tiles;
    lr.stall_cycles = run.stall_cycles * k_tiles * n_tiles;

    // Energy-wise, fallen-back rows burn 8-bit compute even though
    // their stored values are 4-bit.
    core::LayerWork work = mix.work;
    work.n_high = dims.N;  // DRQ weights are static 8-bit
    work.n_low = 0;
    if (run.fell_back_to_high) {
      work.m_high = dims.M;
      work.m_low = 0;
    }

    // Traffic at *stored* widths (DRQ and Drift load similar amounts
    // of data — Section 5.3).
    core::LayerWork stored = mix.work;
    stored.n_high = dims.N;
    stored.n_low = 0;
    const OperandBits bits = operand_bits_from_work(stored);
    const LayerTraffic traffic =
        compute_traffic(dims, bits, n_tiles, k_tiles, config_);
    const DramOutcome mem = dram_outcome(traffic, dram);

    lr.dram_cycles = mem.core_cycles;
    lr.dram_bytes = traffic.dram_bytes();
    lr.cycles = std::max(lr.compute_cycles, lr.dram_cycles) *
                mix.layer.repeat;

    // Utilization in BitBrick-op terms: each unit supplies 16 BB ops
    // per cycle (a 4-bit row consumes 8 of them against 8-bit weights).
    lr.utilization =
        total_bitbrick_ops(work) /
        (static_cast<double>(lr.compute_cycles) *
         static_cast<double>(array.units()) * 16.0);

    lr.energy.core_pj = core_energy_pj(work, ec) * mix.layer.repeat;
    lr.energy.buffer_pj = buffer_energy_pj(traffic, ec) * mix.layer.repeat;
    lr.energy.dram_pj = mem.energy_pj * mix.layer.repeat;

    result.cycles += lr.cycles;
    result.stall_cycles += lr.stall_cycles * mix.layer.repeat;
    result.dram_bytes += lr.dram_bytes * mix.layer.repeat;
    result.energy += lr.energy;
    result.layers.push_back(std::move(lr));
  }

  result.energy.static_pj = ec.static_pj_per_unit_cycle *
                            static_cast<double>(config_.array.units()) *
                            static_cast<double>(result.cycles);
  return result;
}

}  // namespace drift::accel
