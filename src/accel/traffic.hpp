// Shared traffic and energy accounting for the INT-class accelerators.
//
// Given one layer's GEMM, its precision mix, and the tiling the
// dataflow implies, computes DRAM bytes, buffer traffic and the
// resulting energy components.  All INT accelerators (BitFusion, DRQ,
// Drift) use the same accounting so their energy differences come from
// data width, tile counts and occupancy — not from bespoke bookkeeping.
#pragma once

#include <cstdint>

#include "accel/accelerator.hpp"

namespace drift::accel {

/// Traffic description of one layer execution.
struct LayerTraffic {
  std::int64_t act_dram_bytes = 0;
  std::int64_t weight_dram_bytes = 0;
  std::int64_t out_dram_bytes = 0;
  std::int64_t buffer_read_bytes = 0;
  std::int64_t buffer_write_bytes = 0;

  std::int64_t dram_bytes() const {
    return act_dram_bytes + weight_dram_bytes + out_dram_bytes;
  }
};

/// Average operand widths (in bits) implied by a precision mix.
struct OperandBits {
  double act_bits = 8.0;     ///< row-weighted activation width
  double weight_bits = 8.0;  ///< channel-weighted weight width
  int out_bits = 8;          ///< outputs are re-quantized on write-back
};

/// Computes the mix-weighted operand widths.
OperandBits operand_bits_from_work(const core::LayerWork& work);

/// Computes the traffic of one GEMM execution.
///  - `n_tiles`: how many weight-column tiles the dataflow iterates
///    (activations are re-streamed once per tile unless the activation
///    matrix fits in the global buffer);
///  - `k_tiles`: reduction tiles (psum spill traffic beyond the first).
LayerTraffic compute_traffic(const core::GemmDims& dims,
                             const OperandBits& bits, std::int64_t n_tiles,
                             std::int64_t k_tiles,
                             const AccelConfig& config);

/// Buffer energy of a traffic record.
double buffer_energy_pj(const LayerTraffic& traffic,
                        const energy::EnergyConstants& constants);

/// DRAM occupancy + energy for a traffic record, using (and mutating)
/// the shared DRAM model.
struct DramOutcome {
  std::int64_t core_cycles = 0;
  double energy_pj = 0.0;
};
DramOutcome dram_outcome(const LayerTraffic& traffic, dram::DramModel& model);

/// Core (MAC) energy of a mix-split GEMM on a BitBrick substrate.
double core_energy_pj(const core::LayerWork& work,
                      const energy::EnergyConstants& constants);

/// Total BitBrick operations of a mix-split GEMM (the numerator of the
/// utilization metric: each unit supplies 16 BB ops per cycle).
double total_bitbrick_ops(const core::LayerWork& work);

}  // namespace drift::accel
