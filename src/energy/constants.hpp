// Energy and power constants (the Synopsys-DC-at-40nm substitution —
// see DESIGN.md).
//
// The paper synthesizes its RTL on a 40 nm TSMC library at 500 MHz and
// reports *normalized* energy, so what matters for reproduction is the
// relative cost of the four breakdown components (static / DRAM /
// buffer / core).  The values below sit in the ranges published for
// the same technology class (BitFusion ISCA'18, Eyeriss ISSCC'16,
// Horowitz ISSCC'14 energy tables):
//
//   - a BitBrick operation (1b x 4b multiply + partial add) is the
//     atomic core event; an INT8 MAC spatially fuses 16 of them, an
//     INT4 MAC 4, an INT4x8 MAC 8 — this 4x core-energy spread between
//     INT8 and INT4 is precisely where dynamic precision saves energy;
//   - FP32 MACs (Eyeriss baseline) cost ~4.6 pJ vs ~0.9 pJ for INT8;
//   - on-chip SRAM costs ~1 pJ/byte, DRAM ~2 orders more per byte
//     (expressed through the dram::DramConfig event energies);
//   - static power scales with the unit count of each accelerator.
#pragma once

#include <cstdint>

namespace drift::energy {

/// Per-event energies in pJ and power in mW.
struct EnergyConstants {
  // Core compute.
  double e_bitbrick_op_pj = 0.055;  ///< one 1b x 4b multiply-add
  double e_psum_add_pj = 0.012;     ///< inter-BB/column accumulation
  double e_fp32_mac_pj = 4.6;       ///< Eyeriss-style FP32 MAC

  // On-chip buffers (large SRAM macros).
  double e_buffer_read_pj_per_byte = 1.05;
  double e_buffer_write_pj_per_byte = 1.25;

  /// Static (leakage + clock tree) power at 500 MHz / 40 nm, per
  /// compute unit (BitGroup / fusion unit / PE) including its share of
  /// buffers and NoC.  40 nm leaks heavily; the paper's Figure 8 shows
  /// static energy at 41-52% of the total for the INT designs.
  double static_pj_per_unit_cycle = 1.1;

  /// Core clock in Hz (fixed by the paper's synthesis target).
  double clock_hz = 500e6;
};

/// Default constants; benches use these unless an ablation overrides.
inline EnergyConstants default_constants() { return EnergyConstants{}; }

/// BitBrick operations needed for one MAC at the given operand
/// precisions on a BG/fusion-unit substrate (pa, pw in bits; each BB
/// covers 1 activation bit x 4 weight bits).
inline std::int64_t bitbrick_ops_per_mac(int pa, int pw) {
  const std::int64_t weight_slices = (pw + 3) / 4;
  return static_cast<std::int64_t>(pa) * weight_slices;
}

/// Breakdown of energy into the Figure 8 components, in pJ.
struct EnergyBreakdown {
  double static_pj = 0.0;
  double dram_pj = 0.0;
  double buffer_pj = 0.0;
  double core_pj = 0.0;

  double total_pj() const {
    return static_pj + dram_pj + buffer_pj + core_pj;
  }

  EnergyBreakdown& operator+=(const EnergyBreakdown& other) {
    static_pj += other.static_pj;
    dram_pj += other.dram_pj;
    buffer_pj += other.buffer_pj;
    core_pj += other.core_pj;
    return *this;
  }
};

}  // namespace drift::energy
