// Cycle-level DRAM model (the DRAMsim3 substitution — see DESIGN.md).
//
// Models a multi-channel DDR device with per-bank row buffers and the
// first-order timing parameters that dominate streaming DNN traffic:
// tRCD (activate->column), tCL (column->data), tRP (precharge), tBL
// (burst).  Open-page policy: sequential accesses that stay in a row
// are hits and pipeline at burst rate; row crossings pay
// precharge+activate.  Energy follows the same events (activate,
// read/write burst, background).
//
// The accelerator models consume two things: the *cycles* a transfer
// occupies (to detect memory-bound layers) and the *energy* it costs
// (Figure 8's DRAM component).
#pragma once

#include <cstdint>
#include <vector>

namespace drift::dram {

/// Timing/energy configuration.  Defaults approximate DDR4-2400 with a
/// 64-bit channel, scaled to the paper's 500 MHz core clock domain.
struct DramConfig {
  // Geometry.
  std::int64_t channels = 2;
  std::int64_t banks_per_channel = 16;
  std::int64_t row_bytes = 2048;         ///< row buffer (page) size
  std::int64_t burst_bytes = 64;         ///< bytes per burst (BL8 x 64-bit)

  // Timing in memory-controller cycles.
  std::int64_t t_rcd = 16;   ///< activate to column command
  std::int64_t t_cl = 16;    ///< column command to first data
  std::int64_t t_rp = 16;    ///< precharge
  std::int64_t t_bl = 4;     ///< data burst occupancy on the bus

  /// Memory cycles per core (accelerator) cycle; >1 means the memory
  /// clock is faster than the 500 MHz core clock.
  double mem_cycles_per_core_cycle = 2.4;

  // Energy per event, in pJ (DDR4-class, cf. Micron power calc).
  double e_activate_pj = 1200.0;  ///< activate + implicit precharge
  double e_burst_pj = 250.0;      ///< one read/write burst on the bus
  double e_background_pj_per_core_cycle = 120.0;  ///< all channels
};

/// Accumulated statistics.
struct DramStats {
  std::int64_t reads = 0;          ///< read bursts
  std::int64_t writes = 0;         ///< write bursts
  std::int64_t row_hits = 0;
  std::int64_t row_misses = 0;
  std::int64_t busy_mem_cycles = 0;
  double energy_pj = 0.0;

  double row_hit_rate() const {
    const std::int64_t total = row_hits + row_misses;
    return total > 0 ? static_cast<double>(row_hits) /
                           static_cast<double>(total)
                     : 0.0;
  }
};

/// One transfer's outcome in core-clock terms.
struct TransferResult {
  std::int64_t core_cycles = 0;  ///< occupancy converted to core cycles
  double energy_pj = 0.0;
};

/// The model.  Transfers are modeled as channel-interleaved streams;
/// bank row-buffer state persists across calls so tensors that revisit
/// rows (small weights) see hits.
class DramModel {
 public:
  explicit DramModel(const DramConfig& config = DramConfig{});

  /// Streams `bytes` sequentially starting at `address` (reads when
  /// `is_write` is false).  Returns occupancy and energy; updates
  /// statistics.
  TransferResult transfer(std::int64_t address, std::int64_t bytes,
                          bool is_write);

  /// Convenience: sequential stream at the model's bump allocator (each
  /// call starts a fresh region — typical for layer tensors).
  TransferResult stream(std::int64_t bytes, bool is_write);

  /// Peak sequential bandwidth in bytes per *core* cycle (row-hit
  /// steady state across all channels).
  double peak_bytes_per_core_cycle() const;

  const DramConfig& config() const { return config_; }
  const DramStats& stats() const { return stats_; }
  void reset_stats() { stats_ = DramStats{}; }

 private:
  struct Bank {
    std::int64_t open_row = -1;
  };

  DramConfig config_;
  DramStats stats_;
  std::vector<Bank> banks_;      ///< channels x banks
  std::int64_t bump_address_ = 0;
};

}  // namespace drift::dram
