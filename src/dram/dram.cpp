#include "dram/dram.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace drift::dram {

DramModel::DramModel(const DramConfig& config) : config_(config) {
  DRIFT_CHECK(config.channels > 0 && config.banks_per_channel > 0,
              "invalid DRAM geometry");
  DRIFT_CHECK(config.row_bytes > 0 && config.burst_bytes > 0 &&
                  config.row_bytes % config.burst_bytes == 0,
              "row size must be a multiple of the burst size");
  DRIFT_CHECK(config.mem_cycles_per_core_cycle > 0.0, "invalid clock ratio");
  banks_.resize(
      static_cast<std::size_t>(config.channels * config.banks_per_channel));
}

TransferResult DramModel::transfer(std::int64_t address, std::int64_t bytes,
                                   bool is_write) {
  DRIFT_CHECK(address >= 0 && bytes >= 0, "invalid transfer");
  TransferResult result;
  if (bytes == 0) return result;

  // Address mapping: bursts interleave across channels, then rows map
  // onto banks round-robin — the streaming-friendly mapping DNN
  // accelerators use.
  const std::int64_t first_burst = address / config_.burst_bytes;
  const std::int64_t last_burst =
      (address + bytes - 1) / config_.burst_bytes;
  const std::int64_t bursts_per_row =
      config_.row_bytes / config_.burst_bytes;

  // Per-channel bus occupancy in memory cycles.
  std::vector<std::int64_t> channel_busy(
      static_cast<std::size_t>(config_.channels), 0);

  for (std::int64_t b = first_burst; b <= last_burst; ++b) {
    const std::int64_t channel = b % config_.channels;
    const std::int64_t row_global = b / (bursts_per_row * config_.channels);
    const std::int64_t bank_idx = row_global % config_.banks_per_channel;
    Bank& bank = banks_[static_cast<std::size_t>(
        channel * config_.banks_per_channel + bank_idx)];

    std::int64_t burst_cost = config_.t_bl;
    if (bank.open_row == row_global) {
      ++stats_.row_hits;
    } else {
      ++stats_.row_misses;
      const bool needs_precharge = bank.open_row >= 0;
      burst_cost += config_.t_rcd + config_.t_cl +
                    (needs_precharge ? config_.t_rp : 0);
      bank.open_row = row_global;
      result.energy_pj += config_.e_activate_pj;
      stats_.energy_pj += config_.e_activate_pj;
    }
    channel_busy[static_cast<std::size_t>(channel)] += burst_cost;
    result.energy_pj += config_.e_burst_pj;
    stats_.energy_pj += config_.e_burst_pj;
    if (is_write) ++stats_.writes; else ++stats_.reads;
  }

  std::int64_t busy = 0;
  for (std::int64_t c : channel_busy) busy = std::max(busy, c);
  stats_.busy_mem_cycles += busy;

  result.core_cycles = static_cast<std::int64_t>(std::ceil(
      static_cast<double>(busy) / config_.mem_cycles_per_core_cycle));
  // Background energy for the occupancy window.
  const double background =
      config_.e_background_pj_per_core_cycle *
      static_cast<double>(result.core_cycles);
  result.energy_pj += background;
  stats_.energy_pj += background;
  return result;
}

TransferResult DramModel::stream(std::int64_t bytes, bool is_write) {
  const TransferResult r = transfer(bump_address_, bytes, is_write);
  // Advance to a fresh row boundary so independent tensors do not
  // accidentally share rows.
  bump_address_ +=
      ((bytes + config_.row_bytes - 1) / config_.row_bytes + 1) *
      config_.row_bytes;
  return r;
}

double DramModel::peak_bytes_per_core_cycle() const {
  // Row-hit steady state: one burst per t_bl per channel.
  const double bytes_per_mem_cycle =
      static_cast<double>(config_.burst_bytes * config_.channels) /
      static_cast<double>(config_.t_bl);
  return bytes_per_mem_cycle * config_.mem_cycles_per_core_cycle;
}

}  // namespace drift::dram
