#include "ref/ref_oracles.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "ref/ref_quant.hpp"
// drift-lint: allow(oracle-include) — assertion macro only; shares no
// computational code with the implementations under test.
#include "util/assert.hpp"

namespace drift::ref {

std::int64_t eq7_repetitions(std::int64_t K, std::int64_t N, int pa, int pw,
                             std::int64_t R, std::int64_t C) {
  DRIFT_CHECK(pa > 0 && pw > 0, "precisions must be positive");
  if (K == 0 || N == 0) return 0;
  if (R <= 0 || C <= 0) return kInfeasibleLatency;
  const std::int64_t ka = static_cast<std::int64_t>(pa) * K;
  const std::int64_t nw = static_cast<std::int64_t>(pw) * N;
  const std::int64_t k_tiles = ka / (4 * R) + (ka % (4 * R) != 0 ? 1 : 0);
  const std::int64_t n_tiles = nw / (16 * C) + (nw % (16 * C) != 0 ? 1 : 0);
  return k_tiles * n_tiles;
}

std::int64_t eq7_cycles(std::int64_t M, std::int64_t K, std::int64_t N,
                        int pa, int pw, std::int64_t R, std::int64_t C) {
  if (M == 0 || K == 0 || N == 0) return 0;
  if (R <= 0 || C <= 0) return kInfeasibleLatency;
  const std::int64_t per_tile = R + (M + R + C - 2);
  return per_tile * eq7_repetitions(K, N, pa, pw, R, C);
}

SplitOracle exhaustive_split(const core::LayerWork& work,
                             const core::ArrayDims& total) {
  DRIFT_CHECK(total.rows > 0 && total.cols > 0, "empty array");
  SplitOracle best;
  for (std::int64_t r = 0; r <= total.rows; ++r) {
    for (std::int64_t c = 0; c <= total.cols; ++c) {
      const std::int64_t hh = eq7_cycles(work.m_high, work.k, work.n_high,
                                         work.pa_high, work.pw_high, r, c);
      const std::int64_t hl =
          eq7_cycles(work.m_high, work.k, work.n_low, work.pa_high,
                     work.pw_low, r, total.cols - c);
      const std::int64_t lh =
          eq7_cycles(work.m_low, work.k, work.n_high, work.pa_low,
                     work.pw_high, total.rows - r, c);
      const std::int64_t ll =
          eq7_cycles(work.m_low, work.k, work.n_low, work.pa_low,
                     work.pw_low, total.rows - r, total.cols - c);
      const std::int64_t makespan =
          std::max(std::max(hh, hl), std::max(lh, ll));
      if (makespan < best.best_makespan) {
        best.best_r = r;
        best.best_c = c;
        best.best_makespan = makespan;
      }
    }
  }
  return best;
}

RenderingOracle brute_force_rendering(std::span<const float> values,
                                      const core::QuantParams& params,
                                      core::Precision lp) {
  const int clip_total = params.bits.bits() - lp.bits();
  DRIFT_CHECK(clip_total >= 0, "lp wider than hp");

  double max_abs = 0.0;
  std::vector<std::int32_t> codes(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    max_abs = std::max(max_abs, std::abs(static_cast<double>(values[i])));
    codes[i] =
        quantize_value(values[i], params.delta, params.bits.max_level());
  }

  RenderingOracle oracle;
  bool have_best = false;
  for (int hc = 0; hc <= clip_total; ++hc) {
    const int lc = clip_total - hc;
    const double exact_range = static_cast<double>(lp.max_level()) *
                               static_cast<double>(std::int64_t{1} << lc) *
                               params.delta;
    if (exact_range >= max_abs) oracle.eq5_hc = std::max(oracle.eq5_hc, hc);

    bool clips = false;
    double worst = 0.0;
    for (std::size_t i = 0; i < values.size(); ++i) {
      // Un-clamped shift-round; anything past the lp range clips.
      std::int64_t mag = std::abs(static_cast<std::int64_t>(codes[i]));
      if (lc > 0) mag = (mag + (std::int64_t{1} << (lc - 1))) >> lc;
      if (mag > lp.max_level()) clips = true;
      const std::int32_t q_lp = convert_to_low(codes[i], lp.max_level(), lc);
      const double err = std::abs(static_cast<double>(values[i]) -
                                  dequantize_low(q_lp, params.delta, lc));
      worst = std::max(worst, err);
    }
    if (!clips) oracle.max_hc_no_clip = std::max(oracle.max_hc_no_clip, hc);
    if (!have_best || worst < oracle.best_max_error) {
      have_best = true;
      oracle.best_max_error = worst;
      oracle.best_hc = hc;
      oracle.best_lc = lc;
    }
  }
  return oracle;
}

std::int64_t pipeline_exit_closed_form(std::span<const std::int64_t> costs,
                                       std::int64_t stages) {
  DRIFT_CHECK(stages > 0, "pipeline needs at least one stage");
  if (costs.empty()) return 0;
  std::int64_t sum = 0, peak = 0;
  for (std::int64_t k : costs) {
    DRIFT_CHECK(k > 0, "row cost must be > 0");
    sum += k;
    peak = std::max(peak, k);
  }
  return sum + (stages - 1) * peak;
}

std::int64_t sorted_quantile(std::span<const std::int64_t> values, double p) {
  DRIFT_CHECK(!values.empty(), "quantile of an empty sample is undefined");
  DRIFT_CHECK(p >= 0.0 && p <= 1.0, "p must be in [0, 1]");
  std::vector<std::int64_t> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const auto n = static_cast<std::int64_t>(sorted.size());
  const std::int64_t rank = std::clamp<std::int64_t>(
      static_cast<std::int64_t>(std::ceil(p * static_cast<double>(n))), 1, n);
  return sorted[static_cast<std::size_t>(rank - 1)];
}

}  // namespace drift::ref
