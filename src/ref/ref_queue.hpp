// Queueing oracles for the serving simulator.  The Lindley recurrence
// replays a single-server FIFO trace request by request — the exact
// answer the event loop must reproduce — and the M/D/1 / M/G/1 closed
// forms give long-run mean waits the simulator's averages must approach
// under a Poisson arrival process.  Shares no code with src/serve/.
#pragma once

#include <cstdint>
#include <vector>

namespace drift::ref {

/// Exact per-request waits of a single-server FIFO queue, by the
/// Lindley recurrence: request i starts at max(arrival[i],
/// completion[i-1]) and waits start - arrival.  `arrivals` must be
/// sorted non-decreasing; `services` holds each request's service time
/// in the same order.  All times are integer cycles, so the replay is
/// exact — no tolerance needed when pinning the simulator against it.
std::vector<std::int64_t> lindley_waits(
    const std::vector<std::int64_t>& arrivals,
    const std::vector<std::int64_t>& services);

/// Completion times of the same replay (start + service, FIFO order).
std::vector<std::int64_t> lindley_completions(
    const std::vector<std::int64_t>& arrivals,
    const std::vector<std::int64_t>& services);

/// M/D/1 mean queueing wait (excluding service): Wq = rho*D / (2(1-rho))
/// with rho = lambda*D.  `arrival_rate` is requests per cycle, and
/// `service_cycles` the deterministic per-request service time.
/// Returns a negative value when the queue is unstable (rho >= 1).
double md1_mean_wait(double arrival_rate, double service_cycles);

/// M/G/1 mean queueing wait by Pollaczek–Khinchine:
/// Wq = lambda*E[S^2] / (2(1-rho)).  `service_second_moment` is E[S^2];
/// with E[S^2] = D^2 this reduces to the M/D/1 form above.  Returns a
/// negative value when rho = lambda*E[S] >= 1.
// drift-lint: allow(dead-api) — Pollaczek–Khinchine closed form kept
// beside md1_mean_wait as the oracle for stochastic service times.
double mg1_mean_wait(double arrival_rate, double service_mean,
                     double service_second_moment);

}  // namespace drift::ref
