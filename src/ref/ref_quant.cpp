#include "ref/ref_quant.hpp"

#include <algorithm>
#include <cmath>

// drift-lint: allow(oracle-include) — assertion macro only; shares no
// computational code with the implementations under test.
#include "util/assert.hpp"

namespace drift::ref {

std::int32_t quantize_value(float x, double delta, std::int64_t max_level) {
  DRIFT_CHECK(delta > 0.0, "delta must be positive");
  const double s = static_cast<double>(x) / delta;
  // Round half away from zero: floor(|s| + 0.5) with the sign restored.
  const double mag = std::floor(std::abs(s) + 0.5);
  const auto q = static_cast<std::int64_t>(s < 0.0 ? -mag : mag);
  return static_cast<std::int32_t>(
      std::clamp<std::int64_t>(q, -max_level, max_level));
}

std::int32_t convert_to_low(std::int32_t q, std::int64_t lp_max_level,
                            int lc) {
  DRIFT_CHECK(lc >= 0 && lc < 32, "invalid low-clip count");
  std::int64_t mag = std::abs(static_cast<std::int64_t>(q));
  if (lc > 0) {
    // (|q| + 2^(lc-1)) >> lc rounds half away from zero for the
    // magnitude; exact because everything stays integral.
    const std::int64_t half = std::int64_t{1} << (lc - 1);
    mag = (mag + half) >> lc;
  }
  mag = std::min(mag, lp_max_level);
  return static_cast<std::int32_t>(q < 0 ? -mag : mag);
}

double dequantize_low(std::int32_t q_lp, double delta, int lc) {
  return static_cast<double>(q_lp) *
         static_cast<double>(std::int64_t{1} << lc) * delta;
}

core::SubTensorStats stats(std::span<const float> values) {
  DRIFT_CHECK(!values.empty(), "stats of an empty sub-tensor");
  double max_abs = 0.0;
  double sum_abs = 0.0, c_abs = 0.0;
  double sum = 0.0, c_sum = 0.0;
  double sum_sq = 0.0, c_sq = 0.0;
  auto kahan_add = [](double& total, double& comp, double term) {
    const double y = term - comp;
    const double t = total + y;
    comp = (t - total) - y;
    total = t;
  };
  for (float x : values) {
    const double v = static_cast<double>(x);
    const double a = std::abs(v);
    max_abs = std::max(max_abs, a);
    kahan_add(sum_abs, c_abs, a);
    kahan_add(sum, c_sum, v);
    kahan_add(sum_sq, c_sq, v * v);
  }
  const double n = static_cast<double>(values.size());
  return core::SubTensorStats{max_abs, sum_abs / n, sum / n, sum_sq / n};
}

}  // namespace drift::ref
