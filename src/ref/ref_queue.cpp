#include "ref/ref_queue.hpp"

#include <algorithm>

namespace drift::ref {

std::vector<std::int64_t> lindley_waits(
    const std::vector<std::int64_t>& arrivals,
    const std::vector<std::int64_t>& services) {
  std::vector<std::int64_t> waits(arrivals.size(), 0);
  std::int64_t free_at = 0;
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    const std::int64_t start = std::max(free_at, arrivals[i]);
    waits[i] = start - arrivals[i];
    free_at = start + services[i];
  }
  return waits;
}

std::vector<std::int64_t> lindley_completions(
    const std::vector<std::int64_t>& arrivals,
    const std::vector<std::int64_t>& services) {
  std::vector<std::int64_t> completions(arrivals.size(), 0);
  std::int64_t free_at = 0;
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    const std::int64_t start = std::max(free_at, arrivals[i]);
    free_at = start + services[i];
    completions[i] = free_at;
  }
  return completions;
}

double md1_mean_wait(double arrival_rate, double service_cycles) {
  const double rho = arrival_rate * service_cycles;
  if (rho >= 1.0) return -1.0;
  return rho * service_cycles / (2.0 * (1.0 - rho));
}

double mg1_mean_wait(double arrival_rate, double service_mean,
                     double service_second_moment) {
  const double rho = arrival_rate * service_mean;
  if (rho >= 1.0) return -1.0;
  return arrival_rate * service_second_moment / (2.0 * (1.0 - rho));
}

}  // namespace drift::ref
