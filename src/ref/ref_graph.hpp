// Reference oracles for the graph runtime (src/graph): independent
// closed forms for per-op shape arithmetic, naive elementwise /
// broadcast / concat evaluators sharing no code with src/nn kernels,
// and a recursive demand-driven DAG evaluator that serves as the
// execution oracle for the iterative, lifetime-tracking executor.
//
// Deliberately free of src/graph includes: graphs are passed as plain
// producer-index adjacency, so the oracle cannot accidentally agree
// with the implementation by construction.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace drift::ref {

// ---------------------------------------------------------------------
// Shape arithmetic by position counting (no division formulas).
// ---------------------------------------------------------------------

/// Number of valid convolution output positions along one axis: counts
/// window starts o = 0, s, 2s, ... whose k-wide window fits inside the
/// padded extent.  0 when nothing fits.
std::int64_t conv_positions(std::int64_t in, std::int64_t k, std::int64_t s,
                            std::int64_t p);

/// Pooling positions (no padding).
std::int64_t pool_positions(std::int64_t in, std::int64_t k, std::int64_t s);

/// Right-aligned numpy broadcast of two shapes; empty when the shapes
/// do not broadcast.
std::vector<std::int64_t> broadcast_shape(
    const std::vector<std::int64_t>& a, const std::vector<std::int64_t>& b);

/// Whether `dim` splits evenly into `heads` attention heads.
bool head_split_ok(std::int64_t dim, std::int64_t heads);

// ---------------------------------------------------------------------
// Naive elementwise / structural evaluators (float path).
// ---------------------------------------------------------------------

float ref_relu(float x);
/// Tanh-approximation GELU, same float expression order as the
/// production kernel so the comparison can be bitwise.
float ref_gelu(float x);
/// Numerically-stable softmax of one row (peak subtract, double
/// accumulation), matching the production row recipe bitwise.
std::vector<float> ref_softmax_row(std::span<const float> row);

/// Broadcast add of two row-major buffers with the given shapes.
std::vector<float> ref_broadcast_add(std::span<const float> a,
                                     const std::vector<std::int64_t>& da,
                                     std::span<const float> b,
                                     const std::vector<std::int64_t>& db);

/// Concatenation of row-major buffers along `axis`.
std::vector<float> ref_concat(
    const std::vector<std::vector<float>>& parts,
    const std::vector<std::vector<std::int64_t>>& dims, std::int64_t axis);

// ---------------------------------------------------------------------
// Recursive demand-driven DAG evaluation.
// ---------------------------------------------------------------------

/// Evaluates every node of a DAG by memoized recursion over producers.
/// Value ids are [0, inputs.size()) for graph inputs, then
/// inputs.size() + n for node n; `producers[n]` lists node n's operand
/// ids.  `eval_node(n, operand_ptrs)` computes node n's value.
/// Returns all values (inputs first).  Purely demand-driven — the
/// opposite scheduling strategy from the iterative executor under
/// test.
template <typename Value, typename EvalFn>
std::vector<Value> recursive_eval(
    const std::vector<std::vector<int>>& producers,
    const std::vector<Value>& inputs, EvalFn&& eval_node) {
  const std::size_t num_inputs = inputs.size();
  std::vector<Value> values(num_inputs + producers.size());
  std::vector<char> ready(values.size(), 0);
  for (std::size_t i = 0; i < num_inputs; ++i) {
    values[i] = inputs[i];
    ready[i] = 1;
  }
  auto eval = [&](auto&& self, std::size_t id) -> const Value& {
    if (ready[id] == 0) {
      const std::vector<int>& deps = producers[id - num_inputs];
      std::vector<const Value*> args;
      args.reserve(deps.size());
      for (const int p : deps) {
        args.push_back(&self(self, static_cast<std::size_t>(p)));
      }
      values[id] = eval_node(id - num_inputs, args);
      ready[id] = 1;
    }
    return values[id];
  };
  for (std::size_t n = 0; n < producers.size(); ++n) {
    eval(eval, num_inputs + n);
  }
  return values;
}

}  // namespace drift::ref
