// Independent reference implementations of the quantization primitives
// (Equation 1 and the Section 3.1 hi->lo conversion).
//
// core/quantizer.cpp rounds through floating point (std::llround of a
// double quotient); the references here round through *exact integer
// arithmetic* wherever possible, so a differential test between the
// two certifies the rounding semantics (round half away from zero) and
// the clamp boundaries rather than re-running the same code.
#pragma once

#include <cstdint>
#include <span>

// drift-lint: allow(oracle-include) — type-only include: the oracles
// report core::SubTensorStats so differential tests can compare field
// by field; no selector algorithm code is shared.
#include "core/selector.hpp"

namespace drift::ref {

/// Equation 1: round(x / Δ) half away from zero, clamped to
/// ±max_level.  Implemented via floor(|s| + 0.5) instead of llround.
std::int32_t quantize_value(float x, double delta, std::int64_t max_level);

/// Section 3.1 low conversion: round(q / 2^lc) half away from zero,
/// clamped to ±lp_max_level.  Pure integer arithmetic — the hardware's
/// shift-round-saturate datapath.
std::int32_t convert_to_low(std::int32_t q, std::int64_t lp_max_level,
                            int lc);

/// Dequantization of a low code: q_lp * 2^lc * Δ.
double dequantize_low(std::int32_t q_lp, double delta, int lc);

/// Pooling-unit statistics with Kahan-compensated sums.  max_abs is
/// exact; the means are within a few ulps of the uncompensated
/// accumulation in core/selector.cpp.
core::SubTensorStats stats(std::span<const float> values);

}  // namespace drift::ref
