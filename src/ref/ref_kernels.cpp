#include "ref/ref_kernels.hpp"

// drift-lint: allow(oracle-include) — assertion macro only; shares no
// computational code with the implementations under test.
#include "util/assert.hpp"

namespace drift::ref {

TensorF matmul(const TensorF& a, const TensorF& b) {
  DRIFT_CHECK(a.shape().rank() == 2 && b.shape().rank() == 2,
              "matmul needs rank-2 operands");
  const std::int64_t M = a.shape().dim(0);
  const std::int64_t K = a.shape().dim(1);
  DRIFT_CHECK(b.shape().dim(0) == K, "inner dimension mismatch");
  const std::int64_t N = b.shape().dim(1);
  TensorF c(Shape{M, N});
  for (std::int64_t i = 0; i < M; ++i) {
    for (std::int64_t j = 0; j < N; ++j) {
      double acc = 0.0;
      for (std::int64_t k = 0; k < K; ++k) {
        acc += static_cast<double>(a(i, k)) * static_cast<double>(b(k, j));
      }
      c(i, j) = static_cast<float>(acc);
    }
  }
  return c;
}

TensorF matmul_nt(const TensorF& a, const TensorF& w) {
  DRIFT_CHECK(a.shape().rank() == 2 && w.shape().rank() == 2,
              "matmul_nt needs rank-2 operands");
  const std::int64_t M = a.shape().dim(0);
  const std::int64_t K = a.shape().dim(1);
  DRIFT_CHECK(w.shape().dim(1) == K, "inner dimension mismatch");
  const std::int64_t N = w.shape().dim(0);
  TensorF c(Shape{M, N});
  for (std::int64_t i = 0; i < M; ++i) {
    for (std::int64_t j = 0; j < N; ++j) {
      double acc = 0.0;
      for (std::int64_t k = 0; k < K; ++k) {
        acc += static_cast<double>(a(i, k)) * static_cast<double>(w(j, k));
      }
      c(i, j) = static_cast<float>(acc);
    }
  }
  return c;
}

TensorF conv2d(const TensorF& input, const TensorF& weight,
               const TensorF& bias, std::int64_t kh, std::int64_t kw,
               std::int64_t stride, std::int64_t pad) {
  DRIFT_CHECK(input.shape().rank() == 3, "conv2d expects [C, H, W]");
  DRIFT_CHECK(weight.shape().rank() == 2, "conv2d expects [OC, C*kh*kw]");
  const std::int64_t C = input.shape().dim(0);
  const std::int64_t H = input.shape().dim(1);
  const std::int64_t W = input.shape().dim(2);
  const std::int64_t OC = weight.shape().dim(0);
  DRIFT_CHECK(weight.shape().dim(1) == C * kh * kw,
              "conv2d weight width mismatch");
  DRIFT_CHECK(bias.shape().rank() == 1 && bias.shape().dim(0) == OC,
              "conv2d bias mismatch");
  const std::int64_t OH = (H + 2 * pad - kh) / stride + 1;
  const std::int64_t OW = (W + 2 * pad - kw) / stride + 1;
  DRIFT_CHECK(OH > 0 && OW > 0, "kernel larger than padded input");

  TensorF out(Shape{OC, OH, OW});
  for (std::int64_t o = 0; o < OC; ++o) {
    for (std::int64_t oh = 0; oh < OH; ++oh) {
      for (std::int64_t ow = 0; ow < OW; ++ow) {
        // k = (c*kh + dh)*kw + dw ascending: the lowered GEMM's order.
        double acc = 0.0;
        for (std::int64_t c = 0; c < C; ++c) {
          for (std::int64_t dh = 0; dh < kh; ++dh) {
            const std::int64_t h = oh * stride - pad + dh;
            if (h < 0 || h >= H) continue;
            for (std::int64_t dw = 0; dw < kw; ++dw) {
              const std::int64_t w = ow * stride - pad + dw;
              if (w < 0 || w >= W) continue;
              acc += static_cast<double>(input(c, h, w)) *
                     static_cast<double>(
                         weight(o, (c * kh + dh) * kw + dw));
            }
          }
        }
        out(o, oh, ow) = static_cast<float>(acc) + bias.at(o);
      }
    }
  }
  return out;
}

TensorF int_gemm_nt(const TensorI32& act_codes, const TensorI32& wgt_codes,
                    const std::vector<double>& act_row_scale,
                    const std::vector<double>& wgt_row_scale) {
  const std::int64_t M = act_codes.shape().dim(0);
  const std::int64_t K = act_codes.shape().dim(1);
  DRIFT_CHECK(wgt_codes.shape().dim(1) == K, "inner dimension mismatch");
  const std::int64_t N = wgt_codes.shape().dim(0);
  DRIFT_CHECK(static_cast<std::int64_t>(act_row_scale.size()) == M &&
                  static_cast<std::int64_t>(wgt_row_scale.size()) == N,
              "one scale per operand row required");
  TensorF out(Shape{M, N});
  for (std::int64_t i = 0; i < M; ++i) {
    for (std::int64_t j = 0; j < N; ++j) {
      std::int64_t acc = 0;
      for (std::int64_t k = 0; k < K; ++k) {
        acc += static_cast<std::int64_t>(act_codes(i, k)) *
               static_cast<std::int64_t>(wgt_codes(j, k));
      }
      out(i, j) = static_cast<float>(
          static_cast<double>(acc) *
          act_row_scale[static_cast<std::size_t>(i)] *
          wgt_row_scale[static_cast<std::size_t>(j)]);
    }
  }
  return out;
}

}  // namespace drift::ref
