// Naive scalar reference kernels for differential testing.
//
// Every function here is a deliberately simple re-implementation of a
// production kernel in src/nn, written without blocking, threading, or
// layout tricks, so the two can be compared *bit-exactly*: the
// production GEMMs fix their accumulation policy (double accumulator,
// k-ascending order) independent of blocking and thread count, and
// these references follow the same policy in the plainest possible
// loop nest.  Any divergence is a bug in one of the two.
//
// Nothing in src/ links against this library; it exists for tests/
// and bench/ only.
#pragma once

#include <cstdint>
#include <vector>

// drift-lint: allow(oracle-include) — container-only include: Tensor
// is dumb row-major storage; the kernels differentiated against it
// (src/nn) never flow through this header.
#include "tensor/tensor.hpp"

namespace drift::ref {

/// C[M,N] = A[M,K] * B[K,N].  Double accumulation, k ascending.
TensorF matmul(const TensorF& a, const TensorF& b);

/// C[M,N] = A[M,K] * W[N,K]^T (output-major weights).
TensorF matmul_nt(const TensorF& a, const TensorF& w);

/// Direct (no im2col) convolution of input [C, H, W] with im2col-ready
/// weights [OC, C*kh*kw] and bias [OC], producing [OC, OH, OW].  The
/// inner reduction runs in the exact k-order of the lowered GEMM, so
/// the result is bit-identical to im2col + matmul_nt + add_bias +
/// transpose.
TensorF conv2d(const TensorF& input, const TensorF& weight,
               const TensorF& bias, std::int64_t kh, std::int64_t kw,
               std::int64_t stride, std::int64_t pad);

/// Integer GEMM with per-row rescaling: out[i,j] =
/// float(double(sum_k act[i,k]*wgt[j,k]) * act_scale[i] * wgt_scale[j]),
/// the formula the BitGroup array's psum-exit multiplier applies.
TensorF int_gemm_nt(const TensorI32& act_codes, const TensorI32& wgt_codes,
                    const std::vector<double>& act_row_scale,
                    const std::vector<double>& wgt_row_scale);

}  // namespace drift::ref
