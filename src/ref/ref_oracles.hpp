// Brute-force oracles for the three analytical shortcuts the paper
// takes: the max/avg-only precision decision (Eq. 5/6), the
// weight-stationary latency model (Eq. 7), and the greedy min-max
// split search (Eq. 8).  Each oracle answers the question the
// production code answers, by exhaustive enumeration or a direct
// closed form, sharing no code with the implementation under test.
#pragma once

#include <cstdint>
#include <limits>
#include <span>

// The oracles answer questions *about* production types, so the plain
// struct definitions (LayerWork, ArrayDims, QuantParams, Precision) are
// the shared vocabulary differential testing needs; no algorithm code
// is pulled in through either header.
// drift-lint: allow(oracle-include) — type-only include: LayerWork and
// ArrayDims are plain data structs, no implementation logic shared.
#include "core/scheduler.hpp"
// drift-lint: allow(oracle-include) — type-only include: QuantParams
// and Precision are plain data structs, no implementation logic shared.
#include "core/selector.hpp"

namespace drift::ref {

/// Sentinel for "this mapping is infeasible".  Numerically equal to
/// core::kInfeasibleLatency — asserted at compile time in
/// tests/prop/prop_latency_model.cpp — but defined locally so the
/// oracle library carries no include dependency on src/core/
/// implementation headers.
inline constexpr std::int64_t kInfeasibleLatency =
    std::numeric_limits<std::int64_t>::max() / 16;

// ---------------------------------------------------------------------
// Equation 7 (weight-stationary latency), evaluated directly.
// ---------------------------------------------------------------------

/// ceil(pa*K / 4R) * ceil(pw*N / 16C), the weight-tile repetition
/// count.  Returns 0 for empty work and kInfeasibleLatency when the
/// work is non-empty but R or C is zero (mirrors the production
/// sentinel contract).
std::int64_t eq7_repetitions(std::int64_t K, std::int64_t N, int pa, int pw,
                             std::int64_t R, std::int64_t C);

/// (T_pre + T_exe) * repetitions with T_pre = R and
/// T_exe = M + R + C - 2.
std::int64_t eq7_cycles(std::int64_t M, std::int64_t K, std::int64_t N,
                        int pa, int pw, std::int64_t R, std::int64_t C);

// ---------------------------------------------------------------------
// Equation 8 (balanced split): exhaustive (r, c) enumeration.
// ---------------------------------------------------------------------

struct SplitOracle {
  std::int64_t best_r = 0;
  std::int64_t best_c = 0;
  std::int64_t best_makespan = std::numeric_limits<std::int64_t>::max();
};

/// Evaluates max{T_hh, T_hl, T_lh, T_ll} (via eq7_cycles) for every
/// (r, c) in [0, R] x [0, C] and returns the true minimum.  O(R*C).
SplitOracle exhaustive_split(const core::LayerWork& work,
                             const core::ArrayDims& total);

// ---------------------------------------------------------------------
// Equations 5/6 (precision selection): brute-force (hc, lc) clip
// enumeration over the sub-tensor's *actual codes*.
// ---------------------------------------------------------------------

struct RenderingOracle {
  /// Largest hc whose exact lp range lp_max * 2^lc * Δ covers
  /// max(|Y|) — the value-level Equation 5 answer; -1 if none.
  int eq5_hc = -1;
  /// Largest hc whose rendering never engages the saturating clamp on
  /// any actual code of the sub-tensor; -1 if none.  Always >= eq5_hc
  /// because code-level rounding is slightly more permissive.
  int max_hc_no_clip = -1;
  /// Minimal worst-case |x - rendering(x)| over *all* (hc, lc)
  /// choices, clipping ones included, and the choice achieving it.
  double best_max_error = 0.0;
  int best_hc = 0;
  int best_lc = 0;
};

/// Enumerates every (hc, lc) with hc + lc = hp - lp for the given
/// sub-tensor values and reports the quantities above.  `params` is
/// the Eq. 1 calibration of the enclosing tensor.
RenderingOracle brute_force_rendering(std::span<const float> values,
                                      const core::QuantParams& params,
                                      core::Precision lp);

// ---------------------------------------------------------------------
// Tandem-queue pipeline closed form (oracle for
// systolic::pipeline_exit_cycles' O(M*stages) recursion).
// ---------------------------------------------------------------------

/// Exit time of the last row: sum(costs) + (stages - 1) * max(costs).
/// In the max-plus shortest-path view of the tandem-queue recursion the
/// critical path spends all of its stages - 1 lateral moves inside the
/// single slowest row, which yields this closed form.
std::int64_t pipeline_exit_closed_form(std::span<const std::int64_t> costs,
                                       std::int64_t stages);

// ---------------------------------------------------------------------
// Exact order statistic (oracle for obs::Histogram::quantile).
// ---------------------------------------------------------------------

/// The exact p-quantile of `values` under the nearest-rank definition
/// the obs histogram uses: the observation with 1-based sorted rank
/// clamp(ceil(p * n), 1, n).  Copies and sorts; O(n log n) and meant
/// only for test-sized inputs.  `values` must be non-empty and p in
/// [0, 1].
std::int64_t sorted_quantile(std::span<const std::int64_t> values, double p);

}  // namespace drift::ref
