#include "ref/ref_graph.hpp"

#include <algorithm>
#include <cmath>

// drift-lint: allow(oracle-include) — assertion macro only; shares no
// logic with the code under test.
#include "util/assert.hpp"

namespace drift::ref {

std::int64_t conv_positions(std::int64_t in, std::int64_t k, std::int64_t s,
                            std::int64_t p) {
  std::int64_t count = 0;
  for (std::int64_t start = 0; start + k <= in + 2 * p; start += s) {
    ++count;
  }
  return count;
}

std::int64_t pool_positions(std::int64_t in, std::int64_t k,
                            std::int64_t s) {
  return conv_positions(in, k, s, 0);
}

std::vector<std::int64_t> broadcast_shape(
    const std::vector<std::int64_t>& a, const std::vector<std::int64_t>& b) {
  // Left-pad the shorter shape with 1s, then match axis by axis — the
  // textbook statement of the rule, rather than src/graph's
  // right-aligned index walk.
  std::vector<std::int64_t> pa = a;
  std::vector<std::int64_t> pb = b;
  while (pa.size() < pb.size()) pa.insert(pa.begin(), 1);
  while (pb.size() < pa.size()) pb.insert(pb.begin(), 1);
  std::vector<std::int64_t> out(pa.size(), 0);
  for (std::size_t r = 0; r < pa.size(); ++r) {
    if (pa[r] == pb[r] || pa[r] == 1 || pb[r] == 1) {
      out[r] = std::max(pa[r], pb[r]);
    } else {
      return {};
    }
  }
  return out;
}

bool head_split_ok(std::int64_t dim, std::int64_t heads) {
  if (dim <= 0 || heads <= 0) return false;
  return (dim / heads) * heads == dim;
}

float ref_relu(float x) { return x > 0.0f ? x : 0.0f; }

float ref_gelu(float x) {
  constexpr float kSqrt2OverPi = 0.7978845608f;
  const float inner = kSqrt2OverPi * (x + 0.044715f * x * x * x);
  return 0.5f * x * (1.0f + std::tanh(inner));
}

std::vector<float> ref_softmax_row(std::span<const float> row) {
  DRIFT_CHECK(!row.empty(), "softmax of an empty row");
  float peak = row[0];
  for (const float v : row) peak = std::max(peak, v);
  std::vector<float> out(row.size());
  double denom = 0.0;
  for (std::size_t j = 0; j < row.size(); ++j) {
    const double e = std::exp(static_cast<double>(row[j] - peak));
    out[j] = static_cast<float>(e);
    denom += e;
  }
  for (float& v : out) v = static_cast<float>(v / denom);
  return out;
}

namespace {

std::int64_t numel_of(const std::vector<std::int64_t>& dims) {
  std::int64_t n = 1;
  for (const std::int64_t d : dims) n *= d;
  return n;
}

}  // namespace

std::vector<float> ref_broadcast_add(std::span<const float> a,
                                     const std::vector<std::int64_t>& da,
                                     std::span<const float> b,
                                     const std::vector<std::int64_t>& db) {
  const std::vector<std::int64_t> out_dims = broadcast_shape(da, db);
  DRIFT_CHECK(!out_dims.empty(), "operands do not broadcast");
  const std::int64_t total = numel_of(out_dims);
  std::vector<float> out(static_cast<std::size_t>(total));

  // Element lookup by explicit multi-index modulo each operand's
  // extent (clamping broadcast axes via %), recomputed per element —
  // naive on purpose.
  const auto fetch = [&out_dims](std::span<const float> data,
                                 const std::vector<std::int64_t>& dims,
                                 std::int64_t flat) {
    std::vector<std::int64_t> index(out_dims.size(), 0);
    for (std::size_t r = out_dims.size(); r-- > 0;) {
      index[r] = flat % out_dims[r];
      flat /= out_dims[r];
    }
    const std::size_t pad = out_dims.size() - dims.size();
    std::int64_t offset = 0;
    for (std::size_t r = 0; r < dims.size(); ++r) {
      offset = offset * dims[r] + index[pad + r] % dims[r];
    }
    return data[static_cast<std::size_t>(offset)];
  };
  for (std::int64_t flat = 0; flat < total; ++flat) {
    out[static_cast<std::size_t>(flat)] =
        fetch(a, da, flat) + fetch(b, db, flat);
  }
  return out;
}

std::vector<float> ref_concat(
    const std::vector<std::vector<float>>& parts,
    const std::vector<std::vector<std::int64_t>>& dims, std::int64_t axis) {
  DRIFT_CHECK(!parts.empty() && parts.size() == dims.size(),
              "concat needs matching parts and dims");
  std::vector<std::int64_t> out_dims = dims[0];
  for (std::size_t i = 1; i < dims.size(); ++i) {
    out_dims[static_cast<std::size_t>(axis)] +=
        dims[i][static_cast<std::size_t>(axis)];
  }
  std::vector<float> out(static_cast<std::size_t>(numel_of(out_dims)));

  // Naive per-element placement: walk every part's own multi-index,
  // shift the concat axis, and write through the output's strides.
  std::int64_t axis_base = 0;
  for (std::size_t part = 0; part < parts.size(); ++part) {
    const std::vector<std::int64_t>& d = dims[part];
    const std::int64_t n = numel_of(d);
    for (std::int64_t flat = 0; flat < n; ++flat) {
      std::vector<std::int64_t> index(d.size(), 0);
      std::int64_t rest = flat;
      for (std::size_t r = d.size(); r-- > 0;) {
        index[r] = rest % d[r];
        rest /= d[r];
      }
      index[static_cast<std::size_t>(axis)] += axis_base;
      std::int64_t offset = 0;
      for (std::size_t r = 0; r < out_dims.size(); ++r) {
        offset = offset * out_dims[r] + index[r];
      }
      out[static_cast<std::size_t>(offset)] =
          parts[part][static_cast<std::size_t>(flat)];
    }
    axis_base += d[static_cast<std::size_t>(axis)];
  }
  return out;
}

}  // namespace drift::ref
