#include "serve/executor.hpp"

#include <utility>

#include "accel/bitfusion.hpp"
#include "accel/drq_accel.hpp"
#include "util/assert.hpp"

namespace drift::serve {

BatchExecutor::BatchExecutor(ExecConfig config, std::vector<TenantSpec> tenants,
                             util::ThreadPool& pool)
    : config_(std::move(config)), tenants_(std::move(tenants)) {
  DRIFT_CHECK(!tenants_.empty(), "executor needs at least one tenant");
  switch (config_.algo) {
    case nn::MixAlgorithm::kStaticInt8:
      model_ = std::make_unique<accel::BitFusionModel>(config_.hw);
      break;
    case nn::MixAlgorithm::kDrq:
      model_ = std::make_unique<accel::DrqAccelModel>(config_.hw);
      break;
    case nn::MixAlgorithm::kDrift:
      model_ = std::make_unique<accel::DriftAccelModel>(config_.hw,
                                                        config_.drift_policy);
      break;
  }

  states_.resize(tenants_.size());
  for (std::size_t t = 0; t < tenants_.size(); ++t) {
    const TenantSpec& tenant = tenants_[t];
    TenantState& st = states_[t];
    st.spec = prefix_layers(tenant.workload, tenant.name);
    const nn::MixConfig cfg = mix_config(tenant);

    // Canonical mix, decomposed through the same per-operand builders
    // build_mixes uses (same per-layer fork streams, activation first)
    // so the column patterns can be retained for batch packing.
    const std::size_t num_layers = st.spec.layers.size();
    st.canonical.resize(num_layers);
    st.col_patterns.resize(num_layers);
    const Rng base(tenant.seed);
    for (std::size_t li = 0; li < num_layers; ++li) {
      const nn::LayerGemm& layer = st.spec.layers[li];
      Rng rng = base.fork(li);
      auto rows = nn::build_act_pattern(layer, rng, st.spec.act_profile, cfg);
      st.col_patterns[li] = nn::build_weight_pattern(layer, rng, st.spec, cfg);
      st.canonical[li] =
          nn::assemble_mix(layer, std::move(rows), st.col_patterns[li], cfg);
    }

    if (!tenant.unique_mix_per_request) continue;

    // Per-request activation patterns: request r samples its own
    // activation stream from fork(kRequestStreamBase + r), one child
    // stream per layer.  Slots are disjoint and seed-derived, so the
    // parallel precompute is bit-identical at any pool size.
    st.per_request.resize(static_cast<std::size_t>(tenant.num_requests));
    pool.parallel_for(
        0, tenant.num_requests, 1, [&](std::int64_t lo, std::int64_t hi) {
          for (std::int64_t r = lo; r < hi; ++r) {
            const Rng req_base = base.fork(kRequestStreamBase +
                                           static_cast<std::uint64_t>(r));
            auto& mixes = st.per_request[static_cast<std::size_t>(r)];
            mixes.resize(num_layers);
            for (std::size_t li = 0; li < num_layers; ++li) {
              const nn::LayerGemm& layer = st.spec.layers[li];
              Rng rng = req_base.fork(li);
              auto rows =
                  nn::build_act_pattern(layer, rng, st.spec.act_profile, cfg);
              mixes[li] = nn::assemble_mix(layer, std::move(rows),
                                           st.col_patterns[li], cfg);
            }
          }
        });
  }
}

nn::MixConfig BatchExecutor::mix_config(const TenantSpec& tenant) const {
  nn::MixConfig cfg;
  cfg.algo = config_.algo;
  cfg.drift = config_.drift_selector;
  cfg.drq = config_.drq_config;
  cfg.dynamic_weights = config_.drift_dynamic_weights;
  cfg.auto_threshold = config_.auto_threshold;
  cfg.noise_budget = config_.noise_budget;
  cfg.seed = tenant.seed;
  return cfg;
}

const BatchExecutor::TenantState& BatchExecutor::state(int tenant) const {
  DRIFT_CHECK_INDEX(tenant, static_cast<int>(states_.size()));
  return states_[static_cast<std::size_t>(tenant)];
}

const nn::WorkloadSpec& BatchExecutor::tenant_spec(int tenant) const {
  return state(tenant).spec;
}

const std::vector<nn::LayerMix>& BatchExecutor::request_mixes(
    int tenant, std::int64_t local) const {
  const TenantState& st = state(tenant);
  if (st.per_request.empty()) return st.canonical;
  DRIFT_CHECK_INDEX(local, static_cast<std::int64_t>(st.per_request.size()));
  return st.per_request[static_cast<std::size_t>(local)];
}

BatchResult BatchExecutor::execute(int tenant,
                                   const std::vector<std::int64_t>& locals) {
  DRIFT_CHECK(!locals.empty(), "cannot execute an empty batch");
  const TenantState& st = state(tenant);
  const TenantSpec& spec = tenants_[static_cast<std::size_t>(tenant)];
  const nn::MixConfig cfg = mix_config(spec);

  // Pack: per layer, concatenate the member requests' row patterns in
  // admission order and grow M accordingly; the weight side (shared
  // across the tenant's requests) keeps the canonical column pattern.
  nn::WorkloadSpec batched = st.spec;
  std::vector<nn::LayerMix> mixes(batched.layers.size());
  for (std::size_t li = 0; li < batched.layers.size(); ++li) {
    std::vector<bool> rows;
    for (std::int64_t local : locals) {
      const auto& request = request_mixes(tenant, local)[li];
      rows.insert(rows.end(), request.row_is_low.begin(),
                  request.row_is_low.end());
    }
    batched.layers[li].dims.M = static_cast<std::int64_t>(rows.size());
    mixes[li] = nn::assemble_mix(batched.layers[li], std::move(rows),
                                 st.col_patterns[li], cfg);
  }

  BatchResult result;
  result.run = model_->run(batched, mixes);
  result.cycles = result.run.cycles;
  result.energy_pj = result.run.energy.total_pj();
  return result;
}

BatchResult BatchExecutor::execute_canonical(int tenant) {
  const TenantState& st = state(tenant);
  BatchResult result;
  result.run = model_->run(st.spec, st.canonical);
  result.cycles = result.run.cycles;
  result.energy_pj = result.run.energy.total_pj();
  return result;
}

}  // namespace drift::serve
