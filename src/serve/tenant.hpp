// A tenant is one traffic source sharing the accelerator: a model
// workload, an arrival process, and a request budget.  Requests of one
// tenant are batched together (they share weights); different tenants
// never share a batch.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/workload.hpp"
#include "serve/arrival.hpp"

namespace drift::serve {

struct TenantSpec {
  std::string name = "tenant";
  nn::WorkloadSpec workload;
  ArrivalConfig arrival;
  std::int64_t num_requests = 64;
  std::uint64_t seed = 1;
  /// When true every request gets its own sampled activation stream
  /// (fresh per-sub-tensor stats -> its own selector pattern); when
  /// false all requests reuse the tenant's canonical mix, which makes
  /// service deterministic — the M/D/1 regime the oracle tests pin.
  bool unique_mix_per_request = true;
};

/// Small fixed-shape workloads sized for the serving simulator: real
/// layer-kind variety (conv / fc / attention / ffn) but dimensions that
/// keep a per-batch accelerator run in the microsecond range, so soak
/// tests can push tens of thousands of requests.  `name` selects
/// "tiny-cnn", "tiny-bert" or any paper workload by its model name
/// (e.g. "ResNet18"); unknown names fall back to tiny-cnn.
nn::WorkloadSpec serving_workload(const std::string& name);

/// Copy of `spec` with every layer renamed "<prefix>/<layer>", so two
/// tenants running the same model keep separate obs layer records.
nn::WorkloadSpec prefix_layers(const nn::WorkloadSpec& spec,
                               const std::string& prefix);

}  // namespace drift::serve
