// Multi-tenant serving simulator: a deterministic discrete-event loop
// in simulated cycles over one shared accelerator.
//
// Determinism argument (the property the 1/2/8-thread tests assert):
//   - Arrival traces are pure functions of (tenant seed, arrival
//     config) via util/rng.
//   - Per-request precision mixes are seed-derived; the thread pool
//     only precomputes them into disjoint slots with a fixed chunk
//     decomposition, so they are bit-identical at any pool size.
//   - The event loop itself is single-threaded: one server, FIFO
//     admission with a total arrival order (cycle, tenant, local
//     index), batch composition a pure function of the trace, and the
//     accelerator models re-create their DRAM/fabric state per run.
//   - Every serve.* metric is observed from the event-loop thread, so
//     histogram shard/reservoir placement cannot vary with pool size;
//     the serving artifact (Registry::to_json({"serve."})) is therefore
//     byte-identical at any thread count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/batcher.hpp"
#include "serve/executor.hpp"
#include "serve/tenant.hpp"
#include "util/thread_pool.hpp"

namespace drift::serve {

struct ServeConfig {
  std::vector<TenantSpec> tenants;
  ExecConfig exec{};
  std::int64_t max_batch = 8;
  /// Per-request Chrome-trace tracks are capped (each costs a pid-1
  /// track); requests beyond the cap are counted in
  /// serve.trace_dropped, never silently truncated.
  std::int64_t trace_request_cap = 128;
};

/// One served request's lifecycle timestamps (all simulated cycles).
struct RequestRecord {
  std::int64_t id = 0;       ///< global admission index
  int tenant = 0;
  std::int64_t local = 0;    ///< per-tenant request index
  std::int64_t arrival = 0;
  std::int64_t start = 0;
  std::int64_t completion = 0;
  std::int64_t batch_id = -1;
  std::int64_t batch_size = 0;
  double energy_pj = 0.0;    ///< batch energy / batch size

  std::int64_t wait() const { return start - arrival; }
  std::int64_t service() const { return completion - start; }
  std::int64_t latency() const { return completion - arrival; }
};

/// Exact (sorted-sample) tail summary of one latency population.
struct SloSummary {
  std::int64_t count = 0;
  std::int64_t p50_cycles = 0;
  std::int64_t p99_cycles = 0;
  std::int64_t p999_cycles = 0;
  std::int64_t max_cycles = 0;
  double mean_wait_cycles = 0.0;
  double mean_latency_cycles = 0.0;
  double energy_per_request_pj = 0.0;
};

struct ServeResult {
  std::vector<RequestRecord> requests;  ///< in admission (id) order
  SloSummary overall;
  std::vector<SloSummary> per_tenant;
  std::int64_t batches = 0;
  std::int64_t busy_cycles = 0;         ///< accelerator-occupied cycles
  std::int64_t makespan_cycles = 0;     ///< last completion
  double total_energy_pj = 0.0;

  double utilization() const {
    return makespan_cycles > 0 ? static_cast<double>(busy_cycles) /
                                     static_cast<double>(makespan_cycles)
                               : 0.0;
  }
};

/// Exact p-quantile of an unsorted sample at rank ceil(p*N) (1-based),
/// the same convention as the obs histogram estimator.  0 when empty.
std::int64_t exact_quantile(std::vector<std::int64_t> values, double p);

class Simulator {
 public:
  /// Caller owns the pool; the simulator only borrows it for the
  /// per-request mix precompute inside BatchExecutor.
  explicit Simulator(ServeConfig config,
                     util::ThreadPool& pool = util::ThreadPool::instance());

  /// Runs every tenant's request budget to completion.
  ServeResult run();

  BatchExecutor& executor() { return executor_; }

 private:
  ServeConfig config_;
  BatchExecutor executor_;
};

}  // namespace drift::serve
