// Continuous-batching admission queue.  Requests enter in arrival
// order; when the accelerator frees up, the queue emits the head
// request plus every already-arrived request of the *same tenant*, up
// to the batch cap — the head of line is never skipped, so no tenant
// starves, and batch composition is a pure function of the arrival
// trace (deterministic for a fixed seed).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

namespace drift::serve {

struct QueuedRequest {
  std::int64_t id = 0;       ///< global admission index
  int tenant = 0;
  std::int64_t local = 0;    ///< per-tenant request index
  std::int64_t arrival = 0;  ///< arrival cycle
};

class AdmissionQueue {
 public:
  /// Requests must be pushed in non-decreasing arrival order.
  void push(const QueuedRequest& request);

  bool empty() const { return queue_.empty(); }
  std::size_t size() const { return queue_.size(); }
  const QueuedRequest& head() const { return queue_.front(); }

  /// Pops the head plus up to `max_batch - 1` further requests of the
  /// head's tenant that have arrived by `now`, preserving the FIFO
  /// order of everything left behind.  Scanning stops at the first
  /// entry with arrival > now (entries are arrival-ordered), so a long
  /// backlog costs one pass over the eligible prefix.
  std::vector<QueuedRequest> pop_batch(std::int64_t now,
                                       std::int64_t max_batch);

 private:
  std::deque<QueuedRequest> queue_;
};

}  // namespace drift::serve
