#include "serve/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"

namespace drift::serve {
namespace {

/// Stream id of a tenant's arrival trace on Rng(tenant.seed): distinct
/// from the canonical mix streams (0..layers-1) and the per-request
/// activation streams (kRequestStreamBase + r).
constexpr std::uint64_t kArrivalStream = 1ull << 33;

/// Bucket bounds shared by the cycle-valued serve histograms (latency,
/// wait, service): powers of two from 64 cycles to ~67M cycles.
#define DRIFT_SERVE_CYCLE_BOUNDS                                           \
  64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536, 131072, \
      262144, 524288, 1048576, 2097152, 4194304, 8388608, 16777216,       \
      33554432, 67108864

#ifndef DRIFT_OBS_OFF
std::vector<std::int64_t> cycle_bounds() {
  return {DRIFT_SERVE_CYCLE_BOUNDS};
}
#endif

double mean_i64(const std::vector<std::int64_t>& v) {
  if (v.empty()) return 0.0;
  double sum = 0.0;
  for (std::int64_t x : v) sum += static_cast<double>(x);
  return sum / static_cast<double>(v.size());
}

SloSummary summarize(const std::vector<const RequestRecord*>& records) {
  SloSummary slo;
  slo.count = static_cast<std::int64_t>(records.size());
  if (records.empty()) return slo;
  std::vector<std::int64_t> latencies, waits;
  latencies.reserve(records.size());
  waits.reserve(records.size());
  double energy = 0.0;
  for (const RequestRecord* r : records) {
    latencies.push_back(r->latency());
    waits.push_back(r->wait());
    energy += r->energy_pj;
  }
  slo.p50_cycles = exact_quantile(latencies, 0.50);
  slo.p99_cycles = exact_quantile(latencies, 0.99);
  slo.p999_cycles = exact_quantile(latencies, 0.999);
  slo.max_cycles = *std::max_element(latencies.begin(), latencies.end());
  slo.mean_wait_cycles = mean_i64(waits);
  slo.mean_latency_cycles = mean_i64(latencies);
  slo.energy_per_request_pj = energy / static_cast<double>(records.size());
  return slo;
}

}  // namespace

std::int64_t exact_quantile(std::vector<std::int64_t> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  const auto n = static_cast<double>(values.size());
  auto rank = static_cast<std::int64_t>(std::ceil(p * n));
  rank = std::clamp<std::int64_t>(rank, 1,
                                  static_cast<std::int64_t>(values.size()));
  return values[static_cast<std::size_t>(rank - 1)];
}

Simulator::Simulator(ServeConfig config, util::ThreadPool& pool)
    : config_(std::move(config)),
      executor_(config_.exec, config_.tenants, pool) {
  DRIFT_CHECK(config_.max_batch >= 1, "max_batch must be at least 1");
}

ServeResult Simulator::run() {
  // Merge the per-tenant arrival traces into one total order; ties
  // break by (tenant, local index) so the admission order — and with it
  // every batch composition — is a pure function of the seeds.
  struct Arrival {
    std::int64_t cycle = 0;
    int tenant = 0;
    std::int64_t local = 0;
  };
  std::vector<Arrival> arrivals;
  for (std::size_t t = 0; t < config_.tenants.size(); ++t) {
    const TenantSpec& tenant = config_.tenants[t];
    Rng rng = Rng(tenant.seed).fork(kArrivalStream);
    const auto cycles = arrival_cycles(tenant.arrival, rng,
                                       tenant.num_requests);
    for (std::size_t i = 0; i < cycles.size(); ++i) {
      arrivals.push_back({cycles[i], static_cast<int>(t),
                          static_cast<std::int64_t>(i)});
    }
  }
  std::sort(arrivals.begin(), arrivals.end(),
            [](const Arrival& a, const Arrival& b) {
              if (a.cycle != b.cycle) return a.cycle < b.cycle;
              if (a.tenant != b.tenant) return a.tenant < b.tenant;
              return a.local < b.local;
            });

  ServeResult result;
  result.requests.resize(arrivals.size());
  for (std::size_t id = 0; id < arrivals.size(); ++id) {
    RequestRecord& rec = result.requests[id];
    rec.id = static_cast<std::int64_t>(id);
    rec.tenant = arrivals[id].tenant;
    rec.local = arrivals[id].local;
    rec.arrival = arrivals[id].cycle;
  }

#ifndef DRIFT_OBS_OFF
  // Per-tenant latency histograms carry dynamic names, so they cannot
  // go through the static-handle macros; handles are resolved once
  // here, before the event loop.
  std::vector<obs::Histogram*> tenant_latency(config_.tenants.size());
  for (std::size_t t = 0; t < config_.tenants.size(); ++t) {
    // drift-lint: allow(obs) — one lookup per tenant at simulator setup, not on the serving hot path; the event loop uses the cached handles.
    tenant_latency[t] = obs::Registry::global().histogram(
        "serve.latency_cycles." + config_.tenants[t].name, cycle_bounds());
  }
#endif
  obs::Tracer& tracer = obs::Tracer::global();

  // Single-server FIFO event loop: admit everything that has arrived by
  // the instant the accelerator frees up, serve the head-of-line
  // tenant's eligible requests as one batch.
  AdmissionQueue queue;
  std::size_t next = 0;
  std::int64_t free_at = 0;
  while (next < arrivals.size() || !queue.empty()) {
    if (queue.empty()) {
      const Arrival& a = arrivals[next];
      queue.push({static_cast<std::int64_t>(next), a.tenant, a.local,
                  a.cycle});
      ++next;
      continue;
    }
    const std::int64_t t_start = std::max(free_at, queue.head().arrival);
    while (next < arrivals.size() && arrivals[next].cycle <= t_start) {
      const Arrival& a = arrivals[next];
      queue.push({static_cast<std::int64_t>(next), a.tenant, a.local,
                  a.cycle});
      ++next;
    }
    const auto batch = queue.pop_batch(t_start, config_.max_batch);
    std::vector<std::int64_t> locals;
    locals.reserve(batch.size());
    for (const QueuedRequest& r : batch) locals.push_back(r.local);

    const BatchResult executed = executor_.execute(batch.front().tenant,
                                                   locals);
    const std::int64_t completion = t_start + executed.cycles;
    free_at = completion;
    result.busy_cycles += executed.cycles;
    result.total_energy_pj += executed.energy_pj;
    const double per_request_energy =
        executed.energy_pj / static_cast<double>(batch.size());

    DRIFT_OBS_COUNT("serve.batches", 1);
    DRIFT_OBS_COUNT("serve.batch_cycles", executed.cycles);
    DRIFT_OBS_COUNT("serve.energy_pj",
                    static_cast<std::int64_t>(std::llround(
                        executed.energy_pj)));
    DRIFT_OBS_HISTOGRAM("serve.batch_size",
                        static_cast<std::int64_t>(batch.size()), 1, 2, 3, 4,
                        6, 8, 12, 16, 24, 32);

    for (const QueuedRequest& r : batch) {
      RequestRecord& rec = result.requests[static_cast<std::size_t>(r.id)];
      rec.start = t_start;
      rec.completion = completion;
      rec.batch_id = result.batches;
      rec.batch_size = static_cast<std::int64_t>(batch.size());
      rec.energy_pj = per_request_energy;

      DRIFT_OBS_COUNT("serve.requests", 1);
      DRIFT_OBS_HISTOGRAM("serve.latency_cycles", rec.latency(),
                          DRIFT_SERVE_CYCLE_BOUNDS);
      DRIFT_OBS_HISTOGRAM("serve.wait_cycles", rec.wait(),
                          DRIFT_SERVE_CYCLE_BOUNDS);
      DRIFT_OBS_HISTOGRAM("serve.service_cycles", rec.service(),
                          DRIFT_SERVE_CYCLE_BOUNDS);
#ifndef DRIFT_OBS_OFF
      tenant_latency[static_cast<std::size_t>(r.tenant)]->observe(
          rec.latency());
#endif
      if (tracer.enabled()) {
        if (rec.id < config_.trace_request_cap) {
          const std::string track =
              "req/" + config_.tenants[static_cast<std::size_t>(r.tenant)]
                           .name +
              "/" + std::to_string(r.local);
          const std::uint32_t tid = tracer.sim_track(track);
          if (rec.wait() > 0) {
            tracer.complete("wait", tid, rec.arrival, rec.wait());
          }
          tracer.complete("exec", tid, rec.start, rec.service());
        } else {
          DRIFT_OBS_COUNT("serve.trace_dropped", 1);
        }
      }
    }
    ++result.batches;
  }

  DRIFT_OBS_COUNT("serve.arrivals",
                  static_cast<std::int64_t>(arrivals.size()));
  result.makespan_cycles = free_at;

  std::vector<const RequestRecord*> all;
  all.reserve(result.requests.size());
  std::vector<std::vector<const RequestRecord*>> by_tenant(
      config_.tenants.size());
  for (const RequestRecord& rec : result.requests) {
    all.push_back(&rec);
    by_tenant[static_cast<std::size_t>(rec.tenant)].push_back(&rec);
  }
  result.overall = summarize(all);
  result.per_tenant.reserve(by_tenant.size());
  for (const auto& group : by_tenant) {
    result.per_tenant.push_back(summarize(group));
  }
  DRIFT_OBS_GAUGE_SET("serve.utilization", result.utilization());
  return result;
}

}  // namespace drift::serve

#undef DRIFT_SERVE_CYCLE_BOUNDS
