#include "serve/tenant.hpp"

namespace drift::serve {
namespace {

nn::WorkloadSpec tiny_cnn() {
  nn::WorkloadSpec spec;
  spec.model = "tiny-cnn";
  spec.family = nn::ModelFamily::kCnn;
  spec.act_profile = nn::cnn_profile();
  spec.weight_profile = nn::weight_profile();
  spec.layers = {
      {"conv1", nn::LayerKind::kConv, {64, 72, 48}, 1, 3},
      {"conv2", nn::LayerKind::kConv, {48, 96, 64}, 1, 3},
      {"fc", nn::LayerKind::kFc, {8, 64, 40}, 1, 1},
  };
  return spec;
}

nn::WorkloadSpec tiny_bert() {
  nn::WorkloadSpec spec;
  spec.model = "tiny-bert";
  spec.family = nn::ModelFamily::kBert;
  spec.act_profile = nn::bert_profile();
  spec.weight_profile = nn::weight_profile();
  const std::int64_t seq = 32, d = 64;
  spec.layers = {
      {"qkv", nn::LayerKind::kQkvProj, {seq, d, 3 * d}, 1, 1},
      {"score", nn::LayerKind::kAttnScore, {seq, d, seq}, 1, 1},
      {"context", nn::LayerKind::kAttnContext, {seq, seq, d}, 1, 1},
      {"ffn", nn::LayerKind::kFfn, {seq, d, 2 * d}, 1, 1},
  };
  return spec;
}

}  // namespace

nn::WorkloadSpec serving_workload(const std::string& name) {
  if (name == "tiny-bert") return tiny_bert();
  for (const auto& spec : nn::paper_workloads()) {
    if (spec.model == name) return spec;
  }
  return tiny_cnn();
}

nn::WorkloadSpec prefix_layers(const nn::WorkloadSpec& spec,
                               const std::string& prefix) {
  nn::WorkloadSpec out = spec;
  for (auto& layer : out.layers) layer.name = prefix + "/" + layer.name;
  return out;
}

}  // namespace drift::serve
