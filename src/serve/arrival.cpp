#include "serve/arrival.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace drift::serve {
namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

std::vector<double> poisson_gaps(const ArrivalConfig& config, Rng& rng,
                                 std::int64_t count) {
  const double rate = 1.0 / config.mean_interarrival_cycles;
  std::vector<double> gaps(static_cast<std::size_t>(count));
  for (auto& g : gaps) g = rng.exponential(rate);
  return gaps;
}

std::vector<double> bursty_gaps(const ArrivalConfig& config, Rng& rng,
                                std::int64_t count) {
  const double base_rate = 1.0 / config.mean_interarrival_cycles;
  std::vector<double> gaps(static_cast<std::size_t>(count));
  bool in_burst = false;
  for (auto& g : gaps) {
    const double rate =
        in_burst ? base_rate * config.burst_rate_multiplier : base_rate;
    g = rng.exponential(rate);
    // State transition evaluated after each arrival, so a trace always
    // opens in the calm state and the first gap has the base rate.
    in_burst = in_burst ? !rng.bernoulli(config.burst_exit_prob)
                        : rng.bernoulli(config.burst_enter_prob);
  }
  return gaps;
}

std::vector<double> diurnal_gaps(const ArrivalConfig& config, Rng& rng,
                                 std::int64_t count) {
  const double base_rate = 1.0 / config.mean_interarrival_cycles;
  const double amplitude = std::clamp(config.diurnal_amplitude, 0.0, 1.0);
  const double max_rate = base_rate * (1.0 + amplitude);
  std::vector<double> gaps(static_cast<std::size_t>(count));
  double t = 0.0;
  double last_accepted = 0.0;
  for (auto& g : gaps) {
    // Lewis–Shedler thinning: propose at the peak rate, accept with
    // probability rate(t)/max_rate.
    for (;;) {
      t += rng.exponential(max_rate);
      const double rate =
          base_rate *
          (1.0 + amplitude * std::sin(kTwoPi * t /
                                      config.diurnal_period_cycles));
      if (rng.uniform() * max_rate <= rate) break;
    }
    g = t - last_accepted;
    last_accepted = t;
  }
  return gaps;
}

}  // namespace

std::string to_string(ArrivalKind kind) {
  switch (kind) {
    case ArrivalKind::kPoisson: return "poisson";
    case ArrivalKind::kBursty: return "bursty";
    case ArrivalKind::kDiurnal: return "diurnal";
  }
  return "?";
}

ArrivalKind arrival_kind_from_string(const std::string& name) {
  if (name == "bursty") return ArrivalKind::kBursty;
  if (name == "diurnal") return ArrivalKind::kDiurnal;
  return ArrivalKind::kPoisson;
}

std::vector<double> interarrival_gaps(const ArrivalConfig& config, Rng& rng,
                                      std::int64_t count) {
  DRIFT_CHECK(count >= 0, "arrival count must be non-negative");
  DRIFT_CHECK(config.mean_interarrival_cycles > 0.0,
              "mean interarrival gap must be positive");
  switch (config.kind) {
    case ArrivalKind::kPoisson: return poisson_gaps(config, rng, count);
    case ArrivalKind::kBursty: return bursty_gaps(config, rng, count);
    case ArrivalKind::kDiurnal: return diurnal_gaps(config, rng, count);
  }
  return {};
}

std::vector<std::int64_t> arrival_cycles(const ArrivalConfig& config, Rng& rng,
                                         std::int64_t count) {
  const auto gaps = interarrival_gaps(config, rng, count);
  std::vector<std::int64_t> cycles(gaps.size());
  double t = 0.0;
  for (std::size_t i = 0; i < gaps.size(); ++i) {
    t += gaps[i];
    cycles[i] = std::llround(t);
  }
  return cycles;
}

}  // namespace drift::serve
