#include "serve/batcher.hpp"

#include "util/assert.hpp"

namespace drift::serve {

void AdmissionQueue::push(const QueuedRequest& request) {
  DRIFT_CHECK(queue_.empty() || queue_.back().arrival <= request.arrival,
              "admission queue requires arrival-ordered pushes");
  queue_.push_back(request);
}

std::vector<QueuedRequest> AdmissionQueue::pop_batch(std::int64_t now,
                                                     std::int64_t max_batch) {
  DRIFT_CHECK(!queue_.empty(), "pop_batch on an empty queue");
  DRIFT_CHECK(max_batch >= 1, "batch cap must be at least 1");
  const int tenant = queue_.front().tenant;
  std::vector<QueuedRequest> batch;
  std::deque<QueuedRequest> rest;
  while (!queue_.empty()) {
    QueuedRequest r = queue_.front();
    queue_.pop_front();
    const bool eligible = r.tenant == tenant && r.arrival <= now &&
                          static_cast<std::int64_t>(batch.size()) < max_batch;
    if (eligible) {
      batch.push_back(r);
    } else {
      rest.push_back(r);
    }
    if (r.arrival > now ||
        static_cast<std::int64_t>(batch.size()) == max_batch) {
      break;
    }
  }
  while (!queue_.empty()) {
    rest.push_back(queue_.front());
    queue_.pop_front();
  }
  queue_ = std::move(rest);
  return batch;
}

}  // namespace drift::serve
