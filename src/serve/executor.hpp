// Batch executor: turns an admitted batch into one accelerator run.
//
// Each tenant has a canonical precision mix (the offline build_mixes
// result, which fixes the weight-channel pattern — weights are shared
// across a tenant's requests) and, when unique_mix_per_request is set,
// every request carries its own activation-row pattern sampled from the
// tenant's distribution profile.  A batch concatenates the member
// requests' row patterns in admission order into one shared layer, so
// the Eq. 5/6 class counts — and therefore the Eq. 8 (r, c) split the
// scheduler picks — are a function of batch *composition*, not just
// size.  With batch size 1 the packed layer degenerates to the request
// alone, which is what the batch-vs-serial differential test pins.
//
// Caller owns the pool (NNPACK style): the constructor takes the
// ThreadPool used to precompute per-request patterns; the fixed chunk
// decomposition plus disjoint output slots keep the result bit-identical
// at any thread count.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "accel/accelerator.hpp"
#include "accel/drift_accel.hpp"
#include "nn/precision_mix.hpp"
#include "serve/tenant.hpp"
#include "util/thread_pool.hpp"

namespace drift::serve {

/// Which accelerator + mix algorithm serves the traffic.
struct ExecConfig {
  accel::AccelConfig hw{};
  nn::MixAlgorithm algo = nn::MixAlgorithm::kDrift;
  core::SelectorConfig drift_selector{};
  core::DrqConfig drq_config{};
  bool drift_dynamic_weights = true;
  bool auto_threshold = true;
  double noise_budget = 0.05;
  accel::SchedulerPolicy drift_policy = accel::SchedulerPolicy::kGreedy;
};

/// One batch's accelerator outcome.
struct BatchResult {
  std::int64_t cycles = 0;
  double energy_pj = 0.0;
  accel::RunResult run;
};

class BatchExecutor {
 public:
  /// Precomputes every tenant's canonical mix and (when
  /// unique_mix_per_request) each request's activation patterns on
  /// `pool`.
  BatchExecutor(ExecConfig config, std::vector<TenantSpec> tenants,
                util::ThreadPool& pool);

  const ExecConfig& config() const { return config_; }
  const std::vector<TenantSpec>& tenants() const { return tenants_; }

  /// The tenant's workload with layer names prefixed by the tenant name
  /// (keeps obs layer records separate between tenants).
  const nn::WorkloadSpec& tenant_spec(int tenant) const;

  /// The mix request `local` of `tenant` runs when served alone.  The
  /// differential test recomputes this independently and pins the
  /// batch=1 serving results against the offline pipeline.
  const std::vector<nn::LayerMix>& request_mixes(int tenant,
                                                 std::int64_t local) const;

  /// The MixConfig a tenant's mixes are built with (algo + seed wired
  /// from the executor / tenant config) — exposed so tests can
  /// reproduce canonical mixes via nn::build_mixes.
  nn::MixConfig mix_config(const TenantSpec& tenant) const;

  /// Runs one batch (same-tenant request indices, admission order):
  /// packs the member mixes into shared layers and runs the configured
  /// accelerator model on the batched workload.
  BatchResult execute(int tenant, const std::vector<std::int64_t>& locals);

  /// Service time of a canonical single-request batch — the calibration
  /// point drivers use to convert a target utilization into an arrival
  /// rate.
  BatchResult execute_canonical(int tenant);

 private:
  struct TenantState {
    nn::WorkloadSpec spec;                       ///< prefixed layer names
    std::vector<nn::LayerMix> canonical;
    std::vector<std::vector<bool>> col_patterns;  ///< per layer
    /// Per request, per layer activation mixes (empty when requests
    /// share the canonical mix).
    std::vector<std::vector<nn::LayerMix>> per_request;
  };

  const TenantState& state(int tenant) const;

  ExecConfig config_;
  std::vector<TenantSpec> tenants_;
  std::vector<TenantState> states_;
  std::unique_ptr<accel::Accelerator> model_;
};

/// Stream id offset separating per-request activation sampling from the
/// canonical per-layer streams build_mixes consumes (streams 0..L-1 on
/// the same base rng).
inline constexpr std::uint64_t kRequestStreamBase = 1ull << 32;

}  // namespace drift::serve
