#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/assert.hpp"

namespace drift {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  DRIFT_CHECK(!header_.empty(), "table header must not be empty");
}

void TextTable::add_row(std::vector<std::string> cells) {
  DRIFT_CHECK(cells.size() == header_.size(), "table row width mismatch");
  rows_.push_back(std::move(cells));
}

void TextTable::add_separator() { rows_.emplace_back(); }

std::size_t TextTable::num_rows() const {
  std::size_t n = 0;
  for (const auto& r : rows_) {
    if (!r.empty()) ++n;
  }
  return n;
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto hline = [&] {
    std::string s = "+";
    for (std::size_t w : widths) s += std::string(w + 2, '-') + "+";
    s += '\n';
    return s;
  };
  auto emit_row = [&](const std::vector<std::string>& row) {
    std::string s = "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      s += ' ' + row[c] + std::string(widths[c] - row[c].size(), ' ') + " |";
    }
    s += '\n';
    return s;
  };

  std::string out = hline() + emit_row(header_) + hline();
  for (const auto& row : rows_) {
    out += row.empty() ? hline() : emit_row(row);
  }
  out += hline();
  return out;
}

std::string TextTable::fmt(double value, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << value;
  return os.str();
}

std::string TextTable::pct(double fraction, int digits) {
  return fmt(fraction * 100.0, digits) + "%";
}

std::string TextTable::ratio(double value, int digits) {
  return fmt(value, digits) + "x";
}

}  // namespace drift
