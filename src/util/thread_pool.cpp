#include "util/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"

namespace drift::util {

namespace {
// True while this thread is executing chunks of some parallel_for (as a
// pool worker or as the submitting caller).  Nested submissions from
// such a thread run inline instead of re-entering the pool.
thread_local bool tl_in_parallel_region = false;
}  // namespace

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool;
  return pool;
}

int ThreadPool::default_num_threads() {
  if (const char* env = std::getenv("DRIFT_NUM_THREADS")) {
    char* end = nullptr;
    const long n = std::strtol(env, &end, 10);
    if (end != env && n >= 1 && n <= 1024) return static_cast<int>(n);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int num_threads) {
  start_workers(num_threads > 0 ? num_threads : default_num_threads());
}

ThreadPool::~ThreadPool() { stop_workers(); }

void ThreadPool::start_workers(int n) {
  num_threads_ = n >= 1 ? n : 1;
  // The submitting thread participates, so n threads means n-1 workers.
  workers_.reserve(static_cast<std::size_t>(num_threads_ - 1));
  for (int i = 0; i < num_threads_ - 1; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void ThreadPool::stop_workers() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : workers_) t.join();
  workers_.clear();
  shutdown_ = false;
}

void ThreadPool::resize(int n) {
  stop_workers();
  start_workers(n > 0 ? n : default_num_threads());
}

void ThreadPool::run_chunks(Job& job) {
  DRIFT_OBS_SPAN("pool.chunks");  // per-thread busy window of this job
  tl_in_parallel_region = true;
  for (;;) {
    const std::int64_t c = job.next_chunk.fetch_add(1);
    if (c >= job.num_chunks) break;
    DRIFT_OBS_COUNT("thread_pool.chunks", 1);
    bool cancelled;
    {
      std::lock_guard<std::mutex> lock(job.error_mutex);
      cancelled = static_cast<bool>(job.first_error);
    }
    if (!cancelled) {
      const std::int64_t lo = job.begin + c * job.grain;
      const std::int64_t hi = std::min(lo + job.grain, job.end);
      try {
        (*job.fn)(lo, hi);
      } catch (...) {
        std::lock_guard<std::mutex> lock(job.error_mutex);
        if (!job.first_error) job.first_error = std::current_exception();
      }
    }
    job.chunks_done.fetch_add(1);
  }
  tl_in_parallel_region = false;
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  std::uint64_t seen_epoch = 0;
  for (;;) {
    work_cv_.wait(lock, [&] {
      return shutdown_ ||
             (job_ != nullptr && job_epoch_ != seen_epoch &&
              job_->next_chunk.load() < job_->num_chunks);
    });
    if (shutdown_) return;
    Job* job = job_;
    seen_epoch = job_epoch_;
    ++active_workers_;
    lock.unlock();
#ifndef DRIFT_OBS_OFF
    // Wake latency from job publication to first chunk claim.  Wall
    // clock, so deliberately outside the golden-test metric prefixes.
    DRIFT_OBS_HISTOGRAM("thread_pool.queue_wait_us",
                        obs::trace_now_us() - job->publish_us,
                        1, 10, 100, 1000, 10000);
#endif
    run_chunks(*job);
    lock.lock();
    --active_workers_;
    done_cv_.notify_all();
  }
}

void ThreadPool::parallel_for(
    std::int64_t begin, std::int64_t end, std::int64_t grain,
    const std::function<void(std::int64_t, std::int64_t)>& fn) {
  DRIFT_CHECK(grain > 0, "parallel_for grain must be positive");
  if (end <= begin) return;

  Job job;
  job.begin = begin;
  job.end = end;
  job.grain = grain;
  job.num_chunks = (end - begin + grain - 1) / grain;
  job.fn = &fn;

  // Inline path: a single chunk, a single-thread pool, or a nested call
  // from inside a running parallel region.  Chunks execute in order on
  // this thread; the decomposition (and therefore the result) is the
  // same as the threaded path.
  if (job.num_chunks == 1 || num_threads_ == 1 || tl_in_parallel_region) {
    DRIFT_OBS_COUNT("thread_pool.inline_jobs", 1);
    const bool was_in_region = tl_in_parallel_region;
    tl_in_parallel_region = true;
    std::exception_ptr error;
    for (std::int64_t c = 0; c < job.num_chunks && !error; ++c) {
      const std::int64_t lo = begin + c * grain;
      const std::int64_t hi = std::min(lo + grain, end);
      try {
        fn(lo, hi);
      } catch (...) {
        error = std::current_exception();
      }
    }
    tl_in_parallel_region = was_in_region;
    if (error) std::rethrow_exception(error);
    return;
  }

  // One job at a time; concurrent submitters from distinct threads queue
  // here rather than interleaving chunk counters.
  DRIFT_OBS_COUNT("thread_pool.jobs", 1);
  std::lock_guard<std::mutex> submit_guard(submit_mutex_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
#ifndef DRIFT_OBS_OFF
    job.publish_us = obs::trace_now_us();
#endif
    job_ = &job;
    ++job_epoch_;
  }
  work_cv_.notify_all();

  run_chunks(job);  // the caller participates

  std::unique_lock<std::mutex> lock(mutex_);
  job_ = nullptr;
  done_cv_.wait(lock, [&] {
    return job.chunks_done.load() == job.num_chunks && active_workers_ == 0;
  });
  lock.unlock();

  if (job.first_error) std::rethrow_exception(job.first_error);
}

void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const std::function<void(std::int64_t, std::int64_t)>& fn) {
  ThreadPool::instance().parallel_for(begin, end, grain, fn);
}

}  // namespace drift::util
