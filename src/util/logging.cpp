#include "util/logging.hpp"

#include <atomic>

namespace drift::log {
namespace {

std::atomic<Level> g_threshold{Level::kWarn};

const char* level_name(Level level) {
  switch (level) {
    case Level::kDebug: return "DEBUG";
    case Level::kInfo: return "INFO";
    case Level::kWarn: return "WARN";
    case Level::kError: return "ERROR";
    case Level::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

// drift-lint: allow(atomic-order) — the threshold is an independent
// flag; no other memory is published through it, so relaxed is sound.
Level threshold() { return g_threshold.load(std::memory_order_relaxed); }

void set_threshold(Level level) {
  // drift-lint: allow(atomic-order) — same independent-flag argument
  // as threshold(): no ordering with any other location is required.
  g_threshold.store(level, std::memory_order_relaxed);
}

Message::Message(Level level, const char* tag)
    : enabled_(level >= threshold() && level != Level::kOff), level_(level) {
  if (enabled_) stream_ << "[" << level_name(level_) << "] [" << tag << "] ";
}

Message::~Message() {
  if (enabled_) {
    stream_ << '\n';
    // drift-lint: allow(logging) — this is the logger's terminal sink;
    // every other module must reach stderr through this line.
    std::cerr << stream_.str();
  }
}

}  // namespace drift::log
