// Chunk-based thread pool for data-parallel loops.
//
// Drift's hot paths are embarrassingly parallel along sub-tensor
// boundaries (rows of a GEMM operand, regions of a feature map), so a
// work-stealing scheduler would be overkill: a fixed decomposition into
// chunks of `grain` iterations, claimed by workers off a shared atomic
// counter, keeps the implementation tiny and — crucially — makes results
// *bit-identical at any thread count*: chunk boundaries depend only on
// (begin, end, grain), never on how many threads happen to execute them,
// and every chunk writes a disjoint slice of the output.
//
// Thread count: DRIFT_NUM_THREADS env var if set (and >= 1), otherwise
// std::thread::hardware_concurrency().  Tests and benchmarks override it
// at runtime with ThreadPool::instance().resize(n).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace drift::util {

class ThreadPool {
 public:
  /// The process-wide pool used by drift::util::parallel_for.
  static ThreadPool& instance();

  /// `num_threads` <= 0 means default_num_threads().
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Joins the current workers and restarts the pool with `n` threads
  /// (<= 0 means default_num_threads()).  Not safe to call concurrently
  /// with parallel_for.
  void resize(int n);

  /// DRIFT_NUM_THREADS env override, else hardware_concurrency().
  static int default_num_threads();

  /// Runs fn(chunk_begin, chunk_end) for every chunk of the fixed
  /// decomposition of [begin, end) into pieces of `grain` iterations
  /// (the last chunk may be short).  Blocks until all chunks are done.
  /// The calling thread participates.  The first exception thrown by
  /// any chunk is rethrown here (remaining unclaimed chunks are
  /// cancelled).  Calls from inside a worker run the chunks inline on
  /// the calling thread, so nested submission cannot deadlock.
  void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                    const std::function<void(std::int64_t, std::int64_t)>& fn);

 private:
  struct Job {
    std::int64_t begin = 0;
    std::int64_t end = 0;
    std::int64_t grain = 1;
    std::int64_t num_chunks = 0;
    std::atomic<std::int64_t> next_chunk{0};
    std::atomic<std::int64_t> chunks_done{0};
    const std::function<void(std::int64_t, std::int64_t)>* fn = nullptr;
    std::int64_t publish_us = 0;  ///< obs-only: submit time for the
                                  ///< queue-wait histogram
    std::mutex error_mutex;
    std::exception_ptr first_error;
  };

  void start_workers(int n);
  void stop_workers();
  void worker_loop();
  static void run_chunks(Job& job);

  int num_threads_ = 1;
  std::vector<std::thread> workers_;

  std::mutex submit_mutex_;           ///< serializes concurrent submitters
  std::mutex mutex_;
  std::condition_variable work_cv_;   ///< wakes workers when a job arrives
  std::condition_variable done_cv_;   ///< wakes the caller on completion
  Job* job_ = nullptr;                ///< currently published job (or null)
  std::uint64_t job_epoch_ = 0;       ///< bumped per job so workers re-check
  int active_workers_ = 0;            ///< workers currently inside run_chunks
  bool shutdown_ = false;
};

/// parallel_for on the global pool.  Serial fallback (plain loop over
/// one chunk) when the range fits in a single chunk or the pool has one
/// thread — same chunk boundaries, same results.
void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const std::function<void(std::int64_t, std::int64_t)>& fn);

}  // namespace drift::util
