// Console table formatting.
//
// Bench binaries mirror the paper's tables/figures as aligned text
// tables; this helper keeps the formatting in one place.
#pragma once

#include <string>
#include <vector>

namespace drift {

/// Builds an aligned, boxed text table.  Collect a header and rows,
/// then call `to_string` (column widths auto-fit to content).
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends a data row; width must match the header.
  void add_row(std::vector<std::string> cells);

  /// Appends a horizontal separator at this position.
  void add_separator();

  /// Renders the table.
  std::string to_string() const;

  std::size_t num_rows() const;

  /// Formats a double with `digits` digits after the decimal point.
  static std::string fmt(double value, int digits = 3);

  /// Formats a value as a percentage ("82.4%") from a 0..1 fraction.
  static std::string pct(double fraction, int digits = 1);

  /// Formats a speedup/ratio with a trailing '×' ("2.85x").
  static std::string ratio(double value, int digits = 2);

 private:
  std::vector<std::string> header_;
  // Separator rows are encoded as empty vectors.
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace drift
