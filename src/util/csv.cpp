#include "util/csv.hpp"

#include <sstream>

#include "util/assert.hpp"

namespace drift {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path), width_(header.size()) {
  DRIFT_CHECK(out_.good(), "failed to open CSV output file");
  DRIFT_CHECK(width_ > 0, "CSV header must not be empty");
  row(header);
  rows_ = 0;  // header does not count as a data row
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  DRIFT_CHECK(cells.size() == width_, "CSV row width mismatch");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
  ++rows_;
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (char c : cell) {
    if (c == '"') quoted += "\"\"";
    else quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace drift
