// Deterministic random number generation.
//
// Every stochastic component in the reproduction (synthetic weights,
// activation streams, Hutchinson probes) draws from a Rng seeded
// explicitly, so simulation results are bit-stable across runs.
#pragma once

#include <cmath>
#include <cstdint>
#include <random>

namespace drift {

/// Seeded pseudo-random source.  Thin wrapper over mt19937_64 with the
/// sampling helpers the codebase needs; copyable so call sites can fork
/// independent deterministic streams.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Standard normal sample.
  double normal() { return std::normal_distribution<double>(0.0, 1.0)(engine_); }

  /// Normal sample with the given mean and standard deviation.
  double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Zero-mean Laplace sample with scale (diversity) `b`.
  /// Inverse-CDF method: X = -b * sign(u) * ln(1 - 2|u|), u ~ U(-1/2, 1/2).
  double laplace(double b) {
    double u = uniform() - 0.5;
    double mag = -b * std::log(1.0 - 2.0 * std::abs(u));
    return u < 0 ? -mag : mag;
  }

  /// Exponential sample with rate `lambda` (mean 1/lambda).
  double exponential(double lambda) {
    return std::exponential_distribution<double>(lambda)(engine_);
  }

  /// Rademacher sample (+1 or -1 with equal probability), used by the
  /// Hutchinson Hessian-trace estimator.
  double rademacher() { return uniform() < 0.5 ? -1.0 : 1.0; }

  /// Bernoulli sample with success probability p.
  bool bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Derives an independent child generator; children with distinct
  /// `stream` ids produce decorrelated sequences.
  Rng fork(std::uint64_t stream) const {
    // SplitMix-style mix of the base seed and the stream id.
    std::uint64_t z = seed_mix_ + stream * 0x9E3779B97F4A7C15ull;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return Rng(z ^ (z >> 31));
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_mix_ = engine_();
};

}  // namespace drift
