// Minimal command-line flag parser for the tools and examples.
//
// Supports --flag=value, --flag value, and bare --flag (boolean true).
// Unknown flags are collected so callers can reject or ignore them.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace drift {

/// Parsed command line.
class Args {
 public:
  /// Parses argv (argv[0] skipped).  Positional arguments (tokens not
  /// starting with "--") are kept in order.
  static Args parse(int argc, const char* const* argv);

  /// Raw string lookup.
  std::optional<std::string> get(const std::string& flag) const;

  /// Typed lookups with defaults.
  std::string get_string(const std::string& flag,
                         const std::string& fallback) const;
  std::int64_t get_int(const std::string& flag, std::int64_t fallback) const;
  double get_double(const std::string& flag, double fallback) const;
  bool get_bool(const std::string& flag, bool fallback = false) const;

  bool has(const std::string& flag) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Flags that were provided but never queried — call after all gets
  /// to warn about typos.
  std::vector<std::string> unqueried() const;

 private:
  std::map<std::string, std::string> flags_;
  mutable std::map<std::string, bool> queried_;
  std::vector<std::string> positional_;
};

}  // namespace drift
