#include "util/args.hpp"

#include <cstdlib>

#include "util/assert.hpp"

namespace drift {

Args Args::parse(int argc, const char* const* argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      args.positional_.push_back(token);
      continue;
    }
    const std::string body = token.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      args.flags_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc &&
               std::string(argv[i + 1]).rfind("--", 0) != 0) {
      args.flags_[body] = argv[++i];
    } else {
      args.flags_[body] = "true";
    }
  }
  return args;
}

std::optional<std::string> Args::get(const std::string& flag) const {
  queried_[flag] = true;
  const auto it = flags_.find(flag);
  if (it == flags_.end()) return std::nullopt;
  return it->second;
}

std::string Args::get_string(const std::string& flag,
                             const std::string& fallback) const {
  return get(flag).value_or(fallback);
}

std::int64_t Args::get_int(const std::string& flag,
                           std::int64_t fallback) const {
  const auto v = get(flag);
  if (!v) return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v->c_str(), &end, 10);
  DRIFT_CHECK(end != nullptr && *end == '\0',
              "flag value is not an integer");
  return parsed;
}

double Args::get_double(const std::string& flag, double fallback) const {
  const auto v = get(flag);
  if (!v) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v->c_str(), &end);
  DRIFT_CHECK(end != nullptr && *end == '\0', "flag value is not a number");
  return parsed;
}

bool Args::get_bool(const std::string& flag, bool fallback) const {
  const auto v = get(flag);
  if (!v) return fallback;
  return *v == "true" || *v == "1" || *v == "yes" || *v == "on";
}

bool Args::has(const std::string& flag) const {
  queried_[flag] = true;
  return flags_.count(flag) > 0;
}

std::vector<std::string> Args::unqueried() const {
  std::vector<std::string> out;
  for (const auto& [flag, _] : flags_) {
    if (!queried_.count(flag)) out.push_back(flag);
  }
  return out;
}

}  // namespace drift
