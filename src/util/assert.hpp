// Runtime check macros used throughout the Drift codebase.
//
// Simulation code is full of index arithmetic and configuration
// plumbing; silent out-of-range behaviour would corrupt results rather
// than crash, so checks stay enabled in every build type.  The cost is
// negligible next to the cycle-level simulation work.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace drift {

/// Error thrown by DRIFT_CHECK failures.  Derives from logic_error so
/// tests can assert on the exact failure class.
class check_error : public std::logic_error {
 public:
  explicit check_error(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "DRIFT_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw check_error(os.str());
}

}  // namespace detail
}  // namespace drift

/// Abort (via exception) when `cond` is false.  Usage:
///   DRIFT_CHECK(rows > 0, "array must be non-empty");
#define DRIFT_CHECK(cond, ...)                                        \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::drift::detail::check_failed(#cond, __FILE__, __LINE__,        \
                                    ::std::string{"" __VA_ARGS__});   \
    }                                                                 \
  } while (false)

/// Range check helper: index `i` must satisfy 0 <= i < n.
#define DRIFT_CHECK_INDEX(i, n)                                            \
  DRIFT_CHECK(static_cast<long long>(i) >= 0 &&                            \
                  static_cast<long long>(i) < static_cast<long long>(n),   \
              "index out of range")
