// Runtime check macros used throughout the Drift codebase.
//
// Simulation code is full of index arithmetic and configuration
// plumbing; silent out-of-range behaviour would corrupt results rather
// than crash, so checks stay enabled in every build type.  The cost is
// negligible next to the cycle-level simulation work.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace drift {

/// Error thrown by DRIFT_CHECK failures.  Derives from logic_error so
/// tests can assert on the exact failure class.
class check_error : public std::logic_error {
 public:
  explicit check_error(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "DRIFT_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw check_error(os.str());
}

/// Renders a check operand for the failure message; types without an
/// ostream inserter degrade to a placeholder instead of failing to
/// compile.
template <typename T>
std::string format_value(const T& value) {
  if constexpr (requires(std::ostringstream& os, const T& v) { os << v; }) {
    std::ostringstream os;
    os << value;
    return os.str();
  } else {
    return "<unprintable>";
  }
}

[[noreturn]] inline void check_op_failed(
    const char* macro, const char* a_expr, const char* op, const char* b_expr,
    const char* file, int line, const std::string& a_value,
    const std::string& b_value, const std::string& msg) {
  std::ostringstream os;
  os << macro << " failed: " << a_expr << ' ' << op << ' ' << b_expr << " ("
     << a_value << " vs " << b_value << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw check_error(os.str());
}

}  // namespace detail
}  // namespace drift

/// Abort (via exception) when `cond` is false.  Usage:
///   DRIFT_CHECK(rows > 0, "array must be non-empty");
#define DRIFT_CHECK(cond, ...)                                        \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::drift::detail::check_failed(#cond, __FILE__, __LINE__,        \
                                    ::std::string{"" __VA_ARGS__});   \
    }                                                                 \
  } while (false)

/// Range check helper: index `i` must satisfy 0 <= i < n.
#define DRIFT_CHECK_INDEX(i, n)                                            \
  DRIFT_CHECK(static_cast<long long>(i) >= 0 &&                            \
                  static_cast<long long>(i) < static_cast<long long>(n),   \
              "index out of range")

#define DRIFT_CHECK_OP_(macro, op, a, b, ...)                           \
  do {                                                                  \
    const auto& drift_check_a_ = (a);                                   \
    const auto& drift_check_b_ = (b);                                   \
    if (!(drift_check_a_ op drift_check_b_)) {                          \
      ::drift::detail::check_op_failed(                                 \
          macro, #a, #op, #b, __FILE__, __LINE__,                       \
          ::drift::detail::format_value(drift_check_a_),                \
          ::drift::detail::format_value(drift_check_b_),                \
          ::std::string{"" __VA_ARGS__});                               \
    }                                                                   \
  } while (false)

/// Equality check whose failure message shows both operand values:
///   DRIFT_CHECK_EQ(views.size(), map.num_subtensors(), "view mismatch");
///   -> "DRIFT_CHECK_EQ failed: ... (2 vs 3) ... — view mismatch"
#define DRIFT_CHECK_EQ(a, b, ...) \
  DRIFT_CHECK_OP_("DRIFT_CHECK_EQ", ==, a, b, __VA_ARGS__)

/// Ordering check (a <= b) whose failure message shows both values.
#define DRIFT_CHECK_LE(a, b, ...) \
  DRIFT_CHECK_OP_("DRIFT_CHECK_LE", <=, a, b, __VA_ARGS__)
