// Minimal leveled logger.
//
// The simulators run inside google-benchmark loops, so logging must be
// cheap when disabled: level filtering happens before any formatting.
#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace drift::log {

enum class Level { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold.  Messages below this level are discarded.
Level threshold();

/// Sets the global log threshold (e.g. Level::kOff inside benchmarks).
// drift-lint: allow(dead-api) — the runtime knob paired with
// threshold(); consumers silence logs inside measurement loops with it.
void set_threshold(Level level);

/// RAII message builder: accumulates into a stream, emits on destruction.
class Message {
 public:
  Message(Level level, const char* tag);
  Message(const Message&) = delete;
  Message& operator=(const Message&) = delete;
  ~Message();

  template <typename T>
  Message& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  Level level_;
  std::ostringstream stream_;
};

}  // namespace drift::log

#define DRIFT_LOG_DEBUG(tag) ::drift::log::Message(::drift::log::Level::kDebug, tag)
#define DRIFT_LOG_INFO(tag) ::drift::log::Message(::drift::log::Level::kInfo, tag)
#define DRIFT_LOG_WARN(tag) ::drift::log::Message(::drift::log::Level::kWarn, tag)
#define DRIFT_LOG_ERROR(tag) ::drift::log::Message(::drift::log::Level::kError, tag)
