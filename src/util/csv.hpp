// CSV emission for benchmark results.
//
// Every bench binary prints a human-readable table to stdout and can
// additionally persist rows as CSV so plots can be regenerated.
#pragma once

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace drift {

/// Append-only CSV writer.  Writes the header on construction and one
/// row per call to `row`.  All values are stringified by the caller via
/// the variadic overload, which accepts anything streamable.
class CsvWriter {
 public:
  /// Opens `path` for writing (truncates) and emits the header line.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Writes one row.  The number of cells must match the header width.
  void row(const std::vector<std::string>& cells);

  /// Convenience: stringifies each argument with operator<<.
  template <typename... Ts>
  void row_values(const Ts&... values) {
    std::vector<std::string> cells;
    cells.reserve(sizeof...(values));
    (cells.push_back(stringify(values)), ...);
    row(cells);
  }

  /// Number of data rows written so far.
  std::size_t rows_written() const { return rows_; }

 private:
  template <typename T>
  static std::string stringify(const T& value) {
    std::ostringstream os;
    os << value;
    return os.str();
  }
  static std::string stringify(const std::string& value) { return value; }
  static std::string stringify(const char* value) { return value; }

  static std::string escape(const std::string& cell);

  std::ofstream out_;
  std::size_t width_;
  std::size_t rows_ = 0;
};

}  // namespace drift
