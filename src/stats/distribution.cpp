#include "stats/distribution.hpp"

#include "util/assert.hpp"

namespace drift::stats {

Laplace::Laplace(double b) : b_(b) {
  DRIFT_CHECK(b > 0.0, "Laplace scale must be positive");
}

double Laplace::pdf(double x) const {
  return std::exp(-std::abs(x) / b_) / (2.0 * b_);
}

double Laplace::cdf(double x) const {
  if (x < 0.0) return 0.5 * std::exp(x / b_);
  return 1.0 - 0.5 * std::exp(-x / b_);
}

double Laplace::quantile(double p) const {
  DRIFT_CHECK(p > 0.0 && p < 1.0, "quantile needs p in (0,1)");
  if (p < 0.5) return b_ * std::log(2.0 * p);
  return -b_ * std::log(2.0 * (1.0 - p));
}

Exponential::Exponential(double lambda) : lambda_(lambda) {
  DRIFT_CHECK(lambda > 0.0, "Exponential rate must be positive");
}

double Exponential::pdf(double x) const {
  return x < 0.0 ? 0.0 : lambda_ * std::exp(-lambda_ * x);
}

double Exponential::cdf(double x) const {
  return x < 0.0 ? 0.0 : 1.0 - std::exp(-lambda_ * x);
}

double Exponential::quantile(double p) const {
  DRIFT_CHECK(p >= 0.0 && p < 1.0, "quantile needs p in [0,1)");
  return -std::log(1.0 - p) / lambda_;
}

Normal::Normal(double mean, double stddev) : mean_(mean), stddev_(stddev) {
  DRIFT_CHECK(stddev > 0.0, "Normal stddev must be positive");
}

double Normal::pdf(double x) const {
  const double z = (x - mean_) / stddev_;
  constexpr double kInvSqrt2Pi = 0.3989422804014327;
  return kInvSqrt2Pi / stddev_ * std::exp(-0.5 * z * z);
}

double Normal::cdf(double x) const {
  const double z = (x - mean_) / stddev_;
  return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

}  // namespace drift::stats
