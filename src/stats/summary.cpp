#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/assert.hpp"

namespace drift::stats {
namespace {

template <typename T>
SampleSummary summarize_impl(std::span<const T> values) {
  DRIFT_CHECK(!values.empty(), "cannot summarize an empty sample");
  SampleSummary s;
  s.count = values.size();
  s.min = std::numeric_limits<double>::infinity();
  s.max = -std::numeric_limits<double>::infinity();

  double mean = 0.0, m2 = 0.0, mean_abs = 0.0;
  std::size_t n = 0;
  for (T raw : values) {
    const double x = static_cast<double>(raw);
    ++n;
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
    s.max_abs = std::max(s.max_abs, std::abs(x));
    const double d = x - mean;
    mean += d / static_cast<double>(n);
    m2 += d * (x - mean);
    mean_abs += (std::abs(x) - mean_abs) / static_cast<double>(n);
  }
  s.mean = mean;
  s.mean_abs = mean_abs;
  s.variance = m2 / static_cast<double>(n);
  return s;
}

}  // namespace

SampleSummary summarize(std::span<const float> values) {
  return summarize_impl(values);
}

SampleSummary summarize(std::span<const double> values) {
  return summarize_impl(values);
}

}  // namespace drift::stats
