// Sample summary statistics.
//
// The Drift selector consumes exactly two statistics per sub-tensor —
// max(|Y|) and avg(|Y|) (Section 3.3) — computed by the pooling unit in
// hardware.  SampleSummary collects those plus the usual moments used
// by tests and the profiler.
#pragma once

#include <cstddef>
#include <span>

namespace drift::stats {

/// One-pass summary over a span of values.
struct SampleSummary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double max_abs = 0.0;   ///< max(|Y|): drives the RR criterion (Eq. 5)
  double mean = 0.0;
  double mean_abs = 0.0;  ///< avg(|Y|): MLE of the Laplace scale b
  double variance = 0.0;  ///< population variance

  /// Laplace-model variance 2*avg(|Y|)^2, the paper's proxy for var(Y).
  double laplace_variance() const { return 2.0 * mean_abs * mean_abs; }
};

/// Computes the summary in a single pass (Welford for the variance).
SampleSummary summarize(std::span<const float> values);
SampleSummary summarize(std::span<const double> values);

}  // namespace drift::stats
