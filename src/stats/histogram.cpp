#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/assert.hpp"

namespace drift::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bin_width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  DRIFT_CHECK(hi > lo, "histogram range must be non-empty");
  DRIFT_CHECK(bins > 0, "histogram needs at least one bin");
}

void Histogram::add(double value) {
  auto bin = static_cast<long long>(std::floor((value - lo_) / bin_width_));
  bin = std::clamp<long long>(bin, 0, static_cast<long long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

void Histogram::add_all(std::span<const float> values) {
  for (float v : values) add(v);
}

std::size_t Histogram::count(std::size_t bin) const {
  DRIFT_CHECK_INDEX(bin, counts_.size());
  return counts_[bin];
}

double Histogram::density(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(bin)) / static_cast<double>(total_);
}

double Histogram::bin_center(std::size_t bin) const {
  DRIFT_CHECK_INDEX(bin, counts_.size());
  return lo_ + (static_cast<double>(bin) + 0.5) * bin_width_;
}

std::string Histogram::ascii(std::size_t width) const {
  const std::size_t peak = *std::max_element(counts_.begin(), counts_.end());
  std::ostringstream os;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const std::size_t bar =
        peak == 0 ? 0 : counts_[b] * width / std::max<std::size_t>(peak, 1);
    os.width(9);
    os.precision(3);
    os << std::fixed << bin_center(b) << " |" << std::string(bar, '#') << '\n';
  }
  return os.str();
}

}  // namespace drift::stats
