// Distribution fitting and goodness-of-fit.
//
// Figure 1 of the paper claims sub-tensors "roughly conform to Laplace
// distributions with zero mean".  The fig1 bench reproduces that claim
// quantitatively: fit Laplace and Normal models to each sub-tensor by
// maximum likelihood and compare Kolmogorov–Smirnov statistics.
#pragma once

#include <functional>
#include <span>

#include "stats/distribution.hpp"

namespace drift::stats {

/// MLE fit of a zero-mean Laplace: b_hat = avg(|x|).
Laplace fit_laplace(std::span<const float> sample);

/// MLE fit of an Exponential to a non-negative sample: lambda = 1/mean.
// drift-lint: allow(dead-api) — Equation (4) companion of fit_laplace
// (|Laplace(b)| is Exponential(1/b)); part of the fig1 fitting suite.
Exponential fit_exponential(std::span<const float> sample);

/// MLE fit of a Normal (mean and stddev from sample moments).
Normal fit_normal(std::span<const float> sample);

/// One-sample Kolmogorov–Smirnov statistic: sup_x |F_n(x) - F(x)|.
/// `cdf` is the model CDF under test.  Smaller is a better fit.
double ks_statistic(std::span<const float> sample,
                    const std::function<double(double)>& cdf);

/// Average log-likelihood of the sample under a model pdf (higher is a
/// better fit); used to compare Laplace vs Normal models per sub-tensor.
double mean_log_likelihood(std::span<const float> sample,
                           const std::function<double(double)>& pdf);

/// Excess kurtosis of the sample.  Laplace has +3, Normal has 0 — a
/// cheap discriminator the profiler reports alongside KS.
double excess_kurtosis(std::span<const float> sample);

}  // namespace drift::stats
