// Fixed-bin histogram, used by the Figure 1 profiler to report
// sub-tensor value distributions in text form.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace drift::stats {

/// Equal-width histogram over [lo, hi]; values outside are clamped to
/// the edge bins so mass is never dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double value);
  void add_all(std::span<const float> values);

  std::size_t count(std::size_t bin) const;
  std::size_t total() const { return total_; }

  /// Fraction of mass in `bin`.
  double density(std::size_t bin) const;

  /// Center value of `bin`.
  double bin_center(std::size_t bin) const;

  /// Renders a vertical ASCII bar chart (one line per bin), `width`
  /// characters for the tallest bin.
  std::string ascii(std::size_t width = 50) const;

 private:
  double lo_, hi_, bin_width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace drift::stats
