// Analytic distribution objects.
//
// Section 2.1 of the paper rests on the observation that DNN
// sub-tensors are approximately zero-mean Laplace distributed, and
// Section 3.3 exploits the induced exponential distribution of |Y|.
// This module provides those distributions with pdf/cdf/quantile and
// moment queries so both the profiler (Figure 1) and the algorithm's
// derivations can be tested against closed forms.
#pragma once

#include <cmath>

namespace drift::stats {

/// Zero-mean Laplace distribution with scale `b` (pdf = exp(-|x|/b)/2b).
class Laplace {
 public:
  explicit Laplace(double b);

  double scale() const { return b_; }
  double mean() const { return 0.0; }
  /// var(Y) = 2 b^2.
  double variance() const { return 2.0 * b_ * b_; }
  /// E|Y| = b; the paper estimates b as avg(|Y|) (Section 3.3).
  double mean_abs() const { return b_; }

  double pdf(double x) const;
  double cdf(double x) const;
  /// Inverse CDF for p in (0, 1).
  double quantile(double p) const;

 private:
  double b_;
};

/// Exponential distribution with rate `lambda` (mean 1/lambda).  |Y| of
/// a zero-mean Laplace(b) is Exponential(1/b) — Equation (4).
class Exponential {
 public:
  explicit Exponential(double lambda);

  double rate() const { return lambda_; }
  double mean() const { return 1.0 / lambda_; }
  double variance() const { return 1.0 / (lambda_ * lambda_); }

  double pdf(double x) const;
  double cdf(double x) const;
  double quantile(double p) const;

 private:
  double lambda_;
};

/// Normal distribution (used as the *contrast* model when checking that
/// Laplace fits sub-tensors better, and for synthetic-weight noise).
class Normal {
 public:
  Normal(double mean, double stddev);

  double mean() const { return mean_; }
  double stddev() const { return stddev_; }
  double variance() const { return stddev_ * stddev_; }

  double pdf(double x) const;
  double cdf(double x) const;

 private:
  double mean_;
  double stddev_;
};

}  // namespace drift::stats
