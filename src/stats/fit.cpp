#include "stats/fit.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "stats/summary.hpp"
#include "util/assert.hpp"

namespace drift::stats {

Laplace fit_laplace(std::span<const float> sample) {
  const SampleSummary s = summarize(sample);
  DRIFT_CHECK(s.mean_abs > 0.0, "degenerate (all-zero) sample");
  return Laplace(s.mean_abs);
}

Exponential fit_exponential(std::span<const float> sample) {
  const SampleSummary s = summarize(sample);
  DRIFT_CHECK(s.min >= 0.0, "exponential fit needs a non-negative sample");
  DRIFT_CHECK(s.mean > 0.0, "degenerate (all-zero) sample");
  return Exponential(1.0 / s.mean);
}

Normal fit_normal(std::span<const float> sample) {
  const SampleSummary s = summarize(sample);
  DRIFT_CHECK(s.variance > 0.0, "degenerate (constant) sample");
  return Normal(s.mean, std::sqrt(s.variance));
}

double ks_statistic(std::span<const float> sample,
                    const std::function<double(double)>& cdf) {
  DRIFT_CHECK(!sample.empty(), "empty sample");
  std::vector<float> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  const double n = static_cast<double>(sorted.size());
  double d = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const double model = cdf(sorted[i]);
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    d = std::max({d, std::abs(model - lo), std::abs(model - hi)});
  }
  return d;
}

double mean_log_likelihood(std::span<const float> sample,
                           const std::function<double(double)>& pdf) {
  DRIFT_CHECK(!sample.empty(), "empty sample");
  double acc = 0.0;
  for (float x : sample) {
    const double p = pdf(x);
    acc += std::log(std::max(p, 1e-300));
  }
  return acc / static_cast<double>(sample.size());
}

double excess_kurtosis(std::span<const float> sample) {
  const SampleSummary s = summarize(sample);
  DRIFT_CHECK(s.variance > 0.0, "degenerate (constant) sample");
  double m4 = 0.0;
  for (float x : sample) {
    const double d = static_cast<double>(x) - s.mean;
    m4 += d * d * d * d;
  }
  m4 /= static_cast<double>(sample.size());
  return m4 / (s.variance * s.variance) - 3.0;
}

}  // namespace drift::stats
