#include "systolic/stall_model.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace drift::systolic {

std::int64_t pipeline_exit_cycles(std::span<const std::int64_t> row_costs,
                                  std::int64_t stages) {
  DRIFT_CHECK(stages > 0, "pipeline needs at least one stage");
  if (row_costs.empty()) return 0;
  for (std::int64_t k : row_costs) DRIFT_CHECK(k > 0, "row cost must be > 0");

  // depart[s]: departure time of the previous row from stage s.
  std::vector<std::int64_t> depart(static_cast<std::size_t>(stages), 0);
  for (std::int64_t k : row_costs) {
    std::int64_t prev_stage = 0;
    for (std::int64_t s = 0; s < stages; ++s) {
      const auto ss = static_cast<std::size_t>(s);
      const std::int64_t start = std::max(prev_stage, depart[ss]);
      depart[ss] = start + k;
      prev_stage = depart[ss];
    }
  }
  return depart[static_cast<std::size_t>(stages - 1)];
}

std::int64_t pipeline_stall_cycles(std::span<const std::int64_t> row_costs,
                                   std::int64_t stages) {
  if (row_costs.empty()) return 0;
  std::int64_t sum = 0, last = 0;
  for (std::int64_t k : row_costs) sum += k;
  last = row_costs[row_costs.size() - 1];
  // No-interference bound: all rows inject back-to-back (sum of costs
  // at stage 0) and the last row then drains the remaining stages at
  // its own pace.
  const std::int64_t bound = sum + (stages - 1) * last;
  return pipeline_exit_cycles(row_costs, stages) - bound;
}

std::vector<std::int64_t> costs_from_pattern(const std::vector<bool>& is_low,
                                             std::int64_t low_cost,
                                             std::int64_t high_cost) {
  DRIFT_CHECK(low_cost > 0 && high_cost > 0, "costs must be positive");
  std::vector<std::int64_t> costs(is_low.size());
  for (std::size_t i = 0; i < is_low.size(); ++i) {
    costs[i] = is_low[i] ? low_cost : high_cost;
  }
  return costs;
}

RunModelResult run_switching_exe_cycles(const std::vector<bool>& is_low,
                                        std::int64_t low_cost,
                                        std::int64_t high_cost,
                                        std::int64_t switch_penalty) {
  DRIFT_CHECK(low_cost > 0 && high_cost > 0, "costs must be positive");
  DRIFT_CHECK(switch_penalty >= 0, "negative switch penalty");
  RunModelResult r;
  if (is_low.empty()) return r;

  std::int64_t weighted = 0;
  std::int64_t rows = static_cast<std::int64_t>(is_low.size());
  for (std::size_t i = 0; i < is_low.size(); ++i) {
    weighted += is_low[i] ? low_cost : high_cost;
    if (i > 0 && is_low[i] != is_low[i - 1]) ++r.switches;
  }
  r.mixed_cycles = weighted + r.switches * switch_penalty;

  const std::int64_t all_high = rows * high_cost;
  if (r.mixed_cycles <= all_high) {
    r.exe_cycles = r.mixed_cycles;
  } else {
    r.exe_cycles = all_high;
    r.fell_back_to_high = true;
  }
  r.stall_cycles = r.exe_cycles - weighted;
  return r;
}

}  // namespace drift::systolic
