// Closed-form (tandem-queue) stall model for mixed-precision rows on a
// single systolic dataflow.
//
// The activation stream of a weight-stationary array is a pipeline of
// `stages` processing elements with FIFO ordering and no overtaking.
// A row whose precision needs k passes occupies every stage for k
// cycles.  Departures follow the standard tandem-queue recursion
//
//   depart[m][s] = max(depart[m][s-1], depart[m-1][s]) + k_m
//
// so a slow (high-precision) row throttles every faster row behind it
// until it drains — precisely the data-flow stall of Section 2.3.
// Uniform unit-cost streams reduce to M + stages - 1 cycles, matching
// the M + R + C - 2 execution term of Equation 7 (stages = R + C - 1).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace drift::systolic {

/// Exit time of the last row of a `stages`-deep pipeline fed with rows
/// of the given per-stage costs (cycles).  Row m enters as soon as
/// stage 0 frees up.  Returns the cycle at which the last row leaves
/// the last stage.
std::int64_t pipeline_exit_cycles(std::span<const std::int64_t> row_costs,
                                  std::int64_t stages);

/// Convenience: stall cycles relative to the no-interference bound
/// (sum of costs + pipeline fill).
std::int64_t pipeline_stall_cycles(std::span<const std::int64_t> row_costs,
                                   std::int64_t stages);

/// Builds the per-row cost vector from a low/high pattern: low rows
/// cost `low_cost`, high rows `high_cost`.
std::vector<std::int64_t> costs_from_pattern(const std::vector<bool>& is_low,
                                             std::int64_t low_cost,
                                             std::int64_t high_cost);

/// Run-switching model of a *variable-speed* systolic array (the DRQ
/// design): the whole array runs in one precision mode at a time, so
/// the row stream is processed as maximal same-precision runs, and a
/// mode switch requires draining the pipeline (`switch_penalty`
/// cycles, typically R + C - 2).  When the precision pattern is finely
/// interleaved the switch cost explodes, so a real controller falls
/// back to executing the whole stream in high-precision mode; the
/// model applies that per-stream min().  This is the mechanism behind
/// DRQ's near-zero gain on ViT-B (Section 5.3).
struct RunModelResult {
  std::int64_t exe_cycles = 0;     ///< chosen (post-fallback) cost
  std::int64_t mixed_cycles = 0;   ///< cost of the mixed schedule
  std::int64_t switches = 0;       ///< precision-mode transitions
  std::int64_t stall_cycles = 0;   ///< chosen cost minus the no-stall
                                   ///< weighted bound
  bool fell_back_to_high = false;  ///< uniform-high was cheaper
};

RunModelResult run_switching_exe_cycles(const std::vector<bool>& is_low,
                                        std::int64_t low_cost,
                                        std::int64_t high_cost,
                                        std::int64_t switch_penalty);

}  // namespace drift::systolic
