// Cycle-level weight-stationary systolic array simulation.
//
// This is the reproduction's analogue of the paper's "cycle-accurate
// simulator ... cross-verified with the RTL implementation": a
// register-level simulation of the WS dataflow that both *computes the
// GEMM* (verifying the dataflow wiring) and *counts cycles* (verifying
// the analytical model of Equation 7 and the stall closed forms in
// stall_model.hpp).
//
// Dataflow (one tile, array R x C):
//   - cycle 0..R-1: weights preload top-down, W[r][c] lands in PE(r,c).
//   - input row m's element a[m][r] is injected into PE(r, 0) at cycle
//     preload + inject(m) + r (skewed), then propagates right one PE
//     per cycle; psums accumulate down the column.
//   - output (m, c) exits PE(R-1, c) at preload + inject(m) + (R-1) + c.
// With unit-cost rows inject(m) = m, so a tile costs
//   R + (M-1) + (R-1) + (C-1) + 1 = R + M + R + C - 2  cycles,
// exactly T_pre + T_exe of Equation 7.
//
// Mixed-precision rows (the DRQ scenario) carry a per-row cost k_m (an
// 8-bit row on a 4-bit-rhythm array needs k=2 passes).  The array is a
// single pipeline: it throttles to the slowest row still in flight, so
//   inject(m) = inject(m-1) + max(k_i : i in the in-flight window),
// with the window spanning the R rows resident in the array.  This is
// the data-flow stall of Section 2.3 / Figure 2.
#pragma once

#include <cstdint>
#include <vector>

#include "core/analytical_model.hpp"
#include "tensor/tensor.hpp"

namespace drift::systolic {

/// Result of simulating one GEMM tile (or whole small GEMM).
struct SimResult {
  TensorI32 output;              ///< [M, N] products (int32 accumulate)
  std::int64_t cycles = 0;       ///< total, including preload and drain
  std::int64_t preload_cycles = 0;
  std::int64_t stall_cycles = 0; ///< cycles lost to precision throttling
};

/// Register-level simulation of one R x C weight-stationary pass over
/// A [M, K=R] and W [K=R, N=C].  `row_cost[m]` is the occupancy (in
/// cycles) of row m; pass all-ones for uniform precision.  K must equal
/// the array rows and N the array columns (callers tile larger GEMMs).
SimResult simulate_tile(const TensorI32& a, const TensorI32& w,
                        const std::vector<std::int64_t>& row_cost);

/// Full (small) GEMM on an R x C array with tiling along K and N, all
/// rows unit-cost.  Cross-checks ws_latency_cycles on arbitrary shapes.
SimResult simulate_gemm(const TensorI32& a, const TensorI32& w,
                        const core::ArrayDims& array);

}  // namespace drift::systolic
