#include "systolic/cycle_sim.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "systolic/stall_model.hpp"
#include "util/assert.hpp"

namespace drift::systolic {

SimResult simulate_tile(const TensorI32& a, const TensorI32& w,
                        const std::vector<std::int64_t>& row_cost) {
  DRIFT_CHECK_EQ(a.shape().rank(), 2, "tile activations must be rank-2");
  DRIFT_CHECK_EQ(w.shape().rank(), 2, "tile weights must be rank-2");
  const std::int64_t M = a.shape().dim(0);
  const std::int64_t R = a.shape().dim(1);  // array rows = K
  DRIFT_CHECK_EQ(w.shape().dim(0), R, "inner dimension mismatch");
  const std::int64_t C = w.shape().dim(1);  // array columns = N
  DRIFT_CHECK_EQ(static_cast<std::int64_t>(row_cost.size()), M,
                 "one cost per input row required");

  SimResult result;
  result.preload_cycles = R;

  // Functional pass: register-level equivalence of the WS dataflow is
  // a pure accumulation down each column; we compute it directly and
  // let the timing come from the pipeline recursion below.
  result.output = TensorI32(Shape{M, C}, 0);
  for (std::int64_t m = 0; m < M; ++m) {
    for (std::int64_t c = 0; c < C; ++c) {
      std::int64_t acc = 0;
      for (std::int64_t r = 0; r < R; ++r) {
        acc += static_cast<std::int64_t>(a(m, r)) *
               static_cast<std::int64_t>(w(r, c));
      }
      result.output(m, c) = static_cast<std::int32_t>(acc);
    }
  }

  // Timing: the activation wavefront traverses R + C - 1 PE stages
  // (down the column skew plus across the row); each row occupies each
  // stage for its cost.  Unit costs reduce to M + R + C - 2 execution
  // cycles — the T_exe of Equation 7.
  const std::int64_t stages = R + C - 1;
  const std::int64_t exe = pipeline_exit_cycles(row_cost, stages);
  result.cycles = result.preload_cycles + exe;

  // Stall accounting uses the same no-interference bound as
  // pipeline_stall_cycles: all rows inject back-to-back (sum of costs
  // at stage 0) and the last row drains the remaining stages at its
  // own pace.  Anything beyond that is throttling by a slower row
  // still in flight.  (An earlier version subtracted
  // `stages - row_cost.back()`, which mis-reported uniform non-unit
  // streams — e.g. all-cost-2 rows, which stall nothing — as stalled;
  // the differential suite against the stall model pinned this.)
  std::int64_t weighted = 0;
  for (std::int64_t k : row_cost) weighted += k;
  const std::int64_t no_stall = result.preload_cycles + weighted +
                                (stages - 1) * row_cost.back();
  result.stall_cycles = result.cycles - no_stall;

  DRIFT_OBS_COUNT("sim.tiles", 1);
  DRIFT_OBS_COUNT("sim.cycles", result.cycles);
  DRIFT_OBS_COUNT("sim.stall_cycles", result.stall_cycles);
  return result;
}

SimResult simulate_gemm(const TensorI32& a, const TensorI32& w,
                        const core::ArrayDims& array) {
  DRIFT_OBS_SPAN("sim.gemm");
  DRIFT_CHECK_EQ(a.shape().rank(), 2, "GEMM activations must be rank-2");
  DRIFT_CHECK_EQ(w.shape().rank(), 2, "GEMM weights must be rank-2");
  DRIFT_CHECK(array.rows > 0 && array.cols > 0, "empty array");
  const std::int64_t M = a.shape().dim(0);
  const std::int64_t K = a.shape().dim(1);
  DRIFT_CHECK_EQ(w.shape().dim(0), K, "inner dimension mismatch");
  const std::int64_t N = w.shape().dim(1);

  SimResult total;
  total.output = TensorI32(Shape{M, N}, 0);

  const std::vector<std::int64_t> unit_costs(static_cast<std::size_t>(M), 1);
  for (std::int64_t k0 = 0; k0 < K; k0 += array.rows) {
    const std::int64_t kt = std::min(array.rows, K - k0);
    for (std::int64_t n0 = 0; n0 < N; n0 += array.cols) {
      const std::int64_t nt = std::min(array.cols, N - n0);
      // Slice the tile operands.  Partial edge tiles still occupy the
      // full array (weights padded with zeros), matching the ceil()
      // tiling of the analytical model.
      TensorI32 at(Shape{M, array.rows}, 0);
      for (std::int64_t m = 0; m < M; ++m) {
        for (std::int64_t k = 0; k < kt; ++k) at(m, k) = a(m, k0 + k);
      }
      TensorI32 wt(Shape{array.rows, array.cols}, 0);
      for (std::int64_t k = 0; k < kt; ++k) {
        for (std::int64_t n = 0; n < nt; ++n) wt(k, n) = w(k0 + k, n0 + n);
      }
      const SimResult tile = simulate_tile(at, wt, unit_costs);
      total.cycles += tile.cycles;
      total.preload_cycles += tile.preload_cycles;
      total.stall_cycles += tile.stall_cycles;
      for (std::int64_t m = 0; m < M; ++m) {
        for (std::int64_t n = 0; n < nt; ++n) {
          total.output(m, n0 + n) += tile.output(m, n);
        }
      }
    }
  }
  DRIFT_OBS_COUNT("sim.gemms", 1);
  DRIFT_OBS_LAYER(rec, rec->compute_cycles += total.cycles;
                  rec->stall_cycles += total.stall_cycles);
  return total;
}

}  // namespace drift::systolic
