#include "core/layer_work.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace drift::core {

LayerWork make_layer_work(const PrecisionMap& act_map,
                          const PrecisionMap& weight_map, std::int64_t k) {
  DRIFT_CHECK(k > 0, "reduction dimension must be positive");
  LayerWork work;
  work.k = k;
  work.pa_high = act_map.config().hp.bits();
  work.pa_low = act_map.config().lp.bits();
  work.pw_high = weight_map.config().hp.bits();
  work.pw_low = weight_map.config().lp.bits();
  for (std::size_t i = 0; i < act_map.num_subtensors(); ++i) {
    (act_map.decision(i).use_low ? work.m_low : work.m_high) += 1;
  }
  for (std::size_t i = 0; i < weight_map.num_subtensors(); ++i) {
    (weight_map.decision(i).use_low ? work.n_low : work.n_high) += 1;
  }
  return work;
}

double ll_mac_fraction(const LayerWork& work) {
  const std::int64_t total = work.total_macs();
  if (total == 0) return 0.0;
  return static_cast<double>(work.m_low * work.k * work.n_low) /
         static_cast<double>(total);
}

double any_low_mac_fraction(const LayerWork& work) {
  const std::int64_t total = work.total_macs();
  if (total == 0) return 0.0;
  const std::int64_t hh = work.m_high * work.k * work.n_high;
  return 1.0 - static_cast<double>(hh) / static_cast<double>(total);
}

}  // namespace drift::core
