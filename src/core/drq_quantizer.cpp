#include "core/drq_quantizer.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace drift::core {

PrecisionMap DrqQuantizer::select(std::span<const float> values,
                                  const std::vector<SubTensorView>& views,
                                  const QuantParams& params) const {
  DRIFT_CHECK_EQ(params.bits, config_.hp,
                 "quant params precision must match DRQ hp");
  // Tensor-wide mean(|X|) reference for the sensitivity test.
  double sum_abs = 0.0;
  for (float v : values) sum_abs += std::abs(static_cast<double>(v));
  const double tensor_mean_abs =
      values.empty() ? 0.0 : sum_abs / static_cast<double>(values.size());

  const ConversionChoice truncate{0, config_.hp.bits() - config_.lp.bits()};
  std::vector<PrecisionDecision> decisions;
  std::vector<std::int64_t> sizes;
  decisions.reserve(views.size());
  sizes.reserve(views.size());
  for (const auto& view : views) {
    const SubTensorStats stats = compute_stats(view, values);
    const bool sensitive =
        stats.mean_abs >= config_.sensitivity * tensor_mean_abs;
    decisions.push_back(PrecisionDecision{!sensitive, truncate});
    sizes.push_back(view.size());
  }
  SelectorConfig sc;
  sc.hp = config_.hp;
  sc.lp = config_.lp;
  sc.density_threshold = 0.0;  // DRQ has no density criterion
  return PrecisionMap(std::move(decisions), std::move(sizes), sc);
}

std::vector<float> DrqQuantizer::apply(
    std::span<const float> values, const std::vector<SubTensorView>& views,
    const QuantParams& params, const PrecisionMap& map) const {
  DRIFT_CHECK_EQ(views.size(), map.num_subtensors(),
                 "view/map count mismatch");
  std::vector<float> out(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    out[i] = dequantize_value(quantize_value(values[i], params), params);
  }
  for (std::size_t v = 0; v < views.size(); ++v) {
    const PrecisionDecision& d = map.decision(v);
    if (!d.use_low) continue;
    std::span<float> out_span(out);
    views[v].transform<float>(out_span, [&](float& x) {
      const std::int32_t q = quantize_value(x, params);
      const std::int32_t q_lp = convert_to_low(q, config_.lp, d.choice);
      x = dequantize_low(q_lp, params, d.choice);
    });
  }
  return out;
}

}  // namespace drift::core
