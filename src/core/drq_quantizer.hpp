// DRQ baseline algorithm (Song et al., ISCA 2020), reproduced as the
// paper's algorithmic comparison point.
//
// DRQ partitions the input feature map into fixed-size regions and
// classifies each region as *sensitive* or *insensitive* by comparing
// its mean absolute value against a calibrated threshold.  Sensitive
// regions are computed at 8-bit; insensitive regions at 4-bit, where
// the 4-bit rendering keeps the high (magnitude) bits of the
// tensor-wide 8-bit code, i.e. the low bits are truncated (hc = 0,
// lc = hp - lp), always with the *tensor-wide* scaling factor.
//
// This is precisely the design decision that breaks down on
// transformer activations: a handful of outlier tokens inflate the
// tensor-wide Δ, so the fixed low-bit truncation zeroes out the
// (semantically loaded) small-magnitude tokens — the > 12 % accuracy
// collapse Figure 6 of the Drift paper reports.
#pragma once

#include <span>
#include <vector>

#include "core/precision.hpp"
#include "core/quantizer.hpp"
#include "core/selector.hpp"
#include "tensor/subtensor.hpp"

namespace drift::core {

/// DRQ configuration.
struct DrqConfig {
  Precision hp = kInt8;
  Precision lp = kInt4;
  /// A region is sensitive when its mean(|Y|) exceeds
  /// `sensitivity` * mean(|X|) of the whole tensor.  DRQ calibrates
  /// this on CNN validation data; 1.0 reproduces its published
  /// behaviour (large-activation regions stay 8-bit).
  double sensitivity = 1.0;
};

/// The DRQ region classifier + converter.  API mirrors
/// DynamicQuantizer so executors can swap algorithms.
class DrqQuantizer {
 public:
  explicit DrqQuantizer(DrqConfig config) : config_(config) {}

  const DrqConfig& config() const { return config_; }

  /// Classifies every region.  Insensitive regions are marked low with
  /// the fixed (hc = 0, lc = hp - lp) truncation choice.
  PrecisionMap select(std::span<const float> values,
                      const std::vector<SubTensorView>& views,
                      const QuantParams& params) const;

  /// Produces the dequantized tensor DRQ hardware computes with.
  std::vector<float> apply(std::span<const float> values,
                           const std::vector<SubTensorView>& views,
                           const QuantParams& params,
                           const PrecisionMap& map) const;

 private:
  DrqConfig config_;
};

}  // namespace drift::core
