// Representation capability metrics (Section 3.2, Equation 3).
//
// For an hp-bit sub-tensor re-rendered at lp bits by clipping hc high
// bits and lc low bits, with original scaling factor Δ:
//
//   representation range   RR = (2^(hp-1) - 1) / 2^hc * Δ
//   representation density RD = 2^lc * Δ
//
// RR bounds the largest magnitude the low rendering can express; RD is
// the quantization step (rounding error scale) of the low rendering.
#pragma once

#include "core/precision.hpp"
#include "core/quantizer.hpp"

namespace drift::core {

/// RR of the (hp, hc) rendering under scale Δ (Equation 3, top).
double representation_range(Precision hp, int hc, double delta);

/// RD of the lc-clipped rendering under scale Δ (Equation 3, bottom).
double representation_density(int lc, double delta);

/// Representation capability of one concrete conversion choice.
struct Capability {
  double range = 0.0;
  double density = 0.0;
};

/// Capability of converting an hp-bit tensor with scale Δ via `choice`.
Capability conversion_capability(Precision hp, const QuantParams& params,
                                 const ConversionChoice& choice);

}  // namespace drift::core
