#include "core/noise_budget.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "core/capability.hpp"
#include "util/assert.hpp"

namespace drift::core {

AutoThresholdResult select_auto_threshold(
    std::span<const SubTensorStats> stats,
    std::span<const std::int64_t> sizes, const QuantParams& params,
    const SelectorConfig& base, double budget, double noise_cap) {
  DRIFT_CHECK_EQ(stats.size(), sizes.size(), "stats/sizes mismatch");
  DRIFT_CHECK(budget >= 0.0, "budget must be non-negative");
  DRIFT_CHECK(noise_cap >= 0.0, "noise cap must be non-negative");

  AutoThresholdResult result;
  result.decisions.assign(stats.size(), PrecisionDecision{});

  // Probe every sub-tensor at δ = 0: range-feasibility and the chosen
  // (hc, lc) are δ-independent; only the density acceptance moves.
  SelectorConfig probe = base;
  probe.density_threshold = 0.0;

  struct Candidate {
    std::size_t index;
    double ratio;       ///< Eq. 6 ratio in code units
    double excess;      ///< extra noise vs INT8, absolute
  };
  std::vector<Candidate> feasible;
  double signal = 0.0;
  std::int64_t total_elements = 0;
  const double d2 = params.delta * params.delta;

  for (std::size_t i = 0; i < stats.size(); ++i) {
    DRIFT_CHECK(sizes[i] > 0, "sub-tensor size must be positive");
    total_elements += sizes[i];
    // The damage metric uses the true variance where available
    // (post-ReLU sub-tensors are not zero-mean; the Laplace proxy
    // would overstate how much variation there is to hide noise in).
    const double variance = stats[i].mean_sq > 0.0
                                ? stats[i].true_variance()
                                : stats[i].laplace_variance();
    signal += static_cast<double>(sizes[i]) * variance;
    const PrecisionDecision d = select_precision(stats[i], params, probe);
    result.decisions[i] = PrecisionDecision{false, d.choice};
    if (!d.use_low) continue;  // range-infeasible: must stay high
    const double steps = std::pow(2.0, 2 * d.choice.lc) - 1.0;
    const double excess_per_element = steps * d2 / 12.0;
    // Local density guard: do not wipe out a quiet sub-tensor even if
    // it is globally affordable (the Eq. 6 criterion at the implied δ).
    if (excess_per_element > noise_cap * variance) {
      continue;
    }
    const double excess =
        static_cast<double>(sizes[i]) * excess_per_element;
    const double rd = representation_density(d.choice.lc, params.delta);
    const double ratio =
        stats[i].laplace_variance() / (rd * params.delta);
    feasible.push_back(Candidate{i, ratio, excess});
  }

  // Zero-excess conversions (lc = 0: INT8-density-equivalent) are free
  // and always taken; the rest in decreasing Eq. 6 ratio order — the
  // inclusion order a decreasing δ produces.
  std::sort(feasible.begin(), feasible.end(),
            [](const Candidate& a, const Candidate& b) {
              const bool a_free = a.excess == 0.0;
              const bool b_free = b.excess == 0.0;
              if (a_free != b_free) return a_free;
              return a.ratio > b.ratio;
            });

  const double allowance = budget * signal;
  double spent = 0.0;
  std::int64_t low_elements = 0;
  double cut_ratio = std::numeric_limits<double>::infinity();
  for (const Candidate& cand : feasible) {
    if (spent + cand.excess > allowance) break;
    spent += cand.excess;
    low_elements += sizes[cand.index];
    result.decisions[cand.index].use_low = true;
    // The implied δ is the smallest Eq. 6 ratio among *noisy* accepted
    // conversions (free lc = 0 ones sit below any threshold).
    if (cand.excess > 0.0) cut_ratio = std::min(cut_ratio, cand.ratio);
  }

  result.delta_threshold = std::isfinite(cut_ratio) ? cut_ratio : 0.0;
  result.excess_relative_mse = signal > 0.0 ? spent / signal : 0.0;
  result.low_fraction_by_elements =
      total_elements > 0
          ? static_cast<double>(low_elements) /
                static_cast<double>(total_elements)
          : 0.0;
  return result;
}

PrecisionMap auto_threshold_map(std::span<const SubTensorStats> stats,
                                std::span<const std::int64_t> sizes,
                                const QuantParams& params,
                                const SelectorConfig& base, double budget,
                                double noise_cap) {
  AutoThresholdResult r =
      select_auto_threshold(stats, sizes, params, base, budget, noise_cap);
  std::vector<std::int64_t> size_vec(sizes.begin(), sizes.end());
  return PrecisionMap(std::move(r.decisions), std::move(size_vec), base);
}

}  // namespace drift::core
