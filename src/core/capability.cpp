#include "core/capability.hpp"

#include "util/assert.hpp"

namespace drift::core {

double representation_range(Precision hp, int hc, double delta) {
  DRIFT_CHECK(hc >= 0 && hc < hp.bits(), "invalid high-end clip");
  return static_cast<double>(hp.max_level()) /
         static_cast<double>(std::int64_t{1} << hc) * delta;
}

double representation_density(int lc, double delta) {
  DRIFT_CHECK(lc >= 0, "invalid low-end clip");
  return static_cast<double>(std::int64_t{1} << lc) * delta;
}

Capability conversion_capability(Precision hp, const QuantParams& params,
                                 const ConversionChoice& choice) {
  return Capability{
      representation_range(hp, choice.hc, params.delta),
      representation_density(choice.lc, params.delta),
  };
}

}  // namespace drift::core
