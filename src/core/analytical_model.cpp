#include "core/analytical_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace drift::core {
namespace {

std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

std::int64_t axis_tiles(std::int64_t extent, double bits,
                        std::int64_t span_bits) {
  DRIFT_CHECK(bits > 0.0, "operand width must be positive");
  DRIFT_CHECK(span_bits > 0, "array axis must be positive");
  std::int64_t tiles;
  if (bits == std::floor(bits)) {
    // Integral widths stay in exact integer arithmetic (the scheduler
    // and cycle model depend on these ceilings being exact).
    tiles = ceil_div(static_cast<std::int64_t>(bits) * extent, span_bits);
  } else {
    tiles = static_cast<std::int64_t>(std::ceil(
        bits * static_cast<double>(extent) / static_cast<double>(span_bits)));
  }
  return std::max<std::int64_t>(tiles, 1);
}

}  // namespace

std::int64_t ws_k_tiles(std::int64_t k, double pa_bits, std::int64_t rows) {
  return axis_tiles(k, pa_bits, 4 * rows);
}

std::int64_t ws_n_tiles(std::int64_t n, double pw_bits, std::int64_t cols) {
  return axis_tiles(n, pw_bits, 16 * cols);
}

std::int64_t ws_tile_repetitions(const GemmDims& gemm, int pa, int pw,
                                 const ArrayDims& array) {
  DRIFT_CHECK(pa > 0 && pw > 0, "precisions must be positive");
  if (gemm.empty()) return 0;
  if (array.rows <= 0 || array.cols <= 0) return kInfeasibleLatency;
  return ws_k_tiles(gemm.K, pa, array.rows) *
         ws_n_tiles(gemm.N, pw, array.cols);
}

std::int64_t ws_latency_cycles(const GemmDims& gemm, int pa, int pw,
                               const ArrayDims& array) {
  if (gemm.empty()) return 0;
  if (array.rows <= 0 || array.cols <= 0) return kInfeasibleLatency;
  const std::int64_t reps = ws_tile_repetitions(gemm, pa, pw, array);
  const std::int64_t t_pre = array.rows;
  const std::int64_t t_exe = gemm.M + array.rows + array.cols - 2;
  return (t_pre + t_exe) * reps;
}

}  // namespace drift::core
