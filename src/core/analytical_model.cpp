#include "core/analytical_model.hpp"

#include "util/assert.hpp"

namespace drift::core {
namespace {

std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

}  // namespace

std::int64_t ws_tile_repetitions(const GemmDims& gemm, int pa, int pw,
                                 const ArrayDims& array) {
  DRIFT_CHECK(pa > 0 && pw > 0, "precisions must be positive");
  if (gemm.empty()) return 0;
  if (array.rows <= 0 || array.cols <= 0) return kInfeasibleLatency;
  const std::int64_t k_tiles = ceil_div(static_cast<std::int64_t>(pa) * gemm.K,
                                        4 * array.rows);
  const std::int64_t n_tiles = ceil_div(static_cast<std::int64_t>(pw) * gemm.N,
                                        16 * array.cols);
  return k_tiles * n_tiles;
}

std::int64_t ws_latency_cycles(const GemmDims& gemm, int pa, int pw,
                               const ArrayDims& array) {
  if (gemm.empty()) return 0;
  if (array.rows <= 0 || array.cols <= 0) return kInfeasibleLatency;
  const std::int64_t reps = ws_tile_repetitions(gemm, pa, pw, array);
  const std::int64_t t_pre = array.rows;
  const std::int64_t t_exe = gemm.M + array.rows + array.cols - 2;
  return (t_pre + t_exe) * reps;
}

}  // namespace drift::core
