#include "core/selector.hpp"

#include <algorithm>
#include <cmath>

#include "core/capability.hpp"
// drift-lint: allow(intrinsic) — the selector's pooling-unit reductions
// are a dispatch hot loop; only the table entry points are used here.
#include "nn/simd/kernel_dispatch.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"
#include "util/thread_pool.hpp"

namespace drift::core {

SubTensorStats compute_stats(const SubTensorView& view,
                             std::span<const float> buffer) {
  DRIFT_CHECK(view.size() > 0, "empty sub-tensor view");
  // Each contiguous run reduces through the dispatched 4-lane kernel
  // (bitwise backend-invariant); runs combine sequentially in view
  // order, so the whole reduction is backend-invariant too.  max(|Y|)
  // stays exact; the sums re-associate relative to a plain sequential
  // loop by a bounded amount (tests/prop/prop_selector.cpp pins the
  // drift against the Kahan reference).
  const auto& kt = nn::simd::active();
  double max_abs = 0.0, sum_abs = 0.0, sum = 0.0, sum_sq = 0.0;
  for (const Run& r : view.runs()) {
    const nn::simd::RawStats rs =
        kt.reduce_stats(buffer.data() + r.offset, r.length);
    max_abs = std::max(max_abs, rs.max_abs);
    sum_abs += rs.sum_abs;
    sum += rs.sum;
    sum_sq += rs.sum_sq;
  }
  const double n = static_cast<double>(view.size());
  return SubTensorStats{max_abs, sum_abs / n, sum / n, sum_sq / n};
}

std::vector<SubTensorStats> compute_stats(
    const std::vector<SubTensorView>& views, std::span<const float> buffer) {
  // Per-sub-tensor max|Y| / avg|Y| extraction is independent per view;
  // each chunk fills its own slots of the pre-sized result.
  std::vector<SubTensorStats> stats(views.size());
  const auto n = static_cast<std::int64_t>(views.size());
  util::parallel_for(0, n, 16, [&](std::int64_t v0, std::int64_t v1) {
    for (std::int64_t v = v0; v < v1; ++v) {
      stats[static_cast<std::size_t>(v)] =
          compute_stats(views[static_cast<std::size_t>(v)], buffer);
    }
  });
  return stats;
}

PrecisionDecision select_precision(const SubTensorStats& stats,
                                   const QuantParams& params,
                                   const SelectorConfig& config) {
  const int clip_total = config.hp.bits() - config.lp.bits();
  DRIFT_CHECK(clip_total >= 0, "lp wider than hp");

  // All-(near-)zero sub-tensor: any rendering represents it exactly, so
  // take the low precision with the maximal high-end clip.
  if (stats.max_abs <= 0.0) {
    return PrecisionDecision{true, ConversionChoice{clip_total, 0}};
  }

  // Step 1 (Equation 5): the largest hc whose representation range
  // still covers max(|Y|).  Equation 5's closed form
  // hc = floor(log2(max_level(hp)*Δ / max|Y|)) is a whisker optimistic
  // twice over: the paper's RR = (2^(hp-1)-1)/2^hc * Δ exceeds what the
  // lp rendering actually tops out at, (2^(lp-1)-1) * 2^lc * Δ (112Δ,
  // not 127Δ, for 8->4 with lc=4), and the floating-point log2 can land
  // an ulp below an integer when max(|Y|) sits exactly on an RR
  // boundary, silently losing one bit of clip (and therefore one bit of
  // resolution) for near-full-width lp.  The hardware comparator
  // applies the exact bound, so we search hc directly: the range is
  // monotone decreasing in hc, making the feasible set a prefix — take
  // its largest element, or fall back to high precision for
  // sub-tensors that span the full tensor range, which no lp rendering
  // can hold without clamping.
  auto exact_range = [&](int hc_candidate) {
    const int lc = clip_total - hc_candidate;
    return static_cast<double>(config.lp.max_level()) *
           static_cast<double>(std::int64_t{1} << lc) * params.delta;
  };
  int hc = clip_total;
  while (hc > 0 && exact_range(hc) < stats.max_abs) --hc;
  if (exact_range(hc) < stats.max_abs) {
    return PrecisionDecision{false, ConversionChoice{0, clip_total}};
  }
  const ConversionChoice choice{hc, clip_total - hc};

  // Step 2 (Equation 6): accept iff var(Y) / RD >= δ, with the Laplace
  // identity var(Y) = 2*avg(|Y|)^2 standing in for the true variance.
  // Equation 6's raw ratio carries the units of Y, so the workable δ
  // would change with every tensor's scale; we evaluate the criterion
  // in integer-code units (divide both sides by Δ), which is exactly
  // Eq. 6 with δ = density_threshold * Δ and makes one dimensionless
  // threshold transfer across layers — the quantity the Hessian-aware
  // search actually tunes.
  const double rd = representation_density(choice.lc, params.delta);
  const double ratio_code_units =
      stats.laplace_variance() / (rd * params.delta);
  const bool dense_enough = ratio_code_units >= config.density_threshold;

  return PrecisionDecision{dense_enough, choice};
}

PrecisionMap::PrecisionMap(std::vector<PrecisionDecision> decisions,
                           std::vector<std::int64_t> sizes,
                           SelectorConfig config)
    : decisions_(std::move(decisions)), sizes_(std::move(sizes)),
      config_(config) {
  DRIFT_CHECK_EQ(decisions_.size(), sizes_.size(),
                 "decision/size count mismatch");
  for (std::size_t i = 0; i < decisions_.size(); ++i) {
    DRIFT_CHECK(sizes_[i] > 0, "sub-tensor size must be positive");
    total_elements_ += sizes_[i];
    if (decisions_[i].use_low) {
      low_elements_ += sizes_[i];
      ++low_count_;
    }
    // Clip-split histograms (hc + lc == hp - lp per Eq. 5); handles are
    // cached by the macros, so this stays one sharded add per decision.
    DRIFT_OBS_HISTOGRAM("selector.hc_clip",
                        decisions_[i].choice.hc, 0, 1, 2, 3, 4, 5, 6, 7, 8);
    DRIFT_OBS_HISTOGRAM("selector.lc_clip",
                        decisions_[i].choice.lc, 0, 1, 2, 3, 4, 5, 6, 7, 8);
  }
  DRIFT_OBS_COUNT("selector.maps", 1);
  DRIFT_OBS_COUNT("selector.subtensors_total",
                  static_cast<std::int64_t>(decisions_.size()));
  DRIFT_OBS_COUNT("selector.subtensors_low",
                  static_cast<std::int64_t>(low_count_));
  DRIFT_OBS_COUNT("selector.elements_total", total_elements_);
  DRIFT_OBS_COUNT("selector.elements_low", low_elements_);
  DRIFT_OBS_LAYER(
      rec, rec->subtensors_total += static_cast<std::int64_t>(decisions_.size());
      rec->subtensors_low += static_cast<std::int64_t>(low_count_);
      rec->elements_total += total_elements_;
      rec->elements_low += low_elements_);
}

const PrecisionDecision& PrecisionMap::decision(std::size_t i) const {
  DRIFT_CHECK_INDEX(i, decisions_.size());
  return decisions_[i];
}

double PrecisionMap::low_fraction_by_count() const {
  if (decisions_.empty()) return 0.0;
  return static_cast<double>(low_count_) /
         static_cast<double>(decisions_.size());
}

double PrecisionMap::low_fraction_by_elements() const {
  if (total_elements_ == 0) return 0.0;
  return static_cast<double>(low_elements_) /
         static_cast<double>(total_elements_);
}

PrecisionMap DynamicQuantizer::select(std::span<const float> values,
                                      const std::vector<SubTensorView>& views,
                                      const QuantParams& params) const {
  DRIFT_OBS_SPAN("selector.select");
  DRIFT_CHECK_EQ(params.bits, config_.hp,
                 "quant params precision must match selector hp");
  std::vector<PrecisionDecision> decisions(views.size());
  std::vector<std::int64_t> sizes(views.size());
  const auto n = static_cast<std::int64_t>(views.size());
  util::parallel_for(0, n, 16, [&](std::int64_t v0, std::int64_t v1) {
    for (std::int64_t v = v0; v < v1; ++v) {
      const auto& view = views[static_cast<std::size_t>(v)];
      decisions[static_cast<std::size_t>(v)] =
          select_precision(compute_stats(view, values), params, config_);
      sizes[static_cast<std::size_t>(v)] = view.size();
    }
  });
  return PrecisionMap(std::move(decisions), std::move(sizes), config_);
}

std::vector<float> DynamicQuantizer::apply(
    std::span<const float> values, const std::vector<SubTensorView>& views,
    const QuantParams& params, const PrecisionMap& map) const {
  DRIFT_OBS_SPAN("selector.apply");
  DRIFT_CHECK_EQ(views.size(), map.num_subtensors(),
                 "view/map count mismatch");
  std::vector<float> out(values.size());
  // Default: full-precision (hp) rendering everywhere (elementwise).
  util::parallel_for(0, static_cast<std::int64_t>(values.size()), 4096,
                     [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      const auto s = static_cast<std::size_t>(i);
      out[s] = dequantize_value(quantize_value(values[s], params), params);
    }
  });
  // Overwrite low-selected sub-tensors with their lp rendering.  The
  // partition_* views this is called with are pairwise disjoint, so
  // chunks never write the same element.
  const auto n = static_cast<std::int64_t>(views.size());
  util::parallel_for(0, n, 16, [&](std::int64_t v0, std::int64_t v1) {
    for (std::int64_t v = v0; v < v1; ++v) {
      const PrecisionDecision& d = map.decision(static_cast<std::size_t>(v));
      if (!d.use_low) continue;
      std::span<float> out_span(out);
      views[static_cast<std::size_t>(v)].transform<float>(
          out_span, [&](float& x) {
            const std::int32_t q = quantize_value(x, params);
            const std::int32_t q_lp = convert_to_low(q, config_.lp, d.choice);
            x = dequantize_low(q_lp, params, d.choice);
          });
    }
  });
  return out;
}

}  // namespace drift::core
