// Dynamic precision selection (Section 3.3, Equations 5 and 6).
//
// Per sub-tensor Y the selector consumes exactly the two statistics the
// hardware pooling unit produces — max(|Y|) and avg(|Y|) — and decides:
//
//   1. The conversion choice: the largest high-end clip hc whose RR
//      still covers max(|Y|) (Equation 5), with lc = hp - lp - hc.
//      Clipping from the high end first preserves resolution, which is
//      what Laplace-distributed (small-value-dominated) data wants.
//   2. Whether the resulting density is adequate: accept the low
//      rendering iff var(Y) / RD = 2*avg(|Y|)^2 / (2^lc * Δ) >= δ
//      (Equation 6), where var(Y) uses the Laplace identity
//      var = 2*E|Y|^2 from Equation 4.
//
// δ is a per-layer hyperparameter chosen offline by the Hessian-aware
// search in core/hessian.hpp.
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "core/precision.hpp"
#include "core/quantizer.hpp"
#include "stats/summary.hpp"
#include "tensor/subtensor.hpp"

namespace drift::core {

/// Pooling-unit statistics of one sub-tensor.  max(|Y|) and avg(|Y|)
/// are the two the paper's selector consumes; the mean and mean-square
/// accumulators additionally give the *true* variance, which the
/// noise-budget selection (core/noise_budget.hpp) uses because
/// post-ReLU sub-tensors are not zero-mean and the Laplace proxy
/// overestimates their variation.
struct SubTensorStats {
  double max_abs = 0.0;   ///< max(|Y|), in dequantized (float) units
  double mean_abs = 0.0;  ///< avg(|Y|), in dequantized (float) units
  double mean = 0.0;      ///< avg(Y) (signed)
  double mean_sq = 0.0;   ///< avg(Y^2)

  /// Laplace-model variance (Equation 4): var(Y) = 2*avg(|Y|)^2.
  double laplace_variance() const { return 2.0 * mean_abs * mean_abs; }

  /// True population variance from the accumulators.
  double true_variance() const {
    return std::max(mean_sq - mean * mean, 0.0);
  }
};

/// Computes SubTensorStats for one sub-tensor view of a float buffer.
SubTensorStats compute_stats(const SubTensorView& view,
                             std::span<const float> buffer);

/// Computes SubTensorStats for all views of a buffer.
std::vector<SubTensorStats> compute_stats(
    const std::vector<SubTensorView>& views, std::span<const float> buffer);

/// Selector configuration.
struct SelectorConfig {
  Precision hp = kInt8;           ///< storage precision after Eq. 1
  Precision lp = kInt4;           ///< candidate low precision
  double density_threshold = 1.0; ///< δ in Equation 6
};

/// Runs Equations 5–6 for one sub-tensor.  Total: every input yields a
/// decision (all-zero sub-tensors trivially go low at maximal clip).
PrecisionDecision select_precision(const SubTensorStats& stats,
                                   const QuantParams& params,
                                   const SelectorConfig& config);

/// The per-layer outcome: one decision per sub-tensor plus the element
/// counts needed for computation-weighted fractions.
class PrecisionMap {
 public:
  PrecisionMap(std::vector<PrecisionDecision> decisions,
               std::vector<std::int64_t> sizes, SelectorConfig config);

  std::size_t num_subtensors() const { return decisions_.size(); }
  const PrecisionDecision& decision(std::size_t i) const;
  const SelectorConfig& config() const { return config_; }

  /// Fraction of sub-tensors that selected the low precision.
  double low_fraction_by_count() const;

  /// Fraction of *elements* (== MACs for a fixed K) at low precision;
  /// this is the "% of 4-bit computation" the paper reports.
  double low_fraction_by_elements() const;

  std::int64_t total_elements() const { return total_elements_; }
  std::int64_t low_elements() const { return low_elements_; }
  std::size_t low_subtensors() const { return low_count_; }

 private:
  std::vector<PrecisionDecision> decisions_;
  std::vector<std::int64_t> sizes_;
  SelectorConfig config_;
  std::int64_t total_elements_ = 0;
  std::int64_t low_elements_ = 0;
  std::size_t low_count_ = 0;
};

/// End-to-end dynamic quantization of one tensor:
///   float tensor --Eq.1--> INT-hp codes --Eq.5/6 per sub-tensor-->
///   PrecisionMap (+ optionally the effective dequantized tensor the
///   hardware would compute with, for accuracy evaluation).
class DynamicQuantizer {
 public:
  explicit DynamicQuantizer(SelectorConfig config) : config_(config) {}

  const SelectorConfig& config() const { return config_; }

  /// Selects precision for every view.  `values` is the float tensor;
  /// `params` its Eq. 1 calibration.
  PrecisionMap select(std::span<const float> values,
                      const std::vector<SubTensorView>& views,
                      const QuantParams& params) const;

  /// Produces the dequantized tensor as the accelerator would see it:
  /// low-selected sub-tensors go through hp->lp conversion, the rest
  /// stay at hp.  Output has the same layout as `values`.
  std::vector<float> apply(std::span<const float> values,
                           const std::vector<SubTensorView>& views,
                           const QuantParams& params,
                           const PrecisionMap& map) const;

 private:
  SelectorConfig config_;
};

}  // namespace drift::core
