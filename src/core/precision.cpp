#include "core/precision.hpp"

#include "util/assert.hpp"

namespace drift::core {

std::vector<ConversionChoice> enumerate_choices(Precision hp, Precision lp) {
  DRIFT_CHECK(hp.bits() >= lp.bits(), "hp must be at least lp");
  DRIFT_CHECK(lp.bits() >= 2, "need at least 2 bits (sign + magnitude)");
  const int clip_total = hp.bits() - lp.bits();
  std::vector<ConversionChoice> choices;
  choices.reserve(static_cast<std::size_t>(clip_total) + 1);
  for (int hc = 0; hc <= clip_total; ++hc) {
    choices.push_back({hc, clip_total - hc});
  }
  return choices;
}

}  // namespace drift::core
