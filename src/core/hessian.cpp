#include "core/hessian.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace drift::core {

double curvature_along(const LossFn& loss, std::span<const float> x,
                       std::span<const float> direction, double step) {
  DRIFT_CHECK_EQ(x.size(), direction.size(), "direction size mismatch");
  DRIFT_CHECK(step > 0.0, "step must be positive");
  std::vector<float> plus(x.begin(), x.end());
  std::vector<float> minus(x.begin(), x.end());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double d = static_cast<double>(direction[i]) * step;
    plus[i] = static_cast<float>(plus[i] + d);
    minus[i] = static_cast<float>(minus[i] - d);
  }
  const double l0 = loss(x);
  const double lp = loss(plus);
  const double lm = loss(minus);
  return (lp - 2.0 * l0 + lm) / (step * step);
}

double hessian_trace_estimate(const LossFn& loss, std::span<const float> x,
                              Rng& rng, int probes, double step) {
  DRIFT_CHECK(probes > 0, "need at least one probe");
  double acc = 0.0;
  std::vector<float> v(x.size());
  for (int p = 0; p < probes; ++p) {
    for (auto& vi : v) vi = static_cast<float>(rng.rademacher());
    acc += curvature_along(loss, x, v, step);
  }
  return acc / static_cast<double>(probes);
}

ThresholdSearchResult select_threshold_hessian_aware(
    const LossFn& loss, std::span<const float> x,
    const std::function<std::vector<float>(double)>& render_at,
    const std::function<double(double)>& low_fraction_at,
    std::span<const double> grid, double loss_budget) {
  DRIFT_CHECK(!grid.empty(), "empty threshold grid");
  DRIFT_CHECK(std::is_sorted(grid.begin(), grid.end()),
              "threshold grid must be ascending");

  ThresholdSearchResult result;
  result.candidates.reserve(grid.size());
  for (double delta : grid) {
    const std::vector<float> rendered = render_at(delta);
    DRIFT_CHECK_EQ(rendered.size(), x.size(), "render size mismatch");
    std::vector<float> direction(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
      direction[i] = rendered[i] - x[i];
    }
    const double dthd = curvature_along(loss, x, direction);
    ThresholdCandidate cand;
    cand.delta_threshold = delta;
    // Clamp: a locally concave loss would predict a decrease; for
    // threshold selection we treat that as zero impact.
    cand.predicted_loss_increase = std::max(0.5 * dthd, 0.0);
    cand.low_fraction = low_fraction_at(delta);
    result.candidates.push_back(cand);

    if (!result.within_budget &&
        cand.predicted_loss_increase <= loss_budget) {
      result.chosen_delta = delta;
      result.within_budget = true;
    }
  }
  if (!result.within_budget) {
    result.chosen_delta = grid.back();
  }
  return result;
}

}  // namespace drift::core
