// Weight-stationary systolic latency model (Section 4.3, Equation 7),
// extended from SCALE-Sim's analytical characterization.
//
// For a GEMM of dimensions M x K x N executed on an R x C array of
// BitGroups (BG = 4x4 BitBricks; a BitBrick multiplies 1-bit input by
// 4-bit weight), with activation precision `pa` and weight precision
// `pw`:
//
//   T_pre   = R                      (top-down weight preload)
//   T_exe   = M + R + C - 2          (stream M rows + wavefront drain)
//   T_total = (T_pre + T_exe) * ceil(pa*K / 4R) * ceil(pw*N / 16C)
//
// The repetition factors express how many weight tiles the array must
// iterate over: each BG row covers 4 activation bits x K-slice, each BG
// column covers 16 weight bits x N-slice.
#pragma once

#include <cstdint>
#include <limits>

namespace drift::core {

/// GEMM problem dimensions.
struct GemmDims {
  std::int64_t M = 0;  ///< rows streamed through the array
  std::int64_t K = 0;  ///< reduction dimension (mapped to array rows)
  std::int64_t N = 0;  ///< output columns (mapped to array columns)

  std::int64_t macs() const { return M * K * N; }
  bool empty() const { return M == 0 || K == 0 || N == 0; }
};

/// Systolic array dimensions, in BitGroups.
struct ArrayDims {
  std::int64_t rows = 0;  ///< R
  std::int64_t cols = 0;  ///< C

  std::int64_t units() const { return rows * cols; }
};

/// Sentinel for "this mapping is infeasible" (zero-sized array with
/// non-empty work).  Chosen so sums of a few sentinels cannot overflow.
inline constexpr std::int64_t kInfeasibleLatency =
    std::numeric_limits<std::int64_t>::max() / 16;

/// Equation 7.  Returns 0 for empty work, kInfeasibleLatency when the
/// work is non-empty but the array has no rows or columns.
std::int64_t ws_latency_cycles(const GemmDims& gemm, int pa, int pw,
                               const ArrayDims& array);

/// Number of weight-tile repetitions, ceil(pa*K/4R) * ceil(pw*N/16C);
/// exposed separately because the energy model scales preload traffic
/// by it.
std::int64_t ws_tile_repetitions(const GemmDims& gemm, int pa, int pw,
                                 const ArrayDims& array);

/// The per-axis ceilings behind ws_tile_repetitions, exposed so the
/// accelerator models and benches share one formula instead of
/// re-deriving them.  `pa_bits`/`pw_bits` may be fractional
/// (mix-weighted operand widths); integral widths take the exact
/// integer ceil-div path.  Results are clamped to >= 1: the traffic
/// model always streams at least one tile per axis.
std::int64_t ws_k_tiles(std::int64_t k, double pa_bits, std::int64_t rows);
std::int64_t ws_n_tiles(std::int64_t n, double pw_bits, std::int64_t cols);

}  // namespace drift::core
