// Automatic per-tensor threshold selection under an excess-noise
// budget.
//
// Section 3.3 selects "the minimum threshold with negligible impact on
// model accuracy" via a Hessian-aware strategy.  When a differentiable
// loss is available we do exactly that (core/hessian.hpp); for the
// full-size hardware workloads — where only sub-tensor statistics
// exist — this module implements the same rule with the Hessian weight
// replaced by a quantization-noise proxy:
//
//   A sub-tensor converted with low-end clip lc adds rounding noise
//   ((2^lc Δ)^2 - Δ^2) / 12 per element *beyond* the INT8 rendering
//   (lc = 0 conversions are INT8-density-equivalent: free).
//
// The selection that keeps total excess noise within `budget` x signal
// variance while maximizing 4-bit coverage is computed exactly: rank
// range-feasible sub-tensors by their Eq. 6 ratio and include greedily
// until the budget binds.  The resulting cut ratio *is* the minimum δ;
// running Equations 5-6 at that δ reproduces the same selection.
#pragma once

#include <span>
#include <vector>

#include "core/selector.hpp"

namespace drift::core {

/// Outcome of the automatic threshold selection.
struct AutoThresholdResult {
  double delta_threshold = 0.0;      ///< the implied minimum δ
  double excess_relative_mse = 0.0;  ///< accepted excess noise / signal
  std::vector<PrecisionDecision> decisions;  ///< one per sub-tensor
  double low_fraction_by_elements = 0.0;
};

/// Selects precision for every sub-tensor, maximizing low-precision
/// coverage subject to two constraints:
///   - global: total excess rounding noise (vs INT8) at most `budget`
///     times the total signal variance, and
///   - local (`noise_cap`, Eq. 6's per-sub-tensor density role): a
///     sub-tensor's own excess noise per element must stay below
///     noise_cap times its variance — a conversion that would wipe out
///     a quiet sub-tensor is rejected even when it is globally cheap.
/// `sizes[i]` is the element count of sub-tensor i.
AutoThresholdResult select_auto_threshold(
    std::span<const SubTensorStats> stats,
    std::span<const std::int64_t> sizes, const QuantParams& params,
    const SelectorConfig& base, double budget, double noise_cap = 0.125);

/// Convenience: builds a PrecisionMap from the auto selection.
PrecisionMap auto_threshold_map(std::span<const SubTensorStats> stats,
                                std::span<const std::int64_t> sizes,
                                const QuantParams& params,
                                const SelectorConfig& base, double budget,
                                double noise_cap = 0.125);

}  // namespace drift::core
