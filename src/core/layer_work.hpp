// Bridges algorithm output (PrecisionMaps) to hardware workload
// descriptions (LayerWork quadruples for the scheduler).
//
// Convention: the activation matrix of a layer GEMM is [M, K] with one
// sub-tensor per row (token / patch / im2col row group), and the weight
// matrix is stored output-major [N, K] with one sub-tensor per output
// channel.  The activation map's low/high row split gives (M_l, M_h);
// the weight map's gives (N_l, N_h).
#pragma once

#include <cstdint>

#include "core/scheduler.hpp"
#include "core/selector.hpp"

namespace drift::core {

/// Builds the scheduler workload for one GEMM layer from the two
/// precision maps.  `act_map` must have one decision per GEMM row and
/// `weight_map` one per output channel.
LayerWork make_layer_work(const PrecisionMap& act_map,
                          const PrecisionMap& weight_map, std::int64_t k);

/// Fraction of MACs at (4-bit x 4-bit), the most aggressive class.
double ll_mac_fraction(const LayerWork& work);

/// Fraction of MACs where at least one operand is low precision.
double any_low_mac_fraction(const LayerWork& work);

}  // namespace drift::core
