#include "core/scheduler.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"

namespace drift::core {
namespace {

std::int64_t makespan_of(const std::array<std::int64_t, 4>& lat) {
  return *std::max_element(lat.begin(), lat.end());
}

SplitDecision evaluate(const LayerWork& work, const ArrayDims& total,
                       std::int64_t r, std::int64_t c) {
  SplitDecision d;
  d.r = r;
  d.c = c;
  d.latency = quadrant_latencies(work, total, r, c);
  d.makespan = makespan_of(d.latency);
  return d;
}

/// Publishes a scheduler decision to the metrics layer.  Compiles to
/// nothing under DRIFT_OBS_OFF (every statement is an obs macro).
inline void record_decision(const LayerWork& work, const ArrayDims& total,
                            const SplitDecision& d) {
  (void)work;  // referenced only by the obs macros below, which expand
  (void)total; // to nothing under DRIFT_OBS_OFF
  (void)d;
  DRIFT_OBS_COUNT("scheduler.decisions", 1);
  DRIFT_OBS_LAYER(
      rec, rec->sched_r = d.r; rec->sched_c = d.c;
      rec->sched_latency = d.latency; rec->sched_makespan = d.makespan;
      rec->tile_count = quadrant_tile_counts(work, total, d.r, d.c));
}

}  // namespace

std::array<std::int64_t, 4> quadrant_latencies(const LayerWork& work,
                                               const ArrayDims& total,
                                               std::int64_t r,
                                               std::int64_t c) {
  DRIFT_CHECK(r >= 0 && r <= total.rows, "row split out of range");
  DRIFT_CHECK(c >= 0 && c <= total.cols, "column split out of range");
  const GemmDims hh{work.m_high, work.k, work.n_high};
  const GemmDims hl{work.m_high, work.k, work.n_low};
  const GemmDims lh{work.m_low, work.k, work.n_high};
  const GemmDims ll{work.m_low, work.k, work.n_low};
  const ArrayDims top_left{r, c};
  const ArrayDims top_right{r, total.cols - c};
  const ArrayDims bottom_left{total.rows - r, c};
  const ArrayDims bottom_right{total.rows - r, total.cols - c};
  return {
      ws_latency_cycles(hh, work.pa_high, work.pw_high, top_left),
      ws_latency_cycles(hl, work.pa_high, work.pw_low, top_right),
      ws_latency_cycles(lh, work.pa_low, work.pw_high, bottom_left),
      ws_latency_cycles(ll, work.pa_low, work.pw_low, bottom_right),
  };
}

std::array<std::int64_t, 4> quadrant_tile_counts(const LayerWork& work,
                                                 const ArrayDims& total,
                                                 std::int64_t r,
                                                 std::int64_t c) {
  DRIFT_CHECK(r >= 0 && r <= total.rows, "row split out of range");
  DRIFT_CHECK(c >= 0 && c <= total.cols, "column split out of range");
  const GemmDims hh{work.m_high, work.k, work.n_high};
  const GemmDims hl{work.m_high, work.k, work.n_low};
  const GemmDims lh{work.m_low, work.k, work.n_high};
  const GemmDims ll{work.m_low, work.k, work.n_low};
  const auto reps = [](const GemmDims& g, int pa, int pw,
                       const ArrayDims& a) -> std::int64_t {
    if (g.empty()) return 0;
    return ws_tile_repetitions(g, pa, pw, a);
  };
  return {
      reps(hh, work.pa_high, work.pw_high, {r, c}),
      reps(hl, work.pa_high, work.pw_low, {r, total.cols - c}),
      reps(lh, work.pa_low, work.pw_high, {total.rows - r, c}),
      reps(ll, work.pa_low, work.pw_low, {total.rows - r, total.cols - c}),
  };
}

SplitDecision schedule_greedy(const LayerWork& work, const ArrayDims& total) {
  DRIFT_OBS_SPAN("scheduler.greedy");
  DRIFT_CHECK(total.rows > 0 && total.cols > 0, "empty array");
  // Feasible split band: a non-empty class must receive at least one
  // row/column slice.
  const std::int64_t r_min = work.m_high > 0 ? 1 : 0;
  const std::int64_t r_max = work.m_low > 0 ? total.rows - 1 : total.rows;
  const std::int64_t c_min = work.n_high > 0 ? 1 : 0;
  const std::int64_t c_max = work.n_low > 0 ? total.cols - 1 : total.cols;
  DRIFT_CHECK_LE(r_min, r_max,
                 "array rows too few to host all precision classes");
  DRIFT_CHECK_LE(c_min, c_max,
                 "array columns too few to host all precision classes");

  // Seed the split proportionally to the bit-volume on each axis; this
  // is what the hardware can compute in O(1) from the index buffer.
  const std::int64_t row_high_bits = work.m_high * work.pa_high;
  const std::int64_t row_low_bits = work.m_low * work.pa_low;
  const std::int64_t col_high_bits = work.n_high * work.pw_high;
  const std::int64_t col_low_bits = work.n_low * work.pw_low;
  std::int64_t r = row_high_bits + row_low_bits == 0
                       ? total.rows / 2
                       : total.rows * row_high_bits /
                             std::max<std::int64_t>(
                                 row_high_bits + row_low_bits, 1);
  std::int64_t c = col_high_bits + col_low_bits == 0
                       ? total.cols / 2
                       : total.cols * col_high_bits /
                             std::max<std::int64_t>(
                                 col_high_bits + col_low_bits, 1);
  r = std::clamp(r, r_min, r_max);
  c = std::clamp(c, c_min, c_max);

  SplitDecision best = evaluate(work, total, r, c);
  // Alternate 1-D sweeps; each sweep scans its whole axis, so the loop
  // terminates (makespan strictly decreases or we stop).
  for (int iter = 0; iter < 8; ++iter) {
    SplitDecision round_best = best;
    for (std::int64_t cand = r_min; cand <= r_max; ++cand) {
      SplitDecision d = evaluate(work, total, cand, round_best.c);
      if (d.makespan < round_best.makespan) round_best = d;
    }
    for (std::int64_t cand = c_min; cand <= c_max; ++cand) {
      SplitDecision d = evaluate(work, total, round_best.r, cand);
      if (d.makespan < round_best.makespan) round_best = d;
    }
    if (round_best.makespan >= best.makespan) break;
    best = round_best;
  }
  record_decision(work, total, best);
  return best;
}

SplitDecision schedule_exhaustive(const LayerWork& work,
                                  const ArrayDims& total) {
  DRIFT_OBS_SPAN("scheduler.exhaustive");
  DRIFT_CHECK(total.rows > 0 && total.cols > 0, "empty array");
  SplitDecision best = evaluate(work, total, 0, 0);
  for (std::int64_t r = 0; r <= total.rows; ++r) {
    for (std::int64_t c = 0; c <= total.cols; ++c) {
      SplitDecision d = evaluate(work, total, r, c);
      if (d.makespan < best.makespan) best = d;
    }
  }
  record_decision(work, total, best);
  return best;
}

SplitDecision schedule_fixed_quarters(const LayerWork& work,
                                      const ArrayDims& total) {
  DRIFT_CHECK(total.rows > 0 && total.cols > 0, "empty array");
  std::int64_t r = total.rows / 2;
  std::int64_t c = total.cols / 2;
  // Keep the mapping feasible when one class is empty.
  if (work.m_high == 0) r = 0;
  if (work.m_low == 0) r = total.rows;
  if (work.n_high == 0) c = 0;
  if (work.n_low == 0) c = total.cols;
  const SplitDecision d = evaluate(work, total, r, c);
  record_decision(work, total, d);
  return d;
}

}  // namespace drift::core
