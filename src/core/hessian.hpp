// Hessian-aware threshold selection (Section 3.3).
//
// The density threshold δ of Equation 6 trades 4-bit coverage against
// accuracy.  Following HAWQ / Q-BERT, the paper selects the *minimum*
// δ whose accuracy impact is negligible, so as many sub-tensors as
// possible run at low precision.  We reproduce the rule with numeric
// second-order information: for a candidate δ, the quantization
// perturbation d(δ) = render(δ) - x has predicted loss increase
//
//   ΔL(δ) ≈ 1/2 · d(δ)ᵀ H d(δ)
//
// (the gradient term vanishes at a trained model), where dᵀHd is
// estimated by a central finite difference of the loss along d.  The
// search walks the δ grid from small (aggressive) to large and keeps
// the first δ whose predicted ΔL fits the budget.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace drift::core {

/// A loss functional over a flat parameter/activation vector.
using LossFn = std::function<double(std::span<const float>)>;

/// dᵀ H d via the central second difference
///   (L(x + s·d) - 2·L(x) + L(x - s·d)) / s²
/// with step fraction `s` (the full perturbation is s·d).
double curvature_along(const LossFn& loss, std::span<const float> x,
                       std::span<const float> direction, double step = 0.5);

/// Hutchinson estimator of trace(H): mean of vᵀHv over `probes`
/// Rademacher vectors v, each curvature via curvature_along.
double hessian_trace_estimate(const LossFn& loss, std::span<const float> x,
                              Rng& rng, int probes = 8, double step = 1e-2);

/// One evaluated grid point of the δ search.
struct ThresholdCandidate {
  double delta_threshold = 0.0;       ///< δ
  double predicted_loss_increase = 0.0;  ///< 1/2 dᵀHd
  double low_fraction = 0.0;          ///< 4-bit element fraction at this δ
};

/// Outcome of the δ search.
struct ThresholdSearchResult {
  double chosen_delta = 0.0;
  bool within_budget = false;  ///< false: even the largest δ exceeds budget
  std::vector<ThresholdCandidate> candidates;
};

/// Hessian-aware δ search.
///  - `loss`: model loss functional over the activation vector.
///  - `x`: the unperturbed activations.
///  - `render_at(δ)`: the dequantized rendering the accelerator would
///    compute with at threshold δ (same length as x).
///  - `low_fraction_at(δ)`: 4-bit element fraction at threshold δ.
///  - `grid`: ascending candidate δ values.
///  - `loss_budget`: maximum tolerated predicted ΔL.
/// Returns the smallest grid δ within budget, or the largest grid δ
/// (flagged `within_budget = false`) when none qualifies.
ThresholdSearchResult select_threshold_hessian_aware(
    const LossFn& loss, std::span<const float> x,
    const std::function<std::vector<float>(double)>& render_at,
    const std::function<double(double)>& low_fraction_at,
    std::span<const double> grid, double loss_budget);

}  // namespace drift::core
