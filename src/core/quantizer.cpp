#include "core/quantizer.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace drift::core {

QuantParams compute_quant_params(std::span<const float> values,
                                 Precision bits) {
  DRIFT_CHECK(!values.empty(), "cannot calibrate on an empty tensor");
  float max_abs = 0.0f;
  for (float v : values) max_abs = std::max(max_abs, std::abs(v));
  QuantParams p;
  p.bits = bits;
  p.delta = max_abs > 0.0f
                ? static_cast<double>(max_abs) /
                      static_cast<double>(bits.max_level())
                : 1.0;
  return p;
}

std::int32_t quantize_value(float x, const QuantParams& params) {
  const double scaled = static_cast<double>(x) / params.delta;
  const auto q = static_cast<std::int64_t>(std::llround(scaled));
  const std::int64_t lim = params.bits.max_level();
  // drift-lint: allow(narrow) — clamped to ±max_level (≤ 2^15 - 1 for
  // the widest Precision) on this line, so the value always fits i32.
  return static_cast<std::int32_t>(std::clamp<std::int64_t>(q, -lim, lim));
}

float dequantize_value(std::int32_t q, const QuantParams& params) {
  return static_cast<float>(static_cast<double>(q) * params.delta);
}

TensorI32 quantize(const TensorF& x, const QuantParams& params) {
  TensorI32 q(x.shape());
  auto src = x.data();
  auto dst = q.data();
  for (std::size_t i = 0; i < src.size(); ++i) {
    dst[i] = quantize_value(src[i], params);
  }
  return q;
}

TensorF dequantize(const TensorI32& q, const QuantParams& params) {
  TensorF x(q.shape());
  auto src = q.data();
  auto dst = x.data();
  for (std::size_t i = 0; i < src.size(); ++i) {
    dst[i] = dequantize_value(src[i], params);
  }
  return x;
}

std::int32_t convert_to_low(std::int32_t q, Precision lp,
                            const ConversionChoice& choice) {
  DRIFT_CHECK(choice.hc >= 0 && choice.lc >= 0, "invalid conversion choice");
  // Round-to-nearest when dropping the lc low bits (divide by 2^lc).
  const double shifted =
      static_cast<double>(q) / static_cast<double>(std::int64_t{1} << choice.lc);
  auto q_lp = static_cast<std::int64_t>(std::llround(shifted));
  // Clipping hc high bits leaves lp live bits; clamp to the lp range.
  // The RR criterion guarantees this clamp does not engage for
  // correctly selected sub-tensors, but convert_to_low stays total.
  const std::int64_t lim = lp.max_level();
  // drift-lint: allow(narrow) — clamped to the lp range (±max_level,
  // at most 15 live bits) on this line, so the value always fits i32.
  return static_cast<std::int32_t>(std::clamp<std::int64_t>(q_lp, -lim, lim));
}

float dequantize_low(std::int32_t q_lp, const QuantParams& params,
                     const ConversionChoice& choice) {
  const double step =
      params.delta * static_cast<double>(std::int64_t{1} << choice.lc);
  return static_cast<float>(static_cast<double>(q_lp) * step);
}

double conversion_error(std::int32_t q, const QuantParams& params,
                        Precision lp, const ConversionChoice& choice) {
  const double exact = static_cast<double>(q) * params.delta;
  const double approx =
      dequantize_low(convert_to_low(q, lp, choice), params, choice);
  return std::abs(exact - approx);
}

}  // namespace drift::core
