// Precision (bit-width) types and conversion choices.
//
// Dynamic precision quantization (Section 3.1) converts an hp-bit
// signed integer to an lp-bit one by clipping `hc` bits from the high
// end and `lc` bits from the low end, subject to Equation (2):
//
//     hp = hc + lp + lc,   hp, lp, hc, lc >= 0.
//
// A ConversionChoice captures one (hc, lc) pair; enumerate_choices lists
// all of them for a given (hp, lp) — e.g. five choices for 8->4.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace drift::core {

/// Signed integer bit-width in [2, 16].  Width includes the sign bit,
/// matching the symmetric quantizer's max level 2^(N-1)-1.
class Precision {
 public:
  explicit constexpr Precision(int bits) : bits_(bits) {}

  constexpr int bits() const { return bits_; }

  /// Largest representable magnitude: 2^(N-1) - 1.
  constexpr std::int64_t max_level() const {
    return (std::int64_t{1} << (bits_ - 1)) - 1;
  }

  constexpr bool operator==(const Precision&) const = default;

  std::string to_string() const { return "INT" + std::to_string(bits_); }

 private:
  int bits_;
};

/// Streams as "INT<n>" so DRIFT_CHECK_EQ failures print real widths.
inline std::ostream& operator<<(std::ostream& os, const Precision& p) {
  return os << p.to_string();
}

inline constexpr Precision kInt8{8};
inline constexpr Precision kInt4{4};
inline constexpr Precision kInt5{5};
inline constexpr Precision kInt3{3};

/// One way to convert hp-bit to lp-bit (Equation 2).
struct ConversionChoice {
  int hc = 0;  ///< bits clipped from the high (magnitude) end
  int lc = 0;  ///< bits clipped from the low (resolution) end
};

/// All (hc, lc) pairs with hc + lc = hp - lp, ordered by ascending hc.
std::vector<ConversionChoice> enumerate_choices(Precision hp, Precision lp);

/// The precision assigned to one sub-tensor after dynamic selection.
struct PrecisionDecision {
  bool use_low = false;        ///< true: execute at lp; false: stay at hp
  ConversionChoice choice{};   ///< meaningful only when use_low
};

}  // namespace drift::core
