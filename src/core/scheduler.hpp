// Balanced online scheduling (Section 4.3, Equation 8).
//
// After dynamic precision selection, one layer's GEMM M x K x N splits
// into four class GEMMs by (activation precision x weight precision):
//
//   hh: M_h x K x N_h    hl: M_h x K x N_l
//   lh: M_l x K x N_h    ll: M_l x K x N_l
//
// Drift cuts its R_tot x C_tot BitGroup grid at a row index r and a
// column index c, yielding four rectangular systolic arrays:
//
//   (r x c) -> hh        (r x (C-c)) -> hl
//   ((R-r) x c) -> lh    ((R-r) x (C-c)) -> ll
//
// The scheduler picks (r, c) to minimize max{T_hh, T_hl, T_lh, T_ll}
// with T from Equation 7.  Because activation and weight precision
// selections are independent, the paper adjusts r and c greedily and
// separately; `schedule_greedy` implements that (alternating 1-D
// sweeps to a fixed point) and `schedule_exhaustive` provides the
// oracle reference used by tests and the scheduler ablation bench.
#pragma once

#include <array>
#include <cstdint>

#include "core/analytical_model.hpp"

namespace drift::core {

/// One layer's precision-split workload.
struct LayerWork {
  std::int64_t m_high = 0;  ///< activation rows at high precision
  std::int64_t m_low = 0;   ///< activation rows at low precision
  std::int64_t n_high = 0;  ///< weight columns at high precision
  std::int64_t n_low = 0;   ///< weight columns at low precision
  std::int64_t k = 0;       ///< shared reduction dimension
  int pa_high = 8;
  int pa_low = 4;
  int pw_high = 8;
  int pw_low = 4;

  std::int64_t total_macs() const {
    return (m_high + m_low) * k * (n_high + n_low);
  }
};

/// Index order of the four precision-class quadrants.
enum class Quadrant { kHH = 0, kHL = 1, kLH = 2, kLL = 3 };

/// A chosen split and its predicted latencies.
struct SplitDecision {
  std::int64_t r = 0;  ///< rows given to high-precision activations
  std::int64_t c = 0;  ///< columns given to high-precision weights
  std::array<std::int64_t, 4> latency{};  ///< per-quadrant cycles
  std::int64_t makespan = 0;              ///< max of the four
};

/// Latency of each quadrant for a candidate split (Equation 7 per
/// quadrant).  Quadrants with no work cost 0 regardless of size.
std::array<std::int64_t, 4> quadrant_latencies(const LayerWork& work,
                                               const ArrayDims& total,
                                               std::int64_t r,
                                               std::int64_t c);

/// Weight-tile repetition count of each quadrant (the ceil factors of
/// Equation 7) for a chosen split; 0 for empty quadrants.  This is the
/// per-precision-class tile count the metrics layer reports.
std::array<std::int64_t, 4> quadrant_tile_counts(const LayerWork& work,
                                                 const ArrayDims& total,
                                                 std::int64_t r,
                                                 std::int64_t c);

/// Greedy balanced scheduler: alternating 1-D sweeps over r (with c
/// fixed) and c (with r fixed) until the makespan stops improving.
/// O(R + C) evaluations per sweep.
SplitDecision schedule_greedy(const LayerWork& work, const ArrayDims& total);

/// Oracle: evaluates every (r, c) pair.  O(R * C).
SplitDecision schedule_exhaustive(const LayerWork& work,
                                  const ArrayDims& total);

/// Ablation baseline: fixed half/half split (r = R/2, c = C/2), i.e.
/// no load balancing.  Degenerate class mixes fall back to giving the
/// whole axis to the non-empty class so the mapping stays feasible.
SplitDecision schedule_fixed_quarters(const LayerWork& work,
                                      const ArrayDims& total);

}  // namespace drift::core
