// Symmetric linear quantization (Equation 1) and low-precision
// conversion (Section 3.1).
//
// The initial quantization maps FP32 to INT-N with a per-tensor scale
//     q = round(x / Δ),  Δ = max|X| / (2^(N-1) - 1).
// Dynamic precision then re-renders individual sub-tensors of the INT
// tensor at fewer bits by clipping hc high bits and lc low bits:
//     q_lp = clamp(round(q / 2^lc), ±(2^(lp-1) - 1))
// which dequantizes as q_lp * 2^lc * Δ.  The RR criterion (Eq. 5)
// guarantees the clamp is a no-op for correctly selected sub-tensors.
#pragma once

#include <cstdint>
#include <span>

#include "core/precision.hpp"
#include "tensor/tensor.hpp"

namespace drift::core {

/// Per-tensor quantization parameters.
struct QuantParams {
  double delta = 1.0;       ///< scaling factor Δ
  Precision bits = kInt8;   ///< storage precision of the quantized tensor

  /// Representation range of the full-precision rendering:
  /// (2^(N-1)-1) * Δ = max|X| by construction.
  double representation_range() const {
    return static_cast<double>(bits.max_level()) * delta;
  }
  /// Representation density of the full-precision rendering: Δ.
  double representation_density() const { return delta; }
};

/// Computes Δ from the data (Equation 1).  A degenerate all-zero tensor
/// yields Δ = 1 so round-tripping still works.
QuantParams compute_quant_params(std::span<const float> values,
                                 Precision bits = kInt8);

/// Quantizes x -> round(x / Δ), clamped to the representable range.
/// (Clamping only matters for values injected after Δ was calibrated.)
std::int32_t quantize_value(float x, const QuantParams& params);

/// Dequantizes q -> q * Δ.
float dequantize_value(std::int32_t q, const QuantParams& params);

/// Whole-tensor quantize / dequantize.
TensorI32 quantize(const TensorF& x, const QuantParams& params);
TensorF dequantize(const TensorI32& q, const QuantParams& params);

/// Re-renders a single hp-bit integer at lp bits with choice (hc, lc).
/// Returns the *lp-bit integer code* (already shifted down by lc).
std::int32_t convert_to_low(std::int32_t q, Precision lp,
                            const ConversionChoice& choice);

/// Dequantizes an lp-bit code produced by convert_to_low.
float dequantize_low(std::int32_t q_lp, const QuantParams& params,
                     const ConversionChoice& choice);

/// Round-trip error of re-rendering `q` at lp bits, in dequantized
/// units: |q*Δ - dequantize_low(convert_to_low(q))|.
double conversion_error(std::int32_t q, const QuantParams& params,
                        Precision lp, const ConversionChoice& choice);

}  // namespace drift::core
