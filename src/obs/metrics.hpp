// Per-layer metrics registry: named monotonic counters, gauges and
// fixed-bucket histograms, cheap enough for the hot paths.
//
// Design:
//   - *Handles, not names, on the hot path.*  `Registry::counter("x")`
//     does a mutex-protected map lookup and returns a stable pointer;
//     instrumented code caches the handle (the DRIFT_OBS_* macros use a
//     function-local `static`, so the lookup runs once per site).  The
//     drift_lint `obs` rule rejects lookup-by-string inside loops.
//   - *Per-thread shards merged on scrape.*  A Counter is an array of
//     cache-line-padded relaxed atomics indexed by a thread-local shard
//     id; `add` is one uncontended fetch_add.  Integer addition
//     commutes exactly, so scraped totals are independent of shard
//     assignment, thread count, and merge order (pinned by
//     tests/prop/prop_obs.cpp).
//   - *Layer attribution via scopes.*  `LayerScope` names the layer the
//     current thread is processing; instrumented components write into
//     the active per-layer record (mutex-protected: layer boundaries
//     are not hot).
//   - *Compiles out.*  Under -DDRIFT_OBS_OFF every DRIFT_OBS_* macro
//     expands to nothing, so instrumented kernels are bit-identical and
//     perf-neutral; the registry type itself stays defined so tooling
//     code still compiles.
//
// Scrape output is canonical JSON: keys sorted, integers verbatim,
// doubles printed with a fixed shortest-roundtrip format — byte-stable
// for the golden test in tests/test_obs_golden.cpp.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace drift::obs {

/// Number of per-thread shards per counter.  Threads hash onto shards
/// round-robin; 16 covers the pool sizes the repo runs while keeping a
/// histogram's footprint (shards x buckets) small.
inline constexpr int kShards = 16;

/// Per-shard exact-sample capacity.  While no shard has seen more
/// observations than this, histogram quantiles are computed exactly
/// from the complete sample set; beyond it the estimator falls back to
/// bucket interpolation.
inline constexpr std::int64_t kSamplesPerShard = 256;

namespace detail {
/// Shard index of the calling thread (stable for the thread's life).
int this_thread_shard();

struct alignas(64) ShardSlot {
  std::atomic<std::int64_t> value{0};
};

/// Relaxed CAS min/max — uncontended in practice because shards are
/// per-thread; the loop only spins when >16 threads share a shard.
void atomic_min(std::atomic<std::int64_t>& target, std::int64_t v);
void atomic_max(std::atomic<std::int64_t>& target, std::int64_t v);

/// One shard of a histogram's exact-sample reservoir (see
/// kSamplesPerShard below for the exactness contract).
struct alignas(64) SampleShard {
  std::atomic<std::int64_t> count{0};  ///< observations routed here
  std::atomic<std::int64_t> min{std::numeric_limits<std::int64_t>::max()};
  std::atomic<std::int64_t> max{std::numeric_limits<std::int64_t>::min()};
  std::array<std::atomic<std::int64_t>, kSamplesPerShard> values{};
};
}  // namespace detail

/// Monotonic counter.  add() is hot-path safe; value() merges shards.
class Counter {
 public:
  void add(std::int64_t delta) {
    slots_[static_cast<std::size_t>(detail::this_thread_shard())]
        .value.fetch_add(delta, std::memory_order_relaxed);
  }
  void increment() { add(1); }

  std::int64_t value() const {
    std::int64_t total = 0;
    for (const auto& s : slots_) {
      total += s.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  void reset() {
    for (auto& s : slots_) s.value.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<detail::ShardSlot, kShards> slots_{};
};

/// Last-write-wins double gauge (per-run settings, ratios).  Gauges are
/// set at layer granularity, never inside kernels, so a single atomic
/// suffices.
class Gauge {
 public:
  void set(double v) { bits_.store(encode(v), std::memory_order_relaxed); }
  double value() const {
    return decode(bits_.load(std::memory_order_relaxed));
  }
  void reset() { set(0.0); }

 private:
  static std::uint64_t encode(double v);
  static double decode(std::uint64_t bits);
  std::atomic<std::uint64_t> bits_{0};
};

/// Fixed-bucket histogram.  Bucket i counts observations in
/// (bound[i-1], bound[i]]; a final overflow bucket catches everything
/// above the last bound.  observe() is a bucket add, a reservoir
/// append while the shard reservoir has room, and a min/max update —
/// all relaxed sharded atomics, still hot-path safe.
class Histogram {
 public:
  explicit Histogram(std::vector<std::int64_t> upper_bounds);

  void observe(std::int64_t v) {
    buckets_[bucket_index(v)].add(1);
    detail::SampleShard& shard =
        samples_[static_cast<std::size_t>(detail::this_thread_shard())];
    const std::int64_t slot =
        shard.count.fetch_add(1, std::memory_order_relaxed);
    if (slot < kSamplesPerShard) {
      shard.values[static_cast<std::size_t>(slot)].store(
          v, std::memory_order_relaxed);
    }
    detail::atomic_min(shard.min, v);
    detail::atomic_max(shard.max, v);
  }

  const std::vector<std::int64_t>& upper_bounds() const { return bounds_; }
  /// Merged per-bucket counts; size is upper_bounds().size() + 1 (the
  /// trailing entry is the overflow bucket).
  std::vector<std::int64_t> counts() const;
  std::int64_t total_count() const;

  /// Smallest / largest observation so far (0 when empty).
  std::int64_t min_observed() const;
  std::int64_t max_observed() const;

  /// True while every shard reservoir still holds all of its
  /// observations, i.e. quantile() answers from the exact sorted
  /// sample set.
  bool quantiles_exact() const;

  /// The p-quantile (p in [0, 1]) at rank ceil(p * N), 1-based, so
  /// p = 0 names the minimum and p = 1 the maximum.  Exact while
  /// quantiles_exact(); afterwards interpolated inside the bucket that
  /// holds the rank, clamped to [min_observed, max_observed] — the
  /// estimate and the true order statistic always share that bucket,
  /// so the error is bounded by the (clamped) bucket width (pinned by
  /// tests/obs/prop_obs.cpp against the src/ref sorted-vector oracle).
  /// Monotone in p by construction; 0 when empty.
  double quantile(double p) const;

  void reset();

 private:
  std::size_t bucket_index(std::int64_t v) const;
  std::vector<std::int64_t> bounds_;       ///< ascending, strict
  std::vector<Counter> buckets_;           ///< bounds.size() + 1
  std::array<detail::SampleShard, kShards> samples_{};
};

/// One layer's scraped attribution record.  All fields are filled by
/// the instrumentation macros in the components; deterministic for a
/// fixed seed.
struct LayerRecord {
  std::string layer;
  // Selector / quant engine (activation operand).
  std::int64_t subtensors_total = 0;
  std::int64_t subtensors_low = 0;
  std::int64_t elements_total = 0;
  std::int64_t elements_low = 0;
  // Scheduler (Eq. 8 split + Eq. 7 predicted latencies).
  std::int64_t sched_r = -1;
  std::int64_t sched_c = -1;
  std::array<std::int64_t, 4> sched_latency{};  ///< hh, hl, lh, ll
  std::int64_t sched_makespan = 0;
  std::array<std::int64_t, 4> tile_count{};     ///< per-class weight tiles
  // Cycle accounting.
  std::int64_t compute_cycles = 0;
  std::int64_t stall_cycles = 0;
  std::int64_t dram_bytes = 0;

  /// 4-bit coverage ratio (Eq. 5/6 acceptance, element-weighted).
  double coverage() const {
    return elements_total > 0
               ? static_cast<double>(elements_low) /
                     static_cast<double>(elements_total)
               : 0.0;
  }
};

// ---------------------------------------------------------------------
// Run metadata (artifact schema v2).
// ---------------------------------------------------------------------

/// Version stamped into every metrics artifact.  v2 added the "meta"
/// block (git sha, backend, cpu_features, thread count, obs/scalar
/// flags) and histogram min/max/quantiles; v1 artifacts carry neither.
inline constexpr int kMetricsSchemaVersion = 2;

/// Fills in the metadata keys only the registering component knows
/// (e.g. the SIMD backend registers backend/cpu_features/force_scalar
/// from src/nn/simd/kernel_dispatch.cpp).  Providers run at scrape
/// time, so toggled state (force-scalar, pool resizes) is reported as
/// of the scrape.  Not available under DRIFT_OBS_OFF?  It is: the meta
/// block survives obs-off builds so even empty artifacts say where
/// they came from.
using MetadataProvider = void (*)(std::map<std::string, std::string>&);
void register_run_metadata_provider(MetadataProvider provider);

/// Explicit per-run override/extension (e.g. a workload name); wins
/// over built-ins and providers.
// drift-lint: allow(dead-api) — the override hook of the run-metadata
// API; drivers stamp workload names through it from outside src/obs/.
void set_run_metadata(const std::string& key, std::string value);

/// The merged metadata map: built-ins (git_sha from the build-time
/// DRIFT_GIT_SHA define, obs_off, threads), then registered providers,
/// then set_run_metadata overrides.
std::map<std::string, std::string> run_metadata();

/// Process-wide metric namespace.
class Registry {
 public:
  static Registry& global();

  /// Lookup-by-string; returns a stable handle.  Cache the result —
  /// the drift_lint `obs` rule flags calls inside loops.
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  /// First lookup fixes the bucket bounds; later lookups of the same
  /// name ignore `upper_bounds`.
  Histogram* histogram(const std::string& name,
                       std::vector<std::int64_t> upper_bounds);

  /// The record for `layer`, created on first use.  Records keep their
  /// creation order in scrapes.
  LayerRecord* layer_record(const std::string& layer);

  /// Layer attribution for the calling thread (set by LayerScope);
  /// nullptr outside any scope.
  LayerRecord* current_layer();

  /// Canonical JSON of every metric plus the layer records, for the
  /// golden tests and the --metrics-out artifacts (schema v2: see
  /// kMetricsSchemaVersion).  When `prefixes` is non-empty, only
  /// metrics whose name starts with one of them are emitted (layer
  /// records are always included); metadata keys filter as
  /// "meta.<key>", so the golden test's deterministic-prefix list
  /// drops the volatile git sha along with the wall-clock metrics.
  std::string to_json(const std::vector<std::string>& prefixes = {}) const;

  /// Human-readable per-layer table + counter dump (util/table format).
  std::string to_text() const;

  /// Zeroes every counter/gauge/histogram and drops all layer records.
  /// Test-only: not safe concurrently with instrumentation.
  void reset();

 private:
  Registry() = default;
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::vector<std::unique_ptr<LayerRecord>> layers_;
  std::map<std::string, LayerRecord*> layer_index_;
};

/// RAII layer-attribution scope: instrumented components called while
/// a scope is alive write into that layer's record.  Nests by
/// shadowing (inner scope wins, outer restored on exit).
class LayerScope {
 public:
  explicit LayerScope(const std::string& layer);
  ~LayerScope();
  LayerScope(const LayerScope&) = delete;
  LayerScope& operator=(const LayerScope&) = delete;

 private:
  LayerRecord* previous_ = nullptr;
};

/// Writes `content` to `path`; returns false (and logs) on I/O error.
bool write_file(const std::string& path, const std::string& content);

}  // namespace drift::obs

// ---------------------------------------------------------------------
// Instrumentation macros.  Hot-path cost when enabled: one static-init
// guard check + one sharded relaxed fetch_add.  Under DRIFT_OBS_OFF
// they expand to a void cast of nothing, so arguments are not
// evaluated and the instrumented code is bit-identical to the
// uninstrumented build.
// ---------------------------------------------------------------------

#ifndef DRIFT_OBS_OFF

#define DRIFT_OBS_COUNT(name, delta)                                     \
  do {                                                                   \
    static ::drift::obs::Counter* drift_obs_c_ =                         \
        ::drift::obs::Registry::global().counter(name);                  \
    drift_obs_c_->add(delta);                                            \
  } while (0)

#define DRIFT_OBS_GAUGE_SET(name, value)                                 \
  do {                                                                   \
    static ::drift::obs::Gauge* drift_obs_g_ =                           \
        ::drift::obs::Registry::global().gauge(name);                    \
    drift_obs_g_->set(value);                                            \
  } while (0)

/// Observes `value` in the named histogram; the trailing arguments are
/// the upper bucket bounds (used only by the first lookup).
#define DRIFT_OBS_HISTOGRAM(name, value, ...)                            \
  do {                                                                   \
    static ::drift::obs::Histogram* drift_obs_h_ =                       \
        ::drift::obs::Registry::global().histogram(                      \
            name, std::vector<std::int64_t>{__VA_ARGS__});               \
    drift_obs_h_->observe(value);                                        \
  } while (0)

/// Runs the trailing statements with `rec` bound to the current layer
/// record (skipped entirely when no LayerScope is active).
#define DRIFT_OBS_LAYER(rec, ...)                                        \
  do {                                                                   \
    if (::drift::obs::LayerRecord* rec =                                 \
            ::drift::obs::Registry::global().current_layer()) {          \
      __VA_ARGS__;                                                       \
    }                                                                    \
  } while (0)

#ifndef DRIFT_OBS_CONCAT
#define DRIFT_OBS_CONCAT_INNER(a, b) a##b
#define DRIFT_OBS_CONCAT(a, b) DRIFT_OBS_CONCAT_INNER(a, b)
#endif

/// Opens a LayerScope for the rest of the enclosing block.
#define DRIFT_OBS_LAYER_SCOPE(name)                                      \
  ::drift::obs::LayerScope DRIFT_OBS_CONCAT(drift_obs_layer_,            \
                                            __LINE__)(name)

#else  // DRIFT_OBS_OFF: everything compiles out, arguments unevaluated.

#define DRIFT_OBS_COUNT(name, delta) do {} while (0)
#define DRIFT_OBS_GAUGE_SET(name, value) do {} while (0)
#define DRIFT_OBS_HISTOGRAM(name, value, ...) do {} while (0)
#define DRIFT_OBS_LAYER(rec, ...) do {} while (0)
#define DRIFT_OBS_LAYER_SCOPE(name) do {} while (0)

#endif  // DRIFT_OBS_OFF
