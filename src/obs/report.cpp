#include "obs/report.hpp"

#include <cstdlib>
#include <cstring>
#include <mutex>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/args.hpp"
#include "util/logging.hpp"

namespace drift::obs {
namespace {

// State behind the atexit flush.  The handler itself is registered at
// most once per process; what it flushes is whatever request was armed
// most recently and not yet written.  Guarded by a mutex because the
// bench binaries parse flags before spawning worker threads but the
// registry makes no such promise in general.
struct FlushState {
  std::mutex mu;
  bool handler_registered = false;
  bool armed = false;
  ReportOptions pending;
};

FlushState& flush_state() {
  static FlushState state;
  return state;
}

void flush_at_exit() {
  FlushState& state = flush_state();
  ReportOptions pending;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    if (!state.armed) return;
    state.armed = false;
    pending = state.pending;
  }
  DRIFT_LOG_WARN("obs") << "process exiting before artifacts were "
                           "written; flushing partial run data";
  pending.write();
}

void arm_flush(const ReportOptions& opts) {
  if (opts.metrics_path.empty() && opts.trace_path.empty()) return;
  FlushState& state = flush_state();
  std::lock_guard<std::mutex> lock(state.mu);
  state.pending = opts;
  state.armed = true;
  if (!state.handler_registered) {
    state.handler_registered = true;
    std::atexit(flush_at_exit);
  }
}

void disarm_flush() {
  FlushState& state = flush_state();
  std::lock_guard<std::mutex> lock(state.mu);
  state.armed = false;
}

void warn_if_obs_off(const ReportOptions& opts) {
  if (!opts.trace_path.empty()) {
    Tracer::global().set_enabled(true);
#ifdef DRIFT_OBS_OFF
    DRIFT_LOG_WARN("obs") << "--trace-out requested but this binary was "
                             "built with DRIFT_OBS_OFF; the trace will "
                             "be empty";
#endif
  }
}

}  // namespace

ReportOptions ReportOptions::from_args(const Args& args) {
  ReportOptions opts;
  opts.metrics_path = args.get_string("metrics-out", "");
  opts.trace_path = args.get_string("trace-out", "");
  warn_if_obs_off(opts);
  arm_flush(opts);
  return opts;
}

ReportOptions ReportOptions::consume_argv(int& argc, char** argv) {
  ReportOptions opts;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    std::string* target = nullptr;
    const char* flag = nullptr;
    if (std::strncmp(arg, "--metrics-out", 13) == 0) {
      target = &opts.metrics_path;
      flag = arg + 13;
    } else if (std::strncmp(arg, "--trace-out", 11) == 0) {
      target = &opts.trace_path;
      flag = arg + 11;
    }
    if (target != nullptr && flag[0] == '=') {
      *target = flag + 1;
      continue;
    }
    if (target != nullptr && flag[0] == '\0') {
      if (i + 1 < argc) {
        *target = argv[++i];
      }
      continue;
    }
    argv[kept++] = argv[i];
  }
  argc = kept;
  argv[argc] = nullptr;
  warn_if_obs_off(opts);
  arm_flush(opts);
  return opts;
}

bool ReportOptions::write() const {
  disarm_flush();
  bool ok = true;
  if (!metrics_path.empty()) {
    if (write_file(metrics_path, Registry::global().to_json())) {
      DRIFT_LOG_INFO("obs") << "metrics written to " << metrics_path;
    } else {
      ok = false;
    }
  }
  if (!trace_path.empty()) {
    if (Tracer::global().write_chrome_trace(trace_path)) {
      DRIFT_LOG_INFO("obs") << "trace written to " << trace_path;
    } else {
      ok = false;
    }
  }
  return ok;
}

}  // namespace drift::obs
