#include "obs/report.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/args.hpp"
#include "util/logging.hpp"

namespace drift::obs {

ReportOptions ReportOptions::from_args(const Args& args) {
  ReportOptions opts;
  opts.metrics_path = args.get_string("metrics-out", "");
  opts.trace_path = args.get_string("trace-out", "");
  if (!opts.trace_path.empty()) {
    Tracer::global().set_enabled(true);
#ifdef DRIFT_OBS_OFF
    DRIFT_LOG_WARN("obs") << "--trace-out requested but this binary was "
                             "built with DRIFT_OBS_OFF; the trace will "
                             "be empty";
#endif
  }
  return opts;
}

bool ReportOptions::write() const {
  bool ok = true;
  if (!metrics_path.empty()) {
    if (write_file(metrics_path, Registry::global().to_json())) {
      DRIFT_LOG_INFO("obs") << "metrics written to " << metrics_path;
    } else {
      ok = false;
    }
  }
  if (!trace_path.empty()) {
    if (Tracer::global().write_chrome_trace(trace_path)) {
      DRIFT_LOG_INFO("obs") << "trace written to " << trace_path;
    } else {
      ok = false;
    }
  }
  return ok;
}

}  // namespace drift::obs
