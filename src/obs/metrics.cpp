#include "obs/metrics.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/assert.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace drift::obs {

namespace detail {

int this_thread_shard() {
  // Shards are handed out round-robin in thread-creation order; a
  // thread keeps its shard for life, so two adds from the same thread
  // never race beyond the relaxed atomic.
  static std::atomic<int> next{0};
  thread_local const int shard =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

void atomic_min(std::atomic<std::int64_t>& target, std::int64_t v) {
  std::int64_t cur = target.load(std::memory_order_relaxed);
  while (v < cur &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<std::int64_t>& target, std::int64_t v) {
  std::int64_t cur = target.load(std::memory_order_relaxed);
  while (v > cur &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace detail

std::uint64_t Gauge::encode(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof v, "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof bits);
  return bits;
}

double Gauge::decode(std::uint64_t bits) {
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

Histogram::Histogram(std::vector<std::int64_t> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      buckets_(bounds_.size() + 1) {
  DRIFT_CHECK(!bounds_.empty(), "histogram needs at least one bound");
  DRIFT_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                  std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                      bounds_.end(),
              "histogram bounds must be strictly ascending");
}

std::size_t Histogram::bucket_index(std::int64_t v) const {
  // First bound >= v; the overflow bucket catches v beyond the last.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  return static_cast<std::size_t>(it - bounds_.begin());
}

std::vector<std::int64_t> Histogram::counts() const {
  std::vector<std::int64_t> out;
  out.reserve(buckets_.size());
  for (const auto& b : buckets_) out.push_back(b.value());
  return out;
}

std::int64_t Histogram::total_count() const {
  std::int64_t total = 0;
  for (const auto& b : buckets_) total += b.value();
  return total;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.reset();
  for (auto& s : samples_) {
    s.count.store(0, std::memory_order_relaxed);
    s.min.store(std::numeric_limits<std::int64_t>::max(),
                std::memory_order_relaxed);
    s.max.store(std::numeric_limits<std::int64_t>::min(),
                std::memory_order_relaxed);
  }
}

std::int64_t Histogram::min_observed() const {
  std::int64_t m = std::numeric_limits<std::int64_t>::max();
  for (const auto& s : samples_) {
    m = std::min(m, s.min.load(std::memory_order_relaxed));
  }
  return m == std::numeric_limits<std::int64_t>::max() ? 0 : m;
}

std::int64_t Histogram::max_observed() const {
  std::int64_t m = std::numeric_limits<std::int64_t>::min();
  for (const auto& s : samples_) {
    m = std::max(m, s.max.load(std::memory_order_relaxed));
  }
  return m == std::numeric_limits<std::int64_t>::min() ? 0 : m;
}

bool Histogram::quantiles_exact() const {
  for (const auto& s : samples_) {
    if (s.count.load(std::memory_order_relaxed) > kSamplesPerShard) {
      return false;
    }
  }
  return true;
}

double Histogram::quantile(double p) const {
  // Rank of the order statistic this quantile names: ceil(p*N),
  // 1-based, clamped so p<=0 is the minimum and p>=1 the maximum.
  // src/ref's sorted_quantile oracle uses the identical expression, so
  // the exact path and the oracle agree bitwise.
  const std::vector<std::int64_t> bucket_counts = counts();
  std::int64_t total = 0;
  for (const std::int64_t c : bucket_counts) total += c;
  if (total == 0) return 0.0;
  const std::int64_t rank = std::clamp<std::int64_t>(
      static_cast<std::int64_t>(
          std::ceil(p * static_cast<double>(total))),
      1, total);

  if (quantiles_exact()) {
    std::vector<std::int64_t> values;
    values.reserve(static_cast<std::size_t>(total));
    for (const auto& s : samples_) {
      const std::int64_t n = s.count.load(std::memory_order_relaxed);
      for (std::int64_t i = 0; i < n; ++i) {
        values.push_back(
            s.values[static_cast<std::size_t>(i)].load(
                std::memory_order_relaxed));
      }
    }
    // The snapshot raced with concurrent observes?  Scrapes happen at
    // run boundaries, but stay safe: clamp the rank to what we read.
    std::sort(values.begin(), values.end());
    const std::size_t idx = static_cast<std::size_t>(
        std::min<std::int64_t>(rank, static_cast<std::int64_t>(values.size())) -
        1);
    return static_cast<double>(values[idx]);
  }

  // Bucket path: find the bucket holding the rank, then interpolate
  // linearly inside its value range clamped to the observed [min, max].
  // The true order statistic lies in the same clamped range, so the
  // estimate is off by at most that range's width; p=1 still returns
  // the exact maximum (the final nonempty bucket clamps to it).
  const std::int64_t min_v = min_observed();
  const std::int64_t max_v = max_observed();
  std::int64_t cum = 0;
  std::size_t j = 0;
  for (; j < bucket_counts.size(); ++j) {
    if (cum + bucket_counts[j] >= rank) break;
    cum += bucket_counts[j];
  }
  if (j >= bucket_counts.size()) return static_cast<double>(max_v);
  double lo = static_cast<double>(j == 0 ? min_v : bounds_[j - 1]);
  double hi = static_cast<double>(
      j < bounds_.size() ? std::min(bounds_[j], max_v) : max_v);
  lo = std::max(lo, static_cast<double>(min_v));
  if (hi < lo) hi = lo;
  const double f = static_cast<double>(rank - cum) /
                   static_cast<double>(bucket_counts[j]);
  return lo + f * (hi - lo);
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

Counter* Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* Registry::histogram(const std::string& name,
                               std::vector<std::int64_t> upper_bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(upper_bounds));
  return slot.get();
}

LayerRecord* Registry::layer_record(const std::string& layer) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = layer_index_.find(layer);
  if (it != layer_index_.end()) return it->second;
  layers_.push_back(std::make_unique<LayerRecord>());
  layers_.back()->layer = layer;
  layer_index_[layer] = layers_.back().get();
  return layers_.back().get();
}

namespace {

// The active layer record of each thread (LayerScope).  thread_local
// so concurrent LayerScopes on distinct threads attribute correctly;
// a worker thread inside parallel_for carries no scope and therefore
// skips layer attribution (the submitting thread records totals).
thread_local LayerRecord* tl_current_layer = nullptr;

/// Shortest round-trip decimal rendering (std::to_chars) — the same
/// bytes on every conforming implementation, unlike printf("%g").
std::string format_double(double v) {
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  return std::string(buf, res.ptr);
}

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  out += '"';
}

bool matches_prefixes(const std::string& name,
                      const std::vector<std::string>& prefixes) {
  if (prefixes.empty()) return true;
  return std::any_of(prefixes.begin(), prefixes.end(),
                     [&name](const std::string& p) {
                       return name.rfind(p, 0) == 0;
                     });
}

void append_layer_json(std::string& out, const LayerRecord& r) {
  out += "    {";
  append_json_string(out, "layer");
  out += ": ";
  append_json_string(out, r.layer);
  const auto field = [&out](const char* key, std::int64_t v) {
    out += ", ";
    append_json_string(out, key);
    out += ": " + std::to_string(v);
  };
  field("subtensors_total", r.subtensors_total);
  field("subtensors_low", r.subtensors_low);
  field("elements_total", r.elements_total);
  field("elements_low", r.elements_low);
  out += ", \"coverage\": " + format_double(r.coverage());
  field("sched_r", r.sched_r);
  field("sched_c", r.sched_c);
  out += ", \"sched_latency\": [";
  for (std::size_t q = 0; q < r.sched_latency.size(); ++q) {
    out += (q ? ", " : "") + std::to_string(r.sched_latency[q]);
  }
  out += "]";
  field("sched_makespan", r.sched_makespan);
  out += ", \"tile_count\": [";
  for (std::size_t q = 0; q < r.tile_count.size(); ++q) {
    out += (q ? ", " : "") + std::to_string(r.tile_count[q]);
  }
  out += "]";
  field("compute_cycles", r.compute_cycles);
  field("stall_cycles", r.stall_cycles);
  field("dram_bytes", r.dram_bytes);
  out += "}";
}

/// Providers and overrides behind run_metadata(); function-local so
/// static-init-order is safe for providers registered from other
/// translation units' global initializers.
struct MetadataState {
  std::mutex mutex;
  std::vector<MetadataProvider> providers;
  std::map<std::string, std::string> overrides;
};

MetadataState& metadata_state() {
  static MetadataState state;
  return state;
}

}  // namespace

void register_run_metadata_provider(MetadataProvider provider) {
  MetadataState& state = metadata_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.providers.push_back(provider);
}

void set_run_metadata(const std::string& key, std::string value) {
  MetadataState& state = metadata_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.overrides[key] = std::move(value);
}

std::map<std::string, std::string> run_metadata() {
  std::map<std::string, std::string> meta;
  // Build-time provenance: DRIFT_GIT_SHA is stamped by src/obs/
  // CMakeLists at configure time (stale until the next CMake rerun,
  // which run-diff consumers tolerate — see DESIGN.md).
#ifdef DRIFT_GIT_SHA
  meta["git_sha"] = DRIFT_GIT_SHA;
#else
  meta["git_sha"] = "unknown";
#endif
#ifdef DRIFT_OBS_OFF
  meta["obs_off"] = "1";
#else
  meta["obs_off"] = "0";
#endif
  meta["threads"] =
      std::to_string(util::ThreadPool::instance().num_threads());
  MetadataState& state = metadata_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  for (const MetadataProvider provider : state.providers) provider(meta);
  for (const auto& [key, value] : state.overrides) meta[key] = value;
  return meta;
}

LayerRecord* Registry::current_layer() { return tl_current_layer; }

std::string Registry::to_json(const std::vector<std::string>& prefixes) const {
  // Collected before taking the registry lock: providers may touch
  // other singletons (dispatch tables, the thread pool).
  const std::map<std::string, std::string> meta = run_metadata();
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\n  \"schema_version\": " +
                    std::to_string(kMetricsSchemaVersion) + ",\n";
  out += "  \"meta\": {";
  bool first = true;
  for (const auto& [key, value] : meta) {
    if (!matches_prefixes("meta." + key, prefixes)) continue;
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_json_string(out, key);
    out += ": ";
    append_json_string(out, value);
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"counters\": {";
  first = true;
  for (const auto& [name, c] : counters_) {
    if (!matches_prefixes(name, prefixes)) continue;
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_json_string(out, name);
    out += ": " + std::to_string(c->value());
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!matches_prefixes(name, prefixes)) continue;
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_json_string(out, name);
    out += ": " + format_double(g->value());
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!matches_prefixes(name, prefixes)) continue;
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_json_string(out, name);
    out += ": {\"upper_bounds\": [";
    const auto& bounds = h->upper_bounds();
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      out += (i ? ", " : "") + std::to_string(bounds[i]);
    }
    out += "], \"counts\": [";
    const auto counts = h->counts();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      out += (i ? ", " : "") + std::to_string(counts[i]);
    }
    const std::int64_t total = h->total_count();
    out += "], \"total\": " + std::to_string(total);
    if (total > 0) {
      out += ", \"min\": " + std::to_string(h->min_observed());
      out += ", \"max\": " + std::to_string(h->max_observed());
      out += ", \"quantiles\": {";
      static constexpr struct {
        const char* key;
        double p;
      } kQuantiles[] = {{"p50", 0.50}, {"p90", 0.90}, {"p95", 0.95},
                        {"p99", 0.99}, {"p99.9", 0.999}};
      for (std::size_t q = 0; q < std::size(kQuantiles); ++q) {
        out += q ? ", " : "";
        append_json_string(out, kQuantiles[q].key);
        out += ": " + format_double(h->quantile(kQuantiles[q].p));
      }
      out += "}, \"exact\": ";
      out += h->quantiles_exact() ? "true" : "false";
    }
    out += "}";
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"layers\": [";
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    out += i ? ",\n" : "\n";
    append_layer_json(out, *layers_[i]);
  }
  out += layers_.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

std::string Registry::to_text() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  TextTable layer_table({"layer", "subtensors", "low", "coverage", "r/c",
                         "makespan", "cycles", "stalls", "DRAM bytes"});
  for (const auto& l : layers_) {
    layer_table.add_row(
        {l->layer, std::to_string(l->subtensors_total),
         std::to_string(l->subtensors_low), TextTable::pct(l->coverage()),
         std::to_string(l->sched_r) + "/" + std::to_string(l->sched_c),
         std::to_string(l->sched_makespan),
         std::to_string(l->compute_cycles), std::to_string(l->stall_cycles),
         std::to_string(l->dram_bytes)});
  }
  if (!layers_.empty()) {
    os << "per-layer metrics:\n" << layer_table.to_string() << "\n";
  }
  TextTable counter_table({"counter", "value"});
  for (const auto& [name, c] : counters_) {
    counter_table.add_row({name, std::to_string(c->value())});
  }
  if (!counters_.empty()) {
    os << "counters:\n" << counter_table.to_string();
  }
  return os.str();
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
  layers_.clear();
  layer_index_.clear();
}

LayerScope::LayerScope(const std::string& layer) {
  previous_ = tl_current_layer;
  tl_current_layer = Registry::global().layer_record(layer);
}

LayerScope::~LayerScope() { tl_current_layer = previous_; }

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    DRIFT_LOG_ERROR("obs") << "cannot open " << path << " for writing";
    return false;
  }
  out << content;
  return static_cast<bool>(out);
}

}  // namespace drift::obs
