#include "obs/metrics.hpp"

#include <algorithm>
#include <charconv>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/assert.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"

namespace drift::obs {

namespace detail {

int this_thread_shard() {
  // Shards are handed out round-robin in thread-creation order; a
  // thread keeps its shard for life, so two adds from the same thread
  // never race beyond the relaxed atomic.
  static std::atomic<int> next{0};
  thread_local const int shard =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

}  // namespace detail

std::uint64_t Gauge::encode(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof v, "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof bits);
  return bits;
}

double Gauge::decode(std::uint64_t bits) {
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

Histogram::Histogram(std::vector<std::int64_t> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      buckets_(bounds_.size() + 1) {
  DRIFT_CHECK(!bounds_.empty(), "histogram needs at least one bound");
  DRIFT_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                  std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                      bounds_.end(),
              "histogram bounds must be strictly ascending");
}

std::size_t Histogram::bucket_index(std::int64_t v) const {
  // First bound >= v; the overflow bucket catches v beyond the last.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  return static_cast<std::size_t>(it - bounds_.begin());
}

std::vector<std::int64_t> Histogram::counts() const {
  std::vector<std::int64_t> out;
  out.reserve(buckets_.size());
  for (const auto& b : buckets_) out.push_back(b.value());
  return out;
}

std::int64_t Histogram::total_count() const {
  std::int64_t total = 0;
  for (const auto& b : buckets_) total += b.value();
  return total;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.reset();
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

Counter* Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* Registry::histogram(const std::string& name,
                               std::vector<std::int64_t> upper_bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(upper_bounds));
  return slot.get();
}

LayerRecord* Registry::layer_record(const std::string& layer) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = layer_index_.find(layer);
  if (it != layer_index_.end()) return it->second;
  layers_.push_back(std::make_unique<LayerRecord>());
  layers_.back()->layer = layer;
  layer_index_[layer] = layers_.back().get();
  return layers_.back().get();
}

namespace {

// The active layer record of each thread (LayerScope).  thread_local
// so concurrent LayerScopes on distinct threads attribute correctly;
// a worker thread inside parallel_for carries no scope and therefore
// skips layer attribution (the submitting thread records totals).
thread_local LayerRecord* tl_current_layer = nullptr;

/// Shortest round-trip decimal rendering (std::to_chars) — the same
/// bytes on every conforming implementation, unlike printf("%g").
std::string format_double(double v) {
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  return std::string(buf, res.ptr);
}

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  out += '"';
}

bool matches_prefixes(const std::string& name,
                      const std::vector<std::string>& prefixes) {
  if (prefixes.empty()) return true;
  return std::any_of(prefixes.begin(), prefixes.end(),
                     [&name](const std::string& p) {
                       return name.rfind(p, 0) == 0;
                     });
}

void append_layer_json(std::string& out, const LayerRecord& r) {
  out += "    {";
  append_json_string(out, "layer");
  out += ": ";
  append_json_string(out, r.layer);
  const auto field = [&out](const char* key, std::int64_t v) {
    out += ", ";
    append_json_string(out, key);
    out += ": " + std::to_string(v);
  };
  field("subtensors_total", r.subtensors_total);
  field("subtensors_low", r.subtensors_low);
  field("elements_total", r.elements_total);
  field("elements_low", r.elements_low);
  out += ", \"coverage\": " + format_double(r.coverage());
  field("sched_r", r.sched_r);
  field("sched_c", r.sched_c);
  out += ", \"sched_latency\": [";
  for (std::size_t q = 0; q < r.sched_latency.size(); ++q) {
    out += (q ? ", " : "") + std::to_string(r.sched_latency[q]);
  }
  out += "]";
  field("sched_makespan", r.sched_makespan);
  out += ", \"tile_count\": [";
  for (std::size_t q = 0; q < r.tile_count.size(); ++q) {
    out += (q ? ", " : "") + std::to_string(r.tile_count[q]);
  }
  out += "]";
  field("compute_cycles", r.compute_cycles);
  field("stall_cycles", r.stall_cycles);
  field("dram_bytes", r.dram_bytes);
  out += "}";
}

}  // namespace

LayerRecord* Registry::current_layer() { return tl_current_layer; }

std::string Registry::to_json(const std::vector<std::string>& prefixes) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!matches_prefixes(name, prefixes)) continue;
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_json_string(out, name);
    out += ": " + std::to_string(c->value());
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!matches_prefixes(name, prefixes)) continue;
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_json_string(out, name);
    out += ": " + format_double(g->value());
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!matches_prefixes(name, prefixes)) continue;
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_json_string(out, name);
    out += ": {\"upper_bounds\": [";
    const auto& bounds = h->upper_bounds();
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      out += (i ? ", " : "") + std::to_string(bounds[i]);
    }
    out += "], \"counts\": [";
    const auto counts = h->counts();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      out += (i ? ", " : "") + std::to_string(counts[i]);
    }
    out += "], \"total\": " + std::to_string(h->total_count()) + "}";
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"layers\": [";
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    out += i ? ",\n" : "\n";
    append_layer_json(out, *layers_[i]);
  }
  out += layers_.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

std::string Registry::to_text() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  TextTable layer_table({"layer", "subtensors", "low", "coverage", "r/c",
                         "makespan", "cycles", "stalls", "DRAM bytes"});
  for (const auto& l : layers_) {
    layer_table.add_row(
        {l->layer, std::to_string(l->subtensors_total),
         std::to_string(l->subtensors_low), TextTable::pct(l->coverage()),
         std::to_string(l->sched_r) + "/" + std::to_string(l->sched_c),
         std::to_string(l->sched_makespan),
         std::to_string(l->compute_cycles), std::to_string(l->stall_cycles),
         std::to_string(l->dram_bytes)});
  }
  if (!layers_.empty()) {
    os << "per-layer metrics:\n" << layer_table.to_string() << "\n";
  }
  TextTable counter_table({"counter", "value"});
  for (const auto& [name, c] : counters_) {
    counter_table.add_row({name, std::to_string(c->value())});
  }
  if (!counters_.empty()) {
    os << "counters:\n" << counter_table.to_string();
  }
  return os.str();
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
  layers_.clear();
  layer_index_.clear();
}

LayerScope::LayerScope(const std::string& layer) {
  previous_ = tl_current_layer;
  tl_current_layer = Registry::global().layer_record(layer);
}

LayerScope::~LayerScope() { tl_current_layer = previous_; }

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    DRIFT_LOG_ERROR("obs") << "cannot open " << path << " for writing";
    return false;
  }
  out << content;
  return static_cast<bool>(out);
}

}  // namespace drift::obs
