// Scoped-span tracer emitting Chrome trace_event JSON.
//
// Two time domains share one trace file, on separate pids so
// chrome://tracing (or Perfetto) renders them as separate process
// groups:
//
//   pid 0 — *host wall clock*: DRIFT_OBS_SPAN scopes (B/E pairs) from
//           the real pipeline and thread-pool workers, microsecond
//           timestamps from a monotonic clock.
//   pid 1 — *simulated cycles*: complete (X) events whose timestamps
//           are model cycles (1 cycle == 1 "µs"), emitted by the
//           accelerator timeline so the double-buffered DRAM/compute
//           schedule is inspectable on the same timeline UI.
//
// Collection is off by default: a disabled tracer costs one relaxed
// atomic load per span site.  Events buffer per thread (mutex only at
// first touch and at write time), so spans are safe from pool workers.
// Under DRIFT_OBS_OFF the macros expand to nothing.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace drift::obs {

/// Microseconds from a process-local monotonic clock (first call is 0).
std::int64_t trace_now_us();

/// One trace_event entry.  `dur` is only meaningful for ph == 'X'.
struct TraceEvent {
  std::string name;
  const char* category = "drift";
  char ph = 'B';  ///< 'B' begin, 'E' end, 'X' complete, 'i' instant
  std::int64_t ts = 0;
  std::int64_t dur = 0;
  int pid = 0;
  std::uint32_t tid = 0;
};

class Tracer {
 public:
  static Tracer& global();

  /// Collection gate.  Spans recorded while disabled are dropped.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Records a begin/end pair on the calling thread's wall-clock track.
  void begin(const char* name);
  void end(const char* name);

  /// Records a complete (X) event with explicit simulated timestamps
  /// on the given pid-1 track (see sim_track).
  void complete(const std::string& name, std::uint32_t tid, std::int64_t ts,
                std::int64_t dur);

  /// Stable tid for a named simulated track (created on first use).
  std::uint32_t sim_track(const std::string& name);

  /// Serializes every buffered event as Chrome trace JSON (one event
  /// per line, thread buffers in registration order) and returns it.
  std::string to_chrome_json() const;

  /// Writes to_chrome_json() to `path`.
  bool write_chrome_trace(const std::string& path) const;

  /// Drops all buffered events and named tracks.  Test-only.
  void reset();

 private:
  Tracer() = default;
  struct ThreadBuffer {
    std::uint32_t tid = 0;
    std::vector<TraceEvent> events;
    std::mutex mutex;  ///< guards events vs. concurrent serialization
  };
  ThreadBuffer& this_thread_buffer();

  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
  std::vector<std::pair<std::string, std::uint32_t>> sim_tracks_;
  std::uint32_t next_tid_ = 0;
  std::uint32_t next_sim_tid_ = 0;
};

/// RAII wall-clock span.  The end event is emitted iff the begin was
/// (tracer toggled mid-span still yields balanced B/E pairs).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) {
    if (Tracer::global().enabled()) {
      name_ = name;
      Tracer::global().begin(name);
    }
  }
  ~ScopedSpan() {
    if (name_ != nullptr) Tracer::global().end(name_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_ = nullptr;
};

}  // namespace drift::obs

#ifndef DRIFT_OBS_OFF

#ifndef DRIFT_OBS_CONCAT
#define DRIFT_OBS_CONCAT_INNER(a, b) a##b
#define DRIFT_OBS_CONCAT(a, b) DRIFT_OBS_CONCAT_INNER(a, b)
#endif
/// Wall-clock span covering the rest of the enclosing block.
#define DRIFT_OBS_SPAN(name) \
  ::drift::obs::ScopedSpan DRIFT_OBS_CONCAT(drift_obs_span_, __LINE__)(name)

#else

#define DRIFT_OBS_SPAN(name) do {} while (0)

#endif  // DRIFT_OBS_OFF
