#include "obs/trace.hpp"

#include <chrono>
#include <utility>

#include "obs/metrics.hpp"
#include "util/assert.hpp"

namespace drift::obs {

std::int64_t trace_now_us() {
  // drift-lint: allow(random) — observability timestamps annotate trace
  // spans only; no simulation or selection decision ever reads them.
  static const auto origin = std::chrono::steady_clock::now();
  // drift-lint: allow(random) — same: wall-clock span bounds feed the
  // Chrome trace artifact, never any computed result.
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(now - origin)
      .count();
}

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

Tracer::ThreadBuffer& Tracer::this_thread_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer;
  // A new thread registers its buffer once; the tracer keeps a shared
  // reference so events survive thread exit until serialization.
  if (!buffer) {
    buffer = std::make_shared<ThreadBuffer>();
    std::lock_guard<std::mutex> lock(mutex_);
    buffer->tid = next_tid_++;
    buffers_.push_back(buffer);
  }
  return *buffer;
}

void Tracer::begin(const char* name) {
  ThreadBuffer& buf = this_thread_buffer();
  std::lock_guard<std::mutex> lock(buf.mutex);
  buf.events.push_back(
      TraceEvent{name, "drift", 'B', trace_now_us(), 0, 0, buf.tid});
}

void Tracer::end(const char* name) {
  ThreadBuffer& buf = this_thread_buffer();
  std::lock_guard<std::mutex> lock(buf.mutex);
  buf.events.push_back(
      TraceEvent{name, "drift", 'E', trace_now_us(), 0, 0, buf.tid});
}

void Tracer::complete(const std::string& name, std::uint32_t tid,
                      std::int64_t ts, std::int64_t dur) {
  if (!enabled()) return;
  DRIFT_CHECK(dur >= 0, "complete event duration must be non-negative");
  ThreadBuffer& buf = this_thread_buffer();
  std::lock_guard<std::mutex> lock(buf.mutex);
  buf.events.push_back(TraceEvent{name, "sim", 'X', ts, dur, 1, tid});
}

std::uint32_t Tracer::sim_track(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [existing, tid] : sim_tracks_) {
    if (existing == name) return tid;
  }
  sim_tracks_.emplace_back(name, next_sim_tid_);
  return next_sim_tid_++;
}

namespace {

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  out += '"';
}

void append_event(std::string& out, const TraceEvent& e) {
  out += "{\"name\": ";
  append_json_string(out, e.name);
  out += ", \"cat\": \"";
  out += e.category;
  out += "\", \"ph\": \"";
  out += e.ph;
  out += "\", \"ts\": " + std::to_string(e.ts);
  if (e.ph == 'X') out += ", \"dur\": " + std::to_string(e.dur);
  out += ", \"pid\": " + std::to_string(e.pid) +
         ", \"tid\": " + std::to_string(e.tid) + "}";
}

}  // namespace

std::string Tracer::to_chrome_json() const {
  // Snapshot the buffer list, then serialize each buffer under its own
  // lock; one event per line so tests can parse without a JSON library.
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::vector<std::pair<std::string, std::uint32_t>> tracks;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    buffers = buffers_;
    tracks = sim_tracks_;
  }
  std::string out = "{\"traceEvents\": [";
  bool first = true;
  const auto emit = [&out, &first](const TraceEvent& e) {
    out += first ? "\n" : ",\n";
    first = false;
    append_event(out, e);
  };
  // Track-name metadata so the UI labels the simulated rows.
  for (const auto& [name, tid] : tracks) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": " +
           std::to_string(tid) + ", \"args\": {\"name\": ";
    append_json_string(out, name);
    out += "}}";
  }
  for (const auto& buf : buffers) {
    std::lock_guard<std::mutex> lock(buf->mutex);
    for (const TraceEvent& e : buf->events) emit(e);
  }
  out += first ? "]}\n" : "\n]}\n";
  return out;
}

bool Tracer::write_chrome_trace(const std::string& path) const {
  return write_file(path, to_chrome_json());
}

void Tracer::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& buf : buffers_) {
    std::lock_guard<std::mutex> buf_lock(buf->mutex);
    buf->events.clear();
  }
  sim_tracks_.clear();
  next_sim_tid_ = 0;
}

}  // namespace drift::obs
