// Shared --metrics-out / --trace-out handling for the examples and
// bench binaries, so every CLI exposes the same artifact surface.
//
// Usage in a main():
//   auto artifacts = obs::ReportOptions::from_args(args);  // enables tracing
//   ... run the pipeline ...
//   artifacts.write();                                     // emits the files
//
// Both functions are compiled in every build; under DRIFT_OBS_OFF the
// registry and tracer are simply empty, so the artifacts degrade to
// empty scrapes rather than breaking the CLI contract.
#pragma once

#include <string>

namespace drift {
class Args;
}  // namespace drift

namespace drift::obs {

/// Where (if anywhere) to write the scraped metrics and Chrome trace.
struct ReportOptions {
  std::string metrics_path;  ///< --metrics-out; empty means "don't".
  std::string trace_path;    ///< --trace-out; empty means "don't".

  /// Reads --metrics-out and --trace-out from `args` and, when a trace
  /// was requested, turns span collection on for the whole run.
  static ReportOptions from_args(const Args& args);

  /// Writes the requested artifacts (canonical metrics JSON, Chrome
  /// trace JSON).  Returns false if any requested write failed.
  bool write() const;
};

}  // namespace drift::obs
