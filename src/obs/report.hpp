// Shared --metrics-out / --trace-out handling for the examples and
// bench binaries, so every CLI exposes the same artifact surface.
//
// Usage in a main():
//   auto artifacts = obs::ReportOptions::from_args(args);  // enables tracing
//   ... run the pipeline ...
//   artifacts.write();                                     // emits the files
//
// Parsing a request also arms an atexit flush: if the binary exits
// (normally or via exit()) before the explicit write() call — a thrown
// DRIFT_CHECK, an early return, a failed example run — the requested
// artifacts are still written from whatever the registry and tracer
// hold at that point, so a crashed run leaves a partial artifact for
// drift_report triage.  Signal kills (SIGKILL/SIGSEGV) and abort()
// still lose the tail: atexit handlers do not run there.
//
// Both functions are compiled in every build; under DRIFT_OBS_OFF the
// registry and tracer are simply empty, so the artifacts degrade to
// empty scrapes rather than breaking the CLI contract.
#pragma once

#include <string>

namespace drift {
class Args;
}  // namespace drift

namespace drift::obs {

/// Where (if anywhere) to write the scraped metrics and Chrome trace.
struct ReportOptions {
  std::string metrics_path;  ///< --metrics-out; empty means "don't".
  std::string trace_path;    ///< --trace-out; empty means "don't".

  /// Reads --metrics-out and --trace-out from `args` and, when a trace
  /// was requested, turns span collection on for the whole run.  Arms
  /// the atexit flush (see header comment).
  static ReportOptions from_args(const Args& args);

  /// Same contract as from_args, for binaries whose remaining argv is
  /// handed to another flag parser (google-benchmark rejects flags it
  /// does not recognize): parses AND removes --metrics-out/--trace-out
  /// in both --flag=value and --flag value forms, compacting argv in
  /// place and updating argc (argv[argc] is reset to nullptr).
  static ReportOptions consume_argv(int& argc, char** argv);

  /// Writes the requested artifacts (canonical metrics JSON, Chrome
  /// trace JSON) and disarms the atexit flush.  Returns false if any
  /// requested write failed.
  bool write() const;
};

}  // namespace drift::obs
