// Per-layer precision mixes for the hardware benches.
//
// The performance/energy experiments run full-size models (up to
// OPT-6.7B), which cannot be materialized element-by-element on a
// laptop.  What the hardware models actually need per GEMM is:
//   (a) the class split — how many activation rows / weight channels
//       run at each precision (feeds the Drift scheduler), and
//   (b) the *in-order row pattern* of low/high activation rows (feeds
//       the DRQ stall model: scattered high rows stall its wavefront).
// Both are produced by running the real selection algorithms (Drift's
// Eq. 5/6, DRQ's region criterion) on per-sub-tensor statistics sampled
// from the model's distribution profile (nn/synthetic.hpp), exactly the
// statistics the hardware pooling unit would compute.
#pragma once

#include <cstdint>
#include <vector>

#include "core/drq_quantizer.hpp"
#include "core/layer_work.hpp"
#include "core/selector.hpp"
#include "nn/synthetic.hpp"
#include "nn/workload.hpp"
#include "util/rng.hpp"

namespace drift::nn {

/// Which algorithm generates the mix.
enum class MixAlgorithm { kStaticInt8, kDrq, kDrift };

std::string to_string(MixAlgorithm algo);

/// Mix generation parameters.
struct MixConfig {
  MixAlgorithm algo = MixAlgorithm::kDrift;
  core::SelectorConfig drift{};  ///< Drift selector (hp/lp; δ when fixed)
  core::DrqConfig drq{};
  bool dynamic_weights = true;   ///< Drift only; DRQ/INT8 weights stay 8-bit
  /// Drift: choose each operand's δ automatically under an excess-noise
  /// budget (core/noise_budget.hpp) instead of a fixed δ.
  bool auto_threshold = true;
  double noise_budget = 0.05;
  std::uint64_t seed = 1;
};

/// One GEMM's resolved precision structure.
struct LayerMix {
  LayerGemm layer;
  core::LayerWork work;            ///< class split for the scheduler
  std::vector<bool> row_is_low;    ///< in-order activation row pattern
  double act_low_fraction = 0.0;   ///< m_low / M
  double weight_low_fraction = 0.0;
};

/// Builds the mix of every layer in a workload.
std::vector<LayerMix> build_mixes(const WorkloadSpec& spec,
                                  const MixConfig& config);

// Per-operand pattern builders.  build_mixes is composed from these;
// the serving layer (src/serve/) also calls them directly to give every
// in-flight request its own activation pattern against the tenant's
// canonical weight pattern.  Each builder consumes `rng` in a fixed
// order, so calling build_act_pattern then build_weight_pattern with
// one per-layer rng reproduces build_mixes exactly.

/// In-order low/high pattern of one layer's activation rows: samples
/// per-sub-tensor stats from `act_profile` and classifies them with the
/// configured algorithm.  Convolution GEMM rows stream
/// region-block-ordered, so decisions apply to blocks of consecutive
/// rows; token streams decide per row.
std::vector<bool> build_act_pattern(const LayerGemm& layer, Rng& rng,
                                    const SubTensorScaleProfile& act_profile,
                                    const MixConfig& config);

/// Low/high pattern of the weight channels (or of the second activation
/// operand for attention GEMMs, which is always dynamic).
std::vector<bool> build_weight_pattern(const LayerGemm& layer, Rng& rng,
                                       const WorkloadSpec& spec,
                                       const MixConfig& config);

/// Assembles the LayerWork class split + fractions from the two operand
/// patterns.
LayerMix assemble_mix(const LayerGemm& layer, std::vector<bool> row_is_low,
                      const std::vector<bool>& col_is_low,
                      const MixConfig& config);

/// MAC-weighted mean activation low fraction across a mix set.
double overall_act_low_fraction(const std::vector<LayerMix>& mixes);

}  // namespace drift::nn
