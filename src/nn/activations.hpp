// Elementwise nonlinearities and softmax.
#pragma once

#include "nn/layer.hpp"

namespace drift::nn {

/// ReLU over any shape.
class ReLU : public Layer {
 public:
  explicit ReLU(std::string name) : name_(std::move(name)) {}
  TensorF forward(const TensorF& input, QuantEngine& engine) override;
  const std::string& name() const override { return name_; }

 private:
  std::string name_;
};

/// Tanh-approximation GELU over any shape.
class GELU : public Layer {
 public:
  explicit GELU(std::string name) : name_(std::move(name)) {}
  TensorF forward(const TensorF& input, QuantEngine& engine) override;
  const std::string& name() const override { return name_; }

 private:
  std::string name_;
};

/// Row-wise softmax layer over a [M, N] tensor (wraps softmax_rows).
class Softmax : public Layer {
 public:
  explicit Softmax(std::string name) : name_(std::move(name)) {}
  TensorF forward(const TensorF& input, QuantEngine& engine) override;
  const std::string& name() const override { return name_; }

 private:
  std::string name_;
};

/// Numerically-stable softmax over the last axis of a [M, N] tensor.
TensorF softmax_rows(const TensorF& x);

/// Stand-alone scalar helpers (used by tests and attention).
float gelu_value(float x);

}  // namespace drift::nn
