#include "nn/activations.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "util/assert.hpp"

namespace drift::nn {

TensorF ReLU::forward(const TensorF& input, QuantEngine&) {
  DRIFT_OBS_LAYER_SCOPE(name_);
  TensorF out = input;
  for (float& v : out.data()) v = std::max(v, 0.0f);
  return out;
}

float gelu_value(float x) {
  constexpr float kSqrt2OverPi = 0.7978845608f;
  const float inner = kSqrt2OverPi * (x + 0.044715f * x * x * x);
  return 0.5f * x * (1.0f + std::tanh(inner));
}

TensorF GELU::forward(const TensorF& input, QuantEngine&) {
  DRIFT_OBS_LAYER_SCOPE(name_);
  TensorF out = input;
  for (float& v : out.data()) v = gelu_value(v);
  return out;
}

TensorF Softmax::forward(const TensorF& input, QuantEngine&) {
  DRIFT_OBS_LAYER_SCOPE(name_);
  return softmax_rows(input);
}

TensorF softmax_rows(const TensorF& x) {
  DRIFT_CHECK(x.shape().rank() == 2, "softmax_rows expects [M, N]");
  const std::int64_t M = x.shape().dim(0);
  const std::int64_t N = x.shape().dim(1);
  TensorF out(x.shape());
  for (std::int64_t i = 0; i < M; ++i) {
    auto row_in = x.row(i);
    auto row_out = out.row(i);
    float peak = row_in[0];
    for (float v : row_in) peak = std::max(peak, v);
    double denom = 0.0;
    for (std::int64_t j = 0; j < N; ++j) {
      const double e = std::exp(static_cast<double>(row_in[
          static_cast<std::size_t>(j)] - peak));
      row_out[static_cast<std::size_t>(j)] = static_cast<float>(e);
      denom += e;
    }
    for (float& v : row_out) v = static_cast<float>(v / denom);
  }
  return out;
}

}  // namespace drift::nn
