#include "nn/quant_engine.hpp"

#include "core/noise_budget.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"
#include "util/thread_pool.hpp"

namespace drift::nn {

namespace {

// Per-tensor static INT8 rendering (elementwise, embarrassingly
// parallel).
TensorF render_static_int8(const TensorF& x, const core::QuantParams& params) {
  TensorF out(x.shape());
  auto src = x.data();
  auto dst = out.data();
  util::parallel_for(0, static_cast<std::int64_t>(src.size()), 4096,
                     [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      const auto s = static_cast<std::size_t>(i);
      dst[s] = core::dequantize_value(core::quantize_value(src[s], params),
                                      params);
    }
  });
  return out;
}

}  // namespace

std::string to_string(QuantMode mode) {
  switch (mode) {
    case QuantMode::kFloat32: return "FP32";
    case QuantMode::kStaticInt8: return "INT8";
    case QuantMode::kDrq: return "DRQ";
    case QuantMode::kDrift: return "Drift";
  }
  return "?";
}

OperandResult QuantEngine::process_with_views(
    const TensorF& x, const std::vector<SubTensorView>& views) const {
  DRIFT_OBS_SPAN("quant_engine.operand");
  DRIFT_OBS_COUNT("quant_engine.operands", 1);
  OperandResult result;
  switch (config_.mode) {
    case QuantMode::kFloat32: {
      result.effective = x;
      return result;
    }
    case QuantMode::kStaticInt8: {
      const auto params =
          core::compute_quant_params(x.data(), config_.drift.hp);
      result.effective = render_static_int8(x, params);
      return result;
    }
    case QuantMode::kDrq: {
      const auto params = core::compute_quant_params(x.data(), config_.drq.hp);
      const core::DrqQuantizer drq(config_.drq);
      const auto map = drq.select(x.data(), views, params);
      auto rendered = drq.apply(x.data(), views, params, map);
      result.effective = TensorF(x.shape(), std::move(rendered));
      result.low_fraction = map.low_fraction_by_elements();
      result.low_fraction_rows = map.low_fraction_by_count();
      return result;
    }
    case QuantMode::kDrift: {
      const auto params =
          core::compute_quant_params(x.data(), config_.drift.hp);
      const core::DynamicQuantizer dynq(config_.drift);
      core::PrecisionMap map = [&] {
        if (!config_.auto_threshold) {
          return dynq.select(x.data(), views, params);
        }
        const auto stats = core::compute_stats(views, x.data());
        std::vector<std::int64_t> sizes;
        sizes.reserve(views.size());
        for (const auto& v : views) sizes.push_back(v.size());
        return core::auto_threshold_map(stats, sizes, params, config_.drift,
                                        config_.noise_budget);
      }();
      auto rendered = dynq.apply(x.data(), views, params, map);
      result.effective = TensorF(x.shape(), std::move(rendered));
      result.low_fraction = map.low_fraction_by_elements();
      result.low_fraction_rows = map.low_fraction_by_count();
      return result;
    }
  }
  DRIFT_CHECK(false, "unreachable quant mode");
  return result;
}

OperandResult QuantEngine::process_activation_rows(const TensorF& x) const {
  DRIFT_CHECK(x.shape().rank() == 2, "row granularity needs [M, K]");
  return process_with_views(x, partition_rows(x.shape()));
}

OperandResult QuantEngine::process_activation_regions(const TensorF& x) const {
  DRIFT_CHECK(x.shape().rank() == 3, "region granularity needs [C, H, W]");
  return process_with_views(x, partition_regions(x.shape(), config_.region));
}

OperandResult QuantEngine::process_weight(const TensorF& w) const {
  DRIFT_CHECK(w.shape().rank() == 2, "weights must be output-major [N, K]");
  if (config_.mode == QuantMode::kFloat32) {
    OperandResult r;
    r.effective = w;
    return r;
  }
  if (config_.mode == QuantMode::kDrift && config_.dynamic_weights) {
    return process_with_views(w, partition_rows(w.shape()));
  }
  // INT8, DRQ, and Drift-without-dynamic-weights all render weights as
  // static per-tensor INT8.
  const auto params = core::compute_quant_params(w.data(), config_.drift.hp);
  OperandResult r;
  r.effective = render_static_int8(w, params);
  return r;
}

void QuantEngine::record(const std::string& layer, std::int64_t m,
                         std::int64_t k, std::int64_t n, double act_low,
                         double weight_low) {
  records_.push_back(GemmRecord{layer, m, k, n, act_low, weight_low});
}

double QuantEngine::overall_act_low_fraction() const {
  double macs = 0.0, low = 0.0;
  for (const auto& r : records_) {
    const double w = static_cast<double>(r.m) * static_cast<double>(r.k) *
                     static_cast<double>(r.n);
    macs += w;
    low += w * r.act_low_fraction;
  }
  return macs > 0.0 ? low / macs : 0.0;
}

}  // namespace drift::nn
