// Model containers and composite blocks.
#pragma once

#include <memory>
#include <vector>

#include "nn/activations.hpp"
#include "nn/attention.hpp"
#include "nn/conv2d.hpp"
#include "nn/layer.hpp"
#include "nn/linear.hpp"
#include "nn/norm.hpp"

namespace drift::nn {

/// Straight-line layer container.
class Sequential : public Layer {
 public:
  explicit Sequential(std::string name) : name_(std::move(name)) {}

  /// Appends a layer; returns *this for chaining.
  Sequential& add(LayerPtr layer);

  /// Constructs and appends a layer in place.
  template <typename L, typename... Args>
  Sequential& emplace(Args&&... args) {
    return add(std::make_unique<L>(std::forward<Args>(args)...));
  }

  TensorF forward(const TensorF& input, QuantEngine& engine) override;
  const std::string& name() const override { return name_; }

  std::size_t size() const { return layers_.size(); }
  Layer& layer(std::size_t i);

 private:
  std::string name_;
  std::vector<LayerPtr> layers_;
};

/// ResNet basic block: conv-BN-ReLU-conv-BN + skip (with optional 1x1
/// projection when shape changes), final ReLU.
class ResidualBlock : public Layer {
 public:
  ResidualBlock(std::string name, std::int64_t in_channels,
                std::int64_t out_channels, std::int64_t stride, Rng& rng);

  TensorF forward(const TensorF& input, QuantEngine& engine) override;
  const std::string& name() const override { return name_; }

 private:
  std::string name_;
  Conv2d conv1_;
  BatchNorm2d bn1_;
  ReLU relu1_;
  Conv2d conv2_;
  BatchNorm2d bn2_;
  ReLU relu2_;
  std::unique_ptr<Conv2d> projection_;  ///< 1x1 shortcut when needed
};

/// Pre-norm transformer encoder block: LN -> MHA -> residual,
/// LN -> FFN(GELU) -> residual.
class TransformerBlock : public Layer {
 public:
  TransformerBlock(std::string name, std::int64_t dim, std::int64_t heads,
                   std::int64_t ffn_dim, Rng& rng);

  TensorF forward(const TensorF& input, QuantEngine& engine) override;
  const std::string& name() const override { return name_; }

 private:
  std::string name_;
  LayerNorm ln1_;
  MultiHeadAttention attn_;
  LayerNorm ln2_;
  Linear ffn1_;
  GELU gelu_;
  Linear ffn2_;
};

}  // namespace drift::nn
