#include "nn/model.hpp"

#include <algorithm>

#include "nn/activations.hpp"
#include "util/assert.hpp"

namespace drift::nn {

Sequential& Sequential::add(LayerPtr layer) {
  DRIFT_CHECK(layer != nullptr, "null layer");
  layers_.push_back(std::move(layer));
  return *this;
}

TensorF Sequential::forward(const TensorF& input, QuantEngine& engine) {
  TensorF x = input;
  for (auto& layer : layers_) {
    x = layer->forward(x, engine);
  }
  return x;
}

Layer& Sequential::layer(std::size_t i) {
  DRIFT_CHECK_INDEX(i, layers_.size());
  return *layers_[i];
}

ResidualBlock::ResidualBlock(std::string name, std::int64_t in_channels,
                             std::int64_t out_channels, std::int64_t stride,
                             Rng& rng)
    : name_(std::move(name)),
      conv1_(name_ + ".conv1", in_channels, out_channels, 3, stride, 1, rng),
      bn1_(name_ + ".bn1", out_channels), relu1_(name_ + ".relu1"),
      conv2_(name_ + ".conv2", out_channels, out_channels, 3, 1, 1, rng),
      bn2_(name_ + ".bn2", out_channels), relu2_(name_ + ".relu2") {
  if (stride != 1 || in_channels != out_channels) {
    projection_ = std::make_unique<Conv2d>(name_ + ".proj", in_channels,
                                           out_channels, 1, stride, 0, rng);
  }
}

TensorF ResidualBlock::forward(const TensorF& input, QuantEngine& engine) {
  // Elementwise stages run through the same primitive layers the graph
  // runtime binds, so both execution paths produce identical per-node
  // obs records (pinned by tests/graph/).  ReLU's kernel is the same
  // max(v, 0) this loop used inline, so the split is bitwise-neutral.
  TensorF main = conv1_.forward(input, engine);
  main = bn1_.forward(main, engine);
  main = relu1_.forward(main, engine);
  main = conv2_.forward(main, engine);
  main = bn2_.forward(main, engine);

  const TensorF skip =
      projection_ ? projection_->forward(input, engine) : input;
  DRIFT_CHECK(skip.shape() == main.shape(), "residual shape mismatch");
  auto md = main.data();
  auto sd = skip.data();
  for (std::size_t i = 0; i < md.size(); ++i) {
    md[i] += sd[i];
  }
  return relu2_.forward(main, engine);
}

TransformerBlock::TransformerBlock(std::string name, std::int64_t dim,
                                   std::int64_t heads, std::int64_t ffn_dim,
                                   Rng& rng)
    : name_(std::move(name)), ln1_(name_ + ".ln1", dim),
      attn_(name_ + ".attn", dim, heads, rng), ln2_(name_ + ".ln2", dim),
      ffn1_(name_ + ".ffn1", dim, ffn_dim, rng), gelu_(name_ + ".gelu"),
      ffn2_(name_ + ".ffn2", ffn_dim, dim, rng) {}

TensorF TransformerBlock::forward(const TensorF& input, QuantEngine& engine) {
  TensorF x = input;
  // Attention sub-block.
  {
    TensorF h = ln1_.forward(x, engine);
    h = attn_.forward(h, engine);
    auto xd = x.data();
    auto hd = h.data();
    for (std::size_t i = 0; i < xd.size(); ++i) xd[i] += hd[i];
  }
  // FFN sub-block.
  {
    TensorF h = ln2_.forward(x, engine);
    h = ffn1_.forward(h, engine);
    // Same gelu_value kernel the inline loop applied, now via the GELU
    // layer so the obs record set matches graph execution.
    h = gelu_.forward(h, engine);
    h = ffn2_.forward(h, engine);
    auto xd = x.data();
    auto hd = h.data();
    for (std::size_t i = 0; i < xd.size(); ++i) xd[i] += hd[i];
  }
  return x;
}

}  // namespace drift::nn
