#include "nn/attention.hpp"

#include <cmath>

#include "nn/activations.hpp"
#include "nn/gemm.hpp"
#include "obs/metrics.hpp"
#include "util/assert.hpp"

namespace drift::nn {

MultiHeadAttention::MultiHeadAttention(std::string name, std::int64_t dim,
                                       std::int64_t heads, Rng& rng)
    : name_(std::move(name)), dim_(dim), heads_(heads),
      head_dim_(dim / heads), qkv_(name_ + ".qkv", dim, 3 * dim, rng),
      proj_(name_ + ".proj", dim, dim, rng) {
  DRIFT_CHECK(dim > 0 && heads > 0 && dim % heads == 0,
              "dim must divide evenly into heads");
}

TensorF MultiHeadAttention::forward(const TensorF& input,
                                    QuantEngine& engine) {
  // The projections open their own scopes (name.qkv / name.proj), so
  // attention coverage is attributed per-GEMM exactly like the
  // hardware workload export names it.
  DRIFT_OBS_LAYER_SCOPE(name_);
  DRIFT_CHECK(input.shape().rank() == 2, "attention expects [T, D]");
  DRIFT_CHECK(input.shape().dim(1) == dim_, "attention width mismatch");
  const std::int64_t T = input.shape().dim(0);

  const TensorF qkv = qkv_.forward(input, engine);  // [T, 3D]
  const double inv_sqrt_d = 1.0 / std::sqrt(static_cast<double>(head_dim_));

  TensorF context(Shape{T, dim_}, 0.0f);
  for (std::int64_t h = 0; h < heads_; ++h) {
    // Slice Q, K, V for this head out of the packed [T, 3D] matrix.
    TensorF q(Shape{T, head_dim_});
    TensorF k(Shape{T, head_dim_});
    TensorF v(Shape{T, head_dim_});
    for (std::int64_t t = 0; t < T; ++t) {
      for (std::int64_t d = 0; d < head_dim_; ++d) {
        q(t, d) = qkv(t, h * head_dim_ + d);
        k(t, d) = qkv(t, dim_ + h * head_dim_ + d);
        v(t, d) = qkv(t, 2 * dim_ + h * head_dim_ + d);
      }
    }
    TensorF scores = matmul_nt(q, k);  // [T, T]
    for (float& s : scores.data()) {
      s = static_cast<float>(s * inv_sqrt_d);
    }
    const TensorF probs = softmax_rows(scores);
    const TensorF head_ctx = matmul(probs, v);  // [T, head_dim]
    for (std::int64_t t = 0; t < T; ++t) {
      for (std::int64_t d = 0; d < head_dim_; ++d) {
        context(t, h * head_dim_ + d) = head_ctx(t, d);
      }
    }
  }
  return proj_.forward(context, engine);
}

}  // namespace drift::nn
