// Layer interface for the functional simulation stack.
//
// Layers transform a single sample (no batch dimension): transformer
// layers see [T, D] token matrices, CNN layers see [C, H, W] feature
// maps.  Every GEMM-bearing layer routes its operands through the
// QuantEngine so one model definition serves all four execution modes.
#pragma once

#include <memory>
#include <string>

#include "nn/quant_engine.hpp"
#include "tensor/tensor.hpp"

namespace drift::nn {

/// Abstract layer.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Forward pass.  `engine` decides how operands are quantized and
  /// collects per-GEMM records.
  virtual TensorF forward(const TensorF& input, QuantEngine& engine) = 0;

  /// Human-readable layer name (unique within a model).
  virtual const std::string& name() const = 0;
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace drift::nn
