#include "nn/synthetic.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace drift::nn {

SubTensorScaleProfile cnn_profile() {
  SubTensorScaleProfile p;
  // Post-ReLU CNN feature maps have enormous inter-region dynamic
  // range: background regions sit near zero while object regions carry
  // values orders of magnitude larger (Figure 1a: "the maximum value
  // of some sub-tensors is nearly 0 while others exceed 3"; DRQ's
  // "sparse sensitive areas" premise).
  p.log_mean = -3.2;
  p.log_sigma = 0.7;
  // "Objects": a quarter of the regions carry activations ~25x the
  // background scale — the bimodal loud/quiet structure of post-ReLU
  // feature maps.
  p.outlier_fraction = 0.25;
  p.outlier_scale = 25.0;
  p.correlation = 0.9;  // spatially smooth: objects vs background
  return p;
}

SubTensorScaleProfile vit_profile() {
  SubTensorScaleProfile p;
  p.log_mean = -1.2;
  p.log_sigma = 0.9;
  p.outlier_fraction = 0.08;  // salient patches + [CLS]-adjacent tokens
  p.outlier_scale = 12.0;
  p.correlation = 0.2;
  return p;
}

SubTensorScaleProfile bert_profile() {
  SubTensorScaleProfile p;
  p.log_mean = -1.0;
  p.log_sigma = 0.8;
  p.outlier_fraction = 0.05;  // separator / high-norm tokens
  p.outlier_scale = 15.0;
  p.correlation = 0.1;
  return p;
}

SubTensorScaleProfile llm_profile() {
  SubTensorScaleProfile p;
  p.log_mean = -0.8;
  p.log_sigma = 0.7;
  p.outlier_fraction = 0.03;  // LLM.int8-style outlier features
  p.outlier_scale = 30.0;
  p.correlation = 0.05;
  return p;
}

SubTensorScaleProfile weight_profile() {
  SubTensorScaleProfile p;
  p.log_mean = -2.5;
  p.log_sigma = 0.5;  // per-output-channel spread
  p.outlier_fraction = 0.01;
  p.outlier_scale = 4.0;
  p.correlation = 0.0;
  return p;
}

std::vector<double> sample_scales(Rng& rng, std::int64_t count,
                                  const SubTensorScaleProfile& profile) {
  DRIFT_CHECK(count > 0, "need at least one sub-tensor");
  DRIFT_CHECK(profile.correlation >= 0.0 && profile.correlation < 1.0,
              "correlation must be in [0, 1)");
  std::vector<double> scales(static_cast<std::size_t>(count));
  // AR(1) over ln(b): x_{i} = rho*x_{i-1} + sqrt(1-rho^2)*eps keeps the
  // marginal N(log_mean, log_sigma^2) while controlling contiguity.
  const double rho = profile.correlation;
  const double innovation = std::sqrt(1.0 - rho * rho);
  double x = rng.normal();
  for (std::int64_t i = 0; i < count; ++i) {
    if (i > 0) x = rho * x + innovation * rng.normal();
    double b = std::exp(profile.log_mean + profile.log_sigma * x);
    if (profile.outlier_fraction > 0.0 &&
        rng.bernoulli(profile.outlier_fraction)) {
      b *= profile.outlier_scale;
    }
    scales[static_cast<std::size_t>(i)] = b;
  }
  return scales;
}

TensorF synth_rows(Rng& rng, std::int64_t rows, std::int64_t cols,
                   const SubTensorScaleProfile& profile) {
  DRIFT_CHECK(rows > 0 && cols > 0, "invalid matrix shape");
  const auto scales = sample_scales(rng, rows, profile);
  TensorF out(Shape{rows, cols});
  auto d = out.data();
  for (std::int64_t r = 0; r < rows; ++r) {
    const double b = scales[static_cast<std::size_t>(r)];
    for (std::int64_t c = 0; c < cols; ++c) {
      d[static_cast<std::size_t>(r * cols + c)] =
          static_cast<float>(rng.laplace(b));
    }
  }
  return out;
}

TensorF synth_chw(Rng& rng, std::int64_t channels, std::int64_t height,
                  std::int64_t width, std::int64_t region,
                  const SubTensorScaleProfile& profile) {
  DRIFT_CHECK(channels > 0 && height > 0 && width > 0 && region > 0,
              "invalid feature-map shape");
  const std::int64_t rh = (height + region - 1) / region;
  const std::int64_t rw = (width + region - 1) / region;
  const auto scales = sample_scales(rng, rh * rw, profile);
  TensorF out(Shape{channels, height, width});
  for (std::int64_t c = 0; c < channels; ++c) {
    for (std::int64_t h = 0; h < height; ++h) {
      for (std::int64_t w = 0; w < width; ++w) {
        const std::int64_t region_idx = (h / region) * rw + (w / region);
        const double b = scales[static_cast<std::size_t>(region_idx)];
        out(c, h, w) = static_cast<float>(rng.laplace(b));
      }
    }
  }
  return out;
}

std::vector<core::SubTensorStats> sample_subtensor_stats(
    Rng& rng, std::int64_t count, std::int64_t elements,
    const SubTensorScaleProfile& profile) {
  DRIFT_CHECK(elements > 1, "need at least two elements per sub-tensor");
  const auto scales = sample_scales(rng, count, profile);
  const double n = static_cast<double>(elements);
  const double log_n = std::log(n);
  std::vector<core::SubTensorStats> stats;
  stats.reserve(scales.size());
  for (double b : scales) {
    // avg|Y|: Gamma(n)/n, normal approximation for the n's we use.
    const double mean_abs =
        b * std::max(1.0 + rng.normal() / std::sqrt(n), 0.05);
    // max|Y|: exponential order statistic, b*(ln n + Gumbel).
    const double gumbel = -std::log(-std::log(
        std::clamp(rng.uniform(), 1e-12, 1.0 - 1e-12)));
    const double max_abs = std::max(b * (log_n + gumbel), mean_abs);
    // Zero-mean Laplace: E[Y] = 0, E[Y^2] = 2b^2 (sampling noise on
    // the second moment mirrors the first's).
    const double mean_sq = 2.0 * mean_abs * mean_abs;
    stats.push_back(core::SubTensorStats{max_abs, mean_abs, 0.0, mean_sq});
  }
  return stats;
}

}  // namespace drift::nn
