// Multi-head self-attention for the transformer proxies.
//
// The QKV and output projections are quantized GEMMs routed through the
// QuantEngine (they dominate the layer's MACs and are where dynamic
// precision applies).  The score/context products run in float: on the
// real accelerator they execute after the precision-annotated operands
// have been dequantized into psums, and their shapes are still counted
// by the model zoo's workload extraction.
#pragma once

#include "nn/linear.hpp"

namespace drift::nn {

class MultiHeadAttention : public Layer {
 public:
  MultiHeadAttention(std::string name, std::int64_t dim, std::int64_t heads,
                     Rng& rng);

  TensorF forward(const TensorF& input, QuantEngine& engine) override;
  const std::string& name() const override { return name_; }

  std::int64_t dim() const { return dim_; }
  std::int64_t heads() const { return heads_; }

 private:
  std::string name_;
  std::int64_t dim_, heads_, head_dim_;
  Linear qkv_;
  Linear proj_;
};

}  // namespace drift::nn
