// AVX2 backend of the kernel dispatch table.
//
// Only compiled on x86-64 builds (this translation unit gets -mavx2);
// only *executed* when detect_cpu_features().avx2 is true and the
// scalar override is off.  Every kernel is pinned to the scalar
// backend's semantics:
//
//   - Integer dots widen int8 operands to int16 (_mm256_cvtepi8_epi16),
//     multiply-accumulate pairs into int32 lanes (_mm256_madd_epi16 —
//     the maddubs-style inner product without the unsigned-operand
//     asymmetry), and horizontal-sum into int64.  Integer addition is
//     associative, so the result equals the scalar int64 loop bit for
//     bit; kMaxDotLength keeps the int32 lanes from wrapping (worst
//     case here: n/8 products of |p| <= 127^2 per lane).
//   - Packed-nibble operands are unpacked in-register: low nibble
//     (v & 0x0F) and high nibble ((v >> 4) & 0x0F), sign-extended with
//     the (x ^ 8) - 8 two's-complement trick, nibble pairs re-
//     interleaved where natural element order is needed.
//   - quantize_convert_row computes llround(x/Δ) as
//     floor(|x/Δ| + 0.5) with an explicit overshoot correction (the
//     +0.5 add can round up across an integer; subtract 1 when
//     t - |y| > 0.5), which makes the vector rounding exactly
//     round-half-away-from-zero — bitwise equal to std::llround.
//   - reduce_stats implements the canonical 4-lane schedule: one ymm
//     double lane per (i mod 4) class, combined in the fixed scalar
//     order, so even the float sums match the scalar backend bitwise.
#ifdef DRIFT_SIMD_BUILD_AVX2

#include <immintrin.h>

#include <algorithm>
#include <cmath>

#include "nn/simd/kernel_tables.hpp"

namespace drift::nn::simd {

namespace {

/// Horizontal sum of 8 int32 lanes into int64 (exact).
inline std::int64_t hsum_epi32(__m256i v) {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  const __m128i s = _mm_add_epi32(lo, hi);
  // Lane sums fit int32 individually but the cross-lane total may not:
  // widen before the final adds.
  alignas(16) std::int32_t lanes[4];
  _mm_store_si128(reinterpret_cast<__m128i*>(lanes), s);
  return static_cast<std::int64_t>(lanes[0]) + lanes[1] + lanes[2] +
         lanes[3];
}

/// Widen 32 int8 codes to int16 and multiply-accumulate with the
/// matching 32 codes of `vb` into 8 int32 lanes of `acc`.
inline __m256i madd_s8_block(__m256i acc, __m256i va, __m256i vb) {
  const __m256i a0 = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(va));
  const __m256i b0 = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(vb));
  const __m256i a1 = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(va, 1));
  const __m256i b1 = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(vb, 1));
  acc = _mm256_add_epi32(acc, _mm256_madd_epi16(a0, b0));
  return _mm256_add_epi32(acc, _mm256_madd_epi16(a1, b1));
}

/// Sign-extends the low nibble of each byte ((v & 0xF) ^ 8) - 8.
inline __m256i sign_extend_nibbles(__m256i nibbles) {
  const __m256i k8 = _mm256_set1_epi8(0x08);
  return _mm256_sub_epi8(_mm256_xor_si256(nibbles, k8), k8);
}

inline std::int32_t nibble_at(const std::uint8_t* packed, std::int64_t i) {
  const std::uint8_t byte = packed[i / 2];
  const int nib = (i & 1) ? (byte >> 4) : (byte & 0x0F);
  // drift-lint: allow(narrow) — nib is a masked 4-bit value, so the
  // sign-extended result lies in [-8, 7] and always fits.
  return static_cast<std::int32_t>((nib ^ 0x08) - 0x08);
}

std::int64_t dot_s8s8(const std::int8_t* a, const std::int8_t* b,
                      std::int64_t n) {
  // Four independent accumulators (128 codes per step) keep the madd
  // units busy instead of serializing on one add chain.  Folding them
  // back together is an exact int32 lane sum: the combined lane load is
  // the same n/8-products bound as a single accumulator.
  __m256i acc0 = _mm256_setzero_si256();
  __m256i acc1 = _mm256_setzero_si256();
  __m256i acc2 = _mm256_setzero_si256();
  __m256i acc3 = _mm256_setzero_si256();
  std::int64_t k = 0;
  for (; k + 128 <= n; k += 128) {
    const auto* pa = reinterpret_cast<const __m256i*>(a + k);
    const auto* pb = reinterpret_cast<const __m256i*>(b + k);
    acc0 = madd_s8_block(acc0, _mm256_loadu_si256(pa + 0),
                         _mm256_loadu_si256(pb + 0));
    acc1 = madd_s8_block(acc1, _mm256_loadu_si256(pa + 1),
                         _mm256_loadu_si256(pb + 1));
    acc2 = madd_s8_block(acc2, _mm256_loadu_si256(pa + 2),
                         _mm256_loadu_si256(pb + 2));
    acc3 = madd_s8_block(acc3, _mm256_loadu_si256(pa + 3),
                         _mm256_loadu_si256(pb + 3));
  }
  __m256i acc = _mm256_add_epi32(_mm256_add_epi32(acc0, acc1),
                                 _mm256_add_epi32(acc2, acc3));
  for (; k + 32 <= n; k += 32) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + k));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + k));
    acc = madd_s8_block(acc, va, vb);
  }
  std::int64_t total = hsum_epi32(acc);
  for (; k < n; ++k) {
    total +=
        static_cast<std::int64_t>(a[k]) * static_cast<std::int64_t>(b[k]);
  }
  return total;
}

std::int64_t dot_s8s4(const std::int8_t* a, const std::uint8_t* b_packed,
                      std::int64_t n) {
  const __m128i kMask = _mm_set1_epi8(0x0F);
  const __m128i k8 = _mm_set1_epi8(0x08);
  __m256i acc = _mm256_setzero_si256();
  std::int64_t k = 0;
  // 16 packed bytes = 32 codes per step, re-interleaved to natural
  // element order so they line up with the int8 operand.
  for (; k + 32 <= n; k += 32) {
    const __m128i mb = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(b_packed + k / 2));
    const __m128i lo =
        _mm_sub_epi8(_mm_xor_si128(_mm_and_si128(mb, kMask), k8), k8);
    const __m128i hi = _mm_sub_epi8(
        _mm_xor_si128(_mm_and_si128(_mm_srli_epi16(mb, 4), kMask), k8), k8);
    const __m128i n0 = _mm_unpacklo_epi8(lo, hi);  // codes k .. k+15
    const __m128i n1 = _mm_unpackhi_epi8(lo, hi);  // codes k+16 .. k+31
    const __m256i vb = _mm256_set_m128i(n1, n0);
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + k));
    acc = madd_s8_block(acc, va, vb);
  }
  std::int64_t total = hsum_epi32(acc);
  for (; k < n; ++k) {
    total += static_cast<std::int64_t>(a[k]) *
             static_cast<std::int64_t>(nibble_at(b_packed, k));
  }
  return total;
}

std::int64_t dot_s4s4(const std::uint8_t* a_packed,
                      const std::uint8_t* b_packed, std::int64_t n) {
  const __m256i kMask = _mm256_set1_epi8(0x0F);
  __m256i acc = _mm256_setzero_si256();
  // Both operands share the packing, so low nibbles pair with low
  // nibbles and high with high — no re-interleave needed; the padding
  // nibble of an odd-length row is zero on both sides.  32 bytes = 64
  // codes per step.
  const std::int64_t bytes = (n + 1) / 2;
  std::int64_t i = 0;
  for (; i + 32 <= bytes; i += 32) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a_packed + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b_packed + i));
    const __m256i a_lo = sign_extend_nibbles(_mm256_and_si256(va, kMask));
    const __m256i b_lo = sign_extend_nibbles(_mm256_and_si256(vb, kMask));
    const __m256i a_hi = sign_extend_nibbles(
        _mm256_and_si256(_mm256_srli_epi16(va, 4), kMask));
    const __m256i b_hi = sign_extend_nibbles(
        _mm256_and_si256(_mm256_srli_epi16(vb, 4), kMask));
    acc = madd_s8_block(acc, a_lo, b_lo);
    acc = madd_s8_block(acc, a_hi, b_hi);
  }
  std::int64_t total = hsum_epi32(acc);
  for (; i < bytes; ++i) {
    const std::int32_t alo = ((a_packed[i] & 0x0F) ^ 0x08) - 0x08;
    const std::int32_t blo = ((b_packed[i] & 0x0F) ^ 0x08) - 0x08;
    const std::int32_t ahi = ((a_packed[i] >> 4) ^ 0x08) - 0x08;
    const std::int32_t bhi = ((b_packed[i] >> 4) ^ 0x08) - 0x08;
    total += static_cast<std::int64_t>(alo) * blo +
             static_cast<std::int64_t>(ahi) * bhi;
  }
  return total;
}

/// round-half-away-from-zero of the non-negative lanes of `ay`:
/// floor(ay + 0.5), minus 1 where the add rounded up past the true sum
/// (detectable as t - ay > 0.5; the subtraction is exact in that
/// region by Sterbenz).
inline __m256d round_half_away_nonneg(__m256d ay) {
  const __m256d half = _mm256_set1_pd(0.5);
  const __m256d one = _mm256_set1_pd(1.0);
  __m256d t = _mm256_floor_pd(_mm256_add_pd(ay, half));
  const __m256d over =
      _mm256_cmp_pd(_mm256_sub_pd(t, ay), half, _CMP_GT_OQ);
  return _mm256_sub_pd(t, _mm256_and_pd(over, one));
}

void quantize_convert_row(const float* x, std::int64_t n, double delta,
                          std::int64_t hp_limit, bool use_low, int lc,
                          std::int64_t lp_limit, std::int32_t* out) {
  const __m256d vdelta = _mm256_set1_pd(delta);
  const __m256d vhp = _mm256_set1_pd(static_cast<double>(hp_limit));
  const __m256d vlp = _mm256_set1_pd(static_cast<double>(lp_limit));
  // 2^-lc is exact, so t * 2^-lc == t / 2^lc bit for bit.
  const __m256d vinv = _mm256_set1_pd(
      1.0 / static_cast<double>(std::int64_t{1} << lc));
  const __m256d sign_mask = _mm256_set1_pd(-0.0);
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128 xf = _mm_loadu_ps(x + i);
    const __m256d y = _mm256_div_pd(_mm256_cvtps_pd(xf), vdelta);
    const __m256d ay = _mm256_andnot_pd(sign_mask, y);
    // Magnitude pipeline: symmetric clamps and odd-symmetric rounding
    // commute with the sign, which is re-applied at the end.
    __m256d t = _mm256_min_pd(round_half_away_nonneg(ay), vhp);
    if (use_low) {
      t = _mm256_min_pd(round_half_away_nonneg(_mm256_mul_pd(t, vinv)),
                        vlp);
    }
    __m128i q = _mm256_cvttpd_epi32(t);  // t is integral and >= 0
    const __m128i neg = _mm_srai_epi32(_mm_castps_si128(xf), 31);
    q = _mm_sub_epi32(_mm_xor_si128(q, neg), neg);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), q);
  }
  if (i < n) {
    kScalarTable.quantize_convert_row(x + i, n - i, delta, hp_limit,
                                      use_low, lc, lp_limit, out + i);
  }
}

RawStats reduce_stats(const float* x, std::int64_t n) {
  const __m256d sign_mask = _mm256_set1_pd(-0.0);
  __m256d vmax = _mm256_setzero_pd();
  __m256d vsa = _mm256_setzero_pd();
  __m256d vs = _mm256_setzero_pd();
  __m256d vsq = _mm256_setzero_pd();
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_cvtps_pd(_mm_loadu_ps(x + i));
    const __m256d a = _mm256_andnot_pd(sign_mask, v);
    vmax = _mm256_max_pd(vmax, a);
    vsa = _mm256_add_pd(vsa, a);
    vs = _mm256_add_pd(vs, v);
    vsq = _mm256_add_pd(vsq, _mm256_mul_pd(v, v));
  }
  alignas(32) double mx[4], sa[4], s[4], sq[4];
  _mm256_store_pd(mx, vmax);
  _mm256_store_pd(sa, vsa);
  _mm256_store_pd(s, vs);
  _mm256_store_pd(sq, vsq);
  // Tail element n0 + t lands in lane t — identical to the scalar
  // backend's (i mod 4) schedule because n0 is a multiple of 4.
  for (; i < n; ++i) {
    const double v = static_cast<double>(x[i]);
    const double a = std::abs(v);
    const auto l = static_cast<std::size_t>(i & 3);
    mx[l] = std::max(mx[l], a);
    sa[l] += a;
    s[l] += v;
    sq[l] += v * v;
  }
  RawStats r;
  r.max_abs = std::max(std::max(std::max(mx[0], mx[1]), mx[2]), mx[3]);
  r.sum_abs = ((sa[0] + sa[1]) + sa[2]) + sa[3];
  r.sum = ((s[0] + s[1]) + s[2]) + s[3];
  r.sum_sq = ((sq[0] + sq[1]) + sq[2]) + sq[3];
  return r;
}

}  // namespace

const KernelTable kAvx2Table = {
    "avx2", dot_s8s8, dot_s8s4, dot_s4s4, quantize_convert_row,
    reduce_stats,
};

}  // namespace drift::nn::simd

#endif  // DRIFT_SIMD_BUILD_AVX2
