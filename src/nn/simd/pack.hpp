// Packed-nibble (INT4) storage for low-precision renderings.
//
// The selector's lp <= 4 codes live in [-max_level, max_level] ⊆
// [-8, 7], so two fit one byte in 4-bit two's complement: element 2i in
// the low nibble, element 2i+1 in the high nibble.  A row of n codes
// packs into ceil(n/2) bytes; an odd row's final high nibble is zero.
// The dot_s8s4 / dot_s4s4 kernels consume this format directly,
// unpacking in-register — the packed bytes are the INT4 operand the
// accelerator model ships over DRAM, now also the operand the software
// engine executes.
#pragma once

#include <cstdint>
#include <span>

namespace drift::nn::simd {

/// Bytes needed for n packed codes.
inline constexpr std::int64_t packed_size(std::int64_t n) {
  return (n + 1) / 2;
}

/// Packs codes (each in [-8, 7]) into two's-complement nibbles.
/// `out` must hold packed_size(codes.size()) bytes.
void pack_nibbles(std::span<const std::int32_t> codes,
                  std::span<std::uint8_t> out);

/// Inverse of pack_nibbles: sign-extends each nibble back to int32.
/// `codes` must hold exactly the logical element count.
void unpack_nibbles(std::span<const std::uint8_t> packed,
                    std::span<std::int32_t> codes);

}  // namespace drift::nn::simd
