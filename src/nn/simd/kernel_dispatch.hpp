// Runtime-dispatched SIMD kernel backend (AVX2 / NEON / scalar).
//
// The Drift pipeline's hot loops — integer GEMM inner products, the
// hi->lo quantization rendering, and the selector's max|Y| / avg|Y|
// reductions — run through the function-pointer table returned by
// active(), selected once per call from the CPU features detected at
// startup.  Three invariants make this safe to drop underneath the
// existing bit-pinned pipeline:
//
//   1. *Integer kernels are exact.*  dot_s8s8 / dot_s8s4 / dot_s4s4
//      compute a sum of integer products, which is associative, so any
//      vector re-ordering produces the same int64 as the scalar loop —
//      the backends are bitwise interchangeable (asserted by
//      tests/prop/prop_simd_gemm.cpp) provided no intermediate
//      overflows; kMaxDotLength bounds the reduction length so int32
//      lane accumulators cannot wrap.
//   2. *quantize_convert_row is pinned to llround semantics.*  Every
//      backend computes round-half-away-from-zero of the exactly
//      rounded IEEE quotient x/Δ (and of the exact dyadic q/2^lc), so
//      integer codes are bitwise identical across backends.
//   3. *reduce_stats fixes a 4-lane accumulation order.*  Element i
//      accumulates into double lane (i mod 4); lanes combine as
//      ((l0+l1)+l2)+l3.  Scalar and vector backends implement the same
//      schedule, so even the float sums agree bitwise across backends
//      (they differ from a plain sequential sum by a documented
//      rounding re-association; see DESIGN.md "SIMD backend").
//
// Backend choice: AVX2 when the binary carries the AVX2 kernels and the
// CPU reports the feature, NEON on AArch64 builds, scalar otherwise.
// DRIFT_FORCE_SCALAR=1 in the environment (or set_force_scalar(true))
// pins the scalar table for differential testing.
#pragma once

#include <cstdint>

namespace drift::nn::simd {

/// CPU features relevant to kernel selection, detected at startup.
struct CpuFeatures {
  bool avx2 = false;  ///< x86-64 AVX2 (implies the SSE4 baseline)
  bool neon = false;  ///< AArch64 Advanced SIMD
};

/// Features of the machine this process is running on.
CpuFeatures detect_cpu_features();

enum class Backend { kScalar, kAvx2, kNeon };

/// Raw single-pass reduction over a contiguous float run, before the
/// divide-by-n that turns sums into the SubTensorStats means.
struct RawStats {
  double max_abs = 0.0;
  double sum_abs = 0.0;
  double sum = 0.0;
  double sum_sq = 0.0;
};

/// Reduction lengths are capped so the int32 lane accumulators of the
/// vector dot kernels cannot overflow: the worst addend is 127*127 and
/// a lane absorbs at most half the products, so lengths up to
/// 2^31 / (127*127) / 0.5 ≈ 266k are safe; 2^17 leaves a wide margin.
/// Longer reductions fall back to the legacy int64 scalar loop at the
/// int_gemm entry point.
inline constexpr std::int64_t kMaxDotLength = std::int64_t{1} << 17;

/// One backend's kernel set.  All pointers are always non-null.
struct KernelTable {
  const char* name;  ///< "scalar", "avx2", "neon"

  /// sum_k a[k] * b[k] over int8 codes, exact in int64.
  std::int64_t (*dot_s8s8)(const std::int8_t* a, const std::int8_t* b,
                           std::int64_t n);

  /// sum_k a[k] * unpack(b_packed)[k]: int8 row times packed-nibble row.
  std::int64_t (*dot_s8s4)(const std::int8_t* a,
                           const std::uint8_t* b_packed, std::int64_t n);

  /// sum_k unpack(a)[k] * unpack(b)[k]: both rows packed nibbles.
  std::int64_t (*dot_s4s4)(const std::uint8_t* a_packed,
                           const std::uint8_t* b_packed, std::int64_t n);

  /// The quantize_rows inner loop: out[i] = clamp(llround(x[i]/delta),
  /// ±hp_limit), then when lc/lp_limit describe a low rendering
  /// (use_low), out[i] = clamp(llround(out[i]/2^lc), ±lp_limit).
  /// Bitwise identical across backends (invariant 2 above).
  void (*quantize_convert_row)(const float* x, std::int64_t n, double delta,
                               std::int64_t hp_limit, bool use_low, int lc,
                               std::int64_t lp_limit, std::int32_t* out);

  /// 4-lane-scheduled single-pass reduction (invariant 3 above).
  RawStats (*reduce_stats)(const float* x, std::int64_t n);
};

/// The table for the current backend: scalar when forced, otherwise the
/// best table the build and the CPU support.  Cheap enough to call per
/// GEMM; cache the reference outside per-element loops.
const KernelTable& active();

/// The backend `active()` resolves to right now.
Backend active_backend();

/// Pins (or unpins) the scalar table, overriding feature detection.
/// Initialized from the DRIFT_FORCE_SCALAR environment variable
/// (non-empty and not "0" means forced).  Tests and the bench sweep
/// toggle this at runtime; safe to call concurrently with kernel use.
void set_force_scalar(bool force);

/// Current force-scalar state.
bool force_scalar();

}  // namespace drift::nn::simd
