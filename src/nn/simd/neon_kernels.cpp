// NEON (AArch64 Advanced SIMD) backend of the kernel dispatch table.
//
// Only compiled on AArch64 builds.  Pinned to the same semantics as the
// scalar backend (see avx2_kernels.cpp for the shared reasoning):
// integer dots use widening multiplies (vmull_s8, the sdot-style inner
// product available without the DOTPROD extension) with pairwise
// int32 accumulation — exact, so bitwise equal to the scalar loop
// under the kMaxDotLength bound; quantize_convert_row reproduces
// llround via floor(|y| + 0.5) with the overshoot correction;
// reduce_stats implements the canonical 4-lane double schedule as two
// float64x2 register pairs (lanes {0,1} and {2,3}), combined in the
// fixed scalar order.
#ifdef DRIFT_SIMD_BUILD_NEON

#include <arm_neon.h>

#include <algorithm>
#include <cmath>

#include "nn/simd/kernel_tables.hpp"

namespace drift::nn::simd {

namespace {

inline std::int32_t nibble_at(const std::uint8_t* packed, std::int64_t i) {
  const std::uint8_t byte = packed[i / 2];
  const int nib = (i & 1) ? (byte >> 4) : (byte & 0x0F);
  // drift-lint: allow(narrow) — nib is a masked 4-bit value, so the
  // sign-extended result lies in [-8, 7] and always fits.
  return static_cast<std::int32_t>((nib ^ 0x08) - 0x08);
}

/// Multiply-accumulate 16 int8 pairs into 4 int32 lanes: widening
/// int8 -> int16 products, pairwise-added into the accumulator.
inline int32x4_t mla_s8_block(int32x4_t acc, int8x16_t a, int8x16_t b) {
  const int16x8_t p0 = vmull_s8(vget_low_s8(a), vget_low_s8(b));
  const int16x8_t p1 = vmull_s8(vget_high_s8(a), vget_high_s8(b));
  acc = vpadalq_s16(acc, p0);
  return vpadalq_s16(acc, p1);
}

inline std::int64_t hsum_s32(int32x4_t v) {
  return static_cast<std::int64_t>(vgetq_lane_s32(v, 0)) +
         vgetq_lane_s32(v, 1) + vgetq_lane_s32(v, 2) + vgetq_lane_s32(v, 3);
}

/// Sign-extends the low nibble of every byte: ((v & 0xF) ^ 8) - 8.
inline int8x16_t sign_extend_nibbles(uint8x16_t nibbles) {
  const int8x16_t n = vreinterpretq_s8_u8(nibbles);
  const int8x16_t k8 = vdupq_n_s8(0x08);
  return vsubq_s8(veorq_s8(n, k8), k8);
}

std::int64_t dot_s8s8(const std::int8_t* a, const std::int8_t* b,
                      std::int64_t n) {
  int32x4_t acc = vdupq_n_s32(0);
  std::int64_t k = 0;
  for (; k + 16 <= n; k += 16) {
    acc = mla_s8_block(acc, vld1q_s8(a + k), vld1q_s8(b + k));
  }
  std::int64_t total = hsum_s32(acc);
  for (; k < n; ++k) {
    total +=
        static_cast<std::int64_t>(a[k]) * static_cast<std::int64_t>(b[k]);
  }
  return total;
}

std::int64_t dot_s8s4(const std::int8_t* a, const std::uint8_t* b_packed,
                      std::int64_t n) {
  const uint8x8_t kMask = vdup_n_u8(0x0F);
  int32x4_t acc = vdupq_n_s32(0);
  std::int64_t k = 0;
  // 8 packed bytes = 16 codes per step, zipped back to element order.
  for (; k + 16 <= n; k += 16) {
    const uint8x8_t mb = vld1_u8(b_packed + k / 2);
    const uint8x8_t lo = vand_u8(mb, kMask);
    const uint8x8_t hi = vand_u8(vshr_n_u8(mb, 4), kMask);
    const uint8x16_t natural = vcombine_u8(vzip1_u8(lo, hi),
                                           vzip2_u8(lo, hi));
    acc = mla_s8_block(acc, vld1q_s8(a + k), sign_extend_nibbles(natural));
  }
  std::int64_t total = hsum_s32(acc);
  for (; k < n; ++k) {
    total += static_cast<std::int64_t>(a[k]) *
             static_cast<std::int64_t>(nibble_at(b_packed, k));
  }
  return total;
}

std::int64_t dot_s4s4(const std::uint8_t* a_packed,
                      const std::uint8_t* b_packed, std::int64_t n) {
  const uint8x16_t kMask = vdupq_n_u8(0x0F);
  int32x4_t acc = vdupq_n_s32(0);
  const std::int64_t bytes = (n + 1) / 2;
  std::int64_t i = 0;
  // Low nibbles pair with low, high with high; the odd-length padding
  // nibble is zero on both sides.  16 bytes = 32 codes per step.
  for (; i + 16 <= bytes; i += 16) {
    const uint8x16_t va = vld1q_u8(a_packed + i);
    const uint8x16_t vb = vld1q_u8(b_packed + i);
    acc = mla_s8_block(acc, sign_extend_nibbles(vandq_u8(va, kMask)),
                       sign_extend_nibbles(vandq_u8(vb, kMask)));
    acc = mla_s8_block(acc, sign_extend_nibbles(vshrq_n_u8(va, 4)),
                       sign_extend_nibbles(vshrq_n_u8(vb, 4)));
  }
  std::int64_t total = hsum_s32(acc);
  for (; i < bytes; ++i) {
    const std::int32_t alo = ((a_packed[i] & 0x0F) ^ 0x08) - 0x08;
    const std::int32_t blo = ((b_packed[i] & 0x0F) ^ 0x08) - 0x08;
    const std::int32_t ahi = ((a_packed[i] >> 4) ^ 0x08) - 0x08;
    const std::int32_t bhi = ((b_packed[i] >> 4) ^ 0x08) - 0x08;
    total += static_cast<std::int64_t>(alo) * blo +
             static_cast<std::int64_t>(ahi) * bhi;
  }
  return total;
}

/// round-half-away-from-zero of non-negative lanes (see
/// avx2_kernels.cpp for the overshoot-correction argument).
inline float64x2_t round_half_away_nonneg(float64x2_t ay) {
  const float64x2_t half = vdupq_n_f64(0.5);
  const float64x2_t one = vdupq_n_f64(1.0);
  float64x2_t t = vrndmq_f64(vaddq_f64(ay, half));  // floor
  const uint64x2_t over = vcgtq_f64(vsubq_f64(t, ay), half);
  return vsubq_f64(
      t, vreinterpretq_f64_u64(vandq_u64(
             over, vreinterpretq_u64_f64(one))));
}

inline float64x2_t quantize_pair(float64x2_t y, float64x2_t vhp,
                                 float64x2_t vlp, float64x2_t vinv,
                                 bool use_low) {
  float64x2_t t = vminq_f64(round_half_away_nonneg(vabsq_f64(y)), vhp);
  if (use_low) {
    t = vminq_f64(round_half_away_nonneg(vmulq_f64(t, vinv)), vlp);
  }
  return t;
}

void quantize_convert_row(const float* x, std::int64_t n, double delta,
                          std::int64_t hp_limit, bool use_low, int lc,
                          std::int64_t lp_limit, std::int32_t* out) {
  const float64x2_t vdelta = vdupq_n_f64(delta);
  const float64x2_t vhp = vdupq_n_f64(static_cast<double>(hp_limit));
  const float64x2_t vlp = vdupq_n_f64(static_cast<double>(lp_limit));
  const float64x2_t vinv =
      vdupq_n_f64(1.0 / static_cast<double>(std::int64_t{1} << lc));
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float32x4_t xf = vld1q_f32(x + i);
    const float64x2_t y0 =
        vdivq_f64(vcvt_f64_f32(vget_low_f32(xf)), vdelta);
    const float64x2_t y1 =
        vdivq_f64(vcvt_f64_f32(vget_high_f32(xf)), vdelta);
    const float64x2_t t0 = quantize_pair(y0, vhp, vlp, vinv, use_low);
    const float64x2_t t1 = quantize_pair(y1, vhp, vlp, vinv, use_low);
    // Magnitudes are integral; re-apply the sign of x.
    const int32x4_t mag = vcombine_s32(vmovn_s64(vcvtq_s64_f64(t0)),
                                       vmovn_s64(vcvtq_s64_f64(t1)));
    const int32x4_t neg =
        vshrq_n_s32(vreinterpretq_s32_f32(xf), 31);
    vst1q_s32(out + i, vsubq_s32(veorq_s32(mag, neg), neg));
  }
  if (i < n) {
    kScalarTable.quantize_convert_row(x + i, n - i, delta, hp_limit,
                                      use_low, lc, lp_limit, out + i);
  }
}

RawStats reduce_stats(const float* x, std::int64_t n) {
  // Lanes {0,1} live in the *01 registers, lanes {2,3} in *23 — the
  // same four logical accumulators as the scalar schedule.
  float64x2_t mx01 = vdupq_n_f64(0.0), mx23 = vdupq_n_f64(0.0);
  float64x2_t sa01 = vdupq_n_f64(0.0), sa23 = vdupq_n_f64(0.0);
  float64x2_t s01 = vdupq_n_f64(0.0), s23 = vdupq_n_f64(0.0);
  float64x2_t sq01 = vdupq_n_f64(0.0), sq23 = vdupq_n_f64(0.0);
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float32x4_t xf = vld1q_f32(x + i);
    const float64x2_t v01 = vcvt_f64_f32(vget_low_f32(xf));
    const float64x2_t v23 = vcvt_f64_f32(vget_high_f32(xf));
    const float64x2_t a01 = vabsq_f64(v01);
    const float64x2_t a23 = vabsq_f64(v23);
    mx01 = vmaxq_f64(mx01, a01);
    mx23 = vmaxq_f64(mx23, a23);
    sa01 = vaddq_f64(sa01, a01);
    sa23 = vaddq_f64(sa23, a23);
    s01 = vaddq_f64(s01, v01);
    s23 = vaddq_f64(s23, v23);
    sq01 = vaddq_f64(sq01, vmulq_f64(v01, v01));
    sq23 = vaddq_f64(sq23, vmulq_f64(v23, v23));
  }
  double mx[4] = {vgetq_lane_f64(mx01, 0), vgetq_lane_f64(mx01, 1),
                  vgetq_lane_f64(mx23, 0), vgetq_lane_f64(mx23, 1)};
  double sa[4] = {vgetq_lane_f64(sa01, 0), vgetq_lane_f64(sa01, 1),
                  vgetq_lane_f64(sa23, 0), vgetq_lane_f64(sa23, 1)};
  double s[4] = {vgetq_lane_f64(s01, 0), vgetq_lane_f64(s01, 1),
                 vgetq_lane_f64(s23, 0), vgetq_lane_f64(s23, 1)};
  double sq[4] = {vgetq_lane_f64(sq01, 0), vgetq_lane_f64(sq01, 1),
                  vgetq_lane_f64(sq23, 0), vgetq_lane_f64(sq23, 1)};
  for (; i < n; ++i) {
    const double v = static_cast<double>(x[i]);
    const double a = std::abs(v);
    const auto l = static_cast<std::size_t>(i & 3);
    mx[l] = std::max(mx[l], a);
    sa[l] += a;
    s[l] += v;
    sq[l] += v * v;
  }
  RawStats r;
  r.max_abs = std::max(std::max(std::max(mx[0], mx[1]), mx[2]), mx[3]);
  r.sum_abs = ((sa[0] + sa[1]) + sa[2]) + sa[3];
  r.sum = ((s[0] + s[1]) + s[2]) + s[3];
  r.sum_sq = ((sq[0] + sq[1]) + sq[2]) + sq[3];
  return r;
}

}  // namespace

const KernelTable kNeonTable = {
    "neon", dot_s8s8, dot_s8s4, dot_s4s4, quantize_convert_row,
    reduce_stats,
};

}  // namespace drift::nn::simd

#endif  // DRIFT_SIMD_BUILD_NEON
