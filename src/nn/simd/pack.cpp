#include "nn/simd/pack.hpp"

#include "util/assert.hpp"

namespace drift::nn::simd {

void pack_nibbles(std::span<const std::int32_t> codes,
                  std::span<std::uint8_t> out) {
  const auto n = static_cast<std::int64_t>(codes.size());
  DRIFT_CHECK_EQ(static_cast<std::int64_t>(out.size()), packed_size(n),
                 "packed output size mismatch");
  for (std::int64_t i = 0; i < n; i += 2) {
    const std::int32_t lo = codes[static_cast<std::size_t>(i)];
    const std::int32_t hi = i + 1 < n ? codes[static_cast<std::size_t>(i + 1)]
                                      : 0;
    DRIFT_CHECK(lo >= -8 && lo <= 7 && hi >= -8 && hi <= 7,
                "code outside the 4-bit two's-complement range");
    // drift-lint: allow(narrow) — both operands are range-checked to
    // [-8, 7] just above, so the masked nibbles always fit one byte.
    out[static_cast<std::size_t>(i / 2)] = static_cast<std::uint8_t>(
        (lo & 0x0F) | ((hi & 0x0F) << 4));
  }
}

void unpack_nibbles(std::span<const std::uint8_t> packed,
                    std::span<std::int32_t> codes) {
  const auto n = static_cast<std::int64_t>(codes.size());
  DRIFT_CHECK_EQ(static_cast<std::int64_t>(packed.size()), packed_size(n),
                 "packed input size mismatch");
  for (std::int64_t i = 0; i < n; ++i) {
    const std::uint8_t byte = packed[static_cast<std::size_t>(i / 2)];
    const int nib = (i & 1) ? (byte >> 4) : (byte & 0x0F);
    // Sign-extend the 4-bit two's-complement value.
    // drift-lint: allow(narrow) — nib is a masked 4-bit value, so the
    // sign-extended result lies in [-8, 7] and always fits.
    const auto v = static_cast<std::int32_t>((nib ^ 0x08) - 0x08);
    codes[static_cast<std::size_t>(i)] = v;
  }
}

}  // namespace drift::nn::simd
