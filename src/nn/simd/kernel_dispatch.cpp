#include "nn/simd/kernel_dispatch.hpp"

#include <atomic>
#include <cstdlib>
#include <map>
#include <string>

#include "nn/simd/kernel_tables.hpp"
#include "obs/metrics.hpp"

namespace drift::nn::simd {

namespace {

bool env_force_scalar() {
  const char* v = std::getenv("DRIFT_FORCE_SCALAR");
  return v != nullptr && v[0] != '\0' &&
         !(v[0] == '0' && v[1] == '\0');
}

std::atomic<bool>& force_scalar_flag() {
  static std::atomic<bool> flag{env_force_scalar()};
  return flag;
}

/// The best table the build and the CPU support, resolved once.
const KernelTable& best_table() {
  static const KernelTable& table = []() -> const KernelTable& {
#ifdef DRIFT_SIMD_BUILD_AVX2
    if (detect_cpu_features().avx2) {
      return kAvx2Table;
    }
#endif
#ifdef DRIFT_SIMD_BUILD_NEON
    if (detect_cpu_features().neon) {
      return kNeonTable;
    }
#endif
    return kScalarTable;
  }();
  return table;
}

// Stamps backend identity into the metrics artifact meta block (schema
// v2).  Registered from this translation unit because obs lives in
// drift_util, which cannot link back into drift_nn; every consumer of
// the nn pipeline references dispatch symbols, so this object file —
// and with it the registration — is always pulled in.  The provider
// reads live state at scrape time, so a set_force_scalar() flip during
// a differential run is reflected in the artifact it produces.
void provide_backend_metadata(std::map<std::string, std::string>& meta) {
  meta["backend"] = active().name;
  const CpuFeatures features = detect_cpu_features();
  std::string joined;
  if (features.avx2) joined += "avx2";
  if (features.neon) joined += joined.empty() ? "neon" : ",neon";
  meta["cpu_features"] = joined.empty() ? "none" : joined;
  meta["force_scalar"] = force_scalar() ? "1" : "0";
}

[[maybe_unused]] const bool kMetadataRegistered = [] {
  obs::register_run_metadata_provider(&provide_backend_metadata);
  return true;
}();

}  // namespace

CpuFeatures detect_cpu_features() {
  CpuFeatures features;
#if defined(__x86_64__) || defined(_M_X64)
#if defined(__GNUC__) || defined(__clang__)
  features.avx2 = __builtin_cpu_supports("avx2") != 0;
#endif
#endif
#if defined(__aarch64__) || defined(__ARM_NEON)
  // Advanced SIMD is architecturally mandatory on AArch64.
  features.neon = true;
#endif
  return features;
}

const KernelTable& active() {
  // drift-lint: allow(atomic-order) — the force-scalar flag guards no
  // other memory; every kernel table is immutable after static init.
  if (force_scalar_flag().load(std::memory_order_relaxed)) {
    return kScalarTable;
  }
  return best_table();
}

Backend active_backend() {
  const KernelTable& table = active();
#ifdef DRIFT_SIMD_BUILD_AVX2
  if (&table == &kAvx2Table) {
    return Backend::kAvx2;
  }
#endif
#ifdef DRIFT_SIMD_BUILD_NEON
  if (&table == &kNeonTable) {
    return Backend::kNeon;
  }
#endif
  (void)table;
  return Backend::kScalar;
}

void set_force_scalar(bool force) {
  // drift-lint: allow(atomic-order) — independent flag; the dispatch
  // tables it selects between are immutable after static init.
  force_scalar_flag().store(force, std::memory_order_relaxed);
}

bool force_scalar() {
  // drift-lint: allow(atomic-order) — same independent-flag argument
  // as the load in active(): no release/acquire pairing is needed.
  return force_scalar_flag().load(std::memory_order_relaxed);
}

}  // namespace drift::nn::simd
