// Internal: the per-backend kernel tables linked into the dispatcher.
// Which vector tables exist is a *build-time* property (the AVX2
// translation unit is only compiled with -mavx2 on x86-64, the NEON one
// only on AArch64); whether they are *used* is a runtime property of
// detect_cpu_features().  Nothing outside src/nn/simd/ includes this.
#pragma once

#include "nn/simd/kernel_dispatch.hpp"

namespace drift::nn::simd {

extern const KernelTable kScalarTable;

#ifdef DRIFT_SIMD_BUILD_AVX2
extern const KernelTable kAvx2Table;
#endif

#ifdef DRIFT_SIMD_BUILD_NEON
extern const KernelTable kNeonTable;
#endif

}  // namespace drift::nn::simd
