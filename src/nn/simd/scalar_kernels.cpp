// Scalar backend of the kernel dispatch table.
//
// This is both the portable fallback and the differential oracle the
// vector backends are pinned against: the integer dots follow the exact
// (order-free) integer sum, quantize_convert_row reproduces the
// llround-based composition in core/quantizer.cpp verbatim, and
// reduce_stats implements the canonical 4-lane accumulation schedule
// that the AVX2/NEON reductions must match bit for bit.
#include <algorithm>
#include <cmath>

#include "nn/simd/kernel_tables.hpp"
#include "nn/simd/pack.hpp"

namespace drift::nn::simd {

namespace {

/// Sign-extended nibble i of a packed row.
inline std::int32_t nibble_at(const std::uint8_t* packed, std::int64_t i) {
  const std::uint8_t byte = packed[i / 2];
  const int nib = (i & 1) ? (byte >> 4) : (byte & 0x0F);
  // drift-lint: allow(narrow) — nib is a masked 4-bit value, so the
  // sign-extended result lies in [-8, 7] and always fits.
  return static_cast<std::int32_t>((nib ^ 0x08) - 0x08);
}

std::int64_t dot_s8s8(const std::int8_t* a, const std::int8_t* b,
                      std::int64_t n) {
  std::int64_t acc = 0;
  for (std::int64_t k = 0; k < n; ++k) {
    acc += static_cast<std::int64_t>(a[k]) * static_cast<std::int64_t>(b[k]);
  }
  return acc;
}

std::int64_t dot_s8s4(const std::int8_t* a, const std::uint8_t* b_packed,
                      std::int64_t n) {
  std::int64_t acc = 0;
  for (std::int64_t k = 0; k < n; ++k) {
    acc += static_cast<std::int64_t>(a[k]) *
           static_cast<std::int64_t>(nibble_at(b_packed, k));
  }
  return acc;
}

std::int64_t dot_s4s4(const std::uint8_t* a_packed,
                      const std::uint8_t* b_packed, std::int64_t n) {
  std::int64_t acc = 0;
  for (std::int64_t k = 0; k < n; ++k) {
    acc += static_cast<std::int64_t>(nibble_at(a_packed, k)) *
           static_cast<std::int64_t>(nibble_at(b_packed, k));
  }
  return acc;
}

void quantize_convert_row(const float* x, std::int64_t n, double delta,
                          std::int64_t hp_limit, bool use_low, int lc,
                          std::int64_t lp_limit, std::int32_t* out) {
  const double shift = static_cast<double>(std::int64_t{1} << lc);
  for (std::int64_t i = 0; i < n; ++i) {
    // Exactly core::quantize_value: llround of the IEEE quotient.
    const double scaled = static_cast<double>(x[i]) / delta;
    std::int64_t q = std::clamp<std::int64_t>(std::llround(scaled),
                                              -hp_limit, hp_limit);
    if (use_low) {
      // Exactly core::convert_to_low: q / 2^lc is an exact dyadic
      // rational in double, rounded half away from zero.
      const double shifted = static_cast<double>(q) / shift;
      q = std::clamp<std::int64_t>(std::llround(shifted), -lp_limit,
                                   lp_limit);
    }
    // drift-lint: allow(narrow) — clamped to ±hp_limit / ±lp_limit
    // (≤ 2^15 - 1 for the widest Precision) above, so the value fits.
    out[i] = static_cast<std::int32_t>(q);
  }
}

RawStats reduce_stats(const float* x, std::int64_t n) {
  // The canonical 4-lane schedule (see kernel_dispatch.hpp): element i
  // accumulates into lane (i mod 4); lanes combine left to right.
  double mx[4] = {0.0, 0.0, 0.0, 0.0};
  double sa[4] = {0.0, 0.0, 0.0, 0.0};
  double s[4] = {0.0, 0.0, 0.0, 0.0};
  double sq[4] = {0.0, 0.0, 0.0, 0.0};
  for (std::int64_t i = 0; i < n; ++i) {
    const double v = static_cast<double>(x[i]);
    const double a = std::abs(v);
    const auto l = static_cast<std::size_t>(i & 3);
    mx[l] = std::max(mx[l], a);
    sa[l] += a;
    s[l] += v;
    sq[l] += v * v;
  }
  RawStats r;
  r.max_abs = std::max(std::max(std::max(mx[0], mx[1]), mx[2]), mx[3]);
  r.sum_abs = ((sa[0] + sa[1]) + sa[2]) + sa[3];
  r.sum = ((s[0] + s[1]) + s[2]) + s[3];
  r.sum_sq = ((sq[0] + sq[1]) + sq[2]) + sq[3];
  return r;
}

}  // namespace

const KernelTable kScalarTable = {
    "scalar", dot_s8s8, dot_s8s4, dot_s4s4, quantize_convert_row,
    reduce_stats,
};

}  // namespace drift::nn::simd
