// Pooling layers for CNN proxies.
#pragma once

#include "nn/layer.hpp"

namespace drift::nn {

/// Max pooling over [C, H, W] with square kernel and stride.
class MaxPool2d : public Layer {
 public:
  MaxPool2d(std::string name, std::int64_t kernel, std::int64_t stride);

  TensorF forward(const TensorF& input, QuantEngine& engine) override;
  const std::string& name() const override { return name_; }

 private:
  std::string name_;
  std::int64_t kernel_, stride_;
};

/// Average pooling over [C, H, W] with square kernel and stride.
class AvgPool2d : public Layer {
 public:
  AvgPool2d(std::string name, std::int64_t kernel, std::int64_t stride);

  TensorF forward(const TensorF& input, QuantEngine& engine) override;
  const std::string& name() const override { return name_; }

 private:
  std::string name_;
  std::int64_t kernel_, stride_;
};

/// Global average pooling: [C, H, W] -> [1, C] (GEMM-ready row vector).
class GlobalAvgPool : public Layer {
 public:
  explicit GlobalAvgPool(std::string name) : name_(std::move(name)) {}

  TensorF forward(const TensorF& input, QuantEngine& engine) override;
  const std::string& name() const override { return name_; }

 private:
  std::string name_;
};

/// Mean over tokens: [T, D] -> [1, D], the classification pooling of
/// the transformer proxies.
class MeanPoolTokens : public Layer {
 public:
  explicit MeanPoolTokens(std::string name) : name_(std::move(name)) {}

  TensorF forward(const TensorF& input, QuantEngine& engine) override;
  const std::string& name() const override { return name_; }

 private:
  std::string name_;
};

}  // namespace drift::nn
