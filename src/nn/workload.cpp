#include "nn/workload.hpp"

#include "util/assert.hpp"

namespace drift::nn {
namespace {

/// Conv-shape helper: appends the im2col GEMM of a convolution.
void add_conv(std::vector<LayerGemm>& layers, const std::string& name,
              std::int64_t in_ch, std::int64_t out_ch, std::int64_t kernel,
              std::int64_t stride, std::int64_t pad, std::int64_t in_size,
              std::int64_t* out_size, std::int64_t repeat = 1) {
  const std::int64_t os = (in_size + 2 * pad - kernel) / stride + 1;
  DRIFT_CHECK(os > 0, "conv shrinks input away");
  layers.push_back(LayerGemm{
      name, LayerKind::kConv,
      core::GemmDims{os * os, in_ch * kernel * kernel, out_ch}, repeat,
      kernel});
  if (out_size != nullptr) *out_size = os;
}

/// Appends the four GEMM groups of one transformer encoder block and
/// its per-head attention products.  `batch` fuses the token matrices
/// of several inputs into one GEMM (standard server-side batching);
/// the attention products stay per-input, so they repeat batch x heads
/// times.
void add_transformer_block(std::vector<LayerGemm>& layers,
                           const std::string& prefix, std::int64_t tokens,
                           std::int64_t dim, std::int64_t heads,
                           std::int64_t ffn_dim, std::int64_t repeat,
                           std::int64_t batch) {
  const std::int64_t head_dim = dim / heads;
  const std::int64_t rows = batch * tokens;
  layers.push_back(LayerGemm{prefix + ".qkv", LayerKind::kQkvProj,
                             core::GemmDims{rows, dim, 3 * dim}, repeat});
  layers.push_back(LayerGemm{prefix + ".score", LayerKind::kAttnScore,
                             core::GemmDims{tokens, head_dim, tokens},
                             repeat * heads * batch});
  layers.push_back(LayerGemm{prefix + ".context", LayerKind::kAttnContext,
                             core::GemmDims{tokens, tokens, head_dim},
                             repeat * heads * batch});
  layers.push_back(LayerGemm{prefix + ".proj", LayerKind::kOutProj,
                             core::GemmDims{rows, dim, dim}, repeat});
  layers.push_back(LayerGemm{prefix + ".ffn1", LayerKind::kFfn,
                             core::GemmDims{rows, dim, ffn_dim}, repeat});
  layers.push_back(LayerGemm{prefix + ".ffn2", LayerKind::kFfn,
                             core::GemmDims{rows, ffn_dim, dim}, repeat});
}

/// Inference batch for the encoder-style models (ViT / DeiT / BERT).
/// CNNs run at batch 1 (their GEMM rows are already in the thousands);
/// decoder LLMs process long prompts, which plays the same role.
constexpr std::int64_t kEncoderBatch = 8;

}  // namespace

std::string to_string(LayerKind kind) {
  switch (kind) {
    case LayerKind::kConv: return "conv";
    case LayerKind::kFc: return "fc";
    case LayerKind::kQkvProj: return "qkv";
    case LayerKind::kAttnScore: return "score";
    case LayerKind::kAttnContext: return "context";
    case LayerKind::kOutProj: return "proj";
    case LayerKind::kFfn: return "ffn";
    case LayerKind::kEmbed: return "embed";
  }
  return "?";
}

std::string to_string(ModelFamily family) {
  switch (family) {
    case ModelFamily::kCnn: return "cnn";
    case ModelFamily::kVit: return "vit";
    case ModelFamily::kBert: return "bert";
    case ModelFamily::kLlm: return "llm";
  }
  return "?";
}

std::int64_t WorkloadSpec::total_macs() const {
  std::int64_t acc = 0;
  for (const auto& l : layers) acc += l.total_macs();
  return acc;
}

std::int64_t WorkloadSpec::total_gemms() const {
  std::int64_t acc = 0;
  for (const auto& l : layers) acc += l.repeat;
  return acc;
}

WorkloadSpec make_resnet18() {
  WorkloadSpec spec;
  spec.model = "ResNet18";
  spec.family = ModelFamily::kCnn;
  spec.act_profile = cnn_profile();
  spec.weight_profile = weight_profile();
  auto& L = spec.layers;

  std::int64_t size = 224;
  add_conv(L, "conv1", 3, 64, 7, 2, 3, size, &size);  // 112
  size /= 2;                                          // maxpool -> 56
  // Stage template: {channels, blocks, first stride}.
  struct Stage { std::int64_t ch, blocks, stride; };
  const Stage stages[] = {{64, 2, 1}, {128, 2, 2}, {256, 2, 2}, {512, 2, 2}};
  std::int64_t in_ch = 64;
  int stage_idx = 1;
  for (const Stage& st : stages) {
    const std::string p = "layer" + std::to_string(stage_idx++);
    for (std::int64_t b = 0; b < st.blocks; ++b) {
      const std::int64_t stride = b == 0 ? st.stride : 1;
      const std::string bp = p + ".b" + std::to_string(b);
      if (stride != 1 || in_ch != st.ch) {
        std::int64_t dummy = size;
        add_conv(L, bp + ".down", in_ch, st.ch, 1, stride, 0, size, &dummy);
      }
      add_conv(L, bp + ".conv1", in_ch, st.ch, 3, stride, 1, size, &size);
      add_conv(L, bp + ".conv2", st.ch, st.ch, 3, 1, 1, size, &size);
      in_ch = st.ch;
    }
  }
  L.push_back(LayerGemm{"fc", LayerKind::kFc, core::GemmDims{1, 512, 1000}});
  return spec;
}

WorkloadSpec make_resnet50() {
  WorkloadSpec spec;
  spec.model = "ResNet50";
  spec.family = ModelFamily::kCnn;
  spec.act_profile = cnn_profile();
  spec.weight_profile = weight_profile();
  auto& L = spec.layers;

  std::int64_t size = 224;
  add_conv(L, "conv1", 3, 64, 7, 2, 3, size, &size);  // 112
  size /= 2;                                          // maxpool -> 56
  struct Stage { std::int64_t ch, blocks, stride; };
  const Stage stages[] = {{64, 3, 1}, {128, 4, 2}, {256, 6, 2}, {512, 3, 2}};
  std::int64_t in_ch = 64;
  int stage_idx = 1;
  for (const Stage& st : stages) {
    const std::string p = "layer" + std::to_string(stage_idx++);
    const std::int64_t out_ch = st.ch * 4;  // bottleneck expansion
    for (std::int64_t b = 0; b < st.blocks; ++b) {
      const std::int64_t stride = b == 0 ? st.stride : 1;
      const std::string bp = p + ".b" + std::to_string(b);
      if (stride != 1 || in_ch != out_ch) {
        std::int64_t dummy = size;
        add_conv(L, bp + ".down", in_ch, out_ch, 1, stride, 0, size, &dummy);
      }
      std::int64_t dummy = size;
      add_conv(L, bp + ".conv1", in_ch, st.ch, 1, 1, 0, size, &dummy);
      add_conv(L, bp + ".conv2", st.ch, st.ch, 3, stride, 1, size, &size);
      add_conv(L, bp + ".conv3", st.ch, out_ch, 1, 1, 0, size, &dummy);
      in_ch = out_ch;
    }
  }
  L.push_back(LayerGemm{"fc", LayerKind::kFc, core::GemmDims{1, 2048, 1000}});
  return spec;
}

namespace {

WorkloadSpec make_vit_like(const std::string& model, std::int64_t dim,
                           std::int64_t heads, std::int64_t ffn_dim,
                           std::int64_t depth) {
  WorkloadSpec spec;
  spec.model = model;
  spec.family = ModelFamily::kVit;
  spec.act_profile = vit_profile();
  spec.weight_profile = weight_profile();
  const std::int64_t tokens = 197;  // 14x14 patches + [CLS]
  spec.layers.push_back(
      LayerGemm{"patch_embed", LayerKind::kEmbed,
                core::GemmDims{kEncoderBatch * 196, 3 * 16 * 16, dim}});
  add_transformer_block(spec.layers, "block", tokens, dim, heads, ffn_dim,
                        depth, kEncoderBatch);
  spec.layers.push_back(
      LayerGemm{"head", LayerKind::kFc, core::GemmDims{1, dim, 1000}});
  return spec;
}

WorkloadSpec make_decoder_lm(const std::string& model, std::int64_t dim,
                             std::int64_t heads, std::int64_t ffn_dim,
                             std::int64_t depth, std::int64_t seq_len,
                             std::int64_t vocab) {
  WorkloadSpec spec;
  spec.model = model;
  spec.family = ModelFamily::kLlm;
  spec.act_profile = llm_profile();
  spec.weight_profile = weight_profile();
  add_transformer_block(spec.layers, "block", seq_len, dim, heads, ffn_dim,
                        depth, /*batch=*/1);
  spec.layers.push_back(LayerGemm{"lm_head", LayerKind::kFc,
                                  core::GemmDims{seq_len, dim, vocab}});
  return spec;
}

}  // namespace

WorkloadSpec make_vit_b16() { return make_vit_like("ViT-B", 768, 12, 3072, 12); }

WorkloadSpec make_deit_s() { return make_vit_like("DeiT-S", 384, 6, 1536, 12); }

WorkloadSpec make_bert_base(std::int64_t seq_len) {
  WorkloadSpec spec;
  spec.model = "BERT";
  spec.family = ModelFamily::kBert;
  spec.act_profile = bert_profile();
  spec.weight_profile = weight_profile();
  add_transformer_block(spec.layers, "block", seq_len, 768, 12, 3072, 12,
                        kEncoderBatch);
  spec.layers.push_back(LayerGemm{"pooler", LayerKind::kFc,
                                  core::GemmDims{kEncoderBatch, 768, 768}});
  return spec;
}

WorkloadSpec make_gpt2_xl(std::int64_t seq_len) {
  return make_decoder_lm("GPT2-XL", 1600, 25, 6400, 48, seq_len, 50257);
}

WorkloadSpec make_bloom_7b1(std::int64_t seq_len) {
  return make_decoder_lm("BLOOM-7B1", 4096, 32, 16384, 30, seq_len, 250880);
}

WorkloadSpec make_opt_6p7b(std::int64_t seq_len) {
  return make_decoder_lm("OPT-6.7B", 4096, 32, 16384, 32, seq_len, 50272);
}

std::vector<WorkloadSpec> paper_workloads() {
  return {make_resnet18(), make_resnet50(), make_vit_b16(), make_deit_s(),
          make_bert_base(), make_gpt2_xl(),  make_opt_6p7b()};
}

}  // namespace drift::nn
