#include "nn/norm.hpp"

#include <cmath>

#include "obs/metrics.hpp"
#include "util/assert.hpp"

namespace drift::nn {

LayerNorm::LayerNorm(std::string name, std::int64_t width)
    : name_(std::move(name)), gamma_(Shape{width}, 1.0f),
      beta_(Shape{width}, 0.0f) {
  DRIFT_CHECK(width > 0, "invalid LayerNorm width");
}

TensorF LayerNorm::forward(const TensorF& input, QuantEngine&) {
  DRIFT_OBS_LAYER_SCOPE(name_);
  DRIFT_CHECK(input.shape().rank() == 2, "LayerNorm expects [M, N]");
  DRIFT_CHECK(input.shape().dim(1) == width(), "LayerNorm width mismatch");
  const std::int64_t M = input.shape().dim(0);
  const std::int64_t N = input.shape().dim(1);
  TensorF out(input.shape());
  auto gd = gamma_.data();
  auto bd = beta_.data();
  for (std::int64_t i = 0; i < M; ++i) {
    auto row_in = input.row(i);
    auto row_out = out.row(i);
    double mean = 0.0;
    for (float v : row_in) mean += v;
    mean /= static_cast<double>(N);
    double var = 0.0;
    for (float v : row_in) {
      const double d = v - mean;
      var += d * d;
    }
    var /= static_cast<double>(N);
    const double inv = 1.0 / std::sqrt(var + kEps);
    for (std::int64_t j = 0; j < N; ++j) {
      const auto js = static_cast<std::size_t>(j);
      row_out[js] = static_cast<float>(
          (row_in[js] - mean) * inv * gd[js] + bd[js]);
    }
  }
  return out;
}

BatchNorm2d::BatchNorm2d(std::string name, std::int64_t channels)
    : name_(std::move(name)), scale_(Shape{channels}, 1.0f),
      shift_(Shape{channels}, 0.0f) {
  DRIFT_CHECK(channels > 0, "invalid BatchNorm width");
}

TensorF BatchNorm2d::forward(const TensorF& input, QuantEngine&) {
  DRIFT_OBS_LAYER_SCOPE(name_);
  DRIFT_CHECK(input.shape().rank() == 3, "BatchNorm2d expects [C, H, W]");
  DRIFT_CHECK(input.shape().dim(0) == scale_.shape().dim(0),
              "BatchNorm channel mismatch");
  const std::int64_t C = input.shape().dim(0);
  const std::int64_t HW = input.shape().dim(1) * input.shape().dim(2);
  TensorF out = input;
  auto od = out.data();
  auto sd = scale_.data();
  auto hd = shift_.data();
  for (std::int64_t c = 0; c < C; ++c) {
    const auto cs = static_cast<std::size_t>(c);
    for (std::int64_t p = 0; p < HW; ++p) {
      auto& v = od[static_cast<std::size_t>(c * HW + p)];
      v = v * sd[cs] + hd[cs];
    }
  }
  return out;
}

}  // namespace drift::nn
