// Dense float GEMM used by the functional (accuracy) simulation path.
//
// The hardware benches never execute this — they consume GEMM *shapes*
// through the analytical/cycle models — so a simple cache-blocked
// implementation is all the accuracy proxies need.
#pragma once

#include "tensor/tensor.hpp"

namespace drift::nn {

/// C[M,N] = A[M,K] * B[K,N].
TensorF matmul(const TensorF& a, const TensorF& b);

/// C[M,N] = A[M,K] * W[N,K]^T (output-major weights, PyTorch layout).
TensorF matmul_nt(const TensorF& a, const TensorF& w);

/// C += bias (bias broadcast over rows).  C is [M,N], bias is [N].
void add_bias(TensorF& c, const TensorF& bias);

}  // namespace drift::nn
