// Dense float GEMM used by the functional (accuracy) simulation path.
//
// The hardware benches never execute this — they consume GEMM *shapes*
// through the analytical/cycle models — so a cache-blocked
// implementation is all the accuracy proxies need.  Both kernels are
// parallelized over output rows on the global thread pool
// (util/thread_pool.hpp) with fixed chunk boundaries and double
// per-tile accumulation, so results are bit-identical at any thread
// count and across the matmul / matmul_nt call paths.
#pragma once

#include "tensor/tensor.hpp"

namespace drift::nn {

/// C[M,N] = A[M,K] * B[K,N].
TensorF matmul(const TensorF& a, const TensorF& b);

/// C[M,N] = A[M,K] * W[N,K]^T (output-major weights, PyTorch layout).
TensorF matmul_nt(const TensorF& a, const TensorF& w);

/// C += bias (bias broadcast over rows).  C is [M,N], bias is [N].
void add_bias(TensorF& c, const TensorF& bias);

}  // namespace drift::nn
