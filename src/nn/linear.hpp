// Fully-connected layer: y = x W^T + b, weights output-major [N, K].
#pragma once

#include "nn/layer.hpp"
#include "util/rng.hpp"

namespace drift::nn {

class Linear : public Layer {
 public:
  /// Takes ownership of explicit parameters.
  Linear(std::string name, TensorF weight, TensorF bias);

  /// Randomly initialized layer: per-output-channel Laplace weights
  /// whose scale varies across channels (matching the inter-sub-tensor
  /// spread profiled in Figure 1), Kaiming-style magnitude.
  Linear(std::string name, std::int64_t in_features,
         std::int64_t out_features, Rng& rng);

  TensorF forward(const TensorF& input, QuantEngine& engine) override;
  const std::string& name() const override { return name_; }

  std::int64_t in_features() const { return weight_.shape().dim(1); }
  std::int64_t out_features() const { return weight_.shape().dim(0); }
  const TensorF& weight() const { return weight_; }
  const TensorF& bias() const { return bias_; }

 private:
  std::string name_;
  TensorF weight_;  ///< [out, in]
  TensorF bias_;    ///< [out]
};

}  // namespace drift::nn
