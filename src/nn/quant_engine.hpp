// Quantized execution engine.
//
// The accuracy experiments (Figure 6, Table 1) run real forward passes
// where every GEMM operand is first replaced by the value the hardware
// would actually compute with:
//
//   kFloat32    — identity (the FP32 baseline)
//   kStaticInt8 — Eq. 1 per-tensor INT8 rendering (BitFusion baseline)
//   kDrq        — DRQ's region-based 4/8-bit rendering
//   kDrift      — the paper's distribution-based dynamic rendering
//
// The engine also records, per GEMM, the precision-class mix the
// hardware benches consume (fraction of low rows/channels).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/drq_quantizer.hpp"
#include "core/layer_work.hpp"
#include "core/selector.hpp"
#include "tensor/tensor.hpp"

namespace drift::nn {

/// Which quantization algorithm the engine applies.
enum class QuantMode { kFloat32, kStaticInt8, kDrq, kDrift };

std::string to_string(QuantMode mode);

/// Per-GEMM record accumulated during a forward pass.
struct GemmRecord {
  std::string layer;
  std::int64_t m = 0, k = 0, n = 0;
  /// Element-weighted fraction of activation data selected low.
  double act_low_fraction = 0.0;
  /// Fraction of weight output channels selected low.
  double weight_low_fraction = 0.0;
};

/// Result of processing one operand.
struct OperandResult {
  TensorF effective;              ///< what the hardware computes with
  double low_fraction = 0.0;      ///< element-weighted low-precision share
  double low_fraction_rows = 0.0; ///< sub-tensor-count-weighted share
};

/// The engine.  Stateless between operands except for the record log.
class QuantEngine {
 public:
  struct Config {
    QuantMode mode = QuantMode::kFloat32;
    core::SelectorConfig drift{};   ///< Drift selector (hp/lp/δ)
    core::DrqConfig drq{};          ///< DRQ baseline parameters
    std::int64_t region = 4;        ///< spatial region edge for conv inputs
    bool dynamic_weights = true;    ///< Drift: per-channel 4/8 weights
    /// Drift: when true, the per-tensor δ is chosen automatically as
    /// the minimum threshold whose excess rounding noise stays within
    /// `noise_budget` x signal variance (core/noise_budget.hpp); when
    /// false, `drift.density_threshold` is used as a fixed δ.
    bool auto_threshold = true;
    double noise_budget = 0.05;
  };

  explicit QuantEngine(Config config) : config_(config) {}
  const Config& config() const { return config_; }
  QuantMode mode() const { return config_.mode; }

  /// Processes a [M, K] activation matrix at row (token/patch)
  /// granularity.
  OperandResult process_activation_rows(const TensorF& x) const;

  /// Processes a [C, H, W] activation tensor at DRQ's region
  /// granularity (all algorithms use the same sub-tensor size on CNN
  /// inputs, per Section 5.1).
  OperandResult process_activation_regions(const TensorF& x) const;

  /// Processes an output-major [N, K] weight matrix at per-output-
  /// channel granularity.  DRQ and INT8 keep weights static 8-bit;
  /// Drift optionally applies the same selector to weight channels.
  OperandResult process_weight(const TensorF& w) const;

  /// Appends one GEMM record to the log.
  void record(const std::string& layer, std::int64_t m, std::int64_t k,
              std::int64_t n, double act_low, double weight_low);

  const std::vector<GemmRecord>& records() const { return records_; }
  void clear_records() { records_.clear(); }

  /// Element-weighted mean activation low fraction over all records
  /// (weighted by GEMM MAC count) — the "% of 4-bit computation"
  /// summary number of Figure 6 / Table 1.
  double overall_act_low_fraction() const;

 private:
  OperandResult process_with_views(const TensorF& x,
                                   const std::vector<SubTensorView>& views)
      const;

  Config config_;
  mutable std::vector<GemmRecord> records_;
};

}  // namespace drift::nn
