#include "nn/proxy.hpp"

#include <algorithm>
#include <cmath>

#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/pooling.hpp"
#include "util/assert.hpp"

namespace drift::nn {
namespace {

/// Argmax over a [1, N] logit row.
std::int64_t argmax_row(const TensorF& logits) {
  DRIFT_CHECK(logits.shape().rank() == 2 && logits.shape().dim(0) == 1,
              "expected a [1, N] logit row");
  auto d = logits.data();
  std::int64_t best = 0;
  for (std::int64_t j = 1; j < logits.shape().dim(1); ++j) {
    if (d[static_cast<std::size_t>(j)] > d[static_cast<std::size_t>(best)]) {
      best = j;
    }
  }
  return best;
}

/// Builds a classifier whose weight rows are the (L2-normalized) FP32
/// feature embeddings of the class prototypes.
std::unique_ptr<Linear> make_template_classifier(
    const std::string& name, const std::vector<TensorF>& prototype_features) {
  DRIFT_CHECK(!prototype_features.empty(), "need at least one class");
  const std::int64_t dim = prototype_features.front().shape().dim(1);
  const auto classes = static_cast<std::int64_t>(prototype_features.size());
  TensorF weight(Shape{classes, dim});
  for (std::int64_t k = 0; k < classes; ++k) {
    const auto& f = prototype_features[static_cast<std::size_t>(k)];
    DRIFT_CHECK(f.shape().rank() == 2 && f.shape().dim(0) == 1 &&
                    f.shape().dim(1) == dim,
                "prototype feature shape mismatch");
    double norm = 0.0;
    for (float v : f.data()) norm += static_cast<double>(v) * v;
    norm = std::sqrt(std::max(norm, 1e-12));
    for (std::int64_t j = 0; j < dim; ++j) {
      weight(k, j) = static_cast<float>(f(0, j) / norm);
    }
  }
  return std::make_unique<Linear>(name, std::move(weight),
                                  TensorF(Shape{classes}, 0.0f));
}

}  // namespace

// ---------------------------------------------------------------- CNN

CnnProxy::CnnProxy(const Config& config) : config_(config) {
  DRIFT_CHECK(config.classes > 1 && config.samples > 0, "invalid proxy");
  Rng rng(config.seed);

  features_ = std::make_unique<Sequential>("cnn_features");
  // Channel widths chosen for redundancy: real CNNs tolerate coarse
  // per-channel weight quantization because no single kernel is
  // irreplaceable; a too-narrow extractor would be artificially
  // fragile.
  features_->emplace<Conv2d>("conv1", std::int64_t{3}, std::int64_t{16},
                             std::int64_t{3}, std::int64_t{1},
                             std::int64_t{1}, rng);
  features_->emplace<ReLU>("relu1");
  features_->emplace<MaxPool2d>("pool1", std::int64_t{2}, std::int64_t{2});
  features_->emplace<ResidualBlock>("block1", std::int64_t{16},
                                    std::int64_t{32}, std::int64_t{2}, rng);
  features_->emplace<GlobalAvgPool>("gap");

  // Class prototypes: *localized* objects — a class-specific texture
  // under a smooth spatial bump — over a quiet background.  This is
  // the CNN regime both DRQ and Drift assume (Section 2.2): the
  // class-discriminative signal lives in loud salient regions, the
  // background is low-magnitude and uninformative.
  const std::int64_t S = config.image_size;
  // All classes share one object location/texture base and differ by a
  // class_separation-weighted texture delta, so the task is genuinely
  // confusable rather than trivially separable.
  const double ch = rng.uniform(0.25, 0.75) * static_cast<double>(S);
  const double cw = rng.uniform(0.25, 0.75) * static_cast<double>(S);
  const double radius = static_cast<double>(S) * 0.14;
  auto make_texture = [&](double amp_scale) {
    TensorF tex(Shape{3, S, S}, 0.0f);
    for (std::int64_t c = 0; c < 3; ++c) {
      const double fx = rng.uniform(1.0, 4.0), fy = rng.uniform(1.0, 4.0);
      const double px = rng.uniform(0.0, 6.28), py = rng.uniform(0.0, 6.28);
      for (std::int64_t h = 0; h < S; ++h) {
        for (std::int64_t w = 0; w < S; ++w) {
          tex(c, h, w) = static_cast<float>(
              amp_scale * std::cos(fx * h / S * 6.28 + px) *
              std::cos(fy * w / S * 6.28 + py));
        }
      }
    }
    return tex;
  };
  const TensorF common = make_texture(2.0);
  std::vector<TensorF> prototypes;
  prototypes.reserve(static_cast<std::size_t>(config.classes));
  for (std::int64_t k = 0; k < config.classes; ++k) {
    const TensorF unique = make_texture(2.0 * config.class_separation);
    TensorF proto(Shape{3, S, S}, 0.0f);
    for (std::int64_t c = 0; c < 3; ++c) {
      for (std::int64_t h = 0; h < S; ++h) {
        for (std::int64_t w = 0; w < S; ++w) {
          const double dh = (static_cast<double>(h) - ch) / radius;
          const double dw = (static_cast<double>(w) - cw) / radius;
          const double d2 = dh * dh + dw * dw;
          // Compact support: outside ~2.2 sigma the object is exactly
          // absent, so background regions are genuinely quiet.
          const double bump = d2 < 4.8 ? std::exp(-0.5 * d2) : 0.0;
          proto(c, h, w) = static_cast<float>(
              bump * (common(c, h, w) + unique(c, h, w)));
        }
      }
    }
    prototypes.push_back(std::move(proto));
  }

  // Noisy sample generator shared by the calibration and evaluation
  // sets: localized prototype + quiet region-structured Laplace
  // background (class-irrelevant clutter).
  auto noise_profile = cnn_profile();
  noise_profile.log_mean = -2.0;      // background well below object scale
  noise_profile.log_sigma = 0.6;      // keep clutter uniformly quiet
  noise_profile.outlier_fraction = 0.0;  // no loud non-object clutter
  auto make_sample = [&](std::int64_t cls) {
    TensorF noise = synth_chw(rng, 3, S, S, 4, noise_profile);
    TensorF img = prototypes[static_cast<std::size_t>(cls)];
    auto id = img.data();
    auto nd = noise.data();
    for (std::size_t i = 0; i < id.size(); ++i) {
      id[i] = static_cast<float>(config.signal * id[i] +
                                 config.noise * nd[i]);
    }
    return img;
  };

  // Calibration inputs: a few noisy samples per class, so the template
  // head is built under the same input distribution (and thus the same
  // dynamic precision decisions) the evaluation set triggers.
  calibration_.resize(static_cast<std::size_t>(config.classes));
  for (std::int64_t k = 0; k < config.classes; ++k) {
    for (int rep = 0; rep < 4; ++rep) {
      calibration_[static_cast<std::size_t>(k)].push_back(make_sample(k));
    }
  }

  for (std::int64_t s = 0; s < config.samples; ++s) {
    const std::int64_t true_class = rng.uniform_int(0, config.classes - 1);
    images_.push_back(make_sample(true_class));
    // Label noise: the recorded label may disagree with the content.
    labels_.push_back(rng.bernoulli(config.label_noise)
                          ? rng.uniform_int(0, config.classes - 1)
                          : true_class);
  }
}

ProxyResult CnnProxy::evaluate(QuantEngine& engine) const {
  // Calibrate the template classifier *through the same execution
  // mode* on noisy per-class calibration samples (standard
  // post-training-quantization calibration): the head lives in
  // whatever feature space the quantized network produces, under the
  // same dynamic precision decisions the evaluation inputs trigger.
  QuantEngine calib(engine.config());
  std::vector<TensorF> proto_features;
  proto_features.reserve(calibration_.size());
  for (const auto& class_samples : calibration_) {
    TensorF mean_feat;
    for (std::size_t i = 0; i < class_samples.size(); ++i) {
      TensorF f = features_->forward(class_samples[i], calib);
      if (i == 0) {
        mean_feat = std::move(f);
      } else {
        auto md = mean_feat.data();
        auto fd = f.data();
        for (std::size_t j = 0; j < md.size(); ++j) md[j] += fd[j];
      }
    }
    for (float& v : mean_feat.data()) {
      v /= static_cast<float>(class_samples.size());
    }
    proto_features.push_back(std::move(mean_feat));
  }
  const auto classifier =
      make_template_classifier("classifier", proto_features);

  engine.clear_records();
  std::int64_t correct = 0;
  for (std::size_t s = 0; s < images_.size(); ++s) {
    const TensorF feat = features_->forward(images_[s], engine);
    const TensorF logits = classifier->forward(feat, engine);
    if (argmax_row(logits) == labels_[s]) ++correct;
  }
  ProxyResult r;
  r.metric = static_cast<double>(correct) /
             static_cast<double>(images_.size());
  r.act_low_fraction = engine.overall_act_low_fraction();
  return r;
}

// -------------------------------------------------------- Transformer

TransformerProxy::TransformerProxy(const Config& config) : config_(config) {
  DRIFT_CHECK(config.classes > 1 && config.samples > 0, "invalid proxy");
  DRIFT_CHECK(config.outlier_tokens < config.tokens,
              "too many outlier tokens");
  Rng rng(config.seed);

  embed_ = std::make_unique<Linear>("embed", config.input_dim,
                                    config.model_dim, rng);
  for (std::int64_t b = 0; b < config.blocks; ++b) {
    blocks_.push_back(std::make_unique<TransformerBlock>(
        "block" + std::to_string(b), config.model_dim, config.heads,
        config.ffn_dim, rng));
  }
  ln_final_ = std::make_unique<LayerNorm>("ln_final", config.model_dim);

  // Class prototypes: per class, a direction for every token position.
  std::vector<TensorF> prototypes;
  for (std::int64_t k = 0; k < config.classes; ++k) {
    TensorF proto(Shape{config.tokens, config.input_dim});
    for (std::int64_t t = 0; t < config.tokens; ++t) {
      for (std::int64_t d = 0; d < config.input_dim; ++d) {
        // Token magnitudes kept well under the outlier scale so the
        // informative tokens fit a 4-bit rendering losslessly (the
        // regime the paper's BERT/ViT measurements show).
        proto(t, d) = static_cast<float>(rng.normal(0.0, 0.3));
      }
    }
    prototypes.push_back(std::move(proto));
  }

  // Fixed outlier positions shared by every sample (separator-token
  // analogue): huge magnitude, identical across classes => carries no
  // class signal but dominates the tensor-wide quantization scale.
  std::vector<std::int64_t> outlier_pos;
  TensorF outlier_dir(Shape{config.outlier_tokens, config.input_dim});
  for (std::int64_t o = 0; o < config.outlier_tokens; ++o) {
    outlier_pos.push_back(rng.uniform_int(0, config.tokens - 1));
    double norm = 0.0;
    std::vector<double> v(static_cast<std::size_t>(config.input_dim));
    for (auto& vi : v) {
      vi = rng.normal();
      norm += vi * vi;
    }
    norm = std::sqrt(norm);
    for (std::int64_t d = 0; d < config.input_dim; ++d) {
      outlier_dir(o, d) = static_cast<float>(
          v[static_cast<std::size_t>(d)] / norm * config.outlier_norm);
    }
  }
  auto inject_outliers = [&](TensorF& x) {
    for (std::int64_t o = 0; o < config_.outlier_tokens; ++o) {
      const std::int64_t t = outlier_pos[static_cast<std::size_t>(o)];
      for (std::int64_t d = 0; d < config_.input_dim; ++d) {
        x(t, d) = outlier_dir(o, d);
      }
    }
  };

  // Noisy sample generator shared by calibration and evaluation.
  auto make_sample = [&](std::int64_t cls) {
    TensorF x = prototypes[static_cast<std::size_t>(cls)];
    for (float& v : x.data()) {
      v = static_cast<float>(config_.signal * v +
                             config_.noise * rng.laplace(0.3));
    }
    inject_outliers(x);
    return x;
  };

  // Calibration inputs (see CnnProxy): a few noisy samples per class.
  calibration_.resize(static_cast<std::size_t>(config.classes));
  for (std::int64_t k = 0; k < config.classes; ++k) {
    for (int rep = 0; rep < 4; ++rep) {
      calibration_[static_cast<std::size_t>(k)].push_back(make_sample(k));
    }
  }

  // Evaluation set (with label noise, see CnnProxy::Config).
  for (std::int64_t s = 0; s < config.samples; ++s) {
    const std::int64_t true_class = rng.uniform_int(0, config.classes - 1);
    inputs_.push_back(make_sample(true_class));
    labels_.push_back(rng.bernoulli(config.label_noise)
                          ? rng.uniform_int(0, config.classes - 1)
                          : true_class);
  }
}

TensorF TransformerProxy::embed_tokens(const TensorF& raw,
                                       QuantEngine& engine) const {
  TensorF x = embed_->forward(raw, engine);
  for (const auto& block : blocks_) {
    x = block->forward(x, engine);
  }
  // Final LayerNorm before the head (as in ViT/BERT): equalizes token
  // scales so outlier tokens do not dominate the pooled feature.
  x = ln_final_->forward(x, engine);
  MeanPoolTokens pool("pool");
  return pool.forward(x, engine);
}

ProxyResult TransformerProxy::evaluate(QuantEngine& engine) const {
  // Per-mode classifier calibration on noisy class samples (see
  // CnnProxy::evaluate).
  QuantEngine calib(engine.config());
  std::vector<TensorF> proto_features;
  proto_features.reserve(calibration_.size());
  for (const auto& class_samples : calibration_) {
    TensorF mean_feat;
    for (std::size_t i = 0; i < class_samples.size(); ++i) {
      TensorF f = embed_tokens(class_samples[i], calib);
      if (i == 0) {
        mean_feat = std::move(f);
      } else {
        auto md = mean_feat.data();
        auto fd = f.data();
        for (std::size_t j = 0; j < md.size(); ++j) md[j] += fd[j];
      }
    }
    for (float& v : mean_feat.data()) {
      v /= static_cast<float>(class_samples.size());
    }
    proto_features.push_back(std::move(mean_feat));
  }
  const auto classifier =
      make_template_classifier("classifier", proto_features);

  engine.clear_records();
  std::int64_t correct = 0;
  for (std::size_t s = 0; s < inputs_.size(); ++s) {
    const TensorF feat = embed_tokens(inputs_[s], engine);
    const TensorF logits = classifier->forward(feat, engine);
    if (argmax_row(logits) == labels_[s]) ++correct;
  }
  ProxyResult r;
  r.metric = static_cast<double>(correct) /
             static_cast<double>(inputs_.size());
  r.act_low_fraction = engine.overall_act_low_fraction();
  return r;
}

// ----------------------------------------------------------------- LM

SubTensorScaleProfile wiki_stream_profile() {
  SubTensorScaleProfile p = llm_profile();
  p.log_sigma = 0.6;  // curated text: tamer token-scale spread
  p.outlier_fraction = 0.03;
  return p;
}

SubTensorScaleProfile c4_stream_profile() {
  SubTensorScaleProfile p = llm_profile();
  p.log_sigma = 0.9;  // web crawl: wilder spread, more outliers
  p.outlier_fraction = 0.05;
  return p;
}

LmProxy::LmProxy(const Config& config) : config_(config) {
  DRIFT_CHECK(config.vocab > 1 && config.samples > 0, "invalid proxy");
  Rng rng(config.seed);

  embed_ = std::make_unique<Linear>("embed", config.input_dim,
                                    config.model_dim, rng);
  for (std::int64_t b = 0; b < config.blocks; ++b) {
    blocks_.push_back(std::make_unique<TransformerBlock>(
        "block" + std::to_string(b), config.model_dim, config.heads,
        config.ffn_dim, rng));
  }
  lm_head_ = std::make_unique<Linear>("lm_head", config.model_dim,
                                      config.vocab, rng);

  // Token streams from the corpus profile.
  for (std::int64_t s = 0; s < config.samples; ++s) {
    inputs_.push_back(
        synth_rows(rng, config.tokens, config.input_dim, config.stream));
  }

  // FP32 teacher logits.
  QuantEngine fp32(QuantEngine::Config{});
  std::vector<TensorF> fp32_logits;
  fp32_logits.reserve(inputs_.size());
  for (const auto& input : inputs_) {
    fp32_logits.push_back(logits_for(input, fp32));
  }

  // Calibrate the teacher temperature so the FP32 model's own
  // perplexity (exp of mean teacher entropy) hits target_base_ppl.
  auto mean_entropy = [&](double scale) {
    double acc = 0.0;
    std::int64_t positions = 0;
    for (const auto& logits : fp32_logits) {
      const std::int64_t T = logits.shape().dim(0);
      const std::int64_t V = logits.shape().dim(1);
      for (std::int64_t t = 0; t < T; ++t) {
        auto row = logits.row(t);
        double peak = row[0];
        for (float v : row) peak = std::max<double>(peak, v);
        double denom = 0.0, weighted = 0.0;
        for (std::int64_t j = 0; j < V; ++j) {
          const double z =
              (static_cast<double>(row[static_cast<std::size_t>(j)]) - peak) *
              scale;
          const double e = std::exp(z);
          denom += e;
          weighted += e * z;
        }
        acc += std::log(denom) - weighted / denom;
        ++positions;
      }
    }
    return acc / static_cast<double>(positions);
  };
  const double target_entropy = std::log(config.target_base_ppl);
  double lo = 1e-4, hi = 64.0;  // entropy decreases in scale
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = 0.5 * (lo + hi);
    (mean_entropy(mid) > target_entropy ? lo : hi) = mid;
  }
  calibrated_scale_ = 0.5 * (lo + hi);

  // Teacher distributions at the calibrated temperature.
  for (const auto& logits : fp32_logits) {
    std::vector<float> probs(static_cast<std::size_t>(logits.numel()));
    const std::int64_t T = logits.shape().dim(0);
    const std::int64_t V = logits.shape().dim(1);
    for (std::int64_t t = 0; t < T; ++t) {
      auto row = logits.row(t);
      double peak = row[0];
      for (float v : row) peak = std::max<double>(peak, v);
      double denom = 0.0;
      for (std::int64_t j = 0; j < V; ++j) {
        const double e = std::exp(
            (static_cast<double>(row[static_cast<std::size_t>(j)]) - peak) *
            calibrated_scale_);
        probs[static_cast<std::size_t>(t * V + j)] = static_cast<float>(e);
        denom += e;
      }
      for (std::int64_t j = 0; j < V; ++j) {
        probs[static_cast<std::size_t>(t * V + j)] =
            static_cast<float>(probs[static_cast<std::size_t>(t * V + j)] /
                               denom);
      }
    }
    teacher_.push_back(std::move(probs));
  }
}

TensorF LmProxy::logits_for(const TensorF& input, QuantEngine& engine) const {
  TensorF x = embed_->forward(input, engine);
  for (const auto& block : blocks_) {
    x = block->forward(x, engine);
  }
  return lm_head_->forward(x, engine);
}

ProxyResult LmProxy::evaluate(QuantEngine& engine) const {
  engine.clear_records();
  double ce_sum = 0.0;
  std::int64_t positions = 0;
  for (std::size_t s = 0; s < inputs_.size(); ++s) {
    const TensorF logits = logits_for(inputs_[s], engine);
    const std::int64_t T = logits.shape().dim(0);
    const std::int64_t V = logits.shape().dim(1);
    const auto& teacher = teacher_[s];
    for (std::int64_t t = 0; t < T; ++t) {
      auto row = logits.row(t);
      double peak = row[0];
      for (float v : row) peak = std::max<double>(peak, v);
      double denom = 0.0;
      std::vector<double> e(static_cast<std::size_t>(V));
      for (std::int64_t j = 0; j < V; ++j) {
        e[static_cast<std::size_t>(j)] = std::exp(
            (static_cast<double>(row[static_cast<std::size_t>(j)]) - peak) *
            calibrated_scale_);
        denom += e[static_cast<std::size_t>(j)];
      }
      double ce = 0.0;
      for (std::int64_t j = 0; j < V; ++j) {
        const double p =
            teacher[static_cast<std::size_t>(t * V + j)];
        if (p <= 0.0) continue;
        const double q =
            std::max(e[static_cast<std::size_t>(j)] / denom, 1e-12);
        ce -= p * std::log(q);
      }
      ce_sum += ce;
      ++positions;
    }
  }
  ProxyResult r;
  r.metric = std::exp(ce_sum / static_cast<double>(positions));
  r.act_low_fraction = engine.overall_act_low_fraction();
  return r;
}

}  // namespace drift::nn
