// Hardware workload extraction: the full-size layer GEMM shapes of the
// seven models the paper evaluates (Section 5.1), plus the activation
// distribution profile each model's tensors follow.
//
// The performance/energy benches (Figures 7 and 8) consume these
// shapes through the analytical/cycle models; the *values* flowing
// through the full-size networks never need to be materialized — only
// the per-sub-tensor statistics, which nn/synthetic.hpp samples from
// the model's profile.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/analytical_model.hpp"
#include "nn/synthetic.hpp"

namespace drift::nn {

/// What produced a GEMM (affects which operands are dynamic).
enum class LayerKind {
  kConv,         ///< im2col'ed convolution
  kFc,           ///< classifier / logits projection
  kQkvProj,      ///< fused QKV projection
  kAttnScore,    ///< Q @ K^T (both operands are activations)
  kAttnContext,  ///< softmax(scores) @ V (both operands are activations)
  kOutProj,      ///< attention output projection
  kFfn,          ///< feed-forward projection (either half)
  kEmbed,        ///< patch / token embedding projection
};

std::string to_string(LayerKind kind);

/// One GEMM of a model, possibly repeated (identical blocks / heads).
struct LayerGemm {
  std::string name;
  LayerKind kind = LayerKind::kFc;
  core::GemmDims dims;
  std::int64_t repeat = 1;  ///< identical instances (blocks x heads)
  std::int64_t kernel = 1;  ///< conv kernel edge (row-stationary mapping)

  std::int64_t total_macs() const { return dims.macs() * repeat; }
};

/// Model family tag (drives granularity and profile choices).
enum class ModelFamily { kCnn, kVit, kBert, kLlm };

std::string to_string(ModelFamily family);

/// A complete model workload.
struct WorkloadSpec {
  std::string model;
  ModelFamily family = ModelFamily::kCnn;
  std::vector<LayerGemm> layers;
  SubTensorScaleProfile act_profile;
  SubTensorScaleProfile weight_profile;

  std::int64_t total_macs() const;
  std::int64_t total_gemms() const;  ///< counting repeats
};

/// Full-size shape generators for the paper's evaluation set.
WorkloadSpec make_resnet18();
WorkloadSpec make_resnet50();
WorkloadSpec make_vit_b16();
WorkloadSpec make_deit_s();
WorkloadSpec make_bert_base(std::int64_t seq_len = 128);
WorkloadSpec make_gpt2_xl(std::int64_t seq_len = 1024);
WorkloadSpec make_bloom_7b1(std::int64_t seq_len = 1024);
WorkloadSpec make_opt_6p7b(std::int64_t seq_len = 1024);

/// The seven workloads of Figures 7/8, in the paper's order:
/// ResNet18, ResNet50, ViT-B, DeiT-S, BERT, GPT2-XL, OPT-6.7B.
std::vector<WorkloadSpec> paper_workloads();

}  // namespace drift::nn
