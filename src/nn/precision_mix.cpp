#include "nn/precision_mix.hpp"

#include <algorithm>

#include "core/noise_budget.hpp"

#include "util/assert.hpp"

namespace drift::nn {
namespace {

/// Tensor-wide Eq. 1 calibration from sampled sub-tensor statistics.
core::QuantParams params_from_stats(
    const std::vector<core::SubTensorStats>& stats, core::Precision hp) {
  double max_abs = 0.0;
  for (const auto& s : stats) max_abs = std::max(max_abs, s.max_abs);
  core::QuantParams p;
  p.bits = hp;
  p.delta = max_abs > 0.0
                ? max_abs / static_cast<double>(hp.max_level())
                : 1.0;
  return p;
}

/// Runs the configured algorithm over one operand's sub-tensor stats;
/// returns the in-order low/high pattern.  `elements` is the element
/// count of each sub-tensor (needed by the noise-budget selection).
std::vector<bool> classify(const std::vector<core::SubTensorStats>& stats,
                           std::int64_t elements, const MixConfig& config,
                           bool operand_is_dynamic) {
  std::vector<bool> low(stats.size(), false);
  if (!operand_is_dynamic || config.algo == MixAlgorithm::kStaticInt8) {
    return low;
  }
  if (config.algo == MixAlgorithm::kDrift) {
    const auto params = params_from_stats(stats, config.drift.hp);
    if (config.auto_threshold) {
      const std::vector<std::int64_t> sizes(stats.size(), elements);
      const auto auto_sel = core::select_auto_threshold(
          stats, sizes, params, config.drift, config.noise_budget);
      for (std::size_t i = 0; i < stats.size(); ++i) {
        low[i] = auto_sel.decisions[i].use_low;
      }
      return low;
    }
    for (std::size_t i = 0; i < stats.size(); ++i) {
      low[i] = core::select_precision(stats[i], params, config.drift).use_low;
    }
    return low;
  }
  // DRQ: region mean-abs against the tensor-wide mean-abs reference.
  double mean_ref = 0.0;
  for (const auto& s : stats) mean_ref += s.mean_abs;
  mean_ref /= static_cast<double>(stats.size());
  for (std::size_t i = 0; i < stats.size(); ++i) {
    low[i] = stats[i].mean_abs < config.drq.sensitivity * mean_ref;
  }
  return low;
}

}  // namespace

std::string to_string(MixAlgorithm algo) {
  switch (algo) {
    case MixAlgorithm::kStaticInt8: return "INT8";
    case MixAlgorithm::kDrq: return "DRQ";
    case MixAlgorithm::kDrift: return "Drift";
  }
  return "?";
}

std::vector<bool> build_act_pattern(const LayerGemm& layer, Rng& rng,
                                    const SubTensorScaleProfile& act_profile,
                                    const MixConfig& config) {
  // Convolution GEMM rows are streamed region-block-ordered (all output
  // positions of one DRQ region back to back), so precision decisions
  // apply to blocks of region^2 consecutive rows; token streams decide
  // per row.
  const std::int64_t block =
      layer.kind == LayerKind::kConv
          ? std::min<std::int64_t>(16, layer.dims.M)
          : 1;
  const std::int64_t groups = (layer.dims.M + block - 1) / block;
  const auto act_stats = sample_subtensor_stats(
      rng, groups, std::max<std::int64_t>(layer.dims.K * block, 2),
      act_profile);
  const auto group_low =
      classify(act_stats, std::max<std::int64_t>(layer.dims.K * block, 2),
               config, /*operand_is_dynamic=*/true);
  std::vector<bool> row_is_low(static_cast<std::size_t>(layer.dims.M));
  for (std::int64_t r = 0; r < layer.dims.M; ++r) {
    row_is_low[static_cast<std::size_t>(r)] =
        group_low[static_cast<std::size_t>(r / block)];
  }
  return row_is_low;
}

std::vector<bool> build_weight_pattern(const LayerGemm& layer, Rng& rng,
                                       const WorkloadSpec& spec,
                                       const MixConfig& config) {
  const bool second_operand_is_activation =
      layer.kind == LayerKind::kAttnScore ||
      layer.kind == LayerKind::kAttnContext;
  const auto& w_profile = second_operand_is_activation
                              ? spec.act_profile
                              : spec.weight_profile;
  const bool weights_dynamic =
      config.algo == MixAlgorithm::kDrift &&
      (config.dynamic_weights || second_operand_is_activation);
  const auto w_stats = sample_subtensor_stats(
      rng, layer.dims.N, std::max<std::int64_t>(layer.dims.K, 2),
      w_profile);
  return classify(w_stats, std::max<std::int64_t>(layer.dims.K, 2), config,
                  weights_dynamic);
}

LayerMix assemble_mix(const LayerGemm& layer, std::vector<bool> row_is_low,
                      const std::vector<bool>& col_is_low,
                      const MixConfig& config) {
  LayerMix mix;
  mix.layer = layer;
  mix.row_is_low = std::move(row_is_low);
  core::LayerWork work;
  work.k = layer.dims.K;
  work.pa_high = config.drift.hp.bits();
  work.pa_low = config.drift.lp.bits();
  work.pw_high = config.drift.hp.bits();
  work.pw_low = config.drift.lp.bits();
  for (bool is_low : mix.row_is_low) {
    (is_low ? work.m_low : work.m_high) += 1;
  }
  for (bool is_low : col_is_low) {
    (is_low ? work.n_low : work.n_high) += 1;
  }
  mix.work = work;
  mix.act_low_fraction =
      static_cast<double>(work.m_low) /
      static_cast<double>(std::max<std::int64_t>(layer.dims.M, 1));
  mix.weight_low_fraction =
      static_cast<double>(work.n_low) /
      static_cast<double>(std::max<std::int64_t>(layer.dims.N, 1));
  return mix;
}

std::vector<LayerMix> build_mixes(const WorkloadSpec& spec,
                                  const MixConfig& config) {
  Rng base_rng(config.seed);
  std::vector<LayerMix> mixes;
  mixes.reserve(spec.layers.size());
  std::uint64_t stream = 0;
  for (const LayerGemm& layer : spec.layers) {
    // One rng per layer, consumed activation-first then weight: the
    // operand builders share it so the stream order (and therefore
    // every sampled stat) is unchanged from the original fused loop.
    Rng rng = base_rng.fork(stream++);
    auto rows = build_act_pattern(layer, rng, spec.act_profile, config);
    const auto cols = build_weight_pattern(layer, rng, spec, config);
    mixes.push_back(assemble_mix(layer, std::move(rows), cols, config));
  }
  return mixes;
}

double overall_act_low_fraction(const std::vector<LayerMix>& mixes) {
  double macs = 0.0, low = 0.0;
  for (const auto& m : mixes) {
    const double w = static_cast<double>(m.layer.total_macs());
    macs += w;
    low += w * m.act_low_fraction;
  }
  return macs > 0.0 ? low / macs : 0.0;
}

}  // namespace drift::nn
