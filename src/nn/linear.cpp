#include "nn/linear.hpp"

#include <cmath>

#include "nn/gemm.hpp"
#include "obs/metrics.hpp"
#include "util/assert.hpp"

namespace drift::nn {

Linear::Linear(std::string name, TensorF weight, TensorF bias)
    : name_(std::move(name)), weight_(std::move(weight)),
      bias_(std::move(bias)) {
  DRIFT_CHECK(weight_.shape().rank() == 2, "weight must be [out, in]");
  DRIFT_CHECK(bias_.shape().rank() == 1 &&
                  bias_.shape().dim(0) == weight_.shape().dim(0),
              "bias must be [out]");
}

Linear::Linear(std::string name, std::int64_t in_features,
               std::int64_t out_features, Rng& rng)
    : name_(std::move(name)), weight_(Shape{out_features, in_features}),
      bias_(Shape{out_features}, 0.0f) {
  DRIFT_CHECK(in_features > 0 && out_features > 0, "invalid layer size");
  // Kaiming-flavoured base scale; per-channel lognormal spread mirrors
  // the heterogeneous sub-tensor scales real checkpoints exhibit.
  const double base =
      std::sqrt(2.0 / static_cast<double>(in_features)) / std::sqrt(2.0);
  auto wd = weight_.data();
  for (std::int64_t o = 0; o < out_features; ++o) {
    const double channel_scale = base * std::exp(rng.normal(0.0, 0.4));
    for (std::int64_t i = 0; i < in_features; ++i) {
      wd[static_cast<std::size_t>(o * in_features + i)] =
          static_cast<float>(rng.laplace(channel_scale));
    }
  }
}

TensorF Linear::forward(const TensorF& input, QuantEngine& engine) {
  DRIFT_OBS_LAYER_SCOPE(name_);
  DRIFT_CHECK(input.shape().rank() == 2, "Linear expects [M, K]");
  DRIFT_CHECK(input.shape().dim(1) == in_features(),
              "Linear input width mismatch");
  const OperandResult act = engine.process_activation_rows(input);
  const OperandResult wgt = engine.process_weight(weight_);
  TensorF out = matmul_nt(act.effective, wgt.effective);
  add_bias(out, bias_);
  engine.record(name_, input.shape().dim(0), in_features(), out_features(),
                act.low_fraction, wgt.low_fraction_rows);
  return out;
}

}  // namespace drift::nn
