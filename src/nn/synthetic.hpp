// Distribution-faithful synthetic data (the paper-data substitution).
//
// We do not have ImageNet, GLUE, WikiText or the pretrained
// checkpoints; what the Drift algorithm actually consumes is the
// *statistical structure* of activations: zero-mean Laplace sub-tensors
// whose scale b varies widely across sub-tensors (Figure 1), with the
// sub-tensor scale field being
//   - spatially smooth for CNN feature maps (objects vs background:
//     DRQ's home turf), and
//   - spiky for transformer token streams (a few outlier tokens with
//     10-50x scale, the LLM.int8 phenomenon that defeats tensor-wide
//     scaling).
// A SubTensorScaleProfile captures that structure; generators emit
// concrete activation tensors and per-sub-tensor statistics from it.
#pragma once

#include <cstdint>
#include <vector>

#include "core/selector.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace drift::nn {

/// How the Laplace scale b varies across sub-tensors of one tensor.
struct SubTensorScaleProfile {
  double log_mean = 0.0;    ///< mean of ln(b)
  double log_sigma = 0.8;   ///< stddev of ln(b): inter-sub-tensor spread
  double outlier_fraction = 0.0;  ///< share of outlier sub-tensors
  double outlier_scale = 10.0;    ///< scale multiplier for outliers
  /// AR(1) correlation of ln(b) across adjacent sub-tensors: near 1 for
  /// CNN spatial fields (contiguous low/high regions), near 0 for token
  /// streams (scattered).
  double correlation = 0.0;
};

/// Canonical profiles used across benches.
SubTensorScaleProfile cnn_profile();          ///< smooth, no outliers
SubTensorScaleProfile vit_profile();          ///< moderate outlier patches
SubTensorScaleProfile bert_profile();         ///< outlier tokens
SubTensorScaleProfile llm_profile();          ///< strong outlier tokens
SubTensorScaleProfile weight_profile();       ///< per-channel spread

/// Draws the per-sub-tensor scale sequence b[0..count) from a profile
/// (AR(1) log-normal field with outlier injection).
std::vector<double> sample_scales(Rng& rng, std::int64_t count,
                                  const SubTensorScaleProfile& profile);

/// Synthesizes a [rows, cols] activation matrix: row i ~ Laplace(b_i)
/// with b from sample_scales.
TensorF synth_rows(Rng& rng, std::int64_t rows, std::int64_t cols,
                   const SubTensorScaleProfile& profile);

/// Synthesizes a [C, H, W] feature map whose g-region scale field
/// follows the profile (regions enumerated row-major over H/W blocks).
TensorF synth_chw(Rng& rng, std::int64_t channels, std::int64_t height,
                  std::int64_t width, std::int64_t region,
                  const SubTensorScaleProfile& profile);

/// Samples per-sub-tensor statistics *directly* (no element storage):
/// for a sub-tensor of `elements` i.i.d. Laplace(b) values,
///   avg|Y| ~ b * Gamma(n, 1/n)   (mean b, relative sd 1/sqrt(n))
///   max|Y| ~ b * (ln n + Gumbel) (exponential order statistic)
/// Used by the hardware benches to derive precision mixes for full-size
/// models (GPT2-XL etc.) without materializing billion-element tensors.
std::vector<core::SubTensorStats> sample_subtensor_stats(
    Rng& rng, std::int64_t count, std::int64_t elements,
    const SubTensorScaleProfile& profile);

}  // namespace drift::nn
