// Normalization layers.
#pragma once

#include "nn/layer.hpp"

namespace drift::nn {

/// LayerNorm over the last axis of a [M, N] tensor, learned affine.
class LayerNorm : public Layer {
 public:
  LayerNorm(std::string name, std::int64_t width);

  TensorF forward(const TensorF& input, QuantEngine& engine) override;
  const std::string& name() const override { return name_; }

  std::int64_t width() const { return gamma_.shape().dim(0); }

 private:
  std::string name_;
  TensorF gamma_;  ///< [N]
  TensorF beta_;   ///< [N]
  static constexpr float kEps = 1e-5f;
};

/// Inference-mode BatchNorm over channels of a [C, H, W] tensor, with
/// fixed statistics (identity-initialized; proxies fold scale into
/// convs, but the layer exists so CNN topologies match the real nets).
class BatchNorm2d : public Layer {
 public:
  BatchNorm2d(std::string name, std::int64_t channels);

  TensorF forward(const TensorF& input, QuantEngine& engine) override;
  const std::string& name() const override { return name_; }

 private:
  std::string name_;
  TensorF scale_;  ///< [C] — gamma / sqrt(var + eps)
  TensorF shift_;  ///< [C] — beta - mean * scale
};

}  // namespace drift::nn
