#include "nn/conv2d.hpp"

#include <cmath>

#include "nn/gemm.hpp"
#include "obs/metrics.hpp"
#include "util/assert.hpp"
#include "util/thread_pool.hpp"

namespace drift::nn {

TensorF im2col(const TensorF& input, std::int64_t kh, std::int64_t kw,
               std::int64_t stride, std::int64_t pad) {
  DRIFT_CHECK(input.shape().rank() == 3, "im2col expects [C, H, W]");
  DRIFT_CHECK(kh > 0 && kw > 0 && stride > 0 && pad >= 0,
              "invalid conv geometry");
  const std::int64_t C = input.shape().dim(0);
  const std::int64_t H = input.shape().dim(1);
  const std::int64_t W = input.shape().dim(2);
  const std::int64_t OH = (H + 2 * pad - kh) / stride + 1;
  const std::int64_t OW = (W + 2 * pad - kw) / stride + 1;
  DRIFT_CHECK(OH > 0 && OW > 0, "kernel larger than padded input");

  TensorF out(Shape{OH * OW, C * kh * kw}, 0.0f);
  auto src = input.data();
  auto dst = out.data();
  const std::int64_t row_width = C * kh * kw;
  // Each output row `oh` owns the rows [oh*OW, (oh+1)*OW) of the
  // lowered matrix, so parallelizing over oh writes disjoint slices.
  util::parallel_for(0, OH, 8, [&](std::int64_t oh0, std::int64_t oh1) {
  for (std::int64_t oh = oh0; oh < oh1; ++oh) {
    for (std::int64_t ow = 0; ow < OW; ++ow) {
      const std::int64_t row = oh * OW + ow;
      for (std::int64_t c = 0; c < C; ++c) {
        for (std::int64_t dh = 0; dh < kh; ++dh) {
          const std::int64_t h = oh * stride - pad + dh;
          if (h < 0 || h >= H) continue;
          for (std::int64_t dw = 0; dw < kw; ++dw) {
            const std::int64_t w = ow * stride - pad + dw;
            if (w < 0 || w >= W) continue;
            dst[static_cast<std::size_t>(row * row_width +
                                         (c * kh + dh) * kw + dw)] =
                src[static_cast<std::size_t>((c * H + h) * W + w)];
          }
        }
      }
    }
  }
  });
  return out;
}

Conv2d::Conv2d(std::string name, std::int64_t in_channels,
               std::int64_t out_channels, std::int64_t kernel,
               std::int64_t stride, std::int64_t pad, Rng& rng)
    : name_(std::move(name)), in_channels_(in_channels),
      out_channels_(out_channels), kernel_(kernel), stride_(stride),
      pad_(pad),
      weight_(Shape{out_channels, in_channels * kernel * kernel}),
      bias_(Shape{out_channels}, 0.0f) {
  DRIFT_CHECK(in_channels > 0 && out_channels > 0 && kernel > 0,
              "invalid conv shape");
  const std::int64_t fan_in = in_channels * kernel * kernel;
  const double base =
      std::sqrt(2.0 / static_cast<double>(fan_in)) / std::sqrt(2.0);
  auto wd = weight_.data();
  for (std::int64_t o = 0; o < out_channels; ++o) {
    const double channel_scale = base * std::exp(rng.normal(0.0, 0.4));
    for (std::int64_t i = 0; i < fan_in; ++i) {
      wd[static_cast<std::size_t>(o * fan_in + i)] =
          static_cast<float>(rng.laplace(channel_scale));
    }
  }
}

std::int64_t Conv2d::out_size(std::int64_t in_size) const {
  return (in_size + 2 * pad_ - kernel_) / stride_ + 1;
}

TensorF Conv2d::forward(const TensorF& input, QuantEngine& engine) {
  DRIFT_OBS_LAYER_SCOPE(name_);
  DRIFT_CHECK(input.shape().rank() == 3, "Conv2d expects [C, H, W]");
  DRIFT_CHECK(input.shape().dim(0) == in_channels_,
              "Conv2d channel mismatch");
  const OperandResult act = engine.process_activation_regions(input);
  const OperandResult wgt = engine.process_weight(weight_);

  const TensorF lowered = im2col(act.effective, kernel_, kernel_, stride_,
                                 pad_);
  TensorF out2d = matmul_nt(lowered, wgt.effective);
  add_bias(out2d, bias_);

  const std::int64_t OH = out_size(input.shape().dim(1));
  const std::int64_t OW = out_size(input.shape().dim(2));
  engine.record(name_, OH * OW, in_channels_ * kernel_ * kernel_,
                out_channels_, act.low_fraction, wgt.low_fraction_rows);

  // [OH*OW, OC] -> [OC, OH, OW].  Parallel over channels: each chunk
  // writes its own contiguous [c, :, :] planes.
  TensorF out(Shape{out_channels_, OH, OW});
  auto src = out2d.data();
  auto dst = out.data();
  const std::int64_t P = OH * OW;
  util::parallel_for(0, out_channels_, 4,
                     [&](std::int64_t c0, std::int64_t c1) {
    for (std::int64_t c = c0; c < c1; ++c) {
      float* plane = dst.data() + static_cast<std::size_t>(c * P);
      for (std::int64_t p = 0; p < P; ++p) {
        plane[p] = src[static_cast<std::size_t>(p * out_channels_ + c)];
      }
    }
  });
  return out;
}

DepthwiseConv2d::DepthwiseConv2d(std::string name, std::int64_t channels,
                                 std::int64_t kernel, std::int64_t stride,
                                 std::int64_t pad, Rng& rng)
    : name_(std::move(name)), channels_(channels), kernel_(kernel),
      stride_(stride), pad_(pad), weight_(Shape{channels, kernel * kernel}),
      bias_(Shape{channels}, 0.0f) {
  DRIFT_CHECK(channels > 0 && kernel > 0 && stride > 0 && pad >= 0,
              "invalid depthwise conv shape");
  const std::int64_t fan_in = kernel * kernel;
  const double base =
      std::sqrt(2.0 / static_cast<double>(fan_in)) / std::sqrt(2.0);
  auto wd = weight_.data();
  for (std::int64_t c = 0; c < channels; ++c) {
    const double channel_scale = base * std::exp(rng.normal(0.0, 0.4));
    for (std::int64_t i = 0; i < fan_in; ++i) {
      wd[static_cast<std::size_t>(c * fan_in + i)] =
          static_cast<float>(rng.laplace(channel_scale));
    }
  }
}

std::int64_t DepthwiseConv2d::out_size(std::int64_t in_size) const {
  return (in_size + 2 * pad_ - kernel_) / stride_ + 1;
}

TensorF DepthwiseConv2d::forward(const TensorF& input, QuantEngine& engine) {
  DRIFT_OBS_LAYER_SCOPE(name_);
  DRIFT_CHECK(input.shape().rank() == 3, "DepthwiseConv2d expects [C, H, W]");
  DRIFT_CHECK(input.shape().dim(0) == channels_,
              "DepthwiseConv2d channel mismatch");
  const OperandResult act = engine.process_activation_regions(input);
  const OperandResult wgt = engine.process_weight(weight_);

  const std::int64_t H = input.shape().dim(1);
  const std::int64_t W = input.shape().dim(2);
  const std::int64_t OH = out_size(H);
  const std::int64_t OW = out_size(W);
  DRIFT_CHECK(OH > 0 && OW > 0, "kernel larger than padded input");

  TensorF out(Shape{channels_, OH, OW});
  const TensorF& x = act.effective;
  const TensorF& w = wgt.effective;
  util::parallel_for(0, channels_, 4, [&](std::int64_t c0, std::int64_t c1) {
    for (std::int64_t c = c0; c < c1; ++c) {
      for (std::int64_t oh = 0; oh < OH; ++oh) {
        for (std::int64_t ow = 0; ow < OW; ++ow) {
          double acc = bias_.at(c);
          for (std::int64_t dh = 0; dh < kernel_; ++dh) {
            const std::int64_t h = oh * stride_ - pad_ + dh;
            if (h < 0 || h >= H) continue;
            for (std::int64_t dw = 0; dw < kernel_; ++dw) {
              const std::int64_t ww = ow * stride_ - pad_ + dw;
              if (ww < 0 || ww >= W) continue;
              acc += static_cast<double>(x(c, h, ww)) *
                     static_cast<double>(w(c, dh * kernel_ + dw));
            }
          }
          out(c, oh, ow) = static_cast<float>(acc);
        }
      }
    }
  });

  engine.record(name_, OH * OW, kernel_ * kernel_, channels_,
                act.low_fraction, wgt.low_fraction_rows);
  return out;
}

}  // namespace drift::nn
