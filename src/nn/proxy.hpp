// Reduced-scale accuracy/perplexity proxies (the checkpoint/dataset
// substitution — see DESIGN.md).
//
// Each proxy is a *real network* evaluated on a *synthetic task* whose
// statistical structure matches the paper's observation about the
// corresponding model family:
//
//   - CnnProxy: spatially smooth feature maps; class-discriminative
//     signal lives in high-activation regions (DRQ's home assumption).
//   - TransformerProxy: token streams with a few huge, class-
//     *irrelevant* outlier tokens (separator/position artifacts) while
//     the class signal lives in moderate-magnitude tokens.  Tensor-wide
//     low-bit truncation (DRQ) erases the signal tokens; per-sub-tensor
//     range adaptation (Drift) preserves them.
//   - LmProxy: a decoder scored against its own FP32 teacher
//     distribution, so perplexity degradation is exactly the KL cost of
//     the quantization rendering.
//
// Networks are built discriminative without training: the classifier's
// weight rows are the FP32 feature embeddings of the class prototypes
// (random-feature + prototype-matching construction), so FP32 accuracy
// is high but below 100% due to injected task noise.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "nn/model.hpp"
#include "nn/quant_engine.hpp"
#include "nn/synthetic.hpp"
#include "util/rng.hpp"

namespace drift::nn {

/// Outcome of one proxy evaluation.
struct ProxyResult {
  double metric = 0.0;            ///< accuracy in [0,1], or perplexity
  double act_low_fraction = 0.0;  ///< MAC-weighted 4-bit activation share
};

/// CNN image-classification proxy (stands in for ResNet18/50-class
/// experiments).
class CnnProxy {
 public:
  struct Config {
    std::int64_t classes = 10;
    std::int64_t image_size = 24;
    std::int64_t samples = 128;
    double signal = 1.0;        ///< prototype strength
    double noise = 0.08;        ///< background Laplace noise level
    /// Classes share a common object texture and differ by this much.
    double class_separation = 1.0;
    /// Fraction of samples whose label is re-drawn uniformly: the
    /// task's intrinsic Bayes floor.  Real benchmarks' sub-100%
    /// accuracies are data-intrinsic, not margin-fragile, so the proxy
    /// gets its difficulty the same way instead of by shrinking class
    /// margins to the quantization noise floor.
    double label_noise = 0.30;
    std::uint64_t seed = 7;
  };

  explicit CnnProxy(const Config& config);

  ProxyResult evaluate(QuantEngine& engine) const;
  const Config& config() const { return config_; }

 private:
  Config config_;
  std::unique_ptr<Sequential> features_;
  /// Per-class calibration inputs (noisy, like the evaluation set) for
  /// building the template head under each execution mode.
  std::vector<std::vector<TensorF>> calibration_;
  std::vector<TensorF> images_;      ///< evaluation inputs [3, S, S]
  std::vector<std::int64_t> labels_;
};

/// Transformer (ViT/BERT-style) classification proxy.
class TransformerProxy {
 public:
  struct Config {
    std::int64_t classes = 8;
    std::int64_t tokens = 24;
    std::int64_t input_dim = 16;
    std::int64_t model_dim = 32;
    std::int64_t heads = 4;
    std::int64_t ffn_dim = 64;
    std::int64_t blocks = 2;
    std::int64_t samples = 128;
    std::int64_t outlier_tokens = 2;  ///< huge non-informative tokens
    double outlier_norm = 24.0;
    double signal = 1.0;
    double noise = 0.25;
    double label_noise = 0.25;  ///< intrinsic Bayes floor (see CnnProxy)
    std::uint64_t seed = 11;
  };

  explicit TransformerProxy(const Config& config);

  ProxyResult evaluate(QuantEngine& engine) const;
  const Config& config() const { return config_; }

 private:
  TensorF embed_tokens(const TensorF& raw, QuantEngine& engine) const;

  Config config_;
  std::unique_ptr<Linear> embed_;
  std::vector<std::unique_ptr<TransformerBlock>> blocks_;
  std::unique_ptr<LayerNorm> ln_final_;  ///< pre-head LN (as in ViT/BERT)
  /// Per-class calibration inputs (noisy, outliers injected).
  std::vector<std::vector<TensorF>> calibration_;
  std::vector<TensorF> inputs_;      ///< [T, input_dim] token matrices
  std::vector<std::int64_t> labels_;
};

/// Decoder language-model proxy scored against its FP32 teacher.
class LmProxy {
 public:
  struct Config {
    std::int64_t vocab = 64;
    std::int64_t tokens = 24;
    std::int64_t input_dim = 16;
    std::int64_t model_dim = 32;
    std::int64_t heads = 4;
    std::int64_t ffn_dim = 64;
    std::int64_t blocks = 2;
    std::int64_t samples = 48;
    /// Teacher temperature is calibrated so the FP32 model's own
    /// perplexity lands here (the paper's LLMs sit in the 10-25 band);
    /// quantized renderings are then scored against that teacher.
    double target_base_ppl = 15.0;
    SubTensorScaleProfile stream = llm_profile();  ///< corpus profile
    std::uint64_t seed = 13;
  };

  explicit LmProxy(const Config& config);

  /// Returns perplexity (exp of mean cross-entropy against the FP32
  /// teacher distribution) plus the 4-bit fraction.
  ProxyResult evaluate(QuantEngine& engine) const;
  const Config& config() const { return config_; }

  /// The calibrated teacher temperature (1/scale); exposed for tests.
  double calibrated_scale() const { return calibrated_scale_; }

 private:
  TensorF logits_for(const TensorF& input, QuantEngine& engine) const;

  Config config_;
  double calibrated_scale_ = 1.0;
  std::unique_ptr<Linear> embed_;
  std::vector<std::unique_ptr<TransformerBlock>> blocks_;
  std::unique_ptr<Linear> lm_head_;
  std::vector<TensorF> inputs_;                ///< token streams
  std::vector<std::vector<float>> teacher_;    ///< per-sample, flattened
                                               ///< [T, vocab] FP32 probs
};

/// Corpus profile helpers for Table 1 (wiki-like vs c4-like streams).
SubTensorScaleProfile wiki_stream_profile();
SubTensorScaleProfile c4_stream_profile();

}  // namespace drift::nn
