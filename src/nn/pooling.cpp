#include "nn/pooling.hpp"

#include <algorithm>
#include <limits>

#include "obs/metrics.hpp"
#include "util/assert.hpp"

namespace drift::nn {

MaxPool2d::MaxPool2d(std::string name, std::int64_t kernel,
                     std::int64_t stride)
    : name_(std::move(name)), kernel_(kernel), stride_(stride) {
  DRIFT_CHECK(kernel > 0 && stride > 0, "invalid pooling geometry");
}

TensorF MaxPool2d::forward(const TensorF& input, QuantEngine&) {
  DRIFT_OBS_LAYER_SCOPE(name_);
  DRIFT_CHECK(input.shape().rank() == 3, "MaxPool2d expects [C, H, W]");
  const std::int64_t C = input.shape().dim(0);
  const std::int64_t H = input.shape().dim(1);
  const std::int64_t W = input.shape().dim(2);
  const std::int64_t OH = (H - kernel_) / stride_ + 1;
  const std::int64_t OW = (W - kernel_) / stride_ + 1;
  DRIFT_CHECK(OH > 0 && OW > 0, "pooling kernel larger than input");

  TensorF out(Shape{C, OH, OW});
  for (std::int64_t c = 0; c < C; ++c) {
    for (std::int64_t oh = 0; oh < OH; ++oh) {
      for (std::int64_t ow = 0; ow < OW; ++ow) {
        float peak = -std::numeric_limits<float>::infinity();
        for (std::int64_t dh = 0; dh < kernel_; ++dh) {
          for (std::int64_t dw = 0; dw < kernel_; ++dw) {
            peak = std::max(peak, input(c, oh * stride_ + dh,
                                        ow * stride_ + dw));
          }
        }
        out(c, oh, ow) = peak;
      }
    }
  }
  return out;
}

AvgPool2d::AvgPool2d(std::string name, std::int64_t kernel,
                     std::int64_t stride)
    : name_(std::move(name)), kernel_(kernel), stride_(stride) {
  DRIFT_CHECK(kernel > 0 && stride > 0, "invalid pooling geometry");
}

TensorF AvgPool2d::forward(const TensorF& input, QuantEngine&) {
  DRIFT_OBS_LAYER_SCOPE(name_);
  DRIFT_CHECK(input.shape().rank() == 3, "AvgPool2d expects [C, H, W]");
  const std::int64_t C = input.shape().dim(0);
  const std::int64_t H = input.shape().dim(1);
  const std::int64_t W = input.shape().dim(2);
  const std::int64_t OH = (H - kernel_) / stride_ + 1;
  const std::int64_t OW = (W - kernel_) / stride_ + 1;
  DRIFT_CHECK(OH > 0 && OW > 0, "pooling kernel larger than input");

  const double inv_window = 1.0 / static_cast<double>(kernel_ * kernel_);
  TensorF out(Shape{C, OH, OW});
  for (std::int64_t c = 0; c < C; ++c) {
    for (std::int64_t oh = 0; oh < OH; ++oh) {
      for (std::int64_t ow = 0; ow < OW; ++ow) {
        double acc = 0.0;
        for (std::int64_t dh = 0; dh < kernel_; ++dh) {
          for (std::int64_t dw = 0; dw < kernel_; ++dw) {
            acc += input(c, oh * stride_ + dh, ow * stride_ + dw);
          }
        }
        out(c, oh, ow) = static_cast<float>(acc * inv_window);
      }
    }
  }
  return out;
}

TensorF GlobalAvgPool::forward(const TensorF& input, QuantEngine&) {
  DRIFT_OBS_LAYER_SCOPE(name_);
  DRIFT_CHECK(input.shape().rank() == 3, "GlobalAvgPool expects [C, H, W]");
  const std::int64_t C = input.shape().dim(0);
  const std::int64_t HW = input.shape().dim(1) * input.shape().dim(2);
  TensorF out(Shape{1, C});
  auto src = input.data();
  for (std::int64_t c = 0; c < C; ++c) {
    double acc = 0.0;
    for (std::int64_t p = 0; p < HW; ++p) {
      acc += src[static_cast<std::size_t>(c * HW + p)];
    }
    out(0, c) = static_cast<float>(acc / static_cast<double>(HW));
  }
  return out;
}

TensorF MeanPoolTokens::forward(const TensorF& input, QuantEngine&) {
  DRIFT_OBS_LAYER_SCOPE(name_);
  DRIFT_CHECK(input.shape().rank() == 2, "MeanPoolTokens expects [T, D]");
  const std::int64_t T = input.shape().dim(0);
  const std::int64_t D = input.shape().dim(1);
  TensorF out(Shape{1, D}, 0.0f);
  for (std::int64_t t = 0; t < T; ++t) {
    auto row = input.row(t);
    for (std::int64_t d = 0; d < D; ++d) {
      out(0, d) += row[static_cast<std::size_t>(d)] /
                   static_cast<float>(T);
    }
  }
  return out;
}

}  // namespace drift::nn
