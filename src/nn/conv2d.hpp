// 2-D convolution via im2col + GEMM, single-sample [C, H, W] layout.
//
// Quantization is applied to the [C, H, W] input at DRQ-style region
// granularity *before* lowering (this is what both DRQ's and Drift's
// hardware see: the feature map in the global buffer), then the
// effective values are im2col'ed and multiplied.
#pragma once

#include "nn/layer.hpp"
#include "util/rng.hpp"

namespace drift::nn {

/// im2col lowering: input [C, H, W] with kernel (kh, kw), stride s and
/// symmetric zero padding p becomes a [OH*OW, C*kh*kw] matrix.
TensorF im2col(const TensorF& input, std::int64_t kh, std::int64_t kw,
               std::int64_t stride, std::int64_t pad);

class Conv2d : public Layer {
 public:
  Conv2d(std::string name, std::int64_t in_channels,
         std::int64_t out_channels, std::int64_t kernel, std::int64_t stride,
         std::int64_t pad, Rng& rng);

  TensorF forward(const TensorF& input, QuantEngine& engine) override;
  const std::string& name() const override { return name_; }

  std::int64_t in_channels() const { return in_channels_; }
  std::int64_t out_channels() const { return out_channels_; }
  std::int64_t kernel() const { return kernel_; }
  std::int64_t stride() const { return stride_; }
  std::int64_t pad() const { return pad_; }

  /// Output spatial size for a given input size.
  std::int64_t out_size(std::int64_t in_size) const;

 private:
  std::string name_;
  std::int64_t in_channels_, out_channels_, kernel_, stride_, pad_;
  TensorF weight_;  ///< [OC, IC*kh*kw] (output-major, im2col-ready)
  TensorF bias_;    ///< [OC]
};

/// Depthwise 2-D convolution: one k x k filter per channel, channels
/// never mix.  Quantization granularity matches Conv2d (regions on the
/// [C, H, W] input, per-output-channel rows on the [C, k*k] weight);
/// the GEMM-equivalent shape recorded for the hardware models is
/// [OH*OW, k*k] x [k*k, C] — exactly the depthwise MAC count.
class DepthwiseConv2d : public Layer {
 public:
  DepthwiseConv2d(std::string name, std::int64_t channels,
                  std::int64_t kernel, std::int64_t stride, std::int64_t pad,
                  Rng& rng);

  TensorF forward(const TensorF& input, QuantEngine& engine) override;
  const std::string& name() const override { return name_; }

  std::int64_t channels() const { return channels_; }
  std::int64_t kernel() const { return kernel_; }
  std::int64_t stride() const { return stride_; }
  std::int64_t pad() const { return pad_; }

  /// Output spatial size for a given input size.
  std::int64_t out_size(std::int64_t in_size) const;

 private:
  std::string name_;
  std::int64_t channels_, kernel_, stride_, pad_;
  TensorF weight_;  ///< [C, kh*kw]
  TensorF bias_;    ///< [C]
};

}  // namespace drift::nn
