// Integer-domain quantized GEMM.
//
// The accuracy experiments simulate quantized execution in float by
// rendering each operand to its "effective" dequantized values.  That
// is only legitimate if the float pipeline computes exactly what the
// integer hardware would.  This module implements the hardware view —
// per-sub-tensor integer codes at their selected precision, integer
// multiply-accumulate, and per-(row, column) output rescaling by
//
//    scale(i, j) = (2^lc_act_i * Δ_act) * (2^lc_wgt_j * Δ_wgt)
//
// — so tests can assert bit-level agreement between the two paths
// (tests/test_int_gemm.cpp).  It is also what a software emulator of
// the Drift PE array would run.
#pragma once

#include <vector>

#include "core/precision.hpp"
#include "core/quantizer.hpp"
#include "core/selector.hpp"
#include "tensor/tensor.hpp"

namespace drift::nn {

/// One operand in the integer domain: row-granular sub-tensors, each
/// holding either hp codes or lc-shifted lp codes.
struct QuantizedOperand {
  TensorI32 codes;                 ///< [rows, cols] integer codes
  core::QuantParams params;        ///< Eq. 1 calibration (Δ, hp)
  core::Precision lp = core::kInt4;
  std::vector<core::PrecisionDecision> rows;  ///< one per row

  /// The dequantization step of row r (Δ or 2^lc Δ).
  double row_scale(std::int64_t r) const;
};

/// Quantizes a [rows, cols] float matrix at row granularity with the
/// automatic threshold selection (budget as in core/noise_budget.hpp).
QuantizedOperand quantize_rows(const TensorF& x,
                               const core::SelectorConfig& config,
                               double noise_budget);

/// Dequantizes back to float (the "effective rendering" the float
/// simulation path uses) — exact by construction.
TensorF dequantize_operand(const QuantizedOperand& op);

/// Byte-level rendering of a QuantizedOperand for the SIMD microkernels:
/// every row as int8 codes, plus a packed-nibble (two codes per byte)
/// rendering for rows whose lp codes fit the 4-bit two's-complement
/// range.  Requires the operand's hp precision to fit int8 (bits <= 8).
struct PackedOperand {
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  std::vector<std::int8_t> s8;          ///< [rows * cols] int8 codes
  std::vector<std::uint8_t> s4;         ///< [rows * packed_cols()] nibbles
  std::vector<std::uint8_t> row_is_s4;  ///< 1 if row has a nibble rendering

  std::int64_t packed_cols() const;
  const std::int8_t* s8_row(std::int64_t r) const;
  const std::uint8_t* s4_row(std::int64_t r) const;
};

/// Renders the operand into the byte-level storage above.
PackedOperand pack_operand(const QuantizedOperand& op);

/// Integer GEMM: act [M, K] times wgt [N, K]^T with int64 accumulation
/// and per-(row, col) rescale.  This is what the BitGroup array
/// physically computes.  When both operands fit int8 and K is within
/// the dispatch overflow bound, row pairs are routed by precision class
/// to the active SIMD backend's microkernels (hh -> s8s8, hl/lh ->
/// s8s4, ll -> s4s4); integer accumulation is exact, so the result is
/// bitwise identical to the legacy int64 fallback loop regardless of
/// backend.
TensorF int_gemm_nt(const QuantizedOperand& act,
                    const QuantizedOperand& wgt);

/// MAC-weighted fraction of the GEMM executed with both operands low
/// precision (the ll class).
double ll_fraction(const QuantizedOperand& act, const QuantizedOperand& wgt);

}  // namespace drift::nn
