#include "nn/int_gemm.hpp"

#include "core/noise_budget.hpp"
#include "util/assert.hpp"
#include "util/thread_pool.hpp"

namespace drift::nn {

double QuantizedOperand::row_scale(std::int64_t r) const {
  DRIFT_CHECK_INDEX(r, static_cast<std::int64_t>(rows.size()));
  const auto& d = rows[static_cast<std::size_t>(r)];
  if (!d.use_low) return params.delta;
  return params.delta *
         static_cast<double>(std::int64_t{1} << d.choice.lc);
}

int QuantizedOperand::row_bits(std::int64_t r) const {
  DRIFT_CHECK_INDEX(r, static_cast<std::int64_t>(rows.size()));
  return rows[static_cast<std::size_t>(r)].use_low ? lp.bits()
                                                   : params.bits.bits();
}

QuantizedOperand quantize_rows(const TensorF& x,
                               const core::SelectorConfig& config,
                               double noise_budget) {
  DRIFT_CHECK(x.shape().rank() == 2, "quantize_rows expects [rows, cols]");
  const std::int64_t rows = x.shape().dim(0);
  const std::int64_t cols = x.shape().dim(1);

  QuantizedOperand op;
  op.params = core::compute_quant_params(x.data(), config.hp);
  op.lp = config.lp;
  op.codes = TensorI32(x.shape());

  const auto views = partition_rows(x.shape());
  const auto stats = core::compute_stats(views, x.data());
  const std::vector<std::int64_t> sizes(views.size(), cols);
  auto selection = core::select_auto_threshold(stats, sizes, op.params,
                                               config, noise_budget);
  op.rows = std::move(selection.decisions);

  // hi->lo code conversion is independent per row (per sub-tensor).
  util::parallel_for(0, rows, 16, [&](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t r = r0; r < r1; ++r) {
      const auto& d = op.rows[static_cast<std::size_t>(r)];
      for (std::int64_t c = 0; c < cols; ++c) {
        const std::int32_t q = core::quantize_value(x(r, c), op.params);
        op.codes(r, c) =
            d.use_low ? core::convert_to_low(q, config.lp, d.choice) : q;
      }
    }
  });
  return op;
}

TensorF dequantize_operand(const QuantizedOperand& op) {
  const std::int64_t rows = op.codes.shape().dim(0);
  const std::int64_t cols = op.codes.shape().dim(1);
  TensorF out(op.codes.shape());
  util::parallel_for(0, rows, 16, [&](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t r = r0; r < r1; ++r) {
      const double scale = op.row_scale(r);
      for (std::int64_t c = 0; c < cols; ++c) {
        out(r, c) = static_cast<float>(op.codes(r, c) * scale);
      }
    }
  });
  return out;
}

TensorF int_gemm_nt(const QuantizedOperand& act,
                    const QuantizedOperand& wgt) {
  const std::int64_t M = act.codes.shape().dim(0);
  const std::int64_t K = act.codes.shape().dim(1);
  DRIFT_CHECK(wgt.codes.shape().dim(1) == K, "inner dimension mismatch");
  const std::int64_t N = wgt.codes.shape().dim(0);

  TensorF out(Shape{M, N});
  // Integer accumulation is exact, so any chunking is bit-identical;
  // rows of `out` are disjoint per chunk.
  util::parallel_for(0, M, 8, [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      const double act_scale = act.row_scale(i);
      for (std::int64_t j = 0; j < N; ++j) {
        // Pure integer multiply-accumulate, as the BitBrick array does.
        std::int64_t acc = 0;
        for (std::int64_t k = 0; k < K; ++k) {
          acc += static_cast<std::int64_t>(act.codes(i, k)) *
                 static_cast<std::int64_t>(wgt.codes(j, k));
        }
        // One rescale per output (the psum exit multiplier).
        out(i, j) = static_cast<float>(static_cast<double>(acc) * act_scale *
                                       wgt.row_scale(j));
      }
    }
  });
  return out;
}

double ll_fraction(const QuantizedOperand& act,
                   const QuantizedOperand& wgt) {
  std::int64_t act_low = 0, wgt_low = 0;
  for (const auto& d : act.rows) act_low += d.use_low ? 1 : 0;
  for (const auto& d : wgt.rows) wgt_low += d.use_low ? 1 : 0;
  const double m = static_cast<double>(act.rows.size());
  const double n = static_cast<double>(wgt.rows.size());
  if (m == 0.0 || n == 0.0) return 0.0;
  return (static_cast<double>(act_low) / m) *
         (static_cast<double>(wgt_low) / n);
}

}  // namespace drift::nn
