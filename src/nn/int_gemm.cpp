#include "nn/int_gemm.hpp"

#include "core/noise_budget.hpp"
// drift-lint: allow(intrinsic) — integer GEMM is the primary dispatch
// consumer; quadrant tiles route to the table's microkernels.
#include "nn/simd/kernel_dispatch.hpp"
// drift-lint: allow(intrinsic) — packed-nibble operand layout shared
// with the s4 microkernels.
#include "nn/simd/pack.hpp"
#include "util/assert.hpp"
#include "util/thread_pool.hpp"

namespace drift::nn {

double QuantizedOperand::row_scale(std::int64_t r) const {
  DRIFT_CHECK_INDEX(r, static_cast<std::int64_t>(rows.size()));
  const auto& d = rows[static_cast<std::size_t>(r)];
  if (!d.use_low) return params.delta;
  return params.delta *
         static_cast<double>(std::int64_t{1} << d.choice.lc);
}

QuantizedOperand quantize_rows(const TensorF& x,
                               const core::SelectorConfig& config,
                               double noise_budget) {
  DRIFT_CHECK(x.shape().rank() == 2, "quantize_rows expects [rows, cols]");
  const std::int64_t rows = x.shape().dim(0);
  const std::int64_t cols = x.shape().dim(1);

  QuantizedOperand op;
  op.params = core::compute_quant_params(x.data(), config.hp);
  op.lp = config.lp;
  op.codes = TensorI32(x.shape());

  const auto views = partition_rows(x.shape());
  const auto stats = core::compute_stats(views, x.data());
  const std::vector<std::int64_t> sizes(views.size(), cols);
  auto selection = core::select_auto_threshold(stats, sizes, op.params,
                                               config, noise_budget);
  op.rows = std::move(selection.decisions);

  // hi->lo code conversion is independent per row (per sub-tensor).
  // The dispatched row kernel is pinned to the llround semantics of
  // quantize_value / convert_to_low, so codes are backend-invariant.
  const auto& kt = simd::active();
  const std::int64_t hp_limit = op.params.bits.max_level();
  const std::int64_t lp_limit = config.lp.max_level();
  util::parallel_for(0, rows, 16, [&](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t r = r0; r < r1; ++r) {
      const auto& d = op.rows[static_cast<std::size_t>(r)];
      kt.quantize_convert_row(x.row(r).data(), cols, op.params.delta,
                              hp_limit, d.use_low, d.choice.lc, lp_limit,
                              op.codes.row(r).data());
    }
  });
  return op;
}

TensorF dequantize_operand(const QuantizedOperand& op) {
  const std::int64_t rows = op.codes.shape().dim(0);
  const std::int64_t cols = op.codes.shape().dim(1);
  TensorF out(op.codes.shape());
  util::parallel_for(0, rows, 16, [&](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t r = r0; r < r1; ++r) {
      const double scale = op.row_scale(r);
      for (std::int64_t c = 0; c < cols; ++c) {
        out(r, c) = static_cast<float>(op.codes(r, c) * scale);
      }
    }
  });
  return out;
}

std::int64_t PackedOperand::packed_cols() const {
  return simd::packed_size(cols);
}

const std::int8_t* PackedOperand::s8_row(std::int64_t r) const {
  DRIFT_CHECK_INDEX(r, rows);
  return s8.data() + static_cast<std::size_t>(r * cols);
}

const std::uint8_t* PackedOperand::s4_row(std::int64_t r) const {
  DRIFT_CHECK_INDEX(r, rows);
  return s4.data() + static_cast<std::size_t>(r * packed_cols());
}

PackedOperand pack_operand(const QuantizedOperand& op) {
  DRIFT_CHECK(op.params.bits.bits() <= 8,
              "pack_operand requires hp codes that fit int8");
  PackedOperand p;
  p.rows = op.codes.shape().dim(0);
  p.cols = op.codes.shape().dim(1);
  p.s8.resize(static_cast<std::size_t>(p.rows * p.cols));
  p.s4.resize(static_cast<std::size_t>(p.rows * p.packed_cols()));
  p.row_is_s4.assign(static_cast<std::size_t>(p.rows), 0);
  const bool lp_packs = op.lp.bits() <= 4;
  for (std::int64_t r = 0; r < p.rows; ++r) {
    const auto codes = op.codes.row(r);
    std::int8_t* dst = p.s8.data() + static_cast<std::size_t>(r * p.cols);
    for (std::int64_t c = 0; c < p.cols; ++c) {
      // drift-lint: allow(narrow) — codes are clamped to ±max_level
      // (≤ 127 for hp ≤ 8 bits, checked above) at quantization time.
      dst[c] = static_cast<std::int8_t>(codes[static_cast<std::size_t>(c)]);
    }
    if (lp_packs && op.rows[static_cast<std::size_t>(r)].use_low) {
      simd::pack_nibbles(
          codes, std::span<std::uint8_t>(
                     p.s4.data() + static_cast<std::size_t>(
                                       r * p.packed_cols()),
                     static_cast<std::size_t>(p.packed_cols())));
      p.row_is_s4[static_cast<std::size_t>(r)] = 1;
    }
  }
  return p;
}

TensorF int_gemm_nt(const QuantizedOperand& act,
                    const QuantizedOperand& wgt) {
  const std::int64_t M = act.codes.shape().dim(0);
  const std::int64_t K = act.codes.shape().dim(1);
  DRIFT_CHECK(wgt.codes.shape().dim(1) == K, "inner dimension mismatch");
  const std::int64_t N = wgt.codes.shape().dim(0);

  TensorF out(Shape{M, N});

  // Route through the dispatched microkernels when both operands fit
  // int8 and K respects the vector accumulator overflow bound.  The
  // dots are exact integer sums, so routed and fallback results are
  // bitwise identical.
  const bool routed = act.params.bits.bits() <= 8 &&
                      wgt.params.bits.bits() <= 8 && K <= simd::kMaxDotLength;
  if (routed) {
    const PackedOperand pa = pack_operand(act);
    const PackedOperand pw = pack_operand(wgt);
    const auto& kt = simd::active();
    // Hoisted out of the inner loop: per-output dots take tens of
    // cycles under the vector backends, so a checked accessor or a
    // branchy scale lookup per element would dominate the kernel.
    std::vector<double> wgt_scale(static_cast<std::size_t>(N));
    for (std::int64_t j = 0; j < N; ++j) {
      wgt_scale[static_cast<std::size_t>(j)] = wgt.row_scale(j);
    }
    util::parallel_for(0, M, 8, [&](std::int64_t i0, std::int64_t i1) {
      for (std::int64_t i = i0; i < i1; ++i) {
        const double act_scale = act.row_scale(i);
        const bool a4 = pa.row_is_s4[static_cast<std::size_t>(i)] != 0;
        float* orow = out.row(i).data();
        for (std::int64_t j = 0; j < N; ++j) {
          const bool b4 = pw.row_is_s4[static_cast<std::size_t>(j)] != 0;
          // Quadrant routing: hh -> s8s8, hl/lh -> s8s4 (the dot is
          // symmetric, so lh swaps operands), ll -> s4s4.
          std::int64_t acc;
          if (a4 && b4) {
            acc = kt.dot_s4s4(pa.s4_row(i), pw.s4_row(j), K);
          } else if (b4) {
            acc = kt.dot_s8s4(pa.s8_row(i), pw.s4_row(j), K);
          } else if (a4) {
            acc = kt.dot_s8s4(pw.s8_row(j), pa.s4_row(i), K);
          } else {
            acc = kt.dot_s8s8(pa.s8_row(i), pw.s8_row(j), K);
          }
          // One rescale per output (the psum exit multiplier).
          orow[j] = static_cast<float>(static_cast<double>(acc) * act_scale *
                                       wgt_scale[static_cast<std::size_t>(j)]);
        }
      }
    });
    return out;
  }

  // Fallback for wide precisions / very long reductions: the legacy
  // int64 scalar loop.  Rows of `out` are disjoint per chunk.
  util::parallel_for(0, M, 8, [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      const double act_scale = act.row_scale(i);
      for (std::int64_t j = 0; j < N; ++j) {
        // Pure integer multiply-accumulate, as the BitBrick array does.
        std::int64_t acc = 0;
        for (std::int64_t k = 0; k < K; ++k) {
          acc += static_cast<std::int64_t>(act.codes(i, k)) *
                 static_cast<std::int64_t>(wgt.codes(j, k));
        }
        // One rescale per output (the psum exit multiplier).
        out(i, j) = static_cast<float>(static_cast<double>(acc) * act_scale *
                                       wgt.row_scale(j));
      }
    }
  });
  return out;
}

double ll_fraction(const QuantizedOperand& act,
                   const QuantizedOperand& wgt) {
  std::int64_t act_low = 0, wgt_low = 0;
  for (const auto& d : act.rows) act_low += d.use_low ? 1 : 0;
  for (const auto& d : wgt.rows) wgt_low += d.use_low ? 1 : 0;
  const double m = static_cast<double>(act.rows.size());
  const double n = static_cast<double>(wgt.rows.size());
  if (m == 0.0 || n == 0.0) return 0.0;
  return (static_cast<double>(act_low) / m) *
         (static_cast<double>(wgt_low) / n);
}

}  // namespace drift::nn
