#include "nn/gemm.hpp"

#include "util/assert.hpp"

namespace drift::nn {

TensorF matmul(const TensorF& a, const TensorF& b) {
  DRIFT_CHECK(a.shape().rank() == 2 && b.shape().rank() == 2,
              "matmul needs rank-2 operands");
  const std::int64_t M = a.shape().dim(0);
  const std::int64_t K = a.shape().dim(1);
  DRIFT_CHECK(b.shape().dim(0) == K, "inner dimension mismatch");
  const std::int64_t N = b.shape().dim(1);

  TensorF c(Shape{M, N}, 0.0f);
  auto ad = a.data();
  auto bd = b.data();
  auto cd = c.data();
  // i-k-j loop order streams B and C rows contiguously.
  for (std::int64_t i = 0; i < M; ++i) {
    for (std::int64_t k = 0; k < K; ++k) {
      const float aik = ad[static_cast<std::size_t>(i * K + k)];
      if (aik == 0.0f) continue;
      const std::size_t boff = static_cast<std::size_t>(k * N);
      const std::size_t coff = static_cast<std::size_t>(i * N);
      for (std::int64_t j = 0; j < N; ++j) {
        cd[coff + static_cast<std::size_t>(j)] +=
            aik * bd[boff + static_cast<std::size_t>(j)];
      }
    }
  }
  return c;
}

TensorF matmul_nt(const TensorF& a, const TensorF& w) {
  DRIFT_CHECK(a.shape().rank() == 2 && w.shape().rank() == 2,
              "matmul_nt needs rank-2 operands");
  const std::int64_t M = a.shape().dim(0);
  const std::int64_t K = a.shape().dim(1);
  DRIFT_CHECK(w.shape().dim(1) == K, "inner dimension mismatch");
  const std::int64_t N = w.shape().dim(0);

  TensorF c(Shape{M, N});
  auto ad = a.data();
  auto wd = w.data();
  auto cd = c.data();
  for (std::int64_t i = 0; i < M; ++i) {
    const std::size_t aoff = static_cast<std::size_t>(i * K);
    for (std::int64_t j = 0; j < N; ++j) {
      const std::size_t woff = static_cast<std::size_t>(j * K);
      double acc = 0.0;
      for (std::int64_t k = 0; k < K; ++k) {
        acc += static_cast<double>(ad[aoff + static_cast<std::size_t>(k)]) *
               static_cast<double>(wd[woff + static_cast<std::size_t>(k)]);
      }
      cd[static_cast<std::size_t>(i * N + j)] = static_cast<float>(acc);
    }
  }
  return c;
}

void add_bias(TensorF& c, const TensorF& bias) {
  DRIFT_CHECK(c.shape().rank() == 2, "add_bias needs a rank-2 tensor");
  DRIFT_CHECK(bias.shape().rank() == 1 &&
                  bias.shape().dim(0) == c.shape().dim(1),
              "bias width mismatch");
  const std::int64_t M = c.shape().dim(0);
  const std::int64_t N = c.shape().dim(1);
  auto cd = c.data();
  auto bd = bias.data();
  for (std::int64_t i = 0; i < M; ++i) {
    for (std::int64_t j = 0; j < N; ++j) {
      cd[static_cast<std::size_t>(i * N + j)] +=
          bd[static_cast<std::size_t>(j)];
    }
  }
}

}  // namespace drift::nn
