#include "nn/gemm.hpp"

#include <algorithm>
#include <vector>

#include "util/assert.hpp"
#include "util/thread_pool.hpp"

namespace drift::nn {

namespace {

// Cache-blocking parameters.  kMc is also the parallel grain: output
// rows are handed to the pool in fixed chunks of kMc, so the chunk
// decomposition — and therefore every accumulation order — is
// independent of the thread count.  Each chunk writes only its own
// rows of C; no atomics, no sharing.
constexpr std::int64_t kMc = 32;   ///< row chunk (parallel grain)
constexpr std::int64_t kKc = 256;  ///< K block kept hot in L1/L2
constexpr std::int64_t kNc = 128;  ///< column block of C accumulated in registers/L1

}  // namespace

TensorF matmul(const TensorF& a, const TensorF& b) {
  DRIFT_CHECK(a.shape().rank() == 2 && b.shape().rank() == 2,
              "matmul needs rank-2 operands");
  const std::int64_t M = a.shape().dim(0);
  const std::int64_t K = a.shape().dim(1);
  DRIFT_CHECK(b.shape().dim(0) == K, "inner dimension mismatch");
  const std::int64_t N = b.shape().dim(1);

  TensorF c(Shape{M, N});
  auto ad = a.data();
  auto bd = b.data();
  auto cd = c.data();
  util::parallel_for(0, M, kMc, [&](std::int64_t i0, std::int64_t i1) {
    // Per-chunk double accumulator tile: (<=kMc) x (<=kNc).  Double
    // accumulation in k-ascending order matches matmul_nt's policy and
    // is fixed regardless of blocking or threading.
    std::vector<double> acc(static_cast<std::size_t>(kMc * kNc));
    for (std::int64_t jc = 0; jc < N; jc += kNc) {
      const std::int64_t jend = std::min(jc + kNc, N);
      const std::int64_t jw = jend - jc;
      std::fill(acc.begin(),
                acc.begin() + static_cast<std::size_t>((i1 - i0) * jw), 0.0);
      for (std::int64_t kc = 0; kc < K; kc += kKc) {
        const std::int64_t kend = std::min(kc + kKc, K);
        for (std::int64_t i = i0; i < i1; ++i) {
          double* acc_row =
              acc.data() + static_cast<std::size_t>((i - i0) * jw);
          for (std::int64_t k = kc; k < kend; ++k) {
            const float aik = ad[static_cast<std::size_t>(i * K + k)];
            if (aik == 0.0f) continue;
            const double av = static_cast<double>(aik);
            const float* brow =
                bd.data() + static_cast<std::size_t>(k * N + jc);
            for (std::int64_t j = 0; j < jw; ++j) {
              acc_row[j] += av * static_cast<double>(brow[j]);
            }
          }
        }
      }
      for (std::int64_t i = i0; i < i1; ++i) {
        const double* acc_row =
            acc.data() + static_cast<std::size_t>((i - i0) * jw);
        float* crow = cd.data() + static_cast<std::size_t>(i * N + jc);
        for (std::int64_t j = 0; j < jw; ++j) {
          crow[j] = static_cast<float>(acc_row[j]);
        }
      }
    }
  });
  return c;
}

TensorF matmul_nt(const TensorF& a, const TensorF& w) {
  DRIFT_CHECK(a.shape().rank() == 2 && w.shape().rank() == 2,
              "matmul_nt needs rank-2 operands");
  const std::int64_t M = a.shape().dim(0);
  const std::int64_t K = a.shape().dim(1);
  DRIFT_CHECK(w.shape().dim(1) == K, "inner dimension mismatch");
  const std::int64_t N = w.shape().dim(0);

  // Transpose w once and run the shared blocked kernel.  The previous
  // one-chain-per-output loop ran at less than half of matmul's
  // throughput: with w row-major every inner step walks N strided
  // weight streams, where matmul streams its operand row-contiguously
  // with L1 reuse across the row chunk.  One O(N*K) transpose is noise
  // next to the O(M*N*K) multiply, and the two entry points share a
  // single accumulation policy, so matmul_nt(A, W) == matmul(A, W^T)
  // bit for bit (the property suite pins exactly this identity).
  constexpr std::int64_t kTile = 32;
  TensorF wt(Shape{K, N});
  auto wd = w.data();
  auto td = wt.data();
  for (std::int64_t jt = 0; jt < N; jt += kTile) {
    const std::int64_t jend = std::min(jt + kTile, N);
    for (std::int64_t kt = 0; kt < K; kt += kTile) {
      const std::int64_t kend = std::min(kt + kTile, K);
      for (std::int64_t j = jt; j < jend; ++j) {
        for (std::int64_t k = kt; k < kend; ++k) {
          td[static_cast<std::size_t>(k * N + j)] =
              wd[static_cast<std::size_t>(j * K + k)];
        }
      }
    }
  }
  return matmul(a, wt);
}

void add_bias(TensorF& c, const TensorF& bias) {
  DRIFT_CHECK(c.shape().rank() == 2, "add_bias needs a rank-2 tensor");
  DRIFT_CHECK(bias.shape().rank() == 1 &&
                  bias.shape().dim(0) == c.shape().dim(1),
              "bias width mismatch");
  const std::int64_t M = c.shape().dim(0);
  const std::int64_t N = c.shape().dim(1);
  auto cd = c.data();
  auto bd = bias.data();
  util::parallel_for(0, M, kMc, [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      float* crow = cd.data() + static_cast<std::size_t>(i * N);
      for (std::int64_t j = 0; j < N; ++j) {
        crow[j] += bd[static_cast<std::size_t>(j)];
      }
    }
  });
}

}  // namespace drift::nn
