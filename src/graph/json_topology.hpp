// Tiny JSON topology format — whole-model workloads as data.
//
// Schema (examples/model_zoo/*.json):
//   {
//     "name": "resnet18",
//     "family": "cnn",                       // cnn | vit | bert | llm
//     "inputs":  [{"name": "image", "shape": [3, 224, 224]}],
//     "nodes":   [{"name": "conv1", "op": "conv2d",
//                  "inputs": ["image"],
//                  "attrs": {"out_channels": 64, "kernel": 7,
//                            "stride": 2, "pad": 3}}, ...],
//     "outputs": ["fc"]
//   }
//
// Attribute values are typed by their JSON form: integers stay
// integers, numbers with a fraction/exponent become doubles, strings
// stay strings.  The parser is string-in / string-out (no file I/O in
// src/): tools and tests read the file and pass the text.
//
// to_topology_json() is the inverse and is canonical — sorted attr
// keys (AttrMap is a std::map), fixed 2-space indentation, shortest
// round-trip doubles — so emit(parse(text)) is a fixed point and the
// committed model-zoo files can be pinned byte-exact against the
// programmatic zoo builders.
#pragma once

#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace drift::graph {

/// Parse outcome: a graph plus "..." error messages (position-stamped
/// for syntax errors, node-named for schema errors).
struct TopologyParseResult {
  Graph graph;
  std::vector<std::string> errors;

  bool ok() const { return errors.empty(); }
};

TopologyParseResult parse_topology(const std::string& text);

/// Canonical serialization (see header comment).
std::string to_topology_json(const Graph& g);

}  // namespace drift::graph
