#include "graph/ops.hpp"

#include <algorithm>
#include <memory>

#include "nn/activations.hpp"
#include "nn/attention.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/norm.hpp"
#include "nn/pooling.hpp"
#include "util/assert.hpp"

namespace drift::graph {

std::string dims_to_string(const Dims& dims) {
  std::string out = "[";
  for (std::size_t i = 0; i < dims.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(dims[i]);
  }
  out += "]";
  return out;
}

std::string broadcast_dims(const Dims& a, const Dims& b, Dims& out) {
  const std::size_t rank = std::max(a.size(), b.size());
  out.assign(rank, 1);
  for (std::size_t r = 0; r < rank; ++r) {
    // Right-aligned: axis r counted from the trailing end.
    const std::int64_t da =
        r < a.size() ? a[a.size() - 1 - r] : 1;
    const std::int64_t db =
        r < b.size() ? b[b.size() - 1 - r] : 1;
    if (da != db && da != 1 && db != 1) {
      out.clear();
      return "shapes " + dims_to_string(a) + " and " + dims_to_string(b) +
             " do not broadcast (axis " +
             std::to_string(rank - 1 - r) + ": " + std::to_string(da) +
             " vs " + std::to_string(db) + ")";
    }
    out[rank - 1 - r] = std::max(da, db);
  }
  return "";
}

namespace {

std::int64_t conv_out(std::int64_t in, std::int64_t k, std::int64_t s,
                      std::int64_t p) {
  // Guard the no-fit case explicitly: C++ division truncates toward
  // zero, so e.g. (1 - 3) / 3 + 1 would wrongly yield one position.
  const std::int64_t span = in + 2 * p - k;
  return span < 0 ? 0 : span / s + 1;
}

/// Fetches a required positive integer attribute; returns "" and fills
/// `value` on success.
std::string positive_attr(const Node& node, const std::string& key,
                          std::int64_t& value) {
  if (!node.has_attr(key)) {
    return "missing required attribute '" + key + "'";
  }
  value = node.attr_int(key, 0);
  if (value <= 0) {
    return "attribute '" + key + "' must be positive, got " +
           std::to_string(value);
  }
  return "";
}

// ---------------------------------------------------------------------
// Shape rules.
// ---------------------------------------------------------------------

std::string infer_conv2d(const Node& node, const std::vector<Dims>& in,
                         Dims& out) {
  if (in[0].size() != 3) {
    return "conv2d expects a [C, H, W] input, got " + dims_to_string(in[0]);
  }
  std::int64_t oc = 0, k = 0;
  std::string err = positive_attr(node, "out_channels", oc);
  if (err.empty()) err = positive_attr(node, "kernel", k);
  if (!err.empty()) return err;
  const std::int64_t s = node.attr_int("stride", 1);
  const std::int64_t p = node.attr_int("pad", 0);
  if (s <= 0) return "attribute 'stride' must be positive";
  if (p < 0) return "attribute 'pad' must be non-negative";
  const std::int64_t oh = conv_out(in[0][1], k, s, p);
  const std::int64_t ow = conv_out(in[0][2], k, s, p);
  if (oh <= 0 || ow <= 0) {
    return "kernel " + std::to_string(k) + " (stride " + std::to_string(s) +
           ", pad " + std::to_string(p) + ") does not fit input " +
           dims_to_string(in[0]);
  }
  out = {oc, oh, ow};
  return "";
}

std::string infer_depthwise_conv2d(const Node& node,
                                   const std::vector<Dims>& in, Dims& out) {
  if (in[0].size() != 3) {
    return "depthwise_conv2d expects a [C, H, W] input, got " +
           dims_to_string(in[0]);
  }
  std::int64_t k = 0;
  const std::string err = positive_attr(node, "kernel", k);
  if (!err.empty()) return err;
  const std::int64_t s = node.attr_int("stride", 1);
  const std::int64_t p = node.attr_int("pad", 0);
  if (s <= 0) return "attribute 'stride' must be positive";
  if (p < 0) return "attribute 'pad' must be non-negative";
  const std::int64_t oh = conv_out(in[0][1], k, s, p);
  const std::int64_t ow = conv_out(in[0][2], k, s, p);
  if (oh <= 0 || ow <= 0) {
    return "kernel " + std::to_string(k) + " (stride " + std::to_string(s) +
           ", pad " + std::to_string(p) + ") does not fit input " +
           dims_to_string(in[0]);
  }
  out = {in[0][0], oh, ow};
  return "";
}

std::string infer_pool2d(const Node& node, const std::vector<Dims>& in,
                         Dims& out) {
  if (in[0].size() != 3) {
    return node.op + " expects a [C, H, W] input, got " +
           dims_to_string(in[0]);
  }
  std::int64_t k = 0;
  const std::string err = positive_attr(node, "kernel", k);
  if (!err.empty()) return err;
  const std::int64_t s = node.attr_int("stride", k);
  if (s <= 0) return "attribute 'stride' must be positive";
  // Pooling layers take no padding (matching nn::MaxPool2d/AvgPool2d).
  const std::int64_t oh = conv_out(in[0][1], k, s, 0);
  const std::int64_t ow = conv_out(in[0][2], k, s, 0);
  if (oh <= 0 || ow <= 0) {
    return "pooling kernel " + std::to_string(k) + " (stride " +
           std::to_string(s) + ") does not fit input " +
           dims_to_string(in[0]);
  }
  out = {in[0][0], oh, ow};
  return "";
}

std::string infer_global_avgpool(const Node&, const std::vector<Dims>& in,
                                 Dims& out) {
  if (in[0].size() != 3) {
    return "global_avgpool expects a [C, H, W] input, got " +
           dims_to_string(in[0]);
  }
  out = {1, in[0][0]};
  return "";
}

std::string infer_mean_pool_tokens(const Node&, const std::vector<Dims>& in,
                                   Dims& out) {
  if (in[0].size() != 2) {
    return "mean_pool_tokens expects a [T, D] input, got " +
           dims_to_string(in[0]);
  }
  out = {1, in[0][1]};
  return "";
}

std::string infer_to_tokens(const Node&, const std::vector<Dims>& in,
                            Dims& out) {
  if (in[0].size() != 3) {
    return "to_tokens expects a [C, H, W] input, got " +
           dims_to_string(in[0]);
  }
  out = {in[0][1] * in[0][2], in[0][0]};
  return "";
}

std::string infer_linear(const Node& node, const std::vector<Dims>& in,
                         Dims& out) {
  if (in[0].size() != 2) {
    return "linear expects a [M, K] input, got " + dims_to_string(in[0]);
  }
  std::int64_t n = 0;
  const std::string err = positive_attr(node, "out_features", n);
  if (!err.empty()) return err;
  out = {in[0][0], n};
  return "";
}

std::string infer_elementwise(const Node&, const std::vector<Dims>& in,
                              Dims& out) {
  out = in[0];
  return "";
}

std::string infer_rank2_same(const Node& node, const std::vector<Dims>& in,
                             Dims& out) {
  if (in[0].size() != 2) {
    return node.op + " expects a [M, N] input, got " + dims_to_string(in[0]);
  }
  out = in[0];
  return "";
}

std::string infer_batchnorm2d(const Node&, const std::vector<Dims>& in,
                              Dims& out) {
  if (in[0].size() != 3) {
    return "batchnorm2d expects a [C, H, W] input, got " +
           dims_to_string(in[0]);
  }
  out = in[0];
  return "";
}

std::string infer_attention(const Node& node, const std::vector<Dims>& in,
                            Dims& out) {
  if (in[0].size() != 2) {
    return "attention expects a [T, D] input, got " + dims_to_string(in[0]);
  }
  std::int64_t heads = 0;
  const std::string err = positive_attr(node, "heads", heads);
  if (!err.empty()) return err;
  const std::int64_t dim = in[0][1];
  if (dim % heads != 0) {
    return "attention head split " + std::to_string(dim) + " % " +
           std::to_string(heads) + " != 0";
  }
  out = in[0];
  return "";
}

std::string infer_add(const Node&, const std::vector<Dims>& in, Dims& out) {
  return broadcast_dims(in[0], in[1], out);
}

std::string infer_concat(const Node& node, const std::vector<Dims>& in,
                         Dims& out) {
  const std::int64_t axis = node.attr_int("axis", 0);
  const std::size_t rank = in[0].size();
  if (axis < 0 || static_cast<std::size_t>(axis) >= rank) {
    return "concat axis " + std::to_string(axis) +
           " out of range for rank-" + std::to_string(rank) + " input";
  }
  out = in[0];
  for (std::size_t i = 1; i < in.size(); ++i) {
    if (in[i].size() != rank) {
      return "concat rank mismatch: " + dims_to_string(in[0]) + " vs " +
             dims_to_string(in[i]);
    }
    for (std::size_t r = 0; r < rank; ++r) {
      if (static_cast<std::int64_t>(r) == axis) continue;
      if (in[i][r] != in[0][r]) {
        return "concat operands " + dims_to_string(in[0]) + " and " +
               dims_to_string(in[i]) + " differ off axis " +
               std::to_string(axis);
      }
    }
    out[static_cast<std::size_t>(axis)] += in[i][static_cast<std::size_t>(axis)];
  }
  return "";
}

// ---------------------------------------------------------------------
// Binders (construction order == rng stream order; see executor).
// ---------------------------------------------------------------------

nn::LayerPtr bind_conv2d(const Node& node, const std::vector<Dims>& in,
                         Rng& rng) {
  return std::make_unique<nn::Conv2d>(
      node.name, in[0][0], node.attr_int("out_channels", 0),
      node.attr_int("kernel", 0), node.attr_int("stride", 1),
      node.attr_int("pad", 0), rng);
}

nn::LayerPtr bind_depthwise_conv2d(const Node& node,
                                   const std::vector<Dims>& in, Rng& rng) {
  return std::make_unique<nn::DepthwiseConv2d>(
      node.name, in[0][0], node.attr_int("kernel", 0),
      node.attr_int("stride", 1), node.attr_int("pad", 0), rng);
}

nn::LayerPtr bind_maxpool2d(const Node& node, const std::vector<Dims>&,
                            Rng&) {
  const std::int64_t k = node.attr_int("kernel", 0);
  return std::make_unique<nn::MaxPool2d>(node.name, k,
                                         node.attr_int("stride", k));
}

nn::LayerPtr bind_avgpool2d(const Node& node, const std::vector<Dims>&,
                            Rng&) {
  const std::int64_t k = node.attr_int("kernel", 0);
  return std::make_unique<nn::AvgPool2d>(node.name, k,
                                         node.attr_int("stride", k));
}

nn::LayerPtr bind_global_avgpool(const Node& node, const std::vector<Dims>&,
                                 Rng&) {
  return std::make_unique<nn::GlobalAvgPool>(node.name);
}

nn::LayerPtr bind_mean_pool_tokens(const Node& node,
                                   const std::vector<Dims>&, Rng&) {
  return std::make_unique<nn::MeanPoolTokens>(node.name);
}

nn::LayerPtr bind_linear(const Node& node, const std::vector<Dims>& in,
                         Rng& rng) {
  return std::make_unique<nn::Linear>(
      node.name, in[0][1], node.attr_int("out_features", 0), rng);
}

nn::LayerPtr bind_relu(const Node& node, const std::vector<Dims>&, Rng&) {
  return std::make_unique<nn::ReLU>(node.name);
}

nn::LayerPtr bind_gelu(const Node& node, const std::vector<Dims>&, Rng&) {
  return std::make_unique<nn::GELU>(node.name);
}

nn::LayerPtr bind_softmax(const Node& node, const std::vector<Dims>&, Rng&) {
  return std::make_unique<nn::Softmax>(node.name);
}

nn::LayerPtr bind_layernorm(const Node& node, const std::vector<Dims>& in,
                            Rng&) {
  return std::make_unique<nn::LayerNorm>(node.name, in[0][1]);
}

nn::LayerPtr bind_batchnorm2d(const Node& node, const std::vector<Dims>& in,
                              Rng&) {
  return std::make_unique<nn::BatchNorm2d>(node.name, in[0][0]);
}

nn::LayerPtr bind_attention(const Node& node, const std::vector<Dims>& in,
                            Rng& rng) {
  return std::make_unique<nn::MultiHeadAttention>(
      node.name, in[0][1], node.attr_int("heads", 0), rng);
}

// ---------------------------------------------------------------------
// Graph-level evaluators.
// ---------------------------------------------------------------------

TensorF run_add(const Node&, const std::vector<const TensorF*>& in) {
  const TensorF& a = *in[0];
  const TensorF& b = *in[1];
  Dims out_dims;
  const std::string err =
      broadcast_dims(a.shape().dims(), b.shape().dims(), out_dims);
  DRIFT_CHECK(err.empty(), "add operands do not broadcast");

  // Per-operand strides over the output index space: 0 on broadcast
  // axes, the operand's own row-major stride elsewhere.
  const auto operand_strides = [&out_dims](const Shape& s) {
    const std::vector<std::int64_t> own = s.strides();
    std::vector<std::int64_t> mapped(out_dims.size(), 0);
    const std::size_t offset = out_dims.size() -
                               static_cast<std::size_t>(s.rank());
    for (std::size_t r = 0; r < static_cast<std::size_t>(s.rank()); ++r) {
      if (s.dim(static_cast<std::int64_t>(r)) ==
          out_dims[offset + r]) {
        mapped[offset + r] = own[r];
      }
    }
    return mapped;
  };
  const std::vector<std::int64_t> sa = operand_strides(a.shape());
  const std::vector<std::int64_t> sb = operand_strides(b.shape());

  TensorF out(Shape{out_dims});
  auto ad = a.data();
  auto bd = b.data();
  auto od = out.data();
  std::vector<std::int64_t> index(out_dims.size(), 0);
  for (std::int64_t flat = 0; flat < out.numel(); ++flat) {
    std::int64_t oa = 0, ob = 0;
    for (std::size_t r = 0; r < out_dims.size(); ++r) {
      oa += index[r] * sa[r];
      ob += index[r] * sb[r];
    }
    od[static_cast<std::size_t>(flat)] = ad[static_cast<std::size_t>(oa)] +
                                         bd[static_cast<std::size_t>(ob)];
    // Odometer increment over the output multi-index.
    for (std::size_t r = out_dims.size(); r-- > 0;) {
      if (++index[r] < out_dims[r]) break;
      index[r] = 0;
    }
  }
  return out;
}

TensorF run_concat(const Node& node, const std::vector<const TensorF*>& in) {
  const std::int64_t axis = node.attr_int("axis", 0);
  const std::int64_t rank = in[0]->shape().rank();
  DRIFT_CHECK(axis >= 0 && axis < rank, "concat axis out of range");

  Dims out_dims = in[0]->shape().dims();
  for (std::size_t i = 1; i < in.size(); ++i) {
    out_dims[static_cast<std::size_t>(axis)] +=
        in[i]->shape().dim(axis);
  }
  TensorF out(Shape{out_dims});

  // Row-major concat: every operand contributes contiguous runs of
  // `inner * its-axis-extent` elements, repeated `outer` times.
  std::int64_t outer = 1;
  for (std::int64_t r = 0; r < axis; ++r) outer *= out_dims[static_cast<std::size_t>(r)];
  std::int64_t inner = 1;
  for (std::int64_t r = axis + 1; r < rank; ++r) {
    inner *= out_dims[static_cast<std::size_t>(r)];
  }
  auto od = out.data();
  std::int64_t out_run = 0;
  for (const TensorF* t : in) out_run += t->shape().dim(axis) * inner;
  std::int64_t base = 0;
  for (const TensorF* t : in) {
    const std::int64_t run = t->shape().dim(axis) * inner;
    auto td = t->data();
    for (std::int64_t o = 0; o < outer; ++o) {
      for (std::int64_t e = 0; e < run; ++e) {
        od[static_cast<std::size_t>(o * out_run + base + e)] =
            td[static_cast<std::size_t>(o * run + e)];
      }
    }
    base += run;
  }
  return out;
}

TensorF run_to_tokens(const Node&, const std::vector<const TensorF*>& in) {
  const TensorF& x = *in[0];
  DRIFT_CHECK(x.shape().rank() == 3, "to_tokens expects [C, H, W]");
  const std::int64_t C = x.shape().dim(0);
  const std::int64_t HW = x.shape().dim(1) * x.shape().dim(2);
  TensorF out(Shape{HW, C});
  for (std::int64_t p = 0; p < HW; ++p) {
    for (std::int64_t c = 0; c < C; ++c) {
      out(p, c) = x.at(c * HW + p);
    }
  }
  return out;
}

// ---------------------------------------------------------------------
// Workload exporters.
// ---------------------------------------------------------------------

void export_conv2d(const Node& node, const std::vector<Dims>& in,
                   const Dims& out, const std::string& prefix,
                   std::vector<nn::LayerGemm>& gemms) {
  const std::int64_t k = node.attr_int("kernel", 0);
  const nn::LayerKind kind = node.attr_string("kind", "conv") == "embed"
                                 ? nn::LayerKind::kEmbed
                                 : nn::LayerKind::kConv;
  gemms.push_back(nn::LayerGemm{
      prefix + node.name, kind,
      core::GemmDims{out[1] * out[2], in[0][0] * k * k, out[0]},
      /*repeat=*/1, /*kernel=*/k});
}

void export_depthwise_conv2d(const Node& node, const std::vector<Dims>& in,
                             const Dims& out, const std::string& prefix,
                             std::vector<nn::LayerGemm>& gemms) {
  const std::int64_t k = node.attr_int("kernel", 0);
  // M*K*N == OH*OW * k^2 * C: exactly the depthwise MAC count.
  gemms.push_back(nn::LayerGemm{
      prefix + node.name, nn::LayerKind::kConv,
      core::GemmDims{out[1] * out[2], k * k, in[0][0]},
      /*repeat=*/1, /*kernel=*/k});
}

void export_linear(const Node& node, const std::vector<Dims>& in,
                   const Dims& out, const std::string& prefix,
                   std::vector<nn::LayerGemm>& gemms) {
  const std::string kind_name = node.attr_string("kind", "fc");
  nn::LayerKind kind = nn::LayerKind::kFc;
  if (kind_name == "ffn") kind = nn::LayerKind::kFfn;
  if (kind_name == "proj") kind = nn::LayerKind::kOutProj;
  if (kind_name == "qkv") kind = nn::LayerKind::kQkvProj;
  if (kind_name == "embed") kind = nn::LayerKind::kEmbed;
  gemms.push_back(nn::LayerGemm{prefix + node.name, kind,
                                core::GemmDims{in[0][0], in[0][1], out[1]}});
}

void export_attention(const Node& node, const std::vector<Dims>& in,
                      const Dims&, const std::string& prefix,
                      std::vector<nn::LayerGemm>& gemms) {
  const std::int64_t T = in[0][0];
  const std::int64_t dim = in[0][1];
  const std::int64_t heads = node.attr_int("heads", 1);
  const std::int64_t head_dim = dim / heads;
  // Mirrors nn::add_transformer_block at batch=1, repeat=1 — the same
  // four GEMM shapes under the same name suffixes.
  gemms.push_back(nn::LayerGemm{prefix + node.name + ".qkv",
                                nn::LayerKind::kQkvProj,
                                core::GemmDims{T, dim, 3 * dim}});
  gemms.push_back(nn::LayerGemm{prefix + node.name + ".score",
                                nn::LayerKind::kAttnScore,
                                core::GemmDims{T, head_dim, T}, heads});
  gemms.push_back(nn::LayerGemm{prefix + node.name + ".context",
                                nn::LayerKind::kAttnContext,
                                core::GemmDims{T, T, head_dim}, heads});
  gemms.push_back(nn::LayerGemm{prefix + node.name + ".proj",
                                nn::LayerKind::kOutProj,
                                core::GemmDims{T, dim, dim}});
}

// ---------------------------------------------------------------------
// The registry.
// ---------------------------------------------------------------------

const std::map<std::string, OpSpec>& registry() {
  static const std::map<std::string, OpSpec> kOps = {
      {"conv2d",
       {1, 1, infer_conv2d, bind_conv2d, nullptr, export_conv2d}},
      {"depthwise_conv2d",
       {1, 1, infer_depthwise_conv2d, bind_depthwise_conv2d, nullptr,
        export_depthwise_conv2d}},
      {"maxpool2d", {1, 1, infer_pool2d, bind_maxpool2d, nullptr, nullptr}},
      {"avgpool2d", {1, 1, infer_pool2d, bind_avgpool2d, nullptr, nullptr}},
      {"global_avgpool",
       {1, 1, infer_global_avgpool, bind_global_avgpool, nullptr, nullptr}},
      {"mean_pool_tokens",
       {1, 1, infer_mean_pool_tokens, bind_mean_pool_tokens, nullptr,
        nullptr}},
      {"to_tokens",
       {1, 1, infer_to_tokens, nullptr, run_to_tokens, nullptr}},
      {"linear", {1, 1, infer_linear, bind_linear, nullptr, export_linear}},
      {"relu", {1, 1, infer_elementwise, bind_relu, nullptr, nullptr}},
      {"gelu", {1, 1, infer_elementwise, bind_gelu, nullptr, nullptr}},
      {"softmax",
       {1, 1, infer_rank2_same, bind_softmax, nullptr, nullptr}},
      {"layernorm",
       {1, 1, infer_rank2_same, bind_layernorm, nullptr, nullptr}},
      {"batchnorm2d",
       {1, 1, infer_batchnorm2d, bind_batchnorm2d, nullptr, nullptr}},
      {"attention",
       {1, 1, infer_attention, bind_attention, nullptr, export_attention}},
      {"add", {2, 2, infer_add, nullptr, run_add, nullptr}},
      {"concat", {2, -1, infer_concat, nullptr, run_concat, nullptr}},
  };
  return kOps;
}

}  // namespace

const OpSpec* find_op(const std::string& op) {
  const auto& ops = registry();
  const auto it = ops.find(op);
  return it == ops.end() ? nullptr : &it->second;
}

std::string op_names() {
  std::string names;
  for (const auto& [name, spec] : registry()) {
    if (!names.empty()) names += ", ";
    names += name;
  }
  return names;
}

ShapeResult infer_shapes(const Graph& g) {
  ShapeResult result;
  result.errors = validate(g);
  if (!result.errors.empty()) return result;

  for (const GraphInput& in : g.inputs) {
    result.by_name[in.name] = in.dims;
  }
  for (const int idx : topological_order(g)) {
    const Node& node = g.nodes[static_cast<std::size_t>(idx)];
    std::vector<Dims> in_dims;
    in_dims.reserve(node.inputs.size());
    bool inputs_known = true;
    for (const std::string& in_name : node.inputs) {
      const auto it = result.by_name.find(in_name);
      if (it == result.by_name.end()) {
        inputs_known = false;  // producer already reported; stay quiet
        break;
      }
      in_dims.push_back(it->second);
    }
    if (!inputs_known) continue;
    const OpSpec* spec = find_op(node.op);
    DRIFT_CHECK(spec != nullptr, "validated graph has unknown op");
    Dims out;
    const std::string err = spec->infer(node, in_dims, out);
    if (!err.empty()) {
      result.errors.push_back("node '" + node.name + "': " + err);
      continue;
    }
    result.by_name[node.name] = out;
  }
  return result;
}

}  // namespace drift::graph
