// Graph -> hardware workload export.
//
// Walks the graph in topological order and asks each GEMM-bearing op
// (conv2d, depthwise_conv2d, linear, attention) for its LayerGemm
// entries, producing the same nn::WorkloadSpec the hand-written
// make_resnet18()-style builders emit — so a whole topology flows
// through the existing selector -> scheduler -> cycle-sim pipeline
// unchanged, one per-layer Eq. 7/8 + stall + DRAM artifact per node.
#pragma once

#include "graph/graph.hpp"
#include "graph/ops.hpp"
#include "nn/workload.hpp"

namespace drift::graph {

struct WorkloadExportOptions {
  /// Prepended to every exported layer name (e.g. "resnet18/").
  std::string prefix;
};

/// Maps the graph's family tag to the model family + distribution
/// profiles ("cnn" | "vit" | "bert" | "llm"; anything else throws).
nn::ModelFamily family_from_string(const std::string& family);

/// Exports every GEMM-bearing node.  `shapes` must be a clean
/// infer_shapes(g) result (DRIFT_CHECKed).
nn::WorkloadSpec to_workload(const Graph& g, const ShapeResult& shapes,
                             const WorkloadExportOptions& options = {});

}  // namespace drift::graph
