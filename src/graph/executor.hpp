// Deterministic graph execution with tensor lifetime tracking.
//
// Construction validates the graph, infers every shape, and binds each
// node to its src/nn layer **in node-insertion order** — parameterized
// layers consume the caller's rng stream exactly like a hand-built
// Sequential constructed in the same order, which is what makes
// straight-line graph execution bitwise-identical to Sequential
// (pinned by tests/prop/prop_graph.cpp).
//
// run() executes in the canonical topological order; run_with_order()
// takes any valid order (the order-invariance property).  Intermediate
// tensors are reference-counted and released after their last
// consumer, with the peak resident footprint reported through the
// graph.* obs metrics.
#pragma once

#include <optional>

#include "graph/graph.hpp"
#include "graph/ops.hpp"
#include "nn/layer.hpp"
#include "util/rng.hpp"

namespace drift::graph {

class GraphExecutor {
 public:
  /// Validates + infers + binds; DRIFT_CHECKs that both passes are
  /// clean (callers wanting error lists run validate()/infer_shapes()
  /// first).
  GraphExecutor(Graph g, Rng& rng);

  const Graph& graph() const { return graph_; }
  const ShapeResult& shapes() const { return shapes_; }

  /// Executes with `inputs` in graph-input order; returns the output
  /// tensors in graph-output order.
  std::vector<TensorF> run(const std::vector<TensorF>& inputs,
                           nn::QuantEngine& engine);

  /// Same, under an explicit topological order (node indices).  The
  /// order is checked: every node must run after all of its producers.
  std::vector<TensorF> run_with_order(const std::vector<TensorF>& inputs,
                                      nn::QuantEngine& engine,
                                      const std::vector<int>& order);

  /// Lifetime accounting for the most recent run.
  std::int64_t peak_resident_bytes() const { return peak_resident_bytes_; }
  std::int64_t tensors_freed() const { return tensors_freed_; }

 private:
  Graph graph_;
  ShapeResult shapes_;
  std::vector<nn::LayerPtr> layers_;      ///< per node; null = graph-level op
  std::vector<const OpSpec*> specs_;      ///< per node
  std::vector<std::string> span_names_;   ///< per node, "graph.<node>"
  std::int64_t peak_resident_bytes_ = 0;
  std::int64_t tensors_freed_ = 0;
};

}  // namespace drift::graph
