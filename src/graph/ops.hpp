// Op registry and static shape inference.
//
// Every graph op is one registry entry: arity bounds, a shape rule, a
// binder that constructs the backing src/nn layer (consuming the rng
// stream exactly like hand-built Sequential models do), an optional
// graph-level evaluator for the ops Sequential cannot express
// (add / concat / to_tokens), and an optional hardware-workload
// exporter that names the GEMMs the selector -> scheduler -> cycle-sim
// pipeline should account for.  Adding an op touches exactly one table.
#pragma once

#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "nn/layer.hpp"
#include "nn/workload.hpp"
#include "util/rng.hpp"

namespace drift::graph {

/// A static shape: one extent per axis.
using Dims = std::vector<std::int64_t>;

/// "[2, 3, 4]" — for error messages and artifacts.
std::string dims_to_string(const Dims& dims);

/// One registry entry.  All hooks are stateless free functions; node
/// attributes carry the per-instance configuration.
struct OpSpec {
  int min_inputs = 1;
  int max_inputs = 1;  ///< -1 = unbounded

  /// Shape rule: fills `out` and returns "" on success, otherwise a
  /// message (the caller prepends the node name).
  std::string (*infer)(const Node& node, const std::vector<Dims>& in,
                       Dims& out) = nullptr;

  /// Constructs the backing nn layer.  Parameterized ops consume `rng`
  /// in construction order — the same stream a hand-built Sequential
  /// uses, which is what makes graph execution bitwise-pinnable against
  /// it.  Null for graph-level ops evaluated by `run`.
  nn::LayerPtr (*bind)(const Node& node, const std::vector<Dims>& in,
                       Rng& rng) = nullptr;

  /// Graph-level evaluation for ops without an nn layer (float path,
  /// no quantization: residual adds and concats run on psums on the
  /// real accelerator).
  TensorF (*run)(const Node& node,
                 const std::vector<const TensorF*>& in) = nullptr;

  /// Appends this node's GEMMs (named `prefix + node.name[...]`) to a
  /// hardware workload export.  Null for non-GEMM ops.
  void (*export_gemms)(const Node& node, const std::vector<Dims>& in,
                       const Dims& out, const std::string& prefix,
                       std::vector<nn::LayerGemm>& gemms) = nullptr;
};

/// Registry lookup; nullptr for unknown ops.
const OpSpec* find_op(const std::string& op);

/// Comma-separated sorted op names (for unknown-op error messages).
std::string op_names();

/// Result of whole-graph shape inference.
struct ShapeResult {
  /// Shape of every graph input and every successfully-inferred node.
  std::map<std::string, Dims> by_name;
  /// "node 'x': ..." messages; empty means every node has a shape.
  std::vector<std::string> errors;

  bool ok() const { return errors.empty(); }
};

/// Validates `g` structurally, then walks it in topological order
/// applying each op's shape rule.  A node whose producer failed to
/// infer is skipped (only the root cause is reported).
ShapeResult infer_shapes(const Graph& g);

/// Right-aligned numpy-style broadcast of two shapes; returns "" and
/// fills `out` on success, otherwise an error message.  Exposed for
/// the ref-oracle pin in tests/prop/prop_graph.cpp.
std::string broadcast_dims(const Dims& a, const Dims& b, Dims& out);

}  // namespace drift::graph
