// Fluent programmatic graph construction.
//
// The builder is sugar over the Graph data model: it keeps track of
// the most recently produced value so straight-line chains read like a
// Sequential definition, while branches (residual adds, concats) name
// their operands explicitly.  build() returns the plain Graph — the
// builder holds no extra state worth keeping.
#pragma once

#include <utility>

#include "graph/graph.hpp"

namespace drift::graph {

class GraphBuilder {
 public:
  explicit GraphBuilder(std::string name, std::string family = "cnn") {
    graph_.name = std::move(name);
    graph_.family = std::move(family);
  }

  /// Declares a graph input; it becomes the "last value" for then().
  GraphBuilder& input(std::string input_name,
                      std::vector<std::int64_t> dims) {
    last_ = input_name;
    graph_.inputs.push_back(GraphInput{std::move(input_name),
                                       std::move(dims)});
    return *this;
  }

  /// Adds a node with explicit operand names.
  GraphBuilder& node(std::string node_name, std::string op,
                     std::vector<std::string> node_inputs,
                     AttrMap attrs = {}) {
    last_ = node_name;
    graph_.nodes.push_back(Node{std::move(node_name), std::move(op),
                                std::move(node_inputs), std::move(attrs)});
    return *this;
  }

  /// Adds a node consuming the previous value (straight-line chains).
  GraphBuilder& then(std::string node_name, std::string op,
                     AttrMap attrs = {}) {
    return node(std::move(node_name), std::move(op), {last_},
                std::move(attrs));
  }

  /// Declares a graph output.
  GraphBuilder& output(std::string value_name) {
    graph_.outputs.push_back(std::move(value_name));
    return *this;
  }

  /// Name of the most recently added input or node.
  const std::string& last() const { return last_; }

  /// Finishes the graph; if no output was declared, the last value is
  /// promoted to the sole output.
  Graph build() const {
    Graph g = graph_;
    if (g.outputs.empty() && !last_.empty()) g.outputs.push_back(last_);
    return g;
  }

 private:
  Graph graph_;
  std::string last_;
};

}  // namespace drift::graph
