#include "graph/graph.hpp"

#include <algorithm>
#include <set>

#include "graph/ops.hpp"
#include "util/assert.hpp"

namespace drift::graph {

Attr Attr::of_int(std::int64_t v) {
  Attr a;
  a.kind = Kind::kInt;
  a.i = v;
  return a;
}

Attr Attr::of_double(double v) {
  Attr a;
  a.kind = Kind::kDouble;
  a.d = v;
  return a;
}

Attr Attr::of_string(std::string v) {
  Attr a;
  a.kind = Kind::kString;
  a.s = std::move(v);
  return a;
}

bool Attr::operator==(const Attr& other) const {
  if (kind != other.kind) return false;
  switch (kind) {
    case Kind::kInt: return i == other.i;
    case Kind::kDouble: return d == other.d;
    case Kind::kString: return s == other.s;
  }
  return false;
}

std::int64_t Node::attr_int(const std::string& key,
                            std::int64_t fallback) const {
  const auto it = attrs.find(key);
  if (it == attrs.end()) return fallback;
  DRIFT_CHECK(it->second.kind == Attr::Kind::kInt,
              "attribute is not an integer");
  return it->second.i;
}

std::string Node::attr_string(const std::string& key,
                              const std::string& fallback) const {
  const auto it = attrs.find(key);
  if (it == attrs.end()) return fallback;
  DRIFT_CHECK(it->second.kind == Attr::Kind::kString,
              "attribute is not a string");
  return it->second.s;
}

bool Node::has_attr(const std::string& key) const {
  return attrs.find(key) != attrs.end();
}

int Graph::node_index(const std::string& node_name) const {
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].name == node_name) return static_cast<int>(i);
  }
  return -1;
}

int Graph::input_index(const std::string& input_name) const {
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    if (inputs[i].name == input_name) return static_cast<int>(i);
  }
  return -1;
}

namespace {

/// Producer-index adjacency: for each node, the indices of the nodes
/// it consumes (graph inputs excluded).  Only meaningful once names
/// resolve, so validation builds it after the reference checks.
std::vector<std::vector<int>> node_producers(const Graph& g) {
  std::vector<std::vector<int>> producers(g.nodes.size());
  for (std::size_t n = 0; n < g.nodes.size(); ++n) {
    for (const std::string& in : g.nodes[n].inputs) {
      const int p = g.node_index(in);
      if (p >= 0) producers[n].push_back(p);
    }
  }
  return producers;
}

}  // namespace

std::vector<std::string> validate(const Graph& g) {
  std::vector<std::string> errors;
  const auto node_error = [&errors](const std::string& node,
                                    const std::string& message) {
    errors.push_back("node '" + node + "': " + message);
  };

  // Name uniqueness across inputs and nodes (one namespace: node
  // inputs reference either kind by name).
  std::set<std::string> names;
  for (const GraphInput& in : g.inputs) {
    if (in.name.empty()) {
      errors.push_back("graph input with empty name");
      continue;
    }
    if (!names.insert(in.name).second) {
      node_error(in.name, "duplicate name (graph input)");
    }
    if (in.dims.empty()) node_error(in.name, "graph input has empty shape");
    for (const std::int64_t d : in.dims) {
      if (d <= 0) {
        node_error(in.name, "graph input has non-positive dimension");
        break;
      }
    }
  }
  for (const Node& node : g.nodes) {
    if (node.name.empty()) {
      errors.push_back("node with empty name (op '" + node.op + "')");
      continue;
    }
    if (!names.insert(node.name).second) {
      node_error(node.name, "duplicate name");
    }
  }

  // Op existence, arity, and input resolvability.
  for (const Node& node : g.nodes) {
    const OpSpec* spec = find_op(node.op);
    if (spec == nullptr) {
      node_error(node.name,
                 "unknown op '" + node.op + "' (known: " + op_names() + ")");
    } else {
      const int arity = static_cast<int>(node.inputs.size());
      if (arity < spec->min_inputs ||
          (spec->max_inputs >= 0 && arity > spec->max_inputs)) {
        node_error(node.name,
                   "op '" + node.op + "' expects " +
                       std::to_string(spec->min_inputs) +
                       (spec->max_inputs == spec->min_inputs
                            ? ""
                            : (spec->max_inputs < 0
                                   ? "+"
                                   : ".." + std::to_string(spec->max_inputs))) +
                       " input(s), got " + std::to_string(arity));
      }
    }
    for (const std::string& in : node.inputs) {
      if (g.node_index(in) < 0 && g.input_index(in) < 0) {
        node_error(node.name,
                   "input '" + in + "' is neither a graph input nor a node");
      }
    }
  }

  // Outputs must name nodes (or inputs, for degenerate passthroughs).
  if (g.outputs.empty()) {
    errors.push_back("graph '" + g.name + "' declares no outputs");
  }
  for (const std::string& out : g.outputs) {
    if (g.node_index(out) < 0 && g.input_index(out) < 0) {
      node_error(out, "declared as graph output but never defined");
    }
  }

  // Acyclicity (only once references resolve — a dangling name is
  // already reported above and would corrupt the in-degree count).
  if (errors.empty()) {
    const auto producers = node_producers(g);
    std::vector<int> indegree(g.nodes.size(), 0);
    for (std::size_t n = 0; n < g.nodes.size(); ++n) {
      indegree[n] = static_cast<int>(producers[n].size());
    }
    std::vector<std::vector<int>> consumers(g.nodes.size());
    for (std::size_t n = 0; n < g.nodes.size(); ++n) {
      for (const int p : producers[n]) {
        consumers[static_cast<std::size_t>(p)].push_back(static_cast<int>(n));
      }
    }
    std::vector<int> ready;
    for (std::size_t n = 0; n < g.nodes.size(); ++n) {
      if (indegree[n] == 0) ready.push_back(static_cast<int>(n));
    }
    std::size_t emitted = 0;
    for (std::size_t head = 0; head < ready.size(); ++head) {
      const int n = ready[head];
      ++emitted;
      for (const int c : consumers[static_cast<std::size_t>(n)]) {
        if (--indegree[static_cast<std::size_t>(c)] == 0) ready.push_back(c);
      }
    }
    if (emitted != g.nodes.size()) {
      for (std::size_t n = 0; n < g.nodes.size(); ++n) {
        if (indegree[n] > 0) {
          node_error(g.nodes[n].name, "part of a dependency cycle");
          break;  // one representative keeps the message actionable
        }
      }
    }
  }

  return errors;
}

std::vector<int> topological_order(const Graph& g) {
  DRIFT_CHECK(validate(g).empty(),
              "topological_order requires a validated graph");
  const auto producers = node_producers(g);
  std::vector<int> indegree(g.nodes.size(), 0);
  std::vector<std::vector<int>> consumers(g.nodes.size());
  for (std::size_t n = 0; n < g.nodes.size(); ++n) {
    indegree[n] = static_cast<int>(producers[n].size());
    for (const int p : producers[n]) {
      consumers[static_cast<std::size_t>(p)].push_back(static_cast<int>(n));
    }
  }
  // The ready set is a sorted container keyed by insertion index, so
  // the emitted order is the unique smallest-index-first topological
  // order — stable across platforms and refactors.
  std::set<int> ready;
  for (std::size_t n = 0; n < g.nodes.size(); ++n) {
    if (indegree[n] == 0) ready.insert(static_cast<int>(n));
  }
  std::vector<int> order;
  order.reserve(g.nodes.size());
  while (!ready.empty()) {
    const int n = *ready.begin();
    ready.erase(ready.begin());
    order.push_back(n);
    for (const int c : consumers[static_cast<std::size_t>(n)]) {
      if (--indegree[static_cast<std::size_t>(c)] == 0) ready.insert(c);
    }
  }
  DRIFT_CHECK_EQ(order.size(), g.nodes.size(), "cycle in validated graph");
  return order;
}

namespace {

void enumerate_orders(const std::vector<std::vector<int>>& consumers,
                      std::vector<int>& indegree, std::set<int>& ready,
                      std::vector<int>& prefix, std::size_t total,
                      std::size_t limit,
                      std::vector<std::vector<int>>& out) {
  if (out.size() >= limit) return;
  if (prefix.size() == total) {
    out.push_back(prefix);
    return;
  }
  // Branch over every currently-ready node (std::set iteration is
  // sorted, so the enumeration order is deterministic).
  const std::vector<int> candidates(ready.begin(), ready.end());
  for (const int n : candidates) {
    ready.erase(n);
    prefix.push_back(n);
    for (const int c : consumers[static_cast<std::size_t>(n)]) {
      if (--indegree[static_cast<std::size_t>(c)] == 0) ready.insert(c);
    }
    enumerate_orders(consumers, indegree, ready, prefix, total, limit, out);
    for (const int c : consumers[static_cast<std::size_t>(n)]) {
      if (indegree[static_cast<std::size_t>(c)]++ == 0) ready.erase(c);
    }
    prefix.pop_back();
    ready.insert(n);
    if (out.size() >= limit) return;
  }
}

}  // namespace

std::vector<std::vector<int>> all_topological_orders(const Graph& g,
                                                     std::size_t limit) {
  DRIFT_CHECK(validate(g).empty(),
              "all_topological_orders requires a validated graph");
  const auto producers = node_producers(g);
  std::vector<int> indegree(g.nodes.size(), 0);
  std::vector<std::vector<int>> consumers(g.nodes.size());
  for (std::size_t n = 0; n < g.nodes.size(); ++n) {
    indegree[n] = static_cast<int>(producers[n].size());
    for (const int p : producers[n]) {
      consumers[static_cast<std::size_t>(p)].push_back(static_cast<int>(n));
    }
  }
  std::set<int> ready;
  for (std::size_t n = 0; n < g.nodes.size(); ++n) {
    if (indegree[n] == 0) ready.insert(static_cast<int>(n));
  }
  std::vector<std::vector<int>> out;
  std::vector<int> prefix;
  enumerate_orders(consumers, indegree, ready, prefix, g.nodes.size(), limit,
                   out);
  return out;
}

}  // namespace drift::graph
