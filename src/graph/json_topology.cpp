#include "graph/json_topology.hpp"

#include <array>
#include <charconv>
#include <utility>

#include "util/assert.hpp"

namespace drift::graph {

namespace {

// ---------------------------------------------------------------------
// Minimal JSON document model + recursive-descent parser.  Object
// member order is preserved so node order in the file is node order in
// the graph (which the executor's rng-stream contract depends on).
// ---------------------------------------------------------------------

struct JsonValue {
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool b = false;
  std::int64_t i = 0;
  double d = 0.0;
  std::string s;
  std::vector<JsonValue> items;
  std::vector<std::pair<std::string, JsonValue>> members;

  const JsonValue* member(const std::string& key) const {
    for (const auto& [k, v] : members) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  /// Parses one document; on failure `error()` is position-stamped.
  bool parse(JsonValue& out) {
    skip_ws();
    if (!parse_value(out)) return false;
    skip_ws();
    if (pos_ != text_.size()) {
      return fail("trailing characters after JSON document");
    }
    return true;
  }

  const std::string& error() const { return error_; }

 private:
  bool fail(const std::string& message) {
    if (error_.empty()) {
      error_ = "JSON error at byte " + std::to_string(pos_) + ": " + message;
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return fail(std::string("expected '") + expected + "'");
  }

  bool parse_value(JsonValue& out) {
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return parse_object(out);
    if (c == '[') return parse_array(out);
    if (c == '"') {
      out.kind = JsonValue::Kind::kString;
      return parse_string(out.s);
    }
    if (c == 't' || c == 'f') return parse_bool(out);
    if (c == 'n') return parse_null(out);
    return parse_number(out);
  }

  bool parse_object(JsonValue& out) {
    out.kind = JsonValue::Kind::kObject;
    if (!consume('{')) return false;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!consume(':')) return false;
      skip_ws();
      JsonValue value;
      if (!parse_value(value)) return false;
      out.members.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return consume('}');
    }
  }

  bool parse_array(JsonValue& out) {
    out.kind = JsonValue::Kind::kArray;
    if (!consume('[')) return false;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      JsonValue value;
      if (!parse_value(value)) return false;
      out.items.push_back(std::move(value));
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return consume(']');
    }
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return fail("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          default:
            return fail(std::string("unsupported escape '\\") + e + "'");
        }
        continue;
      }
      out += c;
    }
    return fail("unterminated string");
  }

  bool parse_bool(JsonValue& out) {
    if (text_.compare(pos_, 4, "true") == 0) {
      out.kind = JsonValue::Kind::kBool;
      out.b = true;
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out.kind = JsonValue::Kind::kBool;
      out.b = false;
      pos_ += 5;
      return true;
    }
    return fail("malformed literal");
  }

  bool parse_null(JsonValue& out) {
    if (text_.compare(pos_, 4, "null") == 0) {
      out.kind = JsonValue::Kind::kNull;
      pos_ += 4;
      return true;
    }
    return fail("malformed literal");
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    bool fractional = false;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
        continue;
      }
      if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        fractional = true;
        ++pos_;
        continue;
      }
      break;
    }
    if (pos_ == start) return fail("expected a value");
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    if (fractional) {
      out.kind = JsonValue::Kind::kDouble;
      const auto [ptr, ec] = std::from_chars(first, last, out.d);
      if (ec != std::errc() || ptr != last) return fail("malformed number");
    } else {
      out.kind = JsonValue::Kind::kInt;
      const auto [ptr, ec] = std::from_chars(first, last, out.i);
      if (ec != std::errc() || ptr != last) return fail("malformed number");
    }
    return true;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::string error_;
};

// ---------------------------------------------------------------------
// Document -> Graph conversion with schema errors.
// ---------------------------------------------------------------------

void convert_attrs(const JsonValue& attrs, Node& node,
                   std::vector<std::string>& errors) {
  for (const auto& [key, value] : attrs.members) {
    switch (value.kind) {
      case JsonValue::Kind::kInt:
        node.attrs[key] = Attr::of_int(value.i);
        break;
      case JsonValue::Kind::kDouble:
        node.attrs[key] = Attr::of_double(value.d);
        break;
      case JsonValue::Kind::kString:
        node.attrs[key] = Attr::of_string(value.s);
        break;
      default:
        errors.push_back("node '" + node.name + "': attribute '" + key +
                         "' must be a number or string");
        break;
    }
  }
}

void convert_graph(const JsonValue& doc, TopologyParseResult& result) {
  if (doc.kind != JsonValue::Kind::kObject) {
    result.errors.push_back("topology document must be a JSON object");
    return;
  }
  const auto string_field = [&](const char* key, std::string& out,
                                bool required) {
    const JsonValue* v = doc.member(key);
    if (v == nullptr) {
      if (required) {
        result.errors.push_back(std::string("missing field '") + key + "'");
      }
      return;
    }
    if (v->kind != JsonValue::Kind::kString) {
      result.errors.push_back(std::string("field '") + key +
                              "' must be a string");
      return;
    }
    out = v->s;
  };
  string_field("name", result.graph.name, /*required=*/true);
  string_field("family", result.graph.family, /*required=*/false);

  if (const JsonValue* inputs = doc.member("inputs")) {
    if (inputs->kind != JsonValue::Kind::kArray) {
      result.errors.push_back("field 'inputs' must be an array");
    } else {
      for (const JsonValue& item : inputs->items) {
        GraphInput in;
        const JsonValue* name = item.member("name");
        const JsonValue* shape = item.member("shape");
        if (item.kind != JsonValue::Kind::kObject || name == nullptr ||
            name->kind != JsonValue::Kind::kString || shape == nullptr ||
            shape->kind != JsonValue::Kind::kArray) {
          result.errors.push_back(
              "each input must be {\"name\": ..., \"shape\": [...]}");
          continue;
        }
        in.name = name->s;
        for (const JsonValue& dim : shape->items) {
          if (dim.kind != JsonValue::Kind::kInt) {
            result.errors.push_back("node '" + in.name +
                                    "': shape entries must be integers");
            break;
          }
          in.dims.push_back(dim.i);
        }
        result.graph.inputs.push_back(std::move(in));
      }
    }
  } else {
    result.errors.push_back("missing field 'inputs'");
  }

  if (const JsonValue* nodes = doc.member("nodes")) {
    if (nodes->kind != JsonValue::Kind::kArray) {
      result.errors.push_back("field 'nodes' must be an array");
    } else {
      for (const JsonValue& item : nodes->items) {
        Node node;
        const JsonValue* name = item.member("name");
        const JsonValue* op = item.member("op");
        if (item.kind != JsonValue::Kind::kObject || name == nullptr ||
            name->kind != JsonValue::Kind::kString || op == nullptr ||
            op->kind != JsonValue::Kind::kString) {
          result.errors.push_back(
              "each node must carry string fields 'name' and 'op'");
          continue;
        }
        node.name = name->s;
        node.op = op->s;
        if (const JsonValue* node_inputs = item.member("inputs")) {
          if (node_inputs->kind != JsonValue::Kind::kArray) {
            result.errors.push_back("node '" + node.name +
                                    "': 'inputs' must be an array");
          } else {
            for (const JsonValue& in_name : node_inputs->items) {
              if (in_name.kind != JsonValue::Kind::kString) {
                result.errors.push_back("node '" + node.name +
                                        "': inputs must be strings");
                break;
              }
              node.inputs.push_back(in_name.s);
            }
          }
        }
        if (const JsonValue* attrs = item.member("attrs")) {
          if (attrs->kind != JsonValue::Kind::kObject) {
            result.errors.push_back("node '" + node.name +
                                    "': 'attrs' must be an object");
          } else {
            convert_attrs(*attrs, node, result.errors);
          }
        }
        result.graph.nodes.push_back(std::move(node));
      }
    }
  } else {
    result.errors.push_back("missing field 'nodes'");
  }

  if (const JsonValue* outputs = doc.member("outputs")) {
    if (outputs->kind != JsonValue::Kind::kArray) {
      result.errors.push_back("field 'outputs' must be an array");
    } else {
      for (const JsonValue& out_name : outputs->items) {
        if (out_name.kind != JsonValue::Kind::kString) {
          result.errors.push_back("outputs must be strings");
          break;
        }
        result.graph.outputs.push_back(out_name.s);
      }
    }
  } else {
    result.errors.push_back("missing field 'outputs'");
  }
}

// ---------------------------------------------------------------------
// Canonical emission.
// ---------------------------------------------------------------------

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out += c; break;
    }
  }
  return out;
}

std::string double_to_string(double v) {
  std::array<char, 64> buffer{};
  const auto [ptr, ec] =
      std::to_chars(buffer.data(), buffer.data() + buffer.size(), v);
  DRIFT_CHECK(ec == std::errc(), "double formatting failed");
  std::string out(buffer.data(), ptr);
  // Keep doubles visibly doubles so parse(emit(g)) preserves the tag.
  if (out.find('.') == std::string::npos &&
      out.find('e') == std::string::npos &&
      out.find("inf") == std::string::npos &&
      out.find("nan") == std::string::npos) {
    out += ".0";
  }
  return out;
}

std::string attr_to_string(const Attr& attr) {
  switch (attr.kind) {
    case Attr::Kind::kInt: return std::to_string(attr.i);
    case Attr::Kind::kDouble: return double_to_string(attr.d);
    case Attr::Kind::kString: {
      std::string out = "\"";
      out += escape(attr.s);
      out += "\"";
      return out;
    }
  }
  return "null";
}

std::string dims_json(const std::vector<std::int64_t>& dims) {
  std::string out = "[";
  for (std::size_t i = 0; i < dims.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(dims[i]);
  }
  out += "]";
  return out;
}

std::string names_json(const std::vector<std::string>& names) {
  std::string out = "[";
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out += ", ";
    out += "\"";
    out += escape(names[i]);
    out += "\"";
  }
  out += "]";
  return out;
}

}  // namespace

TopologyParseResult parse_topology(const std::string& text) {
  TopologyParseResult result;
  JsonValue doc;
  Parser parser(text);
  if (!parser.parse(doc)) {
    result.errors.push_back(parser.error());
    return result;
  }
  convert_graph(doc, result);
  return result;
}

std::string to_topology_json(const Graph& g) {
  std::string out;
  out += "{\n";
  out += "  \"name\": \"" + escape(g.name) + "\",\n";
  out += "  \"family\": \"" + escape(g.family) + "\",\n";
  out += "  \"inputs\": [\n";
  for (std::size_t i = 0; i < g.inputs.size(); ++i) {
    out += "    {\"name\": \"" + escape(g.inputs[i].name) +
           "\", \"shape\": " + dims_json(g.inputs[i].dims) + "}";
    out += i + 1 < g.inputs.size() ? ",\n" : "\n";
  }
  out += "  ],\n";
  out += "  \"nodes\": [\n";
  for (std::size_t i = 0; i < g.nodes.size(); ++i) {
    const Node& node = g.nodes[i];
    out += "    {\"name\": \"" + escape(node.name) + "\", \"op\": \"" +
           escape(node.op) + "\", \"inputs\": " + names_json(node.inputs);
    if (!node.attrs.empty()) {
      out += ", \"attrs\": {";
      bool first = true;
      for (const auto& [key, attr] : node.attrs) {
        if (!first) out += ", ";
        first = false;
        out += "\"";
        out += escape(key);
        out += "\": ";
        out += attr_to_string(attr);
      }
      out += "}";
    }
    out += "}";
    out += i + 1 < g.nodes.size() ? ",\n" : "\n";
  }
  out += "  ],\n";
  out += "  \"outputs\": " + names_json(g.outputs) + "\n";
  out += "}\n";
  return out;
}

}  // namespace drift::graph
