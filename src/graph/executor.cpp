#include "graph/executor.hpp"

#include <algorithm>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"

namespace drift::graph {

GraphExecutor::GraphExecutor(Graph g, Rng& rng) : graph_(std::move(g)) {
  const std::vector<std::string> structural = validate(graph_);
  if (!structural.empty()) {
    throw check_error("invalid graph: " + structural.front());
  }
  shapes_ = infer_shapes(graph_);
  if (!shapes_.ok()) {
    throw check_error("shape inference failed: " + shapes_.errors.front());
  }

  layers_.reserve(graph_.nodes.size());
  specs_.reserve(graph_.nodes.size());
  span_names_.reserve(graph_.nodes.size());
  // Insertion order, NOT topological order: the rng stream must match
  // a Sequential built from the same node list.
  for (const Node& node : graph_.nodes) {
    const OpSpec* spec = find_op(node.op);
    DRIFT_CHECK(spec != nullptr, "validated graph has unknown op");
    specs_.push_back(spec);
    span_names_.push_back("graph." + node.name);
    std::vector<Dims> in_dims;
    in_dims.reserve(node.inputs.size());
    for (const std::string& in_name : node.inputs) {
      in_dims.push_back(shapes_.by_name.at(in_name));
    }
    layers_.push_back(spec->bind != nullptr ? spec->bind(node, in_dims, rng)
                                            : nullptr);
  }
}

std::vector<TensorF> GraphExecutor::run(const std::vector<TensorF>& inputs,
                                        nn::QuantEngine& engine) {
  return run_with_order(inputs, engine, topological_order(graph_));
}

std::vector<TensorF> GraphExecutor::run_with_order(
    const std::vector<TensorF>& inputs, nn::QuantEngine& engine,
    const std::vector<int>& order) {
  DRIFT_CHECK_EQ(inputs.size(), graph_.inputs.size(),
                 "graph input count mismatch");
  DRIFT_CHECK_EQ(order.size(), graph_.nodes.size(),
                 "order must cover every node");
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    DRIFT_CHECK(inputs[i].shape().dims() == graph_.inputs[i].dims,
                "graph input shape mismatch");
  }

  // Value slots: graph inputs first, then one per node.  Refcount =
  // consuming nodes + 1 if the value is a graph output, so outputs are
  // never released mid-run.
  const std::size_t num_inputs = graph_.inputs.size();
  const auto slot_of = [&](const std::string& name) {
    const int in_idx = graph_.input_index(name);
    if (in_idx >= 0) return static_cast<std::size_t>(in_idx);
    const int node_idx = graph_.node_index(name);
    DRIFT_CHECK(node_idx >= 0, "unresolvable value name");
    return num_inputs + static_cast<std::size_t>(node_idx);
  };

  std::vector<std::optional<TensorF>> slots(num_inputs +
                                            graph_.nodes.size());
  std::vector<std::int64_t> refcount(slots.size(), 0);
  for (const Node& node : graph_.nodes) {
    for (const std::string& in_name : node.inputs) {
      ++refcount[slot_of(in_name)];
    }
  }
  for (const std::string& out_name : graph_.outputs) {
    ++refcount[slot_of(out_name)];
  }

  std::int64_t resident = 0;
  peak_resident_bytes_ = 0;
  tensors_freed_ = 0;
  const auto tensor_bytes = [](const TensorF& t) {
    return t.numel() * static_cast<std::int64_t>(sizeof(float));
  };
  const auto place = [&](std::size_t slot, TensorF value) {
    resident += tensor_bytes(value);
    peak_resident_bytes_ = std::max(peak_resident_bytes_, resident);
    slots[slot] = std::move(value);
  };
  const auto release_if_dead = [&](std::size_t slot) {
    if (refcount[slot] == 0 && slots[slot].has_value()) {
      resident -= tensor_bytes(*slots[slot]);
      slots[slot].reset();
      ++tensors_freed_;
    }
  };

  for (std::size_t i = 0; i < num_inputs; ++i) {
    place(i, inputs[i]);
    release_if_dead(i);  // an unconsumed non-output input dies at once
  }

  std::vector<bool> executed(graph_.nodes.size(), false);
  for (const int idx : order) {
    DRIFT_CHECK_INDEX(idx, static_cast<std::int64_t>(graph_.nodes.size()));
    const auto node_idx = static_cast<std::size_t>(idx);
    DRIFT_CHECK(!executed[node_idx], "order repeats a node");
    const Node& node = graph_.nodes[node_idx];

    std::vector<const TensorF*> node_inputs;
    std::vector<std::size_t> input_slots;
    node_inputs.reserve(node.inputs.size());
    input_slots.reserve(node.inputs.size());
    for (const std::string& in_name : node.inputs) {
      const std::size_t slot = slot_of(in_name);
      DRIFT_CHECK(slots[slot].has_value(),
                  "order runs a node before its producer");
      node_inputs.push_back(&*slots[slot]);
      input_slots.push_back(slot);
    }

    {
#ifndef DRIFT_OBS_OFF
      obs::ScopedSpan span(span_names_[node_idx].c_str());
#endif
      TensorF out =
          layers_[node_idx] != nullptr
              ? layers_[node_idx]->forward(*node_inputs[0], engine)
              : specs_[node_idx]->run(node, node_inputs);
      DRIFT_CHECK(out.shape().dims() == shapes_.by_name.at(node.name),
                  "executed shape disagrees with inference");
      place(num_inputs + node_idx, std::move(out));
    }
    DRIFT_OBS_COUNT("graph.nodes_executed", 1);

    executed[node_idx] = true;
    for (const std::size_t slot : input_slots) {
      --refcount[slot];
      release_if_dead(slot);
    }
  }

  DRIFT_OBS_GAUGE_SET("graph.peak_resident_bytes",
                      static_cast<double>(peak_resident_bytes_));

  std::vector<TensorF> outputs;
  outputs.reserve(graph_.outputs.size());
  for (const std::string& out_name : graph_.outputs) {
    const std::size_t slot = slot_of(out_name);
    DRIFT_CHECK(slots[slot].has_value(), "output value missing after run");
    outputs.push_back(*slots[slot]);
  }
  return outputs;
}

}  // namespace drift::graph
