// Operator-graph data model for whole-model topologies.
//
// A Graph is a list of named typed ops (nodes) wired by name: each
// node's inputs reference either a graph input or an earlier/later
// node — the structure is a DAG, not a layer list, so residual adds,
// concats and multi-branch topologies are first-class.  Nodes carry an
// attribute map (kernel sizes, widths, head counts) instead of
// per-op structs, so the whole surface serializes to the tiny JSON
// topology format in graph/json_topology.hpp and new workloads become
// data, not code.
//
// Everything here is pure structure: validation and deterministic
// topological ordering.  Shape inference lives with the op registry
// (graph/ops.hpp), execution in graph/executor.hpp, and the hardware
// workload export in graph/workload_export.hpp.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace drift::graph {

/// One node attribute: a tagged int / double / string scalar.
struct Attr {
  enum class Kind { kInt, kDouble, kString };

  Kind kind = Kind::kInt;
  std::int64_t i = 0;
  double d = 0.0;
  std::string s;

  static Attr of_int(std::int64_t v);
  static Attr of_double(double v);
  static Attr of_string(std::string v);

  bool operator==(const Attr& other) const;
};

/// Sorted so serialization and error listings are deterministic.
using AttrMap = std::map<std::string, Attr>;

/// One operator instance.  `op` names an entry of the registry
/// (graph/ops.hpp); `inputs` name graph inputs or producer nodes.
struct Node {
  std::string name;
  std::string op;
  std::vector<std::string> inputs;
  AttrMap attrs;

  /// Attribute lookups with fallback (bind/run-time use; the
  /// validation pass reports missing required attrs with node names).
  std::int64_t attr_int(const std::string& key, std::int64_t fallback) const;
  std::string attr_string(const std::string& key,
                          const std::string& fallback) const;
  bool has_attr(const std::string& key) const;
};

/// A named graph input with its static shape.
struct GraphInput {
  std::string name;
  std::vector<std::int64_t> dims;
};

/// Whole topology: inputs, nodes (any order consistent with some DAG),
/// output node names, plus the model-level metadata the hardware
/// export needs (family selects the distribution profiles).
struct Graph {
  std::string name;
  std::string family = "cnn";  ///< cnn | vit | bert | llm
  std::vector<GraphInput> inputs;
  std::vector<Node> nodes;
  std::vector<std::string> outputs;

  /// Index of the node named `name`, or -1.
  int node_index(const std::string& node_name) const;
  /// Index of the graph input named `name`, or -1.
  int input_index(const std::string& input_name) const;
};

/// Structural validation: unique names, known ops, resolvable inputs,
/// per-op arity, acyclicity, and non-empty resolvable outputs.  Every
/// message names the offending node ("node 'x': ...").  An empty
/// result means the graph is well-formed (shapes are checked
/// separately by infer_shapes in graph/ops.hpp).
std::vector<std::string> validate(const Graph& g);

/// Deterministic topological order (node indices): Kahn's algorithm
/// with the ready set kept in insertion order, so a graph whose nodes
/// are already listed in execution order keeps that order exactly.
/// Requires validate(g) to be clean.
std::vector<int> topological_order(const Graph& g);

/// Every valid topological order of the graph, capped at `limit`
/// (enumeration is factorial; callers pass small graphs).  Used by the
/// order-invariance property suite.
std::vector<std::vector<int>> all_topological_orders(const Graph& g,
                                                     std::size_t limit);

}  // namespace drift::graph
