#include "graph/workload_export.hpp"

#include "nn/synthetic.hpp"
#include "util/assert.hpp"

namespace drift::graph {

nn::ModelFamily family_from_string(const std::string& family) {
  if (family == "cnn") return nn::ModelFamily::kCnn;
  if (family == "vit") return nn::ModelFamily::kVit;
  if (family == "bert") return nn::ModelFamily::kBert;
  if (family == "llm") return nn::ModelFamily::kLlm;
  throw check_error("unknown model family '" + family +
                    "' (expected cnn, vit, bert or llm)");
}

nn::WorkloadSpec to_workload(const Graph& g, const ShapeResult& shapes,
                             const WorkloadExportOptions& options) {
  DRIFT_CHECK(shapes.ok(), "to_workload requires clean shape inference");
  nn::WorkloadSpec spec;
  spec.model = g.name;
  spec.family = family_from_string(g.family);
  switch (spec.family) {
    case nn::ModelFamily::kCnn: spec.act_profile = nn::cnn_profile(); break;
    case nn::ModelFamily::kVit: spec.act_profile = nn::vit_profile(); break;
    case nn::ModelFamily::kBert: spec.act_profile = nn::bert_profile(); break;
    case nn::ModelFamily::kLlm: spec.act_profile = nn::llm_profile(); break;
  }
  spec.weight_profile = nn::weight_profile();

  for (const int idx : topological_order(g)) {
    const Node& node = g.nodes[static_cast<std::size_t>(idx)];
    const OpSpec* op = find_op(node.op);
    DRIFT_CHECK(op != nullptr, "validated graph has unknown op");
    if (op->export_gemms == nullptr) continue;
    std::vector<Dims> in_dims;
    in_dims.reserve(node.inputs.size());
    for (const std::string& in_name : node.inputs) {
      in_dims.push_back(shapes.by_name.at(in_name));
    }
    op->export_gemms(node, in_dims, shapes.by_name.at(node.name),
                     options.prefix, spec.layers);
  }
  return spec;
}

}  // namespace drift::graph
