// Figure 1 reproduction: sub-tensor dynamics and distribution.
//
// The paper profiles ViT patch activations and BERT token activations
// and observes (a) vastly different value ranges/variances across
// sub-tensors of one tensor and (b) that individual sub-tensors are
// well approximated by zero-mean Laplace distributions.
//
// This bench generates distribution-faithful activation tensors for
// both model families, reports per-sub-tensor max/variance spread
// (Figure 1a) and the goodness-of-fit of Laplace vs Normal models per
// sub-tensor (Figure 1b-c), including KS statistics, log-likelihoods
// and excess kurtosis.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "nn/synthetic.hpp"
#include "obs/report.hpp"
#include "stats/fit.hpp"
#include "stats/histogram.hpp"
#include "util/args.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace drift;

namespace {

struct FamilyReport {
  std::string family;
  double max_spread = 0.0;       ///< max over sub-tensors / min
  double var_spread = 0.0;
  double mean_ks_laplace = 0.0;
  double mean_ks_normal = 0.0;
  double laplace_wins = 0.0;     ///< fraction preferred by log-lik
  double mean_kurtosis = 0.0;
};

FamilyReport profile_family(const std::string& name,
                            const nn::SubTensorScaleProfile& profile,
                            std::uint64_t seed, TextTable& subtensor_table) {
  Rng rng(seed);
  const std::int64_t tokens = 64, dim = 768;
  const TensorF x = nn::synth_rows(rng, tokens, dim, profile);

  FamilyReport rep;
  rep.family = name;
  double min_max = 1e30, max_max = 0.0, min_var = 1e30, max_var = 0.0;
  int laplace_preferred = 0;
  for (std::int64_t t = 0; t < tokens; ++t) {
    auto row = x.row(t);
    const auto lap = stats::fit_laplace(row);
    const auto nor = stats::fit_normal(row);
    const double ks_lap =
        stats::ks_statistic(row, [&](double v) { return lap.cdf(v); });
    const double ks_nor =
        stats::ks_statistic(row, [&](double v) { return nor.cdf(v); });
    const double ll_lap =
        stats::mean_log_likelihood(row, [&](double v) { return lap.pdf(v); });
    const double ll_nor =
        stats::mean_log_likelihood(row, [&](double v) { return nor.pdf(v); });
    const auto s = stats::summarize(row);
    min_max = std::min(min_max, s.max_abs);
    max_max = std::max(max_max, s.max_abs);
    min_var = std::min(min_var, s.variance);
    max_var = std::max(max_var, s.variance);
    rep.mean_ks_laplace += ks_lap;
    rep.mean_ks_normal += ks_nor;
    rep.mean_kurtosis += stats::excess_kurtosis(row);
    if (ll_lap > ll_nor) ++laplace_preferred;
    if (t < 6) {
      subtensor_table.add_row(
          {name, "token " + std::to_string(t), TextTable::fmt(s.max_abs),
           TextTable::fmt(s.variance, 4), TextTable::fmt(lap.scale(), 4),
           TextTable::fmt(ks_lap, 4), TextTable::fmt(ks_nor, 4)});
    }
  }
  rep.max_spread = max_max / std::max(min_max, 1e-12);
  rep.var_spread = max_var / std::max(min_var, 1e-12);
  rep.mean_ks_laplace /= static_cast<double>(tokens);
  rep.mean_ks_normal /= static_cast<double>(tokens);
  rep.mean_kurtosis /= static_cast<double>(tokens);
  rep.laplace_wins =
      static_cast<double>(laplace_preferred) / static_cast<double>(tokens);
  return rep;
}

}  // namespace

int main(int argc, char** argv) {
  // --metrics-out / --trace-out artifact surface (README "Observability").
  const Args args = Args::parse(argc, argv);
  const obs::ReportOptions artifacts = obs::ReportOptions::from_args(args);

  std::printf("=== Figure 1: sub-tensor dynamics and distribution ===\n\n");

  TextTable per_subtensor({"family", "sub-tensor", "max|Y|", "var(Y)",
                           "Laplace b", "KS(Laplace)", "KS(Normal)"});
  std::vector<FamilyReport> reports;
  reports.push_back(
      profile_family("ViT", nn::vit_profile(), 101, per_subtensor));
  reports.push_back(
      profile_family("BERT", nn::bert_profile(), 102, per_subtensor));
  reports.push_back(
      profile_family("LLM", nn::llm_profile(), 103, per_subtensor));

  std::printf("(a) per-sub-tensor statistics (first 6 tokens each):\n%s\n",
              per_subtensor.to_string().c_str());

  TextTable agg({"family", "max spread", "var spread", "mean KS Laplace",
                 "mean KS Normal", "Laplace preferred", "excess kurtosis"});
  CsvWriter csv("fig1_subtensor_dynamics.csv",
                {"family", "max_spread", "var_spread", "ks_laplace",
                 "ks_normal", "laplace_preferred", "kurtosis"});
  for (const auto& r : reports) {
    agg.add_row({r.family, TextTable::ratio(r.max_spread, 1),
                 TextTable::ratio(r.var_spread, 1),
                 TextTable::fmt(r.mean_ks_laplace, 4),
                 TextTable::fmt(r.mean_ks_normal, 4),
                 TextTable::pct(r.laplace_wins),
                 TextTable::fmt(r.mean_kurtosis, 2)});
    csv.row_values(r.family, r.max_spread, r.var_spread, r.mean_ks_laplace,
                   r.mean_ks_normal, r.laplace_wins, r.mean_kurtosis);
  }
  std::printf("(b/c) distribution fits per family:\n%s\n",
              agg.to_string().c_str());

  // A concrete sub-tensor histogram, as in Figure 1b.
  Rng rng(104);
  const TensorF x = nn::synth_rows(rng, 1, 4096, nn::bert_profile());
  stats::Histogram hist(-2.0, 2.0, 21);
  hist.add_all(x.data());
  std::printf("sample BERT token histogram (Laplace shape):\n%s\n",
              hist.ascii(48).c_str());

  std::printf("paper claim check: sub-tensors span wide ranges and are\n"
              "Laplace-preferred (KS(Laplace) < KS(Normal), kurtosis ~ +3).\n");
  return artifacts.write() ? 0 : 1;
}
