// Figure 7 reproduction: normalized latency speedup of BitFusion, DRQ
// and Drift over Eyeriss across the seven evaluation models.
//
// Workloads are the full-size layer shapes of the real architectures;
// per-layer precision mixes come from running each design's own
// algorithm (static INT8 / DRQ regions / Drift Eq. 5-6) on sub-tensor
// statistics sampled from the model's activation profile.
#include <cmath>
#include <cstdio>

#include "accel/compare.hpp"
#include "obs/report.hpp"
#include "util/args.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace drift;

int main(int argc, char** argv) {
  // --metrics-out / --trace-out artifact surface (README "Observability").
  const Args args = Args::parse(argc, argv);
  const obs::ReportOptions artifacts = obs::ReportOptions::from_args(args);

  std::printf("=== Figure 7: latency speedup over Eyeriss ===\n\n");

  accel::CompareConfig cfg;
  cfg.noise_budget = 0.05;  // full-size model tolerance (see DESIGN.md)

  TextTable table({"model", "Eyeriss", "BitFusion", "DRQ", "Drift",
                   "Drift/BitFusion", "Drift/DRQ"});
  CsvWriter csv("fig7_latency.csv",
                {"model", "bitfusion", "drq", "drift", "drift_over_bf",
                 "drift_over_drq"});

  double geo_bf = 1.0, geo_drq = 1.0, geo_drift = 1.0;
  double geo_drift_bf = 1.0, geo_drift_drq = 1.0;
  int n = 0;
  for (const auto& spec : nn::paper_workloads()) {
    const auto cmp = accel::compare_workload(spec, cfg);
    const double s_bf = cmp.speedup_bitfusion();
    const double s_drq = cmp.speedup_drq();
    const double s_drift = cmp.speedup_drift();
    table.add_row({spec.model, "1.00x", TextTable::ratio(s_bf),
                   TextTable::ratio(s_drq), TextTable::ratio(s_drift),
                   TextTable::ratio(s_drift / s_bf),
                   TextTable::ratio(s_drift / s_drq)});
    csv.row_values(spec.model, s_bf, s_drq, s_drift, s_drift / s_bf,
                   s_drift / s_drq);
    geo_bf *= s_bf;
    geo_drq *= s_drq;
    geo_drift *= s_drift;
    geo_drift_bf *= s_drift / s_bf;
    geo_drift_drq *= s_drift / s_drq;
    ++n;
    std::printf("%-10s done\n", spec.model.c_str());
  }
  const double inv_n = 1.0 / static_cast<double>(n);
  table.add_separator();
  table.add_row({"geomean", "1.00x", TextTable::ratio(std::pow(geo_bf, inv_n)),
                 TextTable::ratio(std::pow(geo_drq, inv_n)),
                 TextTable::ratio(std::pow(geo_drift, inv_n)),
                 TextTable::ratio(std::pow(geo_drift_bf, inv_n)),
                 TextTable::ratio(std::pow(geo_drift_drq, inv_n))});

  std::printf("\n%s\n", table.to_string().c_str());
  std::printf(
      "paper claim check (shape): Drift ~9.57x over Eyeriss, ~2.85x over\n"
      "BitFusion, ~1.64x over DRQ on average; DRQ nearly flat vs BitFusion\n"
      "on ViT-B (1.07x in the paper) but clearly ahead on the CNNs.\n");
  return artifacts.write() ? 0 : 1;
}
