// google-benchmark microbenchmarks for the performance-critical
// components: the per-sub-tensor selector (runs on every tensor at
// inference time), the online scheduler (runs per layer), the stall
// models and the cycle-level simulation — plus the single- vs
// multi-thread GEMM / quantization kernel sweep that emits
// BENCH_kernels.json (ops/s and speedup vs 1 thread) before the
// google-benchmark suite runs.  DRIFT_BENCH_GEMM_SIZE overrides the
// GEMM edge (default 1024); DRIFT_SKIP_KERNEL_SWEEP=1 skips the sweep.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/noise_budget.hpp"
#include "core/scheduler.hpp"
#include "core/selector.hpp"
#include "dram/dram.hpp"
#include "nn/gemm.hpp"
#include "nn/int_gemm.hpp"
#include "nn/synthetic.hpp"
#include "systolic/cycle_sim.hpp"
#include "systolic/stall_model.hpp"
#include "util/thread_pool.hpp"

using namespace drift;

namespace {

TensorF laplace_matrix(std::int64_t rows, std::int64_t cols,
                       std::uint64_t seed) {
  Rng rng(seed);
  TensorF t(Shape{rows, cols});
  for (auto& v : t.data()) v = static_cast<float>(rng.laplace(0.05));
  return t;
}

void BM_SelectPrecision(benchmark::State& state) {
  Rng rng(1);
  const auto stats =
      nn::sample_subtensor_stats(rng, 1024, 768, nn::bert_profile());
  core::QuantParams params;
  params.delta = 0.05;
  core::SelectorConfig cfg;
  cfg.density_threshold = 1.0;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::select_precision(stats[i % stats.size()], params, cfg));
    ++i;
  }
}
BENCHMARK(BM_SelectPrecision);

void BM_AutoThreshold(benchmark::State& state) {
  Rng rng(2);
  const auto count = state.range(0);
  const auto stats =
      nn::sample_subtensor_stats(rng, count, 768, nn::bert_profile());
  const std::vector<std::int64_t> sizes(stats.size(), 768);
  core::QuantParams params;
  params.delta = 0.05;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::select_auto_threshold(
        stats, sizes, params, core::SelectorConfig{}, 0.05));
  }
  state.SetItemsProcessed(state.iterations() * count);
}
BENCHMARK(BM_AutoThreshold)->Arg(128)->Arg(1024)->Arg(8192);

void BM_ScheduleGreedy(benchmark::State& state) {
  core::LayerWork work;
  work.m_high = 40;
  work.m_low = 984;
  work.n_high = 300;
  work.n_low = 2004;
  work.k = 768;
  const core::ArrayDims total{24, 33};
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::schedule_greedy(work, total));
  }
}
BENCHMARK(BM_ScheduleGreedy);

void BM_ScheduleExhaustive(benchmark::State& state) {
  core::LayerWork work;
  work.m_high = 40;
  work.m_low = 984;
  work.n_high = 300;
  work.n_low = 2004;
  work.k = 768;
  const core::ArrayDims total{24, 33};
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::schedule_exhaustive(work, total));
  }
}
BENCHMARK(BM_ScheduleExhaustive);

void BM_PipelineStallModel(benchmark::State& state) {
  Rng rng(3);
  std::vector<std::int64_t> costs(static_cast<std::size_t>(state.range(0)));
  for (auto& c : costs) c = rng.bernoulli(0.8) ? 1 : 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(systolic::pipeline_exit_cycles(costs, 56));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PipelineStallModel)->Arg(1024)->Arg(16384);

void BM_CycleSimTile(benchmark::State& state) {
  Rng rng(4);
  TensorI32 a(Shape{64, 16});
  TensorI32 w(Shape{16, 16});
  for (auto& v : a.data()) v = static_cast<std::int32_t>(rng.uniform_int(-7, 7));
  for (auto& v : w.data()) v = static_cast<std::int32_t>(rng.uniform_int(-7, 7));
  const std::vector<std::int64_t> costs(64, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(systolic::simulate_tile(a, w, costs));
  }
}
BENCHMARK(BM_CycleSimTile);

void BM_DramStream(benchmark::State& state) {
  dram::DramModel model;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.stream(1 << 16, false));
  }
  state.SetBytesProcessed(state.iterations() * (1 << 16));
}
BENCHMARK(BM_DramStream);

// Thread-count-parameterized kernel benchmarks: the pool is resized to
// state.range(0) threads for the duration of the run.
void BM_MatmulThreads(benchmark::State& state) {
  util::ThreadPool::instance().resize(static_cast<int>(state.range(0)));
  const std::int64_t n = 256;
  const TensorF a = laplace_matrix(n, n, 7);
  const TensorF b = laplace_matrix(n, n, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::matmul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
  util::ThreadPool::instance().resize(0);
}
BENCHMARK(BM_MatmulThreads)->Arg(1)->Arg(2)->Arg(4);

void BM_QuantizeRowsThreads(benchmark::State& state) {
  util::ThreadPool::instance().resize(static_cast<int>(state.range(0)));
  const TensorF x = laplace_matrix(2048, 768, 9);
  const core::SelectorConfig cfg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::quantize_rows(x, cfg, 0.05));
  }
  state.SetItemsProcessed(state.iterations() * x.numel());
  util::ThreadPool::instance().resize(0);
}
BENCHMARK(BM_QuantizeRowsThreads)->Arg(1)->Arg(2)->Arg(4);

// ---------------------------------------------------------------------
// Kernel sweep -> BENCH_kernels.json
// ---------------------------------------------------------------------

struct KernelResult {
  std::string name;
  std::string shape;
  int threads = 1;
  double seconds = 0.0;
  double ops_per_s = 0.0;
  double speedup_vs_1t = 1.0;
};

template <typename Fn>
double best_seconds(Fn&& fn, int reps) {
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

std::int64_t env_int(const char* name, std::int64_t fallback) {
  if (const char* v = std::getenv(name)) {
    const long long n = std::atoll(v);
    if (n > 0) return static_cast<std::int64_t>(n);
  }
  return fallback;
}

void run_kernel_sweep() {
  const std::int64_t gemm_n = env_int("DRIFT_BENCH_GEMM_SIZE", 1024);
  const int default_threads = util::ThreadPool::default_num_threads();
  std::vector<int> thread_counts{1};
  for (int t : {2, 4}) {
    if (t <= default_threads) thread_counts.push_back(t);
  }
  if (default_threads > 1 &&
      default_threads != thread_counts.back()) {
    thread_counts.push_back(default_threads);
  }

  const TensorF a = laplace_matrix(gemm_n, gemm_n, 101);
  const TensorF b = laplace_matrix(gemm_n, gemm_n, 102);
  const TensorF w = laplace_matrix(gemm_n, gemm_n, 103);
  const std::int64_t qrows = env_int("DRIFT_BENCH_QUANT_ROWS", 8192);
  const TensorF x = laplace_matrix(qrows, 768, 104);
  const core::SelectorConfig cfg;

  std::vector<KernelResult> results;
  auto record = [&](const std::string& name, const std::string& shape,
                    int threads, double seconds, double total_ops) {
    KernelResult r;
    r.name = name;
    r.shape = shape;
    r.threads = threads;
    r.seconds = seconds;
    r.ops_per_s = total_ops / seconds;
    for (const auto& base : results) {
      if (base.name == name && base.threads == 1) {
        r.speedup_vs_1t = base.seconds / seconds;
      }
    }
    results.push_back(r);
    std::fprintf(stderr,
                 "[kernels] %-14s %-18s threads=%d  %.3fs  %.3g ops/s  "
                 "speedup=%.2fx\n",
                 name.c_str(), shape.c_str(), threads, seconds, r.ops_per_s,
                 r.speedup_vs_1t);
  };

  const std::string gemm_shape = std::to_string(gemm_n) + "x" +
                                 std::to_string(gemm_n) + "x" +
                                 std::to_string(gemm_n);
  const double gemm_ops = 2.0 * static_cast<double>(gemm_n) *
                          static_cast<double>(gemm_n) *
                          static_cast<double>(gemm_n);
  const std::string quant_shape =
      std::to_string(qrows) + "x768";
  for (int threads : thread_counts) {
    util::ThreadPool::instance().resize(threads);
    record("matmul", gemm_shape, threads,
           best_seconds([&] { benchmark::DoNotOptimize(nn::matmul(a, b)); },
                        2),
           gemm_ops);
    record("matmul_nt", gemm_shape, threads,
           best_seconds(
               [&] { benchmark::DoNotOptimize(nn::matmul_nt(a, w)); }, 2),
           gemm_ops);
    record("quantize_rows", quant_shape, threads,
           best_seconds(
               [&] { benchmark::DoNotOptimize(nn::quantize_rows(x, cfg, 0.05)); },
               3),
           static_cast<double>(x.numel()));
  }
  util::ThreadPool::instance().resize(0);

  std::FILE* f = std::fopen("BENCH_kernels.json", "w");
  if (!f) {
    std::fprintf(stderr, "[kernels] cannot open BENCH_kernels.json\n");
    return;
  }
  std::fprintf(f, "{\n  \"hardware_threads\": %u,\n  \"default_threads\": %d,\n"
               "  \"kernels\": [\n",
               std::thread::hardware_concurrency(), default_threads);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"shape\": \"%s\", \"threads\": %d, "
                 "\"seconds\": %.6f, \"ops_per_s\": %.6g, "
                 "\"speedup_vs_1t\": %.3f}%s\n",
                 r.name.c_str(), r.shape.c_str(), r.threads, r.seconds,
                 r.ops_per_s, r.speedup_vs_1t,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "[kernels] wrote BENCH_kernels.json\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (!std::getenv("DRIFT_SKIP_KERNEL_SWEEP")) run_kernel_sweep();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
