// google-benchmark microbenchmarks for the performance-critical
// components: the per-sub-tensor selector (runs on every tensor at
// inference time), the online scheduler (runs per layer), the stall
// models and the cycle-level simulation — plus the single- vs
// multi-thread GEMM / quantization kernel sweep that emits
// BENCH_kernels.json (ops/s and speedup vs 1 thread) before the
// google-benchmark suite runs.  A second, backend sweep times
// {scalar, simd} x {fp32, int8, int4-packed, mixed} GEMM plus the
// quantization kernel under the dispatch force-scalar toggle and
// records per-entry `backend` and `speedup_vs_scalar` (the SIMD payoff
// on this machine's `cpu_features`).  The JSON also records the
// runtime of the fixed-seed property-test corpus (the differential
// suites behind `ctest -L prop`), so oracle-check cost is tracked
// alongside kernel throughput, and a fixed-seed serving run whose
// `serve_p99_us` entry (ops_per_s = 1e6/p99_us, simulated cycles, so
// deterministic) lets the ratchet gate serving tail latency.  A
// fixed-seed whole-model run of the resnet18 zoo topology records
// `graph_resnet18_cycles` (ops_per_s = 1e12/cycles, same determinism)
// so end-to-end model latency is ratcheted too.
// DRIFT_BENCH_GEMM_SIZE overrides the
// fp32 GEMM edge (default 1024), DRIFT_BENCH_INT_GEMM_SIZE the
// backend-sweep edge (default 512); DRIFT_SKIP_KERNEL_SWEEP=1 skips
// both sweeps.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/noise_budget.hpp"
#include "core/quantizer.hpp"
#include "core/scheduler.hpp"
#include "core/selector.hpp"
#include "dram/dram.hpp"
#include "nn/gemm.hpp"
#include "nn/int_gemm.hpp"
// drift-lint: allow(intrinsic) — the bench sweep toggles the
// force-scalar override to measure the SIMD payoff per backend.
#include "nn/simd/kernel_dispatch.hpp"
#include "nn/synthetic.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "pipeline.hpp"
#include "proptest/proptest.hpp"
#include "serve/simulator.hpp"
#include "zoo.hpp"
#include "util/args.hpp"
#include "ref/ref_kernels.hpp"
#include "ref/ref_oracles.hpp"
#include "ref/ref_quant.hpp"
#include "systolic/cycle_sim.hpp"
#include "systolic/stall_model.hpp"
#include "util/thread_pool.hpp"

using namespace drift;

namespace {

TensorF laplace_matrix(std::int64_t rows, std::int64_t cols,
                       std::uint64_t seed) {
  Rng rng(seed);
  TensorF t(Shape{rows, cols});
  for (auto& v : t.data()) v = static_cast<float>(rng.laplace(0.05));
  return t;
}

void BM_SelectPrecision(benchmark::State& state) {
  Rng rng(1);
  const auto stats =
      nn::sample_subtensor_stats(rng, 1024, 768, nn::bert_profile());
  core::QuantParams params;
  params.delta = 0.05;
  core::SelectorConfig cfg;
  cfg.density_threshold = 1.0;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::select_precision(stats[i % stats.size()], params, cfg));
    ++i;
  }
}
BENCHMARK(BM_SelectPrecision);

void BM_AutoThreshold(benchmark::State& state) {
  Rng rng(2);
  const auto count = state.range(0);
  const auto stats =
      nn::sample_subtensor_stats(rng, count, 768, nn::bert_profile());
  const std::vector<std::int64_t> sizes(stats.size(), 768);
  core::QuantParams params;
  params.delta = 0.05;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::select_auto_threshold(
        stats, sizes, params, core::SelectorConfig{}, 0.05));
  }
  state.SetItemsProcessed(state.iterations() * count);
}
BENCHMARK(BM_AutoThreshold)->Arg(128)->Arg(1024)->Arg(8192);

void BM_ScheduleGreedy(benchmark::State& state) {
  core::LayerWork work;
  work.m_high = 40;
  work.m_low = 984;
  work.n_high = 300;
  work.n_low = 2004;
  work.k = 768;
  const core::ArrayDims total{24, 33};
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::schedule_greedy(work, total));
  }
}
BENCHMARK(BM_ScheduleGreedy);

void BM_ScheduleExhaustive(benchmark::State& state) {
  core::LayerWork work;
  work.m_high = 40;
  work.m_low = 984;
  work.n_high = 300;
  work.n_low = 2004;
  work.k = 768;
  const core::ArrayDims total{24, 33};
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::schedule_exhaustive(work, total));
  }
}
BENCHMARK(BM_ScheduleExhaustive);

void BM_PipelineStallModel(benchmark::State& state) {
  Rng rng(3);
  std::vector<std::int64_t> costs(static_cast<std::size_t>(state.range(0)));
  for (auto& c : costs) c = rng.bernoulli(0.8) ? 1 : 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(systolic::pipeline_exit_cycles(costs, 56));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PipelineStallModel)->Arg(1024)->Arg(16384);

void BM_CycleSimTile(benchmark::State& state) {
  Rng rng(4);
  TensorI32 a(Shape{64, 16});
  TensorI32 w(Shape{16, 16});
  for (auto& v : a.data()) v = static_cast<std::int32_t>(rng.uniform_int(-7, 7));
  for (auto& v : w.data()) v = static_cast<std::int32_t>(rng.uniform_int(-7, 7));
  const std::vector<std::int64_t> costs(64, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(systolic::simulate_tile(a, w, costs));
  }
}
BENCHMARK(BM_CycleSimTile);

void BM_DramStream(benchmark::State& state) {
  dram::DramModel model;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.stream(1 << 16, false));
  }
  state.SetBytesProcessed(state.iterations() * (1 << 16));
}
BENCHMARK(BM_DramStream);

// Thread-count-parameterized kernel benchmarks: the pool is resized to
// state.range(0) threads for the duration of the run.
void BM_MatmulThreads(benchmark::State& state) {
  util::ThreadPool::instance().resize(static_cast<int>(state.range(0)));
  const std::int64_t n = 256;
  const TensorF a = laplace_matrix(n, n, 7);
  const TensorF b = laplace_matrix(n, n, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::matmul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
  util::ThreadPool::instance().resize(0);
}
BENCHMARK(BM_MatmulThreads)->Arg(1)->Arg(2)->Arg(4);

void BM_QuantizeRowsThreads(benchmark::State& state) {
  util::ThreadPool::instance().resize(static_cast<int>(state.range(0)));
  const TensorF x = laplace_matrix(2048, 768, 9);
  const core::SelectorConfig cfg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::quantize_rows(x, cfg, 0.05));
  }
  state.SetItemsProcessed(state.iterations() * x.numel());
  util::ThreadPool::instance().resize(0);
}
BENCHMARK(BM_QuantizeRowsThreads)->Arg(1)->Arg(2)->Arg(4);

// ---------------------------------------------------------------------
// Property-test corpus timing -> BENCH_kernels.json "proptest_corpus"
// ---------------------------------------------------------------------
//
// Runs the same differential corpora as `ctest -L prop` (production
// code vs. the src/ref oracles) at a *fixed* seed and iteration count —
// deliberately independent of the DRIFT_PROPTEST_* environment so the
// recorded runtimes are comparable across machines and commits.  Any
// mismatch makes the binary exit non-zero.

struct CorpusResult {
  std::string name;
  int cases = 0;
  double seconds = 0.0;
  int mismatches = 0;
};

std::vector<CorpusResult> run_proptest_corpus() {
  proptest::Config cfg;  // fixed defaults: 128 cases, seed 0xD21F7
  std::vector<CorpusResult> results;

  const auto timed = [&](const char* name, auto&& prop) {
    CorpusResult r;
    r.name = name;
    const auto t0 = std::chrono::steady_clock::now();
    const proptest::RunReport rep = proptest::run_property(name, prop, cfg);
    const auto t1 = std::chrono::steady_clock::now();
    r.cases = rep.cases_run;
    r.seconds = std::chrono::duration<double>(t1 - t0).count();
    r.mismatches = rep.passed ? 0 : 1;
    if (!rep.passed) {
      std::fprintf(stderr, "[proptest] %s MISMATCH: %s\n  %s\n", name,
                   rep.message.c_str(), rep.repro.c_str());
    }
    std::fprintf(stderr, "[proptest] %-26s %4d cases  %.3fs  %s\n", name,
                 r.cases, r.seconds, rep.passed ? "ok" : "MISMATCH");
    results.push_back(r);
  };

  timed("matmul_vs_ref", [](Rng& rng, int size) -> proptest::Result {
    const std::int64_t m = proptest::gen_dim(rng, size);
    const std::int64_t k = proptest::gen_dim(rng, size);
    const std::int64_t n = proptest::gen_dim(rng, size);
    const TensorF a(Shape{m, k}, proptest::gen_laplace_buffer(rng, m * k, 0.5));
    const TensorF b(Shape{k, n}, proptest::gen_laplace_buffer(rng, k * n, 0.5));
    const TensorF got = nn::matmul(a, b);
    const TensorF want = ref::matmul(a, b);
    for (std::int64_t i = 0; i < got.numel(); ++i) {
      if (got.at(i) != want.at(i)) return proptest::fail("flat ", i);
    }
    return proptest::pass();
  });

  timed("selector_vs_bruteforce", [](Rng& rng, int size) -> proptest::Result {
    const std::int64_t n = 4 * proptest::gen_dim(rng, size);
    const auto values = proptest::gen_laplace_buffer(rng, n, 0.5);
    const core::SelectorConfig cfg = proptest::gen_selector_config(rng);
    const core::QuantParams params =
        core::compute_quant_params(values, cfg.hp);
    const core::PrecisionDecision d =
        core::select_precision(ref::stats(values), params, cfg);
    const ref::RenderingOracle oracle =
        ref::brute_force_rendering(values, params, cfg.lp);
    if (oracle.eq5_hc < 0) {
      if (d.use_low) return proptest::fail("infeasible but went low");
    } else if (d.choice.hc != oracle.eq5_hc) {
      return proptest::fail("hc ", d.choice.hc, " vs ", oracle.eq5_hc);
    }
    return proptest::pass();
  });

  timed("scheduler_vs_exhaustive", [](Rng& rng, int size) -> proptest::Result {
    core::LayerWork w = proptest::gen_layer_work(rng, size);
    const std::int64_t row_lo = (w.m_high > 0 && w.m_low > 0) ? 2 : 1;
    const std::int64_t col_lo = (w.n_high > 0 && w.n_low > 0) ? 2 : 1;
    const core::ArrayDims total{proptest::gen_dim(rng, size, row_lo),
                                proptest::gen_dim(rng, size, col_lo)};
    const core::SplitDecision g = core::schedule_greedy(w, total);
    const ref::SplitOracle o = ref::exhaustive_split(w, total);
    if (g.makespan < o.best_makespan) return proptest::fail("beat oracle");
    if (o.best_makespan > 0 &&
        static_cast<double>(g.makespan) >
            1.5 * static_cast<double>(o.best_makespan)) {
      return proptest::fail("gap above 1.5x");
    }
    return proptest::pass();
  });

  return results;
}

// ---------------------------------------------------------------------
// Kernel sweep -> BENCH_kernels.json
// ---------------------------------------------------------------------

struct KernelResult {
  std::string name;
  std::string shape;
  int threads = 1;
  std::string backend;  ///< dispatch table the run executed on
  double seconds = 0.0;
  double ops_per_s = 0.0;
  double speedup_vs_1t = 1.0;
  double speedup_vs_scalar = 1.0;  ///< vs same (name, threads) on scalar
};

template <typename Fn>
double best_seconds(Fn&& fn, int reps) {
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

std::int64_t env_int(const char* name, std::int64_t fallback) {
  if (const char* v = std::getenv(name)) {
    const long long n = std::atoll(v);
    if (n > 0) return static_cast<std::int64_t>(n);
  }
  return fallback;
}

void run_kernel_sweep(const std::vector<CorpusResult>& corpus) {
  const std::int64_t gemm_n = env_int("DRIFT_BENCH_GEMM_SIZE", 1024);
  const int default_threads = util::ThreadPool::default_num_threads();
  std::vector<int> thread_counts{1};
  for (int t : {2, 4}) {
    if (t <= default_threads) thread_counts.push_back(t);
  }
  if (default_threads > 1 &&
      default_threads != thread_counts.back()) {
    thread_counts.push_back(default_threads);
  }

  const TensorF a = laplace_matrix(gemm_n, gemm_n, 101);
  const TensorF b = laplace_matrix(gemm_n, gemm_n, 102);
  const TensorF w = laplace_matrix(gemm_n, gemm_n, 103);
  const std::int64_t qrows = env_int("DRIFT_BENCH_QUANT_ROWS", 8192);
  const TensorF x = laplace_matrix(qrows, 768, 104);
  const core::SelectorConfig cfg;

  std::vector<KernelResult> results;
  auto record = [&](const std::string& name, const std::string& shape,
                    int threads, double seconds, double total_ops) {
    KernelResult r;
    r.name = name;
    r.shape = shape;
    r.threads = threads;
    r.backend = nn::simd::active().name;
    r.seconds = seconds;
    r.ops_per_s = total_ops / seconds;
    for (const auto& base : results) {
      if (base.name == name && base.threads == 1 &&
          base.backend == r.backend) {
        r.speedup_vs_1t = base.seconds / seconds;
      }
      if (base.name == name && base.threads == threads &&
          base.backend == "scalar" && r.backend != "scalar") {
        r.speedup_vs_scalar = base.seconds / seconds;
      }
    }
    results.push_back(r);
    std::fprintf(stderr,
                 "[kernels] %-16s %-18s threads=%d backend=%-6s %.3fs  "
                 "%.3g ops/s  speedup=%.2fx  vs_scalar=%.2fx\n",
                 name.c_str(), shape.c_str(), threads, r.backend.c_str(),
                 seconds, r.ops_per_s, r.speedup_vs_1t,
                 r.speedup_vs_scalar);
  };

  const std::string gemm_shape = std::to_string(gemm_n) + "x" +
                                 std::to_string(gemm_n) + "x" +
                                 std::to_string(gemm_n);
  const double gemm_ops = 2.0 * static_cast<double>(gemm_n) *
                          static_cast<double>(gemm_n) *
                          static_cast<double>(gemm_n);
  const std::string quant_shape =
      std::to_string(qrows) + "x768";
  for (int threads : thread_counts) {
    util::ThreadPool::instance().resize(threads);
    record("matmul", gemm_shape, threads,
           best_seconds([&] { benchmark::DoNotOptimize(nn::matmul(a, b)); },
                        2),
           gemm_ops);
    record("matmul_nt", gemm_shape, threads,
           best_seconds(
               [&] { benchmark::DoNotOptimize(nn::matmul_nt(a, w)); }, 2),
           gemm_ops);
    record("quantize_rows", quant_shape, threads,
           best_seconds(
               [&] { benchmark::DoNotOptimize(nn::quantize_rows(x, cfg, 0.05)); },
               3),
           static_cast<double>(x.numel()));
  }

  // Backend sweep: {scalar, simd} x {fp32, int8, int4-packed, mixed}
  // at 1 thread, under the dispatch force-scalar toggle.  The integer
  // operands are built with pinned precision decisions so each entry
  // exercises exactly one quadrant class (all-high -> s8s8, all-low ->
  // packed s4s4, half -> the hl/lh/ll mix).
  {
    const std::int64_t ig = env_int("DRIFT_BENCH_INT_GEMM_SIZE", 512);
    const TensorF xa = laplace_matrix(ig, ig, 201);
    const TensorF xw = laplace_matrix(ig, ig, 202);
    const auto make_operand = [&](const TensorF& t, double low_fraction,
                                  std::uint64_t seed) {
      core::SelectorConfig oc;
      nn::QuantizedOperand op;
      op.params = core::compute_quant_params(t.data(), oc.hp);
      op.lp = oc.lp;
      op.codes = TensorI32(t.shape());
      const int clip = oc.hp.bits() - oc.lp.bits();
      Rng rng(seed);
      const std::int64_t rows = t.shape().dim(0);
      const std::int64_t cols = t.shape().dim(1);
      for (std::int64_t r = 0; r < rows; ++r) {
        const bool low = rng.uniform() < low_fraction;
        op.rows.push_back(core::PrecisionDecision{
            low, core::ConversionChoice{low ? clip : 0, 0}});
      }
      for (std::int64_t r = 0; r < rows; ++r) {
        const auto& d = op.rows[static_cast<std::size_t>(r)];
        for (std::int64_t c = 0; c < cols; ++c) {
          const std::int32_t q = core::quantize_value(t(r, c), op.params);
          op.codes(r, c) =
              d.use_low ? core::convert_to_low(q, op.lp, d.choice) : q;
        }
      }
      return op;
    };
    const auto qa8 = make_operand(xa, 0.0, 211);
    const auto qw8 = make_operand(xw, 0.0, 212);
    const auto qa4 = make_operand(xa, 1.0, 213);
    const auto qw4 = make_operand(xw, 1.0, 214);
    const auto qam = make_operand(xa, 0.5, 215);
    const auto qwm = make_operand(xw, 0.5, 216);

    const std::string ig_shape = std::to_string(ig) + "x" +
                                 std::to_string(ig) + "x" +
                                 std::to_string(ig);
    const double ig_ops = 2.0 * static_cast<double>(ig) *
                          static_cast<double>(ig) * static_cast<double>(ig);

    util::ThreadPool::instance().resize(1);
    const bool prev_force = nn::simd::force_scalar();
    for (const bool force : {true, false}) {
      nn::simd::set_force_scalar(force);
      // One leg suffices when there is no vector backend to compare.
      if (!force && std::string(nn::simd::active().name) == "scalar") {
        break;
      }
      record("gemm_fp32", ig_shape, 1,
             best_seconds(
                 [&] { benchmark::DoNotOptimize(nn::matmul_nt(xa, xw)); }, 2),
             ig_ops);
      record("gemm_int8", ig_shape, 1,
             best_seconds(
                 [&] { benchmark::DoNotOptimize(nn::int_gemm_nt(qa8, qw8)); },
                 2),
             ig_ops);
      record("gemm_int4_packed", ig_shape, 1,
             best_seconds(
                 [&] { benchmark::DoNotOptimize(nn::int_gemm_nt(qa4, qw4)); },
                 2),
             ig_ops);
      record("gemm_mixed", ig_shape, 1,
             best_seconds(
                 [&] { benchmark::DoNotOptimize(nn::int_gemm_nt(qam, qwm)); },
                 2),
             ig_ops);
      record("quantize_rows_1t", quant_shape, 1,
             best_seconds(
                 [&] {
                   benchmark::DoNotOptimize(nn::quantize_rows(x, cfg, 0.05));
                 },
                 3),
             static_cast<double>(x.numel()));
    }
    nn::simd::set_force_scalar(prev_force);
  }

  // Serving tail latency: one fixed-seed open-loop run through the
  // continuous-batching event loop (tiny-bert tenant, bursty arrivals
  // calibrated to ~0.75 load from the canonical service time).  The
  // latency is simulated cycles, so ops_per_s — defined as 1e6/p99_us —
  // is bit-deterministic across machines and thread counts, and the
  // ratchet's max-slowdown gate bounds p99 growth like any kernel.
  {
    serve::ServeConfig scfg;
    scfg.exec.hw.array.rows = 16;
    scfg.exec.hw.array.cols = 16;
    scfg.max_batch = 8;
    serve::TenantSpec tenant;
    tenant.name = "bench";
    tenant.workload = serve::serving_workload("tiny-bert");
    tenant.arrival.kind = serve::ArrivalKind::kBursty;
    tenant.num_requests = 256;
    tenant.seed = 424242;
    scfg.tenants.push_back(tenant);

    serve::ServeConfig probe_cfg = scfg;
    probe_cfg.tenants[0].num_requests = 1;
    probe_cfg.tenants[0].unique_mix_per_request = false;
    serve::Simulator probe(probe_cfg, util::ThreadPool::instance());
    const double service =
        static_cast<double>(probe.executor().execute_canonical(0).cycles);
    scfg.tenants[0].arrival.mean_interarrival_cycles = service / 0.75;

    serve::Simulator sim(scfg, util::ThreadPool::instance());
    serve::ServeResult sres;
    const double wall = best_seconds([&] { sres = sim.run(); }, 1);
    const double p99_us = 1e6 *
                          static_cast<double>(sres.overall.p99_cycles) /
                          scfg.exec.hw.energy.clock_hz;
    KernelResult r;
    r.name = "serve_p99_us";
    r.shape = "tiny-bert@16x16";
    r.threads = 1;
    r.backend = nn::simd::active().name;
    r.seconds = wall;
    r.ops_per_s = 1e6 / p99_us;
    results.push_back(r);
    std::fprintf(stderr,
                 "[kernels] %-16s %-18s threads=%d backend=%-6s %.3fs  "
                 "p99=%.2fus (%.3g \"ops/s\")\n",
                 r.name.c_str(), r.shape.c_str(), r.threads,
                 r.backend.c_str(), wall, p99_us, r.ops_per_s);
  }

  // Whole-model graph pipeline: the resnet18 model-zoo topology
  // through workload export -> mix selection -> scheduler -> cycle
  // model (the same path `drift_graph run --zoo=resnet18` takes).  The
  // cycle total is a deterministic function of topology + seed, so
  // ops_per_s — defined as 1e12/cycles — is bit-stable across machines
  // and thread counts, and the ratchet's max-slowdown gate bounds
  // end-to-end model latency regressions like any kernel.
  {
    graphcli::GraphPipelineConfig gcfg;
    graphcli::GraphPipelineResult gres;
    const double wall = best_seconds(
        [&] {
          gres = graphcli::run_graph_pipeline(
              graphcli::make_zoo_graph("resnet18"), gcfg);
        },
        1);
    KernelResult r;
    r.name = "graph_resnet18_cycles";
    r.shape = "resnet18@24x33";
    r.threads = 1;
    r.backend = nn::simd::active().name;
    r.seconds = wall;
    r.ops_per_s = 1e12 / static_cast<double>(gres.run.cycles);
    results.push_back(r);
    std::fprintf(stderr,
                 "[kernels] %-16s %-18s threads=%d backend=%-6s %.3fs  "
                 "cycles=%lld (%.3g \"ops/s\")\n",
                 r.name.c_str(), r.shape.c_str(), r.threads,
                 r.backend.c_str(), wall,
                 static_cast<long long>(gres.run.cycles), r.ops_per_s);
  }
  util::ThreadPool::instance().resize(0);

  std::FILE* f = std::fopen("BENCH_kernels.json", "w");
  if (!f) {
    std::fprintf(stderr, "[kernels] cannot open BENCH_kernels.json\n");
    return;
  }
  const nn::simd::CpuFeatures features = nn::simd::detect_cpu_features();
  std::string feature_list;
  if (features.avx2) feature_list += "avx2";
  if (features.neon) feature_list += feature_list.empty() ? "neon" : ",neon";
  // Same schema-v2 meta block the metrics artifacts carry (git sha,
  // backend, obs/scalar flags), so cross-machine bench diffs are
  // interpretable.  Keys and values are plain identifiers; no JSON
  // string escaping needed.
  std::string meta_json;
  for (const auto& [key, value] : obs::run_metadata()) {
    if (!meta_json.empty()) meta_json += ", ";
    meta_json += "\"" + key + "\": \"" + value + "\"";
  }
  std::fprintf(f, "{\n  \"schema_version\": 2,\n  \"meta\": {%s},\n"
               "  \"hardware_threads\": %u,\n  \"default_threads\": %d,\n"
               "  \"cpu_features\": \"%s\",\n"
               "  \"proptest_corpus\": [\n",
               meta_json.c_str(), std::thread::hardware_concurrency(),
               default_threads, feature_list.c_str());
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    const auto& c = corpus[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"cases\": %d, \"seconds\": %.6f, "
                 "\"mismatches\": %d}%s\n",
                 c.name.c_str(), c.cases, c.seconds, c.mismatches,
                 i + 1 < corpus.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"kernels\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"shape\": \"%s\", \"threads\": %d, "
                 "\"backend\": \"%s\", \"seconds\": %.6f, "
                 "\"ops_per_s\": %.6g, \"speedup_vs_1t\": %.3f, "
                 "\"speedup_vs_scalar\": %.3f}%s\n",
                 r.name.c_str(), r.shape.c_str(), r.threads,
                 r.backend.c_str(), r.seconds, r.ops_per_s, r.speedup_vs_1t,
                 r.speedup_vs_scalar,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "[kernels] wrote BENCH_kernels.json\n");
}

}  // namespace

int main(int argc, char** argv) {
  // --metrics-out / --trace-out are ours, not google-benchmark's:
  // consume_argv strips them from argv before benchmark::Initialize,
  // which rejects flags it does not recognize.
  const obs::ReportOptions artifacts =
      obs::ReportOptions::consume_argv(argc, argv);

  // The differential corpus always runs (it doubles as a smoke test of
  // the oracles); mismatches fail the binary after the benchmarks.
  const std::vector<CorpusResult> corpus = run_proptest_corpus();
  int corpus_mismatches = 0;
  for (const auto& c : corpus) corpus_mismatches += c.mismatches;
  if (!std::getenv("DRIFT_SKIP_KERNEL_SWEEP")) run_kernel_sweep(corpus);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  const bool artifacts_ok = artifacts.write();
  return corpus_mismatches > 0 || !artifacts_ok ? 1 : 0;
}
