// google-benchmark microbenchmarks for the performance-critical
// components: the per-sub-tensor selector (runs on every tensor at
// inference time), the online scheduler (runs per layer), the stall
// models and the cycle-level simulation.
#include <benchmark/benchmark.h>

#include "core/noise_budget.hpp"
#include "core/scheduler.hpp"
#include "core/selector.hpp"
#include "dram/dram.hpp"
#include "nn/synthetic.hpp"
#include "systolic/cycle_sim.hpp"
#include "systolic/stall_model.hpp"

using namespace drift;

namespace {

void BM_SelectPrecision(benchmark::State& state) {
  Rng rng(1);
  const auto stats =
      nn::sample_subtensor_stats(rng, 1024, 768, nn::bert_profile());
  core::QuantParams params;
  params.delta = 0.05;
  core::SelectorConfig cfg;
  cfg.density_threshold = 1.0;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::select_precision(stats[i % stats.size()], params, cfg));
    ++i;
  }
}
BENCHMARK(BM_SelectPrecision);

void BM_AutoThreshold(benchmark::State& state) {
  Rng rng(2);
  const auto count = state.range(0);
  const auto stats =
      nn::sample_subtensor_stats(rng, count, 768, nn::bert_profile());
  const std::vector<std::int64_t> sizes(stats.size(), 768);
  core::QuantParams params;
  params.delta = 0.05;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::select_auto_threshold(
        stats, sizes, params, core::SelectorConfig{}, 0.05));
  }
  state.SetItemsProcessed(state.iterations() * count);
}
BENCHMARK(BM_AutoThreshold)->Arg(128)->Arg(1024)->Arg(8192);

void BM_ScheduleGreedy(benchmark::State& state) {
  core::LayerWork work;
  work.m_high = 40;
  work.m_low = 984;
  work.n_high = 300;
  work.n_low = 2004;
  work.k = 768;
  const core::ArrayDims total{24, 33};
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::schedule_greedy(work, total));
  }
}
BENCHMARK(BM_ScheduleGreedy);

void BM_ScheduleExhaustive(benchmark::State& state) {
  core::LayerWork work;
  work.m_high = 40;
  work.m_low = 984;
  work.n_high = 300;
  work.n_low = 2004;
  work.k = 768;
  const core::ArrayDims total{24, 33};
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::schedule_exhaustive(work, total));
  }
}
BENCHMARK(BM_ScheduleExhaustive);

void BM_PipelineStallModel(benchmark::State& state) {
  Rng rng(3);
  std::vector<std::int64_t> costs(static_cast<std::size_t>(state.range(0)));
  for (auto& c : costs) c = rng.bernoulli(0.8) ? 1 : 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(systolic::pipeline_exit_cycles(costs, 56));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PipelineStallModel)->Arg(1024)->Arg(16384);

void BM_CycleSimTile(benchmark::State& state) {
  Rng rng(4);
  TensorI32 a(Shape{64, 16});
  TensorI32 w(Shape{16, 16});
  for (auto& v : a.data()) v = static_cast<std::int32_t>(rng.uniform_int(-7, 7));
  for (auto& v : w.data()) v = static_cast<std::int32_t>(rng.uniform_int(-7, 7));
  const std::vector<std::int64_t> costs(64, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(systolic::simulate_tile(a, w, costs));
  }
}
BENCHMARK(BM_CycleSimTile);

void BM_DramStream(benchmark::State& state) {
  dram::DramModel model;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.stream(1 << 16, false));
  }
  state.SetBytesProcessed(state.iterations() * (1 << 16));
}
BENCHMARK(BM_DramStream);

}  // namespace

BENCHMARK_MAIN();
