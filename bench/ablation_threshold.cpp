// Ablation B: the accuracy / 4-bit-coverage trade-off of the density
// threshold (Section 3.3's Hessian-aware selection target).
//
// Sweeps the excess-noise budget (the dimensionless form of Eq. 6's δ
// that the automatic selection tunes) on the transformer proxy and on
// one full-size hardware workload, showing (a) the accuracy cliff that
// makes "minimum threshold with negligible impact" the right rule and
// (b) how the hardware speedup saturates once the free (lc = 0)
// conversions are exhausted.
#include <cstdio>
#include <vector>

#include "accel/compare.hpp"
#include "nn/proxy.hpp"
#include "obs/report.hpp"
#include "util/args.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace drift;

int main(int argc, char** argv) {
  // --metrics-out / --trace-out artifact surface (README "Observability").
  const Args args = Args::parse(argc, argv);
  const obs::ReportOptions artifacts = obs::ReportOptions::from_args(args);

  std::printf("=== Ablation B: threshold (noise budget) sweep ===\n\n");

  const std::vector<double> budgets = {0.001, 0.002, 0.005, 0.01,
                                       0.02,  0.05,  0.1};

  // (a) accuracy trade-off on the transformer proxy.
  nn::TransformerProxy::Config pcfg;
  pcfg.samples = 96;
  const nn::TransformerProxy proxy(pcfg);
  nn::QuantEngine::Config int8_cfg;
  int8_cfg.mode = nn::QuantMode::kStaticInt8;
  nn::QuantEngine int8_engine(int8_cfg);
  const double acc_int8 = proxy.evaluate(int8_engine).metric;

  TextTable acc_table({"budget", "accuracy", "drop vs INT8", "4-bit %"});
  CsvWriter csv("ablation_threshold.csv",
                {"budget", "accuracy", "low_fraction", "bert_speedup"});
  std::vector<double> speedups;
  for (double budget : budgets) {
    nn::QuantEngine::Config cfg;
    cfg.mode = nn::QuantMode::kDrift;
    cfg.noise_budget = budget;
    nn::QuantEngine engine(cfg);
    const auto r = proxy.evaluate(engine);

    // (b) hardware effect of the same budget on BERT.
    accel::CompareConfig hw_cfg;
    hw_cfg.noise_budget = budget;
    const auto cmp = accel::compare_workload(nn::make_bert_base(), hw_cfg);
    const double speedup = cmp.speedup_drift() / cmp.speedup_bitfusion();
    speedups.push_back(speedup);

    acc_table.add_row({TextTable::fmt(budget, 3), TextTable::pct(r.metric),
                       TextTable::pct(acc_int8 - r.metric),
                       TextTable::pct(r.act_low_fraction)});
    csv.row_values(budget, r.metric, r.act_low_fraction, speedup);
    std::printf("budget %.3f done\n", budget);
  }

  std::printf("\nproxy accuracy vs budget (INT8 = %s):\n%s\n",
              TextTable::pct(acc_int8).c_str(),
              acc_table.to_string().c_str());

  TextTable hw_table({"budget", "Drift/BitFusion speedup (BERT)"});
  for (std::size_t i = 0; i < budgets.size(); ++i) {
    hw_table.add_row(
        {TextTable::fmt(budgets[i], 3), TextTable::ratio(speedups[i])});
  }
  std::printf("hardware speedup vs budget:\n%s\n",
              hw_table.to_string().c_str());
  std::printf(
      "takeaway: coverage and speedup rise quickly with the budget and\n"
      "saturate (free lc=0 conversions dominate), while accuracy falls off\n"
      "a cliff past the tolerance — hence 'minimum threshold with\n"
      "negligible impact'.\n");
  return artifacts.write() ? 0 : 1;
}
