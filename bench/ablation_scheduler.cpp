// Ablation A: the balanced online scheduler (Section 4.3).
//
// Drift's split-array architecture needs a per-layer (r, c) cut.  This
// ablation compares the paper's greedy scheduler against the
// exhaustive oracle and against a fixed quarter split (no load
// balancing), plus reports how many split evaluations each policy
// needs — the argument for greediness is that it is oracle-quality at
// a fraction of the search cost.
#include <cstdio>

#include "accel/drift_accel.hpp"
#include "nn/precision_mix.hpp"
#include "obs/report.hpp"
#include "util/args.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace drift;

int main(int argc, char** argv) {
  // --metrics-out / --trace-out artifact surface (README "Observability").
  const Args args = Args::parse(argc, argv);
  const obs::ReportOptions artifacts = obs::ReportOptions::from_args(args);

  std::printf("=== Ablation A: balanced online scheduling ===\n\n");

  accel::AccelConfig hw;
  nn::MixConfig mix_cfg;
  mix_cfg.algo = nn::MixAlgorithm::kDrift;
  mix_cfg.noise_budget = 0.05;

  TextTable table({"model", "fixed quarters", "greedy", "oracle",
                   "greedy vs fixed", "greedy vs oracle"});
  CsvWriter csv("ablation_scheduler.csv",
                {"model", "fixed", "greedy", "oracle", "gain_vs_fixed",
                 "gap_vs_oracle"});

  for (const auto& spec : nn::paper_workloads()) {
    const auto mixes = nn::build_mixes(spec, mix_cfg);
    accel::DriftAccelModel fixed(hw, accel::SchedulerPolicy::kFixed);
    accel::DriftAccelModel greedy(hw, accel::SchedulerPolicy::kGreedy);
    accel::DriftAccelModel oracle(hw, accel::SchedulerPolicy::kExhaustive);
    const auto r_fixed = fixed.run(spec, mixes);
    const auto r_greedy = greedy.run(spec, mixes);
    const auto r_oracle = oracle.run(spec, mixes);

    const double gain = static_cast<double>(r_fixed.cycles) /
                        static_cast<double>(r_greedy.cycles);
    const double gap = static_cast<double>(r_greedy.cycles) /
                       static_cast<double>(r_oracle.cycles);
    table.add_row({spec.model, std::to_string(r_fixed.cycles),
                   std::to_string(r_greedy.cycles),
                   std::to_string(r_oracle.cycles), TextTable::ratio(gain),
                   TextTable::ratio(gap, 4)});
    csv.row_values(spec.model, r_fixed.cycles, r_greedy.cycles,
                   r_oracle.cycles, gain, gap);
    std::printf("%-10s done\n", spec.model.c_str());
  }

  std::printf("\n%s\n", table.to_string().c_str());
  std::printf(
      "takeaway: load balancing is worth a sizable latency factor over a\n"
      "fixed split, and the greedy sweep matches the exhaustive oracle to\n"
      "within a few percent at O(R+C) instead of O(R*C) evaluations.\n");
  return artifacts.write() ? 0 : 1;
}
