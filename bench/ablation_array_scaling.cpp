// Ablation D: array geometry scaling.
//
// The paper fixes the compute budget at 792 units to match DRQ's
// setup.  This ablation asks how Drift's advantage behaves as the
// BitGroup grid grows or shrinks, and how the grid's aspect ratio
// (rows carry the reduction dimension, columns the output dimension)
// interacts with the four-way split — the kind of scalability study
// SCALE-Sim popularized for single systolic arrays.
#include <cstdio>
#include <vector>

#include "accel/compare.hpp"
#include "obs/report.hpp"
#include "util/args.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace drift;

int main(int argc, char** argv) {
  // --metrics-out / --trace-out artifact surface (README "Observability").
  const Args args = Args::parse(argc, argv);
  const obs::ReportOptions artifacts = obs::ReportOptions::from_args(args);

  std::printf("=== Ablation D: array geometry scaling ===\n\n");

  struct Geometry {
    std::int64_t rows, cols;
  };
  const std::vector<Geometry> geometries = {
      {12, 17}, {16, 25}, {24, 33}, {32, 50}, {48, 66}, {24, 8}, {8, 99}};

  TextTable table({"array", "units", "BERT Drift/BF", "ResNet18 Drift/BF",
                   "BERT Drift vs 24x33"});
  CsvWriter csv("ablation_array_scaling.csv",
                {"rows", "cols", "units", "bert_ratio", "resnet_ratio",
                 "bert_cycles"});

  std::int64_t reference_cycles = 0;
  // First pass to get the 24x33 reference.
  {
    accel::CompareConfig cfg;
    cfg.noise_budget = 0.05;
    reference_cycles =
        accel::compare_workload(nn::make_bert_base(), cfg).drift.cycles;
  }

  for (const Geometry& g : geometries) {
    accel::CompareConfig cfg;
    cfg.noise_budget = 0.05;
    cfg.hw.array = {g.rows, g.cols};
    const auto bert = accel::compare_workload(nn::make_bert_base(), cfg);
    const auto resnet =
        accel::compare_workload(nn::make_resnet18(), cfg);
    const double bert_ratio =
        bert.speedup_drift() / bert.speedup_bitfusion();
    const double resnet_ratio =
        resnet.speedup_drift() / resnet.speedup_bitfusion();
    table.add_row({std::to_string(g.rows) + "x" + std::to_string(g.cols),
                   std::to_string(g.rows * g.cols),
                   TextTable::ratio(bert_ratio),
                   TextTable::ratio(resnet_ratio),
                   TextTable::ratio(static_cast<double>(reference_cycles) /
                                    static_cast<double>(bert.drift.cycles))});
    csv.row_values(g.rows, g.cols, g.rows * g.cols, bert_ratio,
                   resnet_ratio, bert.drift.cycles);
    std::printf("%lldx%lld done\n", static_cast<long long>(g.rows),
                static_cast<long long>(g.cols));
  }

  std::printf("\n%s\n", table.to_string().c_str());
  std::printf(
      "takeaway: the Drift-over-BitFusion ratio is stable across sizes —\n"
      "the split-array benefit is architectural, not a tuning artifact —\n"
      "while extreme aspect ratios (8x99, 24x8) erode both designs by\n"
      "starving one GEMM dimension.\n");
  return artifacts.write() ? 0 : 1;
}
