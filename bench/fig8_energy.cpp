// Figure 8 reproduction: normalized energy and its breakdown (static /
// DRAM / on-chip buffer / core) for the four accelerator designs.
#include <cmath>
#include <cstdio>

#include "accel/compare.hpp"
#include "obs/report.hpp"
#include "util/args.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace drift;

namespace {

void add_breakdown_row(TextTable& table, CsvWriter& csv,
                       const std::string& model,
                       const accel::RunResult& run, double normalizer) {
  const auto& e = run.energy;
  const double total = e.total_pj();
  table.add_row({model, run.accelerator,
                 TextTable::fmt(total / normalizer, 4),
                 TextTable::pct(e.static_pj / total),
                 TextTable::pct(e.dram_pj / total),
                 TextTable::pct(e.buffer_pj / total),
                 TextTable::pct(e.core_pj / total)});
  csv.row_values(model, run.accelerator, total / normalizer,
                 e.static_pj / total, e.dram_pj / total, e.buffer_pj / total,
                 e.core_pj / total);
}

}  // namespace

int main(int argc, char** argv) {
  // --metrics-out / --trace-out artifact surface (README "Observability").
  const Args args = Args::parse(argc, argv);
  const obs::ReportOptions artifacts = obs::ReportOptions::from_args(args);

  std::printf("=== Figure 8: normalized energy and breakdown ===\n\n");

  accel::CompareConfig cfg;
  cfg.noise_budget = 0.05;

  TextTable table({"model", "design", "normalized energy", "static", "DRAM",
                   "buffer", "core"});
  CsvWriter csv("fig8_energy.csv",
                {"model", "design", "normalized", "static", "dram", "buffer",
                 "core"});

  double geo_bf = 1.0, geo_drq = 1.0, geo_drift = 1.0;
  double drq_static = 0.0, drift_static = 0.0;
  int n = 0;
  for (const auto& spec : nn::paper_workloads()) {
    const auto cmp = accel::compare_workload(spec, cfg);
    const double normalizer = cmp.eyeriss.energy.total_pj();
    add_breakdown_row(table, csv, spec.model, cmp.eyeriss, normalizer);
    add_breakdown_row(table, csv, spec.model, cmp.bitfusion, normalizer);
    add_breakdown_row(table, csv, spec.model, cmp.drq, normalizer);
    add_breakdown_row(table, csv, spec.model, cmp.drift, normalizer);
    table.add_separator();
    geo_bf *= cmp.energy_bitfusion();
    geo_drq *= cmp.energy_drq();
    geo_drift *= cmp.energy_drift();
    drq_static += cmp.drq.energy.static_pj / cmp.drq.energy.total_pj();
    drift_static +=
        cmp.drift.energy.static_pj / cmp.drift.energy.total_pj();
    ++n;
    std::printf("%-10s done\n", spec.model.c_str());
  }
  const double inv_n = 1.0 / static_cast<double>(n);
  std::printf("\n%s\n", table.to_string().c_str());
  std::printf("geomean energy reduction vs Eyeriss: BitFusion %.2fx, "
              "DRQ %.2fx, Drift %.2fx\n",
              1.0 / std::pow(geo_bf, inv_n), 1.0 / std::pow(geo_drq, inv_n),
              1.0 / std::pow(geo_drift, inv_n));
  std::printf("geomean energy reduction of Drift vs BitFusion: %.2fx, "
              "vs DRQ: %.2fx\n",
              std::pow(geo_bf, inv_n) / std::pow(geo_drift, inv_n),
              std::pow(geo_drq, inv_n) / std::pow(geo_drift, inv_n));
  std::printf("mean static share: DRQ %.1f%%, Drift %.1f%% (paper: 51.9%% "
              "vs 41.2%%)\n",
              100.0 * drq_static / n, 100.0 * drift_static / n);
  std::printf(
      "\npaper claim check (shape): energy ordering Drift < DRQ < BitFusion\n"
      "< Eyeriss, with Drift's static share below DRQ's.\n");
  return artifacts.write() ? 0 : 1;
}
