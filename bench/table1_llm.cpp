// Table 1 reproduction: LLM perplexity under dynamic precision.
//
// Three decoder proxies stand in for GPT2-XL / BLOOM-7B1 / OPT-6.7B
// (their full-size GEMM shapes drive the hardware benches; here the
// functional question is perplexity).  Each is scored on two synthetic
// corpora whose token-scale statistics mirror curated text (wiki-like)
// and web crawl (c4-like).  Perplexity is measured against the model's
// own FP32 teacher distribution, so FP32 is the calibrated baseline
// and quantized renderings can only add cross-entropy.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "nn/proxy.hpp"
#include "obs/report.hpp"
#include "util/args.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace drift;

namespace {

nn::QuantEngine make_engine(nn::QuantMode mode, double budget = 0.02) {
  nn::QuantEngine::Config cfg;
  cfg.mode = mode;
  cfg.noise_budget = budget;
  return nn::QuantEngine(cfg);
}

}  // namespace

int main(int argc, char** argv) {
  // --metrics-out / --trace-out artifact surface (README "Observability").
  const Args args = Args::parse(argc, argv);
  const obs::ReportOptions artifacts = obs::ReportOptions::from_args(args);

  std::printf("=== Table 1: LLM perplexity (proxy) ===\n\n");

  struct ModelSpec {
    std::string name;
    std::int64_t dim;
    std::uint64_t seed;
  };
  const std::vector<ModelSpec> model_specs = {
      {"GPT2-XL", 32, 31}, {"BLOOM-7B1", 40, 32}, {"OPT-6.7B", 48, 33}};
  struct StreamSpec {
    std::string name;
    nn::SubTensorScaleProfile profile;
  };
  const std::vector<StreamSpec> streams = {
      {"Wiki", nn::wiki_stream_profile()}, {"C4", nn::c4_stream_profile()}};

  TextTable table(
      {"model", "corpus", "FP32", "INT8", "Ours", "Ours 4-bit %"});
  CsvWriter csv("table1_llm.csv",
                {"model", "corpus", "fp32", "int8", "ours", "low_ratio"});

  for (const auto& ms : model_specs) {
    for (const auto& ss : streams) {
      nn::LmProxy::Config cfg;
      cfg.model_dim = ms.dim;
      cfg.ffn_dim = 2 * ms.dim;
      cfg.seed = ms.seed;
      cfg.stream = ss.profile;
      cfg.samples = 24;
      const nn::LmProxy proxy(cfg);

      auto fp32 = make_engine(nn::QuantMode::kFloat32);
      auto int8 = make_engine(nn::QuantMode::kStaticInt8);
      const auto r_fp32 = proxy.evaluate(fp32);
      const auto r_int8 = proxy.evaluate(int8);

      // Per-model threshold selection (Section 3.3): most aggressive
      // budget whose perplexity stays within 15% of INT8 (the paper's BLOOM row sits at +10%).
      nn::ProxyResult r_ours;
      double chosen = 0.0;
      for (double budget : {0.002, 0.005, 0.01, 0.02, 0.05}) {
        auto ours = make_engine(nn::QuantMode::kDrift, budget);
        const auto r = proxy.evaluate(ours);
        if (r.metric <= r_int8.metric * 1.15 || chosen == 0.0) {
          r_ours = r;
          chosen = budget;
        }
      }

      table.add_row({ms.name, ss.name, TextTable::fmt(r_fp32.metric, 2),
                     TextTable::fmt(r_int8.metric, 2),
                     TextTable::fmt(r_ours.metric, 2),
                     TextTable::pct(r_ours.act_low_fraction)});
      csv.row_values(ms.name, ss.name, r_fp32.metric, r_int8.metric,
                     r_ours.metric, r_ours.act_low_fraction);
      std::printf("%-10s %-4s done\n", ms.name.c_str(), ss.name.c_str());
    }
  }

  std::printf("\n%s\n", table.to_string().c_str());
  std::printf(
      "paper claim check: Ours tracks INT8 perplexity closely (Table 1:\n"
      "GPT2-XL 18.12 vs 18.29; BLOOM slightly above INT8) while executing\n"
      "a substantial share of computation at 4 bits.\n");
  return artifacts.write() ? 0 : 1;
}
