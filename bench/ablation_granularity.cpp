// Ablation C: sub-tensor granularity and flexible precision settings.
//
// Section 5.1 fixes the sub-tensor size to DRQ's and the low precision
// to 4 bits "for a fair comparison", noting that other granularities
// and precisions (3-bit / 5-bit, which the BitGroup design supports)
// are possible.  This ablation sweeps both:
//   - region/block granularity of the precision decisions, and
//   - the low-precision bit-width lp in {3, 4, 5}.
#include <cstdio>
#include <vector>

#include "accel/compare.hpp"
#include "core/noise_budget.hpp"
#include "nn/synthetic.hpp"
#include "obs/report.hpp"
#include "tensor/subtensor.hpp"
#include "util/args.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace drift;

int main(int argc, char** argv) {
  // --metrics-out / --trace-out artifact surface (README "Observability").
  const Args args = Args::parse(argc, argv);
  const obs::ReportOptions artifacts = obs::ReportOptions::from_args(args);

  std::printf("=== Ablation C: granularity and flexible precision ===\n\n");

  // (a) Granularity: finer sub-tensors adapt better (higher 4-bit
  // coverage at the same noise budget) but cost more index storage.
  Rng rng(41);
  const std::int64_t rows = 4096, cols = 512;
  const TensorF x = nn::synth_rows(rng, rows, cols, nn::bert_profile());
  const auto params = core::compute_quant_params(x.data(), core::kInt8);

  TextTable gran_table({"granularity (rows/sub-tensor)", "#sub-tensors",
                        "4-bit elements", "excess noise"});
  CsvWriter csv("ablation_granularity.csv",
                {"kind", "setting", "low_fraction", "metric"});
  for (std::int64_t block : {1, 4, 16, 64, 256}) {
    const auto views = partition_blocks(rows * cols, block * cols);
    const auto stats = core::compute_stats(views, x.data());
    std::vector<std::int64_t> sizes;
    for (const auto& v : views) sizes.push_back(v.size());
    const auto sel = core::select_auto_threshold(
        stats, sizes, params, core::SelectorConfig{}, 0.02);
    gran_table.add_row({std::to_string(block),
                        std::to_string(views.size()),
                        TextTable::pct(sel.low_fraction_by_elements),
                        TextTable::fmt(sel.excess_relative_mse, 5)});
    csv.row_values("granularity", block, sel.low_fraction_by_elements,
                   sel.excess_relative_mse);
  }
  std::printf("granularity sweep (token stream, budget 2%%):\n%s\n",
              gran_table.to_string().c_str());

  // (b) Flexible low precision: the BG design also supports 3- and
  // 5-bit execution (Section 5.3's closing remark).
  TextTable lp_table({"low precision", "4(3/5)-bit elements",
                      "excess noise", "BERT Drift/BitFusion"});
  for (int lp : {3, 4, 5}) {
    core::SelectorConfig scfg;
    scfg.lp = core::Precision(lp);
    const auto views = partition_rows(Shape{rows, cols});
    const auto stats = core::compute_stats(views, x.data());
    std::vector<std::int64_t> sizes(views.size(), cols);
    const auto sel =
        core::select_auto_threshold(stats, sizes, params, scfg, 0.02);

    accel::CompareConfig hw_cfg;
    hw_cfg.noise_budget = 0.05;
    hw_cfg.drift_selector.lp = core::Precision(lp);
    const auto cmp = accel::compare_workload(nn::make_bert_base(), hw_cfg);
    const double speedup = cmp.speedup_drift() / cmp.speedup_bitfusion();

    lp_table.add_row({"INT" + std::to_string(lp),
                      TextTable::pct(sel.low_fraction_by_elements),
                      TextTable::fmt(sel.excess_relative_mse, 5),
                      TextTable::ratio(speedup)});
    csv.row_values("low_precision", lp, sel.low_fraction_by_elements,
                   speedup);
    std::printf("lp=%d done\n", lp);
  }
  std::printf("\nflexible precision sweep:\n%s\n",
              lp_table.to_string().c_str());
  std::printf(
      "takeaway: per-row granularity maximizes coverage; INT3 trades\n"
      "coverage for cheaper MACs, INT5 the reverse — the BG fabric\n"
      "supports all of them (Section 5.3).\n");
  return artifacts.write() ? 0 : 1;
}
