// Figure 2 reproduction: why existing precision-flexible accelerators
// cannot execute dynamic precision.
//
// One BERT-sized GEMM layer is executed on a single fused-BitBrick
// systolic array under four policies:
//   1. static INT8 (what BitFusion actually does),
//   2. hypothetical in-place dynamic execution where high-precision
//      rows occupy PEs for two cycles (tandem-queue backpressure),
//   3. DRQ's variable-speed array (run-switching with fallback),
//   4. Drift's split arrays (the Section 4 answer).
// The bench reports execution cycles and stall cycles per policy for a
// contiguous (CNN-like) and a scattered (transformer-like) precision
// pattern — the punchline is that the single-array policies lose their
// dynamic-precision benefit exactly when the pattern interleaves.
#include <cstdio>

#include "core/analytical_model.hpp"
#include "core/scheduler.hpp"
#include "nn/precision_mix.hpp"
#include "obs/report.hpp"
#include "systolic/stall_model.hpp"
#include "util/args.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace drift;

namespace {

/// Deterministic pattern with exactly `high_every`-periodic structure:
/// the same 20% of rows are high-precision in both patterns, but the
/// contiguous variant groups them into one block while the scattered
/// variant interleaves them every 5th row.
std::vector<bool> make_pattern(std::int64_t rows, bool contiguous) {
  std::vector<bool> pattern(static_cast<std::size_t>(rows), true);
  if (contiguous) {
    for (std::int64_t i = 0; i < rows / 5; ++i) {
      pattern[static_cast<std::size_t>(i)] = false;
    }
  } else {
    for (std::int64_t i = 0; i < rows; i += 5) {
      pattern[static_cast<std::size_t>(i)] = false;
    }
  }
  return pattern;
}

}  // namespace

int main(int argc, char** argv) {
  // --metrics-out / --trace-out artifact surface (README "Observability").
  const Args args = Args::parse(argc, argv);
  const obs::ReportOptions artifacts = obs::ReportOptions::from_args(args);

  std::printf("=== Figure 2: data-flow stalls under dynamic precision ===\n\n");

  const core::ArrayDims array{24, 33};
  const std::int64_t M = 1024, K = 768, N = 768;

  TextTable table({"pattern", "policy", "exe cycles", "stall cycles",
                   "speedup vs INT8"});
  CsvWriter csv("fig2_stall_motivation.csv",
                {"pattern", "policy", "cycles", "stalls", "speedup"});

  struct PatternSpec {
    const char* name;
    bool contiguous;
  };
  for (const PatternSpec& ps :
       {PatternSpec{"contiguous (CNN regions)", true},
        PatternSpec{"scattered (token stream)", false}}) {
    const auto pattern = make_pattern(M, ps.contiguous);
    std::int64_t m_low = 0;
    for (bool b : pattern) m_low += b ? 1 : 0;

    // Policy 1: static INT8 (BitFusion).
    const std::int64_t int8_cycles =
        core::ws_latency_cycles({M, K, N}, 8, 8, array);
    table.add_row({ps.name, "BitFusion static INT8",
                   std::to_string(int8_cycles), "0", "1.00x"});
    csv.row_values(ps.name, "int8", int8_cycles, 0, 1.0);

    auto emit = [&](const char* policy, std::int64_t cycles,
                    std::int64_t stalls) {
      table.add_row({ps.name, policy, std::to_string(cycles),
                     std::to_string(stalls),
                     TextTable::ratio(static_cast<double>(int8_cycles) /
                                      static_cast<double>(cycles))});
      csv.row_values(ps.name, policy, cycles, stalls,
                     static_cast<double>(int8_cycles) /
                         static_cast<double>(cycles));
    };

    // Policy 2: a hypothetical fused-PE array with per-row temporal
    // recomposition (hardware BitFusion does not have: fusion is
    // configured before runtime, Section 2.3); even this idealization
    // pays backpressure stalls behind slow rows.
    {
      const auto costs = systolic::costs_from_pattern(pattern, 1, 2);
      const std::int64_t k_tiles = core::ws_k_tiles(K, 4.0, array.rows);
      const std::int64_t n_tiles = core::ws_n_tiles(N, 8.0, array.cols);
      const std::int64_t stages = array.rows + array.cols - 1;
      const std::int64_t per_tile =
          array.rows + systolic::pipeline_exit_cycles(costs, stages);
      const std::int64_t stalls =
          systolic::pipeline_stall_cycles(costs, stages) * k_tiles * n_tiles;
      emit("hypothetical per-row refusion", per_tile * k_tiles * n_tiles,
           stalls);
    }

    // Policy 3: DRQ variable-speed array.
    {
      const auto run = systolic::run_switching_exe_cycles(pattern, 1, 2, 4);
      const std::int64_t k_tiles = core::ws_k_tiles(K, 4.0, array.rows);
      const std::int64_t n_tiles = core::ws_n_tiles(N, 8.0, array.cols);
      const std::int64_t per_tile =
          array.rows + run.exe_cycles + (array.rows + array.cols - 2);
      emit(run.fell_back_to_high ? "DRQ variable-speed (fell back)"
                                 : "DRQ variable-speed",
           per_tile * k_tiles * n_tiles,
           run.stall_cycles * k_tiles * n_tiles);
    }

    // Policy 4: Drift split arrays with balanced scheduling.
    {
      core::LayerWork work;
      work.m_low = m_low;
      work.m_high = M - m_low;
      work.n_high = N;  // isolate the activation-side effect
      work.k = K;
      const auto split = core::schedule_greedy(work, array);
      emit("Drift split arrays", split.makespan, 0);
    }
    table.add_separator();
  }

  std::printf("%s\n", table.to_string().c_str());
  std::printf("paper claim check: single-array dynamic execution keeps its\n"
              "benefit only for contiguous patterns; on scattered patterns\n"
              "it degenerates to static INT8 while Drift's split arrays\n"
              "retain the speedup.\n");
  return artifacts.write() ? 0 : 1;
}
