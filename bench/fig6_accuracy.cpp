// Figure 6 reproduction: accuracy and 4-bit data percentage of FP32 /
// INT8 / DRQ / Drift across CNN-, ViT- and BERT-class models.
//
// Each paper model maps to a reduced-scale proxy with the matching
// activation statistics (see DESIGN.md).  Drift's per-model threshold
// is chosen the way the paper does — the most aggressive setting whose
// accuracy impact is negligible — by searching the noise-budget grid
// against the measured proxy accuracy (the Hessian-aware rule with the
// proxy's accuracy as the sensitivity oracle).
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "nn/proxy.hpp"
#include "obs/report.hpp"
#include "util/args.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace drift;

namespace {

struct ModelEntry {
  std::string name;
  std::string family;  // cnn | vit | bert
  std::function<nn::ProxyResult(nn::QuantEngine&)> evaluate;
};

nn::QuantEngine make_engine(nn::QuantMode mode, double budget,
                            bool dynamic_weights) {
  nn::QuantEngine::Config cfg;
  cfg.mode = mode;
  cfg.noise_budget = budget;
  cfg.dynamic_weights = dynamic_weights;
  return nn::QuantEngine(cfg);
}

/// Paper-style threshold selection: the largest (most aggressive)
/// budget whose accuracy stays within `tolerance` of INT8.
double search_budget(const ModelEntry& model, double acc_int8,
                     bool dynamic_weights, double tolerance = 0.02) {
  const std::vector<double> grid = {0.002, 0.005, 0.01, 0.02, 0.04};
  double chosen = grid.front();
  for (double budget : grid) {
    auto engine = make_engine(nn::QuantMode::kDrift, budget, dynamic_weights);
    const double acc = model.evaluate(engine).metric;
    if (acc >= acc_int8 - tolerance) chosen = budget;
  }
  return chosen;
}

}  // namespace

int main(int argc, char** argv) {
  // --metrics-out / --trace-out artifact surface (README "Observability").
  const Args args = Args::parse(argc, argv);
  const obs::ReportOptions artifacts = obs::ReportOptions::from_args(args);

  std::printf("=== Figure 6: accuracy and 4-bit percentage ===\n\n");

  std::vector<ModelEntry> models;
  {
    auto add_cnn = [&](const std::string& name, std::uint64_t seed) {
      nn::CnnProxy::Config cfg;
      cfg.seed = seed;
      cfg.samples = 96;
      auto proxy = std::make_shared<nn::CnnProxy>(cfg);
      models.push_back({name, "cnn", [proxy](nn::QuantEngine& e) {
                          return proxy->evaluate(e);
                        }});
    };
    add_cnn("ResNet18", 18);
    add_cnn("ResNet50", 50);

    auto add_vit = [&](const std::string& name, std::int64_t dim,
                       std::uint64_t seed) {
      nn::TransformerProxy::Config cfg;
      cfg.model_dim = dim;
      cfg.ffn_dim = 2 * dim;
      cfg.seed = seed;
      cfg.samples = 96;
      auto proxy = std::make_shared<nn::TransformerProxy>(cfg);
      models.push_back({name, "vit", [proxy](nn::QuantEngine& e) {
                          return proxy->evaluate(e);
                        }});
    };
    add_vit("ViT-B", 32, 7);
    add_vit("DeiT-S", 24, 8);

    auto add_bert = [&](const std::string& name, std::int64_t classes,
                        std::uint64_t seed) {
      nn::TransformerProxy::Config cfg;
      cfg.classes = classes;
      cfg.seed = seed;
      cfg.samples = 96;
      auto proxy = std::make_shared<nn::TransformerProxy>(cfg);
      models.push_back({name, "bert", [proxy](nn::QuantEngine& e) {
                          return proxy->evaluate(e);
                        }});
    };
    add_bert("BERT-CoLA", 2, 21);
    add_bert("BERT-SST2", 2, 22);
    add_bert("BERT-MRPC", 2, 23);
  }

  TextTable table({"model", "FP32", "INT8", "DRQ", "Drift", "Drift 4-bit %",
                   "DRQ 4-bit %", "budget"});
  CsvWriter csv("fig6_accuracy.csv",
                {"model", "fp32", "int8", "drq", "drift", "drift_low",
                 "drq_low", "budget"});

  for (const auto& model : models) {
    // CNN proxies evaluate Drift with static weights; the random-
    // feature proxies lack trained redundancy in their few conv
    // kernels (see EXPERIMENTS.md).
    const bool dynamic_weights = model.family != "cnn";

    auto fp32 = make_engine(nn::QuantMode::kFloat32, 0, dynamic_weights);
    auto int8 = make_engine(nn::QuantMode::kStaticInt8, 0, dynamic_weights);
    auto drq = make_engine(nn::QuantMode::kDrq, 0, dynamic_weights);
    const auto r_fp32 = model.evaluate(fp32);
    const auto r_int8 = model.evaluate(int8);
    const auto r_drq = model.evaluate(drq);

    const double budget =
        search_budget(model, r_int8.metric, dynamic_weights);
    auto drift = make_engine(nn::QuantMode::kDrift, budget, dynamic_weights);
    const auto r_drift = model.evaluate(drift);

    table.add_row({model.name, TextTable::pct(r_fp32.metric),
                   TextTable::pct(r_int8.metric),
                   TextTable::pct(r_drq.metric),
                   TextTable::pct(r_drift.metric),
                   TextTable::pct(r_drift.act_low_fraction),
                   TextTable::pct(r_drq.act_low_fraction),
                   TextTable::fmt(budget, 3)});
    csv.row_values(model.name, r_fp32.metric, r_int8.metric, r_drq.metric,
                   r_drift.metric, r_drift.act_low_fraction,
                   r_drq.act_low_fraction, budget);
    std::printf("%-10s done\n", model.name.c_str());
  }

  std::printf("\n%s\n", table.to_string().c_str());
  std::printf(
      "paper claim check: DRQ tracks INT8 on the CNN rows but collapses on\n"
      "the ViT/BERT rows (paper: >12%% drop); Drift stays near INT8 on all\n"
      "rows while executing a large 4-bit share.\n");
  return artifacts.write() ? 0 : 1;
}
