// drift_report: run-analysis and regression-gating CLI over the
// observability artifacts (see DESIGN.md "Run analysis & regression
// gating").  All logic lives in cli.cpp / analysis.cpp so tests drive
// it in-process; this file only adapts argv and stdio.
#include <cstdio>
#include <string>
#include <vector>

#include "cli.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  std::string out, err;
  const int code = drift::report::run_cli(args, out, err);
  std::fputs(out.c_str(), stdout);
  std::fputs(err.c_str(), stderr);
  return code;
}
