#include "analysis.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <limits>

namespace drift::report {

namespace {

constexpr const char* kQuadrantNames[4] = {"hh", "hl", "lh", "ll"};

double num_or(const JsonValue* v, double fallback) {
  return v != nullptr && v->is_number() ? v->as_double() : fallback;
}

std::int64_t int_or(const JsonValue* v, std::int64_t fallback) {
  return v != nullptr && v->is_number() ? v->as_int() : fallback;
}

/// Counter lookup: metrics["counters"][name], 0 when absent.
std::int64_t counter(const JsonValue& metrics, const char* name) {
  return int_or(metrics.get_path({"counters", name}), 0);
}

std::string fixed(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

// -------------------------------------------------------------------
// summarize
// -------------------------------------------------------------------

JsonValue stall_attribution(const JsonArray& layers) {
  std::int64_t total_stalls = 0;
  for (const JsonValue& layer : layers) {
    total_stalls += int_or(layer.get("stall_cycles"), 0);
  }
  JsonArray rows;
  for (const JsonValue& layer : layers) {
    const std::int64_t stalls = int_or(layer.get("stall_cycles"), 0);
    const std::int64_t compute = int_or(layer.get("compute_cycles"), 0);
    JsonObject row;
    const JsonValue* name = layer.get("layer");
    row["layer"] = JsonValue(name != nullptr ? name->as_string() : "?");
    row["compute_cycles"] = JsonValue(compute);
    row["stall_cycles"] = JsonValue(stalls);
    const std::int64_t busy = compute + stalls;
    row["stall_fraction"] = JsonValue(
        busy > 0 ? static_cast<double>(stalls) / static_cast<double>(busy)
                 : 0.0);
    row["share_of_total_stalls"] = JsonValue(
        total_stalls > 0
            ? static_cast<double>(stalls) / static_cast<double>(total_stalls)
            : 0.0);
    rows.push_back(JsonValue(std::move(row)));
  }
  return JsonValue(std::move(rows));
}

JsonValue quadrant_breakdown(const JsonArray& layers) {
  // Eq. 7 evaluates per (activation, weight) precision class; the
  // scheduler records the four class latencies as hh/hl/lh/ll.
  std::array<std::int64_t, 4> totals{};
  JsonArray per_layer;
  for (const JsonValue& layer : layers) {
    const JsonValue* lat = layer.get("sched_latency");
    if (lat == nullptr || !lat->is_array() || lat->as_array().size() != 4) {
      continue;
    }
    JsonObject latencies;
    std::int64_t sum = 0, peak = 0;
    for (int q = 0; q < 4; ++q) {
      const std::int64_t v =
          lat->as_array()[static_cast<std::size_t>(q)].as_int();
      totals[static_cast<std::size_t>(q)] += v;
      latencies[kQuadrantNames[q]] = JsonValue(v);
      sum += v;
      peak = std::max(peak, v);
    }
    JsonObject row;
    const JsonValue* name = layer.get("layer");
    row["layer"] = JsonValue(name != nullptr ? name->as_string() : "?");
    row["latency"] = JsonValue(std::move(latencies));
    row["makespan"] = JsonValue(int_or(layer.get("sched_makespan"), peak));
    // How lopsided the four class queues are: max over mean.  1.0 is a
    // perfectly balanced schedule; 4.0 means one class does all work.
    row["imbalance"] = JsonValue(
        sum > 0 ? static_cast<double>(4 * peak) / static_cast<double>(sum)
                : 1.0);
    per_layer.push_back(JsonValue(std::move(row)));
  }
  if (per_layer.empty()) return JsonValue();

  std::int64_t grand = 0;
  for (const std::int64_t v : totals) grand += v;
  JsonObject total_obj, fraction_obj;
  for (int q = 0; q < 4; ++q) {
    const std::int64_t v = totals[static_cast<std::size_t>(q)];
    total_obj[kQuadrantNames[q]] = JsonValue(v);
    fraction_obj[kQuadrantNames[q]] = JsonValue(
        grand > 0 ? static_cast<double>(v) / static_cast<double>(grand)
                  : 0.0);
  }
  JsonObject out;
  out["totals"] = JsonValue(std::move(total_obj));
  out["fractions"] = JsonValue(std::move(fraction_obj));
  out["per_layer"] = JsonValue(std::move(per_layer));
  return JsonValue(std::move(out));
}

JsonValue coverage_distribution(const JsonValue& metrics,
                                const JsonArray& layers) {
  JsonArray per_layer;
  double min_cov = 1.0, max_cov = 0.0, sum_cov = 0.0;
  for (const JsonValue& layer : layers) {
    const double cov = num_or(layer.get("coverage"), 0.0);
    JsonObject row;
    const JsonValue* name = layer.get("layer");
    row["layer"] = JsonValue(name != nullptr ? name->as_string() : "?");
    row["coverage"] = JsonValue(cov);
    row["elements_low"] = JsonValue(int_or(layer.get("elements_low"), 0));
    row["elements_total"] = JsonValue(int_or(layer.get("elements_total"), 0));
    per_layer.push_back(JsonValue(std::move(row)));
    min_cov = std::min(min_cov, cov);
    max_cov = std::max(max_cov, cov);
    sum_cov += cov;
  }
  const std::int64_t elements_low = counter(metrics, "selector.elements_low");
  const std::int64_t elements_total =
      counter(metrics, "selector.elements_total");
  if (per_layer.empty() && elements_total == 0) return JsonValue();

  JsonObject out;
  out["elements_low"] = JsonValue(elements_low);
  out["elements_total"] = JsonValue(elements_total);
  out["element_coverage"] = JsonValue(
      elements_total > 0 ? static_cast<double>(elements_low) /
                               static_cast<double>(elements_total)
                         : 0.0);
  if (!per_layer.empty()) {
    out["layer_min"] = JsonValue(min_cov);
    out["layer_mean"] =
        JsonValue(sum_cov / static_cast<double>(per_layer.size()));
    out["layer_max"] = JsonValue(max_cov);
    out["per_layer"] = JsonValue(std::move(per_layer));
  }
  return JsonValue(std::move(out));
}

JsonValue roofline(const JsonValue& metrics, const SummarizeOptions& options) {
  const std::int64_t dram = counter(metrics, "traffic.dram_bytes");
  const std::int64_t cycles = counter(metrics, "sim.cycles");
  if (cycles == 0) return JsonValue();
  const double bpc = static_cast<double>(dram) / static_cast<double>(cycles);
  JsonObject out;
  out["dram_bytes"] = JsonValue(dram);
  out["cycles"] = JsonValue(cycles);
  out["bytes_per_cycle"] = JsonValue(bpc);
  out["peak_bytes_per_cycle"] = JsonValue(options.peak_bytes_per_cycle);
  out["bandwidth_utilization"] = JsonValue(
      options.peak_bytes_per_cycle > 0 ? bpc / options.peak_bytes_per_cycle
                                       : 0.0);
  // Above ~1.0 the run is bandwidth-bound: the modeled DRAM could not
  // actually sustain the simulated traffic and stalls would grow.
  return JsonValue(std::move(out));
}

JsonValue histogram_summaries(const JsonValue& metrics) {
  const JsonValue* histograms = metrics.get("histograms");
  if (histograms == nullptr || !histograms->is_object()) return JsonValue();
  JsonObject out;
  for (const auto& [name, h] : histograms->as_object()) {
    const std::int64_t total = int_or(h.get("total"), 0);
    if (total == 0) continue;
    JsonObject row;
    row["total"] = JsonValue(total);
    row["min"] = JsonValue(int_or(h.get("min"), 0));
    row["max"] = JsonValue(int_or(h.get("max"), 0));
    if (const JsonValue* q = h.get("quantiles"); q != nullptr) {
      row["quantiles"] = *q;
    }
    if (const JsonValue* exact = h.get("exact"); exact != nullptr) {
      row["exact"] = *exact;
    }
    out[name] = JsonValue(std::move(row));
  }
  if (out.empty()) return JsonValue();
  return JsonValue(std::move(out));
}

/// Pulls {p50, p99, p99.9, max} out of one obs histogram object.
JsonValue latency_quantiles(const JsonValue& hist) {
  JsonObject out;
  const JsonValue* q = hist.get("quantiles");
  out["p50"] = JsonValue(q != nullptr ? num_or(q->get("p50"), 0.0) : 0.0);
  out["p99"] = JsonValue(q != nullptr ? num_or(q->get("p99"), 0.0) : 0.0);
  out["p99.9"] =
      JsonValue(q != nullptr ? num_or(q->get("p99.9"), 0.0) : 0.0);
  out["max"] = JsonValue(int_or(hist.get("max"), 0));
  return JsonValue(std::move(out));
}

/// Per-request serving section: SLO quantiles, batching efficiency and
/// energy per request, scraped from the serve.* metrics the simulator
/// records (src/serve/simulator.cpp).  Null when the artifact holds no
/// serving run.
JsonValue serving_summary(const JsonValue& metrics) {
  const std::int64_t requests = counter(metrics, "serve.requests");
  if (requests == 0) return JsonValue();
  const std::int64_t batches = counter(metrics, "serve.batches");
  JsonObject out;
  out["requests"] = JsonValue(requests);
  out["arrivals"] = JsonValue(counter(metrics, "serve.arrivals"));
  out["batches"] = JsonValue(batches);
  out["mean_batch_size"] = JsonValue(
      batches > 0
          ? static_cast<double>(requests) / static_cast<double>(batches)
          : 0.0);
  out["utilization"] =
      JsonValue(num_or(metrics.get_path({"gauges", "serve.utilization"}), 0.0));
  out["energy_per_request_pj"] =
      JsonValue(static_cast<double>(counter(metrics, "serve.energy_pj")) /
                static_cast<double>(requests));

  const JsonValue* hists = metrics.get("histograms");
  if (hists != nullptr && hists->is_object()) {
    static constexpr const char* kSloHists[][2] = {
        {"serve.latency_cycles", "latency_cycles"},
        {"serve.wait_cycles", "wait_cycles"},
        {"serve.service_cycles", "service_cycles"}};
    for (const auto& [metric, key] : kSloHists) {
      if (const JsonValue* h = hists->get(metric); h != nullptr) {
        out[key] = latency_quantiles(*h);
      }
    }
    // Per-tenant latency histograms: serve.latency_cycles.<tenant>.
    const std::string prefix = "serve.latency_cycles.";
    JsonArray tenants;
    for (const auto& [name, h] : hists->as_object()) {
      if (name.rfind(prefix, 0) != 0) continue;
      JsonObject row;
      row["tenant"] = JsonValue(name.substr(prefix.size()));
      row["requests"] = JsonValue(int_or(h.get("total"), 0));
      row["latency_cycles"] = latency_quantiles(h);
      tenants.push_back(JsonValue(std::move(row)));
    }
    if (!tenants.empty()) out["per_tenant"] = JsonValue(std::move(tenants));
  }
  return JsonValue(std::move(out));
}

JsonValue trace_summary(const JsonValue& trace) {
  const JsonValue* events = trace.get("traceEvents");
  if (events == nullptr || !events->is_array()) return JsonValue();
  struct NameStats {
    std::int64_t count = 0;
    std::int64_t total_us = 0;
  };
  std::map<std::string, NameStats> by_name;
  std::int64_t spans = 0, ts_min = 0, ts_max = 0;
  bool any = false;
  for (const JsonValue& e : events->as_array()) {
    const JsonValue* ph = e.get("ph");
    if (ph == nullptr || !ph->is_string() || ph->as_string() != "X") continue;
    const std::int64_t ts = int_or(e.get("ts"), 0);
    const std::int64_t dur = int_or(e.get("dur"), 0);
    const JsonValue* name = e.get("name");
    NameStats& stats = by_name[name != nullptr ? name->as_string() : "?"];
    ++stats.count;
    stats.total_us += dur;
    ++spans;
    if (!any) {
      ts_min = ts;
      ts_max = ts + dur;
      any = true;
    } else {
      ts_min = std::min(ts_min, ts);
      ts_max = std::max(ts_max, ts + dur);
    }
  }
  if (!any) return JsonValue();
  JsonObject out;
  out["spans"] = JsonValue(spans);
  out["wall_us"] = JsonValue(ts_max - ts_min);
  JsonArray rows;
  for (const auto& [name, stats] : by_name) {
    JsonObject row;
    row["name"] = JsonValue(name);
    row["count"] = JsonValue(stats.count);
    row["total_us"] = JsonValue(stats.total_us);
    rows.push_back(JsonValue(std::move(row)));
  }
  // Heaviest first; ties stay in name order from the map walk.
  std::stable_sort(rows.begin(), rows.end(),
                   [](const JsonValue& a, const JsonValue& b) {
                     return int_or(a.get("total_us"), 0) >
                            int_or(b.get("total_us"), 0);
                   });
  if (rows.size() > 10) rows.resize(10);
  out["by_name"] = JsonValue(std::move(rows));
  return JsonValue(std::move(out));
}

// -------------------------------------------------------------------
// diff
// -------------------------------------------------------------------

/// One leaf of a flattened artifact: numeric or string.
struct Leaf {
  bool numeric = false;
  double number = 0.0;
  std::string text;
};

std::string render_leaf(const Leaf& leaf) {
  return leaf.numeric ? format_double(leaf.number) : leaf.text;
}

void flatten(const JsonValue& v, const std::string& path,
             std::map<std::string, Leaf>& out) {
  switch (v.kind()) {
    case JsonValue::Kind::kNull:
      break;
    case JsonValue::Kind::kBool:
      out[path] = {false, 0.0, v.as_bool() ? "true" : "false"};
      break;
    case JsonValue::Kind::kInt:
    case JsonValue::Kind::kDouble:
      out[path] = {true, v.as_double(), ""};
      break;
    case JsonValue::Kind::kString:
      out[path] = {false, 0.0, v.as_string()};
      break;
    case JsonValue::Kind::kArray: {
      const JsonArray& arr = v.as_array();
      // The layers array is keyed by layer name so two runs line up
      // even if layer order ever changed; other arrays key by index.
      for (std::size_t i = 0; i < arr.size(); ++i) {
        std::string key;
        if (const JsonValue* name = arr[i].get("layer");
            name != nullptr && name->is_string()) {
          key = path + "." + name->as_string();
        } else {
          key = path + "[" + std::to_string(i) + "]";
        }
        flatten(arr[i], key, out);
      }
      break;
    }
    case JsonValue::Kind::kObject:
      for (const auto& [key, value] : v.as_object()) {
        flatten(value, path.empty() ? key : path + "." + key, out);
      }
      break;
  }
}

struct ToleranceRule {
  std::string prefix;    ///< empty = no prefix constraint
  std::string contains;  ///< empty = no substring constraint
  bool ignore = false;
  double rel_tol = 0.0;
  double abs_tol = 0.0;

  bool matches(const std::string& path) const {
    if (!prefix.empty() && path.rfind(prefix, 0) != 0) return false;
    if (!contains.empty() && path.find(contains) == std::string::npos) {
      return false;
    }
    return true;
  }
};

bool parse_tolerances(const JsonValue* doc, std::vector<ToleranceRule>& rules,
                      double& default_rel_tol, std::string& error) {
  default_rel_tol = 0.0;
  if (doc != nullptr) {
    if (!doc->is_object()) {
      error = "tolerance file must be a JSON object";
      return false;
    }
    default_rel_tol = num_or(doc->get("default_rel_tol"), 0.0);
    if (const JsonValue* list = doc->get("rules"); list != nullptr) {
      if (!list->is_array()) {
        error = "tolerance 'rules' must be an array";
        return false;
      }
      for (const JsonValue& r : list->as_array()) {
        if (!r.is_object()) {
          error = "each tolerance rule must be an object";
          return false;
        }
        ToleranceRule rule;
        if (const JsonValue* p = r.get("prefix"); p != nullptr) {
          rule.prefix = p->as_string();
        }
        if (const JsonValue* c = r.get("contains"); c != nullptr) {
          rule.contains = c->as_string();
        }
        if (rule.prefix.empty() && rule.contains.empty()) {
          error = "tolerance rule needs a 'prefix' or 'contains' matcher";
          return false;
        }
        if (const JsonValue* ig = r.get("ignore");
            ig != nullptr && ig->kind() == JsonValue::Kind::kBool) {
          rule.ignore = ig->as_bool();
        }
        rule.rel_tol = num_or(r.get("rel_tol"), 0.0);
        rule.abs_tol = num_or(r.get("abs_tol"), 0.0);
        rules.push_back(std::move(rule));
      }
    }
  }
  // Built-in noise rules run after user rules so a tolerance file can
  // still opt into comparing these paths with an earlier match.
  rules.push_back({"meta.", "", true, 0.0, 0.0});
  rules.push_back({"", "_us", true, 0.0, 0.0});
  return true;
}

// -------------------------------------------------------------------
// ratchet
// -------------------------------------------------------------------

std::map<std::string, double> kernel_ops(const JsonValue& bench) {
  std::map<std::string, double> out;
  const JsonValue* kernels = bench.get("kernels");
  if (kernels == nullptr || !kernels->is_array()) return out;
  for (const JsonValue& k : kernels->as_array()) {
    const JsonValue* name = k.get("name");
    const JsonValue* shape = k.get("shape");
    const JsonValue* backend = k.get("backend");
    std::string key = (name != nullptr ? name->as_string() : "?") + "|" +
                      (shape != nullptr ? shape->as_string() : "?") + "|" +
                      std::to_string(int_or(k.get("threads"), 0)) + "|" +
                      (backend != nullptr ? backend->as_string() : "?");
    out[std::move(key)] = num_or(k.get("ops_per_s"), 0.0);
  }
  return out;
}

}  // namespace

JsonValue summarize(const JsonValue& metrics, const JsonValue* trace,
                    const SummarizeOptions& options) {
  JsonObject report;
  report["schema_version"] =
      JsonValue(int_or(metrics.get("schema_version"), 1));
  if (const JsonValue* meta = metrics.get("meta"); meta != nullptr) {
    report["meta"] = *meta;
  }

  JsonObject totals;
  static constexpr const char* kTotalCounters[] = {
      "sim.cycles", "sim.stall_cycles", "sim.gemms", "sim.tiles",
      "traffic.dram_bytes", "timeline.total_cycles", "scheduler.decisions"};
  for (const char* name : kTotalCounters) {
    if (const std::int64_t v = counter(metrics, name); v != 0) {
      totals[name] = JsonValue(v);
    }
  }
  if (!totals.empty()) report["totals"] = JsonValue(std::move(totals));

  static const JsonArray kNoLayers;
  const JsonValue* layers_v = metrics.get("layers");
  const JsonArray& layers =
      layers_v != nullptr && layers_v->is_array() ? layers_v->as_array()
                                                  : kNoLayers;
  if (!layers.empty()) {
    report["stall_attribution"] = stall_attribution(layers);
  }
  if (JsonValue q = quadrant_breakdown(layers); !q.is_null()) {
    report["quadrants"] = std::move(q);
  }
  if (JsonValue c = coverage_distribution(metrics, layers); !c.is_null()) {
    report["coverage"] = std::move(c);
  }
  if (JsonValue r = roofline(metrics, options); !r.is_null()) {
    report["roofline"] = std::move(r);
  }
  if (JsonValue h = histogram_summaries(metrics); !h.is_null()) {
    report["histograms"] = std::move(h);
  }
  if (JsonValue s = serving_summary(metrics); !s.is_null()) {
    report["serving"] = std::move(s);
  }
  if (const JsonValue* sweep = metrics.get("serving_sweep");
      sweep != nullptr && sweep->is_array() && !sweep->as_array().empty()) {
    report["serving_sweep"] = *sweep;
  }
  if (trace != nullptr) {
    if (JsonValue t = trace_summary(*trace); !t.is_null()) {
      report["trace"] = std::move(t);
    }
  }
  return JsonValue(std::move(report));
}

std::string summary_text(const JsonValue& report) {
  std::string out;
  out += "== drift_report summary ==\n";
  if (const JsonValue* meta = report.get("meta");
      meta != nullptr && meta->is_object() && !meta->as_object().empty()) {
    out += "meta:";
    for (const auto& [key, value] : meta->as_object()) {
      out += " " + key + "=" +
             (value.is_string() ? value.as_string() : render_leaf({true, value.as_double(), ""}));
    }
    out += "\n";
  }
  const JsonValue* totals = report.get("totals");
  if (totals != nullptr && totals->is_object()) {
    out += "\n-- totals --\n";
    for (const auto& [key, value] : totals->as_object()) {
      out += "  " + key + " = " + std::to_string(value.as_int()) + "\n";
    }
  }
  if (const JsonValue* rows = report.get("stall_attribution");
      rows != nullptr && rows->is_array() && !rows->as_array().empty()) {
    out += "\n-- stall attribution --\n";
    out += "  layer              compute     stalls  stall%  share%\n";
    for (const JsonValue& row : rows->as_array()) {
      char line[160];
      std::snprintf(line, sizeof line, "  %-16s %10lld %10lld  %5.1f%%  %5.1f%%\n",
                    row.get("layer")->as_string().c_str(),
                    static_cast<long long>(int_or(row.get("compute_cycles"), 0)),
                    static_cast<long long>(int_or(row.get("stall_cycles"), 0)),
                    100.0 * num_or(row.get("stall_fraction"), 0.0),
                    100.0 * num_or(row.get("share_of_total_stalls"), 0.0));
      out += line;
    }
  }
  if (const JsonValue* quad = report.get("quadrants");
      quad != nullptr && quad->is_object()) {
    out += "\n-- Eq. 7 quadrant latency (hh/hl/lh/ll) --\n";
    const JsonValue* t = quad->get("totals");
    const JsonValue* f = quad->get("fractions");
    if (t != nullptr && f != nullptr) {
      for (const char* q : kQuadrantNames) {
        out += "  " + std::string(q) + " = " +
               std::to_string(int_or(t->get(q), 0)) + " cycles (" +
               fixed(100.0 * num_or(f->get(q), 0.0), 1) + "%)\n";
      }
    }
    if (const JsonValue* rows = quad->get("per_layer");
        rows != nullptr && rows->is_array()) {
      out += "  layer              makespan  imbalance\n";
      for (const JsonValue& row : rows->as_array()) {
        char line[160];
        std::snprintf(line, sizeof line, "  %-16s %9lld      %.3f\n",
                      row.get("layer")->as_string().c_str(),
                      static_cast<long long>(int_or(row.get("makespan"), 0)),
                      num_or(row.get("imbalance"), 0.0));
        out += line;
      }
    }
  }
  if (const JsonValue* cov = report.get("coverage");
      cov != nullptr && cov->is_object()) {
    out += "\n-- selector coverage --\n";
    out += "  elements low/total = " +
           std::to_string(int_or(cov->get("elements_low"), 0)) + "/" +
           std::to_string(int_or(cov->get("elements_total"), 0)) + " (" +
           fixed(100.0 * num_or(cov->get("element_coverage"), 0.0), 1) +
           "%)\n";
    if (cov->get("layer_mean") != nullptr) {
      out += "  per-layer coverage min/mean/max = " +
             fixed(num_or(cov->get("layer_min"), 0.0), 4) + " / " +
             fixed(num_or(cov->get("layer_mean"), 0.0), 4) + " / " +
             fixed(num_or(cov->get("layer_max"), 0.0), 4) + "\n";
    }
  }
  if (const JsonValue* roof = report.get("roofline");
      roof != nullptr && roof->is_object()) {
    out += "\n-- roofline --\n";
    out += "  DRAM bytes/cycle = " +
           fixed(num_or(roof->get("bytes_per_cycle"), 0.0), 4) + " (peak " +
           fixed(num_or(roof->get("peak_bytes_per_cycle"), 0.0), 1) + ", " +
           fixed(100.0 * num_or(roof->get("bandwidth_utilization"), 0.0), 1) +
           "% of peak)\n";
  }
  if (const JsonValue* hists = report.get("histograms");
      hists != nullptr && hists->is_object()) {
    out += "\n-- histogram quantiles --\n";
    out += "  name                           n      min      p50      p99      max\n";
    for (const auto& [name, h] : hists->as_object()) {
      const JsonValue* q = h.get("quantiles");
      char line[200];
      std::snprintf(
          line, sizeof line, "  %-28s %5lld %8lld %8.1f %8.1f %8lld%s\n",
          name.c_str(), static_cast<long long>(int_or(h.get("total"), 0)),
          static_cast<long long>(int_or(h.get("min"), 0)),
          q != nullptr ? num_or(q->get("p50"), 0.0) : 0.0,
          q != nullptr ? num_or(q->get("p99"), 0.0) : 0.0,
          static_cast<long long>(int_or(h.get("max"), 0)),
          h.get("exact") != nullptr && h.get("exact")->as_bool()
              ? ""
              : " (approx)");
      out += line;
    }
  }
  if (const JsonValue* serving = report.get("serving");
      serving != nullptr && serving->is_object()) {
    out += "\n-- serving (per-request SLO) --\n";
    char line[200];
    std::snprintf(line, sizeof line,
                  "  %lld requests in %lld batches (mean batch %.2f), "
                  "utilization %.1f%%\n",
                  static_cast<long long>(int_or(serving->get("requests"), 0)),
                  static_cast<long long>(int_or(serving->get("batches"), 0)),
                  num_or(serving->get("mean_batch_size"), 0.0),
                  100.0 * num_or(serving->get("utilization"), 0.0));
    out += line;
    std::snprintf(line, sizeof line, "  energy/request = %.1f pJ\n",
                  num_or(serving->get("energy_per_request_pj"), 0.0));
    out += line;
    static constexpr const char* kSloRows[][2] = {
        {"latency_cycles", "latency"},
        {"wait_cycles", "wait"},
        {"service_cycles", "service"}};
    for (const auto& [key, label] : kSloRows) {
      const JsonValue* q = serving->get(key);
      if (q == nullptr || !q->is_object()) continue;
      std::snprintf(line, sizeof line,
                    "  %-7s cycles p50/p99/p99.9/max = %.1f / %.1f / %.1f "
                    "/ %lld\n",
                    label, num_or(q->get("p50"), 0.0),
                    num_or(q->get("p99"), 0.0), num_or(q->get("p99.9"), 0.0),
                    static_cast<long long>(int_or(q->get("max"), 0)));
      out += line;
    }
    if (const JsonValue* tenants = serving->get("per_tenant");
        tenants != nullptr && tenants->is_array()) {
      out += "  tenant                 n      p50      p99    p99.9      max\n";
      for (const JsonValue& row : tenants->as_array()) {
        const JsonValue* q = row.get("latency_cycles");
        std::snprintf(
            line, sizeof line, "  %-18s %5lld %8.1f %8.1f %8.1f %8lld\n",
            row.get("tenant")->as_string().c_str(),
            static_cast<long long>(int_or(row.get("requests"), 0)),
            q != nullptr ? num_or(q->get("p50"), 0.0) : 0.0,
            q != nullptr ? num_or(q->get("p99"), 0.0) : 0.0,
            q != nullptr ? num_or(q->get("p99.9"), 0.0) : 0.0,
            q != nullptr ? static_cast<long long>(int_or(q->get("max"), 0))
                         : 0);
        out += line;
      }
    }
  }
  if (const JsonValue* sweep = report.get("serving_sweep");
      sweep != nullptr && sweep->is_array() && !sweep->as_array().empty()) {
    out += "\n-- serving sweep (load vs tail latency) --\n";
    out += "  design     load   p50_us   p99_us  p99.9_us  energy/req_uJ"
           "   util\n";
    for (const JsonValue& row : sweep->as_array()) {
      const JsonValue* design = row.get("design");
      char line[200];
      std::snprintf(line, sizeof line,
                    "  %-8s %6.2f %8.2f %8.2f %9.2f %14.4f %6.2f\n",
                    design != nullptr ? design->as_string().c_str() : "?",
                    num_or(row.get("load"), 0.0),
                    num_or(row.get("p50_us"), 0.0),
                    num_or(row.get("p99_us"), 0.0),
                    num_or(row.get("p999_us"), 0.0),
                    num_or(row.get("energy_per_request_uj"), 0.0),
                    num_or(row.get("utilization"), 0.0));
      out += line;
    }
  }
  if (const JsonValue* trace = report.get("trace");
      trace != nullptr && trace->is_object()) {
    out += "\n-- trace --\n";
    out += "  " + std::to_string(int_or(trace->get("spans"), 0)) +
           " spans over " + std::to_string(int_or(trace->get("wall_us"), 0)) +
           " us\n";
    if (const JsonValue* rows = trace->get("by_name");
        rows != nullptr && rows->is_array()) {
      for (const JsonValue& row : rows->as_array()) {
        char line[200];
        std::snprintf(line, sizeof line, "  %-28s x%-6lld %10lld us\n",
                      row.get("name")->as_string().c_str(),
                      static_cast<long long>(int_or(row.get("count"), 0)),
                      static_cast<long long>(int_or(row.get("total_us"), 0)));
        out += line;
      }
    }
  }
  if (report.get("totals") == nullptr && report.get("coverage") == nullptr &&
      report.get("histograms") == nullptr &&
      report.get("serving_sweep") == nullptr) {
    out += "(no run data in artifact — empty scrape, e.g. a "
           "DRIFT_OBS_OFF build)\n";
  }
  return out;
}

bool diff_runs(const JsonValue& a, const JsonValue& b,
               const JsonValue* tolerances, DiffResult& result,
               std::string& error) {
  std::vector<ToleranceRule> rules;
  double default_rel_tol = 0.0;
  if (!parse_tolerances(tolerances, rules, default_rel_tol, error)) {
    return false;
  }

  std::map<std::string, Leaf> flat_a, flat_b;
  flatten(a, "", flat_a);
  flatten(b, "", flat_b);

  const auto rule_for = [&rules](const std::string& path) -> const ToleranceRule* {
    for (const ToleranceRule& rule : rules) {
      if (rule.matches(path)) return &rule;
    }
    return nullptr;
  };

  // One pass over the union of paths, in sorted order.
  auto it_a = flat_a.begin();
  auto it_b = flat_b.begin();
  while (it_a != flat_a.end() || it_b != flat_b.end()) {
    const bool only_a =
        it_b == flat_b.end() ||
        (it_a != flat_a.end() && it_a->first < it_b->first);
    const bool only_b =
        it_a == flat_a.end() ||
        (it_b != flat_b.end() && it_b->first < it_a->first);
    const std::string& path =
        only_b ? it_b->first : it_a->first;
    const ToleranceRule* rule = rule_for(path);
    if (rule != nullptr && rule->ignore) {
      ++result.ignored;
      if (!only_b) ++it_a;
      if (!only_a) ++it_b;
      continue;
    }
    if (only_a || only_b) {
      result.failures.push_back({path, only_b ? "(absent)" : render_leaf(it_a->second),
                                 only_a ? "(absent)" : render_leaf(it_b->second),
                                 0.0, "present in only one run"});
      if (!only_b) ++it_a;
      if (!only_a) ++it_b;
      continue;
    }
    const Leaf& la = it_a->second;
    const Leaf& lb = it_b->second;
    ++result.compared;
    if (la.numeric != lb.numeric) {
      result.failures.push_back(
          {path, render_leaf(la), render_leaf(lb), 0.0, "type mismatch"});
    } else if (!la.numeric) {
      if (la.text != lb.text) {
        result.failures.push_back(
            {path, la.text, lb.text, 0.0, "string mismatch"});
      }
    } else {
      const double rel_tol =
          rule != nullptr ? rule->rel_tol : default_rel_tol;
      const double abs_tol = rule != nullptr ? rule->abs_tol : 0.0;
      const double mag = std::max(std::fabs(la.number), std::fabs(lb.number));
      const double delta = std::fabs(la.number - lb.number);
      if (delta > abs_tol + rel_tol * mag) {
        DiffEntry entry{path, render_leaf(la), render_leaf(lb),
                        mag > 0 ? delta / mag : 0.0, ""};
        entry.note = "rel delta " + format_double(entry.rel_delta) +
                     " exceeds tolerance";
        result.failures.push_back(std::move(entry));
      }
    }
    ++it_a;
    ++it_b;
  }
  return true;
}

RatchetResult ratchet(const JsonValue& current, const JsonValue& baseline,
                      double max_slowdown) {
  RatchetResult result;
  const std::map<std::string, double> base = kernel_ops(baseline);
  const std::map<std::string, double> cur = kernel_ops(current);
  for (const auto& [key, base_ops] : base) {
    const auto it = cur.find(key);
    if (it == cur.end()) {
      result.missing.push_back(key);
      continue;
    }
    RatchetEntry entry{key, base_ops, it->second, 0.0};
    entry.slowdown = it->second > 0
                         ? base_ops / it->second
                         : std::numeric_limits<double>::infinity();
    if (entry.slowdown > max_slowdown) result.failures.push_back(entry);
    result.checked.push_back(std::move(entry));
  }
  for (const auto& [key, ops] : cur) {
    (void)ops;
    if (!base.count(key)) result.untracked.push_back(key);
  }
  if (const JsonValue* corpus = current.get("proptest_corpus");
      corpus != nullptr && corpus->is_array()) {
    for (const JsonValue& entry : corpus->as_array()) {
      if (int_or(entry.get("mismatches"), 0) != 0) {
        const JsonValue* name = entry.get("name");
        result.mismatches.push_back(name != nullptr ? name->as_string()
                                                    : "?");
      }
    }
  }
  return result;
}

}  // namespace drift::report
