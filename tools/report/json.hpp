// Minimal JSON document model for drift_report.
//
// The repo's artifact writers (obs::Registry::to_json, the Chrome
// tracer, the bench sweep) emit JSON by hand; this is the matching
// reader side.  It is deliberately small: a recursive-descent parser
// over the full JSON grammar, a document model whose objects are
// std::map (so iteration — and therefore canonical output — is always
// key-sorted), and a writer that renders doubles through
// std::to_chars so the same document always serializes to the same
// bytes on every conforming platform.  Integers that arrive without a
// fraction or exponent are kept as int64 and re-emitted without a
// decimal point, so artifact round-trips don't grow ".0" noise.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace drift::report {

class JsonValue;

using JsonArray = std::vector<JsonValue>;
using JsonObject = std::map<std::string, JsonValue>;

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}
  explicit JsonValue(bool v) : kind_(Kind::kBool), bool_(v) {}
  explicit JsonValue(std::int64_t v) : kind_(Kind::kInt), int_(v) {}
  explicit JsonValue(double v) : kind_(Kind::kDouble), double_(v) {}
  explicit JsonValue(std::string v)
      : kind_(Kind::kString), string_(std::move(v)) {}
  explicit JsonValue(JsonArray v) : kind_(Kind::kArray), array_(std::move(v)) {}
  explicit JsonValue(JsonObject v)
      : kind_(Kind::kObject), object_(std::move(v)) {}

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_number() const {
    return kind_ == Kind::kInt || kind_ == Kind::kDouble;
  }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool as_bool() const { return bool_; }
  std::int64_t as_int() const {
    return kind_ == Kind::kDouble ? static_cast<std::int64_t>(double_) : int_;
  }
  double as_double() const {
    return kind_ == Kind::kInt ? static_cast<double>(int_) : double_;
  }
  const std::string& as_string() const { return string_; }
  const JsonArray& as_array() const { return array_; }
  const JsonObject& as_object() const { return object_; }
  JsonObject& as_object() { return object_; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* get(const std::string& key) const;

  /// `get` chained through nested objects, nullptr on any miss.
  const JsonValue* get_path(std::initializer_list<const char*> keys) const;

 private:
  Kind kind_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  JsonArray array_;
  JsonObject object_;
};

/// Parses `text`; on failure returns nullopt and fills `error` with a
/// message carrying the 1-based line/column of the first bad byte.
std::optional<JsonValue> parse_json(const std::string& text,
                                    std::string& error);

/// Canonical serialization: object keys in sorted (std::map) order,
/// doubles via shortest-round-trip std::to_chars, 2-space indent.
/// Byte-identical for equal documents — the contract the report
/// goldens and `drift_report diff` rely on.
std::string write_canonical(const JsonValue& value);

/// Renders a double exactly as write_canonical would (shared with the
/// text report so both surfaces agree on every digit).
std::string format_double(double v);

}  // namespace drift::report
