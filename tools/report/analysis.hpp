// The three drift_report analyses.
//
//   summarize  one run's metrics (+ optional Chrome trace) -> derived
//              report: stall-cycle attribution per layer, the Eq. 7
//              hh/hl/lh/ll quadrant latency breakdown, selector
//              coverage distribution, DRAM bytes/cycle roofline
//              position, histogram quantile tables, trace span stats.
//   diff       two runs -> per-metric relative deltas judged against a
//              noise-aware tolerance file.
//   ratchet    a fresh BENCH_kernels.json -> per-kernel slowdown vs a
//              committed baseline.
//
// All three are pure functions over parsed JSON documents: file IO and
// exit-code policy live in cli.cpp, which keeps every analysis
// unit-testable on in-memory fixtures.  Every analysis must degrade
// gracefully on an empty artifact (a DRIFT_OBS_OFF run scrapes empty
// sections) — absent data yields absent report sections, never an
// error.
#pragma once

#include <string>
#include <vector>

#include "json.hpp"

namespace drift::report {

struct SummarizeOptions {
  /// Roofline ceiling: the modeled HBM bandwidth in DRAM bytes per
  /// accelerator cycle (paper Table 1 class hardware sustains ~16).
  double peak_bytes_per_cycle = 16.0;
};

/// Derived analysis of one run.  `trace` may be null (no --trace file).
JsonValue summarize(const JsonValue& metrics, const JsonValue* trace,
                    const SummarizeOptions& options);

/// Human-readable rendering of a summarize() report.
std::string summary_text(const JsonValue& report);

struct DiffEntry {
  std::string path;       ///< flattened metric path, e.g. "counters.sim.cycles"
  std::string a, b;       ///< rendered values from each run
  double rel_delta = 0.0; ///< |a-b| / max(|a|,|b|); 0 for non-numeric
  std::string note;       ///< why this entry failed
};

struct DiffResult {
  std::vector<DiffEntry> failures;  ///< out-of-tolerance or missing
  int compared = 0;                 ///< leaves judged against a tolerance
  int ignored = 0;                  ///< leaves skipped by an ignore rule
};

/// Compares two metrics artifacts leaf-by-leaf.  `tolerances` is the
/// parsed tolerance file (null for defaults only):
///
///   {"default_rel_tol": 0.0,
///    "rules": [{"prefix": "counters.sim.", "rel_tol": 0.05},
///              {"contains": "dram", "abs_tol": 64},
///              {"prefix": "histograms.thread_pool.", "ignore": true}]}
///
/// The first matching rule wins; a leaf passes when
/// |a-b| <= abs_tol + rel_tol * max(|a|, |b|).  Two built-in rules run
/// after (so a user rule can override them): paths under "meta." and
/// paths containing "_us" (wall-clock histograms) are ignored —
/// exactly the leaves that legitimately differ between two fixed-seed
/// runs of the same workload.  Returns false on a malformed tolerance
/// file, with `error` set.
bool diff_runs(const JsonValue& a, const JsonValue& b,
               const JsonValue* tolerances, DiffResult& result,
               std::string& error);

struct RatchetEntry {
  std::string key;        ///< "name|shape|threads|backend"
  double baseline_ops = 0.0;
  double current_ops = 0.0;
  double slowdown = 0.0;  ///< baseline_ops / current_ops; >1 = slower
};

struct RatchetResult {
  std::vector<RatchetEntry> checked;   ///< every kernel present in both
  std::vector<RatchetEntry> failures;  ///< slowdown > max_slowdown
  std::vector<std::string> missing;    ///< in baseline, absent from run
  std::vector<std::string> untracked;  ///< in run, absent from baseline
  std::vector<std::string> mismatches; ///< proptest corpus mismatches != 0
};

/// Gates `current` (a fresh BENCH_kernels.json) against `baseline`.
/// A kernel fails when baseline ops_per_s exceeds current ops_per_s by
/// more than `max_slowdown`; kernels missing from the current run are
/// failures too (a silently shrunk corpus must not pass), while
/// kernels the baseline doesn't know yet are warn-only.
RatchetResult ratchet(const JsonValue& current, const JsonValue& baseline,
                      double max_slowdown);

}  // namespace drift::report
