// drift_report command-line front-end, separated from main() so the
// ctest suite can drive the full CLI in-process and assert on exit
// codes and byte-exact output.
//
//   drift_report summarize <metrics.json> [--trace <trace.json>]
//                [--json] [--peak-bytes-per-cycle <v>]
//   drift_report diff <a.json> <b.json> [--tolerances <tol.json>] [--json]
//   drift_report ratchet <BENCH_kernels.json> --baseline <baseline.json>
//                [--max-slowdown <v>] [--json]
//
// Exit codes follow the drift_lint convention: 0 clean, 1 findings
// (out-of-tolerance diff, ratchet regression), 2 usage/IO/parse error.
#pragma once

#include <string>
#include <vector>

namespace drift::report {

/// Runs one CLI invocation.  `out` receives what would go to stdout,
/// `err` what would go to stderr.  Returns the process exit code.
int run_cli(const std::vector<std::string>& args, std::string& out,
            std::string& err);

}  // namespace drift::report
