#include "cli.hpp"

#include <fstream>
#include <optional>
#include <sstream>

#include "analysis.hpp"
#include "json.hpp"

namespace drift::report {

namespace {

constexpr const char* kUsage = R"(usage:
  drift_report summarize <metrics.json> [--trace <trace.json>]
               [--json] [--peak-bytes-per-cycle <v>]
  drift_report diff <a.json> <b.json> [--tolerances <tol.json>] [--json]
  drift_report ratchet <BENCH_kernels.json> --baseline <baseline.json>
               [--max-slowdown <v>] [--json]

exit codes: 0 clean, 1 findings, 2 usage/IO/parse error
)";

std::optional<JsonValue> load(const std::string& path, std::string& err) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    err += "drift_report: cannot open '" + path + "'\n";
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string parse_error;
  auto doc = parse_json(buf.str(), parse_error);
  if (!doc) {
    err += "drift_report: '" + path + "': " + parse_error + "\n";
    return std::nullopt;
  }
  return doc;
}

/// Pulls the value after `flag` out of `args`, erasing both tokens.
std::optional<std::string> take_flag(std::vector<std::string>& args,
                                     const std::string& flag) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == flag) {
      if (i + 1 >= args.size()) return std::nullopt;
      std::string value = args[i + 1];
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                 args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
      return value;
    }
    if (args[i].rfind(flag + "=", 0) == 0) {
      std::string value = args[i].substr(flag.size() + 1);
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i));
      return value;
    }
  }
  return std::string();  // flag absent: empty value, distinguishable below
}

bool take_switch(std::vector<std::string>& args, const std::string& flag) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == flag) {
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i));
      return true;
    }
  }
  return false;
}

int cmd_summarize(std::vector<std::string> args, std::string& out,
                  std::string& err) {
  const bool as_json = take_switch(args, "--json");
  const auto trace_path = take_flag(args, "--trace");
  const auto peak = take_flag(args, "--peak-bytes-per-cycle");
  if (!trace_path || !peak) {
    err += kUsage;
    return 2;
  }
  if (args.size() != 1) {
    err += kUsage;
    return 2;
  }
  SummarizeOptions options;
  if (!peak->empty()) {
    try {
      options.peak_bytes_per_cycle = std::stod(*peak);
    } catch (...) {
      err += "drift_report: bad --peak-bytes-per-cycle '" + *peak + "'\n";
      return 2;
    }
  }
  const auto metrics = load(args[0], err);
  if (!metrics) return 2;
  std::optional<JsonValue> trace;
  if (!trace_path->empty()) {
    trace = load(*trace_path, err);
    if (!trace) return 2;
  }
  const JsonValue report =
      summarize(*metrics, trace ? &*trace : nullptr, options);
  out += as_json ? write_canonical(report) : summary_text(report);
  return 0;
}

int cmd_diff(std::vector<std::string> args, std::string& out,
             std::string& err) {
  const bool as_json = take_switch(args, "--json");
  const auto tol_path = take_flag(args, "--tolerances");
  if (!tol_path || args.size() != 2) {
    err += kUsage;
    return 2;
  }
  const auto a = load(args[0], err);
  const auto b = load(args[1], err);
  if (!a || !b) return 2;
  std::optional<JsonValue> tolerances;
  if (!tol_path->empty()) {
    tolerances = load(*tol_path, err);
    if (!tolerances) return 2;
  }
  DiffResult result;
  std::string diff_error;
  if (!diff_runs(*a, *b, tolerances ? &*tolerances : nullptr, result,
                 diff_error)) {
    err += "drift_report: " + diff_error + "\n";
    return 2;
  }
  if (as_json) {
    JsonObject doc;
    doc["compared"] = JsonValue(static_cast<std::int64_t>(result.compared));
    doc["ignored"] = JsonValue(static_cast<std::int64_t>(result.ignored));
    JsonArray failures;
    for (const DiffEntry& f : result.failures) {
      JsonObject row;
      row["path"] = JsonValue(f.path);
      row["a"] = JsonValue(f.a);
      row["b"] = JsonValue(f.b);
      row["rel_delta"] = JsonValue(f.rel_delta);
      row["note"] = JsonValue(f.note);
      failures.push_back(JsonValue(std::move(row)));
    }
    doc["failures"] = JsonValue(std::move(failures));
    doc["ok"] = JsonValue(result.failures.empty());
    out += write_canonical(JsonValue(std::move(doc)));
  } else {
    out += "== drift_report diff ==\n";
    out += "compared " + std::to_string(result.compared) + " leaves, ignored " +
           std::to_string(result.ignored) + "\n";
    for (const DiffEntry& f : result.failures) {
      out += "FAIL " + f.path + ": " + f.a + " vs " + f.b + " (" + f.note +
             ")\n";
    }
    out += result.failures.empty()
               ? "OK: runs agree within tolerance\n"
               : std::to_string(result.failures.size()) +
                     " metric(s) out of tolerance\n";
  }
  return result.failures.empty() ? 0 : 1;
}

int cmd_ratchet(std::vector<std::string> args, std::string& out,
                std::string& err) {
  const bool as_json = take_switch(args, "--json");
  const auto baseline_path = take_flag(args, "--baseline");
  const auto max_slowdown_s = take_flag(args, "--max-slowdown");
  if (!baseline_path || !max_slowdown_s || baseline_path->empty() ||
      args.size() != 1) {
    err += kUsage;
    return 2;
  }
  double max_slowdown = 1.5;
  if (!max_slowdown_s->empty()) {
    try {
      max_slowdown = std::stod(*max_slowdown_s);
    } catch (...) {
      err += "drift_report: bad --max-slowdown '" + *max_slowdown_s + "'\n";
      return 2;
    }
  }
  const auto current = load(args[0], err);
  const auto baseline = load(*baseline_path, err);
  if (!current || !baseline) return 2;
  const RatchetResult result = ratchet(*current, *baseline, max_slowdown);
  const bool failed = !result.failures.empty() || !result.missing.empty() ||
                      !result.mismatches.empty();
  if (as_json) {
    JsonObject doc;
    JsonArray checked;
    for (const RatchetEntry& e : result.checked) {
      JsonObject row;
      row["key"] = JsonValue(e.key);
      row["baseline_ops_per_s"] = JsonValue(e.baseline_ops);
      row["current_ops_per_s"] = JsonValue(e.current_ops);
      row["slowdown"] = JsonValue(e.slowdown);
      checked.push_back(JsonValue(std::move(row)));
    }
    doc["checked"] = JsonValue(std::move(checked));
    JsonArray failures;
    for (const RatchetEntry& e : result.failures) {
      failures.push_back(JsonValue(e.key));
    }
    doc["failures"] = JsonValue(std::move(failures));
    JsonArray missing, untracked, mismatches;
    for (const std::string& k : result.missing) missing.push_back(JsonValue(k));
    for (const std::string& k : result.untracked) {
      untracked.push_back(JsonValue(k));
    }
    for (const std::string& k : result.mismatches) {
      mismatches.push_back(JsonValue(k));
    }
    doc["missing"] = JsonValue(std::move(missing));
    doc["untracked"] = JsonValue(std::move(untracked));
    doc["proptest_mismatches"] = JsonValue(std::move(mismatches));
    doc["max_slowdown"] = JsonValue(max_slowdown);
    doc["ok"] = JsonValue(!failed);
    out += write_canonical(JsonValue(std::move(doc)));
  } else {
    out += "== drift_report ratchet (max slowdown " +
           format_double(max_slowdown) + "x) ==\n";
    for (const RatchetEntry& e : result.checked) {
      char line[256];
      std::snprintf(line, sizeof line, "  %-52s %8.3fx %s\n", e.key.c_str(),
                    e.slowdown, e.slowdown > max_slowdown ? "FAIL" : "ok");
      out += line;
    }
    for (const std::string& k : result.missing) {
      out += "  MISSING from this run: " + k + "\n";
    }
    for (const std::string& k : result.untracked) {
      out += "  note: not in baseline (new kernel?): " + k + "\n";
    }
    for (const std::string& k : result.mismatches) {
      out += "  PROPTEST MISMATCH: " + k + "\n";
    }
    out += failed ? "RATCHET FAILED\n" : "OK: no kernel regressed\n";
  }
  return failed ? 1 : 0;
}

}  // namespace

int run_cli(const std::vector<std::string>& args, std::string& out,
            std::string& err) {
  if (args.empty()) {
    err += kUsage;
    return 2;
  }
  const std::string& mode = args[0];
  const std::vector<std::string> rest(args.begin() + 1, args.end());
  if (mode == "summarize") return cmd_summarize(rest, out, err);
  if (mode == "diff") return cmd_diff(rest, out, err);
  if (mode == "ratchet") return cmd_ratchet(rest, out, err);
  if (mode == "--help" || mode == "-h" || mode == "help") {
    out += kUsage;
    return 0;
  }
  err += "drift_report: unknown mode '" + mode + "'\n";
  err += kUsage;
  return 2;
}

}  // namespace drift::report
