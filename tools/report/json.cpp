#include "json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace drift::report {

const JsonValue* JsonValue::get(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  const auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

const JsonValue* JsonValue::get_path(
    std::initializer_list<const char*> keys) const {
  const JsonValue* v = this;
  for (const char* key : keys) {
    v = v->get(key);
    if (v == nullptr) return nullptr;
  }
  return v;
}

namespace {

class Parser {
 public:
  Parser(const std::string& text, std::string& error)
      : text_(text), error_(error) {}

  std::optional<JsonValue> run() {
    skip_ws();
    JsonValue v;
    if (!parse_value(v)) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing bytes after the top-level value");
      return std::nullopt;
    }
    return v;
  }

 private:
  void fail(const std::string& what) {
    if (!error_.empty()) return;  // keep the first (deepest) error
    std::size_t line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    error_ = "line " + std::to_string(line) + ", col " +
             std::to_string(col) + ": " + what;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume(char expected, const char* what) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    fail(std::string("expected ") + what);
    return false;
  }

  bool parse_literal(const char* word, JsonValue v, JsonValue& out) {
    const std::size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) == 0) {
      pos_ += len;
      out = std::move(v);
      return true;
    }
    fail(std::string("bad literal (expected '") + word + "')");
    return false;
  }

  bool parse_string(std::string& out) {
    if (!consume('"', "'\"'")) return false;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          // The repo's writers never emit \u escapes for ASCII, but a
          // hand-written tolerance file might; decode BMP code points
          // to UTF-8 and reject surrogates.
          if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
            return false;
          }
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') {
              cp |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              cp |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              cp |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad hex digit in \\u escape");
              return false;
            }
          }
          if (cp >= 0xD800 && cp <= 0xDFFF) {
            fail("surrogate \\u escape unsupported");
            return false;
          }
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default:
          fail("unknown escape");
          return false;
      }
    }
    fail("unterminated string");
    return false;
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    bool integral = true;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    if (integral) {
      std::int64_t i = 0;
      const auto res = std::from_chars(first, last, i);
      if (res.ec == std::errc() && res.ptr == last) {
        out = JsonValue(i);
        return true;
      }
      // Out-of-int64-range integer literal: fall through to double.
    }
    double d = 0.0;
    const auto res = std::from_chars(first, last, d);
    if (res.ec != std::errc() || res.ptr != last || first == last) {
      fail("malformed number");
      return false;
    }
    out = JsonValue(d);
    return true;
  }

  bool parse_value(JsonValue& out) {
    if (++depth_ > kMaxDepth) {
      fail("nesting too deep");
      return false;
    }
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      --depth_;
      return false;
    }
    bool ok = false;
    switch (text_[pos_]) {
      case 'n': ok = parse_literal("null", JsonValue(), out); break;
      case 't': ok = parse_literal("true", JsonValue(true), out); break;
      case 'f': ok = parse_literal("false", JsonValue(false), out); break;
      case '"': {
        std::string s;
        ok = parse_string(s);
        if (ok) out = JsonValue(std::move(s));
        break;
      }
      case '[': {
        ++pos_;
        JsonArray arr;
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == ']') {
          ++pos_;
          ok = true;
        } else {
          while (true) {
            JsonValue elem;
            if (!parse_value(elem)) break;
            arr.push_back(std::move(elem));
            skip_ws();
            if (pos_ < text_.size() && text_[pos_] == ',') {
              ++pos_;
              continue;
            }
            ok = consume(']', "',' or ']'");
            break;
          }
        }
        if (ok) out = JsonValue(std::move(arr));
        break;
      }
      case '{': {
        ++pos_;
        JsonObject obj;
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == '}') {
          ++pos_;
          ok = true;
        } else {
          while (true) {
            skip_ws();
            std::string key;
            if (!parse_string(key)) break;
            skip_ws();
            if (!consume(':', "':'")) break;
            JsonValue elem;
            if (!parse_value(elem)) break;
            obj[std::move(key)] = std::move(elem);
            skip_ws();
            if (pos_ < text_.size() && text_[pos_] == ',') {
              ++pos_;
              continue;
            }
            ok = consume('}', "',' or '}'");
            break;
          }
        }
        if (ok) out = JsonValue(std::move(obj));
        break;
      }
      default:
        ok = parse_number(out);
        break;
    }
    --depth_;
    return ok;
  }

  static constexpr int kMaxDepth = 64;
  const std::string& text_;
  std::string& error_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

void append_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_value(std::string& out, const JsonValue& v, int indent) {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  const std::string pad_in(static_cast<std::size_t>(indent + 1) * 2, ' ');
  switch (v.kind()) {
    case JsonValue::Kind::kNull:
      out += "null";
      break;
    case JsonValue::Kind::kBool:
      out += v.as_bool() ? "true" : "false";
      break;
    case JsonValue::Kind::kInt:
      out += std::to_string(v.as_int());
      break;
    case JsonValue::Kind::kDouble:
      out += format_double(v.as_double());
      break;
    case JsonValue::Kind::kString:
      append_string(out, v.as_string());
      break;
    case JsonValue::Kind::kArray: {
      const JsonArray& arr = v.as_array();
      if (arr.empty()) {
        out += "[]";
        break;
      }
      out += "[\n";
      for (std::size_t i = 0; i < arr.size(); ++i) {
        out += pad_in;
        append_value(out, arr[i], indent + 1);
        out += i + 1 < arr.size() ? ",\n" : "\n";
      }
      out += pad + "]";
      break;
    }
    case JsonValue::Kind::kObject: {
      const JsonObject& obj = v.as_object();
      if (obj.empty()) {
        out += "{}";
        break;
      }
      out += "{\n";
      std::size_t i = 0;
      for (const auto& [key, value] : obj) {
        out += pad_in;
        append_string(out, key);
        out += ": ";
        append_value(out, value, indent + 1);
        out += ++i < obj.size() ? ",\n" : "\n";
      }
      out += pad + "}";
      break;
    }
  }
}

}  // namespace

std::optional<JsonValue> parse_json(const std::string& text,
                                    std::string& error) {
  error.clear();
  return Parser(text, error).run();
}

std::string write_canonical(const JsonValue& value) {
  std::string out;
  append_value(out, value, 0);
  out += '\n';
  return out;
}

std::string format_double(double v) {
  if (!std::isfinite(v)) return v > 0 ? "1e999" : (v < 0 ? "-1e999" : "0");
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  return std::string(buf, res.ptr);
}

}  // namespace drift::report
