// drift_serve — multi-tenant serving simulator driver.
//
// Generates open-loop traffic (Poisson / bursty / diurnal), runs it
// through the continuous-batching event loop over one accelerator, and
// prints the SLO report: per-tenant and overall p50/p99/p99.9 latency,
// queueing delay, utilization and energy per request.
//
//   drift_serve --workloads=tiny-bert,tiny-cnn --arrival=bursty --load=0.7
//   drift_serve --workloads=tiny-bert --algo=drq --requests=1000
//   drift_serve --workloads=tiny-bert --json=serve.json --trace=serve.trace
#include <cstdio>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/simulator.hpp"
#include "util/args.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

using namespace drift;

namespace {

constexpr const char* kUsage = R"(drift_serve — Drift serving simulator

flags:
  --workloads=A,B   comma list of tenant workloads: tiny-bert|tiny-cnn|
                    any paper model name  (default: tiny-bert,tiny-cnn)
  --algo=NAME       drift|int8|drq  (default: drift)
  --arrival=NAME    poisson|bursty|diurnal  (default: poisson)
  --load=F          target utilization; interarrival gaps are calibrated
                    from each tenant's canonical service time (default 0.6)
  --interarrival=F  mean interarrival gap in cycles (overrides --load)
  --requests=N      requests per tenant (default 256)
  --max-batch=N     continuous-batching cap (default 8)
  --rows=N --cols=N BitGroup grid geometry (default 24x33)
  --seed=N          base seed; tenant i uses seed N+i (default 1)
  --shared-mix      all requests reuse the tenant's canonical mix
  --threads=N       worker threads for the mix precompute (default: auto)
  --json=PATH       write the serving metrics artifact (serve.* scrape)
  --trace=PATH      write a Chrome trace with one track per request
  --help            this text
)";

nn::MixAlgorithm pick_algo(const std::string& name) {
  if (name == "int8") return nn::MixAlgorithm::kStaticInt8;
  if (name == "drq") return nn::MixAlgorithm::kDrq;
  if (name != "drift") {
    std::fprintf(stderr, "unknown --algo '%s', using drift\n", name.c_str());
  }
  return nn::MixAlgorithm::kDrift;
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  while (begin <= s.size()) {
    const std::size_t comma = s.find(',', begin);
    const std::size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > begin) out.push_back(s.substr(begin, end - begin));
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return out;
}

std::string us(std::int64_t cycles, double clock_hz) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f",
                1e6 * static_cast<double>(cycles) / clock_hz);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = Args::parse(argc, argv);
  if (args.get_bool("help")) {
    std::printf("%s", kUsage);
    return 0;
  }

  serve::ServeConfig config;
  config.exec.algo = pick_algo(args.get_string("algo", "drift"));
  config.exec.hw.array.rows = args.get_int("rows", 24);
  config.exec.hw.array.cols = args.get_int("cols", 33);
  config.max_batch = args.get_int("max-batch", 8);

  const auto names =
      split_csv(args.get_string("workloads", "tiny-bert,tiny-cnn"));
  if (names.empty()) {
    std::fprintf(stderr, "no workloads given\n");
    return 2;
  }
  const auto kind =
      serve::arrival_kind_from_string(args.get_string("arrival", "poisson"));
  const std::int64_t requests = args.get_int("requests", 256);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 1));
  const bool shared_mix = args.get_bool("shared-mix");
  for (std::size_t i = 0; i < names.size(); ++i) {
    serve::TenantSpec tenant;
    tenant.name = names[i] + "#" + std::to_string(i);
    tenant.workload = serve::serving_workload(names[i]);
    tenant.arrival.kind = kind;
    tenant.num_requests = requests;
    tenant.seed = seed + i;
    tenant.unique_mix_per_request = !shared_mix;
    config.tenants.push_back(tenant);
  }

  util::ThreadPool& pool = util::ThreadPool::instance();
  if (args.has("threads")) pool.resize(args.get_int("threads", 0));

  // Arrival calibration: an explicit gap applies to every tenant;
  // otherwise --load splits the target utilization evenly across
  // tenants using each one's canonical service time.
  const double load = args.get_double("load", 0.6);
  const bool explicit_gap = args.has("interarrival");
  const double gap = args.get_double("interarrival", 0.0);
  {
    serve::ServeConfig probe_cfg = config;
    for (auto& tenant : probe_cfg.tenants) {
      tenant.num_requests = 1;
      tenant.unique_mix_per_request = false;
    }
    serve::Simulator probe(probe_cfg, pool);
    for (std::size_t i = 0; i < config.tenants.size(); ++i) {
      const double service = static_cast<double>(
          probe.executor().execute_canonical(static_cast<int>(i)).cycles);
      config.tenants[i].arrival.mean_interarrival_cycles =
          explicit_gap
              ? gap
              : service * static_cast<double>(config.tenants.size()) / load;
      if (kind == serve::ArrivalKind::kDiurnal) {
        config.tenants[i].arrival.diurnal_period_cycles =
            256.0 * config.tenants[i].arrival.mean_interarrival_cycles;
      }
    }
  }

  const auto json_path = args.get("json");
  const auto trace_path = args.get("trace");
  for (const std::string& flag : args.unqueried()) {
    std::fprintf(stderr, "warning: unknown flag --%s\n", flag.c_str());
  }

  obs::Registry::global().reset();
  obs::Tracer::global().reset();
  obs::Tracer::global().set_enabled(trace_path.has_value());

  serve::Simulator sim(config, pool);
  const serve::ServeResult result = sim.run();
  obs::Tracer::global().set_enabled(false);

  const double clock_hz = config.exec.hw.energy.clock_hz;
  std::printf("%s serving, %zu tenant(s), arrival %s, max batch %lld, "
              "array %lldx%lld\n",
              nn::to_string(config.exec.algo).c_str(),
              config.tenants.size(), serve::to_string(kind).c_str(),
              static_cast<long long>(config.max_batch),
              static_cast<long long>(config.exec.hw.array.rows),
              static_cast<long long>(config.exec.hw.array.cols));
  std::printf("%lld requests in %lld batches, makespan %.2f ms, "
              "utilization %.1f%%\n\n",
              static_cast<long long>(result.overall.count),
              static_cast<long long>(result.batches),
              1e3 * static_cast<double>(result.makespan_cycles) / clock_hz,
              100.0 * result.utilization());

  TextTable t({"tenant", "n", "p50_us", "p99_us", "p99.9_us", "wait_us",
               "energy/req_uJ"});
  const auto add = [&](const std::string& name, const serve::SloSummary& s) {
    char wait[32], energy[32];
    std::snprintf(wait, sizeof(wait), "%.2f",
                  1e6 * s.mean_wait_cycles / clock_hz);
    std::snprintf(energy, sizeof(energy), "%.3f",
                  s.energy_per_request_pj / 1e6);
    t.add_row({name, std::to_string(s.count), us(s.p50_cycles, clock_hz),
               us(s.p99_cycles, clock_hz), us(s.p999_cycles, clock_hz),
               wait, energy});
  };
  for (std::size_t i = 0; i < config.tenants.size(); ++i) {
    add(config.tenants[i].name, result.per_tenant[i]);
  }
  add("overall", result.overall);
  std::printf("%s", t.to_string().c_str());

  if (json_path) {
    const std::string artifact =
        obs::Registry::global().to_json({"serve."});
    if (!obs::write_file(*json_path, artifact)) {
      std::fprintf(stderr, "cannot write %s\n", json_path->c_str());
      return 1;
    }
    std::printf("\nserving metrics artifact written to %s\n",
                json_path->c_str());
  }
  if (trace_path) {
    if (!obs::Tracer::global().write_chrome_trace(*trace_path)) {
      std::fprintf(stderr, "cannot write %s\n", trace_path->c_str());
      return 1;
    }
    std::printf("Chrome trace written to %s (one track per request)\n",
                trace_path->c_str());
  }
  return 0;
}
