#include "zoo.hpp"

#include <utility>

#include "graph/builder.hpp"
#include "util/assert.hpp"

namespace drift::graphcli {
namespace {

using drift::graph::Attr;
using drift::graph::AttrMap;
using drift::graph::Graph;
using drift::graph::GraphBuilder;

AttrMap conv_attrs(std::int64_t out_channels, std::int64_t kernel,
                   std::int64_t stride, std::int64_t pad) {
  AttrMap attrs;
  attrs.emplace("out_channels", Attr::of_int(out_channels));
  attrs.emplace("kernel", Attr::of_int(kernel));
  if (stride != 1) attrs.emplace("stride", Attr::of_int(stride));
  if (pad != 0) attrs.emplace("pad", Attr::of_int(pad));
  return attrs;
}

AttrMap linear_attrs(std::int64_t out_features, const std::string& kind) {
  AttrMap attrs;
  attrs.emplace("out_features", Attr::of_int(out_features));
  attrs.emplace("kind", Attr::of_string(kind));
  return attrs;
}

/// One pre-norm transformer encoder block (the ViT / BERT / GPT-2
/// layout the hand-built workloads model): ln -> attention -> residual,
/// ln -> ffn (GELU) -> residual.  `in` names the block's input value;
/// the block's output is `p + ".add2"`.
void add_encoder_block(GraphBuilder& b, const std::string& p,
                       const std::string& in, std::int64_t dim,
                       std::int64_t heads, std::int64_t ffn_dim) {
  AttrMap attn_attrs;
  attn_attrs.emplace("heads", Attr::of_int(heads));
  b.node(p + ".ln1", "layernorm", {in});
  b.then(p + ".attn", "attention", std::move(attn_attrs));
  b.node(p + ".add1", "add", {p + ".attn", in});
  b.then(p + ".ln2", "layernorm");
  b.then(p + ".ffn1", "linear", linear_attrs(ffn_dim, "ffn"));
  b.then(p + ".gelu", "gelu");
  b.then(p + ".ffn2", "linear", linear_attrs(dim, "ffn"));
  b.node(p + ".add2", "add", {p + ".ffn2", p + ".add1"});
}

/// ResNet-18: node names (and therefore exported GEMM names) match
/// nn::make_resnet18() exactly — tests/graph pins the two workload
/// exports against each other layer by layer.
Graph make_resnet18_graph() {
  GraphBuilder b("resnet18", "cnn");
  b.input("image", {3, 224, 224});
  b.then("conv1", "conv2d", conv_attrs(64, 7, 2, 3));
  b.then("bn1", "batchnorm2d");
  b.then("relu1", "relu");
  // MaxPool2d has no padding, so the 112 -> 56 halving uses k=2 s=2
  // (the hand workload models the same halving).
  AttrMap pool_attrs;
  pool_attrs.emplace("kernel", Attr::of_int(2));
  b.then("maxpool", "maxpool2d", std::move(pool_attrs));

  struct Stage { std::int64_t ch, blocks, stride; };
  const Stage stages[] = {{64, 2, 1}, {128, 2, 2}, {256, 2, 2}, {512, 2, 2}};
  std::int64_t in_ch = 64;
  int stage_idx = 1;
  std::string value = "maxpool";
  for (const Stage& st : stages) {
    const std::string sp = "layer" + std::to_string(stage_idx++);
    for (std::int64_t blk = 0; blk < st.blocks; ++blk) {
      const std::int64_t stride = blk == 0 ? st.stride : 1;
      const std::string bp = sp + ".b" + std::to_string(blk);
      std::string identity = value;
      // Down-sample projection first, mirroring the hand workload's
      // emission order so the exported GEMM lists align index-for-index.
      if (stride != 1 || in_ch != st.ch) {
        b.node(bp + ".down", "conv2d", {value},
               conv_attrs(st.ch, 1, stride, 0));
        identity = bp + ".down";
      }
      b.node(bp + ".conv1", "conv2d", {value},
             conv_attrs(st.ch, 3, stride, 1));
      b.then(bp + ".bn1", "batchnorm2d");
      b.then(bp + ".relu1", "relu");
      b.then(bp + ".conv2", "conv2d", conv_attrs(st.ch, 3, 1, 1));
      b.then(bp + ".bn2", "batchnorm2d");
      b.node(bp + ".add", "add", {bp + ".bn2", identity});
      b.then(bp + ".relu2", "relu");
      value = bp + ".relu2";
      in_ch = st.ch;
    }
  }
  b.then("avgpool", "global_avgpool");
  b.then("fc", "linear", linear_attrs(1000, "fc"));
  return b.build();
}

/// ViT-style encoder: 16x16 patch embedding as a strided convolution,
/// flattened to tokens, `depth` encoder blocks, mean-pooled head.
Graph make_vit_graph(const std::string& name, std::int64_t dim,
                     std::int64_t heads, std::int64_t ffn_dim,
                     std::int64_t depth) {
  GraphBuilder b(name, "vit");
  b.input("image", {3, 224, 224});
  AttrMap embed_attrs = conv_attrs(dim, 16, 16, 0);
  embed_attrs.emplace("kind", Attr::of_string("embed"));
  b.then("patch_embed", "conv2d", std::move(embed_attrs));
  b.then("tokens", "to_tokens");
  std::string value = "tokens";
  for (std::int64_t blk = 0; blk < depth; ++blk) {
    const std::string p = "block" + std::to_string(blk);
    add_encoder_block(b, p, value, dim, heads, ffn_dim);
    value = p + ".add2";
  }
  b.then("pool", "mean_pool_tokens");
  b.then("head", "linear", linear_attrs(1000, "fc"));
  return b.build();
}

/// BERT-base encoder over already-embedded tokens.
Graph make_bert_base_graph() {
  GraphBuilder b("bert_base", "bert");
  b.input("tokens", {128, 768});
  std::string value = "tokens";
  for (std::int64_t blk = 0; blk < 12; ++blk) {
    const std::string p = "block" + std::to_string(blk);
    add_encoder_block(b, p, value, 768, 12, 3072);
    value = p + ".add2";
  }
  b.then("pool", "mean_pool_tokens");
  b.then("pooler", "linear", linear_attrs(768, "fc"));
  return b.build();
}

/// One GPT-2 XL decoder layer over a 1024-token prompt (the unit the
/// full 48-layer model repeats).
Graph make_gpt2_layer_graph() {
  GraphBuilder b("gpt2_layer", "llm");
  b.input("tokens", {1024, 1600});
  add_encoder_block(b, "block0", "tokens", 1600, 25, 6400);
  return b.build();
}

}  // namespace

std::vector<std::string> zoo_names() {
  return {"bert_base", "deit_s", "gpt2_layer", "resnet18", "vit_b16"};
}

Graph make_zoo_graph(const std::string& name) {
  if (name == "resnet18") return make_resnet18_graph();
  if (name == "vit_b16") return make_vit_graph("vit_b16", 768, 12, 3072, 12);
  if (name == "deit_s") return make_vit_graph("deit_s", 384, 6, 1536, 12);
  if (name == "bert_base") return make_bert_base_graph();
  if (name == "gpt2_layer") return make_gpt2_layer_graph();
  std::string known;
  for (const std::string& n : zoo_names()) {
    if (!known.empty()) known += ", ";
    known += n;
  }
  throw check_error("unknown zoo model '" + name + "' (have: " + known + ")");
}

}  // namespace drift::graphcli
