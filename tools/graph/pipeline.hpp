// Graph -> hardware pipeline glue.
//
// Exports a validated graph's GEMMs (graph/workload_export.hpp) and
// routes them through the existing selector -> scheduler -> cycle
// model, with one obs layer record per GEMM: the precision-mix loop
// here opens DRIFT_OBS_LAYER_SCOPE(layer.name) around operand
// classification, so the selector's coverage counters land in the same
// record the scheduler (Eq. 8 split, Eq. 7 latencies) and the
// accelerator's cycle/stall/DRAM accounting fill during the run — one
// per-layer artifact for a whole model in a single pass.
//
// Lives in tools/ (not src/graph) because the lint layer DAG places
// graph below accel: the graph library cannot depend on the
// accelerator models, so the composition happens here.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "accel/accelerator.hpp"
#include "accel/drift_accel.hpp"
#include "graph/graph.hpp"
#include "nn/precision_mix.hpp"

namespace drift::graphcli {

/// Pipeline knobs — a subset of accel::CompareConfig plus the mix
/// algorithm (which also selects the accelerator model to run).
struct GraphPipelineConfig {
  nn::MixAlgorithm algo = nn::MixAlgorithm::kDrift;
  accel::AccelConfig hw{};
  accel::SchedulerPolicy policy = accel::SchedulerPolicy::kGreedy;
  bool dynamic_weights = true;
  bool auto_threshold = true;
  double noise_budget = 0.05;
  std::uint64_t seed = 17;
  /// Prepended to every exported GEMM name (and so to every obs layer
  /// record name).
  std::string prefix;
};

/// Everything the run produced, for printing and for tests.
struct GraphPipelineResult {
  nn::WorkloadSpec workload;
  std::vector<nn::LayerMix> mixes;
  accel::RunResult run;
};

/// Validates + shape-infers `g` (throws check_error naming the first
/// offending node on failure), exports the workload, builds the
/// per-layer precision mixes under per-layer obs scopes, and runs the
/// accelerator model matching `config.algo` (INT8 -> BitFusion,
/// DRQ -> DRQ, Drift -> Drift with `config.policy`).
GraphPipelineResult run_graph_pipeline(const drift::graph::Graph& g,
                                       const GraphPipelineConfig& config);

}  // namespace drift::graphcli
