// drift_graph — operator-graph front end for the Drift stack.
//
//   drift_graph validate examples/model_zoo/*.json
//   drift_graph shapes examples/model_zoo/resnet18.json
//   drift_graph run --zoo=resnet18 --algo=drift --metrics-out=run.json
//   drift_graph run my_model.json --policy=exhaustive --budget=0.02
//   drift_graph emit --zoo=gpt2_layer --out=gpt2_layer.json
//   drift_graph list
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "graph/json_topology.hpp"
#include "graph/ops.hpp"
#include "obs/report.hpp"
#include "pipeline.hpp"
#include "util/args.hpp"
#include "util/assert.hpp"
#include "zoo.hpp"

using namespace drift;
using namespace drift::graphcli;

namespace {

constexpr const char* kUsage = R"(drift_graph — operator-graph runner

usage: drift_graph <command> [args] [flags]

commands:
  validate FILE...  structural + shape validation; prints every error
                    ("node 'x': ..."), exit 1 if any file fails
  shapes FILE       print the inferred shape of every value, in
                    topological order
  run FILE          route every GEMM-bearing node through the selector
                    -> scheduler -> cycle model and print the per-model
                    summary (use --zoo=NAME instead of FILE for a
                    built-in topology)
  emit --zoo=NAME   print (or --out=PATH) the canonical topology JSON
                    of a built-in model
  list              list the built-in model-zoo topologies

run flags:
  --zoo=NAME        built-in topology instead of a file
  --algo=NAME       int8|drq|drift  (default: drift)
  --policy=NAME     drift scheduler: greedy|exhaustive|fixed
  --budget=F        excess-noise budget (default 0.05)
  --rows=N --cols=N BitGroup grid geometry (default 24x33)
  --seed=N          mix sampling seed (default 17)
  --no-dynamic-weights  keep weights static INT8 under Drift
  --layers          print per-layer detail
  --metrics-out=P   write the canonical metrics JSON artifact
  --trace-out=P     write the Chrome trace artifact
)";

/// Reads a whole file; returns false (with a message on stderr) when
/// the file cannot be opened.
bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "drift_graph: cannot open '%s'\n", path.c_str());
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

/// Loads a graph from a topology file; prints parse errors and returns
/// false on failure.
bool load_graph(const std::string& path, drift::graph::Graph& g) {
  std::string text;
  if (!read_file(path, text)) return false;
  const auto parsed = drift::graph::parse_topology(text);
  if (!parsed.ok()) {
    for (const std::string& err : parsed.errors) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(), err.c_str());
    }
    return false;
  }
  g = parsed.graph;
  return true;
}

int cmd_validate(const std::vector<std::string>& files) {
  if (files.empty()) {
    std::fprintf(stderr, "drift_graph validate: no files given\n");
    return 2;
  }
  int failures = 0;
  for (const std::string& path : files) {
    drift::graph::Graph g;
    if (!load_graph(path, g)) {
      ++failures;
      continue;
    }
    const auto shapes = drift::graph::infer_shapes(g);
    if (!shapes.ok()) {
      for (const std::string& err : shapes.errors) {
        std::fprintf(stderr, "%s: %s\n", path.c_str(), err.c_str());
      }
      ++failures;
      continue;
    }
    std::printf("%s: OK (%s: %zu nodes, %zu values)\n", path.c_str(),
                g.name.c_str(), g.nodes.size(), shapes.by_name.size());
  }
  return failures == 0 ? 0 : 1;
}

int cmd_shapes(const std::vector<std::string>& files) {
  if (files.size() != 1) {
    std::fprintf(stderr, "drift_graph shapes: exactly one file expected\n");
    return 2;
  }
  drift::graph::Graph g;
  if (!load_graph(files[0], g)) return 1;
  const auto shapes = drift::graph::infer_shapes(g);
  if (!shapes.ok()) {
    for (const std::string& err : shapes.errors) {
      std::fprintf(stderr, "%s\n", err.c_str());
    }
    return 1;
  }
  for (const auto& in : g.inputs) {
    std::printf("%-32s %-18s %s\n", in.name.c_str(), "(input)",
                drift::graph::dims_to_string(in.dims).c_str());
  }
  for (const int idx : drift::graph::topological_order(g)) {
    const auto& node = g.nodes[static_cast<std::size_t>(idx)];
    std::printf("%-32s %-18s %s\n", node.name.c_str(), node.op.c_str(),
                drift::graph::dims_to_string(
                    shapes.by_name.at(node.name)).c_str());
  }
  return 0;
}

int cmd_run(const Args& args, const std::vector<std::string>& files) {
  drift::graph::Graph g;
  if (args.has("zoo")) {
    g = make_zoo_graph(args.get_string("zoo", ""));
  } else if (files.size() == 1) {
    if (!load_graph(files[0], g)) return 1;
  } else {
    std::fprintf(stderr, "drift_graph run: give one FILE or --zoo=NAME\n");
    return 2;
  }

  GraphPipelineConfig config;
  const std::string algo = args.get_string("algo", "drift");
  if (algo == "int8") {
    config.algo = nn::MixAlgorithm::kStaticInt8;
  } else if (algo == "drq") {
    config.algo = nn::MixAlgorithm::kDrq;
  } else if (algo == "drift") {
    config.algo = nn::MixAlgorithm::kDrift;
  } else {
    std::fprintf(stderr, "drift_graph run: unknown --algo '%s'\n",
                 algo.c_str());
    return 2;
  }
  const std::string policy = args.get_string("policy", "greedy");
  config.policy = policy == "exhaustive"
                      ? accel::SchedulerPolicy::kExhaustive
                      : policy == "fixed" ? accel::SchedulerPolicy::kFixed
                                          : accel::SchedulerPolicy::kGreedy;
  config.noise_budget = args.get_double("budget", 0.05);
  config.dynamic_weights = !args.get_bool("no-dynamic-weights");
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 17));
  config.hw.array.rows = args.get_int("rows", 24);
  config.hw.array.cols = args.get_int("cols", 33);

  const auto artifacts = obs::ReportOptions::from_args(args);
  const bool layers = args.get_bool("layers");
  const auto result = run_graph_pipeline(g, config);
  const auto& r = result.run;
  std::printf("%s on %s: %zu GEMMs, %.2f GMACs\n", g.name.c_str(),
              r.accelerator.c_str(), result.workload.layers.size(),
              static_cast<double>(result.workload.total_macs()) / 1e9);
  std::printf("cycles=%lld stalls=%lld dram=%.1f MB energy=%.3f mJ\n",
              static_cast<long long>(r.cycles),
              static_cast<long long>(r.stall_cycles),
              static_cast<double>(r.dram_bytes) / 1e6,
              r.energy.total_pj() / 1e9);
  if (layers) {
    for (const auto& l : r.layers) {
      std::printf("  %-32s compute=%-10lld dram=%-10lld cycles=%-10lld "
                  "util=%.1f%%\n",
                  l.layer.c_str(), static_cast<long long>(l.compute_cycles),
                  static_cast<long long>(l.dram_cycles),
                  static_cast<long long>(l.cycles), 100.0 * l.utilization);
    }
  }
  return artifacts.write() ? 0 : 1;
}

int cmd_emit(const Args& args) {
  if (!args.has("zoo")) {
    std::fprintf(stderr, "drift_graph emit: --zoo=NAME required\n");
    return 2;
  }
  const auto g = make_zoo_graph(args.get_string("zoo", ""));
  const std::string json = drift::graph::to_topology_json(g);
  const std::string out = args.get_string("out", "");
  if (out.empty()) {
    std::printf("%s", json.c_str());
    return 0;
  }
  std::ofstream file(out, std::ios::binary);
  file << json;
  if (!file.good()) {
    std::fprintf(stderr, "drift_graph emit: write to '%s' failed\n",
                 out.c_str());
    return 1;
  }
  return 0;
}

int cmd_list() {
  for (const std::string& name : zoo_names()) {
    std::printf("%s\n", name.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = Args::parse(argc, argv);
  const auto& positional = args.positional();
  if (args.get_bool("help") || positional.empty()) {
    std::printf("%s", kUsage);
    return positional.empty() && !args.get_bool("help") ? 2 : 0;
  }
  const std::string command = positional.front();
  const std::vector<std::string> rest(positional.begin() + 1,
                                      positional.end());
  try {
    if (command == "validate") return cmd_validate(rest);
    if (command == "shapes") return cmd_shapes(rest);
    if (command == "run") return cmd_run(args, rest);
    if (command == "emit") return cmd_emit(args);
    if (command == "list") return cmd_list();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "drift_graph: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "drift_graph: unknown command '%s'\n%s",
               command.c_str(), kUsage);
  return 2;
}
