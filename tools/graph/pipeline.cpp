#include "pipeline.hpp"

#include <utility>

#include "accel/bitfusion.hpp"
#include "accel/drq_accel.hpp"
#include "graph/ops.hpp"
#include "graph/workload_export.hpp"
#include "obs/metrics.hpp"
#include "util/assert.hpp"

namespace drift::graphcli {

GraphPipelineResult run_graph_pipeline(const drift::graph::Graph& g,
                                       const GraphPipelineConfig& config) {
  const auto structural = drift::graph::validate(g);
  if (!structural.empty()) {
    throw check_error("invalid graph: " + structural.front());
  }
  const auto shapes = drift::graph::infer_shapes(g);
  if (!shapes.ok()) {
    throw check_error("shape inference failed: " + shapes.errors.front());
  }

  GraphPipelineResult result;
  drift::graph::WorkloadExportOptions export_options;
  export_options.prefix = config.prefix;
  result.workload = drift::graph::to_workload(g, shapes, export_options);

  nn::MixConfig mix_config;
  mix_config.algo = config.algo;
  mix_config.dynamic_weights = config.dynamic_weights;
  mix_config.auto_threshold = config.auto_threshold;
  mix_config.noise_budget = config.noise_budget;
  mix_config.seed = config.seed;

  // Mirrors nn::build_mixes' per-layer rng fork order exactly (one
  // fork per layer, activation pattern before weight pattern), but
  // opens the per-layer obs scope around the classification and
  // attributes the mix's Eq. 5/6 outcome (row classes and the
  // element-weighted 4-bit coverage) into the same record the
  // scheduler / cycle / DRAM stages fill — one artifact per GEMM.
  Rng base_rng(config.seed);
  std::uint64_t stream = 0;
  result.mixes.reserve(result.workload.layers.size());
  for (const nn::LayerGemm& layer : result.workload.layers) {
    DRIFT_OBS_LAYER_SCOPE(layer.name);
    Rng rng = base_rng.fork(stream++);
    auto rows = nn::build_act_pattern(layer, rng, result.workload.act_profile,
                                      mix_config);
    const auto cols =
        nn::build_weight_pattern(layer, rng, result.workload, mix_config);
    result.mixes.push_back(
        nn::assemble_mix(layer, std::move(rows), cols, mix_config));
    [[maybe_unused]] const nn::LayerMix& mix = result.mixes.back();
    DRIFT_OBS_LAYER(
        rec, rec->subtensors_total += mix.work.m_high + mix.work.m_low;
        rec->subtensors_low += mix.work.m_low;
        rec->elements_total += (mix.work.m_high + mix.work.m_low) * mix.work.k;
        rec->elements_low += mix.work.m_low * mix.work.k);
  }

  switch (config.algo) {
    case nn::MixAlgorithm::kStaticInt8: {
      accel::BitFusionModel model(config.hw);
      result.run = model.run(result.workload, result.mixes);
      break;
    }
    case nn::MixAlgorithm::kDrq: {
      accel::DrqAccelModel model(config.hw);
      result.run = model.run(result.workload, result.mixes);
      break;
    }
    case nn::MixAlgorithm::kDrift: {
      accel::DriftAccelModel model(config.hw, config.policy);
      result.run = model.run(result.workload, result.mixes);
      break;
    }
  }
  return result;
}

}  // namespace drift::graphcli
