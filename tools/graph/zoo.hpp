// Built-in model-zoo topologies.
//
// The same five real-model graphs the paper evaluates, expressed in
// the src/graph data model so they can be validated, shape-inferred,
// emitted as JSON (examples/model_zoo/*.json is generated from these
// builders and pinned in sync by tests/graph/), and routed through the
// hardware pipeline.
#pragma once

#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace drift::graphcli {

/// Names accepted by make_zoo_graph, sorted.
std::vector<std::string> zoo_names();

/// Builds one of the zoo topologies; throws check_error on an unknown
/// name (the message lists the valid ones).
drift::graph::Graph make_zoo_graph(const std::string& name);

}  // namespace drift::graphcli
