// driftsim — the command-line driver for the Drift simulation stack.
//
// Runs any of the paper's workloads (or a custom GEMM) on any of the
// four accelerator models, with the quantization algorithm, scheduler
// policy, array geometry, and noise budget all selectable from flags.
//
//   driftsim --model=bert --accel=all
//   driftsim --model=gpt2_xl --accel=drift --policy=exhaustive
//   driftsim --gemm=1024x768x3072 --accel=drift --budget=0.02
//   driftsim --model=vit_b --accel=drift --rows=32 --cols=32 --csv=out.csv
#include <cstdio>
#include <string>

#include "accel/bitfusion.hpp"
#include "accel/compare.hpp"
#include "accel/controller.hpp"
#include "accel/drq_accel.hpp"
#include "accel/eyeriss.hpp"
#include "accel/timeline.hpp"
#include "util/args.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace drift;

namespace {

constexpr const char* kUsage = R"(driftsim — Drift accelerator simulator

flags:
  --model=NAME     resnet18|resnet50|vit_b|deit_s|bert|gpt2_xl|bloom_7b1|
                   opt_6p7b  (default: resnet18)
  --gemm=MxKxN     run a single custom GEMM instead of a model
  --accel=NAME     eyeriss|bitfusion|drq|drift|all  (default: all)
  --policy=NAME    drift scheduler: greedy|exhaustive|fixed (default greedy)
  --budget=F       excess-noise budget for the Drift selector (default 0.05)
  --rows=N --cols=N  BitGroup grid geometry (default 24x33 = 792 units)
  --no-dynamic-weights  keep weights static INT8 under Drift
  --csv=PATH       also write per-layer results as CSV
  --layers         print per-layer detail
  --controller     print controller (index buffer / overlap) report
  --timeline       print the double-buffered execution timeline (Gantt)
  --help           this text
)";

nn::WorkloadSpec pick_model(const std::string& name) {
  if (name == "resnet50") return nn::make_resnet50();
  if (name == "vit_b") return nn::make_vit_b16();
  if (name == "deit_s") return nn::make_deit_s();
  if (name == "bert") return nn::make_bert_base();
  if (name == "gpt2_xl") return nn::make_gpt2_xl();
  if (name == "bloom_7b1") return nn::make_bloom_7b1();
  if (name == "opt_6p7b") return nn::make_opt_6p7b();
  if (name != "resnet18") {
    std::fprintf(stderr, "unknown model '%s', using resnet18\n",
                 name.c_str());
  }
  return nn::make_resnet18();
}

nn::WorkloadSpec custom_gemm(const std::string& spec_str) {
  long long m = 0, k = 0, n = 0;
  if (std::sscanf(spec_str.c_str(), "%lldx%lldx%lld", &m, &k, &n) != 3 ||
      m <= 0 || k <= 0 || n <= 0) {
    std::fprintf(stderr, "bad --gemm spec '%s' (want MxKxN)\n",
                 spec_str.c_str());
    std::exit(2);
  }
  nn::WorkloadSpec spec;
  spec.model = "custom-" + spec_str;
  spec.family = nn::ModelFamily::kBert;
  spec.act_profile = nn::bert_profile();
  spec.weight_profile = nn::weight_profile();
  spec.layers.push_back(
      nn::LayerGemm{"gemm", nn::LayerKind::kFc, core::GemmDims{m, k, n}});
  return spec;
}

accel::SchedulerPolicy pick_policy(const std::string& name) {
  if (name == "exhaustive") return accel::SchedulerPolicy::kExhaustive;
  if (name == "fixed") return accel::SchedulerPolicy::kFixed;
  return accel::SchedulerPolicy::kGreedy;
}

void print_run(const accel::RunResult& r, bool layers) {
  std::printf("%-10s cycles=%-12lld stalls=%-10lld dram=%.1f MB "
              "energy=%.3f mJ (static %.1f%% dram %.1f%% buffer %.1f%% "
              "core %.1f%%)\n",
              r.accelerator.c_str(), static_cast<long long>(r.cycles),
              static_cast<long long>(r.stall_cycles),
              static_cast<double>(r.dram_bytes) / 1e6,
              r.energy.total_pj() / 1e9,
              100.0 * r.energy.static_pj / r.energy.total_pj(),
              100.0 * r.energy.dram_pj / r.energy.total_pj(),
              100.0 * r.energy.buffer_pj / r.energy.total_pj(),
              100.0 * r.energy.core_pj / r.energy.total_pj());
  if (!layers) return;
  TextTable t({"layer", "compute", "dram", "cycles", "util"});
  for (const auto& l : r.layers) {
    t.add_row({l.layer, std::to_string(l.compute_cycles),
               std::to_string(l.dram_cycles), std::to_string(l.cycles),
               TextTable::pct(l.utilization)});
  }
  std::printf("%s", t.to_string().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = Args::parse(argc, argv);
  if (args.get_bool("help")) {
    std::printf("%s", kUsage);
    return 0;
  }

  const nn::WorkloadSpec spec =
      args.has("gemm") ? custom_gemm(args.get_string("gemm", ""))
                       : pick_model(args.get_string("model", "resnet18"));

  accel::CompareConfig cfg;
  cfg.noise_budget = args.get_double("budget", 0.05);
  cfg.drift_dynamic_weights = !args.get_bool("no-dynamic-weights");
  cfg.drift_policy = pick_policy(args.get_string("policy", "greedy"));
  cfg.hw.array.rows = args.get_int("rows", 24);
  cfg.hw.array.cols = args.get_int("cols", 33);

  const std::string which = args.get_string("accel", "all");
  const bool layers = args.get_bool("layers");
  const bool controller = args.get_bool("controller");
  const auto csv_path = args.get("csv");

  for (const std::string& flag : args.unqueried()) {
    std::fprintf(stderr, "warning: unknown flag --%s\n", flag.c_str());
  }

  std::printf("workload %s: %lld GEMMs, %.2f GMACs, array %lldx%lld "
              "(%lld units), budget %.3f\n\n",
              spec.model.c_str(),
              static_cast<long long>(spec.total_gemms()),
              static_cast<double>(spec.total_macs()) / 1e9,
              static_cast<long long>(cfg.hw.array.rows),
              static_cast<long long>(cfg.hw.array.cols),
              static_cast<long long>(cfg.hw.array.units()),
              cfg.noise_budget);

  const auto cmp = accel::compare_workload(spec, cfg);
  if (which == "all" || which == "eyeriss") print_run(cmp.eyeriss, layers);
  if (which == "all" || which == "bitfusion") {
    print_run(cmp.bitfusion, layers);
  }
  if (which == "all" || which == "drq") print_run(cmp.drq, layers);
  if (which == "all" || which == "drift") print_run(cmp.drift, layers);

  if (which == "all") {
    std::printf("\nspeedup over Eyeriss: BitFusion %.2fx, DRQ %.2fx, "
                "Drift %.2fx\n",
                cmp.speedup_bitfusion(), cmp.speedup_drq(),
                cmp.speedup_drift());
  }

  if (args.get_bool("timeline")) {
    std::vector<accel::TimelineLayer> tl;
    for (const auto& l : cmp.drift.layers) {
      tl.push_back({l.layer, l.compute_cycles, l.dram_cycles});
    }
    const auto timeline = accel::build_timeline(tl);
    std::printf("\nDrift double-buffered timeline (unique layers, repeats "
                "collapsed): %lld cycles, %.1f%% of DRAM hidden under "
                "compute\n",
                static_cast<long long>(timeline.total_cycles),
                100.0 * timeline.overlap_fraction);
    if (timeline.entries.size() <= 24) {
      std::printf("%s", timeline.gantt().c_str());
    }
  }

  if (controller) {
    nn::MixConfig mix_cfg;
    mix_cfg.algo = nn::MixAlgorithm::kDrift;
    mix_cfg.noise_budget = cfg.noise_budget;
    mix_cfg.dynamic_weights = cfg.drift_dynamic_weights;
    const auto mixes = nn::build_mixes(spec, mix_cfg);
    const auto report = accel::evaluate_controller(mixes, cfg.hw.array);
    std::printf("\ncontroller: peak index buffer %lld bytes (%s), "
                "control work hidden under compute for %.1f%% of layers\n",
                static_cast<long long>(report.peak_index_bytes),
                report.fits_index_buffer ? "fits" : "OVERFLOWS",
                100.0 * report.overlapped_fraction);
  }

  if (csv_path) {
    CsvWriter csv(*csv_path, {"design", "layer", "compute_cycles",
                              "dram_cycles", "cycles", "utilization"});
    for (const accel::RunResult* r :
         {&cmp.eyeriss, &cmp.bitfusion, &cmp.drq, &cmp.drift}) {
      for (const auto& l : r->layers) {
        csv.row_values(r->accelerator, l.layer, l.compute_cycles,
                       l.dram_cycles, l.cycles, l.utilization);
      }
    }
    std::printf("\nper-layer CSV written to %s\n", csv_path->c_str());
  }
  return 0;
}
