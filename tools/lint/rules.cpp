// Rule engine: registry assembly, suppression handling, and the
// run_rules driver.  The rules themselves live in file_rules.cpp
// (lexer-level) and analyses.cpp (graph-level); both register through
// add_*_rules so suppression parsing, rule-name validation and output
// plumbing are shared.
#include "rules.hpp"

#include <algorithm>
#include <map>
#include <regex>
#include <set>
#include <unordered_map>

#include "graph.hpp"
#include "text.hpp"

namespace drift::lint {

namespace {

const std::set<std::string>& rule_name_set() {
  static const std::set<std::string> kNames = [] {
    std::set<std::string> names;
    for (const auto& rule : rule_registry()) names.insert(rule.id);
    return names;
  }();
  return kNames;
}

struct Suppressions {
  /// line index (0-based) -> rules allowed on that line.
  std::unordered_map<int, std::set<std::string>> allowed;
  std::vector<Violation> violations;  ///< rule "suppression"
};

Suppressions parse_suppressions(const LexedFile& file) {
  static const std::regex kAllow(R"(drift-lint:\s*allow\(([A-Za-z_-]+)\))");
  Suppressions result;
  const int n = static_cast<int>(file.lines.size());
  for (int i = 0; i < n; ++i) {
    const std::string& comment = file.lines[i].comment;
    if (comment.find("drift-lint:") == std::string::npos) continue;

    std::set<std::string> names;
    for (std::sregex_iterator it(comment.begin(), comment.end(), kAllow), end;
         it != end; ++it) {
      names.insert((*it)[1].str());
    }
    if (names.empty()) {
      result.violations.push_back(
          {file.rel, i + 1, "suppression",
           "malformed drift-lint comment; expected "
           "'drift-lint: allow(<rule>) — <justification>'"});
      continue;
    }
    for (const auto& name : names) {
      if (!rule_name_set().count(name)) {
        result.violations.push_back(
            {file.rel, i + 1, "suppression",
             "suppression names unknown rule '" + name + "'"});
      }
    }
    // Justification: what remains of the comment once the allow tokens
    // and separator punctuation are stripped must be a real sentence.
    std::string rest = std::regex_replace(comment, kAllow, "");
    std::size_t b = rest.find_first_not_of(" \t-—:;,.");
    std::string just =
        b == std::string::npos ? "" : trim(rest.substr(b));
    if (just.size() < 10) {
      result.violations.push_back(
          {file.rel, i + 1, "suppression",
           "suppression carries no justification — append '— <why this "
           "is safe>'"});
    }

    result.allowed[i].insert(names.begin(), names.end());
    // A suppression on a comment-only line covers the next code line.
    if (trim(file.lines[i].code).empty()) {
      int j = i + 1;
      while (j < n && trim(file.lines[j].code).empty() &&
             file.lines[j].comment.find("drift-lint:") == std::string::npos) {
        ++j;
      }
      if (j < n) result.allowed[j].insert(names.begin(), names.end());
    }
  }
  return result;
}

}  // namespace

const std::vector<Rule>& rule_registry() {
  static const std::vector<Rule> kRules = [] {
    std::vector<Rule> rules;
    add_file_rules(rules);
    add_graph_rules(rules);
    // "suppression" is a pseudo-rule emitted by the engine itself; it
    // appears in the registry so SARIF output can catalog it, but it
    // has no check callback and is never suppressible.
    rules.push_back(
        {"suppression",
         "drift-lint allow comments name a registered rule and carry a "
         "justification of at least 10 characters",
         nullptr, nullptr});
    return rules;
  }();
  return kRules;
}

void report(const Context& ctx, const std::string& rel, int line_idx,
            const char* rule, std::string message) {
  ctx.out->push_back({rel, line_idx + 1, rule, std::move(message)});
}

std::vector<Violation> run_rules(const std::vector<LexedFile>& files) {
  std::unordered_set<std::string> file_set;
  for (const auto& f : files) file_set.insert(f.rel);

  const RepoModel model = build_model(files, file_set);

  std::vector<Violation> raw;
  Context ctx{&file_set, &model, &raw};
  for (const auto& rule : rule_registry()) {
    if (rule.check_file) {
      for (const auto& file : files) rule.check_file(ctx, file);
    }
    if (rule.check_repo) rule.check_repo(ctx, model);
  }

  // Apply suppressions per file; hygiene problems are never themselves
  // suppressible.
  std::map<std::string, Suppressions> by_file;
  for (const auto& file : files) by_file[file.rel] = parse_suppressions(file);

  std::vector<Violation> all;
  for (auto& v : raw) {
    const auto fit = by_file.find(v.file);
    if (fit != by_file.end()) {
      const auto it = fit->second.allowed.find(v.line - 1);
      if (it != fit->second.allowed.end() && it->second.count(v.rule)) {
        continue;
      }
    }
    all.push_back(std::move(v));
  }
  for (const auto& [rel, sup] : by_file) {
    for (const auto& v : sup.violations) all.push_back(v);
  }

  std::sort(all.begin(), all.end(), [](const Violation& a, const Violation& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    if (a.rule != b.rule) return a.rule < b.rule;
    return a.message < b.message;
  });
  return all;
}

}  // namespace drift::lint
