// Output writers and ratchet gating for drift_lint.
//
// Three formats, all byte-deterministic so tests/lint/ can assert them
// exactly:
//
//   text   file:line: [rule] message        (summary on stderr)
//   json   the v1 machine format (files_scanned / violation_count /
//          violations[])
//   sarif  SARIF 2.1.0 with the rule catalog from rule_registry() in
//          tool.driver.rules and one result per violation, for GitHub
//          code-scanning upload
//
// The ratchet turns "exit 1 on any violation" into a burn-down gate: a
// committed JSON file maps rule id -> maximum allowed count, and the
// run fails only when some rule exceeds its budget.  Budgets default
// to zero for rules absent from the file, so new rules are born
// enforced.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "rules.hpp"

namespace drift::lint {

std::string json_escape(const std::string& s);

void print_text(const std::vector<Violation>& violations,
                std::size_t files_scanned);
void print_json(const std::vector<Violation>& violations,
                std::size_t files_scanned);
void print_sarif(const std::vector<Violation>& violations);

/// Loads `path` (a flat JSON object of "rule": budget pairs).  Returns
/// false when the file cannot be read or parsed.
bool load_ratchet(const std::string& path, std::map<std::string, int>& budgets);

/// Compares per-rule violation counts against `budgets` (absent rule =
/// budget 0) and prints a per-rule verdict to stderr.  Returns 0 when
/// every rule is within budget, 1 otherwise.
int apply_ratchet(const std::vector<Violation>& violations,
                  const std::map<std::string, int>& budgets);

}  // namespace drift::lint
