#include "text.hpp"

#include <regex>
#include <sstream>
#include <vector>

namespace drift::lint {

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool is_ident_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

std::size_t find_token(const std::string& code, const std::string& token) {
  std::size_t pos = 0;
  while ((pos = code.find(token, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_ident_char(code[pos - 1]);
    const std::size_t end = pos + token.size();
    const bool right_ok = end >= code.size() || !is_ident_char(code[end]);
    if (left_ok && right_ok) return pos;
    pos = end;
  }
  return std::string::npos;
}

bool is_reporting_sink(const std::string& rel) {
  return starts_with(rel, "tools/graph/") ||
         starts_with(rel, "tools/lint/") ||
         starts_with(rel, "tools/report/") ||
         starts_with(rel, "tools/serve/") || rel == "tools/driftsim.cpp";
}

std::optional<Include> parse_include(const std::string& raw) {
  static const std::regex kInclude(
      R"(^\s*#\s*include\s*([<"])([^">]+)[">])");
  std::smatch m;
  if (!std::regex_search(raw, m, kInclude)) return std::nullopt;
  return Include{m[2].str(), m[1].str() == "<"};
}

std::string normalize_path(const std::string& path) {
  std::vector<std::string> parts;
  std::stringstream ss(path);
  std::string part;
  while (std::getline(ss, part, '/')) {
    if (part.empty() || part == ".") continue;
    if (part == ".." && !parts.empty() && parts.back() != "..") {
      parts.pop_back();
    } else {
      parts.push_back(part);
    }
  }
  std::string out;
  for (const auto& p : parts) {
    if (!out.empty()) out += '/';
    out += p;
  }
  return out;
}

std::optional<std::string> resolve_include(
    const std::string& includer_rel, const std::string& inc,
    const std::unordered_set<std::string>& file_set) {
  std::vector<std::string> candidates;
  const std::size_t slash = includer_rel.find_last_of('/');
  if (slash != std::string::npos) {
    candidates.push_back(includer_rel.substr(0, slash + 1) + inc);
  }
  candidates.push_back("src/" + inc);
  candidates.push_back("tests/" + inc);
  for (const auto& c : candidates) {
    const std::string n = normalize_path(c);
    if (file_set.count(n)) return n;
  }
  return std::nullopt;
}

}  // namespace drift::lint
