// Whole-program model for drift_lint v2: per-file symbol tables glued
// into a repo-wide view with
//
//   * an include graph (resolved quoted includes only — hermetic with
//     respect to the walked file set),
//   * an approximate, name-based call graph (function F calls G when
//     G's unqualified name appears as a call token in F's body; over-
//     inclusive by design, which is the right bias for reachability
//     lints),
//   * artifact-writer reachability: the set of functions from which
//     some call path reaches a function that opens an output stream
//     (obs report/trace writers, bench JSON emitters, CSV dumps),
//   * the declared module layering DAG (see analyses.cpp `layer`).
//
// Everything is computed once per run in build_model and shared by all
// graph rules through Context::model.
#pragma once

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "lexed_file.hpp"
#include "symbols.hpp"

namespace drift::lint {

/// Repo-wide function id: index into RepoModel::fn_file / fn_index.
struct RepoModel {
  std::vector<FileSyms> files;  ///< parallel to the walked file order
  std::unordered_map<std::string, int> file_index;  ///< rel -> files idx

  /// Flattened function table: global id -> (file, local index).
  std::vector<int> fn_file;
  std::vector<int> fn_local;
  std::unordered_map<std::string, std::vector<int>> fns_by_name;

  /// Per global function id: reaches (transitively, via the name-based
  /// call graph) a function that opens an output stream.  `sink_via`
  /// names one such writer (qualified) for the diagnostic.
  std::vector<bool> reaches_sink;
  std::vector<std::string> sink_via;

  const FunctionSym& fn(int id) const {
    return files[static_cast<std::size_t>(fn_file[static_cast<std::size_t>(id)])]
        .functions[static_cast<std::size_t>(fn_local[static_cast<std::size_t>(id)])];
  }

  /// Global id for (file index, local function index).
  int global_fn(int file, int local) const {
    auto it = fn_global_.find(static_cast<std::int64_t>(file) << 20 | local);
    return it == fn_global_.end() ? -1 : it->second;
  }

  std::unordered_map<std::int64_t, int> fn_global_;
};

/// Declared module layering.  Rank grows toward the application layer;
/// a module may reference same-or-lower ranks.  obs is additionally
/// referenceable from everywhere (cross-cutting instrumentation), ref
/// and simd are handled by dedicated rules (oracle-include, intrinsic).
/// Returns -1 for unknown modules.
int module_rank(const std::string& module_name);

RepoModel build_model(const std::vector<LexedFile>& files,
                      const std::unordered_set<std::string>& file_set);

}  // namespace drift::lint
