// drift_lint rule engine.
//
// Rule catalog (see DESIGN.md "Static analysis" for rationale):
//
//   thread          std::thread / std::jthread / std::async / OpenMP /
//                   pthread_create anywhere except src/util/thread_pool.*
//                   (std::thread::hardware_concurrency is a read-only
//                   query and stays legal).
//   random          std::random_device, rand(), srand(), time(),
//                   *_clock::now() inside src/ outside util/rng.hpp —
//                   every stochastic or timing decision must flow
//                   through the seeded Rng (bit-identical replays).
//   oracle-include  src/ref/ may include only src/ref/ and standard
//                   headers, and no non-test code may include anything
//                   that resolves into tests/.
//   narrow          casts (C-style or static_cast) to 8/16/32-bit
//                   integer types in src/core/ and src/nn/ — the
//                   int4/int8 code-carrying types — must carry an
//                   allow(narrow) suppression justifying why the value
//                   cannot overflow.
//   intrinsic       raw SIMD usage outside src/nn/simd/: vector
//                   intrinsic headers (immintrin.h, arm_neon.h, ...)
//                   and intrinsic tokens (_mm*, __m256, int8x16_t, ...)
//                   anywhere, plus src/ includes that resolve into
//                   src/nn/simd/ — dispatch-boundary consumers carry a
//                   justified allow(intrinsic).
//   index           .data()[...] indexing with no DRIFT_CHECK* in the
//                   enclosing function (src/ only); use at()/operator()
//                   or add an explicit range check.
//   logging         printf/fprintf/puts/std::cout/std::cerr/std::clog
//                   in src/ and tools/ — use util/logging.hpp.  The
//                   designated reporting sinks (tools/lint/,
//                   tools/report/, tools/driftsim.cpp) are CLI
//                   front-ends whose stdout IS the product and are
//                   exempt.
//   obs             metrics-registry lookup-by-string (.counter("..."),
//                   .gauge, .histogram, .layer_record) inside a loop in
//                   src/ outside src/obs/, and in tools/ outside the
//                   reporting sinks — cache the handle (static
//                   pointer, or the DRIFT_OBS_* macros which do so).
//   suppression     a drift-lint allow comment that names an unknown
//                   rule or carries no justification text.  Not itself
//                   suppressible.
//
// Suppressions are written `allow(narrow) — why this is safe` after a
// "drift-lint" colon marker, on the violating line or on a comment-only
// line directly above it.
#pragma once

#include <string>
#include <vector>

#include "lexed_file.hpp"

namespace drift::lint {

struct Violation {
  std::string file;  ///< path relative to the lint root
  int line = 0;      ///< 1-based
  std::string rule;
  std::string message;
};

/// Runs every rule over `files` and returns the surviving (unsuppressed)
/// violations sorted by (file, line, rule).  `files` must hold the
/// complete walked set: include resolution only consults this set, so
/// the engine is hermetic with respect to the filesystem.
std::vector<Violation> run_rules(const std::vector<LexedFile>& files);

}  // namespace drift::lint
