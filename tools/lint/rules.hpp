// drift_lint rule engine: registry interface shared by the lexer-level
// rules (file_rules.cpp) and the whole-program graph analyses
// (analyses.cpp).
//
// v1 rules (per-file, token-level — see DESIGN.md "Static analysis"):
//
//   thread          raw threading primitives outside util/thread_pool.*
//   random          nondeterministic sources inside src/ outside
//                   util/rng.hpp
//   oracle-include  src/ref/ may include only src/ref/ + std headers;
//                   no non-test code includes tests/
//   narrow          casts to int8/16/32-carrying types in src/{core,nn}/
//                   need a justified allow
//   intrinsic       raw SIMD confined to src/nn/simd/; dispatch-header
//                   consumers carry a justified allow
//   index           .data()[...] with no DRIFT_CHECK in the enclosing
//                   function
//   logging         stdio/iostream outside the reporting sinks
//   obs             metrics lookup-by-string inside loops
//   suppression     malformed / unjustified allows (never suppressible)
//
// v2 rules (whole-program, symbol/graph-level — DESIGN.md "Static
// analysis v2"):
//
//   layer           cross-module reference (include edge or qualified
//                   symbol use) violating the declared module DAG
//                   util → tensor/stats → core/nn/dram/energy/systolic
//                   → graph → accel → obs → serve; src/ref referenced
//                   by no
//                   production module; obs reachable from every layer
//                   as the cross-cutting instrumentation sidecar
//   unordered       iteration over unordered_{map,set} inside a
//                   function from which the approximate call graph
//                   reaches an artifact writer (any function that opens
//                   an output stream) — hash order would leak into a
//                   committed artifact
//   float-accum     float (not double) += accumulation inside a loop in
//                   src/ outside src/nn/simd/ — reductions accumulate
//                   in double or go through the canonical 4-lane
//                   schedule
//   rng-stream      direct engine/distribution construction outside
//                   util/rng.hpp — randomness flows through seeded,
//                   forkable Rng streams only
//   race            parallel_for / pool-submit lambda writing a
//                   by-reference capture without atomics or
//                   disjoint-slot (subscripted) indexing
//   atomic-order    memory_order_relaxed outside src/obs/ needs a
//                   justified allow (obs shards are the one blessed
//                   relaxed-atomics site)
//   dead-api        exported (header, namespace-scope) symbol with zero
//                   cross-TU references in the walked tree
//
// Suppressions are written `allow(<rule>) — why this is safe` after a
// "drift-lint" colon marker, on the violating line or on a comment-only
// line directly above it.
#pragma once

#include <functional>
#include <string>
#include <unordered_set>
#include <vector>

#include "lexed_file.hpp"

namespace drift::lint {

struct RepoModel;  // graph.hpp

struct Violation {
  std::string file;  ///< path relative to the lint root
  int line = 0;      ///< 1-based
  std::string rule;
  std::string message;
};

/// Everything a rule needs to run and report.
struct Context {
  const std::unordered_set<std::string>* file_set = nullptr;
  const RepoModel* model = nullptr;
  std::vector<Violation>* out = nullptr;
};

/// One registered rule.  Exactly one of the two check callbacks is
/// set: `check_file` runs once per lexed file, `check_repo` once per
/// run over the whole-program model.  `summary` feeds the SARIF rule
/// catalog, so it states the invariant, not the failure.
struct Rule {
  std::string id;
  std::string summary;
  std::function<void(const Context&, const LexedFile&)> check_file;
  std::function<void(const Context&, const RepoModel&)> check_repo;
};

/// All rules, lexer-level then graph-level, in catalog order.  The
/// order is stable: SARIF ruleIndex values are derived from it.
const std::vector<Rule>& rule_registry();

/// Registration hooks (defined in file_rules.cpp / analyses.cpp).
void add_file_rules(std::vector<Rule>& rules);
void add_graph_rules(std::vector<Rule>& rules);

/// Reporting helper shared by both rule kinds.
void report(const Context& ctx, const std::string& rel, int line_idx,
            const char* rule, std::string message);

/// Runs every registered rule over `files` (building the repo model
/// for the graph analyses) and returns the surviving (unsuppressed)
/// violations sorted by (file, line, rule).  `files` must hold the
/// complete walked set: include resolution only consults this set, so
/// the engine is hermetic with respect to the filesystem.
std::vector<Violation> run_rules(const std::vector<LexedFile>& files);

}  // namespace drift::lint
