#include "lexed_file.hpp"

#include <cctype>

namespace drift::lint {

namespace {

enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRaw };

}  // namespace

LexedFile lex_file(std::filesystem::path path, std::string rel,
                   const std::string& content) {
  LexedFile file;
  file.path = std::move(path);
  file.rel = std::move(rel);

  State state = State::kCode;
  std::string raw_delim;  // raw-string terminator: )delim"
  LexedLine line;

  const auto flush_line = [&] {
    file.lines.push_back(std::move(line));
    line = LexedLine{};
  };

  for (std::size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    if (c == '\n') {
      // Line comments end at the newline; every other state carries
      // over (block comments, raw strings; an unterminated plain
      // string is a syntax error upstream, treat it as ending too).
      if (state == State::kLineComment || state == State::kString ||
          state == State::kChar) {
        state = State::kCode;
      }
      flush_line();
      continue;
    }
    line.raw.push_back(c);

    switch (state) {
      case State::kCode: {
        const char next = i + 1 < content.size() ? content[i + 1] : '\0';
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          line.raw.push_back(next);
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          line.raw.push_back(next);
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (line.code.empty() ||
                    (!std::isalnum(static_cast<unsigned char>(
                         line.code.back())) &&
                     line.code.back() != '_'))) {
          // R"delim( ... )delim" — scan the delimiter.
          std::size_t j = i + 2;
          std::string delim;
          while (j < content.size() && content[j] != '(' &&
                 content[j] != '\n') {
            delim.push_back(content[j]);
            ++j;
          }
          state = State::kRaw;
          raw_delim = ")" + delim + "\"";
          line.code += "\"\"";
          // Emit the delimiter header into raw, then skip past '('.
          for (std::size_t k = i + 1; k <= j && k < content.size(); ++k) {
            line.raw.push_back(content[k]);
          }
          i = j;
        } else if (c == '"') {
          state = State::kString;
          line.code += "\"\"";
        } else if (c == '\'') {
          state = State::kChar;
          line.code += "''";
        } else {
          line.code.push_back(c);
        }
        break;
      }
      case State::kLineComment:
        line.comment.push_back(c);
        break;
      case State::kBlockComment: {
        const char next = i + 1 < content.size() ? content[i + 1] : '\0';
        if (c == '*' && next == '/') {
          state = State::kCode;
          line.raw.push_back(next);
          ++i;
        } else {
          line.comment.push_back(c);
        }
        break;
      }
      case State::kString: {
        if (c == '\\') {
          if (i + 1 < content.size() && content[i + 1] != '\n') {
            line.raw.push_back(content[i + 1]);
            ++i;
          }
        } else if (c == '"') {
          state = State::kCode;
        }
        break;
      }
      case State::kChar: {
        if (c == '\\') {
          if (i + 1 < content.size() && content[i + 1] != '\n') {
            line.raw.push_back(content[i + 1]);
            ++i;
          }
        } else if (c == '\'') {
          state = State::kCode;
        }
        break;
      }
      case State::kRaw: {
        if (c == raw_delim.front() &&
            content.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (std::size_t k = 1; k < raw_delim.size(); ++k) {
            if (content[i + k] != '\n') line.raw.push_back(content[i + k]);
          }
          i += raw_delim.size() - 1;
          state = State::kCode;
        }
        break;
      }
    }
  }
  if (!line.raw.empty() || !line.comment.empty()) flush_line();
  return file;
}

}  // namespace drift::lint
