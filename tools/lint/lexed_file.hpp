// Lightweight line-oriented C++ lexer for drift_lint.
//
// The rules in rules.cpp match textual patterns ("std::thread",
// "static_cast<std::int8_t>", ...), so the lexer's only job is to make
// that matching sound: for every source line it separates the *code*
// text (string/char literal contents blanked, comments removed) from
// the *comment* text, where suppression comments live.  The raw line
// is kept as well because `#include "..."` paths live inside a string
// literal that the code channel deliberately blanks.
//
// This is not a full tokenizer — it only tracks the lexical states
// that change what a byte means: line comments, block comments,
// string/char literals (with escapes) and raw strings.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

namespace drift::lint {

struct LexedLine {
  std::string raw;      ///< the line exactly as read (no trailing \n)
  std::string code;     ///< raw with comments removed, literals blanked
  std::string comment;  ///< concatenated comment text of this line
};

struct LexedFile {
  std::filesystem::path path;   ///< absolute path on disk
  std::string rel;              ///< path relative to the lint root, '/'
  std::vector<LexedLine> lines; ///< lines[i] is source line i + 1
};

/// Splits `content` into per-line code/comment channels.  Block
/// comments and raw strings may span lines; the lexer carries its
/// state across them.
LexedFile lex_file(std::filesystem::path path, std::string rel,
                   const std::string& content);

}  // namespace drift::lint
