// Shared string / include-resolution helpers for the drift_lint rule
// engine.  These were private to rules.cpp in v1; the v2 split into
// lexer rules (file_rules.cpp), symbol extraction (symbols.cpp) and
// graph analyses (analyses.cpp) makes them common infrastructure.
#pragma once

#include <optional>
#include <string>
#include <unordered_set>

namespace drift::lint {

bool starts_with(const std::string& s, const char* prefix);

bool is_ident_char(char c);

std::string trim(const std::string& s);

/// First occurrence of `token` in `code` delimited by non-identifier
/// characters on both sides (npos if absent).
std::size_t find_token(const std::string& code, const std::string& token);

/// CLI front-ends whose whole job is writing to stdout/stderr: the
/// report, lint and serving tools plus the driftsim driver.  These are
/// allowed stdio sinks for the `logging` rule so they don't need a
/// suppression on every print statement; library code under tools/
/// (anything else) still routes through util/logging.hpp.
bool is_reporting_sink(const std::string& rel);

struct Include {
  std::string path;
  bool angled = false;
};

/// Parses a `#include <...>` / `#include "..."` line (std::nullopt if
/// the line is not an include directive).
std::optional<Include> parse_include(const std::string& raw);

/// Collapses "." and ".." components; keeps the path '/'-separated.
std::string normalize_path(const std::string& path);

/// Resolves a quoted include against the walked file set, mirroring the
/// build's include directories: the includer's own directory first,
/// then src/ and tests/ (the two target_include_directories roots).
std::optional<std::string> resolve_include(
    const std::string& includer_rel, const std::string& inc,
    const std::unordered_set<std::string>& file_set);

}  // namespace drift::lint
