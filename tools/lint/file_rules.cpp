// The v1 lexer-level rules: per-file token matching over the lexed
// code channel.  Registered through add_file_rules so they share
// suppression handling and output plumbing with the graph analyses in
// analyses.cpp.  Rule semantics are documented in rules.hpp.
#include <optional>
#include <regex>
#include <string>
#include <vector>

#include "rules.hpp"
#include "text.hpp"

namespace drift::lint {

namespace {

void rule_thread(const Context& ctx, const LexedFile& file) {
  if (file.rel == "src/util/thread_pool.hpp" ||
      file.rel == "src/util/thread_pool.cpp") {
    return;
  }
  for (std::size_t i = 0; i < file.lines.size(); ++i) {
    const std::string& code = file.lines[i].code;
    for (const char* tok :
         {"std::jthread", "std::async", "pthread_create"}) {
      if (find_token(code, tok) != std::string::npos) {
        report(ctx, file.rel, static_cast<int>(i), "thread",
               std::string("raw threading primitive '") + tok +
                   "'; route parallelism through util/thread_pool.hpp");
      }
    }
    const std::size_t pos = find_token(code, "std::thread");
    if (pos != std::string::npos) {
      // std::thread::hardware_concurrency is a read-only query.
      std::size_t after = pos + std::string("std::thread").size();
      while (after < code.size() && code[after] == ' ') ++after;
      if (code.compare(after, 23, "::hardware_concurrency(") != 0) {
        report(ctx, file.rel, static_cast<int>(i), "thread",
               "raw threading primitive 'std::thread'; route parallelism "
               "through util/thread_pool.hpp");
      }
    }
    if (code.find("#pragma") != std::string::npos &&
        find_token(code, "omp") != std::string::npos) {
      report(ctx, file.rel, static_cast<int>(i), "thread",
             "OpenMP pragma; route parallelism through "
             "util/thread_pool.hpp");
    }
    const auto inc = parse_include(file.lines[i].raw);
    if (inc && inc->angled && (inc->path == "omp.h")) {
      report(ctx, file.rel, static_cast<int>(i), "thread",
             "OpenMP header include; route parallelism through "
             "util/thread_pool.hpp");
    }
  }
}

void rule_random(const Context& ctx, const LexedFile& file) {
  if (!starts_with(file.rel, "src/") || file.rel == "src/util/rng.hpp") {
    return;
  }
  static const std::vector<std::pair<std::string, std::regex>> kPatterns = {
      {"std::random_device", std::regex(R"(random_device)")},
      {"rand()", std::regex(R"((^|[^A-Za-z0-9_])rand\s*\()")},
      {"srand()", std::regex(R"((^|[^A-Za-z0-9_])srand\s*\()")},
      {"time()", std::regex(R"((^|[^A-Za-z0-9_.>])time\s*\()")},
      {"steady_clock::now()", std::regex(R"(steady_clock\s*::\s*now)")},
      {"system_clock::now()", std::regex(R"(system_clock\s*::\s*now)")},
      {"high_resolution_clock::now()",
       std::regex(R"(high_resolution_clock\s*::\s*now)")},
  };
  for (std::size_t i = 0; i < file.lines.size(); ++i) {
    for (const auto& [name, re] : kPatterns) {
      if (std::regex_search(file.lines[i].code, re)) {
        report(ctx, file.rel, static_cast<int>(i), "random",
               "nondeterministic source '" + name +
                   "'; draw from a seeded util/rng.hpp Rng instead");
      }
    }
  }
}

void rule_oracle_include(const Context& ctx, const LexedFile& file) {
  const bool in_ref = starts_with(file.rel, "src/ref/");
  // bench/ is test-adjacent tooling: it deliberately times the same
  // differential corpus the property suites run (PR 2), so it may
  // include tests/proptest/.  Production code (src/, tools/) may not.
  const bool in_tests =
      starts_with(file.rel, "tests/") || starts_with(file.rel, "bench/");
  for (std::size_t i = 0; i < file.lines.size(); ++i) {
    const auto inc = parse_include(file.lines[i].raw);
    if (!inc || inc->angled) continue;  // angled = standard library
    const auto resolved =
        resolve_include(file.rel, inc->path, *ctx.file_set);
    if (in_ref &&
        (!resolved || !starts_with(*resolved, "src/ref/"))) {
      report(ctx, file.rel, static_cast<int>(i), "oracle-include",
             "src/ref/ must stay oracle-independent: include \"" +
                 inc->path + "\" is not a src/ref/ or standard header");
    }
    if (!in_tests && resolved && starts_with(*resolved, "tests/")) {
      report(ctx, file.rel, static_cast<int>(i), "oracle-include",
             "non-test code includes \"" + inc->path + "\" from tests/");
    }
  }
}

void rule_narrow(const Context& ctx, const LexedFile& file) {
  if (!starts_with(file.rel, "src/core/") &&
      !starts_with(file.rel, "src/nn/")) {
    return;
  }
  static const std::regex kStatic(
      R"(static_cast<\s*(::)?(std::)?u?int(8|16|32)_t\s*>)");
  static const std::regex kCStyle(
      R"(\(\s*(::)?(std::)?u?int(8|16|32)_t\s*\)\s*[A-Za-z0-9_(+~!-])");
  static const std::regex kFunctional(
      R"((^|[^A-Za-z0-9_:<,])(std::)?u?int(8|16|32)_t\s*\()");
  for (std::size_t i = 0; i < file.lines.size(); ++i) {
    const std::string& code = file.lines[i].code;
    std::smatch m;
    if (std::regex_search(code, m, kStatic) ||
        std::regex_search(code, m, kCStyle) ||
        std::regex_search(code, m, kFunctional)) {
      report(ctx, file.rel, static_cast<int>(i), "narrow",
             "narrowing cast to an int8/int4-carrying type; justify with "
             "'// drift-lint: allow(narrow) — <why the value fits>'");
    }
  }
}

void rule_intrinsic(const Context& ctx, const LexedFile& file) {
  // src/nn/simd/ is the one home for raw vector code; everything it
  // exports goes through the kernel dispatch table.
  if (starts_with(file.rel, "src/nn/simd/")) return;
  static const std::regex kIntrinsicHeader(
      R"((immintrin|x86intrin|emmintrin|smmintrin|tmmintrin|avxintrin|)"
      R"(arm_neon|arm_sve)\.h)");
  static const std::regex kIntrinsicToken(
      R"((^|[^A-Za-z0-9_])(_mm(256|512)?_[a-z0-9_]+|__m(128|256|512)[di]?|)"
      R"((u?int|float|poly)(8|16|32|64)x(1|2|4|8|16)_t))");
  const bool in_src = starts_with(file.rel, "src/");
  for (std::size_t i = 0; i < file.lines.size(); ++i) {
    const auto inc = parse_include(file.lines[i].raw);
    if (inc) {
      // (a) Intrinsic headers are confined to the backend directory.
      if (std::regex_search(inc->path, kIntrinsicHeader)) {
        report(ctx, file.rel, static_cast<int>(i), "intrinsic",
               "vector intrinsic header <" + inc->path +
                   "> outside src/nn/simd/; add a kernel to the "
                   "dispatched backend instead");
        continue;
      }
      // (b) Production code consuming the backend does so through the
      // dispatch boundary, and says why.
      if (in_src && !inc->angled) {
        const auto resolved =
            resolve_include(file.rel, inc->path, *ctx.file_set);
        if (resolved && starts_with(*resolved, "src/nn/simd/")) {
          report(ctx, file.rel, static_cast<int>(i), "intrinsic",
                 "include \"" + inc->path +
                     "\" reaches into the SIMD backend; justify the "
                     "dispatch-boundary consumer with '// drift-lint: "
                     "allow(intrinsic) — <why>'");
        }
      }
      continue;
    }
    // (a) Raw intrinsic calls / vector register types in ordinary code.
    const std::string& code = file.lines[i].code;
    std::smatch m;
    if (std::regex_search(code, m, kIntrinsicToken)) {
      report(ctx, file.rel, static_cast<int>(i), "intrinsic",
             "raw SIMD intrinsic '" + m[2].str() +
                 "' outside src/nn/simd/; route through the kernel "
                 "dispatch table (nn/simd/kernel_dispatch.hpp)");
    }
  }
}

/// For each line, the 0-based line of the opening brace of the
/// outermost non-namespace block containing it (-1 at namespace/file
/// scope).  Class bodies count as one region — permissive, but a
/// DRIFT_CHECK anywhere in a small class is close enough for a lint.
std::vector<int> enclosing_block_starts(const LexedFile& file) {
  struct Frame {
    bool namespace_like = false;
    int line = 0;
  };
  std::vector<Frame> stack;
  std::vector<int> result(file.lines.size(), -1);

  const auto lowest_other = [&stack]() -> int {
    for (const auto& f : stack) {
      if (!f.namespace_like) return f.line;
    }
    return -1;
  };

  for (std::size_t i = 0; i < file.lines.size(); ++i) {
    const std::string& code = file.lines[i].code;
    int best = lowest_other();
    for (std::size_t p = 0; p < code.size(); ++p) {
      if (code[p] == '{') {
        const std::string before = code.substr(0, p);
        const bool ns = find_token(before, "namespace") != std::string::npos ||
                        find_token(before, "extern") != std::string::npos;
        stack.push_back({ns, static_cast<int>(i)});
        if (best == -1) best = lowest_other();
      } else if (code[p] == '}') {
        if (!stack.empty()) stack.pop_back();
      }
    }
    result[i] = best;
  }
  return result;
}

void rule_index(const Context& ctx, const LexedFile& file) {
  if (!starts_with(file.rel, "src/")) return;
  static const std::regex kRawIndex(R"(\.data\(\)\s*\[)");
  std::vector<int> block_starts;  // computed lazily: most files are clean
  for (std::size_t i = 0; i < file.lines.size(); ++i) {
    if (!std::regex_search(file.lines[i].code, kRawIndex)) continue;
    if (block_starts.empty()) block_starts = enclosing_block_starts(file);
    // Namespace/file scope has no enclosing function: same line only.
    const int start =
        block_starts[i] >= 0 ? block_starts[i] : static_cast<int>(i);
    bool checked = false;
    for (int l = start; l <= static_cast<int>(i); ++l) {
      if (file.lines[static_cast<std::size_t>(l)].code.find("DRIFT_CHECK") !=
          std::string::npos) {
        checked = true;
        break;
      }
    }
    if (!checked) {
      report(ctx, file.rel, static_cast<int>(i), "index",
             "raw .data()[...] indexing with no DRIFT_CHECK in the "
             "enclosing function; use at()/operator() or add "
             "DRIFT_CHECK_INDEX");
    }
  }
}

void rule_logging(const Context& ctx, const LexedFile& file) {
  const bool covered =
      starts_with(file.rel, "src/") ||
      (starts_with(file.rel, "tools/") && !is_reporting_sink(file.rel));
  if (!covered) return;
  static const std::regex kStdio(R"((^|[^A-Za-z0-9_:])(printf|fprintf|puts)\s*\()");
  for (std::size_t i = 0; i < file.lines.size(); ++i) {
    const std::string& code = file.lines[i].code;
    for (const char* tok : {"std::cout", "std::cerr", "std::clog"}) {
      if (find_token(code, tok) != std::string::npos) {
        report(ctx, file.rel, static_cast<int>(i), "logging",
               std::string("direct stream output '") + tok +
                   "'; use util/logging.hpp (DRIFT_LOG_*)");
      }
    }
    if (std::regex_search(code, kStdio)) {
      report(ctx, file.rel, static_cast<int>(i), "logging",
             "direct stdio output; use util/logging.hpp (DRIFT_LOG_*)");
    }
  }
}

void rule_obs(const Context& ctx, const LexedFile& file) {
  // Hot paths must cache metric handles: a registry lookup-by-string
  // (.counter("...") / .gauge / .histogram / .layer_record) pays a
  // mutex acquisition and a map walk, so calling one per loop
  // iteration turns instrumentation into contention.  Lines that cache
  // into a `static` (what the DRIFT_OBS_* macros expand to) are fine.
  // src/obs/ itself — the macro definitions and the registry — is
  // exempt.
  const bool covered =
      (starts_with(file.rel, "src/") && !starts_with(file.rel, "src/obs/")) ||
      (starts_with(file.rel, "tools/") && !is_reporting_sink(file.rel));
  if (!covered) return;
  static const std::regex kLookup(
      R"(\.\s*(counter|gauge|histogram|layer_record)\s*\()");
  int loop_depth = 0;
  std::vector<bool> loop_stack;  // one flag per open brace: loop frame?
  for (std::size_t i = 0; i < file.lines.size(); ++i) {
    const std::string& code = file.lines[i].code;
    // Flag before updating brace state: a lookup is in a loop when a
    // loop frame is already open, or a for/while precedes it in-line.
    std::smatch m;
    if (std::regex_search(code, m, kLookup)) {
      const std::string before =
          code.substr(0, static_cast<std::size_t>(m.position(0)));
      const bool loop_on_line =
          find_token(before, "for") != std::string::npos ||
          find_token(before, "while") != std::string::npos;
      const bool cached = find_token(code, "static") != std::string::npos;
      if ((loop_depth > 0 || loop_on_line) && !cached) {
        report(ctx, file.rel, static_cast<int>(i), "obs",
               "metrics registry lookup-by-string inside a loop; cache "
               "the handle outside the loop (static pointer or the "
               "DRIFT_OBS_* macros)");
      }
    }
    // A '{' opens a loop frame when for/while/do appears between the
    // previous statement boundary and the brace.  Braceless loop
    // bodies are covered by the in-line check above.
    std::size_t scan_from = 0;
    int paren_depth = 0;
    for (std::size_t p = 0; p < code.size(); ++p) {
      const char c = code[p];
      if (c == '(') {
        ++paren_depth;
      } else if (c == ')') {
        if (paren_depth > 0) --paren_depth;
      } else if (c == '{') {
        const std::string head = code.substr(scan_from, p - scan_from);
        const bool is_loop =
            find_token(head, "for") != std::string::npos ||
            find_token(head, "while") != std::string::npos ||
            find_token(head, "do") != std::string::npos;
        loop_stack.push_back(is_loop);
        if (is_loop) ++loop_depth;
        scan_from = p + 1;
      } else if (c == '}') {
        if (!loop_stack.empty()) {
          if (loop_stack.back()) --loop_depth;
          loop_stack.pop_back();
        }
        scan_from = p + 1;
      } else if (c == ';' && paren_depth == 0) {
        // A for-header's semicolons sit inside its parentheses and must
        // not clip the 'for' token off the statement head.
        scan_from = p + 1;
      }
    }
  }
}

}  // namespace

void add_file_rules(std::vector<Rule>& rules) {
  rules.push_back({"thread",
                   "parallelism is routed through util/thread_pool.hpp; no "
                   "raw std::thread / std::async / OpenMP elsewhere",
                   rule_thread, nullptr});
  rules.push_back({"random",
                   "every stochastic or timing decision in src/ flows "
                   "through the seeded util/rng.hpp Rng",
                   rule_random, nullptr});
  rules.push_back({"oracle-include",
                   "src/ref/ oracles include only src/ref/ and standard "
                   "headers; non-test code never includes tests/",
                   rule_oracle_include, nullptr});
  rules.push_back({"narrow",
                   "casts to int8/16/32-carrying types in src/{core,nn}/ "
                   "carry a justified allow(narrow)",
                   rule_narrow, nullptr});
  rules.push_back({"intrinsic",
                   "raw SIMD intrinsics are confined to src/nn/simd/; "
                   "dispatch-boundary consumers carry a justified allow",
                   rule_intrinsic, nullptr});
  rules.push_back({"index",
                   ".data()[...] indexing requires a DRIFT_CHECK in the "
                   "enclosing function",
                   rule_index, nullptr});
  rules.push_back({"logging",
                   "src/ and non-sink tools/ code logs through "
                   "util/logging.hpp, not raw stdio/iostream",
                   rule_logging, nullptr});
  rules.push_back({"obs",
                   "metrics registry lookups-by-string are cached outside "
                   "loops (static handle or DRIFT_OBS_* macros)",
                   rule_obs, nullptr});
}

}  // namespace drift::lint
