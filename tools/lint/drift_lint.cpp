// drift_lint — project-specific static analysis for the Drift repo.
//
// Walks the given directories (default: src tools bench tests), lexes
// every C++ source file, builds the whole-program model (symbol table,
// include graph, approximate call graph — see graph.hpp), and enforces
// the determinism / oracle-independence / numeric-safety / layering
// invariants described in rules.hpp and DESIGN.md "Static analysis"
// (+ "Static analysis v2").
//
// Usage:
//   drift_lint [--root DIR] [--format=text|json|sarif]
//              [--ratchet FILE] [--exclude SUBSTR]... [dir ...]
//
// Exit codes: 0 clean (or within ratchet budgets), 1 violations found
// (or some ratchet budget exceeded), 2 usage or I/O error.
//
// Output is deterministic (files walked in sorted order, violations
// sorted by file/line/rule) so `--format=json` and `--format=sarif`
// can be asserted exactly by tests/lint/.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "output.hpp"
#include "rules.hpp"

namespace fs = std::filesystem;

namespace {

struct Options {
  fs::path root = ".";
  std::string format = "text";
  std::string ratchet_path;
  std::vector<std::string> excludes;
  std::vector<std::string> dirs;
};

bool has_lintable_extension(const fs::path& p) {
  static const std::set<std::string> kExts = {".cpp", ".hpp", ".h", ".cc",
                                              ".hh", ".cxx"};
  return kExts.count(p.extension().string()) > 0;
}

/// Directories never walked: build trees, VCS state, and lint fixture
/// corpora (tests/lint/fixtures holds files with intentional
/// violations).
bool is_skipped_dir(const std::string& name) {
  return name == ".git" || name == "fixtures" ||
         name.rfind("build", 0) == 0;
}

std::string to_rel(const fs::path& p, const fs::path& root) {
  return fs::relative(p, root).generic_string();
}

std::vector<std::string> collect_files(const Options& opt) {
  std::vector<std::string> rels;
  for (const auto& dir : opt.dirs) {
    const fs::path base = opt.root / dir;
    if (!fs::exists(base)) continue;
    auto it = fs::recursive_directory_iterator(base);
    for (const auto& entry : it) {
      if (entry.is_directory() &&
          is_skipped_dir(entry.path().filename().string())) {
        it.disable_recursion_pending();
        continue;
      }
      if (!entry.is_regular_file() || !has_lintable_extension(entry.path())) {
        continue;
      }
      const std::string rel = to_rel(entry.path(), opt.root);
      const bool excluded =
          std::any_of(opt.excludes.begin(), opt.excludes.end(),
                      [&rel](const std::string& e) {
                        return rel.find(e) != std::string::npos;
                      });
      if (!excluded) rels.push_back(rel);
    }
  }
  std::sort(rels.begin(), rels.end());
  rels.erase(std::unique(rels.begin(), rels.end()), rels.end());
  return rels;
}

int usage() {
  std::cerr << "usage: drift_lint [--root DIR] [--format=text|json|sarif] "
               "[--ratchet FILE] [--exclude SUBSTR]... [dir ...]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (++i >= argc) return usage();
      opt.root = argv[i];
    } else if (arg.rfind("--format=", 0) == 0) {
      opt.format = arg.substr(9);
      if (opt.format != "text" && opt.format != "json" &&
          opt.format != "sarif") {
        return usage();
      }
    } else if (arg == "--ratchet") {
      if (++i >= argc) return usage();
      opt.ratchet_path = argv[i];
    } else if (arg == "--exclude") {
      if (++i >= argc) return usage();
      opt.excludes.push_back(argv[i]);
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      opt.dirs.push_back(arg);
    }
  }
  if (opt.dirs.empty()) opt.dirs = {"src", "tools", "bench", "tests"};
  if (!fs::exists(opt.root)) {
    std::cerr << "drift_lint: root does not exist: " << opt.root << "\n";
    return 2;
  }
  opt.root = fs::canonical(opt.root);

  const std::vector<std::string> rels = collect_files(opt);
  std::vector<drift::lint::LexedFile> files;
  files.reserve(rels.size());
  for (const auto& rel : rels) {
    const fs::path abs = opt.root / rel;
    std::ifstream in(abs, std::ios::binary);
    if (!in) {
      std::cerr << "drift_lint: cannot read " << abs << "\n";
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    files.push_back(drift::lint::lex_file(abs, rel, buf.str()));
  }

  const auto violations = drift::lint::run_rules(files);
  if (opt.format == "json") {
    drift::lint::print_json(violations, files.size());
  } else if (opt.format == "sarif") {
    drift::lint::print_sarif(violations);
  } else {
    drift::lint::print_text(violations, files.size());
  }

  if (!opt.ratchet_path.empty()) {
    std::map<std::string, int> budgets;
    if (!drift::lint::load_ratchet(opt.ratchet_path, budgets)) {
      std::cerr << "drift_lint: cannot read ratchet file "
                << opt.ratchet_path << "\n";
      return 2;
    }
    return drift::lint::apply_ratchet(violations, budgets);
  }
  return violations.empty() ? 0 : 1;
}
