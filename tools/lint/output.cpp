#include "output.hpp"

#include <cstdio>
#include <fstream>
#include <iostream>
#include <regex>
#include <sstream>

namespace drift::lint {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void print_text(const std::vector<Violation>& violations,
                std::size_t files_scanned) {
  for (const auto& v : violations) {
    std::cout << v.file << ":" << v.line << ": [" << v.rule << "] "
              << v.message << "\n";
  }
  std::cerr << "drift_lint: " << violations.size() << " violation(s) in "
            << files_scanned << " file(s) scanned\n";
}

void print_json(const std::vector<Violation>& violations,
                std::size_t files_scanned) {
  std::cout << "{\n  \"files_scanned\": " << files_scanned
            << ",\n  \"violation_count\": " << violations.size()
            << ",\n  \"violations\": [";
  for (std::size_t i = 0; i < violations.size(); ++i) {
    const auto& v = violations[i];
    std::cout << (i == 0 ? "\n" : ",\n")
              << "    {\"file\": \"" << json_escape(v.file)
              << "\", \"line\": " << v.line << ", \"rule\": \""
              << json_escape(v.rule) << "\", \"message\": \""
              << json_escape(v.message) << "\"}";
  }
  std::cout << (violations.empty() ? "]\n}\n" : "\n  ]\n}\n");
}

void print_sarif(const std::vector<Violation>& violations) {
  const auto& rules = rule_registry();
  std::map<std::string, std::size_t> rule_index;
  for (std::size_t i = 0; i < rules.size(); ++i) {
    rule_index[rules[i].id] = i;
  }

  std::cout << "{\n"
            << "  \"$schema\": "
               "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
            << "  \"version\": \"2.1.0\",\n"
            << "  \"runs\": [\n"
            << "    {\n"
            << "      \"tool\": {\n"
            << "        \"driver\": {\n"
            << "          \"name\": \"drift_lint\",\n"
            << "          \"informationUri\": "
               "\"DESIGN.md#static-analysis-v2\",\n"
            << "          \"rules\": [";
  for (std::size_t i = 0; i < rules.size(); ++i) {
    std::cout << (i == 0 ? "\n" : ",\n")
              << "            {\"id\": \"" << json_escape(rules[i].id)
              << "\", \"shortDescription\": {\"text\": \""
              << json_escape(rules[i].summary) << "\"}}";
  }
  std::cout << "\n          ]\n"
            << "        }\n"
            << "      },\n"
            << "      \"results\": [";
  for (std::size_t i = 0; i < violations.size(); ++i) {
    const auto& v = violations[i];
    const auto it = rule_index.find(v.rule);
    std::cout << (i == 0 ? "\n" : ",\n")
              << "        {\"ruleId\": \"" << json_escape(v.rule) << "\"";
    if (it != rule_index.end()) {
      std::cout << ", \"ruleIndex\": " << it->second;
    }
    std::cout << ", \"level\": \"error\", \"message\": {\"text\": \""
              << json_escape(v.message)
              << "\"}, \"locations\": [{\"physicalLocation\": "
                 "{\"artifactLocation\": {\"uri\": \""
              << json_escape(v.file)
              << "\"}, \"region\": {\"startLine\": " << v.line << "}}}]}";
  }
  std::cout << (violations.empty() ? "]\n" : "\n      ]\n")
            << "    }\n"
            << "  ]\n"
            << "}\n";
}

bool load_ratchet(const std::string& path,
                  std::map<std::string, int>& budgets) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  // Flat object of "rule": count pairs; anything else in the file is
  // ignored, so a trailing comment key is harmless.
  static const std::regex kPair(R"#("([A-Za-z_-]+)"\s*:\s*(\d+))#");
  auto it = std::sregex_iterator(text.begin(), text.end(), kPair);
  bool any = false;
  for (; it != std::sregex_iterator(); ++it) {
    budgets[(*it)[1].str()] = std::stoi((*it)[2].str());
    any = true;
  }
  return any || text.find('{') != std::string::npos;
}

int apply_ratchet(const std::vector<Violation>& violations,
                  const std::map<std::string, int>& budgets) {
  std::map<std::string, int> counts;
  for (const auto& v : violations) ++counts[v.rule];

  int exceeded = 0;
  for (const auto& [rule, count] : counts) {
    const auto it = budgets.find(rule);
    const int budget = it == budgets.end() ? 0 : it->second;
    if (count > budget) {
      std::cerr << "drift_lint: ratchet EXCEEDED for rule '" << rule
                << "': " << count << " > budget " << budget << "\n";
      ++exceeded;
    } else {
      std::cerr << "drift_lint: ratchet ok for rule '" << rule << "': "
                << count << " <= budget " << budget << "\n";
    }
  }
  // Budgets that are now over-generous invite regressions; nudge them
  // down but do not fail the gate.
  for (const auto& [rule, budget] : budgets) {
    if (budget > 0 && counts.find(rule) == counts.end()) {
      std::cerr << "drift_lint: ratchet budget for rule '" << rule
                << "' can be lowered to 0\n";
    }
  }
  return exceeded == 0 ? 0 : 1;
}

}  // namespace drift::lint
