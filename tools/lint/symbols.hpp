// Heuristic C++ declaration/reference extraction for drift_lint v2.
//
// This is NOT a parser: it is a brace/paren state machine over the
// lexed code channel (comments removed, literals blanked — see
// lexed_file.hpp) that recovers just enough structure for the graph
// analyses in analyses.cpp:
//
//   * namespaces, classes and function definitions with body line
//     ranges and best-effort qualified names,
//   * call sites (identifier followed by '('), giving an approximate
//     over-inclusive call graph,
//   * resolved include edges,
//   * module-qualified symbol references (`serve::`, `accel::`, ...)
//     for layering checks beyond #include lines,
//   * unordered-container declarations and iteration sites,
//   * parallel_for / pool-submit lambda sites with capture lists and
//     body ranges,
//   * the per-file identifier set (for cross-TU reference counting).
//
// Heuristic parsing trades soundness for zero dependencies: it never
// misparses into a crash, and the analyses built on it are lint-grade
// (false positives are suppressible, see rules.hpp).  Preprocessor
// lines are blanked before scanning so macro bodies cannot desync the
// brace state.
#pragma once

#include <set>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "lexed_file.hpp"

namespace drift::lint {

struct FunctionSym {
  std::string name;   ///< unqualified
  std::string qname;  ///< Namespace::Class::name, best effort
  int decl_line = 0;  ///< 0-based line of the signature's name
  int body_begin = -1;  ///< 0-based first body line; -1 = declaration only
  int body_end = -1;    ///< 0-based last body line (inclusive)
  bool member = false;      ///< declared at class scope
  bool is_template = false;
  bool is_virtual = false;
  bool exported = false;  ///< header declaration visible across TUs
  bool writes_file = false;  ///< body opens an output stream (artifact sink)
  std::set<std::string> calls;  ///< callee name tokens inside the body
};

/// A module-qualified reference such as `serve::Simulator` on a line.
struct NsRef {
  int line = 0;          ///< 0-based
  std::string module_ns;  ///< module the namespace maps to ("simd", ...)
};

/// Iteration over a container declared as unordered_{map,set}.
struct UnorderedIter {
  int line = 0;  ///< 0-based
  int func = -1;  ///< index into FileSyms::functions (-1 = no function)
  std::string container;
};

/// A parallel_for(...) / pool.submit(...) call taking a lambda.
struct ParallelSite {
  int line = 0;           ///< 0-based line of the call token
  std::string captures;   ///< text inside the lambda's [...]
  std::vector<std::string> params;  ///< lambda parameter names
  int body_begin = -1;    ///< 0-based lambda body line range
  int body_end = -1;
  std::string body;       ///< lambda body code text
};

struct FileSyms {
  std::string rel;
  std::string module_name;  ///< src/ module ("" outside src/)
  bool is_header = false;
  std::vector<std::pair<int, std::string>> includes;  ///< 0-based line, rel
  std::vector<FunctionSym> functions;
  std::vector<NsRef> ns_refs;
  std::set<std::string> unordered_names;
  std::vector<UnorderedIter> unordered_iters;
  std::vector<ParallelSite> parallel_sites;
  /// Loop nesting depth at the start of each line (for/while/do braces
  /// only) plus whether a loop keyword appears on the line itself.
  std::vector<int> loop_depth;
  std::vector<bool> loop_on_line;
  /// Every identifier token in the file (code channel).
  std::unordered_set<std::string> idents;
};

/// Maps a walked path to its module: "src/nn/simd/..." -> "simd",
/// "src/<m>/..." -> m, anything else -> "".
std::string module_of(const std::string& rel);

FileSyms extract_symbols(const LexedFile& file,
                         const std::unordered_set<std::string>& file_set);

}  // namespace drift::lint
