#include "graph.hpp"

#include <algorithm>
#include <deque>

namespace drift::lint {

int module_rank(const std::string& module_name) {
  if (module_name == "util") return 0;
  if (module_name == "tensor" || module_name == "stats") return 1;
  if (module_name == "core" || module_name == "nn" || module_name == "dram" ||
      module_name == "energy" || module_name == "systolic" ||
      module_name == "simd") {
    return 2;
  }
  if (module_name == "graph") return 3;
  if (module_name == "accel") return 4;
  if (module_name == "obs") return 5;
  if (module_name == "serve") return 6;
  return -1;  // ref (isolated) and non-src paths
}

RepoModel build_model(const std::vector<LexedFile>& files,
                      const std::unordered_set<std::string>& file_set) {
  RepoModel model;
  model.files.reserve(files.size());
  for (const auto& file : files) {
    model.file_index[file.rel] = static_cast<int>(model.files.size());
    model.files.push_back(extract_symbols(file, file_set));
  }

  // Flatten functions and index them by unqualified name.
  for (std::size_t f = 0; f < model.files.size(); ++f) {
    const auto& syms = model.files[f];
    for (std::size_t l = 0; l < syms.functions.size(); ++l) {
      const int id = static_cast<int>(model.fn_file.size());
      model.fn_file.push_back(static_cast<int>(f));
      model.fn_local.push_back(static_cast<int>(l));
      model.fn_global_[static_cast<std::int64_t>(f) << 20 |
                       static_cast<std::int64_t>(l)] = id;
      model.fns_by_name[syms.functions[l].name].push_back(id);
    }
  }

  // Reverse-BFS artifact-writer reachability over the name-based call
  // graph.  Seeds are the functions that open an output stream
  // themselves; the wave front propagates to every caller whose body
  // names a reached function as a call token.  Deterministic: ids are
  // visited in increasing order from a FIFO.
  const int n = static_cast<int>(model.fn_file.size());
  model.reaches_sink.assign(static_cast<std::size_t>(n), false);
  model.sink_via.assign(static_cast<std::size_t>(n), "");

  // callers_of[id] = every function whose call set names fn(id).name.
  // Built name-first so the fan-out is shared across same-named
  // definitions.
  std::unordered_map<std::string, std::vector<int>> callers_of_name;
  for (int id = 0; id < n; ++id) {
    for (const auto& callee : model.fn(id).calls) {
      if (model.fns_by_name.count(callee)) {
        callers_of_name[callee].push_back(id);
      }
    }
  }

  std::deque<int> queue;
  for (int id = 0; id < n; ++id) {
    if (model.fn(id).writes_file) {
      model.reaches_sink[static_cast<std::size_t>(id)] = true;
      model.sink_via[static_cast<std::size_t>(id)] = model.fn(id).qname;
      queue.push_back(id);
    }
  }
  while (!queue.empty()) {
    const int id = queue.front();
    queue.pop_front();
    const auto it = callers_of_name.find(model.fn(id).name);
    if (it == callers_of_name.end()) continue;
    for (const int caller : it->second) {
      if (model.reaches_sink[static_cast<std::size_t>(caller)]) continue;
      model.reaches_sink[static_cast<std::size_t>(caller)] = true;
      model.sink_via[static_cast<std::size_t>(caller)] =
          model.sink_via[static_cast<std::size_t>(id)];
      queue.push_back(caller);
    }
  }

  return model;
}

}  // namespace drift::lint
