// Graph-level analyses for drift_lint v2, built on the whole-program
// model in graph.hpp.  Registered through add_graph_rules (rules.hpp)
// so they share suppression handling and output plumbing with the
// lexer rules.
//
// Rule catalog (ids match rules.hpp and DESIGN.md "Static analysis
// v2"):
//
//   layer        module layering DAG over include edges AND qualified
//                symbol references
//   unordered    unordered-container iteration on a call path to an
//                artifact writer
//   float-accum  float += accumulation in a loop outside src/nn/simd/
//   rng-stream   raw std engine/distribution construction outside
//                util/rng.hpp
//   race         parallel lambda writing a by-reference capture
//                without atomics or disjoint-slot indexing
//   atomic-order memory_order_relaxed outside src/obs/
//   dead-api     exported header symbol with zero cross-TU references
#pragma once

#include <vector>

#include "rules.hpp"

namespace drift::lint {

// add_graph_rules(std::vector<Rule>&) is declared in rules.hpp; this
// header exists so tests and the CLI can name the analysis surface
// explicitly.

}  // namespace drift::lint
