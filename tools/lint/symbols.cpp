#include "symbols.hpp"

#include <algorithm>
#include <cctype>
#include <regex>

#include "text.hpp"

namespace drift::lint {

namespace {

const std::unordered_set<std::string>& keyword_set() {
  static const std::unordered_set<std::string> kKeywords = {
      "if",     "for",    "while",    "switch", "catch",   "return",
      "sizeof", "new",    "delete",   "throw",  "do",      "else",
      "case",   "default", "alignof", "alignas", "decltype", "co_await",
      "co_return", "co_yield", "static_assert", "noexcept", "requires"};
  return kKeywords;
}

/// Code channel joined with '\n', preprocessor lines blanked (a macro
/// body's braces/parens must not desync the frame stack), with a
/// char-offset -> line map.
struct Joined {
  std::string text;
  std::vector<int> line_of;
};

Joined join_code(const LexedFile& file) {
  Joined j;
  j.text.reserve(file.lines.size() * 40);
  bool pp_continued = false;
  for (std::size_t i = 0; i < file.lines.size(); ++i) {
    const std::string& code = file.lines[i].code;
    const std::string& raw = file.lines[i].raw;
    const std::string t = trim(raw);
    const bool pp = pp_continued || (!t.empty() && t[0] == '#');
    pp_continued = pp && !t.empty() && t.back() == '\\';
    const int line = static_cast<int>(i);
    if (pp) {
      j.text.append(code.size(), ' ');
      j.line_of.insert(j.line_of.end(), code.size(), line);
    } else {
      j.text += code;
      j.line_of.insert(j.line_of.end(), code.size(), line);
    }
    j.text += '\n';
    j.line_of.push_back(line);
  }
  return j;
}

std::size_t skip_ws(const std::string& s, std::size_t p) {
  while (p < s.size() &&
         (s[p] == ' ' || s[p] == '\t' || s[p] == '\n')) {
    ++p;
  }
  return p;
}

/// Walks back from `end` (exclusive) over `A::B::name`, returning the
/// chain ("A::B::name") and the unqualified last component.
std::pair<std::string, std::string> ident_chain_before(
    const std::string& s, std::size_t end) {
  std::size_t p = end;
  while (p > 0 && (s[p - 1] == ' ' || s[p - 1] == '\t' || s[p - 1] == '\n')) {
    --p;
  }
  const std::size_t chain_end = p;
  std::string last;
  bool last_done = false;
  while (p > 0) {
    if (is_ident_char(s[p - 1])) {
      --p;
    } else if (p >= 2 && s[p - 1] == ':' && s[p - 2] == ':') {
      if (!last_done) {
        last = s.substr(p, chain_end - p);
        last_done = true;
      }
      p -= 2;
    } else {
      break;
    }
  }
  std::string chain = s.substr(p, chain_end - p);
  if (!last_done) last = chain;
  // Trim a leading "::" (global qualification).
  if (starts_with(chain, "::")) chain = chain.substr(2);
  const std::size_t c = last.find_last_of(':');
  if (c != std::string::npos) last = last.substr(c + 1);
  return {chain, last};
}

struct Frame {
  enum Kind { kNamespace, kClass, kFunction, kOther };
  Kind kind = kOther;
  std::string name;
  int fn_index = -1;           ///< into FileSyms::functions for kFunction
  std::size_t body_start = 0;  ///< offset just past the '{'
  bool access_public = true;   ///< current section of a kClass frame
};

/// Applies any `public:` / `protected:` / `private:` labels in the
/// statement buffer to the class frame they appear in.  Labels only
/// occur at class scope, where the class frame is the top of stack;
/// the last label in the buffer wins.
void update_access(std::vector<Frame>& stack, const std::string& pending) {
  if (stack.empty() || stack.back().kind != Frame::kClass) return;
  std::size_t best = std::string::npos;
  bool is_public = true;
  for (const char* label : {"public", "protected", "private"}) {
    const std::string tok = label;
    std::size_t from = 0;
    while (from < pending.size()) {
      const std::size_t hit = pending.find(tok, from);
      if (hit == std::string::npos) break;
      from = hit + tok.size();
      const bool left_ok = hit == 0 || !is_ident_char(pending[hit - 1]);
      const bool right_ok =
          from >= pending.size() || !is_ident_char(pending[from]);
      if (!left_ok || !right_ok) continue;
      const std::size_t colon = skip_ws(pending, from);
      if (colon >= pending.size() || pending[colon] != ':' ||
          (colon + 1 < pending.size() && pending[colon + 1] == ':')) {
        continue;  // base-clause access or qualified name, not a label
      }
      if (best == std::string::npos || hit > best) {
        best = hit;
        is_public = tok == "public";
      }
    }
  }
  if (best != std::string::npos) stack.back().access_public = is_public;
}

/// Whether the innermost class frame (if any) is in a public section.
bool innermost_class_public(const std::vector<Frame>& stack) {
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
    if (it->kind == Frame::kClass) return it->access_public;
  }
  return true;
}

std::string scope_qname(const std::vector<Frame>& stack) {
  std::string q;
  for (const auto& f : stack) {
    if ((f.kind == Frame::kNamespace || f.kind == Frame::kClass) &&
        !f.name.empty()) {
      if (!q.empty()) q += "::";
      q += f.name;
    }
  }
  return q;
}

/// Name of the innermost class frame ("" if none) — for ctor detection.
std::string innermost_class(const std::vector<Frame>& stack) {
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
    if (it->kind == Frame::kClass) return it->name;
  }
  return "";
}

/// The identifier right after `keyword` in `pending` ("" if absent).
std::string ident_after(const std::string& pending, const char* keyword) {
  const std::size_t k = find_token(pending, keyword);
  if (k == std::string::npos) return "";
  std::size_t p = skip_ws(pending, k + std::string(keyword).size());
  const std::size_t b = p;
  while (p < pending.size() && is_ident_char(pending[p])) ++p;
  return pending.substr(b, p - b);
}

/// Extracts the candidate function name from a signature buffer: the
/// identifier chain immediately before the first top-level '('.
/// Returns ("", "") when the buffer does not look like a function.
std::pair<std::string, std::string> function_name(const std::string& pending) {
  const std::size_t paren = pending.find('(');
  if (paren == std::string::npos) return {"", ""};
  const std::size_t eq = pending.find('=');
  if (eq != std::string::npos && eq < paren) return {"", ""};
  auto [chain, last] = ident_chain_before(pending, paren);
  if (last.empty() || keyword_set().count(last) || last == "operator") {
    return {"", ""};
  }
  return {chain, last};
}

void collect_calls(const std::string& text, std::set<std::string>& calls) {
  std::size_t p = 0;
  const std::size_t n = text.size();
  while (p < n) {
    if (!is_ident_char(text[p]) || (p > 0 && is_ident_char(text[p - 1]))) {
      ++p;
      continue;
    }
    std::size_t e = p;
    while (e < n && is_ident_char(text[e])) ++e;
    const std::string tok = text.substr(p, e - p);
    const std::size_t after = skip_ws(text, e);
    if (after < n && text[after] == '(' && !keyword_set().count(tok) &&
        !(tok[0] >= '0' && tok[0] <= '9')) {
      calls.insert(tok);
    }
    p = e;
  }
}

void collect_calls_and_sinks(const std::string& body, FunctionSym& fn) {
  collect_calls(body, fn.calls);
  fn.writes_file = find_token(body, "ofstream") != std::string::npos ||
                   fn.calls.count("fopen") > 0 || fn.calls.count("freopen") > 0;
}

/// Calls in the signature tail after the parameter list — constructor
/// member-initializer lists live there (`: enabled_(level >= gate())`),
/// and those calls must feed the call graph like body calls do.
void collect_initializer_calls(const std::string& pending, FunctionSym& fn) {
  const std::size_t open = pending.find('(');
  if (open == std::string::npos) return;
  int depth = 0;
  std::size_t close = std::string::npos;
  for (std::size_t p = open; p < pending.size(); ++p) {
    if (pending[p] == '(') ++depth;
    else if (pending[p] == ')') {
      if (--depth == 0) { close = p; break; }
    }
  }
  if (close == std::string::npos || close + 1 >= pending.size()) return;
  collect_calls(pending.substr(close + 1), fn.calls);
}

void collect_idents(const LexedFile& file, std::unordered_set<std::string>& out) {
  for (const auto& line : file.lines) {
    const std::string& code = line.code;
    std::size_t p = 0;
    while (p < code.size()) {
      if (is_ident_char(code[p]) && (p == 0 || !is_ident_char(code[p - 1])) &&
          !(code[p] >= '0' && code[p] <= '9')) {
        std::size_t e = p;
        while (e < code.size() && is_ident_char(code[e])) ++e;
        out.insert(code.substr(p, e - p));
        p = e;
      } else {
        ++p;
      }
    }
  }
}

const std::unordered_set<std::string>& module_ns_set() {
  static const std::unordered_set<std::string> kModules = {
      "util", "tensor", "stats", "core", "nn", "dram", "energy",
      "systolic", "accel", "obs", "serve", "ref", "log", "simd"};
  return kModules;
}

void collect_ns_refs(const LexedFile& file, FileSyms& out) {
  for (std::size_t i = 0; i < file.lines.size(); ++i) {
    const std::string& code = file.lines[i].code;
    std::size_t p = 0;
    while (p + 1 < code.size()) {
      if (!(code[p] == ':' && code[p + 1] == ':')) {
        ++p;
        continue;
      }
      // Found a "::" — walk the whole chain around it once, then skip
      // past it.
      std::size_t chain_begin = p;
      while (chain_begin > 0 &&
             (is_ident_char(code[chain_begin - 1]) ||
              code[chain_begin - 1] == ':')) {
        --chain_begin;
      }
      std::size_t chain_end = p;
      while (chain_end < code.size() &&
             (is_ident_char(code[chain_end]) || code[chain_end] == ':')) {
        ++chain_end;
      }
      const std::string chain = code.substr(chain_begin, chain_end - chain_begin);
      // Split on "::"; the first module-named component that is
      // *followed by* "::" (i.e. used as a namespace) wins.  `nn` looks
      // one component ahead so `nn::simd::` maps to the sealed simd
      // module, not nn.
      std::vector<std::string> comps;
      std::size_t b = 0;
      while (b <= chain.size()) {
        const std::size_t e = chain.find("::", b);
        comps.push_back(chain.substr(b, e == std::string::npos ? e : e - b));
        if (e == std::string::npos) break;
        b = e + 2;
      }
      for (std::size_t k = 0; k + 1 < comps.size(); ++k) {
        if (!module_ns_set().count(comps[k])) continue;
        std::string mod = comps[k] == "log" ? "util" : comps[k];
        if (comps[k] == "nn" && k + 2 < comps.size() &&
            comps[k + 1] == "simd") {
          mod = "simd";
        }
        out.ns_refs.push_back({static_cast<int>(i), mod});
        break;
      }
      p = chain_end;
    }
  }
}

void collect_unordered(const LexedFile& file, FileSyms& out) {
  static const std::regex kDecl(
      R"(unordered_(?:map|set)\s*<)");
  static const std::regex kName(R"(>\s*[&*]?\s*([A-Za-z_]\w*)\s*[;={(,)])");
  for (std::size_t i = 0; i < file.lines.size(); ++i) {
    const std::string& code = file.lines[i].code;
    if (code.find("unordered_") == std::string::npos) continue;
    if (!std::regex_search(code, kDecl)) continue;
    for (std::sregex_iterator it(code.begin(), code.end(), kName), end;
         it != end; ++it) {
      out.unordered_names.insert((*it)[1].str());
    }
  }
  if (out.unordered_names.empty()) return;

  static const std::regex kRangeFor(R"(for\s*\()");
  for (std::size_t i = 0; i < file.lines.size(); ++i) {
    const std::string& code = file.lines[i].code;
    // Range-for over an unordered container: `for (... : <expr>)` where
    // the range expression's trailing identifier names one.
    std::smatch m;
    if (std::regex_search(code, m, kRangeFor)) {
      const std::size_t open =
          static_cast<std::size_t>(m.position(0)) + m.length(0) - 1;
      int depth = 0;
      std::size_t colon = std::string::npos, close = std::string::npos;
      for (std::size_t p = open; p < code.size(); ++p) {
        if (code[p] == '(') ++depth;
        else if (code[p] == ')') {
          if (--depth == 0) { close = p; break; }
        } else if (code[p] == ':' && depth == 1 &&
                   (p + 1 >= code.size() || code[p + 1] != ':') &&
                   (p == 0 || code[p - 1] != ':')) {
          colon = p;
        }
      }
      if (colon != std::string::npos && close != std::string::npos) {
        std::string expr = trim(code.substr(colon + 1, close - colon - 1));
        const std::size_t dot = expr.find_last_of(".>");
        if (dot == std::string::npos) {
          // Bare identifier (possibly with trailing call — strip it).
          const std::size_t paren = expr.find('(');
          if (paren != std::string::npos) expr = trim(expr.substr(0, paren));
          if (out.unordered_names.count(expr)) {
            out.unordered_iters.push_back({static_cast<int>(i), -1, expr});
          }
        }
      }
    }
    // Explicit iterator loop: `c.begin()` / `c.cbegin()`.
    for (const auto& name : out.unordered_names) {
      const std::size_t pos = find_token(code, name);
      if (pos == std::string::npos) continue;
      const std::size_t after = skip_ws(code, pos + name.size());
      if (code.compare(after, 7, ".begin(") == 0 ||
          code.compare(after, 8, ".cbegin(") == 0) {
        out.unordered_iters.push_back({static_cast<int>(i), -1, name});
      }
    }
  }
}

void collect_loop_depth(const LexedFile& file, FileSyms& out) {
  out.loop_depth.assign(file.lines.size(), 0);
  out.loop_on_line.assign(file.lines.size(), false);
  int loop_depth = 0;
  std::vector<bool> loop_stack;
  for (std::size_t i = 0; i < file.lines.size(); ++i) {
    const std::string& code = file.lines[i].code;
    out.loop_depth[i] = loop_depth;
    out.loop_on_line[i] = find_token(code, "for") != std::string::npos ||
                          find_token(code, "while") != std::string::npos;
    std::size_t scan_from = 0;
    int paren_depth = 0;
    for (std::size_t p = 0; p < code.size(); ++p) {
      const char c = code[p];
      if (c == '(') {
        ++paren_depth;
      } else if (c == ')') {
        if (paren_depth > 0) --paren_depth;
      } else if (c == '{') {
        const std::string head = code.substr(scan_from, p - scan_from);
        const bool is_loop =
            find_token(head, "for") != std::string::npos ||
            find_token(head, "while") != std::string::npos ||
            find_token(head, "do") != std::string::npos;
        loop_stack.push_back(is_loop);
        if (is_loop) ++loop_depth;
        scan_from = p + 1;
      } else if (c == '}') {
        if (!loop_stack.empty()) {
          if (loop_stack.back()) --loop_depth;
          loop_stack.pop_back();
        }
        scan_from = p + 1;
      } else if (c == ';' && paren_depth == 0) {
        scan_from = p + 1;
      }
    }
  }
}

void collect_parallel_sites(const Joined& j, FileSyms& out) {
  const std::string& s = j.text;
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t tok = std::string::npos;
    for (const char* t : {"parallel_for", "submit"}) {
      std::size_t p = pos;
      while ((p = s.find(t, p)) != std::string::npos) {
        const bool left_ok = p == 0 || !is_ident_char(s[p - 1]);
        const std::size_t e = p + std::string(t).size();
        const bool right_ok = e >= s.size() || !is_ident_char(s[e]);
        if (left_ok && right_ok) break;
        p = e;
      }
      if (p != std::string::npos && (tok == std::string::npos || p < tok)) {
        tok = p;
      }
    }
    if (tok == std::string::npos) break;
    std::size_t p = tok;
    while (p < s.size() && is_ident_char(s[p])) ++p;
    p = skip_ws(s, p);
    if (p >= s.size() || s[p] != '(') {
      pos = tok + 1;
      continue;
    }
    // Inside the call's argument list: find the lambda capture '['.
    int depth = 0;
    std::size_t open_bracket = std::string::npos;
    for (std::size_t q = p; q < s.size(); ++q) {
      if (s[q] == '(') ++depth;
      else if (s[q] == ')') {
        if (--depth == 0) break;
      } else if (s[q] == '[' && depth >= 1) {
        open_bracket = q;
        break;
      }
    }
    if (open_bracket == std::string::npos) {
      pos = tok + 1;
      continue;
    }
    const std::size_t close_bracket = s.find(']', open_bracket);
    if (close_bracket == std::string::npos) break;
    ParallelSite site;
    site.line = j.line_of[tok];
    site.captures =
        s.substr(open_bracket + 1, close_bracket - open_bracket - 1);
    // Parameter list (optional for no-arg lambdas).
    std::size_t q = skip_ws(s, close_bracket + 1);
    if (q < s.size() && s[q] == '(') {
      int pd = 0;
      std::size_t params_end = q;
      for (std::size_t r = q; r < s.size(); ++r) {
        if (s[r] == '(') ++pd;
        else if (s[r] == ')') {
          if (--pd == 0) { params_end = r; break; }
        }
      }
      const std::string params = s.substr(q + 1, params_end - q - 1);
      std::size_t b = 0;
      while (b <= params.size()) {
        std::size_t e = params.find(',', b);
        const std::string piece =
            params.substr(b, e == std::string::npos ? e : e - b);
        auto [chain, last] = ident_chain_before(piece, piece.size());
        if (!last.empty()) site.params.push_back(last);
        if (e == std::string::npos) break;
        b = e + 1;
      }
      q = params_end + 1;
    }
    // Body: first '{' after specifiers, to its matching '}'.
    const std::size_t body_open = s.find('{', q);
    if (body_open == std::string::npos) break;
    int bd = 0;
    std::size_t body_close = std::string::npos;
    for (std::size_t r = body_open; r < s.size(); ++r) {
      if (s[r] == '{') ++bd;
      else if (s[r] == '}') {
        if (--bd == 0) { body_close = r; break; }
      }
    }
    if (body_close == std::string::npos) break;
    site.body_begin = j.line_of[body_open];
    site.body_end = j.line_of[body_close];
    site.body = s.substr(body_open + 1, body_close - body_open - 1);
    out.parallel_sites.push_back(std::move(site));
    pos = body_close + 1;
  }
}

}  // namespace

std::string module_of(const std::string& rel) {
  if (!starts_with(rel, "src/")) return "";
  if (starts_with(rel, "src/nn/simd/")) return "simd";
  const std::size_t slash = rel.find('/', 4);
  if (slash == std::string::npos) return "";
  return rel.substr(4, slash - 4);
}

FileSyms extract_symbols(const LexedFile& file,
                         const std::unordered_set<std::string>& file_set) {
  FileSyms out;
  out.rel = file.rel;
  out.module_name = module_of(file.rel);
  const std::string ext =
      file.rel.size() > 4 ? file.rel.substr(file.rel.find_last_of('.')) : "";
  out.is_header = ext == ".hpp" || ext == ".h" || ext == ".hh";

  for (std::size_t i = 0; i < file.lines.size(); ++i) {
    const auto inc = parse_include(file.lines[i].raw);
    if (inc && !inc->angled) {
      const auto resolved = resolve_include(file.rel, inc->path, file_set);
      if (resolved) out.includes.push_back({static_cast<int>(i), *resolved});
    }
  }

  collect_idents(file, out.idents);
  collect_ns_refs(file, out);
  collect_unordered(file, out);
  collect_loop_depth(file, out);

  const Joined j = join_code(file);
  collect_parallel_sites(j, out);

  // ---- frame scan: namespaces / classes / functions ----
  const std::string& s = j.text;
  std::vector<Frame> stack;
  std::string pending;
  std::vector<std::size_t> pending_off;  ///< source offset of each char

  const auto pending_line_of_name = [&](const std::string& name) -> int {
    const std::size_t p = find_token(pending, name);
    if (p == std::string::npos || pending_off.empty()) {
      return pending_off.empty() ? 0 : j.line_of[pending_off[0]];
    }
    return j.line_of[pending_off[p]];
  };

  const auto scope_is_type_or_ns = [&]() {
    return stack.empty() || stack.back().kind == Frame::kNamespace ||
           stack.back().kind == Frame::kClass;
  };

  for (std::size_t pos = 0; pos < s.size(); ++pos) {
    const char c = s[pos];
    if (c == '{') {
      update_access(stack, pending);
      Frame frame;
      frame.body_start = pos + 1;
      if (!scope_is_type_or_ns()) {
        frame.kind = Frame::kOther;
      } else if (find_token(pending, "namespace") != std::string::npos ||
                 find_token(pending, "extern") != std::string::npos) {
        frame.kind = Frame::kNamespace;
        auto [chain, last] = ident_chain_before(pending, pending.size());
        frame.name = chain;
      } else if ((find_token(pending, "class") != std::string::npos ||
                  find_token(pending, "struct") != std::string::npos ||
                  find_token(pending, "union") != std::string::npos ||
                  find_token(pending, "enum") != std::string::npos) &&
                 pending.find('(') == std::string::npos) {
        frame.kind = Frame::kClass;
        // `class` defaults to private sections, struct/union/enum to
        // public (enum-class bodies hold no functions anyway).
        frame.access_public =
            find_token(pending, "class") == std::string::npos ||
            find_token(pending, "enum") != std::string::npos;
        for (const char* kw : {"class", "struct", "union", "enum"}) {
          const std::string n = ident_after(pending, kw);
          if (!n.empty() && n != "class") {
            frame.name = n;
            break;
          }
        }
      } else {
        auto [chain, last] = function_name(pending);
        if (!last.empty()) {
          frame.kind = Frame::kFunction;
          FunctionSym fn;
          fn.name = last;
          const std::string scope = scope_qname(stack);
          fn.qname = scope.empty() ? chain : scope + "::" + chain;
          fn.decl_line = pending_line_of_name(last);
          fn.body_begin = j.line_of[pos];
          const std::string cls = innermost_class(stack);
          fn.member = !cls.empty();
          fn.is_template =
              find_token(pending, "template") != std::string::npos;
          fn.is_virtual = find_token(pending, "virtual") != std::string::npos;
          // Constructors/destructors are not independent API surface,
          // and private/protected members are not exported.
          fn.exported = out.is_header && fn.name != cls &&
                        pending.find('~') == std::string::npos &&
                        innermost_class_public(stack);
          collect_initializer_calls(pending, fn);
          frame.fn_index = static_cast<int>(out.functions.size());
          out.functions.push_back(std::move(fn));
        } else {
          frame.kind = Frame::kOther;
        }
      }
      stack.push_back(std::move(frame));
      pending.clear();
      pending_off.clear();
    } else if (c == '}') {
      if (!stack.empty()) {
        const Frame& top = stack.back();
        if (top.kind == Frame::kFunction && top.fn_index >= 0) {
          FunctionSym& fn = out.functions[static_cast<std::size_t>(top.fn_index)];
          fn.body_end = j.line_of[pos];
          collect_calls_and_sinks(
              s.substr(top.body_start, pos - top.body_start), fn);
        }
        stack.pop_back();
      }
      pending.clear();
      pending_off.clear();
    } else if (c == ';') {
      update_access(stack, pending);
      // Declaration-only function signatures at namespace/class scope
      // in headers: the exported API surface.
      if (out.is_header && scope_is_type_or_ns() &&
          pending.find('(') != std::string::npos &&
          find_token(pending, "delete") == std::string::npos &&
          find_token(pending, "default") == std::string::npos &&
          find_token(pending, "using") == std::string::npos &&
          find_token(pending, "typedef") == std::string::npos &&
          find_token(pending, "friend") == std::string::npos) {
        auto [chain, last] = function_name(pending);
        const std::string cls = innermost_class(stack);
        if (!last.empty() && last != cls &&
            pending.find('~') == std::string::npos) {
          FunctionSym fn;
          fn.name = last;
          const std::string scope = scope_qname(stack);
          fn.qname = scope.empty() ? chain : scope + "::" + chain;
          fn.decl_line = pending_line_of_name(last);
          fn.member = !cls.empty();
          fn.is_template =
              find_token(pending, "template") != std::string::npos;
          fn.is_virtual = find_token(pending, "virtual") != std::string::npos;
          fn.exported = innermost_class_public(stack);
          out.functions.push_back(std::move(fn));
        }
      }
      pending.clear();
      pending_off.clear();
    } else {
      pending += c;
      pending_off.push_back(pos);
    }
  }

  // Attribute unordered iteration sites to their enclosing function.
  for (auto& iter : out.unordered_iters) {
    for (std::size_t f = 0; f < out.functions.size(); ++f) {
      const FunctionSym& fn = out.functions[f];
      if (fn.body_begin >= 0 && fn.body_begin <= iter.line &&
          iter.line <= fn.body_end) {
        iter.func = static_cast<int>(f);
      }
    }
  }

  return out;
}

}  // namespace drift::lint
