#include "analyses.hpp"

#include <cctype>
#include <map>
#include <regex>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "graph.hpp"
#include "text.hpp"

namespace drift::lint {

namespace {

constexpr const char* kDagSpec =
    "util -> tensor/stats -> core/nn/dram/energy/systolic -> graph -> "
    "accel -> obs -> serve";

bool is_cpp_keyword(const std::string& s) {
  static const std::set<std::string> kKeywords = {
      "if",       "else",    "for",      "while",    "do",      "switch",
      "case",     "default", "return",   "break",    "continue", "goto",
      "new",      "delete",  "sizeof",   "typeid",   "this",    "true",
      "false",    "nullptr", "const",    "constexpr", "static",  "auto",
      "void",     "int",     "long",     "short",    "unsigned", "signed",
      "float",    "double",  "bool",     "char",     "struct",  "class",
      "enum",     "union",   "namespace", "using",   "template", "typename",
      "operator", "throw",   "try",      "catch",    "co_await", "co_return",
      "co_yield", "public",  "private",  "protected", "virtual", "override",
      "final",    "inline",  "extern",   "mutable",  "volatile", "noexcept",
      "explicit", "friend",  "typedef",  "decltype", "alignas", "alignof",
      "and",      "or",      "not",      "static_cast", "reinterpret_cast",
      "const_cast", "dynamic_cast"};
  return kKeywords.count(s) != 0;
}

bool all_caps(const std::string& s) {
  for (char c : s) {
    if (std::islower(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

// ---------------------------------------------------------------------
// layer: module layering DAG over include edges and qualified symbol
// references.
// ---------------------------------------------------------------------

/// Whether module `from` may reference module `to`.  Same-or-lower
/// rank is allowed (groups share a rank); obs is referenceable from
/// everywhere as the cross-cutting instrumentation sidecar.  simd as a
/// *target* is owned by the intrinsic rule and returns true here to
/// avoid double-reporting.
bool layer_edge_ok(const std::string& from, const std::string& to) {
  if (to == "simd") return true;   // intrinsic rule owns this boundary
  if (to == "obs") return true;    // instrumentation is cross-cutting
  if (to == "ref") return false;   // production code never calls oracles
  const int rf = module_rank(from);
  const int rt = module_rank(to);
  if (rf < 0 || rt < 0) return true;  // unknown module: out of scope
  return rt <= rf;
}

void analysis_layer(const Context& ctx, const RepoModel& model) {
  for (const auto& file : model.files) {
    const std::string& m = file.module_name;
    // ref's own includes are owned by oracle-include; non-src files
    // (tools, tests, bench, examples) sit above the whole DAG.
    if (m.empty() || m == "ref") continue;
    std::set<std::pair<int, std::string>> seen;
    for (const auto& [line, target_rel] : file.includes) {
      const std::string t = module_of(target_rel);
      if (t.empty() || t == m) continue;
      if (layer_edge_ok(m, t)) continue;
      if (!seen.insert({line, t}).second) continue;
      if (t == "ref") {
        report(ctx, file.rel, line, "layer",
               "production module '" + m +
                   "' depends on the src/ref/ oracles (include \"" +
                   target_rel +
                   "\"); oracles pin the code, the code never calls "
                   "its own oracle");
      } else {
        report(ctx, file.rel, line, "layer",
               "module '" + m + "' may not depend on module '" + t +
                   "' (include \"" + target_rel +
                   "\"); declared DAG: " + kDagSpec);
      }
    }
    for (const auto& ref : file.ns_refs) {
      const std::string& t = ref.module_ns;
      if (t.empty() || t == m) continue;
      if (layer_edge_ok(m, t)) continue;
      if (!seen.insert({ref.line, t}).second) continue;
      if (t == "ref") {
        report(ctx, file.rel, ref.line, "layer",
               "production module '" + m +
                   "' references the src/ref/ oracle namespace; oracles "
                   "pin the code, the code never calls its own oracle");
      } else {
        report(ctx, file.rel, ref.line, "layer",
               "module '" + m + "' references symbol in module '" + t +
                   "' against the declared DAG: " + kDagSpec);
      }
    }
  }
}

// ---------------------------------------------------------------------
// unordered: hash-order iteration on a call path to an artifact
// writer.
// ---------------------------------------------------------------------

void analysis_unordered(const Context& ctx, const RepoModel& model) {
  for (std::size_t f = 0; f < model.files.size(); ++f) {
    const auto& file = model.files[f];
    // Tests may iterate scratch containers into scratch files; the
    // committed artifacts are produced by src/, tools/ and bench/.
    if (starts_with(file.rel, "tests/")) continue;
    for (const auto& iter : file.unordered_iters) {
      if (iter.func < 0) continue;
      const int id = model.global_fn(static_cast<int>(f), iter.func);
      if (id < 0 || !model.reaches_sink[static_cast<std::size_t>(id)]) {
        continue;
      }
      const auto& fn =
          file.functions[static_cast<std::size_t>(iter.func)];
      report(ctx, file.rel, iter.line, "unordered",
             "iteration over unordered container '" + iter.container +
                 "' in '" + fn.qname +
                 "', which reaches artifact writer '" +
                 model.sink_via[static_cast<std::size_t>(id)] +
                 "'; hash order leaks into a committed artifact — use a "
                 "sorted container or sort before emitting");
    }
  }
}

// ---------------------------------------------------------------------
// float-accum: float += in a loop outside the canonical simd schedule.
// A file-scope rule: collects float-typed scalar declarations, then
// replays the rule_obs-style loop tracker to catch accumulation inside
// loop regions.
// ---------------------------------------------------------------------

void rule_float_accum(const Context& ctx, const LexedFile& file) {
  if (!starts_with(file.rel, "src/") ||
      starts_with(file.rel, "src/nn/simd/")) {
    return;
  }
  // Pass 1: float-typed scalar names.  `float\s+name` followed by an
  // initializer/terminator; `float*`, `float&` and `vector<float>` do
  // not match (star/ref breaks the adjacency, '<' is excluded before).
  static const std::regex kFloatDecl(
      R"((^|[^\w.<>:])float\s+([A-Za-z_]\w*)\s*[=;{,)])");
  std::set<std::string> float_names;
  for (const auto& line : file.lines) {
    auto it = std::sregex_iterator(line.code.begin(), line.code.end(),
                                   kFloatDecl);
    for (; it != std::sregex_iterator(); ++it) {
      float_names.insert((*it)[2].str());
    }
  }
  if (float_names.empty()) return;

  // Pass 2: loop tracking (same brace discipline as rule_obs) and
  // `name +=` detection against the collected set.
  int loop_depth = 0;
  std::vector<bool> loop_stack;
  for (std::size_t i = 0; i < file.lines.size(); ++i) {
    const std::string& code = file.lines[i].code;

    std::size_t pos = code.find("+=");
    while (pos != std::string::npos) {
      // Walk back over whitespace, then over the identifier.
      std::size_t e = pos;
      while (e > 0 && code[e - 1] == ' ') --e;
      std::size_t b = e;
      while (b > 0 && is_ident_char(code[b - 1])) --b;
      const std::string name = code.substr(b, e - b);
      const char before = b > 0 ? code[b - 1] : '\0';
      const bool bare = before != '.' && before != '>' && before != ']' &&
                        before != ')' && before != ':';
      if (bare && float_names.count(name)) {
        const std::string head = code.substr(0, b);
        const bool loop_on_line =
            find_token(head, "for") != std::string::npos ||
            find_token(head, "while") != std::string::npos;
        if (loop_depth > 0 || loop_on_line) {
          report(ctx, file.rel, static_cast<int>(i), "float-accum",
                 "float accumulator '" + name +
                     "' gains error per iteration; accumulate in double "
                     "(round once at the end) — only the src/nn/simd/ "
                     "canonical schedule may accumulate in float");
        }
      }
      pos = code.find("+=", pos + 2);
    }

    // Brace state update (paren-aware; mirrors rule_obs).
    std::size_t scan_from = 0;
    int paren_depth = 0;
    for (std::size_t p = 0; p < code.size(); ++p) {
      const char c = code[p];
      if (c == '(') {
        ++paren_depth;
      } else if (c == ')') {
        if (paren_depth > 0) --paren_depth;
      } else if (c == '{') {
        const std::string head = code.substr(scan_from, p - scan_from);
        const bool is_loop =
            find_token(head, "for") != std::string::npos ||
            find_token(head, "while") != std::string::npos ||
            find_token(head, "do") != std::string::npos;
        loop_stack.push_back(is_loop);
        if (is_loop) ++loop_depth;
        scan_from = p + 1;
      } else if (c == '}') {
        if (!loop_stack.empty()) {
          if (loop_stack.back()) --loop_depth;
          loop_stack.pop_back();
        }
        scan_from = p + 1;
      } else if (c == ';' && paren_depth == 0) {
        scan_from = p + 1;
      }
    }
  }
}

// ---------------------------------------------------------------------
// rng-stream / atomic-order: v2 token rules (file-scope).
// ---------------------------------------------------------------------

void rule_rng_stream(const Context& ctx, const LexedFile& file) {
  if (!starts_with(file.rel, "src/") || file.rel == "src/util/rng.hpp") {
    return;
  }
  static const char* kTokens[] = {
      "std::mt19937",         "std::mt19937_64",
      "std::minstd_rand",     "std::minstd_rand0",
      "std::default_random_engine",
      "std::uniform_int_distribution",
      "std::uniform_real_distribution",
      "std::normal_distribution",
      "std::bernoulli_distribution",
      "std::poisson_distribution",
      "std::exponential_distribution",
      "std::geometric_distribution",
      "std::discrete_distribution"};
  for (std::size_t i = 0; i < file.lines.size(); ++i) {
    const std::string& code = file.lines[i].code;
    if (code.find("std::") == std::string::npos) continue;
    for (const char* tok : kTokens) {
      if (find_token(code, tok) != std::string::npos) {
        report(ctx, file.rel, static_cast<int>(i), "rng-stream",
               std::string("raw engine/distribution '") + tok +
                   "' outside util/rng.hpp; draw from a seeded Rng "
                   "stream so replays stay bit-identical");
      }
    }
  }
}

void rule_atomic_order(const Context& ctx, const LexedFile& file) {
  if (!starts_with(file.rel, "src/") || starts_with(file.rel, "src/obs/")) {
    return;
  }
  for (std::size_t i = 0; i < file.lines.size(); ++i) {
    if (find_token(file.lines[i].code, "memory_order_relaxed") !=
        std::string::npos) {
      report(ctx, file.rel, static_cast<int>(i), "atomic-order",
             "memory_order_relaxed outside the src/obs/ metric shards; "
             "justify the ordering argument with '// drift-lint: "
             "allow(atomic-order) — <why relaxed is sound here>'");
    }
  }
}

// ---------------------------------------------------------------------
// race: parallel lambda mutating shared state through a by-reference
// capture.
// ---------------------------------------------------------------------

/// Names declared inside the lambda body (plus its parameters): writes
/// to these are thread-private.  Over-inclusive by design — a name
/// that *looks* declared anywhere in the body is treated as local.
std::set<std::string> body_locals(const ParallelSite& site) {
  std::set<std::string> locals(site.params.begin(), site.params.end());
  static const std::regex kDecl(
      R"((?:^|[;{(,]|\bfor\s*\()\s*(?:const\s+)?[A-Za-z_][\w:]*)"
      R"((?:\s*<[^<>;{}]*>)?(?:\s*[&*])?\s+([A-Za-z_]\w*)\s*(?:=[^=]|;|\{|:|,|\)))");
  auto it = std::sregex_iterator(site.body.begin(), site.body.end(), kDecl);
  for (; it != std::sregex_iterator(); ++it) {
    locals.insert((*it)[1].str());
  }
  return locals;
}

void analysis_race(const Context& ctx, const RepoModel& model) {
  for (const auto& file : model.files) {
    if (!starts_with(file.rel, "src/")) continue;
    for (const auto& site : file.parallel_sites) {
      if (site.captures.find('&') == std::string::npos) continue;
      if (site.body.empty()) continue;
      const std::set<std::string> locals = body_locals(site);
      std::set<std::string> flagged;  // one diagnostic per name per site
      const std::string& body = site.body;
      for (std::size_t p = 0; p < body.size();) {
        if (!is_ident_char(body[p]) ||
            (std::isdigit(static_cast<unsigned char>(body[p])) &&
             (p == 0 || !is_ident_char(body[p - 1])))) {
          ++p;
          continue;
        }
        std::size_t b = p;
        while (p < body.size() && is_ident_char(body[p])) ++p;
        const std::string name = body.substr(b, p - b);
        // Skip prefixed (member/qualified/deref) and non-bare uses;
        // subscripted writes (`slots[i] = ...`) never present a bare
        // ident before the operator, so disjoint-slot indexing passes.
        std::size_t pb = b;
        while (pb > 0 && body[pb - 1] == ' ') --pb;
        const char before = pb > 0 ? body[pb - 1] : '\0';
        if (before == '.' || before == '>' || before == ']' ||
            before == ')' || before == '*' || before == ':' ||
            before == '&') {
          continue;
        }
        if (is_cpp_keyword(name) || locals.count(name)) continue;
        // Operator after the ident (skipping whitespace).
        std::size_t a = p;
        while (a < body.size() && (body[a] == ' ' || body[a] == '\n')) ++a;
        bool write = false;
        if (a < body.size()) {
          const char c0 = body[a];
          const char c1 = a + 1 < body.size() ? body[a + 1] : '\0';
          if (c0 == '=' && c1 != '=') {
            write = true;
          } else if ((c0 == '+' || c0 == '-') && c1 == c0) {
            write = true;  // x++ / x--
          } else if ((c0 == '+' || c0 == '-' || c0 == '*' || c0 == '/' ||
                      c0 == '%' || c0 == '&' || c0 == '|' || c0 == '^') &&
                     c1 == '=') {
            write = true;  // compound assignment
          }
        }
        if (!write || !flagged.insert(name).second) continue;
        const int line =
            site.body_begin +
            static_cast<int>(std::count(body.begin(),
                                        body.begin() +
                                            static_cast<std::ptrdiff_t>(b),
                                        '\n'));
        report(ctx, file.rel, line, "race",
               "parallel lambda writes captured-by-reference '" + name +
                   "' from every worker; use an atomic, a per-worker "
                   "slot indexed by the loop variable, or a reduction");
      }
    }
  }
}

// ---------------------------------------------------------------------
// dead-api: exported header symbol with zero cross-TU references.
// ---------------------------------------------------------------------

void analysis_dead_api(const Context& ctx, const RepoModel& model) {
  // Every callee name seen in any extracted function body.  A call
  // site in the paired .cpp is a real use (the accessor feeds its own
  // module's implementation), even though the pair's ident set is
  // excluded below so the definition line itself does not count.
  std::set<std::string> called;
  for (const auto& f : model.files) {
    for (const auto& fn : f.functions) {
      called.insert(fn.calls.begin(), fn.calls.end());
    }
  }
  for (const auto& file : model.files) {
    if (!file.is_header || !starts_with(file.rel, "src/")) continue;
    // The implementation file sharing the header's stem is the same
    // logical TU: a reference there does not make the symbol public.
    std::string pair_cpp = file.rel;
    const std::size_t dot = pair_cpp.rfind('.');
    if (dot != std::string::npos) pair_cpp.replace(dot, std::string::npos, ".cpp");

    std::set<std::string> handled;  // dedup overload sets per header
    for (const auto& fn : file.functions) {
      if (!fn.exported || fn.is_template || fn.is_virtual) continue;
      if (fn.name.size() < 4 || all_caps(fn.name) || fn.name[0] == '_' ||
          fn.name == "main") {
        continue;
      }
      // detail:: namespaces are internal by convention; their symbols
      // are typically reached through macros the extractor cannot see.
      if (fn.qname.find("detail::") != std::string::npos) continue;
      if (!handled.insert(fn.name).second) continue;

      bool referenced = called.count(fn.name) != 0;
      // Cross-TU: the name appears anywhere in another walked file.
      for (const auto& other : model.files) {
        if (referenced) break;
        if (other.rel == file.rel || other.rel == pair_cpp) continue;
        if (other.idents.count(fn.name)) {
          referenced = true;
          break;
        }
      }
      if (referenced) continue;
      report(ctx, file.rel, fn.decl_line, "dead-api",
             "exported symbol '" + fn.qname +
                 "' has no reference outside its own translation unit; "
                 "delete it, make it internal, or justify with "
                 "'// drift-lint: allow(dead-api) — <why it stays>'");
    }
  }
}

}  // namespace

void add_graph_rules(std::vector<Rule>& rules) {
  rules.push_back({"layer",
                   "cross-module references respect the declared module DAG "
                   "(util -> tensor/stats -> core/nn/dram/energy/systolic -> "
                   "graph -> accel -> obs -> serve; ref isolated; simd "
                   "sealed; obs reachable from everywhere)",
                   nullptr, analysis_layer});
  rules.push_back({"unordered",
                   "no unordered-container iteration on a call path that "
                   "reaches an artifact writer",
                   nullptr, analysis_unordered});
  rules.push_back({"float-accum",
                   "float accumulation loops are confined to the "
                   "src/nn/simd/ canonical schedule; everything else "
                   "accumulates in double",
                   rule_float_accum, nullptr});
  rules.push_back({"rng-stream",
                   "randomness flows through seeded util/rng.hpp Rng "
                   "streams, never raw std engines/distributions",
                   rule_rng_stream, nullptr});
  rules.push_back({"race",
                   "parallel lambdas never write by-reference captures "
                   "without atomics or disjoint-slot indexing",
                   nullptr, analysis_race});
  rules.push_back({"atomic-order",
                   "relaxed atomics are confined to src/obs/ shards unless "
                   "explicitly justified",
                   rule_atomic_order, nullptr});
  rules.push_back({"dead-api",
                   "every exported (header, cross-TU visible) symbol has at "
                   "least one reference outside its own translation unit",
                   nullptr, analysis_dead_api});
}

}  // namespace drift::lint
