// Quickstart: the Drift algorithm on one tensor, end to end.
//
//   1. Build a synthetic activation matrix whose rows (tokens) are
//      zero-mean Laplace with very different scales (Figure 1).
//   2. Quantize to INT8 (Equation 1).
//   3. Run dynamic precision selection per row (Equations 5-6) and
//      inspect the chosen conversions.
//   4. Hand the resulting class split to the balanced online scheduler
//      (Equations 7-8) and read off the split-array latency.
#include <cstdio>

#include "core/analytical_model.hpp"
#include "core/layer_work.hpp"
#include "core/noise_budget.hpp"
#include "core/scheduler.hpp"
#include "nn/synthetic.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "tensor/subtensor.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

using namespace drift;

int main(int argc, char** argv) {
  // --metrics-out / --trace-out artifact surface (README "Observability").
  const Args args = Args::parse(argc, argv);
  const obs::ReportOptions artifacts = obs::ReportOptions::from_args(args);
  DRIFT_OBS_LAYER_SCOPE("quickstart.encoder");

  // 1. A [tokens x hidden] activation matrix with BERT-like statistics.
  Rng rng(42);
  const std::int64_t tokens = 128, hidden = 768;
  const TensorF x = nn::synth_rows(rng, tokens, hidden, nn::bert_profile());

  // 2. Initial INT8 quantization (Equation 1).
  const core::QuantParams params =
      core::compute_quant_params(x.data(), core::kInt8);
  std::printf("Eq.1 calibration: delta = %.5f, representation range = %.3f\n",
              params.delta, params.representation_range());

  // 3. Dynamic precision selection per token row.
  const auto views = partition_rows(x.shape());
  const auto stats = core::compute_stats(views, x.data());
  std::vector<std::int64_t> sizes(views.size(), hidden);
  const core::SelectorConfig selector;  // INT8 -> INT4
  const auto selection = core::select_auto_threshold(
      stats, sizes, params, selector, /*budget=*/0.05);

  TextTable table({"token", "max|Y|", "avg|Y|", "precision", "hc", "lc"});
  for (std::size_t t = 0; t < 8; ++t) {
    const auto& d = selection.decisions[t];
    table.add_row({std::to_string(t), TextTable::fmt(stats[t].max_abs),
                   TextTable::fmt(stats[t].mean_abs),
                   d.use_low ? "INT4" : "INT8",
                   std::to_string(d.choice.hc),
                   std::to_string(d.choice.lc)});
  }
  std::printf("\nfirst 8 token decisions:\n%s\n", table.to_string().c_str());
  std::printf("4-bit coverage: %.1f%% of elements (implied delta = %.3g, "
              "excess noise = %.4f%% of signal)\n\n",
              100.0 * selection.low_fraction_by_elements,
              selection.delta_threshold,
              100.0 * selection.excess_relative_mse);

  // 4. Schedule the split GEMM (this layer times a 3072-wide FFN,
  //    weights 20% high / 80% low) on the 24x33 BitGroup grid.
  core::LayerWork work;
  for (const auto& d : selection.decisions) {
    (d.use_low ? work.m_low : work.m_high) += 1;
  }
  work.n_high = 614;
  work.n_low = 2458;
  work.k = hidden;
  const core::ArrayDims array{24, 33};
  const auto split = core::schedule_greedy(work, array);
  const auto baseline = core::ws_latency_cycles(
      {tokens, hidden, work.n_high + work.n_low}, 8, 8, array);

  std::printf("scheduler split: r = %lld (activation cut), c = %lld "
              "(weight cut)\n",
              static_cast<long long>(split.r),
              static_cast<long long>(split.c));
  std::printf("quadrant latencies (hh/hl/lh/ll): %lld / %lld / %lld / %lld "
              "cycles\n",
              static_cast<long long>(split.latency[0]),
              static_cast<long long>(split.latency[1]),
              static_cast<long long>(split.latency[2]),
              static_cast<long long>(split.latency[3]));
  std::printf("makespan %lld cycles vs static INT8 %lld cycles: %.2fx "
              "speedup\n",
              static_cast<long long>(split.makespan),
              static_cast<long long>(baseline),
              static_cast<double>(baseline) /
                  static_cast<double>(split.makespan));
  return artifacts.write() ? 0 : 1;
}
