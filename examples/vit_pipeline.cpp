// ViT-style end-to-end pipeline: one transformer classification proxy
// evaluated under all four execution modes, followed by the hardware
// comparison of the full-size ViT-B workload — the complete
// algorithm + architecture story of the paper on one model.
#include <cstdio>

#include "accel/compare.hpp"
#include "graph/builder.hpp"
#include "graph/executor.hpp"
#include "nn/proxy.hpp"
#include "nn/quant_engine.hpp"
#include "obs/report.hpp"
#include "util/args.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace drift;

int main(int argc, char** argv) {
  // --metrics-out / --trace-out artifact surface (README "Observability").
  const Args args = Args::parse(argc, argv);
  const obs::ReportOptions artifacts = obs::ReportOptions::from_args(args);

  std::printf("=== ViT pipeline: accuracy and hardware, one model ===\n\n");

  // Functional side: the transformer proxy under every mode.
  nn::TransformerProxy::Config pcfg;
  pcfg.samples = 96;
  const nn::TransformerProxy proxy(pcfg);

  TextTable acc_table({"mode", "accuracy", "4-bit %"});
  for (auto mode : {nn::QuantMode::kFloat32, nn::QuantMode::kStaticInt8,
                    nn::QuantMode::kDrq, nn::QuantMode::kDrift}) {
    nn::QuantEngine::Config ecfg;
    ecfg.mode = mode;
    ecfg.noise_budget = 0.02;
    nn::QuantEngine engine(ecfg);
    const auto r = proxy.evaluate(engine);
    acc_table.add_row({nn::to_string(mode), TextTable::pct(r.metric),
                       TextTable::pct(r.act_low_fraction)});
  }
  std::printf("proxy accuracy (ViT-class activations):\n%s\n",
              acc_table.to_string().c_str());

  // Hardware side: full-size ViT-B/16 layer shapes on all four designs.
  accel::CompareConfig hw_cfg;
  hw_cfg.noise_budget = 0.05;
  const auto spec = nn::make_vit_b16();
  const auto cmp = accel::compare_workload(spec, hw_cfg);

  TextTable hw_table({"design", "cycles", "speedup vs Eyeriss",
                      "energy vs Eyeriss", "stall cycles"});
  const auto add = [&](const accel::RunResult& r) {
    hw_table.add_row({r.accelerator, std::to_string(r.cycles),
                      TextTable::ratio(static_cast<double>(
                                           cmp.eyeriss.cycles) /
                                       static_cast<double>(r.cycles)),
                      TextTable::fmt(r.energy.total_pj() /
                                         cmp.eyeriss.energy.total_pj(),
                                     4),
                      std::to_string(r.stall_cycles)});
  };
  add(cmp.eyeriss);
  add(cmp.bitfusion);
  add(cmp.drq);
  add(cmp.drift);
  std::printf("full-size ViT-B/16 (%lld GEMMs, %.1f GMACs at batch 8):\n%s\n",
              static_cast<long long>(spec.total_gemms()),
              static_cast<double>(spec.total_macs()) / 1e9,
              hw_table.to_string().c_str());

  std::printf("note how DRQ's cycles barely improve on BitFusion here —\n"
              "scattered token precision defeats a single variable-speed\n"
              "array (Figure 2) — while Drift's split arrays deliver both\n"
              "the speedup and the energy cut.\n\n");

  // Graph runtime: the same encoder topology as an operator graph
  // (reduced size so the functional pass stays fast).  Residual adds
  // make this a DAG that Sequential cannot express; the executor
  // infers every shape, frees intermediates after their last consumer,
  // and reports the peak resident footprint.
  graph::GraphBuilder builder("vit_tiny_demo", "vit");
  builder.input("image", {3, 32, 32});
  builder.then("patch_embed", "conv2d",
               {{"out_channels", graph::Attr::of_int(64)},
                {"kernel", graph::Attr::of_int(8)},
                {"stride", graph::Attr::of_int(8)},
                {"kind", graph::Attr::of_string("embed")}});
  builder.then("tokens", "to_tokens");
  builder.node("ln1", "layernorm", {"tokens"});
  builder.then("attn", "attention", {{"heads", graph::Attr::of_int(4)}});
  builder.node("add1", "add", {"attn", "tokens"});
  builder.then("ln2", "layernorm");
  builder.then("ffn1", "linear", {{"out_features", graph::Attr::of_int(128)},
                                  {"kind", graph::Attr::of_string("ffn")}});
  builder.then("gelu", "gelu");
  builder.then("ffn2", "linear", {{"out_features", graph::Attr::of_int(64)},
                                  {"kind", graph::Attr::of_string("ffn")}});
  builder.node("add2", "add", {"ffn2", "add1"});
  builder.then("pool", "mean_pool_tokens");
  builder.then("head", "linear", {{"out_features", graph::Attr::of_int(10)},
                                  {"kind", graph::Attr::of_string("fc")}});

  Rng graph_rng(7);
  graph::GraphExecutor executor(builder.build(), graph_rng);
  Rng input_rng(11);
  TensorF image(Shape{3, 32, 32});
  for (std::int64_t i = 0; i < image.shape().numel(); ++i) {
    image.at(i) = static_cast<float>(input_rng.normal(0.0, 1.0));
  }
  nn::QuantEngine::Config gcfg;
  gcfg.mode = nn::QuantMode::kDrift;
  nn::QuantEngine graph_engine(gcfg);
  const auto outputs = executor.run({image}, graph_engine);
  std::printf("graph runtime (vit_tiny_demo, one residual encoder block):\n"
              "  %zu nodes, logits [%lld], peak resident %.1f KiB, "
              "%lld intermediates freed in-flight\n",
              executor.graph().nodes.size(),
              static_cast<long long>(outputs.front().shape().numel()),
              static_cast<double>(executor.peak_resident_bytes()) / 1024.0,
              static_cast<long long>(executor.tensors_freed()));
  std::printf("full-size topologies: tools/graph/drift_graph run "
              "--zoo=vit_b16 (see examples/model_zoo/).\n");
  return artifacts.write() ? 0 : 1;
}
