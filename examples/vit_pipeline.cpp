// ViT-style end-to-end pipeline: one transformer classification proxy
// evaluated under all four execution modes, followed by the hardware
// comparison of the full-size ViT-B workload — the complete
// algorithm + architecture story of the paper on one model.
#include <cstdio>

#include "accel/compare.hpp"
#include "nn/proxy.hpp"
#include "obs/report.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

using namespace drift;

int main(int argc, char** argv) {
  // --metrics-out / --trace-out artifact surface (README "Observability").
  const Args args = Args::parse(argc, argv);
  const obs::ReportOptions artifacts = obs::ReportOptions::from_args(args);

  std::printf("=== ViT pipeline: accuracy and hardware, one model ===\n\n");

  // Functional side: the transformer proxy under every mode.
  nn::TransformerProxy::Config pcfg;
  pcfg.samples = 96;
  const nn::TransformerProxy proxy(pcfg);

  TextTable acc_table({"mode", "accuracy", "4-bit %"});
  for (auto mode : {nn::QuantMode::kFloat32, nn::QuantMode::kStaticInt8,
                    nn::QuantMode::kDrq, nn::QuantMode::kDrift}) {
    nn::QuantEngine::Config ecfg;
    ecfg.mode = mode;
    ecfg.noise_budget = 0.02;
    nn::QuantEngine engine(ecfg);
    const auto r = proxy.evaluate(engine);
    acc_table.add_row({nn::to_string(mode), TextTable::pct(r.metric),
                       TextTable::pct(r.act_low_fraction)});
  }
  std::printf("proxy accuracy (ViT-class activations):\n%s\n",
              acc_table.to_string().c_str());

  // Hardware side: full-size ViT-B/16 layer shapes on all four designs.
  accel::CompareConfig hw_cfg;
  hw_cfg.noise_budget = 0.05;
  const auto spec = nn::make_vit_b16();
  const auto cmp = accel::compare_workload(spec, hw_cfg);

  TextTable hw_table({"design", "cycles", "speedup vs Eyeriss",
                      "energy vs Eyeriss", "stall cycles"});
  const auto add = [&](const accel::RunResult& r) {
    hw_table.add_row({r.accelerator, std::to_string(r.cycles),
                      TextTable::ratio(static_cast<double>(
                                           cmp.eyeriss.cycles) /
                                       static_cast<double>(r.cycles)),
                      TextTable::fmt(r.energy.total_pj() /
                                         cmp.eyeriss.energy.total_pj(),
                                     4),
                      std::to_string(r.stall_cycles)});
  };
  add(cmp.eyeriss);
  add(cmp.bitfusion);
  add(cmp.drq);
  add(cmp.drift);
  std::printf("full-size ViT-B/16 (%lld GEMMs, %.1f GMACs at batch 8):\n%s\n",
              static_cast<long long>(spec.total_gemms()),
              static_cast<double>(spec.total_macs()) / 1e9,
              hw_table.to_string().c_str());

  std::printf("note how DRQ's cycles barely improve on BitFusion here —\n"
              "scattered token precision defeats a single variable-speed\n"
              "array (Figure 2) — while Drift's split arrays deliver both\n"
              "the speedup and the energy cut.\n");
  return artifacts.write() ? 0 : 1;
}
