// Accelerator comparison for any of the paper's models, with per-layer
// cycle and energy detail.
//
// Usage: accel_comparison [model]
//   model in {resnet18, resnet50, vit_b, deit_s, bert, gpt2_xl,
//             bloom_7b1, opt_6p7b}; default resnet18.
#include <cstdio>
#include <cstring>
#include <string>

#include "accel/compare.hpp"
#include "obs/report.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

using namespace drift;

namespace {

nn::WorkloadSpec pick_model(const std::string& name) {
  if (name == "resnet50") return nn::make_resnet50();
  if (name == "vit_b") return nn::make_vit_b16();
  if (name == "deit_s") return nn::make_deit_s();
  if (name == "bert") return nn::make_bert_base();
  if (name == "gpt2_xl") return nn::make_gpt2_xl();
  if (name == "bloom_7b1") return nn::make_bloom_7b1();
  if (name == "opt_6p7b") return nn::make_opt_6p7b();
  return nn::make_resnet18();
}

}  // namespace

int main(int argc, char** argv) {
  // --metrics-out / --trace-out artifact surface (README "Observability").
  const Args args = Args::parse(argc, argv);
  const obs::ReportOptions artifacts = obs::ReportOptions::from_args(args);

  const std::string model = argc > 1 ? argv[1] : "resnet18";
  const auto spec = pick_model(model);
  std::printf("=== accelerator comparison: %s ===\n\n", spec.model.c_str());

  accel::CompareConfig cfg;
  cfg.noise_budget = 0.05;
  const auto cmp = accel::compare_workload(spec, cfg);

  TextTable summary({"design", "cycles", "time @500MHz (ms)",
                     "speedup vs Eyeriss", "energy (mJ)", "DRAM MB"});
  const auto add = [&](const accel::RunResult& r) {
    summary.add_row(
        {r.accelerator, std::to_string(r.cycles),
         TextTable::fmt(r.seconds(500e6) * 1e3, 3),
         TextTable::ratio(static_cast<double>(cmp.eyeriss.cycles) /
                          static_cast<double>(r.cycles)),
         TextTable::fmt(r.energy.total_pj() / 1e9, 3),
         TextTable::fmt(static_cast<double>(r.dram_bytes) / 1e6, 1)});
  };
  add(cmp.eyeriss);
  add(cmp.bitfusion);
  add(cmp.drq);
  add(cmp.drift);
  std::printf("%s\n", summary.to_string().c_str());

  // Per-layer detail of the Drift execution (first 12 layers).
  TextTable detail({"layer", "compute cycles", "dram cycles", "bound",
                    "utilization"});
  std::size_t shown = 0;
  for (const auto& l : cmp.drift.layers) {
    if (shown++ >= 12) break;
    detail.add_row({l.layer, std::to_string(l.compute_cycles),
                    std::to_string(l.dram_cycles),
                    l.dram_cycles > l.compute_cycles ? "memory" : "compute",
                    TextTable::pct(l.utilization)});
  }
  std::printf("Drift per-layer detail (first %zu layers):\n%s\n", shown,
              detail.to_string().c_str());
  return artifacts.write() ? 0 : 1;
}
