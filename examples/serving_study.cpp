// Serving study: tail latency and energy per request vs. offered load,
// Drift against the static-INT8 (BitFusion-style) and DRQ baselines.
//
// One tenant of bursty tiny-BERT traffic is swept across load levels;
// at each level the interarrival gap is calibrated from that design's
// own canonical service time, so every design faces the *same relative*
// load (utilization target), the fair comparison for tail latency.
// Prints the sweep as a table and writes a schema-v2 artifact
// ("serving_sweep") that `drift_report summarize` renders.
//
//   ./serving_study [output.json]   (default: serving_study.json)
#include <cstdio>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/simulator.hpp"
#include "util/table.hpp"

using namespace drift;

namespace {

struct SweepPoint {
  nn::MixAlgorithm algo = nn::MixAlgorithm::kDrift;
  double load = 0.0;
  serve::SloSummary slo;
  double utilization = 0.0;
  std::int64_t batches = 0;
};

SweepPoint run_point(nn::MixAlgorithm algo, double load) {
  serve::ServeConfig config;
  config.exec.algo = algo;
  config.max_batch = 8;

  serve::TenantSpec tenant;
  tenant.name = "bert";
  tenant.workload = serve::serving_workload("tiny-bert");
  tenant.seed = 2024;
  tenant.num_requests = 400;
  tenant.arrival.kind = serve::ArrivalKind::kBursty;
  config.tenants.push_back(tenant);

  // Calibrate the gap from this design's canonical service time.
  serve::ServeConfig probe_cfg = config;
  probe_cfg.tenants[0].num_requests = 1;
  probe_cfg.tenants[0].unique_mix_per_request = false;
  serve::Simulator probe(probe_cfg);
  const double service =
      static_cast<double>(probe.executor().execute_canonical(0).cycles);
  config.tenants[0].arrival.mean_interarrival_cycles = service / load;

  obs::Registry::global().reset();
  serve::Simulator sim(config);
  const serve::ServeResult result = sim.run();

  SweepPoint point;
  point.algo = algo;
  point.load = load;
  point.slo = result.overall;
  point.utilization = result.utilization();
  point.batches = result.batches;
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "serving_study.json";
  const double clock_hz = energy::default_constants().clock_hz;
  const auto to_us = [&](double cycles) { return 1e6 * cycles / clock_hz; };

  const std::vector<double> loads = {0.3, 0.5, 0.7, 0.85, 0.95};
  const std::vector<nn::MixAlgorithm> algos = {
      nn::MixAlgorithm::kStaticInt8, nn::MixAlgorithm::kDrq,
      nn::MixAlgorithm::kDrift};

  std::printf("serving sweep: bursty tiny-BERT, 400 requests per point, "
              "max batch 8, clock %.0f MHz\n\n", clock_hz / 1e6);

  std::vector<SweepPoint> points;
  for (const nn::MixAlgorithm algo : algos) {
    for (const double load : loads) {
      points.push_back(run_point(algo, load));
    }
  }

  TextTable t({"design", "load", "p50_us", "p99_us", "p99.9_us",
               "energy/req_uJ", "util"});
  char buf[64];
  for (const SweepPoint& p : points) {
    std::vector<std::string> row;
    row.push_back(nn::to_string(p.algo));
    std::snprintf(buf, sizeof(buf), "%.2f", p.load);
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.2f",
                  to_us(static_cast<double>(p.slo.p50_cycles)));
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.2f",
                  to_us(static_cast<double>(p.slo.p99_cycles)));
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.2f",
                  to_us(static_cast<double>(p.slo.p999_cycles)));
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.3f",
                  p.slo.energy_per_request_pj / 1e6);
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.2f", p.utilization);
    row.push_back(buf);
    t.add_row(row);
  }
  std::printf("%s", t.to_string().c_str());

  // Schema-v2 sweep artifact for drift_report summarize.
  std::string json = "{\n  \"schema_version\": 2,\n  \"serving_sweep\": [";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    char entry[512];
    std::snprintf(
        entry, sizeof(entry),
        "%s\n    {\"design\": \"%s\", \"load\": %.2f, \"requests\": %lld, "
        "\"p50_us\": %.3f, \"p99_us\": %.3f, \"p999_us\": %.3f, "
        "\"mean_wait_us\": %.3f, \"energy_per_request_uj\": %.4f, "
        "\"utilization\": %.4f}",
        i == 0 ? "" : ",", nn::to_string(p.algo).c_str(), p.load,
        static_cast<long long>(p.slo.count),
        to_us(static_cast<double>(p.slo.p50_cycles)),
        to_us(static_cast<double>(p.slo.p99_cycles)),
        to_us(static_cast<double>(p.slo.p999_cycles)),
        to_us(p.slo.mean_wait_cycles), p.slo.energy_per_request_pj / 1e6,
        p.utilization);
    json += entry;
  }
  json += "\n  ]\n}\n";
  if (!obs::write_file(out_path, json)) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("\nsweep artifact written to %s\n", out_path.c_str());
  return 0;
}
