// LLM layer study: per-layer precision mixes and scheduler decisions
// for the full-size GPT2-XL workload — what the Drift controller
// actually does, layer by layer.
#include <cstdio>

#include "accel/drift_accel.hpp"
#include "core/scheduler.hpp"
#include "nn/precision_mix.hpp"
#include "obs/report.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

using namespace drift;

int main(int argc, char** argv) {
  // --metrics-out / --trace-out artifact surface (README "Observability").
  const Args args = Args::parse(argc, argv);
  const obs::ReportOptions artifacts = obs::ReportOptions::from_args(args);

  std::printf("=== GPT2-XL layer study ===\n\n");

  const auto spec = nn::make_gpt2_xl();
  nn::MixConfig mix_cfg;
  mix_cfg.algo = nn::MixAlgorithm::kDrift;
  mix_cfg.noise_budget = 0.05;
  const auto mixes = nn::build_mixes(spec, mix_cfg);

  const core::ArrayDims array{24, 33};
  TextTable table({"layer", "M", "K", "N", "act 4-bit", "wgt 4-bit",
                   "split (r,c)", "makespan", "vs INT8"});
  for (const auto& mix : mixes) {
    const auto split = core::schedule_greedy(mix.work, array);
    const auto int8 = core::ws_latency_cycles(mix.layer.dims, 8, 8, array);
    table.add_row(
        {mix.layer.name, std::to_string(mix.layer.dims.M),
         std::to_string(mix.layer.dims.K), std::to_string(mix.layer.dims.N),
         TextTable::pct(mix.act_low_fraction),
         TextTable::pct(mix.weight_low_fraction),
         "(" + std::to_string(split.r) + "," + std::to_string(split.c) + ")",
         std::to_string(split.makespan),
         TextTable::ratio(static_cast<double>(int8) /
                          static_cast<double>(split.makespan))});
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf("total MACs: %.1f G, GEMMs (with repeats): %lld\n",
              static_cast<double>(spec.total_macs()) / 1e9,
              static_cast<long long>(spec.total_gemms()));
  std::printf("overall activation 4-bit share: %.1f%%\n",
              100.0 * nn::overall_act_low_fraction(mixes));
  std::printf(
      "\nreading the table: projection/FFN layers with wide N get deep\n"
      "weight-side cuts (small c keeps the high-precision columns on a\n"
      "narrow slice); the attention score/context layers, whose second\n"
      "operand is itself an activation, still split dynamically.\n");
  return artifacts.write() ? 0 : 1;
}
