// Golden-trace regression tests for the observability layer.
//
// A fixed-seed two-layer workload drives the *real* pipeline — selector
// -> scheduler -> cycle simulation -> traffic -> timeline — under layer
// scopes, then:
//   1. the canonicalized metrics JSON is byte-compared against a
//      checked-in golden (tests/obs/golden/metrics.json);
//   2. the Chrome trace is parsed and validated structurally (every B
//      has a matching E on its thread, nesting depth never goes
//      negative, X durations are non-negative);
//   3. the scraped per-layer numbers are re-derived from the selector
//      output and the src/ref oracles (the acceptance cross-check).
//
// The scrape is filtered to deterministic metric prefixes; wall-clock
// metrics (thread_pool.*) are deliberately excluded.  Regenerate the
// golden after an intentional instrumentation change with:
//   DRIFT_OBS_UPDATE_GOLDEN=1 ./build/tests/obs/drift_obs_tests
// (optionally with --gtest_filter='ObsGolden.MetricsJsonMatchesGolden').
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "accel/accelerator.hpp"
#include "accel/timeline.hpp"
#include "accel/traffic.hpp"
#include "core/quantizer.hpp"
#include "core/scheduler.hpp"
#include "core/selector.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "ref/ref_oracles.hpp"
#include "systolic/cycle_sim.hpp"
#include "tensor/subtensor.hpp"
#include "util/rng.hpp"

namespace drift {
namespace {

#ifndef DRIFT_OBS_OFF

/// Everything the oracle cross-check needs to re-derive the scraped
/// numbers independently of the registry.
struct LayerExpectation {
  std::string layer;
  std::int64_t subtensors_total = 0;
  std::int64_t subtensors_low = 0;
  std::int64_t elements_total = 0;
  std::int64_t elements_low = 0;
  core::LayerWork work;
  core::ArrayDims total{0, 0};
  core::SplitDecision decision;
  std::int64_t sim_cycles = 0;
  std::int64_t sim_stalls = 0;
  std::int64_t dram_bytes = 0;
};

/// Metric prefixes that are functions of the workload alone (no wall
/// clock, no pool size), so the scrape is byte-stable.
std::vector<std::string> deterministic_prefixes() {
  return {"selector.", "scheduler.", "sim.", "timeline.", "traffic."};
}

/// Runs the fixed-seed workload from a clean registry/tracer.  Every
/// number the pipeline records is a deterministic function of the seed.
std::vector<LayerExpectation> run_fixed_workload() {
  obs::Registry::global().reset();
  obs::Tracer::global().reset();
  obs::Tracer::global().set_enabled(true);

  Rng rng(42);
  std::vector<LayerExpectation> expectations;
  std::vector<accel::TimelineLayer> timeline_layers;

  for (int li = 0; li < 2; ++li) {
    LayerExpectation e;
    e.layer = "layer" + std::to_string(li);
    obs::LayerScope scope(e.layer);

    // Selector: per-row sub-tensors of a Laplace-distributed activation.
    const std::int64_t rows = 6 + 2 * li;
    const std::int64_t cols = 32;
    std::vector<float> values(static_cast<std::size_t>(rows * cols));
    for (auto& v : values) v = static_cast<float>(rng.laplace(1.0));
    const auto views = partition_rows(Shape{rows, cols});
    const auto params = core::compute_quant_params(values, core::kInt8);
    core::SelectorConfig cfg;
    cfg.density_threshold = 0.5;
    const core::DynamicQuantizer quantizer(cfg);
    const core::PrecisionMap map = quantizer.select(values, views, params);
    quantizer.apply(values, views, params, map);
    e.subtensors_total = static_cast<std::int64_t>(map.num_subtensors());
    e.subtensors_low = static_cast<std::int64_t>(map.low_subtensors());
    e.elements_total = map.total_elements();
    e.elements_low = map.low_elements();

    // Scheduler: the activation split the selector chose, a fixed
    // weight split, on an 8x8 BitGroup grid.
    core::LayerWork work;
    work.m_low = e.subtensors_low;
    work.m_high = rows - work.m_low;
    work.n_high = 20;
    work.n_low = 12;
    work.k = cols;
    e.work = work;
    e.total = core::ArrayDims{8, 8};
    e.decision = core::schedule_greedy(work, e.total);

    // Cycle simulation of a small GEMM on a 3x4 array.
    TensorI32 a(Shape{5 + li, 6});
    TensorI32 w(Shape{6, 7});
    for (auto& v : a.data()) {
      v = static_cast<std::int32_t>(rng.uniform_int(-8, 8));
    }
    for (auto& v : w.data()) {
      v = static_cast<std::int32_t>(rng.uniform_int(-8, 8));
    }
    const systolic::SimResult sim =
        systolic::simulate_gemm(a, w, core::ArrayDims{3, 4});
    e.sim_cycles = sim.cycles;
    e.sim_stalls = sim.stall_cycles;

    // Traffic accounting for the layer's GEMM.
    const accel::AccelConfig acfg;
    const accel::OperandBits bits = accel::operand_bits_from_work(work);
    const core::GemmDims dims{rows, cols, work.n_high + work.n_low};
    const accel::LayerTraffic traffic =
        accel::compute_traffic(dims, bits, 2, 1, acfg);
    e.dram_bytes = traffic.dram_bytes();

    timeline_layers.push_back(
        {e.layer, e.decision.makespan, e.dram_bytes / 16});
    expectations.push_back(e);
  }

  // Timeline: double-buffered schedule rendered on the sim-cycle trace.
  accel::build_timeline(timeline_layers);
  obs::Tracer::global().set_enabled(false);
  return expectations;
}

std::string golden_path() {
  return std::string(DRIFT_OBS_GOLDEN_DIR) + "/metrics.json";
}

std::string read_file_or_empty(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return "";
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(ObsGolden, MetricsJsonMatchesGolden) {
  run_fixed_workload();
  const std::string scrape =
      obs::Registry::global().to_json(deterministic_prefixes());
  if (std::getenv("DRIFT_OBS_UPDATE_GOLDEN") != nullptr) {
    ASSERT_TRUE(obs::write_file(golden_path(), scrape));
    GTEST_SKIP() << "golden regenerated at " << golden_path();
  }
  const std::string golden = read_file_or_empty(golden_path());
  ASSERT_FALSE(golden.empty())
      << "missing golden " << golden_path()
      << " — regenerate with DRIFT_OBS_UPDATE_GOLDEN=1";
  EXPECT_EQ(scrape, golden)
      << "metrics scrape drifted from the golden; if the change is "
         "intentional, regenerate with DRIFT_OBS_UPDATE_GOLDEN=1";
}

/// Pulls the integer value of `"key": <n>` out of one serialized trace
/// event line; `fallback` when the key is absent.
std::int64_t event_field(const std::string& line, const std::string& key,
                         std::int64_t fallback) {
  const std::string marker = "\"" + key + "\": ";
  const std::size_t pos = line.find(marker);
  if (pos == std::string::npos) return fallback;
  return std::atoll(line.c_str() + pos + marker.size());
}

TEST(ObsGolden, ChromeTraceIsStructurallyValid) {
  run_fixed_workload();
  const std::string json = obs::Tracer::global().to_chrome_json();
  ASSERT_EQ(json.rfind("{\"traceEvents\": [", 0), 0u);

  // One event per line; track open B spans per (pid, tid).
  std::map<std::pair<std::int64_t, std::int64_t>, std::vector<std::string>>
      open_spans;
  int begins = 0, ends = 0, completes = 0;
  std::istringstream lines(json);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind("{\"name\": ", 0) != 0) continue;  // header / footer
    const std::size_t name_end = line.find('"', 10);
    ASSERT_NE(name_end, std::string::npos) << line;
    const std::string name = line.substr(10, name_end - 10);
    const std::size_t ph_pos = line.find("\"ph\": \"");
    ASSERT_NE(ph_pos, std::string::npos) << line;
    const char ph = line[ph_pos + 7];
    const auto track = std::make_pair(event_field(line, "pid", -1),
                                      event_field(line, "tid", -1));
    switch (ph) {
      case 'B':
        ++begins;
        open_spans[track].push_back(name);
        break;
      case 'E': {
        ++ends;
        auto& stack = open_spans[track];
        // Nesting never goes negative, and E closes the innermost B.
        ASSERT_FALSE(stack.empty()) << "unmatched E for " << name;
        EXPECT_EQ(stack.back(), name);
        stack.pop_back();
        break;
      }
      case 'X':
        ++completes;
        EXPECT_GE(event_field(line, "dur", -1), 0) << line;
        EXPECT_EQ(event_field(line, "pid", -1), 1) << line;
        break;
      case 'M':
        EXPECT_EQ(event_field(line, "pid", -1), 1) << line;
        break;
      default:
        FAIL() << "unexpected phase '" << ph << "' in " << line;
    }
  }
  for (const auto& [track, stack] : open_spans) {
    EXPECT_TRUE(stack.empty())
        << stack.size() << " unclosed span(s) on pid " << track.first
        << " tid " << track.second;
  }
  EXPECT_EQ(begins, ends);
  EXPECT_GT(begins, 0);     // the pipeline spans fired
  EXPECT_GT(completes, 0);  // the timeline rendered X events
}

TEST(ObsGolden, MetricsMatchRefOracles) {
  const auto expectations = run_fixed_workload();
  obs::Registry& reg = obs::Registry::global();

  std::int64_t elements_total = 0, elements_low = 0;
  for (const LayerExpectation& e : expectations) {
    const obs::LayerRecord* rec = reg.layer_record(e.layer);
    ASSERT_NE(rec, nullptr);

    // Selector attribution matches the PrecisionMap it came from.
    EXPECT_EQ(rec->subtensors_total, e.subtensors_total);
    EXPECT_EQ(rec->subtensors_low, e.subtensors_low);
    EXPECT_EQ(rec->elements_total, e.elements_total);
    EXPECT_EQ(rec->elements_low, e.elements_low);
    EXPECT_GE(rec->coverage(), 0.0);
    EXPECT_LE(rec->coverage(), 1.0);
    EXPECT_DOUBLE_EQ(rec->coverage(),
                     static_cast<double>(e.elements_low) /
                         static_cast<double>(e.elements_total));
    elements_total += e.elements_total;
    elements_low += e.elements_low;

    // Scheduler record equals the returned decision, and the decision's
    // per-quadrant numbers equal the independent Eq. 7 oracle.
    EXPECT_EQ(rec->sched_r, e.decision.r);
    EXPECT_EQ(rec->sched_c, e.decision.c);
    EXPECT_EQ(rec->sched_latency, e.decision.latency);
    EXPECT_EQ(rec->sched_makespan, e.decision.makespan);
    EXPECT_EQ(rec->sched_makespan,
              *std::max_element(e.decision.latency.begin(),
                                e.decision.latency.end()));
    const core::LayerWork& w = e.work;
    const std::int64_t R = e.total.rows, C = e.total.cols;
    const std::int64_t r = e.decision.r, c = e.decision.c;
    const struct {
      std::int64_t m, n, qr, qc;
      int pa, pw;
    } quadrants[4] = {
        {w.m_high, w.n_high, r, c, w.pa_high, w.pw_high},
        {w.m_high, w.n_low, r, C - c, w.pa_high, w.pw_low},
        {w.m_low, w.n_high, R - r, c, w.pa_low, w.pw_high},
        {w.m_low, w.n_low, R - r, C - c, w.pa_low, w.pw_low},
    };
    for (int q = 0; q < 4; ++q) {
      const auto& quad = quadrants[q];
      if (quad.m == 0 || quad.n == 0) {
        EXPECT_EQ(rec->sched_latency[q], 0) << "quadrant " << q;
        EXPECT_EQ(rec->tile_count[q], 0) << "quadrant " << q;
        continue;
      }
      EXPECT_EQ(rec->sched_latency[q],
                ref::eq7_cycles(quad.m, w.k, quad.n, quad.pa, quad.pw,
                                quad.qr, quad.qc))
          << "quadrant " << q;
      EXPECT_EQ(rec->tile_count[q],
                ref::eq7_repetitions(w.k, quad.n, quad.pa, quad.pw, quad.qr,
                                     quad.qc))
          << "quadrant " << q;
    }

    // Cycle and traffic accounting.
    EXPECT_EQ(rec->compute_cycles, e.sim_cycles);
    EXPECT_EQ(rec->stall_cycles, e.sim_stalls);
    EXPECT_EQ(rec->dram_bytes, e.dram_bytes);
  }

  // Process-level counters agree with the per-layer sums.
  EXPECT_EQ(reg.counter("selector.elements_total")->value(), elements_total);
  EXPECT_EQ(reg.counter("selector.elements_low")->value(), elements_low);
  // Every clip decision landed in the clip histograms.
  EXPECT_EQ(reg.histogram("selector.hc_clip", {})->total_count(),
            reg.counter("selector.subtensors_total")->value());
  EXPECT_EQ(reg.histogram("selector.lc_clip", {})->total_count(),
            reg.counter("selector.subtensors_total")->value());
}

#else  // DRIFT_OBS_OFF

TEST(ObsGolden, MetricsJsonMatchesGolden) {
  GTEST_SKIP() << "instrumentation compiled out (DRIFT_OBS_OFF)";
}
TEST(ObsGolden, ChromeTraceIsStructurallyValid) {
  GTEST_SKIP() << "instrumentation compiled out (DRIFT_OBS_OFF)";
}
TEST(ObsGolden, MetricsMatchRefOracles) {
  GTEST_SKIP() << "instrumentation compiled out (DRIFT_OBS_OFF)";
}

#endif  // DRIFT_OBS_OFF

}  // namespace
}  // namespace drift
