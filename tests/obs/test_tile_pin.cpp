// Pins the tile-count refactor: the shared core::ws_k_tiles /
// ws_n_tiles helpers must reproduce, bit-for-bit, every private
// formula they replaced —
//   - accel/drift_accel.cpp's double-ceil over mix-weighted fractional
//     widths (plus its max(.., 1) clamp),
//   - accel/drq_accel.cpp's and bench/fig2's integer ceil-divisions at
//     the fixed 4-bit-activation / 8-bit-weight rhythm.
// The old formulas are reimplemented locally, sharing no code with the
// helpers under test.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "core/analytical_model.hpp"

namespace drift::core {
namespace {

/// drift_accel.cpp's pre-refactor activation-tile count.
std::int64_t old_drift_k_tiles(std::int64_t k, double act_bits,
                               std::int64_t rows) {
  const std::int64_t tiles = static_cast<std::int64_t>(std::ceil(
      act_bits * static_cast<double>(k) / static_cast<double>(4 * rows)));
  return std::max<std::int64_t>(tiles, 1);
}

/// drift_accel.cpp's pre-refactor weight-tile count.
std::int64_t old_drift_n_tiles(std::int64_t n, double weight_bits,
                               std::int64_t cols) {
  const std::int64_t tiles = static_cast<std::int64_t>(std::ceil(
      weight_bits * static_cast<double>(n) / static_cast<double>(16 * cols)));
  return std::max<std::int64_t>(tiles, 1);
}

TEST(TilePin, SharedHelpersMatchOldDriftAccelDoubleCeil) {
  // Mix-weighted widths: integral endpoints plus the fractional values
  // row/channel-weighted averaging actually produces.
  const double widths[] = {4.0,  4.25, 4.8, 5.0, 5.5, 6.125,
                           6.75, 7.0,  7.5, 8.0};
  for (std::int64_t span : {1, 2, 3, 5, 8, 24, 33}) {
    for (std::int64_t extent = 1; extent <= 256; ++extent) {
      for (const double bits : widths) {
        ASSERT_EQ(ws_k_tiles(extent, bits, span),
                  old_drift_k_tiles(extent, bits, span))
            << "k: extent=" << extent << " bits=" << bits
            << " rows=" << span;
        ASSERT_EQ(ws_n_tiles(extent, bits, span),
                  old_drift_n_tiles(extent, bits, span))
            << "n: extent=" << extent << " bits=" << bits
            << " cols=" << span;
      }
    }
  }
}

TEST(TilePin, SharedHelpersMatchOldDrqIntegerCeilDiv) {
  // drq_accel.cpp / bench/fig2: k_tiles = ceil(K / R) at the 4-bit
  // rhythm, n_tiles = ceil(8N / 16C) at the stored 8-bit width.
  for (std::int64_t rows : {1, 2, 3, 7, 16, 24}) {
    for (std::int64_t cols : {1, 2, 5, 11, 33}) {
      for (std::int64_t extent = 1; extent <= 200; ++extent) {
        ASSERT_EQ(ws_k_tiles(extent, 4.0, rows),
                  (extent + rows - 1) / rows)
            << "extent=" << extent << " rows=" << rows;
        ASSERT_EQ(ws_n_tiles(extent, 8.0, cols),
                  (8 * extent + 16 * cols - 1) / (16 * cols))
            << "extent=" << extent << " cols=" << cols;
      }
    }
  }
}

TEST(TilePin, HelpersComposeIntoEqSevenRepetitions) {
  // ws_tile_repetitions must stay the product of the two axis counts.
  const GemmDims gemm{17, 29, 41};
  const ArrayDims array{8, 8};
  for (int pa : {2, 4, 8}) {
    for (int pw : {2, 4, 8}) {
      EXPECT_EQ(ws_tile_repetitions(gemm, pa, pw, array),
                ws_k_tiles(gemm.K, pa, array.rows) *
                    ws_n_tiles(gemm.N, pw, array.cols));
    }
  }
}

}  // namespace
}  // namespace drift::core
