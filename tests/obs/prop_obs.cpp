// Randomized invariants of the observability layer:
//   1. counter totals are independent of thread count, shard
//      assignment, and merge order (integer addition commutes);
//   2. the selector's per-class counts sum to the totals and the
//      derived 4-bit coverage stays in [0, 1];
//   3. the scheduler-reported per-quadrant latencies and tile counts
//      equal the independent src/ref Equation 7 oracle;
//   4. histogram bucket totals always equal the observation count
//      (no observation is lost or double-counted).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/scheduler.hpp"
#include "core/selector.hpp"
#include "obs/metrics.hpp"
#include "proptest/proptest_gtest.hpp"
#include "ref/ref_oracles.hpp"
#include "tensor/subtensor.hpp"
#include "util/thread_pool.hpp"

namespace drift {
namespace {

TEST(PropObs, CounterTotalIsThreadAndOrderIndependent) {
  util::ThreadPool& pool = util::ThreadPool::instance();
  proptest::gtest_check([&pool](Rng& rng, int size) -> proptest::Result {
    const std::int64_t n = rng.uniform_int(1, 60 * size);
    std::vector<std::int64_t> deltas(static_cast<std::size_t>(n));
    std::int64_t want = 0;
    for (auto& d : deltas) {
      d = rng.uniform_int(0, 1000);
      want += d;
    }
    // Vary the worker count so the adds land on changing shard mixes;
    // grain 1 maximizes interleaving.
    pool.resize(static_cast<int>(rng.uniform_int(1, 8)));
    obs::Counter c;
    util::parallel_for(0, n, 1, [&c, &deltas](std::int64_t lo,
                                              std::int64_t hi) {
      for (std::int64_t i = lo; i < hi; ++i) {
        c.add(deltas[static_cast<std::size_t>(i)]);
      }
    });
    if (c.value() != want) {
      return proptest::fail("sharded counter merged to ", c.value(),
                            ", sequential sum is ", want);
    }
    return proptest::pass();
  });
  pool.resize(0);  // back to the default worker count
}

TEST(PropObs, SelectorClassCountsSumToTotalsAndCoverageIsBounded) {
  proptest::gtest_check([](Rng& rng, int size) -> proptest::Result {
    const std::int64_t rows = proptest::gen_dim(rng, size);
    const std::int64_t cols = proptest::gen_dim(rng, size);
    const std::vector<float> values =
        proptest::gen_laplace_buffer(rng, rows * cols, 1.0);
    const auto views = partition_rows(Shape{rows, cols});
    const auto params = core::compute_quant_params(values, core::kInt8);
    const core::SelectorConfig cfg = proptest::gen_selector_config(rng);
    const core::DynamicQuantizer quantizer(cfg);

#ifndef DRIFT_OBS_OFF
    // A unique layer per case so the record holds exactly this select.
    static int case_id = 0;
    const std::string layer = "prop_obs.sel." + std::to_string(case_id++);
    obs::LayerScope scope(layer);
#endif
    const core::PrecisionMap map = quantizer.select(values, views, params);

    if (map.low_elements() < 0 || map.low_elements() > map.total_elements()) {
      return proptest::fail("low elements ", map.low_elements(),
                            " outside [0, ", map.total_elements(), "]");
    }
    if (map.total_elements() != rows * cols) {
      return proptest::fail("total elements ", map.total_elements(),
                            " != buffer size ", rows * cols);
    }
    if (map.low_subtensors() > map.num_subtensors()) {
      return proptest::fail("low sub-tensors exceed the total");
    }
    const double coverage = map.low_fraction_by_elements();
    if (!(coverage >= 0.0 && coverage <= 1.0)) {
      return proptest::fail("coverage ", coverage, " outside [0, 1]");
    }

#ifndef DRIFT_OBS_OFF
    const obs::LayerRecord* rec = obs::Registry::global().layer_record(layer);
    if (rec->subtensors_total !=
            static_cast<std::int64_t>(map.num_subtensors()) ||
        rec->subtensors_low !=
            static_cast<std::int64_t>(map.low_subtensors()) ||
        rec->elements_total != map.total_elements() ||
        rec->elements_low != map.low_elements()) {
      return proptest::fail("layer record diverges from the PrecisionMap");
    }
    if (rec->coverage() != coverage) {
      return proptest::fail("record coverage ", rec->coverage(),
                            " != map coverage ", coverage);
    }
#endif
    return proptest::pass();
  });
}

TEST(PropObs, SchedulerReportedNumbersMatchEqSevenOracle) {
  proptest::gtest_check([](Rng& rng, int size) -> proptest::Result {
    const core::LayerWork w = proptest::gen_layer_work(rng, size);
    // Feasibility: an axis shared by two non-empty classes needs at
    // least two slices (same band prop_scheduler.cpp uses).
    const std::int64_t row_lo = (w.m_high > 0 && w.m_low > 0) ? 2 : 1;
    const std::int64_t col_lo = (w.n_high > 0 && w.n_low > 0) ? 2 : 1;
    const core::ArrayDims total{proptest::gen_dim(rng, size, row_lo),
                                proptest::gen_dim(rng, size, col_lo)};

#ifndef DRIFT_OBS_OFF
    static int case_id = 0;
    const std::string layer = "prop_obs.sched." + std::to_string(case_id++);
    core::SplitDecision d;
    {
      obs::LayerScope scope(layer);
      d = core::schedule_greedy(w, total);
    }
    const obs::LayerRecord* rec = obs::Registry::global().layer_record(layer);
    if (rec->sched_r != d.r || rec->sched_c != d.c ||
        rec->sched_latency != d.latency ||
        rec->sched_makespan != d.makespan) {
      return proptest::fail("layer record diverges from the decision at r=",
                            d.r, " c=", d.c);
    }
    const std::array<std::int64_t, 4>& tiles = rec->tile_count;
#else
    const core::SplitDecision d = core::schedule_greedy(w, total);
    const std::array<std::int64_t, 4> tiles =
        core::quadrant_tile_counts(w, total, d.r, d.c);
#endif

    const std::int64_t R = total.rows, C = total.cols;
    const struct {
      std::int64_t m, n, qr, qc;
      int pa, pw;
    } quadrants[4] = {
        {w.m_high, w.n_high, d.r, d.c, w.pa_high, w.pw_high},
        {w.m_high, w.n_low, d.r, C - d.c, w.pa_high, w.pw_low},
        {w.m_low, w.n_high, R - d.r, d.c, w.pa_low, w.pw_high},
        {w.m_low, w.n_low, R - d.r, C - d.c, w.pa_low, w.pw_low},
    };
    for (int q = 0; q < 4; ++q) {
      const auto& quad = quadrants[q];
      const std::int64_t want_latency =
          (quad.m == 0 || quad.n == 0)
              ? 0
              : ref::eq7_cycles(quad.m, w.k, quad.n, quad.pa, quad.pw,
                                quad.qr, quad.qc);
      const std::int64_t want_tiles =
          (quad.m == 0 || quad.n == 0)
              ? 0
              : ref::eq7_repetitions(w.k, quad.n, quad.pa, quad.pw, quad.qr,
                                     quad.qc);
      if (d.latency[static_cast<std::size_t>(q)] != want_latency) {
        return proptest::fail("quadrant ", q, " latency ",
                              d.latency[static_cast<std::size_t>(q)],
                              " != oracle ", want_latency);
      }
      if (tiles[static_cast<std::size_t>(q)] != want_tiles) {
        return proptest::fail("quadrant ", q, " tile count ",
                              tiles[static_cast<std::size_t>(q)],
                              " != oracle ", want_tiles);
      }
    }
    if (d.makespan !=
        *std::max_element(d.latency.begin(), d.latency.end())) {
      return proptest::fail("makespan is not the max quadrant latency");
    }
    return proptest::pass();
  });
}

TEST(PropObs, HistogramBucketTotalsEqualObservationCount) {
  proptest::gtest_check([](Rng& rng, int size) -> proptest::Result {
    const int num_bounds = static_cast<int>(rng.uniform_int(1, 6));
    std::vector<std::int64_t> bounds(static_cast<std::size_t>(num_bounds));
    bounds[0] = rng.uniform_int(-100, 100);
    for (std::size_t i = 1; i < bounds.size(); ++i) {
      bounds[i] = bounds[i - 1] + rng.uniform_int(1, 50);
    }
    obs::Histogram h(bounds);

    const std::int64_t n = rng.uniform_int(0, 80 * size);
    std::vector<std::int64_t> want(bounds.size() + 1, 0);
    for (std::int64_t i = 0; i < n; ++i) {
      const std::int64_t v =
          rng.uniform_int(bounds.front() - 60, bounds.back() + 60);
      h.observe(v);
      // Brute-force bucket: first bound >= v, else the overflow slot.
      std::size_t slot = bounds.size();
      for (std::size_t b = 0; b < bounds.size(); ++b) {
        if (bounds[b] >= v) {
          slot = b;
          break;
        }
      }
      ++want[slot];
    }

    if (h.total_count() != n) {
      return proptest::fail("total_count ", h.total_count(), " != ", n,
                            " observations");
    }
    const std::vector<std::int64_t> counts = h.counts();
    std::int64_t sum = 0;
    for (std::int64_t c : counts) sum += c;
    if (sum != n) {
      return proptest::fail("bucket sum ", sum, " != ", n, " observations");
    }
    if (counts != want) {
      return proptest::fail("bucket layout diverges from brute force");
    }
    return proptest::pass();
  });
}

// Shared generator for the quantile properties: a random strictly
// ascending bound set and `n` single-threaded observations (all
// observes land on this thread's sample shard, so the exact path stays
// available iff n <= kSamplesPerShard).
struct QuantileCase {
  std::unique_ptr<obs::Histogram> histogram;  // atomics: not movable itself
  std::vector<std::int64_t> values;
  std::vector<std::int64_t> bounds;
};

QuantileCase make_quantile_case(Rng& rng, std::int64_t n) {
  const int num_bounds = static_cast<int>(rng.uniform_int(1, 8));
  std::vector<std::int64_t> bounds(static_cast<std::size_t>(num_bounds));
  bounds[0] = rng.uniform_int(-200, 200);
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    bounds[i] = bounds[i - 1] + rng.uniform_int(1, 80);
  }
  QuantileCase out{std::make_unique<obs::Histogram>(bounds), {}, bounds};
  out.values.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t v =
        rng.uniform_int(bounds.front() - 100, bounds.back() + 100);
    out.histogram->observe(v);
    out.values.push_back(v);
  }
  return out;
}

TEST(PropObs, QuantileExactPathMatchesSortedOracle) {
  proptest::gtest_check([](Rng& rng, int size) -> proptest::Result {
    // n <= kSamplesPerShard keeps every observation in the reservoir.
    const std::int64_t n =
        rng.uniform_int(1, std::min<std::int64_t>(obs::kSamplesPerShard,
                                                  8 * size + 1));
    const QuantileCase c = make_quantile_case(rng, n);
    if (!c.histogram->quantiles_exact()) {
      return proptest::fail("n = ", n, " <= ", obs::kSamplesPerShard,
                            " single-threaded observations must stay exact");
    }
    const auto max_it = std::max_element(c.values.begin(), c.values.end());
    const auto min_it = std::min_element(c.values.begin(), c.values.end());
    if (c.histogram->quantile(0.0) != static_cast<double>(*min_it)) {
      return proptest::fail("p=0 is not the minimum observation");
    }
    if (c.histogram->quantile(1.0) != static_cast<double>(*max_it)) {
      return proptest::fail("p=1 is not the maximum observation");
    }
    for (int i = 0; i < 12; ++i) {
      const double p = rng.uniform(0.0, 1.0);
      const double got = c.histogram->quantile(p);
      const std::int64_t want = ref::sorted_quantile(c.values, p);
      if (got != static_cast<double>(want)) {
        return proptest::fail("quantile(", p, ") = ", got,
                              " but the sorted oracle says ", want);
      }
    }
    return proptest::pass();
  });
}

TEST(PropObs, QuantileIsMonotoneInP) {
  proptest::gtest_check([](Rng& rng, int size) -> proptest::Result {
    // Straddle the reservoir capacity so both paths are exercised.
    const std::int64_t n = rng.uniform_int(1, 40 * size + 300);
    const QuantileCase c = make_quantile_case(rng, n);
    double prev = c.histogram->quantile(0.0);
    for (int i = 1; i <= 40; ++i) {
      const double p = static_cast<double>(i) / 40.0;
      const double cur = c.histogram->quantile(p);
      if (cur < prev) {
        return proptest::fail("quantile not monotone at p = ", p, ": ", cur,
                              " < ", prev, " (n = ", n, ")");
      }
      prev = cur;
    }
    return proptest::pass();
  });
}

TEST(PropObs, QuantileBucketPathBoundedByBucketWidthAndExactAtPOne) {
  proptest::gtest_check([](Rng& rng, int size) -> proptest::Result {
    // Overflow the single shard's reservoir to force the bucket path.
    const std::int64_t n =
        obs::kSamplesPerShard + rng.uniform_int(1, 40 * size);
    QuantileCase c = make_quantile_case(rng, n);
    if (c.histogram->quantiles_exact()) {
      return proptest::fail("n = ", n, " > ", obs::kSamplesPerShard,
                            " must overflow the reservoir");
    }
    const auto max_it = std::max_element(c.values.begin(), c.values.end());
    const auto min_it = std::min_element(c.values.begin(), c.values.end());
    if (c.histogram->quantile(1.0) != static_cast<double>(*max_it)) {
      return proptest::fail("bucket-path p=1 must still be the exact max");
    }
    const std::vector<std::int64_t> counts = c.histogram->counts();
    for (int i = 0; i < 12; ++i) {
      const double p = rng.uniform(0.0, 1.0);
      const double got = c.histogram->quantile(p);
      const std::int64_t exact = ref::sorted_quantile(c.values, p);
      // Re-derive the clamped range of the bucket holding the exact
      // order statistic; the estimate interpolates inside the same
      // bucket, so both lie in [lo, hi].
      const std::int64_t rank = std::clamp<std::int64_t>(
          static_cast<std::int64_t>(
              std::ceil(p * static_cast<double>(n))),
          1, n);
      std::int64_t cum = 0;
      std::size_t j = 0;
      for (; j < counts.size(); ++j) {
        if (cum + counts[j] >= rank) break;
        cum += counts[j];
      }
      const double lo = std::max(
          static_cast<double>(j == 0 ? *min_it : c.bounds[j - 1]),
          static_cast<double>(*min_it));
      double hi = static_cast<double>(
          j < c.bounds.size() ? std::min(c.bounds[j], *max_it) : *max_it);
      hi = std::max(hi, lo);
      if (got < lo || got > hi) {
        return proptest::fail("estimate ", got, " escapes bucket range [",
                              lo, ", ", hi, "] at p = ", p);
      }
      if (std::abs(got - static_cast<double>(exact)) > hi - lo) {
        return proptest::fail("estimate ", got, " misses exact ", exact,
                              " by more than the bucket width ", hi - lo);
      }
    }
    return proptest::pass();
  });
}

}  // namespace
}  // namespace drift
