// Unit tests for the observability primitives: sharded counters,
// gauges, fixed-bucket histograms, the registry's stable handles, layer
// attribution scopes, canonical JSON scrapes, and the scoped-span
// tracer.  These exercise the types directly (not the DRIFT_OBS_*
// macros), so they run and pass under -DDRIFT_OBS_OFF too.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace drift::obs {
namespace {

/// Occurrences of `needle` in `haystack`.
int count_occurrences(const std::string& haystack, const std::string& needle) {
  int n = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

TEST(ObsCounter, ParallelAddsMergeExactly) {
  Counter c;
  const std::int64_t n = 20000;
  util::parallel_for(0, n, 64, [&c](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) c.add(i % 7);
  });
  std::int64_t want = 0;
  for (std::int64_t i = 0; i < n; ++i) want += i % 7;
  EXPECT_EQ(c.value(), want);
  c.reset();
  EXPECT_EQ(c.value(), 0);
  c.increment();
  EXPECT_EQ(c.value(), 1);
}

TEST(ObsGauge, LastWriteWinsAndResetsToZero) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.set(3.25);
  g.set(-0.5);
  EXPECT_EQ(g.value(), -0.5);
  g.reset();
  EXPECT_EQ(g.value(), 0.0);
}

TEST(ObsHistogram, BucketsPartitionTheLine) {
  Histogram h({10, 100, 1000});
  h.observe(-5);    // <= 10
  h.observe(10);    // bound is inclusive
  h.observe(11);    // (10, 100]
  h.observe(100);
  h.observe(1000);  // (100, 1000]
  h.observe(5000);  // overflow
  const auto counts = h.counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2);
  EXPECT_EQ(counts[1], 2);
  EXPECT_EQ(counts[2], 1);
  EXPECT_EQ(counts[3], 1);
  EXPECT_EQ(h.total_count(), 6);
  h.reset();
  EXPECT_EQ(h.total_count(), 0);
}

TEST(ObsRegistry, HandlesAreStableAcrossLookups) {
  Registry& reg = Registry::global();
  Counter* c1 = reg.counter("obs_test.stable");
  Counter* c2 = reg.counter("obs_test.stable");
  EXPECT_EQ(c1, c2);
  Gauge* g1 = reg.gauge("obs_test.stable_g");
  EXPECT_EQ(g1, reg.gauge("obs_test.stable_g"));
  // The first lookup fixes a histogram's bounds; later bounds are
  // ignored (the macro always passes the same literal list anyway).
  Histogram* h1 = reg.histogram("obs_test.stable_h", {1, 2, 3});
  Histogram* h2 = reg.histogram("obs_test.stable_h", {99});
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(h1->upper_bounds(), (std::vector<std::int64_t>{1, 2, 3}));
}

TEST(ObsRegistry, LayerScopeNestsByShadowing) {
  Registry& reg = Registry::global();
  EXPECT_EQ(reg.current_layer(), nullptr);
  {
    LayerScope outer("obs_test.outer");
    LayerRecord* o = reg.current_layer();
    ASSERT_NE(o, nullptr);
    EXPECT_EQ(o->layer, "obs_test.outer");
    {
      LayerScope inner("obs_test.inner");
      ASSERT_NE(reg.current_layer(), nullptr);
      EXPECT_EQ(reg.current_layer()->layer, "obs_test.inner");
    }
    EXPECT_EQ(reg.current_layer(), o);
  }
  EXPECT_EQ(reg.current_layer(), nullptr);
  // Re-opening the same layer name resumes the same record.
  LayerScope again("obs_test.outer");
  EXPECT_EQ(reg.current_layer()->layer, "obs_test.outer");
}

TEST(ObsRegistry, LayerRecordCoverage) {
  LayerRecord r;
  EXPECT_EQ(r.coverage(), 0.0);  // no elements: defined as zero
  r.elements_total = 8;
  r.elements_low = 2;
  EXPECT_DOUBLE_EQ(r.coverage(), 0.25);
}

TEST(ObsRegistry, ToJsonPrefixFilterKeepsOnlyMatches) {
  Registry& reg = Registry::global();
  reg.counter("obs_json.keep")->add(3);
  reg.counter("obs_json_other.drop")->add(5);
  reg.gauge("obs_json.g")->set(1.5);
  reg.histogram("obs_json.h", {4})->observe(2);
  const std::string json = reg.to_json({"obs_json."});
  EXPECT_NE(json.find("\"obs_json.keep\""), std::string::npos);
  EXPECT_NE(json.find("\"obs_json.g\": 1.5"), std::string::npos);
  EXPECT_NE(json.find("\"obs_json.h\""), std::string::npos);
  EXPECT_EQ(json.find("obs_json_other.drop"), std::string::npos);
  // An impossible prefix empties every metric section.
  const std::string none = reg.to_json({"no_such_prefix."});
  EXPECT_NE(none.find("\"counters\": {}"), std::string::npos);
  EXPECT_NE(none.find("\"gauges\": {}"), std::string::npos);
  EXPECT_NE(none.find("\"histograms\": {}"), std::string::npos);
}

TEST(ObsRegistry, ToTextRendersLayerAndCounterTables) {
  Registry& reg = Registry::global();
  LayerRecord* rec = reg.layer_record("obs_text.layer");
  rec->subtensors_total = 4;
  rec->subtensors_low = 1;
  reg.counter("obs_text.counter")->add(7);
  const std::string text = reg.to_text();
  EXPECT_NE(text.find("obs_text.layer"), std::string::npos);
  EXPECT_NE(text.find("obs_text.counter"), std::string::npos);
  EXPECT_NE(text.find("counters:"), std::string::npos);
}

TEST(ObsTracer, SpansBalanceAndSerialize) {
  Tracer& t = Tracer::global();
  t.reset();
  t.set_enabled(true);
  {
    ScopedSpan outer("obs_span.outer");
    ScopedSpan inner("obs_span.inner");
  }
  t.set_enabled(false);
  const std::string json = t.to_chrome_json();
  EXPECT_EQ(count_occurrences(json, "\"ph\": \"B\""), 2);
  EXPECT_EQ(count_occurrences(json, "\"ph\": \"E\""), 2);
  // LIFO destruction: the inner span closes before the outer one.
  EXPECT_LT(json.find("\"obs_span.inner\", \"cat\": \"drift\", \"ph\": \"E\""),
            json.find("\"obs_span.outer\", \"cat\": \"drift\", \"ph\": \"E\""));
  t.reset();
}

TEST(ObsTracer, DisabledTracerDropsEverything) {
  Tracer& t = Tracer::global();
  t.reset();
  t.set_enabled(false);
  {
    ScopedSpan s("obs_span.dropped");
  }
  t.complete("obs_span.dropped_x", 0, 0, 5);
  const std::string json = t.to_chrome_json();
  EXPECT_EQ(json.find("obs_span.dropped"), std::string::npos);
  EXPECT_EQ(count_occurrences(json, "\"ph\": \"B\""), 0);
}

TEST(ObsTracer, SimTracksAreStableAndNamed) {
  Tracer& t = Tracer::global();
  t.reset();
  const std::uint32_t a = t.sim_track("obs_track.a");
  const std::uint32_t b = t.sim_track("obs_track.b");
  EXPECT_NE(a, b);
  EXPECT_EQ(t.sim_track("obs_track.a"), a);
  t.set_enabled(true);
  t.complete("tile", a, 100, 25);
  t.set_enabled(false);
  const std::string json = t.to_chrome_json();
  // Metadata names the track; the X event carries explicit ts/dur on
  // the simulated-cycle pid.
  EXPECT_NE(json.find("\"thread_name\", \"ph\": \"M\""), std::string::npos);
  EXPECT_NE(json.find("\"obs_track.a\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\", \"ts\": 100, \"dur\": 25, \"pid\": 1"),
            std::string::npos);
  t.reset();
}

TEST(ObsWriteFile, RoundTripsAndReportsFailure) {
  const std::string path = testing::TempDir() + "drift_obs_write_test.json";
  EXPECT_TRUE(write_file(path, "{\"ok\": true}\n"));
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "{\"ok\": true}\n");
  EXPECT_FALSE(write_file("/nonexistent_drift_dir/out.json", "x"));
}

TEST(ObsMacros, CompileInBothModesAndCountWhenOn) {
  DRIFT_OBS_COUNT("obs_macro.count", 2);
  DRIFT_OBS_COUNT("obs_macro.count", 3);
  DRIFT_OBS_GAUGE_SET("obs_macro.gauge", 1.5);
  DRIFT_OBS_HISTOGRAM("obs_macro.hist", 4, 1, 10);
  DRIFT_OBS_LAYER(rec, rec->dram_bytes += 1);  // no scope: skipped
  DRIFT_OBS_SPAN("obs_macro.span");
#ifndef DRIFT_OBS_OFF
  Registry& reg = Registry::global();
  EXPECT_EQ(reg.counter("obs_macro.count")->value(), 5);
  EXPECT_EQ(reg.gauge("obs_macro.gauge")->value(), 1.5);
  EXPECT_EQ(reg.histogram("obs_macro.hist", {})->total_count(), 1);
#endif
}

}  // namespace
}  // namespace drift::obs
