// Tests for the accelerator system models and the paper's headline
// performance/energy orderings.
#include <gtest/gtest.h>

#include "accel/bitfusion.hpp"
#include "accel/compare.hpp"
#include "accel/drift_accel.hpp"
#include "accel/drq_accel.hpp"
#include "accel/eyeriss.hpp"
#include "accel/traffic.hpp"

namespace drift::accel {
namespace {

CompareConfig default_config() {
  CompareConfig cfg;
  cfg.drift_selector.density_threshold = 0.5;
  return cfg;
}

TEST(Traffic, OperandBitsWeighted) {
  core::LayerWork w;
  w.m_high = 25;
  w.m_low = 75;
  w.n_high = 50;
  w.n_low = 50;
  w.k = 10;
  const OperandBits bits = operand_bits_from_work(w);
  EXPECT_NEAR(bits.act_bits, 0.25 * 8 + 0.75 * 4, 1e-12);
  EXPECT_NEAR(bits.weight_bits, 6.0, 1e-12);
}

TEST(Traffic, ActResidencyAvoidsRereads) {
  AccelConfig cfg;
  const core::GemmDims dims{64, 64, 64};  // 4 KiB of INT8 acts: resident
  const OperandBits bits{8.0, 8.0, 8};
  const LayerTraffic t = compute_traffic(dims, bits, 10, 1, cfg);
  EXPECT_EQ(t.act_dram_bytes, 64 * 64);

  AccelConfig tiny = cfg;
  tiny.global_buffer_bytes = 16;
  const LayerTraffic t2 = compute_traffic(dims, bits, 10, 1, tiny);
  EXPECT_EQ(t2.act_dram_bytes, 64 * 64 * 10);
}

TEST(Traffic, PsumSpillGrowsWithReductionTiles) {
  AccelConfig cfg;
  const core::GemmDims dims{8, 8, 8};
  const OperandBits bits{8.0, 8.0, 8};
  const LayerTraffic one = compute_traffic(dims, bits, 1, 1, cfg);
  const LayerTraffic four = compute_traffic(dims, bits, 1, 4, cfg);
  EXPECT_GT(four.buffer_read_bytes, one.buffer_read_bytes);
}

TEST(Traffic, CoreEnergyScalesWithPrecision) {
  energy::EnergyConstants ec;
  core::LayerWork high, low;
  high.m_high = 100;
  high.n_high = 100;
  high.k = 100;
  low.m_low = 100;
  low.n_low = 100;
  low.k = 100;
  // INT4xINT4 uses 4 BB ops vs 16: core energy ratio approaches 4x
  // (minus the shared psum-add term).
  EXPECT_GT(core_energy_pj(high, ec) / core_energy_pj(low, ec), 2.5);
}

TEST(Energy, BitbrickOpsPerMac) {
  EXPECT_EQ(energy::bitbrick_ops_per_mac(8, 8), 16);
  EXPECT_EQ(energy::bitbrick_ops_per_mac(4, 4), 4);
  EXPECT_EQ(energy::bitbrick_ops_per_mac(8, 4), 8);
  EXPECT_EQ(energy::bitbrick_ops_per_mac(4, 8), 8);
  EXPECT_EQ(energy::bitbrick_ops_per_mac(3, 5), 6);
}

TEST(Eyeriss, MappedPesRespectsKernel) {
  nn::LayerGemm conv;
  conv.kind = nn::LayerKind::kConv;
  conv.kernel = 3;
  conv.dims = {56 * 56, 576, 64};
  // 4 filter groups of 3 rows = 12 rows, 16 columns.
  EXPECT_EQ(EyerissModel::mapped_pes(conv), 12 * 16);

  nn::LayerGemm fc;
  fc.kind = nn::LayerKind::kFc;
  fc.kernel = 1;
  fc.dims = {1, 512, 1000};
  EXPECT_EQ(EyerissModel::mapped_pes(fc), 14 * 1);
}

TEST(Accel, RunResultsAreInternallyConsistent) {
  const auto spec = nn::make_deit_s();
  const auto cmp = compare_workload(spec, default_config());
  for (const RunResult* r :
       {&cmp.eyeriss, &cmp.bitfusion, &cmp.drq, &cmp.drift}) {
    EXPECT_EQ(r->layers.size(), spec.layers.size());
    EXPECT_GT(r->cycles, 0);
    EXPECT_GT(r->energy.total_pj(), 0.0);
    std::int64_t layer_sum = 0;
    for (const auto& l : r->layers) layer_sum += l.cycles;
    EXPECT_EQ(layer_sum, r->cycles);
  }
}

TEST(Accel, BitFusionFasterThanEyeriss) {
  const auto cmp = compare_workload(nn::make_resnet18(), default_config());
  EXPECT_GT(cmp.speedup_bitfusion(), 2.0);
  EXPECT_LT(cmp.speedup_bitfusion(), 8.0);
}

TEST(Accel, DriftFasterThanBitFusionAndDrq) {
  for (const auto& spec : {nn::make_resnet18(), nn::make_deit_s(),
                           nn::make_bert_base(128)}) {
    const auto cmp = compare_workload(spec, default_config());
    EXPECT_GT(cmp.speedup_drift(), cmp.speedup_bitfusion()) << spec.model;
    EXPECT_GT(cmp.speedup_drift(), cmp.speedup_drq()) << spec.model;
  }
}

TEST(Accel, DrqGainsOnCnnButNotOnVit) {
  // The Figure 7 signature: DRQ beats BitFusion clearly on CNNs but is
  // nearly flat on ViT-B (1.07x in the paper) because its precision
  // pattern interleaves and the controller falls back.
  const auto cnn = compare_workload(nn::make_resnet18(), default_config());
  const auto vit = compare_workload(nn::make_vit_b16(), default_config());
  const double drq_gain_cnn = cnn.speedup_drq() / cnn.speedup_bitfusion();
  const double drq_gain_vit = vit.speedup_drq() / vit.speedup_bitfusion();
  EXPECT_GT(drq_gain_cnn, 1.25);
  EXPECT_LT(drq_gain_vit, 1.25);
  EXPECT_GT(drq_gain_vit, 0.9);
}

TEST(Accel, EnergyOrderingMatchesPaper) {
  const auto cmp = compare_workload(nn::make_resnet50(), default_config());
  // Normalized energy: Drift < DRQ < BitFusion < Eyeriss(=1).
  EXPECT_LT(cmp.energy_drift(), cmp.energy_drq());
  EXPECT_LT(cmp.energy_drq(), cmp.energy_bitfusion());
  EXPECT_LT(cmp.energy_bitfusion(), 1.0);
}

TEST(Accel, DriftStaticEnergyFractionBelowDrq) {
  // Figure 8: Drift's better utilization shrinks the static share
  // (41.2% vs 51.9% in the paper).
  const auto cmp = compare_workload(nn::make_bert_base(128),
                                    default_config());
  const double drift_static =
      cmp.drift.energy.static_pj / cmp.drift.energy.total_pj();
  const double drq_static =
      cmp.drq.energy.static_pj / cmp.drq.energy.total_pj();
  EXPECT_LT(drift_static, drq_static);
}

TEST(Accel, SchedulerPoliciesOrdering) {
  const auto spec = nn::make_bert_base(128);
  CompareConfig cfg = default_config();
  nn::MixConfig mix_cfg;
  mix_cfg.algo = nn::MixAlgorithm::kDrift;
  mix_cfg.drift = cfg.drift_selector;
  const auto mixes = nn::build_mixes(spec, mix_cfg);

  DriftAccelModel greedy(cfg.hw, SchedulerPolicy::kGreedy);
  DriftAccelModel oracle(cfg.hw, SchedulerPolicy::kExhaustive);
  DriftAccelModel fixed(cfg.hw, SchedulerPolicy::kFixed);
  const auto g = greedy.run(spec, mixes);
  const auto o = oracle.run(spec, mixes);
  const auto f = fixed.run(spec, mixes);
  EXPECT_LE(o.cycles, g.cycles);
  EXPECT_LT(g.cycles, f.cycles);  // balancing must beat the fixed split
  // Greedy within a few percent of the oracle.
  EXPECT_LT(static_cast<double>(g.cycles) / static_cast<double>(o.cycles),
            1.05);
}

TEST(Accel, MixMismatchThrows) {
  const auto spec = nn::make_deit_s();
  BitFusionModel bf(AccelConfig{});
  std::vector<nn::LayerMix> empty;
  EXPECT_THROW(bf.run(spec, empty), drift::check_error);
}

TEST(Accel, NamesAndPolicies) {
  EXPECT_EQ(BitFusionModel(AccelConfig{}).name(), "BitFusion");
  EXPECT_EQ(DrqAccelModel(AccelConfig{}).name(), "DRQ");
  EXPECT_EQ(EyerissModel(AccelConfig{}).name(), "Eyeriss");
  EXPECT_EQ(DriftAccelModel(AccelConfig{}).name(), "Drift");
  EXPECT_EQ(DriftAccelModel(AccelConfig{}, SchedulerPolicy::kFixed).name(),
            "Drift(fixed)");
}

}  // namespace
}  // namespace drift::accel
