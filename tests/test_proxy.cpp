// Tests for the accuracy/perplexity proxies — the Figure 6 / Table 1
// mechanisms.
#include <gtest/gtest.h>

#include "nn/proxy.hpp"

namespace drift::nn {
namespace {

QuantEngine engine_for(QuantMode mode, double noise_budget = 0.01,
                       bool dynamic_weights = true) {
  QuantEngine::Config cfg;
  cfg.mode = mode;
  cfg.noise_budget = noise_budget;
  cfg.dynamic_weights = dynamic_weights;
  return QuantEngine(cfg);
}

// CNN proxies evaluate Drift with static-INT8 weights: the random-
// feature extractor lacks the trained redundancy that lets real CNNs
// absorb coarse per-channel weight quantization (see EXPERIMENTS.md).
QuantEngine cnn_drift_engine(double noise_budget = 0.01) {
  return engine_for(QuantMode::kDrift, noise_budget,
                    /*dynamic_weights=*/false);
}

TEST(CnnProxy, Fp32AccuracyIsHighButNotPerfect) {
  CnnProxy::Config cfg;
  cfg.samples = 96;
  const CnnProxy proxy(cfg);
  auto engine = engine_for(QuantMode::kFloat32);
  const ProxyResult r = proxy.evaluate(engine);
  EXPECT_GT(r.metric, 0.6);
  EXPECT_LT(r.metric, 1.0);
}

TEST(CnnProxy, Int8CloseToFp32) {
  CnnProxy::Config cfg;
  cfg.samples = 96;
  const CnnProxy proxy(cfg);
  auto fp32 = engine_for(QuantMode::kFloat32);
  auto int8 = engine_for(QuantMode::kStaticInt8);
  const double acc_fp32 = proxy.evaluate(fp32).metric;
  const double acc_int8 = proxy.evaluate(int8).metric;
  EXPECT_GT(acc_int8, acc_fp32 - 0.05);
}

TEST(CnnProxy, DrqAndDriftBothFineOnCnns) {
  // Figure 6: on CNN-style data DRQ matches Drift (its home turf).
  CnnProxy::Config cfg;
  cfg.samples = 96;
  const CnnProxy proxy(cfg);
  auto int8 = engine_for(QuantMode::kStaticInt8);
  auto drq = engine_for(QuantMode::kDrq);
  auto drift = cnn_drift_engine();
  const double acc_int8 = proxy.evaluate(int8).metric;
  const double acc_drq = proxy.evaluate(drq).metric;
  const double acc_drift = proxy.evaluate(drift).metric;
  EXPECT_GT(acc_drq, acc_int8 - 0.08);
  EXPECT_GT(acc_drift, acc_int8 - 0.05);
}

TEST(CnnProxy, DriftUsesSubstantialLowPrecision) {
  CnnProxy::Config cfg;
  cfg.samples = 32;
  const CnnProxy proxy(cfg);
  auto drift = cnn_drift_engine(0.03);
  const ProxyResult r = proxy.evaluate(drift);
  EXPECT_GT(r.act_low_fraction, 0.3);
}

TEST(TransformerProxy, DrqCollapsesDriftSurvives) {
  // The Figure 6 headline: DRQ loses double-digit accuracy on
  // transformer-style activations while Drift stays near INT8.
  TransformerProxy::Config cfg;
  cfg.samples = 96;
  const TransformerProxy proxy(cfg);
  auto int8 = engine_for(QuantMode::kStaticInt8);
  auto drq = engine_for(QuantMode::kDrq);
  auto drift = engine_for(QuantMode::kDrift);
  const double acc_int8 = proxy.evaluate(int8).metric;
  const double acc_drq = proxy.evaluate(drq).metric;
  const double acc_drift = proxy.evaluate(drift).metric;
  EXPECT_GT(acc_int8, 0.6);
  EXPECT_LT(acc_drq, acc_int8 - 0.10);   // >10 point collapse
  EXPECT_GT(acc_drift, acc_int8 - 0.09); // Drift stays close
}

TEST(TransformerProxy, DriftKeepsHighLowBitShare) {
  TransformerProxy::Config cfg;
  cfg.samples = 32;
  const TransformerProxy proxy(cfg);
  auto drift = engine_for(QuantMode::kDrift);
  const ProxyResult r = proxy.evaluate(drift);
  EXPECT_GT(r.act_low_fraction, 0.4);
}

TEST(LmProxy, TeacherPerplexityIsBaseline) {
  LmProxy::Config cfg;
  cfg.samples = 16;
  const LmProxy proxy(cfg);
  auto fp32 = engine_for(QuantMode::kFloat32);
  const double ppl_fp32 = proxy.evaluate(fp32).metric;
  // The FP32 model scored against its own distribution: perplexity is
  // the teacher entropy exponential — finite, above 1, below vocab.
  EXPECT_GT(ppl_fp32, 1.0);
  EXPECT_LT(ppl_fp32, 64.0);
}

TEST(LmProxy, QuantizedPerplexityDegradesGently) {
  LmProxy::Config cfg;
  cfg.samples = 16;
  const LmProxy proxy(cfg);
  auto fp32 = engine_for(QuantMode::kFloat32);
  auto int8 = engine_for(QuantMode::kStaticInt8);
  auto drift = engine_for(QuantMode::kDrift);
  const double ppl_fp32 = proxy.evaluate(fp32).metric;
  const double ppl_int8 = proxy.evaluate(int8).metric;
  const double ppl_drift = proxy.evaluate(drift).metric;
  // Scoring against the FP32 teacher: quantized models cannot beat it.
  EXPECT_GE(ppl_int8, ppl_fp32 - 1e-6);
  EXPECT_GE(ppl_drift, ppl_fp32 - 1e-6);
  // Table 1 shape: Drift stays within a modest factor of INT8.
  EXPECT_LT(ppl_drift, ppl_int8 * 1.35);
}

TEST(LmProxy, DriftLowBitShareIsHigh) {
  LmProxy::Config cfg;
  cfg.samples = 8;
  const LmProxy proxy(cfg);
  auto drift = engine_for(QuantMode::kDrift, /*noise_budget=*/0.03);
  const ProxyResult r = proxy.evaluate(drift);
  EXPECT_GT(r.act_low_fraction, 0.5);
}

TEST(LmProxy, CorpusProfilesDiffer) {
  const auto wiki = wiki_stream_profile();
  const auto c4 = c4_stream_profile();
  EXPECT_LT(wiki.log_sigma, c4.log_sigma);
  EXPECT_LT(wiki.outlier_fraction, c4.outlier_fraction);
}

TEST(Proxy, EvaluationIsDeterministic) {
  TransformerProxy::Config cfg;
  cfg.samples = 24;
  const TransformerProxy proxy(cfg);
  auto e1 = engine_for(QuantMode::kDrift);
  auto e2 = engine_for(QuantMode::kDrift);
  EXPECT_DOUBLE_EQ(proxy.evaluate(e1).metric, proxy.evaluate(e2).metric);
}

}  // namespace
}  // namespace drift::nn
