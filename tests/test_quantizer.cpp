// Tests for src/core quantization primitives (Equations 1-3).
#include <gtest/gtest.h>

#include <cmath>

#include "core/capability.hpp"
#include "core/precision.hpp"
#include "core/quantizer.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace drift::core {
namespace {

TEST(Precision, MaxLevels) {
  EXPECT_EQ(kInt8.max_level(), 127);
  EXPECT_EQ(kInt4.max_level(), 7);
  EXPECT_EQ(kInt5.max_level(), 15);
  EXPECT_EQ(kInt3.max_level(), 3);
}

TEST(Precision, ToString) {
  EXPECT_EQ(kInt8.to_string(), "INT8");
  EXPECT_EQ(kInt4.to_string(), "INT4");
}

TEST(EnumerateChoices, FiveChoicesFor8To4) {
  // Section 3.1: "there are five choices to convert an 8-bit integer
  // to 4-bit".
  const auto choices = enumerate_choices(kInt8, kInt4);
  ASSERT_EQ(choices.size(), 5u);
  for (const auto& c : choices) {
    EXPECT_EQ(c.hc + c.lc, 4);  // Equation 2: hp = hc + lp + lc
    EXPECT_GE(c.hc, 0);
    EXPECT_GE(c.lc, 0);
  }
  EXPECT_EQ(choices.front().hc, 0);
  EXPECT_EQ(choices.back().hc, 4);
}

TEST(EnumerateChoices, EqualPrecisionsYieldIdentity) {
  const auto choices = enumerate_choices(kInt8, kInt8);
  ASSERT_EQ(choices.size(), 1u);
  EXPECT_EQ(choices[0].hc, 0);
  EXPECT_EQ(choices[0].lc, 0);
}

TEST(QuantParams, DeltaFromMaxAbs) {
  const std::vector<float> v = {0.5f, -2.54f, 1.0f};
  const QuantParams p = compute_quant_params(v, kInt8);
  EXPECT_NEAR(p.delta, 2.54 / 127.0, 1e-9);
  // Eq. 1 consequence: RR of the full tensor equals max|X|.
  EXPECT_NEAR(p.representation_range(), 2.54, 1e-6);
  EXPECT_DOUBLE_EQ(p.representation_density(), p.delta);
}

TEST(QuantParams, AllZeroTensorGetsUnitDelta) {
  const std::vector<float> v = {0.0f, 0.0f};
  const QuantParams p = compute_quant_params(v, kInt8);
  EXPECT_DOUBLE_EQ(p.delta, 1.0);
}

TEST(Quantize, RoundTripErrorBoundedByHalfDelta) {
  Rng rng(51);
  std::vector<float> v;
  for (int i = 0; i < 1000; ++i) {
    v.push_back(static_cast<float>(rng.laplace(0.7)));
  }
  const QuantParams p = compute_quant_params(v, kInt8);
  for (float x : v) {
    const float back = dequantize_value(quantize_value(x, p), p);
    EXPECT_LE(std::abs(back - x), 0.5 * p.delta + 1e-6);
  }
}

TEST(Quantize, ClampsBeyondCalibratedRange) {
  const std::vector<float> v = {1.0f, -1.0f};
  const QuantParams p = compute_quant_params(v, kInt8);
  EXPECT_EQ(quantize_value(50.0f, p), 127);
  EXPECT_EQ(quantize_value(-50.0f, p), -127);
}

TEST(Quantize, TensorRoundTrip) {
  Rng rng(53);
  TensorF x(Shape{4, 8});
  for (float& v : x.data()) v = static_cast<float>(rng.laplace(1.0));
  const QuantParams p = compute_quant_params(x.data(), kInt8);
  const TensorI32 q = quantize(x, p);
  const TensorF back = dequantize(q, p);
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    EXPECT_NEAR(back.at(i), x.at(i), 0.5 * p.delta + 1e-6);
  }
}

TEST(ConvertToLow, PureLowClipDividesBy16) {
  // (hc=0, lc=4): q_lp = round(q / 16).
  const ConversionChoice c{0, 4};
  EXPECT_EQ(convert_to_low(32, kInt4, c), 2);
  EXPECT_EQ(convert_to_low(-48, kInt4, c), -3);
  EXPECT_EQ(convert_to_low(7, kInt4, c), 0);   // rounds to zero
  EXPECT_EQ(convert_to_low(9, kInt4, c), 1);
}

TEST(ConvertToLow, PureHighClipKeepsSmallValuesExact) {
  // (hc=4, lc=0): small-magnitude codes survive unchanged.
  const ConversionChoice c{4, 0};
  for (std::int32_t q = -7; q <= 7; ++q) {
    EXPECT_EQ(convert_to_low(q, kInt4, c), q);
  }
  // Values beyond the 4-bit range clamp (RR criterion prevents this in
  // correctly selected sub-tensors).
  EXPECT_EQ(convert_to_low(100, kInt4, c), 7);
}

TEST(ConvertToLow, DequantizeLowUsesScaledStep) {
  QuantParams p;
  p.delta = 0.01;
  const ConversionChoice c{1, 3};
  // step = 2^3 * delta = 0.08
  EXPECT_NEAR(dequantize_low(5, p, c), 0.4f, 1e-6);
}

TEST(ConversionError, ZeroWhenValueRepresentable) {
  QuantParams p;
  p.delta = 0.5;
  const ConversionChoice high_clip{4, 0};
  EXPECT_DOUBLE_EQ(conversion_error(6, p, kInt4, high_clip), 0.0);
}

TEST(ConversionError, BoundedByHalfStepInRange) {
  QuantParams p;
  p.delta = 0.5;
  const ConversionChoice c{0, 4};
  for (std::int32_t q = -127; q <= 127; ++q) {
    const double step = p.delta * 16.0;
    EXPECT_LE(conversion_error(q, p, kInt8, c), 0.5 * step + 1e-9);
  }
}

TEST(Capability, MatchesEquationThree) {
  QuantParams p;
  p.delta = 0.02;
  // RR = (2^7 - 1) / 2^hc * delta ; RD = 2^lc * delta.
  EXPECT_NEAR(representation_range(kInt8, 0, p.delta), 127 * 0.02, 1e-12);
  EXPECT_NEAR(representation_range(kInt8, 2, p.delta), 127.0 / 4 * 0.02,
              1e-12);
  EXPECT_NEAR(representation_density(0, p.delta), 0.02, 1e-12);
  EXPECT_NEAR(representation_density(4, p.delta), 0.32, 1e-12);
}

TEST(Capability, RangeDensityTradeoffAcrossChoices) {
  // Walking hc up halves RR and (via lc down) halves RD: range and
  // resolution trade off exactly as Figure 3 illustrates.
  QuantParams p;
  p.delta = 1.0;
  const auto choices = enumerate_choices(kInt8, kInt4);
  for (std::size_t i = 1; i < choices.size(); ++i) {
    const Capability prev = conversion_capability(kInt8, p, choices[i - 1]);
    const Capability curr = conversion_capability(kInt8, p, choices[i]);
    EXPECT_NEAR(curr.range, prev.range / 2.0, 1e-9);
    EXPECT_NEAR(curr.density, prev.density / 2.0, 1e-9);
  }
}

class ConversionErrorSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ConversionErrorSweep, ErrorWithinHalfStepWhenRangeCovers) {
  // Property: for any (hc, lc) choice, every code whose magnitude fits
  // the clipped range round-trips within half the widened step.
  const auto [hc, lc] = GetParam();
  QuantParams p;
  p.delta = 0.125;
  const ConversionChoice c{hc, lc};
  const std::int64_t covered = (std::int64_t{7} << lc);  // lp range * 2^lc
  for (std::int32_t q = static_cast<std::int32_t>(-covered);
       q <= covered; ++q) {
    const double step = p.delta * static_cast<double>(1 << lc);
    EXPECT_LE(conversion_error(q, p, kInt4, c), 0.5 * step + 1e-9)
        << "q=" << q << " hc=" << hc << " lc=" << lc;
  }
}

INSTANTIATE_TEST_SUITE_P(AllChoices, ConversionErrorSweep,
                         ::testing::Values(std::make_tuple(0, 4),
                                           std::make_tuple(1, 3),
                                           std::make_tuple(2, 2),
                                           std::make_tuple(3, 1),
                                           std::make_tuple(4, 0)));

}  // namespace
}  // namespace drift::core
