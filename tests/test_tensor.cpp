// Tests for src/tensor: shapes, tensors, sub-tensor views/partitions.
#include <gtest/gtest.h>

#include <numeric>

#include "tensor/shape.hpp"
#include "tensor/subtensor.hpp"
#include "tensor/tensor.hpp"
#include "util/assert.hpp"

namespace drift {
namespace {

TEST(Shape, NumelAndRank) {
  const Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3);
  EXPECT_EQ(s.numel(), 24);
  EXPECT_EQ(s.dim(1), 3);
}

TEST(Shape, RowMajorStrides) {
  const Shape s{2, 3, 4};
  const auto strides = s.strides();
  EXPECT_EQ(strides, (std::vector<std::int64_t>{12, 4, 1}));
}

TEST(Shape, OffsetComputation) {
  const Shape s{2, 3, 4};
  EXPECT_EQ(s.offset({0, 0, 0}), 0);
  EXPECT_EQ(s.offset({1, 2, 3}), 23);
  EXPECT_EQ(s.offset({1, 0, 2}), 14);
}

TEST(Shape, OffsetRejectsOutOfBounds) {
  const Shape s{2, 3};
  EXPECT_THROW(s.offset({2, 0}), check_error);
  EXPECT_THROW(s.offset({0, 3}), check_error);
  EXPECT_THROW(s.offset({0}), check_error);
}

TEST(Shape, EqualityAndToString) {
  EXPECT_EQ((Shape{2, 3}), (Shape{2, 3}));
  EXPECT_NE((Shape{2, 3}), (Shape{3, 2}));
  EXPECT_EQ((Shape{2, 3}).to_string(), "[2, 3]");
}

TEST(Shape, RejectsNegativeDims) {
  EXPECT_THROW(Shape({-1, 2}), check_error);
}

TEST(Tensor, FillAndAccessors) {
  TensorF t(Shape{2, 3}, 1.5f);
  EXPECT_EQ(t.numel(), 6);
  EXPECT_FLOAT_EQ(t(1, 2), 1.5f);
  t(0, 1) = 7.0f;
  EXPECT_FLOAT_EQ(t.at(1), 7.0f);
}

TEST(Tensor, RowViewIsContiguousSlice) {
  TensorF t(Shape{3, 4});
  std::iota(t.data().begin(), t.data().end(), 0.0f);
  auto row = t.row(1);
  ASSERT_EQ(row.size(), 4u);
  EXPECT_FLOAT_EQ(row[0], 4.0f);
  EXPECT_FLOAT_EQ(row[3], 7.0f);
  row[0] = -1.0f;
  EXPECT_FLOAT_EQ(t(1, 0), -1.0f);
}

TEST(Tensor, DataVectorConstructorValidatesSize) {
  EXPECT_THROW(TensorF(Shape{2, 2}, std::vector<float>{1.0f}), check_error);
}

TEST(Tensor, FourDAccessor) {
  Tensor<std::int32_t> t(Shape{2, 2, 2, 2}, 0);
  t(1, 1, 1, 1) = 42;
  EXPECT_EQ(t.at(15), 42);
}

TEST(SubTensorView, GatherScatterRoundTrip) {
  std::vector<float> buffer(12);
  std::iota(buffer.begin(), buffer.end(), 0.0f);
  SubTensorView view(std::vector<::drift::Run>{{2, 3}, {8, 2}});
  EXPECT_EQ(view.size(), 5);

  std::vector<float> gathered(5);
  view.gather<float>(buffer, gathered);
  EXPECT_EQ(gathered, (std::vector<float>{2, 3, 4, 8, 9}));

  std::vector<float> replacement = {-1, -2, -3, -4, -5};
  view.scatter<float>(replacement, buffer);
  EXPECT_FLOAT_EQ(buffer[2], -1.0f);
  EXPECT_FLOAT_EQ(buffer[9], -5.0f);
  EXPECT_FLOAT_EQ(buffer[5], 5.0f);  // untouched
}

TEST(SubTensorView, ForEachVisitsAllElementsInOrder) {
  std::vector<float> buffer = {0, 1, 2, 3, 4, 5};
  SubTensorView view(std::vector<::drift::Run>{{4, 2}, {0, 1}});
  std::vector<float> seen;
  view.for_each<float>(buffer, [&](float v) { seen.push_back(v); });
  EXPECT_EQ(seen, (std::vector<float>{4, 5, 0}));
}

TEST(SubTensorView, TransformMutatesInPlace) {
  std::vector<float> buffer = {1, 2, 3, 4};
  SubTensorView view(std::vector<::drift::Run>{{1, 2}});
  view.transform<float>(std::span<float>(buffer), [](float& v) { v *= 10; });
  EXPECT_EQ(buffer, (std::vector<float>{1, 20, 30, 4}));
}

TEST(SubTensorView, RejectsInvalidRuns) {
  EXPECT_THROW(SubTensorView(std::vector<::drift::Run>{{-1, 2}}), check_error);
  EXPECT_THROW(SubTensorView(std::vector<::drift::Run>{{0, 0}}), check_error);
}

TEST(PartitionRows, OneViewPerRow) {
  const auto views = partition_rows(Shape{4, 5});
  ASSERT_EQ(views.size(), 4u);
  for (std::size_t r = 0; r < 4; ++r) {
    EXPECT_EQ(views[r].size(), 5);
    EXPECT_EQ(views[r].runs().front().offset,
              static_cast<std::int64_t>(r) * 5);
  }
}

TEST(PartitionRegions, CoversEveryElementExactlyOnce) {
  const Shape shape{3, 7, 5};  // deliberately non-divisible by region 4
  const auto views = partition_regions(shape, 4);
  std::vector<int> touched(static_cast<std::size_t>(shape.numel()), 0);
  std::int64_t total = 0;
  for (const auto& v : views) {
    total += v.size();
    for (const ::drift::Run& r : v.runs()) {
      for (std::int64_t i = 0; i < r.length; ++i) {
        ++touched[static_cast<std::size_t>(r.offset + i)];
      }
    }
  }
  EXPECT_EQ(total, shape.numel());
  for (int t : touched) EXPECT_EQ(t, 1);
}

TEST(PartitionRegions, RegionCountAndChannelSpan) {
  // 8x8 spatial, region 4 -> 2x2 regions, each spanning all channels.
  const auto views = partition_regions(Shape{16, 8, 8}, 4);
  ASSERT_EQ(views.size(), 4u);
  for (const auto& v : views) EXPECT_EQ(v.size(), 16 * 4 * 4);
}

TEST(PartitionBlocks, LastBlockMayBeShort) {
  const auto views = partition_blocks(10, 4);
  ASSERT_EQ(views.size(), 3u);
  EXPECT_EQ(views[0].size(), 4);
  EXPECT_EQ(views[2].size(), 2);
}

class PartitionRegionsParam
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(PartitionRegionsParam, PartitionIsAlwaysExact) {
  const auto [c, h, w, g] = GetParam();
  const Shape shape{c, h, w};
  const auto views = partition_regions(shape, g);
  std::int64_t total = 0;
  for (const auto& v : views) total += v.size();
  EXPECT_EQ(total, shape.numel());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PartitionRegionsParam,
    ::testing::Values(std::make_tuple(1, 1, 1, 1),
                      std::make_tuple(4, 16, 16, 4),
                      std::make_tuple(3, 5, 9, 4),
                      std::make_tuple(8, 14, 14, 7),
                      std::make_tuple(2, 32, 8, 16),
                      std::make_tuple(5, 11, 13, 3)));

}  // namespace
}  // namespace drift
