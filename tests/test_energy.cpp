// Tests for the energy constants and breakdown accounting.
#include <gtest/gtest.h>

#include "energy/constants.hpp"

namespace drift::energy {
namespace {

TEST(Energy, BreakdownSumsAndAccumulates) {
  EnergyBreakdown a{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(a.total_pj(), 10.0);
  EnergyBreakdown b{0.5, 0.5, 0.5, 0.5};
  a += b;
  EXPECT_DOUBLE_EQ(a.static_pj, 1.5);
  EXPECT_DOUBLE_EQ(a.total_pj(), 12.0);
}

TEST(Energy, ConstantsOrderingsAreSane) {
  const EnergyConstants ec = default_constants();
  // An FP32 MAC costs far more than an INT8 MAC (16 BB ops + psum add).
  const double int8_mac =
      16 * ec.e_bitbrick_op_pj + ec.e_psum_add_pj;
  EXPECT_GT(ec.e_fp32_mac_pj, 3.0 * int8_mac);
  // INT4 is ~4x cheaper than INT8 on the BB substrate.
  const double int4_mac = 4 * ec.e_bitbrick_op_pj + ec.e_psum_add_pj;
  EXPECT_GT(int8_mac / int4_mac, 2.5);
  // Buffer writes cost at least as much as reads.
  EXPECT_GE(ec.e_buffer_write_pj_per_byte, ec.e_buffer_read_pj_per_byte);
}

TEST(Energy, BitbrickOpsCoverFlexiblePrecisions) {
  // pa x ceil(pw/4): the spatial fusion arithmetic of the BG.
  EXPECT_EQ(bitbrick_ops_per_mac(1, 4), 1);
  EXPECT_EQ(bitbrick_ops_per_mac(8, 8), 16);
  EXPECT_EQ(bitbrick_ops_per_mac(5, 5), 10);
  EXPECT_EQ(bitbrick_ops_per_mac(3, 4), 3);
  EXPECT_EQ(bitbrick_ops_per_mac(4, 5), 8);
}

class BitbrickSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BitbrickSweep, MonotoneInBothOperands) {
  const auto [pa, pw] = GetParam();
  EXPECT_LE(bitbrick_ops_per_mac(pa, pw), bitbrick_ops_per_mac(pa + 1, pw));
  EXPECT_LE(bitbrick_ops_per_mac(pa, pw), bitbrick_ops_per_mac(pa, pw + 4));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BitbrickSweep,
    ::testing::Combine(::testing::Values(1, 3, 4, 5, 8),
                       ::testing::Values(3, 4, 5, 8)));

}  // namespace
}  // namespace drift::energy
