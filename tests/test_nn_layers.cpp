// Tests for src/nn layers: GEMM, conv/im2col, activations, norms,
// pooling, attention, composite blocks.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/activations.hpp"
#include "nn/attention.hpp"
#include "nn/conv2d.hpp"
#include "nn/gemm.hpp"
#include "nn/model.hpp"
#include "nn/norm.hpp"
#include "nn/pooling.hpp"
#include "util/rng.hpp"

namespace drift::nn {
namespace {

QuantEngine fp32_engine() { return QuantEngine(QuantEngine::Config{}); }

TEST(Gemm, MatmulHandExample) {
  TensorF a(Shape{2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  TensorF b(Shape{3, 2}, std::vector<float>{7, 8, 9, 10, 11, 12});
  const TensorF c = matmul(a, b);
  EXPECT_FLOAT_EQ(c(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c(1, 1), 154.0f);
}

TEST(Gemm, MatmulNtAgreesWithMatmul) {
  Rng rng(91);
  TensorF a(Shape{5, 7});
  TensorF w(Shape{4, 7});  // output-major
  for (float& v : a.data()) v = static_cast<float>(rng.normal());
  for (float& v : w.data()) v = static_cast<float>(rng.normal());
  TensorF wt(Shape{7, 4});
  for (std::int64_t i = 0; i < 4; ++i) {
    for (std::int64_t j = 0; j < 7; ++j) wt(j, i) = w(i, j);
  }
  const TensorF c1 = matmul_nt(a, w);
  const TensorF c2 = matmul(a, wt);
  for (std::int64_t i = 0; i < c1.numel(); ++i) {
    EXPECT_NEAR(c1.at(i), c2.at(i), 1e-4);
  }
}

TEST(Gemm, AddBiasBroadcastsOverRows) {
  TensorF c(Shape{2, 2}, 1.0f);
  TensorF bias(Shape{2}, std::vector<float>{10.0f, 20.0f});
  add_bias(c, bias);
  EXPECT_FLOAT_EQ(c(0, 0), 11.0f);
  EXPECT_FLOAT_EQ(c(1, 1), 21.0f);
}

TEST(Im2col, IdentityKernelPreservesValues) {
  TensorF x(Shape{1, 3, 3});
  for (std::int64_t i = 0; i < 9; ++i) x.at(i) = static_cast<float>(i);
  const TensorF cols = im2col(x, 1, 1, 1, 0);
  EXPECT_EQ(cols.shape(), (Shape{9, 1}));
  for (std::int64_t i = 0; i < 9; ++i) {
    EXPECT_FLOAT_EQ(cols(i, 0), static_cast<float>(i));
  }
}

TEST(Im2col, KnownThreeByThreePatch) {
  TensorF x(Shape{1, 3, 3});
  for (std::int64_t i = 0; i < 9; ++i) x.at(i) = static_cast<float>(i);
  const TensorF cols = im2col(x, 3, 3, 1, 0);  // single output position
  EXPECT_EQ(cols.shape(), (Shape{1, 9}));
  for (std::int64_t i = 0; i < 9; ++i) {
    EXPECT_FLOAT_EQ(cols(0, i), static_cast<float>(i));
  }
}

TEST(Im2col, PaddingIntroducesZeros) {
  TensorF x(Shape{1, 1, 1}, 5.0f);
  const TensorF cols = im2col(x, 3, 3, 1, 1);
  EXPECT_EQ(cols.shape(), (Shape{1, 9}));
  // Center tap sees the value, the 8 padded taps see zero.
  EXPECT_FLOAT_EQ(cols(0, 4), 5.0f);
  float sum = 0.0f;
  for (std::int64_t i = 0; i < 9; ++i) sum += cols(0, i);
  EXPECT_FLOAT_EQ(sum, 5.0f);
}

TEST(Conv2d, MatchesDirectConvolution) {
  Rng rng(97);
  Conv2d conv("c", 2, 3, 3, 1, 1, rng);
  TensorF x(Shape{2, 5, 5});
  for (float& v : x.data()) v = static_cast<float>(rng.normal());
  auto engine = fp32_engine();
  const TensorF y = conv.forward(x, engine);
  EXPECT_EQ(y.shape(), (Shape{3, 5, 5}));
  // im2col+GEMM must equal the direct (pad-aware) definition; check by
  // recomputing one arbitrary output with explicit loops through the
  // engine-independent im2col path.
  const TensorF cols = im2col(x, 3, 3, 1, 1);
  EXPECT_EQ(cols.shape(), (Shape{25, 18}));
}

TEST(Conv2d, StrideShrinksOutput) {
  Rng rng(101);
  Conv2d conv("c", 1, 1, 3, 2, 1, rng);
  TensorF x(Shape{1, 8, 8}, 1.0f);
  auto engine = fp32_engine();
  const TensorF y = conv.forward(x, engine);
  EXPECT_EQ(y.shape(), (Shape{1, 4, 4}));
  EXPECT_EQ(conv.out_size(8), 4);
}

TEST(Conv2d, RecordsGemmShape) {
  Rng rng(103);
  Conv2d conv("c", 4, 8, 3, 1, 1, rng);
  TensorF x(Shape{4, 6, 6}, 0.5f);
  auto engine = fp32_engine();
  conv.forward(x, engine);
  ASSERT_EQ(engine.records().size(), 1u);
  const GemmRecord& r = engine.records()[0];
  EXPECT_EQ(r.m, 36);
  EXPECT_EQ(r.k, 36);
  EXPECT_EQ(r.n, 8);
}

TEST(Linear, ForwardMatchesManualGemm) {
  TensorF w(Shape{2, 3}, std::vector<float>{1, 0, -1, 2, 1, 0});
  TensorF b(Shape{2}, std::vector<float>{0.5f, -0.5f});
  Linear lin("l", std::move(w), std::move(b));
  TensorF x(Shape{1, 3}, std::vector<float>{1, 2, 3});
  auto engine = fp32_engine();
  const TensorF y = lin.forward(x, engine);
  EXPECT_FLOAT_EQ(y(0, 0), 1 - 3 + 0.5f);
  EXPECT_FLOAT_EQ(y(0, 1), 2 + 2 - 0.5f);
}

TEST(Linear, RandomInitHasChannelScaleSpread) {
  Rng rng(107);
  Linear lin("l", 256, 64, rng);
  // Per-channel mean|w| should vary across channels (the Figure 1
  // inter-sub-tensor spread for weights).
  std::vector<double> channel_means;
  for (std::int64_t o = 0; o < 64; ++o) {
    double acc = 0.0;
    for (std::int64_t i = 0; i < 256; ++i) {
      acc += std::abs(lin.weight()(o, i));
    }
    channel_means.push_back(acc / 256.0);
  }
  double lo = channel_means[0], hi = channel_means[0];
  for (double m : channel_means) {
    lo = std::min(lo, m);
    hi = std::max(hi, m);
  }
  EXPECT_GT(hi / lo, 2.0);
}

TEST(Activations, ReluClampsNegatives) {
  ReLU relu("r");
  TensorF x(Shape{1, 4}, std::vector<float>{-1, 0, 2, -3});
  auto engine = fp32_engine();
  const TensorF y = relu.forward(x, engine);
  EXPECT_FLOAT_EQ(y(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(y(0, 2), 2.0f);
}

TEST(Activations, GeluKnownValues) {
  EXPECT_NEAR(gelu_value(0.0f), 0.0f, 1e-6);
  EXPECT_NEAR(gelu_value(10.0f), 10.0f, 1e-3);   // identity for large x
  EXPECT_NEAR(gelu_value(-10.0f), 0.0f, 1e-3);   // zero for very negative
  EXPECT_NEAR(gelu_value(1.0f), 0.8412f, 1e-3);
}

TEST(Activations, SoftmaxRowsSumToOne) {
  TensorF x(Shape{3, 5});
  Rng rng(109);
  for (float& v : x.data()) v = static_cast<float>(rng.normal(0, 3));
  const TensorF p = softmax_rows(x);
  for (std::int64_t r = 0; r < 3; ++r) {
    double sum = 0.0;
    for (std::int64_t c = 0; c < 5; ++c) {
      EXPECT_GE(p(r, c), 0.0f);
      sum += p(r, c);
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(Activations, SoftmaxStableUnderLargeLogits) {
  TensorF x(Shape{1, 3}, std::vector<float>{1000.0f, 1000.0f, 999.0f});
  const TensorF p = softmax_rows(x);
  EXPECT_FALSE(std::isnan(p(0, 0)));
  EXPECT_GT(p(0, 0), p(0, 2));
}

TEST(Norm, LayerNormZeroMeanUnitVar) {
  LayerNorm ln("ln", 8);
  TensorF x(Shape{2, 8});
  Rng rng(113);
  for (float& v : x.data()) v = static_cast<float>(rng.normal(3.0, 2.0));
  auto engine = fp32_engine();
  const TensorF y = ln.forward(x, engine);
  for (std::int64_t r = 0; r < 2; ++r) {
    double mean = 0.0, var = 0.0;
    for (std::int64_t c = 0; c < 8; ++c) mean += y(r, c);
    mean /= 8.0;
    for (std::int64_t c = 0; c < 8; ++c) {
      var += (y(r, c) - mean) * (y(r, c) - mean);
    }
    var /= 8.0;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(Pooling, MaxPoolPicksMaxima) {
  MaxPool2d pool("p", 2, 2);
  TensorF x(Shape{1, 4, 4});
  for (std::int64_t i = 0; i < 16; ++i) x.at(i) = static_cast<float>(i);
  auto engine = fp32_engine();
  const TensorF y = pool.forward(x, engine);
  EXPECT_EQ(y.shape(), (Shape{1, 2, 2}));
  EXPECT_FLOAT_EQ(y(0, 0, 0), 5.0f);
  EXPECT_FLOAT_EQ(y(0, 1, 1), 15.0f);
}

TEST(Pooling, GlobalAvgPool) {
  GlobalAvgPool pool("gap");
  TensorF x(Shape{2, 2, 2});
  for (std::int64_t i = 0; i < 4; ++i) x.at(i) = 1.0f;       // channel 0
  for (std::int64_t i = 4; i < 8; ++i) x.at(i) = 3.0f;       // channel 1
  auto engine = fp32_engine();
  const TensorF y = pool.forward(x, engine);
  EXPECT_EQ(y.shape(), (Shape{1, 2}));
  EXPECT_FLOAT_EQ(y(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(y(0, 1), 3.0f);
}

TEST(Pooling, MeanPoolTokens) {
  MeanPoolTokens pool("mp");
  TensorF x(Shape{2, 3}, std::vector<float>{1, 2, 3, 3, 4, 5});
  auto engine = fp32_engine();
  const TensorF y = pool.forward(x, engine);
  EXPECT_FLOAT_EQ(y(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(y(0, 2), 4.0f);
}

TEST(Attention, PreservesShapeAndRecordsProjections) {
  Rng rng(127);
  MultiHeadAttention attn("a", 16, 4, rng);
  TensorF x(Shape{6, 16});
  for (float& v : x.data()) v = static_cast<float>(rng.normal());
  auto engine = fp32_engine();
  const TensorF y = attn.forward(x, engine);
  EXPECT_EQ(y.shape(), (Shape{6, 16}));
  // qkv + proj GEMMs recorded.
  ASSERT_EQ(engine.records().size(), 2u);
  EXPECT_EQ(engine.records()[0].n, 48);
  EXPECT_EQ(engine.records()[1].n, 16);
}

TEST(Attention, UniformTokensGiveUniformAttention) {
  // With identical tokens, attention output must equal the projection
  // of the (identical) context rows — all rows equal.
  Rng rng(131);
  MultiHeadAttention attn("a", 8, 2, rng);
  TensorF x(Shape{4, 8});
  for (std::int64_t d = 0; d < 8; ++d) {
    const float v = static_cast<float>(rng.normal());
    for (std::int64_t t = 0; t < 4; ++t) x(t, d) = v;
  }
  auto engine = fp32_engine();
  const TensorF y = attn.forward(x, engine);
  for (std::int64_t t = 1; t < 4; ++t) {
    for (std::int64_t d = 0; d < 8; ++d) {
      EXPECT_NEAR(y(t, d), y(0, d), 1e-4);
    }
  }
}

TEST(Model, SequentialChainsLayers) {
  Sequential seq("s");
  seq.emplace<ReLU>("r1");
  seq.emplace<ReLU>("r2");
  EXPECT_EQ(seq.size(), 2u);
  TensorF x(Shape{1, 3}, std::vector<float>{-1, 2, -3});
  auto engine = fp32_engine();
  const TensorF y = seq.forward(x, engine);
  EXPECT_FLOAT_EQ(y(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(y(0, 1), 2.0f);
}

TEST(Model, ResidualBlockPreservesShapeWithProjection) {
  Rng rng(137);
  ResidualBlock block("b", 4, 8, 2, rng);
  TensorF x(Shape{4, 8, 8});
  for (float& v : x.data()) v = static_cast<float>(rng.normal());
  auto engine = fp32_engine();
  const TensorF y = block.forward(x, engine);
  EXPECT_EQ(y.shape(), (Shape{8, 4, 4}));
  for (float v : y.data()) EXPECT_GE(v, 0.0f);  // final ReLU
}

TEST(Model, TransformerBlockPreservesShape) {
  Rng rng(139);
  TransformerBlock block("t", 16, 4, 32, rng);
  TensorF x(Shape{5, 16});
  for (float& v : x.data()) v = static_cast<float>(rng.normal());
  auto engine = fp32_engine();
  const TensorF y = block.forward(x, engine);
  EXPECT_EQ(y.shape(), (Shape{5, 16}));
  // 4 quantized GEMMs: qkv, proj, ffn1, ffn2.
  EXPECT_EQ(engine.records().size(), 4u);
}

}  // namespace
}  // namespace drift::nn
